//! Regenerates Figure 6(a): HR@5 and MRR@5 of ODNET as the number of
//! attention heads in the PEC sweeps over {1, 2, 4, 8}.

use od_bench::{build_hsg, fliggy_dataset, markdown_table, write_json, Scale};
use odnet_core::{evaluate_on_fliggy, train, FeatureExtractor, OdNetModel, Variant};
use serde::Serialize;

#[derive(Serialize)]
struct Point {
    heads: usize,
    hr5: f64,
    mrr5: f64,
    train_secs: f64,
}

fn main() {
    let scale = Scale::from_args();
    let ds = fliggy_dataset(scale);
    let hsg = build_hsg(&ds);
    let base = scale.model_config();
    let heads_sweep: &[usize] = if scale == Scale::Smoke {
        &[1, 2]
    } else {
        &[1, 2, 4, 8]
    };
    let mut points = Vec::new();
    for &heads in heads_sweep {
        let mut cfg = base.clone();
        cfg.heads = heads;
        // embed_dim must divide by heads — round it up to a multiple.
        if !cfg.embed_dim.is_multiple_of(heads) {
            cfg.embed_dim = cfg.embed_dim.div_ceil(heads) * heads;
        }
        eprintln!("[fig6a] training ODNET with {heads} heads");
        let fx = FeatureExtractor::new(cfg.max_long_seq, cfg.max_short_seq);
        let mut model = OdNetModel::new(
            Variant::Odnet,
            cfg,
            ds.world.num_users(),
            ds.world.num_cities(),
            Some(hsg.clone()),
        );
        let groups = fx.groups_from_samples(&ds, &ds.train);
        let report = train(&mut model, &groups);
        let eval = evaluate_on_fliggy(&model, &ds, &fx);
        eprintln!(
            "[fig6a] heads={heads}: HR@5 {:.4}, MRR@5 {:.4}",
            eval.ranking.hr5, eval.ranking.mrr5
        );
        points.push(Point {
            heads,
            hr5: eval.ranking.hr5,
            mrr5: eval.ranking.mrr5,
            train_secs: report.wall_time.as_secs_f64(),
        });
    }
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.heads.to_string(),
                format!("{:.4}", p.hr5),
                format!("{:.4}", p.mrr5),
            ]
        })
        .collect();
    println!(
        "Figure 6(a) — ODNET vs number of attention heads ({})",
        scale.name()
    );
    println!("{}", markdown_table(&["heads", "HR@5", "MRR@5"], &rows));
    match write_json(&format!("fig6a_{}", scale.name()), &points) {
        Ok(path) => eprintln!("[fig6a] wrote {}", path.display()),
        Err(e) => eprintln!("[fig6a] could not write results: {e}"),
    }
}
