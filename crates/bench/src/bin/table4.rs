//! Regenerates Table IV: single-task method comparison on the
//! Foursquare-like and Gowalla-like check-in datasets (the multi-task
//! ODNET variants are excluded, as in the paper, because destination-only
//! data cannot feed the joint O&D objective).

use od_bench::methods::run_checkin_suite;
use od_bench::report::{metric, opt_metric};
use od_bench::{checkin_dataset, markdown_table, write_json, Scale};
use od_data::CheckinConfig;

fn main() {
    let scale = Scale::from_args();
    let mut suites = Vec::new();
    for preset in [
        CheckinConfig::foursquare as fn() -> CheckinConfig,
        CheckinConfig::gowalla,
    ] {
        let ds = checkin_dataset(scale, preset);
        eprintln!("[table4] running suite on {}", ds.config.name);
        suites.push(run_checkin_suite(&ds, scale));
    }
    for suite in &suites {
        let rows: Vec<Vec<String>> = suite
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.name.clone(),
                    opt_metric(r.auc_d),
                    metric(r.hr1),
                    metric(r.hr5),
                    metric(r.hr10),
                    metric(r.mrr5),
                    metric(r.mrr10),
                ]
            })
            .collect();
        println!(
            "Table IV — comparison on the synthetic {} dataset ({})",
            suite.dataset,
            scale.name()
        );
        println!(
            "{}",
            markdown_table(
                &["Method", "AUC", "HR@1", "HR@5", "HR@10", "MRR@5", "MRR@10"],
                &rows
            )
        );
    }
    let record: Vec<(String, &Vec<od_bench::MethodResult>)> = suites
        .iter()
        .map(|s| (s.dataset.clone(), &s.rows))
        .collect();
    match write_json(&format!("table4_{}", scale.name()), &record) {
        Ok(path) => eprintln!("[table4] wrote {}", path.display()),
        Err(e) => eprintln!("[table4] could not write results: {e}"),
    }
}
