//! Regenerates Table III: comparison of all eleven methods on the Fliggy
//! dataset (AUC-O, AUC-D, HR@{1,5,10}, MRR@{5,10}). Also records per-method
//! training/inference time consumed by `table5`.

use od_bench::methods::run_fliggy_method;
use od_bench::report::{metric, opt_metric};
use od_bench::{fliggy_dataset, markdown_table, write_json, Method, Scale};

fn main() {
    let scale = Scale::from_args();
    eprintln!("[table3] dataset at scale {}", scale.name());
    let ds = fliggy_dataset(scale);
    let mut results = Vec::new();
    for method in Method::all() {
        eprintln!("[table3] fitting {}", method.name());
        let row = run_fliggy_method(method, &ds, scale);
        eprintln!(
            "[table3] {}: HR@5 {:.4}, MRR@5 {:.4} ({:.1}s train)",
            row.name, row.hr5, row.mrr5, row.train_secs
        );
        results.push(row);
    }
    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|r| {
            vec![
                r.name.clone(),
                opt_metric(r.auc_o),
                opt_metric(r.auc_d),
                metric(r.hr1),
                metric(r.hr5),
                metric(r.hr10),
                metric(r.mrr5),
                metric(r.mrr10),
            ]
        })
        .collect();
    println!(
        "Table III — comparison on the synthetic Fliggy dataset ({})",
        scale.name()
    );
    println!(
        "{}",
        markdown_table(
            &["Method", "AUC-O", "AUC-D", "HR@1", "HR@5", "HR@10", "MRR@5", "MRR@10"],
            &rows
        )
    );
    match write_json(&format!("table3_{}", scale.name()), &results) {
        Ok(path) => eprintln!("[table3] wrote {}", path.display()),
        Err(e) => eprintln!("[table3] could not write results: {e}"),
    }
}
