//! Regenerates Table V: training time and inference latency of every
//! trainable method on the Fliggy dataset. Reuses `results/table3_*.json`
//! when present (the timings are recorded there); otherwise re-runs the
//! methods.

use od_bench::methods::{run_fliggy_method, MethodResult};
use od_bench::{fliggy_dataset, markdown_table, write_json, Method, Scale};
use std::path::PathBuf;

fn load_table3(scale: Scale) -> Option<Vec<MethodResult>> {
    let root = std::env::var("CARGO_MANIFEST_DIR")
        .map(|d| PathBuf::from(d).join("../.."))
        .unwrap_or_else(|_| PathBuf::from("."));
    let path = root.join(format!("results/table3_{}.json", scale.name()));
    let content = std::fs::read_to_string(path).ok()?;
    // MethodResult is Serialize-only; re-parse the fields we need manually.
    let value: serde_json::Value = serde_json::from_str(&content).ok()?;
    let rows = value.as_array()?;
    let mut out = Vec::new();
    for row in rows {
        out.push(MethodResult {
            name: row.get("name")?.as_str()?.to_string(),
            auc_o: row.get("auc_o")?.as_f64(),
            auc_d: row.get("auc_d")?.as_f64(),
            hr1: row.get("hr1")?.as_f64()?,
            hr5: row.get("hr5")?.as_f64()?,
            hr10: row.get("hr10")?.as_f64()?,
            mrr5: row.get("mrr5")?.as_f64()?,
            mrr10: row.get("mrr10")?.as_f64()?,
            train_secs: row.get("train_secs")?.as_f64()?,
            infer_ms: row.get("infer_ms")?.as_f64()?,
        });
    }
    Some(out)
}

fn main() {
    let scale = Scale::from_args();
    let results = match load_table3(scale) {
        Some(rows) => {
            eprintln!(
                "[table5] reusing timings from results/table3_{}.json",
                scale.name()
            );
            rows
        }
        None => {
            eprintln!("[table5] no table3 results found; re-running methods");
            let ds = fliggy_dataset(scale);
            Method::all()
                .into_iter()
                .map(|m| {
                    eprintln!("[table5] fitting {}", m.name());
                    run_fliggy_method(m, &ds, scale)
                })
                .collect()
        }
    };
    // MostPop needs no training (the paper omits it from Table V).
    let rows: Vec<Vec<String>> = results
        .iter()
        .filter(|r| r.name != "MostPop")
        .map(|r| {
            vec![
                r.name.clone(),
                format!("{:.1}", r.train_secs),
                format!("{:.2}", r.infer_ms),
            ]
        })
        .collect();
    println!(
        "Table V — efficiency on the synthetic Fliggy dataset ({})",
        scale.name()
    );
    println!(
        "{}",
        markdown_table(
            &["Method", "Training Time (s)", "Inferring Time (ms)"],
            &rows
        )
    );
    match write_json(&format!("table5_{}", scale.name()), &results) {
        Ok(path) => eprintln!("[table5] wrote {}", path.display()),
        Err(e) => eprintln!("[table5] could not write results: {e}"),
    }
}
