//! Exploration-vs-exploitation slice analysis (beyond the paper's tables):
//! ranking metrics split by whether the true destination is a city the user
//! already visited (*exploitation*) or a new one (*exploration* — the
//! regime the paper's HSG is designed for). The interesting comparison is
//! the graph-equipped methods vs the memorization-heavy ones on the
//! exploration slice.

use od_bench::methods::fit_method;
use od_bench::{fliggy_dataset, markdown_table, write_json, Method, Scale};
use odnet_core::{evaluate_ranking_sliced, FeatureExtractor, GroupInput};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    method: String,
    exploit_hr5: f64,
    exploit_mrr5: f64,
    explore_hr5: f64,
    explore_mrr5: f64,
}

fn main() {
    let scale = Scale::from_args();
    let ds = fliggy_dataset(scale);
    let cfg = scale.model_config();
    let fx = FeatureExtractor::new(cfg.max_long_seq, cfg.max_short_seq);
    let eval_groups: Vec<GroupInput> = ds
        .eval_cases
        .iter()
        .map(|c| fx.group_from_eval_case(&ds, c))
        .collect();
    // Contrast pairs: exploit-only vs graph-equipped vs joint.
    let methods = [
        Method::MostPop,
        Method::Gbdt,
        Method::Lstm,
        Method::StodPpa,
        Method::StpUdgat,
        Method::StlG,
        Method::StlPlusG,
        Method::Odnet,
    ];
    let mut rows = Vec::new();
    let mut split_sizes = (0usize, 0usize);
    for method in methods {
        eprintln!("[slices] fitting {}", method.name());
        let (scorer, _) = fit_method(method, &ds, scale, &fx);
        let sliced = evaluate_ranking_sliced(scorer.as_ref(), &eval_groups);
        split_sizes = (sliced.exploit_n, sliced.explore_n);
        eprintln!(
            "[slices] {}: exploit HR@5 {:.4} | explore HR@5 {:.4}",
            method.name(),
            sliced.exploit.hr5,
            sliced.explore.hr5
        );
        rows.push(Row {
            method: method.name().to_string(),
            exploit_hr5: sliced.exploit.hr5,
            exploit_mrr5: sliced.exploit.mrr5,
            explore_hr5: sliced.explore.hr5,
            explore_mrr5: sliced.explore.mrr5,
        });
    }
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.method.clone(),
                format!("{:.4}", r.exploit_hr5),
                format!("{:.4}", r.exploit_mrr5),
                format!("{:.4}", r.explore_hr5),
                format!("{:.4}", r.explore_mrr5),
            ]
        })
        .collect();
    println!(
        "Exploration/exploitation slices ({}; {} exploit cases, {} explore cases)",
        scale.name(),
        split_sizes.0,
        split_sizes.1
    );
    println!(
        "{}",
        markdown_table(
            &[
                "Method",
                "exploit HR@5",
                "exploit MRR@5",
                "explore HR@5",
                "explore MRR@5"
            ],
            &table
        )
    );
    match write_json(&format!("slices_{}", scale.name()), &rows) {
        Ok(path) => eprintln!("[slices] wrote {}", path.display()),
        Err(e) => eprintln!("[slices] could not write results: {e}"),
    }
}
