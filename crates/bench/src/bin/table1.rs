//! Regenerates Table I: statistics of the (synthetic) Fliggy dataset.

use od_bench::{fliggy_dataset, markdown_table, write_json, Scale};

fn main() {
    let scale = Scale::from_args();
    eprintln!(
        "[table1] generating Fliggy dataset at scale {}",
        scale.name()
    );
    let ds = fliggy_dataset(scale);
    let s = ds.statistics();
    let rows = vec![
        vec![
            "# of samples".to_string(),
            s.train_total.to_string(),
            s.test_total.to_string(),
        ],
        vec![
            "# of (O+, D+) samples".to_string(),
            s.train_pos.to_string(),
            s.test_pos.to_string(),
        ],
        vec![
            "# of (O+, D-) and (O-, D+) samples".to_string(),
            s.train_partial.to_string(),
            s.test_partial.to_string(),
        ],
        vec![
            "# of (O-, D-) samples".to_string(),
            s.train_full.to_string(),
            s.test_full.to_string(),
        ],
        vec![
            "# of users".to_string(),
            s.train_users.to_string(),
            s.test_users.to_string(),
        ],
        vec![
            "# of origin cities".to_string(),
            s.num_cities.to_string(),
            s.num_cities.to_string(),
        ],
        vec![
            "# of destination cities".to_string(),
            s.num_cities.to_string(),
            s.num_cities.to_string(),
        ],
    ];
    println!(
        "Table I — statistics of the synthetic Fliggy dataset ({})",
        scale.name()
    );
    println!(
        "{}",
        markdown_table(&["Properties", "Training", "Testing"], &rows)
    );
    match write_json(&format!("table1_{}", scale.name()), &s) {
        Ok(path) => eprintln!("[table1] wrote {}", path.display()),
        Err(e) => eprintln!("[table1] could not write results: {e}"),
    }
}
