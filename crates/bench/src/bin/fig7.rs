//! Regenerates Figure 7: simulated online A/B test — daily CTR of eight
//! deployed methods over one week. Each method is trained offline, then
//! serves top-k lists assembled by the §VI-B candidate recall and ranked by
//! its Eq. 11 serving score; clicks are drawn from the ground-truth click
//! model with common random numbers.

use od_bench::methods::fit_method;
use od_bench::{fliggy_dataset, heuristic_candidates, markdown_table, write_json, Method, Scale};
use od_data::AbTestHarness;
use odnet_core::FeatureExtractor;
use serde::Serialize;

#[derive(Serialize)]
struct MethodCtr {
    method: String,
    daily_ctr: Vec<f64>,
    overall_ctr: f64,
}

fn main() {
    let scale = Scale::from_args();
    let ds = fliggy_dataset(scale);
    let model_cfg = scale.model_config();
    let fx = FeatureExtractor::new(model_cfg.max_long_seq, model_cfg.max_short_seq);
    let ab_cfg = scale.abtest_config();
    let harness = AbTestHarness::new(&ds.world, ab_cfg.clone()).with_histories(&ds.histories);
    let recall_cap = 30;
    let mut outcomes = Vec::new();
    for method in Method::abtest_methods() {
        eprintln!("[fig7] training {}", method.name());
        let (scorer, _) = fit_method(method, &ds, scale, &fx);
        let result = harness.run(method.name(), |user, day, k| {
            // Baselines share the §VI-B heuristic recall: most of them
            // have no frozen embedding tables to retrieve from, and a
            // common candidate source keeps the A/B comparison fair.
            let candidates = heuristic_candidates(&ds, user, day, recall_cap);
            if candidates.is_empty() {
                return Vec::new();
            }
            let group = fx.group_for_serving(&ds, user, day, &candidates);
            let scores = scorer.score_group(&group);
            let mut ranked: Vec<(f32, (od_hsg::CityId, od_hsg::CityId))> = scores
                .iter()
                .zip(&candidates)
                .map(|(&(po, pd), &pair)| (scorer.serving_score(po, pd), pair))
                .collect();
            ranked.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("finite scores"));
            ranked.into_iter().take(k).map(|(_, p)| p).collect()
        });
        let overall = result.overall_ctr();
        eprintln!("[fig7] {} overall CTR {:.4}", method.name(), overall);
        outcomes.push(MethodCtr {
            method: method.name().to_string(),
            daily_ctr: result.days.iter().map(|d| d.ctr()).collect(),
            overall_ctr: overall,
        });
    }
    let mut headers: Vec<String> = vec!["Method".to_string()];
    headers.extend((0..ab_cfg.days).map(|d| format!("day {}", d + 1)));
    headers.push("overall".to_string());
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let rows: Vec<Vec<String>> = outcomes
        .iter()
        .map(|o| {
            let mut row = vec![o.method.clone()];
            row.extend(o.daily_ctr.iter().map(|c| format!("{c:.4}")));
            row.push(format!("{:.4}", o.overall_ctr));
            row
        })
        .collect();
    println!(
        "Figure 7 — simulated online A/B CTRs over {} days ({})",
        ab_cfg.days,
        scale.name()
    );
    println!("{}", markdown_table(&header_refs, &rows));
    match write_json(&format!("fig7_{}", scale.name()), &outcomes) {
        Ok(path) => eprintln!("[fig7] wrote {}", path.display()),
        Err(e) => eprintln!("[fig7] could not write results: {e}"),
    }
}
