//! Ablation benches for the design choices DESIGN.md calls out (beyond the
//! paper's own Fig. 6 sweeps):
//!
//! - **neighbor cap** — the paper fixes each HSG node's neighborhood to 5
//!   after Fan et al.; what do 1/3/5/10 give?
//! - **expert count** — the MMoE uses 3 experts; is the mixture doing work?
//! - **θ entropy regularization** — our documented deviation: λ = 0 (the
//!   paper's bare Eq. 8) versus λ = 0.5. The λ = 0 row shows the collapse
//!   (θ → 0 or 1, one task starved).

use od_bench::{build_hsg, fliggy_dataset, markdown_table, write_json, Scale};
use odnet_core::{evaluate_on_fliggy, train, FeatureExtractor, OdNetModel, OdnetConfig, Variant};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    sweep: String,
    setting: String,
    auc_o: f64,
    auc_d: f64,
    hr5: f64,
    mrr5: f64,
    theta: f32,
    train_secs: f64,
}

fn main() {
    let scale = Scale::from_args();
    let ds = fliggy_dataset(scale);
    let hsg = build_hsg(&ds);
    let base = scale.model_config();
    let fx = FeatureExtractor::new(base.max_long_seq, base.max_short_seq);
    let groups = fx.groups_from_samples(&ds, &ds.train);

    let mut rows: Vec<Row> = Vec::new();
    let run = |sweep: &str, setting: String, cfg: OdnetConfig, rows: &mut Vec<Row>| {
        eprintln!("[ablation] {sweep} = {setting}");
        let mut model = OdNetModel::new(
            Variant::Odnet,
            cfg,
            ds.world.num_users(),
            ds.world.num_cities(),
            Some(hsg.clone()),
        );
        let report = train(&mut model, &groups);
        let eval = evaluate_on_fliggy(&model, &ds, &fx);
        rows.push(Row {
            sweep: sweep.to_string(),
            setting,
            auc_o: eval.auc_o,
            auc_d: eval.auc_d,
            hr5: eval.ranking.hr5,
            mrr5: eval.ranking.mrr5,
            theta: model.theta(),
            train_secs: report.wall_time.as_secs_f64(),
        });
    };

    let caps: &[usize] = if scale == Scale::Smoke {
        &[1, 5]
    } else {
        &[1, 3, 5, 10]
    };
    for &cap in caps {
        let cfg = OdnetConfig {
            neighbor_cap: cap,
            ..base.clone()
        };
        run("neighbor_cap", cap.to_string(), cfg, &mut rows);
    }
    let experts: &[usize] = if scale == Scale::Smoke {
        &[1, 3]
    } else {
        &[1, 3, 6]
    };
    for &e in experts {
        let cfg = OdnetConfig {
            experts: e,
            ..base.clone()
        };
        run("experts", e.to_string(), cfg, &mut rows);
    }
    for &lambda in &[0.0f32, 0.5] {
        let cfg = OdnetConfig {
            theta_entropy: lambda,
            ..base.clone()
        };
        run("theta_entropy", format!("{lambda}"), cfg, &mut rows);
    }
    // The §VII future-work extension: travel-intention prototypes.
    for &intents in &[0usize, 4] {
        let cfg = OdnetConfig {
            intents,
            ..base.clone()
        };
        run("intents", intents.to_string(), cfg, &mut rows);
    }

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.sweep.clone(),
                r.setting.clone(),
                format!("{:.4}", r.auc_o),
                format!("{:.4}", r.auc_d),
                format!("{:.4}", r.hr5),
                format!("{:.4}", r.mrr5),
                format!("{:.3}", r.theta),
                format!("{:.1}", r.train_secs),
            ]
        })
        .collect();
    println!("ODNET ablations ({})", scale.name());
    println!(
        "{}",
        markdown_table(
            &[
                "sweep",
                "setting",
                "AUC-O",
                "AUC-D",
                "HR@5",
                "MRR@5",
                "θ",
                "train (s)"
            ],
            &table
        )
    );
    match write_json(&format!("ablation_{}", scale.name()), &rows) {
        Ok(path) => eprintln!("[ablation] wrote {}", path.display()),
        Err(e) => eprintln!("[ablation] could not write results: {e}"),
    }
}
