//! Regenerates Table II: statistics of the (synthetic) Foursquare-like and
//! Gowalla-like check-in datasets.

use od_bench::{checkin_dataset, markdown_table, write_json, Scale};
use od_data::CheckinConfig;

fn main() {
    let scale = Scale::from_args();
    eprintln!(
        "[table2] generating check-in datasets at scale {}",
        scale.name()
    );
    let mut rows = Vec::new();
    let mut record = Vec::new();
    for preset in [
        CheckinConfig::foursquare as fn() -> CheckinConfig,
        CheckinConfig::gowalla,
    ] {
        let ds = checkin_dataset(scale, preset);
        let (users, pois, checkins) = ds.statistics();
        rows.push(vec![
            ds.config.name.clone(),
            users.to_string(),
            pois.to_string(),
            checkins.to_string(),
        ]);
        record.push((ds.config.name.clone(), users, pois, checkins));
    }
    println!(
        "Table II — statistics of the synthetic check-in datasets ({})",
        scale.name()
    );
    println!(
        "{}",
        markdown_table(
            &[
                "Dataset",
                "# of users",
                "# of POIs",
                "# of check-in records"
            ],
            &rows
        )
    );
    match write_json(&format!("table2_{}", scale.name()), &record) {
        Ok(path) => eprintln!("[table2] wrote {}", path.display()),
        Err(e) => eprintln!("[table2] could not write results: {e}"),
    }
}
