//! Regenerates Figure 6(b) and the §V-B training-time series: HR@5, MRR@5
//! and training time of ODNET as the HSG exploration depth K sweeps over
//! {1, 2, 3, 4}.

use od_bench::{build_hsg, fliggy_dataset, markdown_table, write_json, Scale};
use odnet_core::{evaluate_on_fliggy, train, FeatureExtractor, OdNetModel, Variant};
use serde::Serialize;

#[derive(Serialize)]
struct Point {
    depth: usize,
    hr5: f64,
    mrr5: f64,
    train_secs: f64,
}

fn main() {
    let scale = Scale::from_args();
    let ds = fliggy_dataset(scale);
    let hsg = build_hsg(&ds);
    let base = scale.model_config();
    let depth_sweep: &[usize] = &[1, 2, 3, 4];
    let mut points = Vec::new();
    for &depth in depth_sweep {
        let mut cfg = base.clone();
        cfg.depth = depth;
        eprintln!("[fig6b] training ODNET with K={depth}");
        let fx = FeatureExtractor::new(cfg.max_long_seq, cfg.max_short_seq);
        let mut model = OdNetModel::new(
            Variant::Odnet,
            cfg,
            ds.world.num_users(),
            ds.world.num_cities(),
            Some(hsg.clone()),
        );
        let groups = fx.groups_from_samples(&ds, &ds.train);
        let report = train(&mut model, &groups);
        let eval = evaluate_on_fliggy(&model, &ds, &fx);
        eprintln!(
            "[fig6b] K={depth}: HR@5 {:.4}, MRR@5 {:.4}, {:.1}s train",
            eval.ranking.hr5,
            eval.ranking.mrr5,
            report.wall_time.as_secs_f64()
        );
        points.push(Point {
            depth,
            hr5: eval.ranking.hr5,
            mrr5: eval.ranking.mrr5,
            train_secs: report.wall_time.as_secs_f64(),
        });
    }
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.depth.to_string(),
                format!("{:.4}", p.hr5),
                format!("{:.4}", p.mrr5),
                format!("{:.1}", p.train_secs),
            ]
        })
        .collect();
    println!(
        "Figure 6(b) — ODNET vs exploration depth K ({}) [training time reproduces §V-B's 55/73/94/135-minute growth shape]",
        scale.name()
    );
    println!(
        "{}",
        markdown_table(&["K", "HR@5", "MRR@5", "train (s)"], &rows)
    );
    match write_json(&format!("fig6b_{}", scale.name()), &points) {
        Ok(path) => eprintln!("[fig6b] wrote {}", path.display()),
        Err(e) => eprintln!("[fig6b] could not write results: {e}"),
    }
}
