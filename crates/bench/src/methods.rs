//! The method zoo: uniform construction, training, and evaluation of every
//! row in Tables III–V.

use crate::scale::Scale;
use od_baselines::{
    BaselineConfig, CityMeta, GbdtBaseline, GbdtConfig, LstmBaseline, LstpmBaseline, MostPop,
    StgnBaseline, StodPpaBaseline, StpUdgatBaseline,
};
use od_data::{CheckinDataset, FliggyDataset};
use odnet_core::{
    evaluate_on_checkin, evaluate_on_fliggy, train, FeatureExtractor, FliggyEvaluation, GroupInput,
    OdNetModel, OdScorer, Variant,
};
use serde::Serialize;
use std::time::Instant;

/// Every method of the paper's comparison, in table order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Method {
    /// Rule-based popularity.
    MostPop,
    /// Gradient-boosted trees.
    Gbdt,
    /// Plain LSTM.
    Lstm,
    /// Spatio-temporal gated network.
    Stgn,
    /// Long/short-term preference modeling.
    Lstpm,
    /// Origin-aware preference attention.
    StodPpa,
    /// Spatial-temporal-preference GATs.
    StpUdgat,
    /// ODNET ablation: no graph, single task.
    StlG,
    /// ODNET ablation: graph, single task.
    StlPlusG,
    /// ODNET ablation: no graph, joint learning.
    OdnetG,
    /// The full model.
    Odnet,
}

impl Method {
    /// All methods in Table III row order.
    pub fn all() -> Vec<Method> {
        vec![
            Method::MostPop,
            Method::Gbdt,
            Method::Lstm,
            Method::Stgn,
            Method::Lstpm,
            Method::StodPpa,
            Method::StpUdgat,
            Method::StlG,
            Method::StlPlusG,
            Method::OdnetG,
            Method::Odnet,
        ]
    }

    /// The single-task methods evaluable on the destination-only check-in
    /// datasets (Table IV: ODNET and ODNET−G are excluded because the LBSN
    /// data cannot feed a multi-task O&D objective).
    pub fn checkin_methods() -> Vec<Method> {
        Method::all()
            .into_iter()
            .filter(|m| !matches!(m, Method::Odnet | Method::OdnetG))
            .collect()
    }

    /// The methods deployed in the paper's online A/B test (Fig. 7: eight
    /// methods, MostPop through ODNET with GBDT/LSTM folded out in favour
    /// of the stronger baselines and variants).
    pub fn abtest_methods() -> Vec<Method> {
        vec![
            Method::MostPop,
            Method::Lstpm,
            Method::StodPpa,
            Method::StpUdgat,
            Method::StlG,
            Method::StlPlusG,
            Method::OdnetG,
            Method::Odnet,
        ]
    }

    /// Display name matching the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            Method::MostPop => "MostPop",
            Method::Gbdt => "GBDT",
            Method::Lstm => "LSTM",
            Method::Stgn => "STGN",
            Method::Lstpm => "LSTPM",
            Method::StodPpa => "STOD-PPA",
            Method::StpUdgat => "STP-UDGAT",
            Method::StlG => "STL-G",
            Method::StlPlusG => "STL+G",
            Method::OdnetG => "ODNET-G",
            Method::Odnet => "ODNET",
        }
    }
}

/// One table row: metrics + efficiency numbers.
#[derive(Clone, Debug, Serialize)]
pub struct MethodResult {
    /// Method display name.
    pub name: String,
    /// AUC of the origin task (absent for MostPop, as in the paper).
    pub auc_o: Option<f64>,
    /// AUC of the destination task.
    pub auc_d: Option<f64>,
    /// HR@1.
    pub hr1: f64,
    /// HR@5.
    pub hr5: f64,
    /// HR@10.
    pub hr10: f64,
    /// MRR@5.
    pub mrr5: f64,
    /// MRR@10.
    pub mrr10: f64,
    /// Wall-clock training time in seconds.
    pub train_secs: f64,
    /// Mean inference latency per scoring request (one eval case ≈ 30–50
    /// candidates), in milliseconds.
    pub infer_ms: f64,
}

impl MethodResult {
    fn from_eval(name: &str, eval: FliggyEvaluation, train_secs: f64, infer_ms: f64) -> Self {
        let rule_based = name == "MostPop";
        MethodResult {
            name: name.to_string(),
            auc_o: (!rule_based).then_some(eval.auc_o),
            auc_d: (!rule_based).then_some(eval.auc_d),
            hr1: eval.ranking.hr1,
            hr5: eval.ranking.hr5,
            hr10: eval.ranking.hr10,
            mrr5: eval.ranking.mrr5,
            mrr10: eval.ranking.mrr10,
            train_secs,
            infer_ms,
        }
    }
}

fn baseline_config(scale: Scale) -> BaselineConfig {
    let m = scale.model_config();
    BaselineConfig {
        embed_dim: m.embed_dim,
        hidden_dim: 2 * m.embed_dim,
        tower_hidden: m.tower_hidden,
        learning_rate: m.learning_rate,
        epochs: m.epochs,
        batch_groups: m.batch_groups,
        workers: m.workers,
        grad_clip: m.grad_clip,
        seed: m.seed,
    }
}

/// Fit one method on the Fliggy dataset; returns the scorer and the
/// training wall-time in seconds.
pub fn fit_method(
    method: Method,
    ds: &FliggyDataset,
    scale: Scale,
    fx: &FeatureExtractor,
) -> (Box<dyn OdScorer>, f64) {
    let train_groups = fx.groups_from_samples(ds, &ds.train);
    let coords: Vec<od_hsg::GeoPoint> = ds.world.cities.iter().map(|c| c.coords).collect();
    let meta = CityMeta::from_groups(coords, &train_groups);
    let num_users = ds.world.num_users();
    let num_cities = ds.world.num_cities();
    fit_on_groups(
        method,
        &train_groups,
        meta,
        num_users,
        num_cities,
        scale,
        || crate::build_hsg(ds),
    )
}

/// Fit one method on pre-extracted groups (shared by the Fliggy and
/// check-in paths). `make_hsg` lazily builds the heterogeneous graph for
/// the graph variants.
pub fn fit_on_groups(
    method: Method,
    train_groups: &[GroupInput],
    meta: CityMeta,
    num_users: usize,
    num_cities: usize,
    scale: Scale,
    make_hsg: impl FnOnce() -> od_hsg::Hsg,
) -> (Box<dyn OdScorer>, f64) {
    let started = Instant::now();
    let cfg = baseline_config(scale);
    let scorer: Box<dyn OdScorer> = match method {
        Method::MostPop => Box::new(MostPop::new(meta)),
        Method::Gbdt => {
            let gbdt_cfg = match scale {
                Scale::Smoke => GbdtConfig::tiny(),
                _ => GbdtConfig::default(),
            };
            Box::new(GbdtBaseline::fit(meta, train_groups, gbdt_cfg))
        }
        Method::Lstm => {
            let mut m = LstmBaseline::new(cfg, num_users, num_cities);
            train(&mut m, train_groups);
            Box::new(m)
        }
        Method::Stgn => {
            let mut m = StgnBaseline::new(cfg, num_users, num_cities, meta);
            train(&mut m, train_groups);
            Box::new(m)
        }
        Method::Lstpm => {
            let mut m = LstpmBaseline::new(cfg, num_users, num_cities, meta);
            train(&mut m, train_groups);
            Box::new(m)
        }
        Method::StodPpa => {
            let mut m = StodPpaBaseline::new(cfg, num_users, num_cities);
            train(&mut m, train_groups);
            Box::new(m)
        }
        Method::StpUdgat => {
            let mut m = StpUdgatBaseline::new(cfg, num_users, num_cities, &meta, train_groups);
            train(&mut m, train_groups);
            Box::new(m)
        }
        Method::StlG | Method::StlPlusG | Method::OdnetG | Method::Odnet => {
            let variant = match method {
                Method::StlG => Variant::StlG,
                Method::StlPlusG => Variant::StlPlusG,
                Method::OdnetG => Variant::OdnetG,
                _ => Variant::Odnet,
            };
            let hsg = variant.uses_graph().then(make_hsg);
            let mut m = OdNetModel::new(variant, scale.model_config(), num_users, num_cities, hsg);
            train(&mut m, train_groups);
            Box::new(m)
        }
    };
    (scorer, started.elapsed().as_secs_f64())
}

/// Fit + evaluate one method on the Fliggy dataset, producing a table row.
pub fn run_fliggy_method(method: Method, ds: &FliggyDataset, scale: Scale) -> MethodResult {
    let model_cfg = scale.model_config();
    let fx = FeatureExtractor::new(model_cfg.max_long_seq, model_cfg.max_short_seq);
    let (scorer, train_secs) = fit_method(method, ds, scale, &fx);
    let eval_started = Instant::now();
    let eval = evaluate_on_fliggy(scorer.as_ref(), ds, &fx);
    let cases = ds.eval_cases.len().max(1);
    let infer_ms = eval_started.elapsed().as_secs_f64() * 1000.0 / cases as f64;
    MethodResult::from_eval(method.name(), eval, train_secs, infer_ms)
}

/// A check-in evaluation bundle (one dataset column group of Table IV).
pub struct CheckinSuite {
    /// Dataset display name.
    pub dataset: String,
    /// Per-method rows.
    pub rows: Vec<MethodResult>,
}

/// Fit + evaluate the single-task methods on one check-in dataset.
pub fn run_checkin_suite(ds: &CheckinDataset, scale: Scale) -> CheckinSuite {
    let model_cfg = scale.model_config();
    let fx = FeatureExtractor::new(model_cfg.max_long_seq, model_cfg.max_short_seq);
    let train_groups = fx.checkin_groups(ds, &ds.train);
    let coords: Vec<od_hsg::GeoPoint> = ds.pois.iter().map(|p| p.coords).collect();
    let meta = CityMeta::from_groups(coords, &train_groups);
    let mut rows = Vec::new();
    for method in Method::checkin_methods() {
        let (scorer, train_secs) = fit_on_groups(
            method,
            &train_groups,
            meta.clone(),
            ds.config.num_users,
            ds.config.num_pois,
            scale,
            || ds.hsg(),
        );
        let eval_started = Instant::now();
        let eval = evaluate_on_checkin(scorer.as_ref(), ds, &fx);
        let cases = ds.eval_cases.len().max(1);
        let infer_ms = eval_started.elapsed().as_secs_f64() * 1000.0 / cases as f64;
        rows.push(MethodResult::from_eval(
            method.name(),
            eval,
            train_secs,
            infer_ms,
        ));
        eprintln!("  [{}] done ({:.1}s train)", method.name(), train_secs);
    }
    CheckinSuite {
        dataset: ds.config.name.clone(),
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn method_lists_match_paper_tables() {
        assert_eq!(Method::all().len(), 11);
        // Table IV excludes the two MTL variants.
        assert_eq!(Method::checkin_methods().len(), 9);
        assert!(!Method::checkin_methods().contains(&Method::Odnet));
        // Figure 7 deploys eight methods including ODNET.
        assert_eq!(Method::abtest_methods().len(), 8);
        assert!(Method::abtest_methods().contains(&Method::Odnet));
    }

    #[test]
    fn smoke_run_of_cheap_methods() {
        let ds = crate::fliggy_dataset(Scale::Smoke);
        for method in [Method::MostPop, Method::Gbdt] {
            let row = run_fliggy_method(method, &ds, Scale::Smoke);
            assert_eq!(row.name, method.name());
            assert!(row.hr10 >= row.hr5 && row.hr5 >= row.hr1);
            assert!(row.infer_ms >= 0.0);
        }
    }

    #[test]
    fn mostpop_has_no_auc_like_the_paper() {
        let ds = crate::fliggy_dataset(Scale::Smoke);
        let row = run_fliggy_method(Method::MostPop, &ds, Scale::Smoke);
        assert!(row.auc_o.is_none() && row.auc_d.is_none());
        let row2 = run_fliggy_method(Method::Gbdt, &ds, Scale::Smoke);
        assert!(row2.auc_o.is_some());
    }
}
