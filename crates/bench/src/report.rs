//! Result formatting: aligned text tables for stdout and JSON records
//! under `results/` for EXPERIMENTS.md bookkeeping.

use serde::Serialize;
use std::fs;
use std::path::PathBuf;

/// Render rows as a GitHub-flavoured markdown table. `headers` and each row
/// must have equal lengths.
pub fn markdown_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), headers.len(), "ragged table row");
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    let render_row = |cells: &[String], widths: &[usize]| -> String {
        let padded: Vec<String> = cells
            .iter()
            .zip(widths)
            .map(|(c, w)| format!("{c:<w$}"))
            .collect();
        format!("| {} |\n", padded.join(" | "))
    };
    let header_cells: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    out.push_str(&render_row(&header_cells, &widths));
    let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
    out.push_str(&render_row(&sep, &widths));
    for row in rows {
        out.push_str(&render_row(row, &widths));
    }
    out
}

/// Write a serializable record to `results/<name>.json` (relative to the
/// workspace root when run via cargo, else the current directory). Returns
/// the written path.
pub fn write_json<T: Serialize>(name: &str, value: &T) -> std::io::Result<PathBuf> {
    let root = std::env::var("CARGO_MANIFEST_DIR")
        .map(|d| PathBuf::from(d).join("../.."))
        .unwrap_or_else(|_| PathBuf::from("."));
    let dir = root.join("results");
    fs::create_dir_all(&dir)?;
    let path = dir.join(format!("{name}.json"));
    fs::write(&path, serde_json::to_string_pretty(value)?)?;
    Ok(path)
}

/// Format an optional metric column ("-" when absent, as in the paper's
/// MostPop row).
pub fn opt_metric(v: Option<f64>) -> String {
    match v {
        Some(v) => format!("{v:.4}"),
        None => "-".to_string(),
    }
}

/// Format a plain metric.
pub fn metric(v: f64) -> String {
    format!("{v:.4}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_table_is_aligned() {
        let t = markdown_table(
            &["Method", "HR@5"],
            &[
                vec!["ODNET".into(), "0.7685".into()],
                vec!["MostPop".into(), "0.3491".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        // All lines have equal width.
        assert!(lines.windows(2).all(|w| w[0].len() == w[1].len()));
        assert!(lines[0].contains("Method"));
        assert!(lines[3].contains("MostPop"));
    }

    #[test]
    #[should_panic(expected = "ragged table row")]
    fn ragged_rows_rejected() {
        markdown_table(&["a", "b"], &[vec!["x".into()]]);
    }

    #[test]
    fn metric_formatting() {
        assert_eq!(metric(0.12345), "0.1235");
        assert_eq!(opt_metric(None), "-");
        assert_eq!(opt_metric(Some(0.5)), "0.5000");
    }

    #[test]
    fn write_json_round_trips() {
        let path = write_json("test_report", &vec![1, 2, 3]).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        let back: Vec<i32> = serde_json::from_str(&content).unwrap();
        assert_eq!(back, vec![1, 2, 3]);
        let _ = std::fs::remove_file(path);
    }
}
