//! Candidate recall for serving.
//!
//! Two candidate sources feed the ranker:
//!
//! - [`recall_candidates`] — the production path: top-k OD pairs out of
//!   the *whole* city universe, retrieved from a frozen artifact's dense
//!   tables by `od-retrieval` (SIMD brute-force or the pruned IVF tier).
//! - [`heuristic_candidates`] — the paper's §VI-B multi-strategy recall
//!   (current city, nearby cities, historical Os; historical/clicked/
//!   popular Ds). It needs only the dataset, no trained artifact, so it
//!   remains the candidate source for the fig7 baselines and the test
//!   oracle for candidate-set plausibility.

use od_data::FliggyDataset;
use od_hsg::{CityId, UserId};
use od_retrieval::{Retriever, Tier};
use odnet_core::{GroupInput, OdScorer};
use std::collections::HashSet;

/// Rank recalled OD pairs with any scorer — live tape or frozen artifact —
/// by the Eq. 11 serving score, descending. `group` must have been built
/// over exactly `pairs` (one candidate per pair, in order).
pub fn rank_pairs(
    scorer: &dyn OdScorer,
    group: &GroupInput,
    pairs: &[(CityId, CityId)],
) -> Vec<((CityId, CityId), f32)> {
    let mut probs = Vec::new();
    let mut ranked = Vec::new();
    rank_pairs_into(scorer, group, pairs, &mut probs, &mut ranked);
    ranked
}

/// [`rank_pairs`] with caller-provided buffers, so a serving loop ranking
/// request after request reuses one probability buffer and one output
/// buffer: with the frozen artifact's in-place scorer the whole
/// recall → score → rank cycle then runs without per-request allocation.
/// Both buffers are cleared first.
pub fn rank_pairs_into(
    scorer: &dyn OdScorer,
    group: &GroupInput,
    pairs: &[(CityId, CityId)],
    probs: &mut Vec<(f32, f32)>,
    ranked: &mut Vec<((CityId, CityId), f32)>,
) {
    assert_eq!(
        group.candidates.len(),
        pairs.len(),
        "group candidates and recalled pairs out of sync"
    );
    scorer.score_group_into(group, probs);
    ranked.clear();
    ranked.extend(
        probs
            .iter()
            .zip(pairs)
            .map(|(&(po, pd), &pair)| (pair, scorer.serving_score(po, pd))),
    );
    ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite serving scores"));
}

/// Retrieve the best `k` OD pairs for `user` from a frozen artifact's
/// dense tables — the production recall path. Serves the pruned tier
/// (IVF-routed, origin cutoff); build the [`Retriever`] once per artifact
/// generation and reuse it across requests.
pub fn recall_candidates(retriever: &Retriever, user: UserId, k: usize) -> Vec<(CityId, CityId)> {
    retriever
        .top_k(user, k, Tier::Pruned)
        .pairs
        .into_iter()
        .map(|p| (p.origin, p.dest))
        .collect()
}

/// Assemble up to `max_pairs` candidate OD pairs for `user` at `day` using
/// the paper's §VI-B heuristic recall strategies. Kept as the baseline
/// candidate source (fig7's non-ODNET methods have no frozen tables to
/// retrieve from) and as the test oracle for candidate plausibility.
pub fn heuristic_candidates(
    ds: &FliggyDataset,
    user: UserId,
    day: u32,
    max_pairs: usize,
) -> Vec<(CityId, CityId)> {
    let lt = ds.long_term(user, day);
    let st = ds.short_term(user, day);
    let current = ds.current_city(user, day);
    let home = ds.world.users[user.index()].home;

    // Candidate origins: current city, home, nearby cities, historical Os.
    let mut origins: Vec<CityId> = vec![current, home];
    origins.extend(nearest_cities(ds, current, 2));
    origins.extend(lt.iter().rev().take(3).map(|b| b.origin));
    dedup_keep_order(&mut origins);

    // Candidate destinations: historical Ds, clicked Ds, popular Ds.
    let mut dests: Vec<CityId> = Vec::new();
    dests.extend(lt.iter().rev().take(4).map(|b| b.dest));
    dests.extend(st.iter().rev().take(4).map(|c| c.dest));
    dests.extend(popular_cities(ds, 4));
    // Return-leg recall: the origin of the most recent booking is a
    // high-value destination candidate (the paper's Case 2).
    if let Some(last) = lt.last() {
        dests.insert(0, last.origin);
    }
    dedup_keep_order(&mut dests);

    // Origins and dests are deduplicated, so (o, d) pairs from the product
    // are already distinct — no per-pair membership scan needed.
    let mut pairs = Vec::with_capacity(max_pairs);
    'outer: for &d in &dests {
        for &o in &origins {
            if o != d {
                pairs.push((o, d));
                if pairs.len() >= max_pairs {
                    break 'outer;
                }
            }
        }
    }
    pairs
}

/// Remove duplicates in O(n), keeping the first occurrence of each city —
/// recall order is a priority order, so it must be preserved.
fn dedup_keep_order(v: &mut Vec<CityId>) {
    let mut seen = HashSet::with_capacity(v.len());
    v.retain(|c| seen.insert(*c));
}

/// The `k` nearest cities to `c` (by the world's coordinates).
fn nearest_cities(ds: &FliggyDataset, c: CityId, k: usize) -> Vec<CityId> {
    let base = ds.world.cities[c.index()].coords;
    let mut order: Vec<CityId> = (0..ds.world.num_cities() as u32)
        .map(CityId)
        .filter(|&x| x != c)
        .collect();
    order.sort_by(|&a, &b| {
        let da = base.l2(ds.world.cities[a.index()].coords);
        let db = base.l2(ds.world.cities[b.index()].coords);
        da.partial_cmp(&db).expect("finite")
    });
    order.truncate(k);
    order
}

/// The `k` most popular cities by the world's popularity prior (a proxy for
/// the production "popular air lines" recall).
fn popular_cities(ds: &FliggyDataset, k: usize) -> Vec<CityId> {
    let mut order: Vec<CityId> = (0..ds.world.num_cities() as u32).map(CityId).collect();
    order.sort_by(|&a, &b| {
        ds.world.cities[b.index()]
            .popularity
            .partial_cmp(&ds.world.cities[a.index()].popularity)
            .expect("finite")
    });
    order.truncate(k);
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scale;

    #[test]
    fn recall_produces_valid_distinct_pairs() {
        let ds = crate::fliggy_dataset(Scale::Smoke);
        let user = ds.test.first().map(|s| s.user).unwrap_or(UserId(0));
        let day = ds.train_end_day();
        let pairs = heuristic_candidates(&ds, user, day, 30);
        assert!(!pairs.is_empty());
        assert!(pairs.len() <= 30);
        for (o, d) in &pairs {
            assert_ne!(o, d);
        }
        let mut unique = pairs.clone();
        unique.sort_by_key(|&(o, d)| (o.0, d.0));
        unique.dedup();
        assert_eq!(unique.len(), pairs.len(), "duplicate pairs recalled");
    }

    #[test]
    fn recall_includes_return_leg_when_recent() {
        let ds = crate::fliggy_dataset(Scale::Smoke);
        // Find a user with a booking just before the cut.
        let day = ds.train_end_day();
        let user = (0..ds.world.num_users() as u32)
            .map(UserId)
            .find(|&u| !ds.long_term(u, day).is_empty())
            .expect("some user has history");
        let last = *ds.long_term(user, day).last().unwrap();
        let pairs = heuristic_candidates(&ds, user, day, 40);
        assert!(
            pairs.iter().any(|&(_, d)| d == last.origin),
            "return-leg destination missing from recall"
        );
    }

    #[test]
    fn retrieval_recall_returns_k_distinct_scored_pairs() {
        let ds = crate::fliggy_dataset(Scale::Smoke);
        let model = odnet_core::OdNetModel::new(
            odnet_core::Variant::OdnetG,
            odnet_core::OdnetConfig::tiny(),
            ds.world.num_users(),
            ds.world.num_cities(),
            None,
        );
        let retriever = Retriever::build(
            std::sync::Arc::new(model.freeze()),
            od_retrieval::RetrievalConfig::default(),
        );
        let pairs = recall_candidates(&retriever, UserId(0), 24);
        assert_eq!(pairs.len(), 24);
        for (o, d) in &pairs {
            assert_ne!(o, d);
        }
        let mut unique = pairs.clone();
        unique.sort_by_key(|&(o, d)| (o.0, d.0));
        unique.dedup();
        assert_eq!(unique.len(), pairs.len(), "duplicate pairs retrieved");
    }

    #[test]
    fn recall_respects_cap() {
        let ds = crate::fliggy_dataset(Scale::Smoke);
        let pairs = heuristic_candidates(&ds, UserId(0), ds.train_end_day(), 5);
        assert!(pairs.len() <= 5);
    }

    /// A scorer whose serving score is recoverable from the pair alone, so
    /// the expected ranking is checkable without a model.
    struct ByOriginIndex;

    impl OdScorer for ByOriginIndex {
        fn score_group(&self, group: &GroupInput) -> Vec<(f32, f32)> {
            group
                .candidates
                .iter()
                .map(|c| (c.origin.0 as f32, c.dest.0 as f32))
                .collect()
        }

        fn name(&self) -> String {
            "by-origin-index".to_string()
        }
    }

    #[test]
    fn rank_pairs_sorts_by_serving_score() {
        let ds = crate::fliggy_dataset(Scale::Smoke);
        let user = UserId(0);
        let day = ds.train_end_day();
        let pairs = heuristic_candidates(&ds, user, day, 10);
        let fx = odnet_core::FeatureExtractor::new(6, 4);
        let group = fx.group_for_serving(&ds, user, day, &pairs);
        let ranked = rank_pairs(&ByOriginIndex, &group, &pairs);
        assert_eq!(ranked.len(), pairs.len());
        for w in ranked.windows(2) {
            assert!(w[0].1 >= w[1].1, "ranking not descending");
        }
        // Default serving score is 0.5·(p_o + p_d); the stub makes that
        // reconstructable from the pair itself.
        for ((o, d), score) in &ranked {
            assert_eq!(*score, 0.5 * (o.0 as f32 + d.0 as f32));
        }
    }
}
