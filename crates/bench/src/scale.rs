//! Experiment scales: smoke (CI), default (laptop), full (overnight).

use od_data::{AbTestConfig, CheckinConfig, FliggyConfig};
use odnet_core::OdnetConfig;

/// How big an experiment run should be.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Seconds-scale run for CI and smoke tests.
    Smoke,
    /// Minutes-scale run reproducing the paper's shapes (the documented
    /// results in EXPERIMENTS.md use this).
    Default,
    /// Larger datasets and more epochs for tighter estimates.
    Full,
}

impl Scale {
    /// Parse from CLI args (`--scale X`) and the `ODNET_SCALE` env var; the
    /// CLI wins, then the env, then `Default`.
    pub fn from_args() -> Scale {
        let args: Vec<String> = std::env::args().collect();
        let from_cli = args
            .windows(2)
            .find(|w| w[0] == "--scale")
            .map(|w| w[1].clone());
        let from_env = std::env::var("ODNET_SCALE").ok();
        match from_cli.or(from_env).as_deref() {
            Some("smoke") => Scale::Smoke,
            Some("full") => Scale::Full,
            Some("default") | None => Scale::Default,
            Some(other) => {
                eprintln!("unknown scale {other:?}; using default");
                Scale::Default
            }
        }
    }

    /// Display name (used in result file names).
    pub fn name(self) -> &'static str {
        match self {
            Scale::Smoke => "smoke",
            Scale::Default => "default",
            Scale::Full => "full",
        }
    }

    /// The Fliggy generator configuration at this scale.
    pub fn fliggy_config(self) -> FliggyConfig {
        match self {
            Scale::Smoke => FliggyConfig {
                num_users: 120,
                num_cities: 20,
                horizon_days: 500,
                test_window_days: 60,
                eval_negatives: 29,
                ..FliggyConfig::default()
            },
            // 120 cities makes per-city interaction signal sparse enough
            // that cross-user graph aggregation matters, as in the paper's
            // 200-city production setting; 2000 users yield ≈1k eval cases
            // (±1.5% metric noise).
            Scale::Default => FliggyConfig {
                num_users: 2000,
                num_cities: 120,
                ..FliggyConfig::default()
            },
            Scale::Full => FliggyConfig {
                num_users: 4000,
                num_cities: 200,
                ..FliggyConfig::default()
            },
        }
    }

    /// The model configuration at this scale.
    pub fn model_config(self) -> OdnetConfig {
        match self {
            Scale::Smoke => OdnetConfig {
                embed_dim: 8,
                heads: 2,
                epochs: 2,
                ..OdnetConfig::default()
            },
            Scale::Default => OdnetConfig::default(),
            Scale::Full => OdnetConfig {
                embed_dim: 32,
                ..OdnetConfig::default()
            },
        }
    }

    /// Shrink a check-in preset in place for smaller scales.
    pub fn shrink_checkin(self, cfg: &mut CheckinConfig) {
        match self {
            Scale::Smoke => {
                cfg.num_users = 80;
                cfg.num_pois = 30;
                cfg.eval_negatives = 29;
            }
            Scale::Default => {}
            Scale::Full => {
                cfg.num_users *= 2;
            }
        }
    }

    /// The A/B-test configuration at this scale.
    pub fn abtest_config(self) -> AbTestConfig {
        let fliggy = self.fliggy_config();
        let users_per_day = match self {
            Scale::Smoke => 40,
            Scale::Default => 150,
            Scale::Full => 400,
        };
        AbTestConfig {
            users_per_day,
            start_day: fliggy.horizon_days,
            ..AbTestConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_are_ordered_by_size() {
        assert!(Scale::Smoke.fliggy_config().num_users < Scale::Default.fliggy_config().num_users);
        assert!(Scale::Default.fliggy_config().num_users < Scale::Full.fliggy_config().num_users);
    }

    #[test]
    fn smoke_model_is_small() {
        let cfg = Scale::Smoke.model_config();
        assert!(cfg.epochs <= 2);
        assert_eq!(cfg.embed_dim % cfg.heads, 0);
    }

    #[test]
    fn abtest_starts_after_horizon() {
        for s in [Scale::Smoke, Scale::Default, Scale::Full] {
            assert_eq!(s.abtest_config().start_day, s.fliggy_config().horizon_days);
        }
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(Scale::Smoke.name(), "smoke");
        assert_eq!(Scale::Default.name(), "default");
        assert_eq!(Scale::Full.name(), "full");
    }
}
