//! # od-bench — the experiment harness
//!
//! Regenerates every table and figure of the paper's evaluation section.
//! Each binary in `src/bin/` prints one artifact and writes a JSON record
//! under `results/`:
//!
//! | Binary   | Paper artifact |
//! |----------|----------------|
//! | `table1` | Table I — Fliggy dataset statistics |
//! | `table2` | Table II — Foursquare/Gowalla statistics |
//! | `table3` | Table III — method comparison on Fliggy |
//! | `table4` | Table IV — comparison on the check-in datasets |
//! | `table5` | Table V — training/inference efficiency |
//! | `fig6a`  | Figure 6(a) — sweep over attention heads |
//! | `fig6b`  | Figure 6(b) — sweep over exploration depth K |
//! | `fig7`   | Figure 7 — simulated online A/B CTRs |
//!
//! Every binary accepts `--scale smoke|default|full` (default: `default`;
//! env `ODNET_SCALE` overrides) so CI can exercise the full pipeline in
//! seconds while real runs use the larger synthetic datasets.

#![warn(missing_docs)]

pub mod methods;
pub mod report;
pub mod scale;
pub mod serving;

pub use methods::{fit_method, CheckinSuite, Method, MethodResult};
pub use report::{markdown_table, write_json};
pub use scale::Scale;
pub use serving::{heuristic_candidates, rank_pairs, rank_pairs_into, recall_candidates};

use od_data::{CheckinConfig, CheckinDataset, FliggyDataset};
use od_hsg::{Hsg, HsgBuilder};

/// Build the Fliggy-like dataset at a scale.
pub fn fliggy_dataset(scale: Scale) -> FliggyDataset {
    FliggyDataset::generate(scale.fliggy_config())
}

/// Build the HSG from a dataset's training-period interactions.
pub fn build_hsg(ds: &FliggyDataset) -> Hsg {
    let coords = ds.world.cities.iter().map(|c| c.coords).collect();
    let mut b = HsgBuilder::new(ds.world.num_users(), coords);
    for it in ds.hsg_interactions() {
        b.add_interaction(it);
    }
    b.build()
}

/// Build one of the check-in datasets at a scale.
pub fn checkin_dataset(scale: Scale, preset: fn() -> CheckinConfig) -> CheckinDataset {
    let mut cfg = preset();
    scale.shrink_checkin(&mut cfg);
    CheckinDataset::generate(cfg)
}

/// Re-export for binaries.
pub use od_data::FliggyConfig as FliggyCfg;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_dataset_builds_quickly() {
        let ds = fliggy_dataset(Scale::Smoke);
        assert!(!ds.train.is_empty());
        assert!(!ds.eval_cases.is_empty());
        let hsg = build_hsg(&ds);
        assert!(hsg.num_edges() > 0);
    }

    #[test]
    fn checkin_smoke_builds() {
        let ds = checkin_dataset(Scale::Smoke, CheckinConfig::foursquare);
        assert!(!ds.train.is_empty());
    }

    #[test]
    fn default_scale_has_enough_eval_signal() {
        // The default scale is sized so metric noise stays below ~1.5%.
        let cfg = Scale::Default.fliggy_config();
        assert!(cfg.num_users >= 1500);
        assert!(cfg.num_cities >= 100);
    }
}
