//! Retrieval-tier benchmark → `BENCH_retrieval.json`.
//!
//! Three experiments, matching the acceptance gates of the retrieval
//! subsystem:
//!
//! 1. **SIMD vs scalar brute force** — exact-tier top-64 queries against
//!    the paper-scale artifact (2.6M users × 200 cities, d = 16) served
//!    zero-copy from an mmap'd `.odz`, with the kernel level forced to
//!    scalar vs auto-detected (AVX2 on x86_64). Both levels are bit-exact
//!    (the equivalence tests pin that); the gate is speed: the detected
//!    level must clear **2x** scalar on x86_64.
//! 2. **Pruned tier cost/accuracy** — recall@64 and candidates-scanned
//!    reduction of the IVF-pruned tier against the exact oracle on a
//!    trained 200-city world (the same fixture recipe as
//!    `tests/recall_gate.rs`: trained tables carry the structure the
//!    router exploits), plus per-query latency of both tiers at paper
//!    scale. Gates: recall@64 ≥ 0.99 at ≥ 5x fewer candidates scanned.
//! 3. **End-to-end funnel throughput** — retrieve→rank requests/sec
//!    through `od_serve::Funnel` (pruned retrieval feeding the
//!    micro-batching ranker) over the same mmap'd paper-scale artifact.
//!
//! Run with `cargo bench --bench retrieval_bench`; `CRITERION_QUICK=1`
//! (or `--quick` / `--test`) runs a small-universe smoke that checks the
//! invariants without touching the committed report.

use od_hsg::{CityId, UserId};
use od_retrieval::{recall_against_exact, RetrievalConfig, Retriever, Tier};
use od_serve::{EngineConfig, Funnel, FunnelConfig};
use od_tensor::SimdLevel;
use odnet_core::{
    train, CandidateInput, FeatureExtractor, FrozenOdNet, GroupInput, OdNetModel, OdnetConfig,
    Variant, XST_DIM,
};
use serde::Serialize;
use std::sync::Arc;
use std::time::Instant;

#[derive(Serialize)]
struct SimdReport {
    level: String,
    queries: usize,
    scalar_ns_per_query: f64,
    simd_ns_per_query: f64,
    /// scalar / detected-level mean latency (the ≥2x gate on x86_64).
    speedup: f64,
}

#[derive(Serialize)]
struct PrunedReport {
    /// Trained-world accuracy of the pruned tier against the exact oracle.
    recall_at_64: f64,
    scanned_exact: u64,
    scanned_pruned: u64,
    /// scanned_exact / scanned_pruned (the ≥5x gate).
    scan_reduction: f64,
    /// Paper-scale single-thread retrieval throughput per tier.
    exact_req_per_sec: f64,
    pruned_req_per_sec: f64,
    ncentroids: usize,
    nprobe: usize,
}

#[derive(Serialize)]
struct FunnelReport {
    num_users: usize,
    num_cities: usize,
    embed_dim: usize,
    artifact_mode: String,
    top_k: usize,
    requests: usize,
    requests_per_sec: f64,
    mean_us_per_request: f64,
}

#[derive(Serialize)]
struct Report {
    generated_by: String,
    scale: String,
    threads_available: usize,
    simd: SimdReport,
    pruned: PrunedReport,
    funnel: FunnelReport,
}

/// Deterministic user spread across the whole table (Knuth hash), so
/// queries fault distinct rows instead of re-hitting one hot line.
fn probe_user(i: usize, num_users: usize) -> UserId {
    UserId(((i as u64 * 2_654_435_761) % num_users as u64) as u32)
}

/// Mean ns/query of `f` over `queries` calls.
fn time_queries(queries: usize, mut f: impl FnMut(usize)) -> f64 {
    let t = Instant::now();
    for i in 0..queries {
        f(i);
    }
    t.elapsed().as_nanos() as f64 / queries as f64
}

/// Trained 200-city fixture — the recall numbers need tables with real
/// structure (same recipe as `tests/recall_gate.rs`).
fn trained_frozen(cities: usize) -> Arc<FrozenOdNet> {
    let ds = od_data::FliggyDataset::generate(od_data::FliggyConfig {
        num_users: 120,
        num_cities: cities,
        horizon_days: 400,
        bookings_per_user: (3, 6),
        ..od_data::FliggyConfig::default()
    });
    let config = OdnetConfig {
        epochs: 2,
        ..OdnetConfig::tiny()
    };
    let fx = FeatureExtractor::new(config.max_long_seq, config.max_short_seq);
    let groups = fx.groups_from_samples(&ds, &ds.train);
    let mut model = OdNetModel::new(
        Variant::OdnetG,
        config,
        ds.world.num_users(),
        ds.world.num_cities(),
        None,
    );
    train(&mut model, &groups);
    Arc::new(model.freeze())
}

/// A featurization-free ranking group: the funnel bench measures the
/// retrieve→rank pipeline, so candidates carry neutral xst features and
/// no history (history cost is the ranker's own benchmark's subject).
fn funnel_group(user: UserId, pairs: &[od_retrieval::ScoredPair]) -> GroupInput {
    GroupInput {
        user,
        day: 400,
        current_city: CityId(0),
        lt_origins: Vec::new(),
        lt_dests: Vec::new(),
        lt_days: Vec::new(),
        st_origins: Vec::new(),
        st_dests: Vec::new(),
        st_days: Vec::new(),
        candidates: pairs
            .iter()
            .map(|p| CandidateInput {
                origin: p.origin,
                dest: p.dest,
                xst_o: [0.25; XST_DIM],
                xst_d: [0.75; XST_DIM],
                label_o: 0.0,
                label_d: 0.0,
            })
            .collect(),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick" || a == "--test")
        || std::env::var("CRITERION_QUICK")
            .map(|v| v == "1")
            .unwrap_or(false);
    const K: usize = 64;
    let (users, cities, embed_dim, scale, simd_queries, funnel_requests) = if quick {
        (40_000, 50, 8, "smoke", 200, 50)
    } else {
        // Paper Table I magnitude: 2.6M users, 200 origin/dest cities.
        (2_600_000, 200, 16, "paper", 2_000, 1_000)
    };

    eprintln!("freezing untrained ODNET-G at {users} users × {cities} cities (d = {embed_dim})…");
    let config = OdnetConfig {
        embed_dim,
        ..OdnetConfig::default()
    };
    let t = Instant::now();
    let frozen = OdNetModel::new(Variant::OdnetG, config, users, cities, None).freeze();
    eprintln!("  frozen in {:.1}s", t.elapsed().as_secs_f64());

    // Serve everything below from the zero-copy mmap path — the gate
    // asks for paper-scale numbers "via mmap", and it is how a replica
    // actually holds 2.6M-user tables.
    let dir = std::env::temp_dir().join(format!("odnet_retrieval_bench_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let odz_path = dir.join("artifact.odz");
    frozen.save_bin(&odz_path).expect("write .odz artifact");
    drop(frozen);
    let mapped = Arc::new(FrozenOdNet::load_bin_mmap(&odz_path).expect("mmap artifact"));

    // ── 1. SIMD vs scalar exact brute force ─────────────────────────────
    let scalar = Retriever::build(
        Arc::clone(&mapped),
        RetrievalConfig {
            level: Some(SimdLevel::Scalar),
            ..RetrievalConfig::default()
        },
    );
    let auto = Retriever::build(Arc::clone(&mapped), RetrievalConfig::default());
    eprintln!("detected SIMD level: {:?}", auto.level());
    // Warm the mapping so page faults are not attributed to either level.
    for i in 0..simd_queries {
        std::hint::black_box(auto.top_k(probe_user(i, users), K, Tier::Exact));
    }
    // Interleaved best-of-chunk timing: a single long measurement on a
    // small shared box is at the mercy of whatever else the machine
    // runs during it. Alternating short chunks and keeping each level's
    // best chunk compares the two kernels under their least-disturbed
    // conditions — interference inflates both levels' discarded chunks
    // instead of whichever level it happened to land on.
    let chunks = 8;
    let per_chunk = (simd_queries / chunks).max(1);
    let (mut scalar_ns, mut simd_ns) = (f64::INFINITY, f64::INFINITY);
    for c in 0..chunks {
        let t = time_queries(per_chunk, |i| {
            std::hint::black_box(scalar.top_k(
                probe_user(c * per_chunk + i, users),
                K,
                Tier::Exact,
            ));
        });
        scalar_ns = scalar_ns.min(t);
        let t = time_queries(per_chunk, |i| {
            std::hint::black_box(auto.top_k(probe_user(c * per_chunk + i, users), K, Tier::Exact));
        });
        simd_ns = simd_ns.min(t);
    }
    let speedup = scalar_ns / simd_ns;
    eprintln!(
        "exact top-{K}: scalar {:.1}us, {:?} {:.1}us ({speedup:.2}x)",
        scalar_ns / 1e3,
        auto.level(),
        simd_ns / 1e3
    );
    if cfg!(target_arch = "x86_64") && auto.level() != SimdLevel::Scalar && !quick {
        assert!(
            speedup >= 2.0,
            "SIMD exact top-k must clear 2x scalar on x86_64 (got {speedup:.2}x)"
        );
    }

    // ── 2. Pruned tier: recall on a trained world, latency at scale ─────
    eprintln!("training the {cities}-city recall fixture…");
    let trained = trained_frozen(cities);
    let exact_r = Retriever::build(Arc::clone(&trained), RetrievalConfig::default());
    let pruned_r = Retriever::build(Arc::clone(&trained), RetrievalConfig::default());
    let recall_users = 120;
    let (mut recall_sum, mut scanned_exact, mut scanned_pruned) = (0.0f64, 0u64, 0u64);
    for u in 0..recall_users {
        let want = exact_r.top_k(UserId(u as u32), K, Tier::Exact);
        let got = pruned_r.top_k(UserId(u as u32), K, Tier::Pruned);
        recall_sum += recall_against_exact(&want.pairs, &got.pairs);
        scanned_exact += want.stats.scanned;
        scanned_pruned += got.stats.scanned;
    }
    let recall = recall_sum / recall_users as f64;
    let reduction = scanned_exact as f64 / scanned_pruned as f64;
    eprintln!("trained world: recall@{K} = {recall:.4}, scan reduction = {reduction:.2}x");
    if !quick {
        assert!(recall >= 0.99, "pruned recall@{K} {recall:.4} below 0.99");
        assert!(reduction >= 5.0, "scan reduction {reduction:.2}x below 5x");
    }
    // Per-tier retrieval throughput at paper scale (single thread, mmap).
    let exact_ns = time_queries(simd_queries, |i| {
        std::hint::black_box(auto.top_k(probe_user(i, users), K, Tier::Exact));
    });
    let pruned_ns = time_queries(simd_queries, |i| {
        std::hint::black_box(auto.top_k(probe_user(i, users), K, Tier::Pruned));
    });
    eprintln!(
        "paper-scale retrieval: exact {:.0} req/s, pruned {:.0} req/s",
        1e9 / exact_ns,
        1e9 / pruned_ns
    );

    // ── 3. End-to-end funnel throughput (retrieve → rank, mmap) ─────────
    let funnel = Funnel::new(
        Arc::clone(&mapped),
        0xF00D,
        EngineConfig {
            workers: 1,
            ..EngineConfig::default()
        },
        FunnelConfig {
            recall_probe_every: 64,
            ..FunnelConfig::default()
        },
    );
    // Warm-up request fills workspace pools.
    funnel
        .recommend(probe_user(0, users), K, |pairs| {
            funnel_group(probe_user(0, users), pairs)
        })
        .expect("funnel warm-up");
    let funnel_ns = time_queries(funnel_requests, |i| {
        let user = probe_user(i, users);
        let rec = funnel
            .recommend(user, K, |pairs| funnel_group(user, pairs))
            .expect("funnel request");
        assert_eq!(rec.pairs.len(), K);
        std::hint::black_box(rec);
    });
    funnel.shutdown();
    let funnel_rps = 1e9 / funnel_ns;
    eprintln!(
        "funnel (retrieve top-{K} → rank, mmap): {funnel_rps:.0} req/s \
         ({:.0}us/request)",
        funnel_ns / 1e3
    );

    let _ = std::fs::remove_dir_all(&dir);

    if quick {
        eprintln!("smoke scale: leaving the committed BENCH_retrieval.json untouched");
        return;
    }
    let report = Report {
        generated_by: "cargo bench --bench retrieval_bench".to_string(),
        scale: scale.to_string(),
        threads_available: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        simd: SimdReport {
            level: format!("{:?}", auto.level()),
            queries: simd_queries,
            scalar_ns_per_query: scalar_ns,
            simd_ns_per_query: simd_ns,
            speedup,
        },
        pruned: PrunedReport {
            recall_at_64: recall,
            scanned_exact,
            scanned_pruned,
            scan_reduction: reduction,
            exact_req_per_sec: 1e9 / exact_ns,
            pruned_req_per_sec: 1e9 / pruned_ns,
            ncentroids: pruned_r.ncentroids(),
            nprobe: pruned_r.nprobe(),
        },
        funnel: FunnelReport {
            num_users: users,
            num_cities: cities,
            embed_dim,
            artifact_mode: "mmap".to_string(),
            top_k: K,
            requests: funnel_requests,
            requests_per_sec: funnel_rps,
            mean_us_per_request: funnel_ns / 1e3,
        },
    };
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_retrieval.json");
    let pretty = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(path, pretty + "\n").expect("write BENCH_retrieval.json");
    println!("wrote {path}");
}
