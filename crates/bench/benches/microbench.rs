//! Criterion micro-benchmarks of the components on ODNET's serving path:
//! dense matmul, multi-head attention, HSG neighbor expansion, Algorithm 1
//! embedding, MMoE head, GBDT prediction, and end-to-end group scoring.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use od_bench::methods::{fit_method, Method};
use od_bench::Scale;
use od_hsg::{CityId, Metapath, UserId};
use od_tensor::nn::MultiHeadSelfAttention;
use od_tensor::{init, Graph, ParamStore, Shape};
use odnet_core::{FeatureExtractor, OdNetModel, OdnetConfig, Variant};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_matmul(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let a = init::gaussian(Shape::Matrix(64, 64), 0.0, 1.0, &mut rng);
    let b = init::gaussian(Shape::Matrix(64, 64), 0.0, 1.0, &mut rng);
    c.bench_function("matmul_64x64", |bencher| {
        bencher.iter(|| od_tensor::matmul(black_box(&a), black_box(&b)))
    });
}

fn bench_multihead_attention(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let mut store = ParamStore::new();
    let mha = MultiHeadSelfAttention::new(&mut store, "mha", 16, 4, &mut rng);
    let seq = init::gaussian(Shape::Matrix(12, 16), 0.0, 0.5, &mut rng);
    c.bench_function("mha_forward_t12_d16_h4", |bencher| {
        bencher.iter_batched(
            Graph::new,
            |mut g| {
                let e = g.input(seq.clone());
                black_box(mha.forward(&mut g, &store, e));
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_hsg_neighbor_expansion(c: &mut Criterion) {
    let ds = od_bench::fliggy_dataset(Scale::Smoke);
    let hsg = od_bench::build_hsg(&ds);
    c.bench_function("hsg_city_neighbor_cities", |bencher| {
        bencher.iter(|| {
            for city in 0..hsg.num_cities() as u32 {
                black_box(hsg.city_neighbor_cities(CityId(city), Metapath::RHO2));
            }
        })
    });
}

fn bench_hsgc_embedding(c: &mut Criterion) {
    let ds = od_bench::fliggy_dataset(Scale::Smoke);
    let hsg = od_bench::build_hsg(&ds);
    let cfg = OdnetConfig {
        epochs: 1,
        workers: 1,
        ..Scale::Smoke.model_config()
    };
    let model = OdNetModel::new(
        Variant::Odnet,
        cfg.clone(),
        ds.world.num_users(),
        ds.world.num_cities(),
        Some(hsg),
    );
    let fx = FeatureExtractor::new(cfg.max_long_seq, cfg.max_short_seq);
    let group = fx
        .groups_from_samples(&ds, &ds.train)
        .into_iter()
        .find(|g| !g.lt_origins.is_empty())
        .expect("group with history");
    c.bench_function("odnet_forward_group_k2", |bencher| {
        bencher.iter_batched(
            Graph::new,
            |mut g| {
                black_box(model.forward_group(&mut g, &group));
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_end_to_end_scoring(c: &mut Criterion) {
    let ds = od_bench::fliggy_dataset(Scale::Smoke);
    let cfg = Scale::Smoke.model_config();
    let fx = FeatureExtractor::new(cfg.max_long_seq, cfg.max_short_seq);
    // MostPop and GBDT are cheap enough to fit inside the bench setup.
    let (mostpop, _) = fit_method(Method::MostPop, &ds, Scale::Smoke, &fx);
    let (gbdt, _) = fit_method(Method::Gbdt, &ds, Scale::Smoke, &fx);
    let case = fx.group_from_eval_case(&ds, &ds.eval_cases[0]);
    c.bench_function("mostpop_score_case", |bencher| {
        bencher.iter(|| black_box(mostpop.score_group(&case)))
    });
    c.bench_function("gbdt_score_case", |bencher| {
        bencher.iter(|| black_box(gbdt.score_group(&case)))
    });
}

fn bench_serving_recall(c: &mut Criterion) {
    let ds = od_bench::fliggy_dataset(Scale::Smoke);
    let day = ds.train_end_day();
    c.bench_function("serving_recall_heuristic_30_pairs", |bencher| {
        bencher.iter(|| black_box(od_bench::heuristic_candidates(&ds, UserId(3), day, 30)))
    });
    // The production path: artifact-table retrieval via od-retrieval.
    let model = OdNetModel::new(
        Variant::OdnetG,
        OdnetConfig::tiny(),
        ds.world.num_users(),
        ds.world.num_cities(),
        None,
    );
    let retriever = od_retrieval::Retriever::build(
        std::sync::Arc::new(model.freeze()),
        od_retrieval::RetrievalConfig::default(),
    );
    c.bench_function("serving_recall_retrieval_30_pairs", |bencher| {
        bencher.iter(|| black_box(od_bench::recall_candidates(&retriever, UserId(3), 30)))
    });
}

criterion_group!(
    benches,
    bench_matmul,
    bench_multihead_attention,
    bench_hsg_neighbor_expansion,
    bench_hsgc_embedding,
    bench_end_to_end_scoring,
    bench_serving_recall
);
criterion_main!(benches);
