//! Closed-loop throughput benchmark of the concurrent serving engine.
//!
//! Two experiments, both over a 1-candidate-heavy request mix drawn from a
//! small pool of distinct user contexts (the workload micro-batching is
//! built for — tiny groups that waste the trunk unless merged):
//!
//! 1. **Worker scaling** — engines with 1/2/4/8 workers, each driven by
//!    `2 × workers` closed-loop clients (wrk-style: offered concurrency
//!    scales with the engine). More pending requests per drain means
//!    larger coalesced batches, so requests/sec should rise monotonically
//!    with workers even on a single core.
//! 2. **Coalescing on vs off** — identical engines (2 workers) except for
//!    the `coalesce` flag, isolating what cross-request micro-batching
//!    itself buys.
//! 3. **Metrics overhead** — identical engines (2 workers, coalescing on)
//!    with the per-request stage clock on vs off. The accounting counters
//!    stay on in both configurations (they are part of the engine
//!    contract); what is toggled is the ~7 stage-timestamp reads per
//!    request. Measured as three back-to-back on/off *pairs* (order
//!    alternating) and judged on the best pair's ratio: on a shared
//!    single-core CI box, ambient load perturbs individual runs by more
//!    than the effect size, but it perturbs both halves of a
//!    back-to-back pair together — and a *real* overhead regression
//!    (say, reintroduced cache-line contention in the histogram)
//!    depresses every pair, while noise only dents some. With
//!    `ODNET_OVERHEAD_GATE=1` the run *fails* unless the best pair is
//!    within 3% — the ci.sh gate.
//!
//!    The same pair methodology also prices the request-scoped tracer:
//!    identical runs with the global tracer at its production default
//!    (10 ms tail threshold, 1-in-64 sampling) vs disabled, judged on the
//!    best of three pairs and gated at 3% under `ODNET_OVERHEAD_GATE=1`.
//! 4. **Hot-swap overhead** — identical engines (2 workers, coalescing on)
//!    with a publisher hot-swapping a content-identical model generation
//!    every `total/8` completed requests vs a pinned artifact. Generations
//!    are pre-built before the clock starts (a production publish installs
//!    an already-loaded artifact, so construction is deployment cost, not
//!    swap cost); what's measured is the publish path plus the per-drain
//!    slot load — two refcount ops — so swapping should be in the noise.
//!    Judged like experiment 3 but on the best of five 20k-request
//!    back-to-back pairs (the publisher thread adds scheduling noise on a
//!    single-core box), and gated at 3% under `ODNET_OVERHEAD_GATE=1`.
//!
//! 5. **HTTP tier** — the same closed-loop methodology pointed at the
//!    od-http serving tier over a loopback socket (2-worker engine behind
//!    the listener, 4 keep-alive client connections posting
//!    `/v1/score`). Every `200` body is decoded and verified bit-exact
//!    against direct scoring, so the reported requests/sec prices the
//!    full parse → dispatch → engine → serialize → write path, and the
//!    in-process/HTTP ratio is the wire tax.
//!
//! Every response is verified bit-for-bit against direct single-threaded
//! `FrozenOdNet::score_group` scores while measuring. Results land in
//! `BENCH_throughput.json` at the repository root (skipped under quick
//! runs so smoke gates never clobber the committed full-scale numbers).
//!
//! Run with `cargo bench --bench throughput_bench`; set
//! `CRITERION_QUICK=1` (or pass `--quick`) for a fast smoke run.

use od_bench::Scale;
use od_http::{Server, ServerConfig};
use od_serve::{
    drive, drive_http, drive_swapping, score_all, Engine, EngineConfig, Funnel, FunnelConfig,
    HttpLoadReport, LoadReport,
};
use odnet_core::{FeatureExtractor, FrozenOdNet, GroupInput, OdNetModel, OdnetConfig, Variant};
use std::sync::Arc;

/// Frozen model plus the request-template pool: for each of several users,
/// four 1-candidate groups and one 8-candidate group (an 80% singleton mix).
fn fixture() -> (Arc<FrozenOdNet>, Vec<GroupInput>) {
    let ds = od_bench::fliggy_dataset(Scale::Smoke);
    let hsg = od_bench::build_hsg(&ds);
    let cfg = OdnetConfig {
        per_candidate_scoring: false,
        workers: 1,
        ..Scale::Smoke.model_config()
    };
    let fx = FeatureExtractor::new(cfg.max_long_seq, cfg.max_short_seq);
    let model = OdNetModel::new(
        Variant::Odnet,
        cfg,
        ds.world.num_users(),
        ds.world.num_cities(),
        Some(hsg),
    );
    let day = ds.train_end_day();
    let mut groups = Vec::new();
    let users: Vec<_> = (0..ds.world.num_users() as u32)
        .map(od_hsg::UserId)
        .filter(|&u| !ds.long_term(u, day).is_empty())
        .take(4)
        .collect();
    assert!(!users.is_empty(), "dataset has no users with history");
    let frozen = Arc::new(model.freeze());
    // Candidates come from the production retrieval stage over the frozen
    // artifact's tables — a top-8 per user always materializes, so no
    // minimum-pairs assertion on heuristic recall behavior is needed.
    let retriever = od_retrieval::Retriever::build(
        Arc::clone(&frozen),
        od_retrieval::RetrievalConfig::default(),
    );
    for &user in &users {
        let pairs = od_bench::recall_candidates(&retriever, user, 8);
        for p in pairs.iter().take(4) {
            groups.push(fx.group_for_serving(&ds, user, day, std::slice::from_ref(p)));
        }
        groups.push(fx.group_for_serving(&ds, user, day, &pairs));
    }
    (frozen, groups)
}

fn run(
    model: &Arc<FrozenOdNet>,
    groups: &[GroupInput],
    expected: &[Vec<(f32, f32)>],
    workers: usize,
    coalesce: bool,
    stage_timing: bool,
    total: usize,
) -> LoadReport {
    run_swapping(
        model,
        groups,
        expected,
        workers,
        coalesce,
        stage_timing,
        total,
        0,
    )
}

/// [`run`], optionally hot-swapping a content-identical generation into
/// the engine every `swap_every` completed requests (0 = pinned).
#[allow(clippy::too_many_arguments)]
fn run_swapping(
    model: &Arc<FrozenOdNet>,
    groups: &[GroupInput],
    expected: &[Vec<(f32, f32)>],
    workers: usize,
    coalesce: bool,
    stage_timing: bool,
    total: usize,
    swap_every: usize,
) -> LoadReport {
    let engine = Engine::new(
        Arc::clone(model),
        EngineConfig {
            workers,
            queue_capacity: 1024,
            max_batch: 64,
            coalesce,
            // Fault hooks compiled in but disabled: this is the
            // configuration whose throughput the <2% regression gate
            // guards.
            fail_point: None,
            stage_timing,
            ..EngineConfig::default()
        },
    );
    let report = if swap_every > 0 {
        // Generations are pre-built outside the timed region: a production
        // publish hands the engine an already-loaded artifact (an mmap'd
        // .odz), so artifact construction is deployment cost, not swap
        // cost. Two content-identical clones alternate so consecutive
        // publishes always install a different allocation, and the pool's
        // strong refs keep retired-generation teardown out of the
        // measurement too.
        let pool: Vec<Arc<FrozenOdNet>> = (0..2).map(|_| Arc::new((**model).clone())).collect();
        let turn = std::sync::atomic::AtomicUsize::new(0);
        let source = move || {
            let i = turn.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            Arc::clone(&pool[i % pool.len()])
        };
        let r = drive_swapping(
            &engine,
            groups,
            Some(expected),
            total,
            workers * 2,
            swap_every,
            &source,
        );
        assert!(r.publishes >= 1, "publisher never swapped");
        assert_eq!(
            r.requests + r.faulted,
            total as u64,
            "lost tickets across hot swaps"
        );
        r
    } else {
        drive(&engine, groups, Some(expected), total, workers * 2)
    };
    assert_eq!(
        report.mismatches, 0,
        "engine responses diverged from direct scoring"
    );
    report
}

/// One back-to-back (stage clock on, stage clock off) pair. `flip`
/// reverses the execution order so drift in ambient load cancels across
/// pairs instead of biasing one side.
fn overhead_pair(
    model: &Arc<FrozenOdNet>,
    groups: &[GroupInput],
    expected: &[Vec<(f32, f32)>],
    total: usize,
    flip: bool,
) -> (LoadReport, LoadReport) {
    if flip {
        let off = run(model, groups, expected, 2, true, false, total);
        let on = run(model, groups, expected, 2, true, true, total);
        (on, off)
    } else {
        let on = run(model, groups, expected, 2, true, true, total);
        let off = run(model, groups, expected, 2, true, false, total);
        (on, off)
    }
}

/// One back-to-back (tracer enabled, tracer disabled) pair. The enabled
/// side runs the production default — 10 ms slow threshold, 1-in-64
/// sampling — so every request pays `begin`/`record`/`end` while only a
/// sliver reaches the ring. `flip` alternates execution order like
/// [`overhead_pair`].
fn trace_overhead_pair(
    model: &Arc<FrozenOdNet>,
    groups: &[GroupInput],
    expected: &[Vec<(f32, f32)>],
    total: usize,
    flip: bool,
) -> (LoadReport, LoadReport) {
    let traced = |model, groups, expected, total| {
        od_obs::trace::global().enable(od_obs::trace::TraceConfig::default());
        let r = run(model, groups, expected, 2, true, true, total);
        od_obs::trace::global().disable();
        r
    };
    if flip {
        let off = run(model, groups, expected, 2, true, true, total);
        let on = traced(model, groups, expected, total);
        (on, off)
    } else {
        let on = traced(model, groups, expected, total);
        let off = run(model, groups, expected, 2, true, true, total);
        (on, off)
    }
}

/// Drive the HTTP tier over loopback with the same workload: a single
/// 2-worker funnel shard behind an od-http listener, `clients` keep-alive
/// connections posting `/v1/score`, every 200 verified bit-exact.
fn run_http(
    model: &Arc<FrozenOdNet>,
    groups: &[GroupInput],
    expected: &[Vec<(f32, f32)>],
    total: usize,
    clients: usize,
) -> HttpLoadReport {
    let shard = Arc::new(Funnel::new(
        Arc::clone(model),
        0xBE2C,
        EngineConfig {
            workers: 2,
            queue_capacity: 1024,
            max_batch: 64,
            coalesce: true,
            fail_point: None,
            stage_timing: true,
            ..EngineConfig::default()
        },
        FunnelConfig {
            retrieval: od_retrieval::RetrievalConfig::default(),
            tier: od_retrieval::Tier::Exact,
            recall_probe_every: 1,
        },
    ));
    // The bench only posts /v1/score; the featurizer is the recommend
    // route's hook and never runs here.
    let donor = groups[0].clone();
    let featurizer: od_http::Featurizer = Arc::new(move |_, _| donor.clone());
    let server = Server::start(
        vec![shard],
        featurizer,
        ServerConfig {
            conn_workers: clients,
            ..ServerConfig::default()
        },
    )
    .expect("bind bench http server");
    let report = drive_http(server.addr(), groups, Some(expected), total, clients);
    assert_eq!(
        report.mismatches, 0,
        "wire responses diverged from direct scoring"
    );
    assert_eq!(report.failed, 0, "wire responses failed under bench load");
    let drain = server.shutdown();
    assert!(drain.clean, "bench server must drain cleanly");
    report
}

#[derive(serde::Serialize)]
struct Report {
    generated_by: String,
    methodology: String,
    scale: String,
    threads_available: usize,
    requests_per_run: usize,
    template_pool: usize,
    /// Coalescing engines at 1/2/4/8 workers, clients = 2 × workers.
    worker_scaling: Vec<LoadReport>,
    /// Same engine (2 workers, 4 clients) with coalescing on vs off.
    coalesce_on: LoadReport,
    coalesce_off: LoadReport,
    /// requests/sec ratio of coalescing on over off.
    coalesce_speedup: f64,
    /// Same engine (2 workers, 4 clients, coalescing) with the per-request
    /// stage clock on vs off — the best of three back-to-back pairs.
    metrics_on: LoadReport,
    metrics_off: LoadReport,
    /// on/off requests/sec ratio of every back-to-back pair, in run order.
    metrics_overhead_ratios: Vec<f64>,
    /// Best pair's ratio (1.0 = free; the ci.sh gate requires ≥ 0.97).
    metrics_overhead_ratio: f64,
    /// Same engine (2 workers, 4 clients, coalescing, stage clock on) with
    /// the request-scoped tracer enabled (10 ms tail threshold, 1-in-64
    /// sampling) vs disabled — the best of three back-to-back pairs.
    trace_on: LoadReport,
    trace_off: LoadReport,
    /// enabled/disabled requests/sec ratio of every back-to-back pair.
    trace_overhead_ratios: Vec<f64>,
    /// Best pair's ratio (the ci.sh gate requires ≥ 0.97).
    trace_overhead_ratio: f64,
    /// Same engine (2 workers, 4 clients, coalescing) with a publisher
    /// hot-swapping generations every total/8 requests vs pinned — the
    /// best of three back-to-back pairs.
    swap_on: LoadReport,
    swap_off: LoadReport,
    /// swap/pinned requests/sec ratio of every back-to-back pair.
    swap_overhead_ratios: Vec<f64>,
    /// Best pair's ratio (the ci.sh gate requires ≥ 0.97).
    swap_overhead_ratio: f64,
    /// The same workload over the od-http tier on loopback (one 2-worker
    /// shard, 4 keep-alive connections), every 200 verified bit-exact.
    http_tier: HttpLoadReport,
    /// HTTP-tier requests/sec over the equivalent in-process engine's —
    /// the wire tax (parse + serialize + loopback round trip).
    http_vs_inprocess_ratio: f64,
}

fn main() {
    let quick = std::env::var("CRITERION_QUICK").is_ok_and(|v| v == "1")
        || std::env::args().any(|a| a == "--quick");
    let total = if quick { 2_000 } else { 20_000 };
    let (model, groups) = fixture();
    let expected = score_all(&model, &groups);

    let mut worker_scaling = Vec::new();
    for workers in [1usize, 2, 4, 8] {
        let r = run(&model, &groups, &expected, workers, true, true, total);
        println!(
            "workers {workers}: {:.0} req/s, p50 {:.0}us, p99 {:.0}us, {:.2} req/forward",
            r.requests_per_sec, r.p50_us, r.p99_us, r.mean_requests_per_forward
        );
        worker_scaling.push(r);
    }

    let coalesce_on = run(&model, &groups, &expected, 2, true, true, total);
    let coalesce_off = run(&model, &groups, &expected, 2, false, true, total);
    let coalesce_speedup = coalesce_on.requests_per_sec / coalesce_off.requests_per_sec;
    println!(
        "coalescing on {:.0} req/s vs off {:.0} req/s ({coalesce_speedup:.2}x)",
        coalesce_on.requests_per_sec, coalesce_off.requests_per_sec
    );

    // A 3% gate needs more signal than a 2k-request smoke run provides, so
    // the overhead pairs always drive at least 10k requests per run.
    let overhead_total = total.max(10_000);
    let mut pairs = Vec::new();
    for i in 0..3 {
        let (on, off) = overhead_pair(&model, &groups, &expected, overhead_total, i % 2 == 1);
        println!(
            "overhead pair {i}: on {:.0} req/s vs off {:.0} req/s (ratio {:.3})",
            on.requests_per_sec,
            off.requests_per_sec,
            on.requests_per_sec / off.requests_per_sec
        );
        pairs.push((on, off));
    }
    let metrics_overhead_ratios: Vec<f64> = pairs
        .iter()
        .map(|(on, off)| on.requests_per_sec / off.requests_per_sec)
        .collect();
    let best = metrics_overhead_ratios
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .map(|(i, _)| i)
        .expect("three pairs ran");
    let metrics_overhead_ratio = metrics_overhead_ratios[best];
    let (metrics_on, metrics_off) = pairs.swap_remove(best);
    println!(
        "stage clock on {:.0} req/s vs off {:.0} req/s (best pair ratio {metrics_overhead_ratio:.3})",
        metrics_on.requests_per_sec, metrics_off.requests_per_sec
    );
    if std::env::var("ODNET_OVERHEAD_GATE").is_ok_and(|v| v == "1") {
        assert!(
            metrics_overhead_ratio >= 0.97,
            "stage clock costs more than 3% of throughput in every pair: \
             ratios {metrics_overhead_ratios:?}",
        );
        println!("overhead gate passed: stage clock within 3% of metrics-off throughput");
    }

    // Tracing overhead: identical runs except the global tracer toggles
    // between the production default (10 ms tail threshold, 1-in-64
    // sampling) and fully disabled. Every traced request pays span
    // bookkeeping in thread-local stamps; only kept traces touch the
    // shared ring, so the enabled side should sit within the same 3%
    // envelope as the stage clock.
    let mut trace_pairs = Vec::new();
    for i in 0..3 {
        let (on, off) = trace_overhead_pair(&model, &groups, &expected, overhead_total, i % 2 == 1);
        println!(
            "trace pair {i}: enabled {:.0} req/s vs disabled {:.0} req/s (ratio {:.3})",
            on.requests_per_sec,
            off.requests_per_sec,
            on.requests_per_sec / off.requests_per_sec
        );
        trace_pairs.push((on, off));
    }
    let trace_overhead_ratios: Vec<f64> = trace_pairs
        .iter()
        .map(|(on, off)| on.requests_per_sec / off.requests_per_sec)
        .collect();
    let best_trace = trace_overhead_ratios
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .map(|(i, _)| i)
        .expect("three trace pairs ran");
    let trace_overhead_ratio = trace_overhead_ratios[best_trace];
    let (trace_on, trace_off) = trace_pairs.swap_remove(best_trace);
    println!(
        "tracer enabled {:.0} req/s vs disabled {:.0} req/s (best pair ratio {trace_overhead_ratio:.3})",
        trace_on.requests_per_sec, trace_off.requests_per_sec
    );
    if std::env::var("ODNET_OVERHEAD_GATE").is_ok_and(|v| v == "1") {
        assert!(
            trace_overhead_ratio >= 0.97,
            "request tracing costs more than 3% of throughput in every pair: \
             ratios {trace_overhead_ratios:?}",
        );
        println!("overhead gate passed: request tracing within 3% of untraced throughput");
    }

    // Hot-swap overhead: same back-to-back-pair methodology as the stage
    // clock, but with more signal — the swap side adds a publisher thread,
    // whose scheduling noise on a single-core box swamps the (near-zero)
    // effect in short runs. Five pairs of 20k requests keep the gate's
    // false-failure rate negligible while still judging on the best pair.
    // ~8 publishes per swap-enabled run.
    let swap_total = overhead_total.max(20_000);
    let swap_every = (swap_total / 8).max(1);
    let mut swap_pairs = Vec::new();
    for i in 0..5 {
        let (on, off) = if i % 2 == 1 {
            let off = run(&model, &groups, &expected, 2, true, true, swap_total);
            let on = run_swapping(
                &model, &groups, &expected, 2, true, true, swap_total, swap_every,
            );
            (on, off)
        } else {
            let on = run_swapping(
                &model, &groups, &expected, 2, true, true, swap_total, swap_every,
            );
            let off = run(&model, &groups, &expected, 2, true, true, swap_total);
            (on, off)
        };
        println!(
            "swap pair {i}: swapping {:.0} req/s ({} publishes) vs pinned {:.0} req/s (ratio {:.3})",
            on.requests_per_sec,
            on.publishes,
            off.requests_per_sec,
            on.requests_per_sec / off.requests_per_sec
        );
        swap_pairs.push((on, off));
    }
    let swap_overhead_ratios: Vec<f64> = swap_pairs
        .iter()
        .map(|(on, off)| on.requests_per_sec / off.requests_per_sec)
        .collect();
    let best_swap = swap_overhead_ratios
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .map(|(i, _)| i)
        .expect("five swap pairs ran");
    let swap_overhead_ratio = swap_overhead_ratios[best_swap];
    let (swap_on, swap_off) = swap_pairs.swap_remove(best_swap);
    println!(
        "hot-swap {:.0} req/s vs pinned {:.0} req/s (best pair ratio {swap_overhead_ratio:.3})",
        swap_on.requests_per_sec, swap_off.requests_per_sec
    );
    if std::env::var("ODNET_OVERHEAD_GATE").is_ok_and(|v| v == "1") {
        assert!(
            swap_overhead_ratio >= 0.97,
            "hot-swapping costs more than 3% of throughput in every pair: \
             ratios {swap_overhead_ratios:?}",
        );
        println!("overhead gate passed: hot-swap within 3% of pinned throughput");
    }

    // The wire tax: the same 2-worker engine behind the HTTP tier,
    // driven by 4 keep-alive loopback connections.
    let http_tier = run_http(&model, &groups, &expected, total, 4);
    let http_vs_inprocess_ratio = http_tier.requests_per_sec / coalesce_on.requests_per_sec;
    println!(
        "http tier {:.0} req/s vs in-process {:.0} req/s ({:.2}x), p99 {:.0}us, \
         {} retries, {} reconnects",
        http_tier.requests_per_sec,
        coalesce_on.requests_per_sec,
        http_vs_inprocess_ratio,
        http_tier.p99_us,
        http_tier.rejected_retries,
        http_tier.reconnects
    );

    let report = Report {
        generated_by: "cargo bench --bench throughput_bench".to_string(),
        methodology: "closed-loop load generation: clients = 2 x workers, each client \
                      submits and blocks on its ticket; all responses verified bit-exact \
                      against single-threaded scoring during measurement"
            .to_string(),
        scale: "smoke".to_string(),
        threads_available: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        requests_per_run: total,
        template_pool: groups.len(),
        worker_scaling,
        coalesce_on,
        coalesce_off,
        coalesce_speedup,
        metrics_on,
        metrics_off,
        metrics_overhead_ratios,
        metrics_overhead_ratio,
        trace_on,
        trace_off,
        trace_overhead_ratios,
        trace_overhead_ratio,
        swap_on,
        swap_off,
        swap_overhead_ratios,
        swap_overhead_ratio,
        http_tier,
        http_vs_inprocess_ratio,
    };
    if quick {
        println!("quick run: leaving the committed BENCH_throughput.json untouched");
        return;
    }
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_throughput.json");
    let pretty = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(path, pretty + "\n").expect("write BENCH_throughput.json");
    println!("wrote {path}");
}
