//! Closed-loop throughput benchmark of the concurrent serving engine.
//!
//! Two experiments, both over a 1-candidate-heavy request mix drawn from a
//! small pool of distinct user contexts (the workload micro-batching is
//! built for — tiny groups that waste the trunk unless merged):
//!
//! 1. **Worker scaling** — engines with 1/2/4/8 workers, each driven by
//!    `2 × workers` closed-loop clients (wrk-style: offered concurrency
//!    scales with the engine). More pending requests per drain means
//!    larger coalesced batches, so requests/sec should rise monotonically
//!    with workers even on a single core.
//! 2. **Coalescing on vs off** — identical engines (2 workers) except for
//!    the `coalesce` flag, isolating what cross-request micro-batching
//!    itself buys.
//!
//! Every response is verified bit-for-bit against direct single-threaded
//! `FrozenOdNet::score_group` scores while measuring. Results land in
//! `BENCH_throughput.json` at the repository root.
//!
//! Run with `cargo bench --bench throughput_bench`; set
//! `CRITERION_QUICK=1` (or pass `--quick`) for a fast smoke run.

use od_bench::Scale;
use od_serve::{drive, score_all, Engine, EngineConfig, LoadReport};
use odnet_core::{FeatureExtractor, FrozenOdNet, GroupInput, OdNetModel, OdnetConfig, Variant};
use std::sync::Arc;

/// Frozen model plus the request-template pool: for each of several users,
/// four 1-candidate groups and one 8-candidate group (an 80% singleton mix).
fn fixture() -> (Arc<FrozenOdNet>, Vec<GroupInput>) {
    let ds = od_bench::fliggy_dataset(Scale::Smoke);
    let hsg = od_bench::build_hsg(&ds);
    let cfg = OdnetConfig {
        per_candidate_scoring: false,
        workers: 1,
        ..Scale::Smoke.model_config()
    };
    let fx = FeatureExtractor::new(cfg.max_long_seq, cfg.max_short_seq);
    let model = OdNetModel::new(
        Variant::Odnet,
        cfg,
        ds.world.num_users(),
        ds.world.num_cities(),
        Some(hsg),
    );
    let day = ds.train_end_day();
    let mut groups = Vec::new();
    let users: Vec<_> = (0..ds.world.num_users() as u32)
        .map(od_hsg::UserId)
        .filter(|&u| !ds.long_term(u, day).is_empty())
        .take(4)
        .collect();
    assert!(!users.is_empty(), "dataset has no users with history");
    for &user in &users {
        let pairs = od_bench::recall_candidates(&ds, user, day, 64);
        assert!(pairs.len() >= 8, "recall produced too few pairs");
        for p in pairs.iter().take(4) {
            groups.push(fx.group_for_serving(&ds, user, day, std::slice::from_ref(p)));
        }
        groups.push(fx.group_for_serving(&ds, user, day, &pairs[..8]));
    }
    (Arc::new(model.freeze()), groups)
}

fn run(
    model: &Arc<FrozenOdNet>,
    groups: &[GroupInput],
    expected: &[Vec<(f32, f32)>],
    workers: usize,
    coalesce: bool,
    total: usize,
) -> LoadReport {
    let engine = Engine::new(
        Arc::clone(model),
        EngineConfig {
            workers,
            queue_capacity: 1024,
            max_batch: 64,
            coalesce,
            // Fault hooks compiled in but disabled: this is the
            // configuration whose throughput the <2% regression gate
            // guards.
            fail_point: None,
        },
    );
    let report = drive(&engine, groups, Some(expected), total, workers * 2);
    assert_eq!(
        report.mismatches, 0,
        "engine responses diverged from direct scoring"
    );
    report
}

#[derive(serde::Serialize)]
struct Report {
    generated_by: String,
    methodology: String,
    scale: String,
    threads_available: usize,
    requests_per_run: usize,
    template_pool: usize,
    /// Coalescing engines at 1/2/4/8 workers, clients = 2 × workers.
    worker_scaling: Vec<LoadReport>,
    /// Same engine (2 workers, 4 clients) with coalescing on vs off.
    coalesce_on: LoadReport,
    coalesce_off: LoadReport,
    /// requests/sec ratio of coalescing on over off.
    coalesce_speedup: f64,
}

fn main() {
    let quick = std::env::var("CRITERION_QUICK").is_ok_and(|v| v == "1")
        || std::env::args().any(|a| a == "--quick");
    let total = if quick { 2_000 } else { 20_000 };
    let (model, groups) = fixture();
    let expected = score_all(&model, &groups);

    let mut worker_scaling = Vec::new();
    for workers in [1usize, 2, 4, 8] {
        let r = run(&model, &groups, &expected, workers, true, total);
        println!(
            "workers {workers}: {:.0} req/s, p50 {:.0}us, p99 {:.0}us, {:.2} req/forward",
            r.requests_per_sec, r.p50_us, r.p99_us, r.mean_requests_per_forward
        );
        worker_scaling.push(r);
    }

    let coalesce_on = run(&model, &groups, &expected, 2, true, total);
    let coalesce_off = run(&model, &groups, &expected, 2, false, total);
    let coalesce_speedup = coalesce_on.requests_per_sec / coalesce_off.requests_per_sec;
    println!(
        "coalescing on {:.0} req/s vs off {:.0} req/s ({coalesce_speedup:.2}x)",
        coalesce_on.requests_per_sec, coalesce_off.requests_per_sec
    );

    let report = Report {
        generated_by: "cargo bench --bench throughput_bench".to_string(),
        methodology: "closed-loop load generation: clients = 2 x workers, each client \
                      submits and blocks on its ticket; all responses verified bit-exact \
                      against single-threaded scoring during measurement"
            .to_string(),
        scale: "smoke".to_string(),
        threads_available: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        requests_per_run: total,
        template_pool: groups.len(),
        worker_scaling,
        coalesce_on,
        coalesce_off,
        coalesce_speedup,
    };
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_throughput.json");
    let pretty = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(path, pretty + "\n").expect("write BENCH_throughput.json");
    println!("wrote {path}");
}
