//! Artifact cold-start experiment: JSON parse vs `.odz` owned read vs
//! `.odz` zero-copy mmap, at paper scale (2.6M users × 200 cities).
//!
//! Serving cold start is load-to-first-score: a replica is useless until
//! it answers its first request. This bench freezes an untrained ODNET−G
//! at the requested scale (universe sizes are all that matter for table
//! geometry; no training or dataset roll-out is needed), saves it in both
//! formats, and measures each load path's cold start plus the resident
//! memory of 1 vs 4 serving processes mapping the same artifact — the
//! sharing claim: N mmap replicas hold ~one physical copy of the tables
//! (PSS ≈ RSS / N), while N owned-load replicas hold N copies.
//!
//! Full scale writes `BENCH_artifact.json` at the repository root.
//! `CRITERION_QUICK=1` (or `--quick` / `--test`) runs a small-universe
//! smoke that asserts the invariants (bit-identical scores, mmap no
//! slower than JSON) without touching the committed report.
//!
//! The multi-process measurement re-invokes this bench binary as children
//! (`ODNET_ARTIFACT_CHILD=<path>`): each child mmap- or read-loads the
//! artifact, scores once, faults every table page in, then reports its
//! `/proc/self` RSS and PSS while all siblings hold their mappings.

use od_hsg::{CityId, UserId};
use odnet_core::{
    CandidateInput, FrozenOdNet, GroupInput, OdNetModel, OdnetConfig, Variant, XST_DIM,
};
use serde::{Deserialize, Serialize};
use std::io::{BufRead, BufReader, Write};
use std::path::Path;
use std::time::Instant;

/// One child process's self-report, printed as a JSON line on stdout.
#[derive(Debug, Serialize, Deserialize)]
struct ChildReport {
    load_ns: u64,
    first_score_ns: u64,
    touch_ns: u64,
    rss_kb: u64,
    pss_kb: u64,
}

/// One load path's cold-start numbers in the parent process.
#[derive(Debug, Serialize)]
struct ColdStart {
    path: String,
    load_ns: u64,
    first_score_ns: u64,
    cold_start_ns: u64,
}

#[derive(Debug, Serialize)]
struct FleetReport {
    mode: String,
    processes: usize,
    total_rss_kb: u64,
    total_pss_kb: u64,
    mean_load_ns: u64,
}

#[derive(Debug, Serialize)]
struct Report {
    generated_by: String,
    scale: String,
    num_users: usize,
    num_cities: usize,
    embed_dim: usize,
    odz_bytes: u64,
    json_bytes: u64,
    cold_starts: Vec<ColdStart>,
    /// JSON cold start / mmap cold start (the headline number; the
    /// acceptance bar is ≥ 50).
    mmap_cold_start_speedup: f64,
    fleets: Vec<FleetReport>,
}

fn main() {
    if let Ok(path) = std::env::var("ODNET_ARTIFACT_CHILD") {
        child_main(Path::new(&path));
        return;
    }
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick" || a == "--test")
        || std::env::var("CRITERION_QUICK")
            .map(|v| v == "1")
            .unwrap_or(false);

    let (users, cities, embed_dim, scale) = if quick {
        (40_000, 50, 8, "smoke")
    } else {
        // Paper Table I magnitude: 2.6M users, 200 origin/dest cities.
        (2_600_000, 200, 16, "paper")
    };
    eprintln!("freezing untrained ODNET-G at {users} users × {cities} cities (d = {embed_dim})…");
    let config = OdnetConfig {
        embed_dim,
        ..OdnetConfig::default()
    };
    let t = Instant::now();
    let frozen = OdNetModel::new(Variant::OdnetG, config, users, cities, None).freeze();
    eprintln!("  frozen in {:.1}s", t.elapsed().as_secs_f64());

    let dir = std::env::temp_dir().join(format!("odnet_artifact_bench_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let json_path = dir.join("artifact.json");
    let odz_path = dir.join("artifact.odz");

    let t = Instant::now();
    std::fs::write(&json_path, frozen.save_json()).expect("write JSON artifact");
    eprintln!(
        "  JSON artifact written in {:.1}s",
        t.elapsed().as_secs_f64()
    );
    let t = Instant::now();
    frozen.save_bin(&odz_path).expect("write .odz artifact");
    eprintln!(
        "  .odz artifact written in {:.1}s",
        t.elapsed().as_secs_f64()
    );
    let json_bytes = std::fs::metadata(&json_path).map(|m| m.len()).unwrap_or(0);
    let odz_bytes = std::fs::metadata(&odz_path).map(|m| m.len()).unwrap_or(0);
    eprintln!(
        "  sizes: JSON {:.1} MiB, .odz {:.1} MiB",
        json_bytes as f64 / (1 << 20) as f64,
        odz_bytes as f64 / (1 << 20) as f64
    );

    let group = probe_group(users, cities);
    let baseline = frozen.score_group(&group);
    drop(frozen);

    // Cold starts, one path at a time (each loaded copy is dropped before
    // the next so peak memory stays one-copy).
    let mut cold_starts = Vec::new();
    let mut cold = |name: &str, load: &dyn Fn() -> FrozenOdNet| {
        let t = Instant::now();
        let loaded = load();
        let load_ns = t.elapsed().as_nanos() as u64;
        let t = Instant::now();
        let scores = loaded.score_group(&group);
        let first_score_ns = t.elapsed().as_nanos() as u64;
        assert_eq!(scores, baseline, "{name} scores diverged from in-memory");
        eprintln!(
            "  {name:<10} load {:>12.3} ms   first score {:>9.3} ms",
            load_ns as f64 / 1e6,
            first_score_ns as f64 / 1e6
        );
        cold_starts.push(ColdStart {
            path: name.to_string(),
            load_ns,
            first_score_ns,
            cold_start_ns: load_ns + first_score_ns,
        });
    };
    cold("json", &|| {
        let text = std::fs::read_to_string(&json_path).expect("read JSON");
        FrozenOdNet::load_json(&text).expect("parse JSON artifact")
    });
    cold("bin", &|| {
        FrozenOdNet::load_bin(&odz_path).expect("owned binary read")
    });
    cold("mmap", &|| {
        FrozenOdNet::load_bin_mmap(&odz_path).expect("zero-copy mmap")
    });

    let json_cold = cold_starts[0].cold_start_ns;
    let mmap_cold = cold_starts[2].cold_start_ns.max(1);
    let speedup = json_cold as f64 / mmap_cold as f64;
    eprintln!("  mmap cold-start speedup over JSON: {speedup:.0}x");
    assert!(
        speedup >= if quick { 1.0 } else { 50.0 },
        "mmap cold start must beat JSON parse (got {speedup:.1}x)"
    );

    // Fleet resident memory: 1 vs 4 processes mapping the same artifact,
    // plus the owned-read counterfactual at the same process counts.
    let mut fleets = Vec::new();
    for mode in ["mmap", "bin"] {
        for n in [1usize, 4] {
            let fleet = run_fleet(&odz_path, mode, n);
            eprintln!(
                "  {n} process(es), {mode:<4}: total RSS {:>9.1} MiB, total PSS {:>9.1} MiB",
                fleet.total_rss_kb as f64 / 1024.0,
                fleet.total_pss_kb as f64 / 1024.0
            );
            fleets.push(fleet);
        }
    }

    let _ = std::fs::remove_dir_all(&dir);

    if quick {
        eprintln!("smoke scale: skipping BENCH_artifact.json (paper-scale numbers are committed)");
        return;
    }
    let report = Report {
        generated_by: "cargo bench --bench artifact_bench".to_string(),
        scale: scale.to_string(),
        num_users: users,
        num_cities: cities,
        embed_dim,
        odz_bytes,
        json_bytes,
        cold_starts,
        mmap_cold_start_speedup: speedup,
        fleets,
    };
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_artifact.json");
    let pretty = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(path, pretty + "\n").expect("write BENCH_artifact.json");
    println!("wrote {path}");
}

/// A minimal but non-trivial scoring request touching real table rows.
fn probe_group(users: usize, cities: usize) -> GroupInput {
    let city = |i: usize| CityId((i % cities) as u32);
    let cand = |i: usize| CandidateInput {
        origin: city(3 + i),
        dest: city(11 + 2 * i),
        xst_o: [0.25; XST_DIM],
        xst_d: [0.75; XST_DIM],
        label_o: 0.0,
        label_d: 0.0,
    };
    GroupInput {
        user: UserId((users - 1) as u32),
        day: 400,
        current_city: city(1),
        lt_origins: (0..4).map(city).collect(),
        lt_dests: (4..8).map(city).collect(),
        lt_days: vec![10, 40, 90, 200],
        st_origins: vec![city(2)],
        st_dests: vec![city(9)],
        st_days: vec![399],
        candidates: (0..8).map(cand).collect(),
    }
}

/// Spawn `n` children loading `path` in `mode`, keep them alive together
/// (so PSS reflects `n` concurrent mappers), and sum their reports.
fn run_fleet(path: &Path, mode: &str, n: usize) -> FleetReport {
    let exe = std::env::current_exe().expect("current exe");
    let mut children: Vec<std::process::Child> = (0..n)
        .map(|_| {
            std::process::Command::new(&exe)
                .env("ODNET_ARTIFACT_CHILD", path)
                .env("ODNET_ARTIFACT_CHILD_MODE", mode)
                .stdin(std::process::Stdio::piped())
                .stdout(std::process::Stdio::piped())
                .spawn()
                .expect("spawn child")
        })
        .collect();
    let mut readers: Vec<BufReader<std::process::ChildStdout>> = children
        .iter_mut()
        .map(|c| BufReader::new(c.stdout.take().expect("child stdout")))
        .collect();
    // Phase 1: wait until every child holds its loaded artifact.
    for r in &mut readers {
        let mut line = String::new();
        r.read_line(&mut line).expect("child READY");
        assert_eq!(line.trim(), "READY", "unexpected child handshake: {line:?}");
    }
    // Phase 2: all siblings are mapped — tell each to measure itself.
    for c in &mut children {
        let stdin = c.stdin.as_mut().expect("child stdin");
        writeln!(stdin, "measure").expect("signal child");
    }
    let mut total_rss = 0u64;
    let mut total_pss = 0u64;
    let mut load_ns = 0u64;
    for r in &mut readers {
        let mut line = String::new();
        r.read_line(&mut line).expect("child report");
        let rep: ChildReport = serde_json::from_str(line.trim()).expect("child report JSON");
        total_rss += rep.rss_kb;
        total_pss += rep.pss_kb;
        load_ns += rep.load_ns;
    }
    for mut c in children {
        let status = c.wait().expect("child exit");
        assert!(status.success(), "child failed: {status:?}");
    }
    FleetReport {
        mode: mode.to_string(),
        processes: n,
        total_rss_kb: total_rss,
        total_pss_kb: total_pss,
        mean_load_ns: load_ns / n as u64,
    }
}

/// Child mode: load, score once, fault every table page in, then report
/// resident memory when the parent says all siblings are up.
fn child_main(path: &Path) {
    let mode = std::env::var("ODNET_ARTIFACT_CHILD_MODE").unwrap_or_else(|_| "mmap".to_string());
    let t = Instant::now();
    let frozen = match mode.as_str() {
        "bin" => FrozenOdNet::load_bin(path).expect("child owned read"),
        _ => FrozenOdNet::load_bin_mmap(path).expect("child mmap load"),
    };
    let load_ns = t.elapsed().as_nanos() as u64;

    let group = probe_group(frozen.num_users(), frozen.num_cities());
    let t = Instant::now();
    let scores = frozen.score_group(&group);
    assert!(!scores.is_empty());
    let first_score_ns = t.elapsed().as_nanos() as u64;

    // Fault in every page of every table: a long-lived replica eventually
    // touches its whole working set, and the sharing claim is about that
    // steady state, not the first request.
    let t = Instant::now();
    let mut acc = 0.0f64;
    for i in (0..frozen.num_users()).step_by(64) {
        acc += serving_probe(&frozen, UserId(i as u32)) as f64;
    }
    std::hint::black_box(acc);
    let touch_ns = t.elapsed().as_nanos() as u64;

    println!("READY");
    let mut line = String::new();
    std::io::stdin()
        .read_line(&mut line)
        .expect("parent signal");

    let (rss_kb, pss_kb) = proc_memory();
    let report = ChildReport {
        load_ns,
        first_score_ns,
        touch_ns,
        rss_kb,
        pss_kb,
    };
    println!("{}", serde_json::to_string(&report).expect("report JSON"));
}

/// Touch one user's rows on both branches through the public scoring API
/// (one tiny group per user id) — faults table pages without private API.
fn serving_probe(frozen: &FrozenOdNet, user: UserId) -> usize {
    let cities = frozen.num_cities();
    let group = GroupInput {
        user,
        day: 1,
        current_city: CityId((user.index() % cities) as u32),
        lt_origins: Vec::new(),
        lt_dests: Vec::new(),
        lt_days: Vec::new(),
        st_origins: Vec::new(),
        st_dests: Vec::new(),
        st_days: Vec::new(),
        candidates: vec![CandidateInput {
            origin: CityId((user.index().wrapping_mul(7) % cities) as u32),
            dest: CityId((user.index().wrapping_mul(13) % cities) as u32),
            xst_o: [0.0; XST_DIM],
            xst_d: [0.0; XST_DIM],
            label_o: 0.0,
            label_d: 0.0,
        }],
    };
    frozen.score_group(&group).len()
}

/// (VmRSS, Pss) of this process in kB, from `/proc/self`.
fn proc_memory() -> (u64, u64) {
    let field = |text: &str, key: &str| -> u64 {
        text.lines()
            .find(|l| l.starts_with(key))
            .and_then(|l| l.split_whitespace().nth(1))
            .and_then(|v| v.parse().ok())
            .unwrap_or(0)
    };
    let rss = std::fs::read_to_string("/proc/self/status")
        .map(|s| field(&s, "VmRSS:"))
        .unwrap_or(0);
    let pss = std::fs::read_to_string("/proc/self/smaps_rollup")
        .map(|s| field(&s, "Pss:"))
        .unwrap_or(0);
    (rss, pss)
}
