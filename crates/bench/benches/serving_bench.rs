//! Serving hot-path benchmarks: per-candidate vs batched vs frozen group
//! scoring, naive vs tiled matmul kernels, and steady-state allocation
//! counts per scoring path. Results land in `BENCH_serving.json` at the
//! repository root, including the headline group-scoring speedups.
//!
//! Run with `cargo bench --bench serving_bench`; set `CRITERION_QUICK=1`
//! (or pass `--quick`) for a fast smoke run.

use criterion::{black_box, Criterion};
use od_bench::Scale;
use od_tensor::infer::Workspace;
use od_tensor::{init, Graph, Shape};
use odnet_core::{FeatureExtractor, FrozenOdNet, GroupInput, OdNetModel, OdnetConfig, Variant};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// System allocator wrapped with an allocation counter, so the report can
/// state how many heap allocations each scoring path performs per request
/// in steady state (the frozen path's workspace pool should drive this to
/// nearly zero).
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// The allocation counter is process-global: any thread that allocates
/// while a counted section runs is attributed to that section. Counted
/// sections therefore serialize on this lock — without it, concurrent
/// `count_allocs` calls (or engine worker threads spun up by other
/// measurements) would cross-pollute each other's counts.
static COUNT_LOCK: Mutex<()> = Mutex::new(());

/// Allocations of one steady-state run of `f`: warm twice (fills workspace
/// pools / tape capacity), then count a single run.
fn count_allocs(mut f: impl FnMut()) -> u64 {
    let _serialized = COUNT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    f();
    f();
    let before = ALLOCS.load(Ordering::Relaxed);
    f();
    ALLOCS.load(Ordering::Relaxed) - before
}

/// `(per-candidate oracle, batched, frozen)` scorers with identical
/// parameters, plus serving groups of different candidate counts.
struct ServingFixture {
    oracle: OdNetModel,
    batched: OdNetModel,
    frozen: FrozenOdNet,
    groups: Vec<(usize, GroupInput)>,
}

fn serving_fixture() -> ServingFixture {
    let ds = od_bench::fliggy_dataset(Scale::Smoke);
    let hsg = od_bench::build_hsg(&ds);
    let build = |per_candidate: bool| {
        let cfg = OdnetConfig {
            per_candidate_scoring: per_candidate,
            workers: 1,
            ..Scale::Smoke.model_config()
        };
        OdNetModel::new(
            Variant::Odnet,
            cfg,
            ds.world.num_users(),
            ds.world.num_cities(),
            Some(hsg.clone()),
        )
    };
    let oracle = build(true);
    let batched = build(false);
    let cfg = Scale::Smoke.model_config();
    let fx = FeatureExtractor::new(cfg.max_long_seq, cfg.max_short_seq);
    let day = ds.train_end_day();
    let user = (0..ds.world.num_users() as u32)
        .map(od_hsg::UserId)
        .find(|&u| !ds.long_term(u, day).is_empty())
        .expect("some user has history");
    let frozen = batched.freeze();
    // Candidates come from the production retrieval stage over the frozen
    // artifact's own tables — a retrieval top-64 always fills the full
    // serving batch width, so no heuristic-recall padding is needed.
    let retriever = od_retrieval::Retriever::build(
        std::sync::Arc::new(frozen.clone()),
        od_retrieval::RetrievalConfig::default(),
    );
    let pairs = od_bench::recall_candidates(&retriever, user, 64);
    assert_eq!(pairs.len(), 64, "retrieval must fill the rerank set");
    let groups = [1, 16, pairs.len()]
        .into_iter()
        .map(|n| (n, fx.group_for_serving(&ds, user, day, &pairs[..n])))
        .collect();
    ServingFixture {
        oracle,
        batched,
        frozen,
        groups,
    }
}

fn bench_group_scoring(c: &mut Criterion, fix: &ServingFixture) {
    for (n, group) in &fix.groups {
        // The old hot path: one candidate at a time, fresh tape per group.
        c.bench_function(&format!("score_group{n}_per_candidate"), |b| {
            b.iter(|| black_box(fix.oracle.score_group(black_box(group))))
        });
        // The live batched path: stacked candidates on a reused tape.
        c.bench_function(&format!("score_group{n}_batched"), |b| {
            let mut tape = Graph::new();
            b.iter(|| black_box(fix.batched.score_group_with(&mut tape, black_box(group))))
        });
        // The frozen serving path: tape-free kernels on a reused workspace.
        c.bench_function(&format!("score_group{n}_frozen"), |b| {
            let mut ws = Workspace::new();
            b.iter(|| black_box(fix.frozen.score_group_with(&mut ws, black_box(group))))
        });
        // Frozen with a caller-owned output buffer (the engine's hot path):
        // the last per-request allocation — the returned Vec — goes away.
        c.bench_function(&format!("score_group{n}_frozen_into"), |b| {
            let mut ws = Workspace::new();
            let mut out = Vec::new();
            b.iter(|| {
                fix.frozen
                    .score_group_into(&mut ws, black_box(group), &mut out);
                black_box(&mut out);
            })
        });
    }
}

/// Steady-state allocations per request for each scoring path.
fn measure_allocations(fix: &ServingFixture) -> Vec<AllocEntry> {
    let mut out = Vec::new();
    for (n, group) in &fix.groups {
        out.push(AllocEntry {
            name: format!("score_group{n}_per_candidate"),
            allocations: count_allocs(|| {
                black_box(fix.oracle.score_group(black_box(group)));
            }),
        });
        let mut tape = Graph::new();
        out.push(AllocEntry {
            name: format!("score_group{n}_batched"),
            allocations: count_allocs(|| {
                black_box(fix.batched.score_group_with(&mut tape, black_box(group)));
            }),
        });
        let mut ws = Workspace::new();
        out.push(AllocEntry {
            name: format!("score_group{n}_frozen"),
            allocations: count_allocs(|| {
                black_box(fix.frozen.score_group_with(&mut ws, black_box(group)));
            }),
        });
        let mut ws = Workspace::new();
        let mut scores = Vec::new();
        out.push(AllocEntry {
            name: format!("score_group{n}_frozen_into"),
            allocations: count_allocs(|| {
                fix.frozen
                    .score_group_into(&mut ws, black_box(group), &mut scores);
                black_box(&mut scores);
            }),
        });
    }
    out
}

fn bench_matmul_kernels(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(7);
    for size in [64usize, 128] {
        let a = init::gaussian(Shape::Matrix(size, size), 0.0, 1.0, &mut rng);
        let b = init::gaussian(Shape::Matrix(size, size), 0.0, 1.0, &mut rng);
        c.bench_function(&format!("matmul_naive_{size}"), |bencher| {
            bencher.iter(|| od_tensor::matmul_naive(black_box(&a), black_box(&b)))
        });
        c.bench_function(&format!("matmul_tiled_{size}"), |bencher| {
            bencher.iter(|| od_tensor::matmul(black_box(&a), black_box(&b)))
        });
    }
}

/// Ratio of two benchmark means, by name, when both exist.
fn speedup(c: &Criterion, before: &str, after: &str) -> Option<f64> {
    let mean = |name: &str| {
        c.measurements()
            .iter()
            .find(|m| m.name == name)
            .map(|m| m.mean_ns)
    };
    Some(mean(before)? / mean(after)?)
}

#[derive(serde::Serialize)]
struct BenchEntry {
    name: String,
    mean_ns: f64,
    min_ns: f64,
    max_ns: f64,
    iters: u64,
}

#[derive(serde::Serialize)]
struct SpeedupEntry {
    name: String,
    speedup: f64,
}

#[derive(serde::Serialize)]
struct AllocEntry {
    name: String,
    allocations: u64,
}

#[derive(serde::Serialize)]
struct Report {
    generated_by: String,
    scale: String,
    threads_available: usize,
    measurements: Vec<BenchEntry>,
    speedups: Vec<SpeedupEntry>,
    /// Heap allocations for one steady-state scoring call per path.
    allocations: Vec<AllocEntry>,
}

fn emit_json(c: &Criterion, fix: &ServingFixture) {
    let mut speedups = Vec::new();
    for (n, _) in &fix.groups {
        if let Some(s) = speedup(
            c,
            &format!("score_group{n}_per_candidate"),
            &format!("score_group{n}_batched"),
        ) {
            speedups.push(SpeedupEntry {
                name: format!("group_scoring_{n}_candidates"),
                speedup: s,
            });
        }
        if let Some(s) = speedup(
            c,
            &format!("score_group{n}_batched"),
            &format!("score_group{n}_frozen"),
        ) {
            speedups.push(SpeedupEntry {
                name: format!("frozen_vs_batched_{n}"),
                speedup: s,
            });
        }
        if let Some(s) = speedup(
            c,
            &format!("score_group{n}_per_candidate"),
            &format!("score_group{n}_frozen"),
        ) {
            speedups.push(SpeedupEntry {
                name: format!("frozen_vs_per_candidate_{n}"),
                speedup: s,
            });
        }
    }
    for size in [64, 128] {
        if let Some(s) = speedup(
            c,
            &format!("matmul_naive_{size}"),
            &format!("matmul_tiled_{size}"),
        ) {
            speedups.push(SpeedupEntry {
                name: format!("matmul_{size}"),
                speedup: s,
            });
        }
    }
    let report = Report {
        generated_by: "cargo bench --bench serving_bench".to_string(),
        scale: "smoke".to_string(),
        threads_available: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        measurements: c
            .measurements()
            .iter()
            .map(|m| BenchEntry {
                name: m.name.clone(),
                mean_ns: m.mean_ns,
                min_ns: m.min_ns,
                max_ns: m.max_ns,
                iters: m.iters,
            })
            .collect(),
        speedups,
        allocations: measure_allocations(fix),
    };
    // cargo runs benches with the package dir as cwd; the report belongs at
    // the repository root.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serving.json");
    let pretty = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(path, pretty + "\n").expect("write BENCH_serving.json");
    println!("wrote {path}");
}

fn main() {
    let mut c = Criterion::default().configure_from_args();
    let fix = serving_fixture();
    bench_group_scoring(&mut c, &fix);
    bench_matmul_kernels(&mut c);
    emit_json(&c, &fix);
}
