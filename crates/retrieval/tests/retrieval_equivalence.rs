//! The retrieval-tier correctness contract: every SIMD level, both table
//! modes (owned and mmap), and both tiers reproduce the scalar
//! full-enumeration oracle exactly — same pairs, same order, same score
//! bits.
//!
//! The oracle is deliberately naive: score all `n²−n` pairs with the
//! scalar kernels, sort by (score desc, pair index asc), take `k`. The
//! production path (bounded heap + SIMD threshold scan) must equal it
//! bit-for-bit, so candidate selection can never drift across deployment
//! hardware or artifact load paths.

use od_hsg::{HsgBuilder, UserId};
use od_retrieval::{RetrievalConfig, Retriever, ScoredPair, Tier};
use od_tensor::simd::{self, SimdLevel};
use odnet_core::{FrozenOdNet, OdnetConfig, Variant};
use proptest::prelude::*;
use std::sync::Arc;

/// Untrained graph-free artifact at arbitrary table geometry.
fn frozen_at(users: usize, cities: usize, dim: usize) -> FrozenOdNet {
    let config = OdnetConfig {
        embed_dim: dim,
        ..OdnetConfig::tiny()
    };
    odnet_core::OdNetModel::new(Variant::OdnetG, config, users, cities, None).freeze()
}

/// Full-enumeration scalar oracle in canonical order.
fn oracle_top_k(frozen: &FrozenOdNet, user: UserId, k: usize) -> Vec<ScoredPair> {
    let (a, b) = affinities(frozen, user);
    let n = a.len();
    let mut all: Vec<(u64, f32)> = Vec::with_capacity(n * n - n);
    for (o, &ao) in a.iter().enumerate() {
        for (d, &bd) in b.iter().enumerate() {
            if o != d {
                all.push(((o * n + d) as u64, ao + bd));
            }
        }
    }
    all.sort_by(|x, y| y.1.total_cmp(&x.1).then_with(|| x.0.cmp(&y.0)));
    all.truncate(k);
    all.into_iter()
        .map(|(idx, score)| ScoredPair {
            origin: od_hsg::CityId((idx / n as u64) as u32),
            dest: od_hsg::CityId((idx % n as u64) as u32),
            score,
        })
        .collect()
}

/// Scalar per-city affinities (θ-scaled), the oracle's scan phase.
fn affinities(frozen: &FrozenOdNet, user: UserId) -> (Vec<f32>, Vec<f32>) {
    let ev = frozen.embeddings();
    let mut a = vec![0.0f32; ev.num_cities];
    let mut b = vec![0.0f32; ev.num_cities];
    simd::table_scores(
        SimdLevel::Scalar,
        ev.origin_user_row(user.index()),
        ev.origin_cities,
        ev.dim,
        ev.theta,
        &mut a,
    );
    simd::table_scores(
        SimdLevel::Scalar,
        ev.dest_user_row(user.index()),
        ev.dest_cities,
        ev.dim,
        1.0 - ev.theta,
        &mut b,
    );
    (a, b)
}

fn assert_same(got: &[ScoredPair], want: &[ScoredPair], what: &str) {
    assert_eq!(got.len(), want.len(), "{what}: length mismatch");
    for (g, w) in got.iter().zip(want) {
        assert_eq!(
            (g.origin, g.dest),
            (w.origin, w.dest),
            "{what}: pair mismatch"
        );
        assert_eq!(
            g.score.to_bits(),
            w.score.to_bits(),
            "{what}: score bits differ for {:?}→{:?}",
            g.origin,
            g.dest
        );
    }
}

#[test]
fn exact_tier_matches_oracle_across_levels_and_sizes() {
    for (users, cities, dim) in [
        (3usize, 2usize, 4usize),
        (5, 9, 8),
        (7, 23, 16),
        (4, 40, 20),
    ] {
        let frozen = Arc::new(frozen_at(users, cities, dim));
        for k in [1usize, 7, 64, cities * cities] {
            for user in [0, users - 1] {
                let want = oracle_top_k(&frozen, UserId(user as u32), k);
                for level in SimdLevel::available() {
                    let r = Retriever::build(
                        Arc::clone(&frozen),
                        RetrievalConfig {
                            level: Some(level),
                            ..RetrievalConfig::default()
                        },
                    );
                    let got = r.top_k(UserId(user as u32), k, Tier::Exact);
                    assert_same(
                        &got.pairs,
                        &want,
                        &format!("{users}x{cities} d={dim} k={k} u={user} {level}"),
                    );
                    assert_eq!(got.stats.scanned, (cities * cities) as u64);
                }
            }
        }
    }
}

#[test]
fn graph_variant_artifact_retrieves_identically_across_levels() {
    // The full ODNET variant materializes K-step HSGC aggregates into its
    // tables — a structurally different artifact than the graph-free one.
    let ds = od_data::FliggyDataset::generate(od_data::FliggyConfig::tiny());
    let coords = ds.world.cities.iter().map(|c| c.coords).collect();
    let mut b = HsgBuilder::new(ds.world.num_users(), coords);
    for it in ds.hsg_interactions() {
        b.add_interaction(it);
    }
    let frozen = Arc::new(
        odnet_core::OdNetModel::new(
            Variant::Odnet,
            OdnetConfig::tiny(),
            ds.world.num_users(),
            ds.world.num_cities(),
            Some(b.build()),
        )
        .freeze(),
    );
    let want = oracle_top_k(&frozen, UserId(11), 32);
    for level in SimdLevel::available() {
        let r = Retriever::build(
            Arc::clone(&frozen),
            RetrievalConfig {
                level: Some(level),
                ..RetrievalConfig::default()
            },
        );
        let got = r.top_k(UserId(11), 32, Tier::Exact);
        assert_same(&got.pairs, &want, &format!("graph variant {level}"));
    }
}

#[test]
fn mmap_backed_tables_retrieve_identically_to_owned() {
    let frozen = frozen_at(9, 31, 16);
    let dir = std::env::temp_dir().join(format!("od_retrieval_eq_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let path = dir.join("artifact.odz");
    frozen.save_bin(&path).expect("write .odz");
    let mapped = Arc::new(FrozenOdNet::load_bin_mmap(&path).expect("mmap load"));
    let owned = Arc::new(frozen);

    for tier in [Tier::Exact, Tier::Pruned] {
        for level in SimdLevel::available() {
            let cfg = RetrievalConfig {
                ncentroids: 6,
                nprobe: 2,
                refine: 12,
                level: Some(level),
            };
            let a = Retriever::build(Arc::clone(&owned), cfg).top_k(UserId(4), 40, tier);
            let b = Retriever::build(Arc::clone(&mapped), cfg).top_k(UserId(4), 40, tier);
            assert_same(
                &a.pairs,
                &b.pairs,
                &format!("owned vs mmap, {tier:?} {level}"),
            );
            assert_eq!(a.stats.scanned, b.stats.scanned, "{tier:?} scanned differs");
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn pruned_pairs_carry_exact_scores_in_canonical_order() {
    let frozen = Arc::new(frozen_at(6, 50, 8));
    let (a, b) = affinities(&frozen, UserId(2));
    let r = Retriever::build(
        Arc::clone(&frozen),
        RetrievalConfig {
            ncentroids: 8,
            nprobe: 3,
            refine: 20,
            level: None,
        },
    );
    let got = r.top_k(UserId(2), 64, Tier::Pruned);
    assert!(!got.pairs.is_empty());
    assert!(got.stats.scanned < 50 * 50, "pruned tier did not prune");
    assert_eq!(got.stats.probed, 3);
    for w in got.pairs.windows(2) {
        let canonical = match w[0].score.total_cmp(&w[1].score) {
            std::cmp::Ordering::Greater => true,
            std::cmp::Ordering::Less => false,
            std::cmp::Ordering::Equal => {
                (w[0].origin.0, w[0].dest.0) < (w[1].origin.0, w[1].dest.0)
            }
        };
        assert!(canonical, "pruned output not in canonical order");
    }
    for p in &got.pairs {
        assert_ne!(p.origin, p.dest);
        let want = a[p.origin.index()] + b[p.dest.index()];
        assert_eq!(
            p.score.to_bits(),
            want.to_bits(),
            "pruned pair score is not the exact separable score"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        ..ProptestConfig::default()
    })]

    /// SIMD top-k equals the scalar full-sort oracle — same pairs, same
    /// tie-breaks, same bits — across random geometries, k, and users.
    #[test]
    fn simd_top_k_is_identical_to_scalar_oracle(
        users in 1usize..10,
        cities in 2usize..36,
        half_dim in 1usize..13, // tiny() runs 2 attention heads: dim must be even
        k in 1usize..90,
        user_sel in 0usize..10,
    ) {
        let frozen = Arc::new(frozen_at(users, cities, 2 * half_dim));
        let user = UserId((user_sel % users) as u32);
        let want = oracle_top_k(&frozen, user, k);
        for level in SimdLevel::available() {
            let r = Retriever::build(
                Arc::clone(&frozen),
                RetrievalConfig { level: Some(level), ..RetrievalConfig::default() },
            );
            let got = r.top_k(user, k, Tier::Exact);
            assert_same(&got.pairs, &want, &format!("proptest {level}"));
        }
    }
}
