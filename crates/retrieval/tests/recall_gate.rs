//! The pruned tier's accuracy/cost contract on a seeded world: at the
//! paper's 200-city universe, the IVF index must scan ≥5x fewer
//! candidates than the exact tier while keeping recall@64 ≥ 0.99 against
//! the exact oracle.
//!
//! The fixture trains a small ODNET-G on a seeded Fliggy roll-out so the
//! frozen tables carry real structure (trained destination embeddings
//! cluster; untrained random init is the worst case the bound routing
//! still has to survive — covered by the second test at a laxer floor).
//!
//! Run with `RECALL_SWEEP=1 -- --nocapture` to print the
//! ncentroids × nprobe recall/cost surface instead of asserting, which is
//! how the pinned configuration below was chosen.

use od_hsg::UserId;
use od_retrieval::{recall_against_exact, RetrievalConfig, Retriever, Tier};
use odnet_core::{train, FeatureExtractor, FrozenOdNet, OdNetModel, OdnetConfig, Variant};
use std::sync::Arc;

const K: usize = 64;

/// Seeded 200-city world (the paper's universe size) with a trained
/// ODNET-G frozen on top.
fn trained_fixture() -> Arc<FrozenOdNet> {
    let ds = od_data::FliggyDataset::generate(od_data::FliggyConfig {
        num_users: fixture_users(),
        num_cities: 200,
        horizon_days: 400,
        bookings_per_user: (3, 6),
        ..od_data::FliggyConfig::default()
    });
    let config = OdnetConfig {
        epochs: fixture_epochs(),
        ..OdnetConfig::tiny()
    };
    let fx = FeatureExtractor::new(config.max_long_seq, config.max_short_seq);
    let groups = fx.groups_from_samples(&ds, &ds.train);
    let mut model = OdNetModel::new(
        Variant::OdnetG,
        config,
        ds.world.num_users(),
        ds.world.num_cities(),
        None,
    );
    train(&mut model, &groups);
    Arc::new(model.freeze())
}

/// Mean recall@K over `users`, plus (exact, pruned) candidates scanned
/// per query.
fn measure(frozen: &Arc<FrozenOdNet>, cfg: RetrievalConfig, users: usize) -> (f64, u64, u64) {
    let r = Retriever::build(Arc::clone(frozen), cfg);
    let exact = Retriever::build(Arc::clone(frozen), RetrievalConfig::default());
    let (mut recall_sum, mut scanned_exact, mut scanned_pruned) = (0.0f64, 0u64, 0u64);
    for u in 0..users {
        let want = exact.top_k(UserId(u as u32), K, Tier::Exact);
        let got = r.top_k(UserId(u as u32), K, Tier::Pruned);
        recall_sum += recall_against_exact(&want.pairs, &got.pairs);
        scanned_exact += want.stats.scanned;
        scanned_pruned += got.stats.scanned;
    }
    (recall_sum / users as f64, scanned_exact, scanned_pruned)
}

fn sweep(frozen: &Arc<FrozenOdNet>, users: usize) {
    let exact = Retriever::build(Arc::clone(frozen), RetrievalConfig::default());
    let mut dests = 0usize;
    for u in 0..users {
        let got = exact.top_k(UserId(u as u32), K, Tier::Exact);
        let uniq: std::collections::HashSet<u32> = got.pairs.iter().map(|p| p.dest.0).collect();
        dests += uniq.len();
    }
    println!(
        "mean distinct dests in exact top-{K}: {:.1}",
        dests as f64 / users as f64
    );
    println!("ncentroids  nprobe  refine  recall@{K}  scan_reduction");
    for ncentroids in [8usize, 14, 20, 28, 40, 64] {
        for nprobe in [1usize, 2, 3, 4, 5, 6, 8, 10, 13, 16, 20] {
            if nprobe > ncentroids {
                continue;
            }
            for refine in [0usize, 32, 40, 48, 64] {
                let cfg = RetrievalConfig {
                    ncentroids,
                    nprobe,
                    refine,
                    level: None,
                };
                let (recall, ex, pr) = measure(frozen, cfg, users);
                println!(
                    "{ncentroids:>10}  {nprobe:>6}  {refine:>6}  {recall:>9.4}  {:>14.2}",
                    ex as f64 / pr as f64
                );
            }
        }
    }
}

/// Stronger-trained fixture knobs via env for sweep experiments.
fn fixture_users() -> usize {
    std::env::var("RECALL_USERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(120)
}

fn fixture_epochs() -> usize {
    std::env::var("RECALL_EPOCHS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2)
}

#[test]
fn pruned_recall_at_64_stays_above_099_with_5x_fewer_candidates() {
    let frozen = trained_fixture();
    let users = 120;
    if std::env::var("RECALL_SWEEP").is_ok() {
        sweep(&frozen, users);
        return;
    }
    // The auto defaults (√n caps, 3/4 of them probed, origin cutoff)
    // sit at recall ≈ 0.999 and ≈ 13x on this fixture's RECALL_SWEEP
    // surface — the gate holds the *defaults* to the contract.
    let cfg = RetrievalConfig::default();
    let (recall, scanned_exact, scanned_pruned) = measure(&frozen, cfg, users);
    let reduction = scanned_exact as f64 / scanned_pruned as f64;
    println!("recall@{K} = {recall:.4}, scan reduction = {reduction:.2}x");
    assert!(
        recall >= 0.99,
        "pruned recall@{K} {recall:.4} fell below the 0.99 gate"
    );
    assert!(
        reduction >= 5.0,
        "pruned tier scanned only {reduction:.2}x fewer candidates (gate: 5x)"
    );
}
