//! Deterministic bounded top-k selection over pair scores.
//!
//! The selection contract shared by every retrieval tier and SIMD level:
//! the result is the first `k` pairs of the total order **score
//! descending, then pair index ascending** (`total_cmp` on the score
//! bits). Because all levels compute bit-identical scores (see
//! `od_tensor::simd`), selection through this heap is reproducible across
//! scalar/AVX2/NEON and across owned/mmap artifacts — the proptests in
//! `tests/retrieval_equivalence.rs` hold the whole chain to that.
//!
//! The heap is a hand-rolled binary min-heap of the *worst* retained
//! entry at the root, so the hot-path operations are branch-light:
//! [`PairHeap::floor`] (one load) feeds the SIMD scan threshold, and
//! [`PairHeap::push`] is a compare + sift for the rare surviving lane.

/// One retained candidate: the pair's flat index (`origin·n + dest`) and
/// its separable retrieval score.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Entry {
    pub idx: u64,
    pub score: f32,
}

impl Entry {
    /// Is `self` a worse candidate than `other` in the canonical order
    /// (lower score, or equal score with larger pair index)?
    #[inline]
    fn worse_than(&self, other: &Entry) -> bool {
        match self.score.total_cmp(&other.score) {
            std::cmp::Ordering::Less => true,
            std::cmp::Ordering::Greater => false,
            std::cmp::Ordering::Equal => self.idx > other.idx,
        }
    }
}

/// Bounded min-heap keeping the best `k` entries seen so far.
pub(crate) struct PairHeap {
    k: usize,
    /// Binary heap ordered so `entries[0]` is the worst retained entry.
    entries: Vec<Entry>,
}

impl PairHeap {
    pub fn new(k: usize) -> PairHeap {
        PairHeap {
            k,
            entries: Vec::with_capacity(k),
        }
    }

    /// Build a heap holding the canonical top-`k` of `cands` in one
    /// O(len + k) pass: an unstable partition around the k-th entry in
    /// the canonical order, then a Floyd heapify of the survivors.
    /// Equivalent to pushing every candidate one by one (the heap's
    /// content is arrival-order independent), but skips the per-push
    /// sift — this is how the select sweep seeds the heap from the lead
    /// origin's full row before the threshold scan takes over.
    pub fn from_candidates(k: usize, mut cands: Vec<Entry>) -> PairHeap {
        if cands.len() > k && k > 0 {
            // Canonical order: score descending, index ascending — the
            // element at k-1 after partition is the prospective floor.
            cands.select_nth_unstable_by(k - 1, |x, y| {
                y.score.total_cmp(&x.score).then_with(|| x.idx.cmp(&y.idx))
            });
        }
        cands.truncate(k);
        let mut heap = PairHeap { k, entries: cands };
        let n = heap.entries.len();
        for i in (0..n / 2).rev() {
            heap.sift_down_from(i);
        }
        heap
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    #[inline]
    pub fn is_full(&self) -> bool {
        self.entries.len() == self.k
    }

    /// The scan threshold: any candidate scoring strictly below this
    /// cannot enter a full heap, so SIMD lanes below it are discarded
    /// without the exact order test. Candidates *at* the floor may still
    /// lose on the index tie-break — [`push`](Self::push) settles that.
    #[inline]
    pub fn floor(&self) -> f32 {
        debug_assert!(self.is_full());
        self.entries[0].score
    }

    /// Offer a candidate. O(log k) when it displaces the floor entry,
    /// O(1) when it loses.
    #[inline]
    pub fn push(&mut self, idx: u64, score: f32) {
        let cand = Entry { idx, score };
        if self.entries.len() < self.k {
            self.entries.push(cand);
            self.sift_up(self.entries.len() - 1);
        } else if self.k > 0 && self.entries[0].worse_than(&cand) {
            self.entries[0] = cand;
            self.sift_down_from(0);
        }
    }

    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.entries[i].worse_than(&self.entries[parent]) {
                self.entries.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down_from(&mut self, start: usize) {
        let n = self.entries.len();
        let mut i = start;
        loop {
            let (l, r) = (2 * i + 1, 2 * i + 2);
            let mut worst = i;
            if l < n && self.entries[l].worse_than(&self.entries[worst]) {
                worst = l;
            }
            if r < n && self.entries[r].worse_than(&self.entries[worst]) {
                worst = r;
            }
            if worst == i {
                break;
            }
            self.entries.swap(i, worst);
            i = worst;
        }
    }

    /// Consume the heap into canonical order: score descending, pair
    /// index ascending.
    pub fn into_sorted(mut self) -> Vec<Entry> {
        self.entries
            .sort_unstable_by(|a, b| b.score.total_cmp(&a.score).then_with(|| a.idx.cmp(&b.idx)));
        self.entries
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Brute-force oracle: full sort, take k.
    fn oracle(cands: &[(u64, f32)], k: usize) -> Vec<(u64, u32)> {
        let mut all: Vec<Entry> = cands
            .iter()
            .map(|&(idx, score)| Entry { idx, score })
            .collect();
        all.sort_by(|a, b| b.score.total_cmp(&a.score).then_with(|| a.idx.cmp(&b.idx)));
        all.truncate(k);
        all.into_iter()
            .map(|e| (e.idx, e.score.to_bits()))
            .collect()
    }

    #[test]
    fn matches_full_sort_oracle_with_ties() {
        // Scores collide on purpose so the index tie-break is exercised.
        let cands: Vec<(u64, f32)> = (0..500u64).map(|i| (i, ((i * 7919) % 13) as f32)).collect();
        for k in [0usize, 1, 2, 13, 64, 499, 500, 600] {
            let mut heap = PairHeap::new(k);
            for &(idx, s) in &cands {
                heap.push(idx, s);
            }
            let got: Vec<(u64, u32)> = heap
                .into_sorted()
                .into_iter()
                .map(|e| (e.idx, e.score.to_bits()))
                .collect();
            assert_eq!(got, oracle(&cands, k), "k = {k}");
        }
    }

    #[test]
    fn arrival_order_does_not_matter() {
        let mut cands: Vec<(u64, f32)> = (0..200u64).map(|i| (i, ((i * 31) % 7) as f32)).collect();
        let forward = {
            let mut h = PairHeap::new(10);
            for &(i, s) in &cands {
                h.push(i, s);
            }
            h.into_sorted().iter().map(|e| e.idx).collect::<Vec<_>>()
        };
        cands.reverse();
        let backward = {
            let mut h = PairHeap::new(10);
            for &(i, s) in &cands {
                h.push(i, s);
            }
            h.into_sorted().iter().map(|e| e.idx).collect::<Vec<_>>()
        };
        assert_eq!(forward, backward);
    }

    #[test]
    fn from_candidates_matches_push_loop() {
        // Same colliding-score generator as the oracle test so the
        // index tie-break is live through the partition path too.
        let cands: Vec<(u64, f32)> = (0..500u64).map(|i| (i, ((i * 7919) % 13) as f32)).collect();
        for len in [0usize, 1, 5, 63, 64, 65, 200, 500] {
            for k in [0usize, 1, 13, 64, 200] {
                let entries: Vec<Entry> = cands[..len]
                    .iter()
                    .map(|&(idx, score)| Entry { idx, score })
                    .collect();
                let fast = PairHeap::from_candidates(k, entries);
                let mut slow = PairHeap::new(k);
                for &(idx, s) in &cands[..len] {
                    slow.push(idx, s);
                }
                // Same retained set and a valid heap: the sorted views
                // and the reported floors must agree.
                assert_eq!(fast.is_full(), slow.is_full(), "len={len} k={k}");
                if fast.is_full() && k > 0 {
                    assert_eq!(
                        fast.floor().to_bits(),
                        slow.floor().to_bits(),
                        "len={len} k={k}"
                    );
                }
                let f: Vec<(u64, u32)> = fast
                    .into_sorted()
                    .into_iter()
                    .map(|e| (e.idx, e.score.to_bits()))
                    .collect();
                let s: Vec<(u64, u32)> = slow
                    .into_sorted()
                    .into_iter()
                    .map(|e| (e.idx, e.score.to_bits()))
                    .collect();
                assert_eq!(f, s, "len={len} k={k}");
            }
        }
    }

    #[test]
    fn floor_tracks_worst_retained() {
        let mut h = PairHeap::new(3);
        for (i, s) in [(0u64, 5.0f32), (1, 1.0), (2, 3.0)] {
            h.push(i, s);
        }
        assert!(h.is_full());
        assert_eq!(h.floor(), 1.0);
        h.push(3, 4.0); // displaces 1.0
        assert_eq!(h.floor(), 3.0);
        h.push(4, 0.5); // loses
        assert_eq!(h.floor(), 3.0);
    }
}
