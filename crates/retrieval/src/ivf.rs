//! The pruned destination index: IVF (inverted-file) routing over the
//! frozen destination-city embeddings.
//!
//! Retrieval maximizes a **dot product**, but k-means cells are Voronoi
//! in L2 — clustering the raw table leaves the top-scoring destinations
//! scattered across cells and recall@k collapses. The index therefore
//! clusters in the classic MIPS→cosine *augmented space* (Shrivastava &
//! Li's asymmetric transform): each destination row `x` gains one
//! coordinate,
//!
//! ```text
//! x̂ = [x, √(M² − ‖x‖²)]      M = max row norm
//! ```
//!
//! so every augmented row sits on the sphere of radius `M`, and with the
//! query augmented as `q̂ = [q, 0]` the inner products are unchanged:
//! `⟨q̂, x̂⟩ = ⟨q, x⟩`. On the sphere, maximum inner product = nearest
//! cosine, so L2 k-means cells become direction-aligned caps and the
//! high-dot destinations for a query concentrate in the few caps facing
//! it.
//!
//! At build time (artifact freeze/load/publish — see the `Funnel` in
//! `od-serve`) the augmented table is clustered with a deterministic
//! **spherical** Lloyd k-means (centroids are projected back onto the
//! sphere after each mean update, keeping cells direction-aligned caps),
//! and every destination is indexed under its [`SPILL`] nearest caps —
//! multi-assignment, the standard IVF recall repair for rows near a cap
//! boundary. At query time a user's destination embedding routes to the
//! `nprobe` clusters with the highest centroid affinity `⟨q̂, centroid⟩`
//! and only their (deduplicated) members are scored and fed to the pair
//! scan — the whole point is scanning a fraction of the destination
//! table for <1% recall@k loss (gated in `tests/recall_gate.rs`).
//!
//! Everything here is deterministic: strided centroid seeding, fixed
//! iteration count, index-ordered tie-breaks — so an index rebuilt for
//! the same artifact bytes routes identically on every host.

use od_tensor::simd::{self, SimdLevel};

/// Number of Lloyd iterations. Fixed (not convergence-tested) so index
/// builds take deterministic, bounded time at any scale.
const KMEANS_ITERS: usize = 12;

/// Caps each destination is indexed under (multi-assignment spill).
const SPILL: usize = 2;

/// The pruned destination index over one artifact generation.
#[derive(Clone, Debug)]
pub struct IvfIndex {
    /// `ncentroids×adim`, row-major, in the augmented (sphere) space.
    centroids: Vec<f32>,
    /// Cluster member destination ids, cluster-major.
    members: Vec<u32>,
    /// `offsets[j]..offsets[j+1]` indexes `members` for cluster `j`.
    offsets: Vec<usize>,
    /// Augmented width: table dim + 1.
    adim: usize,
}

impl IvfIndex {
    /// Cluster a row-major `n×dim` destination table into `ncentroids`
    /// cells (in the augmented MIPS→cosine space). `ncentroids` is
    /// clamped to `n`; passing `0` picks `√n`-flavored auto sizing.
    pub fn build(table: &[f32], n: usize, dim: usize, ncentroids: usize) -> IvfIndex {
        assert_eq!(table.len(), n * dim, "table geometry mismatch");
        assert!(n > 0, "cannot index an empty table");
        let c = if ncentroids == 0 {
            auto_centroids(n)
        } else {
            ncentroids.min(n)
        }
        .max(1);

        // Lift onto the sphere: x̂ = [x, √(M²−‖x‖²)]. The max-norm row
        // gets a zero extra coordinate; everything else bulges up so all
        // rows share norm M and dot order becomes cosine order.
        let adim = dim + 1;
        let max_sq = (0..n)
            .map(|r| sq_norm(&table[r * dim..(r + 1) * dim]))
            .fold(0.0f32, f32::max);
        let mut aug: Vec<f32> = Vec::with_capacity(n * adim);
        for r in 0..n {
            let row = &table[r * dim..(r + 1) * dim];
            aug.extend_from_slice(row);
            aug.push((max_sq - sq_norm(row)).max(0.0).sqrt());
        }
        let table = &aug[..];
        let dim = adim;

        // Strided seeding: rows 0, n/c, 2n/c, … — deterministic and
        // spread across whatever order the freeze wrote the table in.
        let mut centroids: Vec<f32> = Vec::with_capacity(c * dim);
        for j in 0..c {
            let row = j * n / c;
            centroids.extend_from_slice(&table[row * dim..(row + 1) * dim]);
        }

        let sphere = max_sq.sqrt();
        let mut assign = vec![0usize; n];
        for _ in 0..KMEANS_ITERS {
            // Assignment: nearest centroid by squared L2, ties to the
            // lower cluster index.
            for (r, a) in assign.iter_mut().enumerate() {
                let row = &table[r * dim..(r + 1) * dim];
                let mut best = (f32::INFINITY, 0usize);
                for j in 0..c {
                    let d2 = sq_l2(row, &centroids[j * dim..(j + 1) * dim]);
                    if d2 < best.0 {
                        best = (d2, j);
                    }
                }
                *a = best.1;
            }
            // Update: mean of members; empty clusters steal the row
            // farthest from its current centroid so no cell dies.
            let mut counts = vec![0usize; c];
            let mut sums = vec![0.0f32; c * dim];
            for (r, &a) in assign.iter().enumerate() {
                counts[a] += 1;
                let row = &table[r * dim..(r + 1) * dim];
                for (s, &v) in sums[a * dim..(a + 1) * dim].iter_mut().zip(row) {
                    *s += v;
                }
            }
            for j in 0..c {
                if counts[j] == 0 {
                    let far = farthest_row(table, dim, &assign, &centroids);
                    assign[far] = j;
                    counts[j] = 1;
                    let row = &table[far * dim..(far + 1) * dim];
                    sums[j * dim..(j + 1) * dim].copy_from_slice(row);
                }
                let inv = 1.0 / counts[j] as f32;
                for (cv, &s) in centroids[j * dim..(j + 1) * dim]
                    .iter_mut()
                    .zip(&sums[j * dim..(j + 1) * dim])
                {
                    *cv = s * inv;
                }
                // Spherical k-means: every row sits on the sphere of
                // radius M, so project the mean back out to it — cells
                // stay direction-aligned caps instead of shrinking
                // toward the origin.
                let cnorm = sq_norm(&centroids[j * dim..(j + 1) * dim]).sqrt();
                if cnorm > 0.0 {
                    let s = sphere / cnorm;
                    for cv in &mut centroids[j * dim..(j + 1) * dim] {
                        *cv *= s;
                    }
                }
            }
        }

        // Spill assignment: each destination is indexed under its SPILL
        // nearest caps, so a row on a cap boundary is reachable through
        // either neighbor — the standard IVF recall repair, paid for in
        // duplicated membership (route() dedups before the scan).
        let spill = SPILL.min(c);
        let mut lists: Vec<Vec<u32>> = vec![Vec::new(); c];
        for r in 0..n {
            let row = &table[r * dim..(r + 1) * dim];
            let mut near: Vec<(f32, usize)> = (0..c)
                .map(|j| (sq_l2(row, &centroids[j * dim..(j + 1) * dim]), j))
                .collect();
            near.sort_by(|a, b| a.0.total_cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
            for &(_, j) in near.iter().take(spill) {
                lists[j].push(r as u32);
            }
        }

        // Freeze the inverted lists (member ids ascending per cluster).
        let mut offsets = vec![0usize; c + 1];
        for j in 0..c {
            offsets[j + 1] = offsets[j] + lists[j].len();
        }
        let members: Vec<u32> = lists.into_iter().flatten().collect();

        IvfIndex {
            centroids,
            members,
            offsets,
            adim: dim,
        }
    }

    /// Clusters in the index.
    pub fn ncentroids(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Route a destination-branch user embedding: append the member ids
    /// of the `nprobe` highest-affinity caps to `out` (id-ascending,
    /// deduplicated across the spill lists) and return how many clusters
    /// were probed.
    pub fn route(
        &self,
        level: SimdLevel,
        query: &[f32],
        nprobe: usize,
        out: &mut Vec<u32>,
    ) -> usize {
        let c = self.ncentroids();
        let probe = nprobe.clamp(1, c);
        // q̂ = [q, 0]: augmented dots equal the raw dots, so cap affinity
        // ranks caps by the dot product their members can reach.
        let mut qaug = Vec::with_capacity(self.adim);
        qaug.extend_from_slice(query);
        qaug.push(0.0);
        let mut affinity = vec![0.0f32; c];
        simd::table_scores(level, &qaug, &self.centroids, self.adim, 1.0, &mut affinity);
        let mut order: Vec<u32> = (0..c as u32).collect();
        // Ties broken by cluster index for deterministic routing.
        order.sort_unstable_by(|&a, &b| {
            affinity[b as usize]
                .total_cmp(&affinity[a as usize])
                .then_with(|| a.cmp(&b))
        });
        order.truncate(probe);
        // Collect members id-ascending and dedup: spill indexes a row
        // under several caps, and the scan must score each destination
        // once.
        order.sort_unstable();
        let start = out.len();
        for &j in &order {
            let (lo, hi) = (self.offsets[j as usize], self.offsets[j as usize + 1]);
            out.extend_from_slice(&self.members[lo..hi]);
        }
        out[start..].sort_unstable();
        out.dedup();
        probe
    }
}

/// `√n`-flavored default cluster count, clamped to keep both the routing
/// scan (ncentroids dots) and the member scan (n/ncentroids·nprobe dots)
/// small.
fn auto_centroids(n: usize) -> usize {
    ((n as f64).sqrt().round() as usize).clamp(1, 64)
}

#[inline]
fn sq_l2(a: &[f32], b: &[f32]) -> f32 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

#[inline]
fn sq_norm(a: &[f32]) -> f32 {
    a.iter().map(|x| x * x).sum()
}

/// Row with the largest distance to its assigned centroid — the donor
/// used to repair empty clusters.
fn farthest_row(table: &[f32], dim: usize, assign: &[usize], centroids: &[f32]) -> usize {
    let mut best = (-1.0f32, 0usize);
    for (r, &a) in assign.iter().enumerate() {
        let d2 = sq_l2(
            &table[r * dim..(r + 1) * dim],
            &centroids[a * dim..(a + 1) * dim],
        );
        if d2 > best.0 {
            best = (d2, r);
        }
    }
    best.1
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noise(n: usize, seed: u64) -> Vec<f32> {
        let mut s = seed;
        (0..n)
            .map(|_| {
                s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((s >> 33) as f32 / (1u64 << 31) as f32) - 0.5
            })
            .collect()
    }

    #[test]
    fn every_destination_lands_in_spill_many_clusters() {
        let (n, dim) = (57, 8);
        let idx = IvfIndex::build(&noise(n * dim, 3), n, dim, 7);
        // Spill assignment: each destination appears exactly SPILL times
        // across the inverted lists, at most once per list.
        let mut seen: Vec<u32> = idx.members.clone();
        seen.sort_unstable();
        let want: Vec<u32> = (0..n as u32).flat_map(|r| [r; SPILL]).collect();
        assert_eq!(seen, want);
        assert_eq!(*idx.offsets.last().unwrap(), n * SPILL);
        for j in 0..idx.ncentroids() {
            let list = &idx.members[idx.offsets[j]..idx.offsets[j + 1]];
            assert!(!list.is_empty(), "cluster {j} empty");
            assert!(
                list.windows(2).all(|w| w[0] < w[1]),
                "cluster {j} not sorted/unique"
            );
        }
    }

    #[test]
    fn build_is_deterministic() {
        let (n, dim) = (40, 16);
        let t = noise(n * dim, 9);
        let a = IvfIndex::build(&t, n, dim, 6);
        let b = IvfIndex::build(&t, n, dim, 6);
        assert_eq!(a.members, b.members);
        assert_eq!(a.offsets, b.offsets);
        assert_eq!(
            a.centroids.iter().map(|f| f.to_bits()).collect::<Vec<_>>(),
            b.centroids.iter().map(|f| f.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn probing_all_clusters_recovers_every_member() {
        let (n, dim) = (33, 8);
        let t = noise(n * dim, 5);
        let idx = IvfIndex::build(&t, n, dim, 5);
        let q = noise(dim, 17);
        let mut out = Vec::new();
        let probed = idx.route(SimdLevel::Scalar, &q, usize::MAX, &mut out);
        assert_eq!(probed, idx.ncentroids());
        let mut sorted = out.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..n as u32).collect::<Vec<_>>());
    }

    #[test]
    fn routing_is_level_independent() {
        let (n, dim) = (64, 16);
        let t = noise(n * dim, 21);
        let idx = IvfIndex::build(&t, n, dim, 8);
        let q = noise(dim, 33);
        let mut want = Vec::new();
        idx.route(SimdLevel::Scalar, &q, 3, &mut want);
        for level in SimdLevel::available() {
            let mut got = Vec::new();
            idx.route(level, &q, 3, &mut got);
            assert_eq!(got, want, "routing differs at {level}");
        }
    }
}
