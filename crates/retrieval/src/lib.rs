//! # od-retrieval — the retrieval tier of the full serving funnel
//!
//! The paper's production setting (PAPER.md §2) ranks OD pairs for 2.6M
//! users over a 200×200 city universe, but the ranking model is far too
//! expensive to score all ~40k pairs per request. This crate answers
//! "best `k` OD pairs out of every pair in the universe" directly from
//! the frozen artifact's dense embedding tables
//! ([`FrozenOdNet::embeddings`]), producing the candidate set the
//! micro-batching ranker (`od-serve`) then rescores with the full
//! personalized model — the retrieval/ranking two-task split of the
//! tfrs-style systems in SNIPPETS.md and the origin-aware candidate
//! generation argued by STOD-PPA (PAPERS.md).
//!
//! The retrieval score is **separable**: with the origin-branch user row
//! `u_O`, destination-branch user row `u_D`, and city rows `c_O`, `c_D`,
//!
//! ```text
//! s(u, o, d) = θ·⟨u_O, c_O(o)⟩ + (1−θ)·⟨u_D, c_D(d)⟩ = a[o] + b[d]
//! ```
//!
//! so one GEMV per branch ([`od_tensor::simd::table_scores`]) reduces the
//! pair sweep to `a[o] + b[d]` adds — which the SIMD threshold scan
//! ([`od_tensor::simd::scan_add_ge`]) retires 8 lanes at a time against
//! the top-k heap floor. Two tiers share that machinery:
//!
//! - [`Tier::Exact`] — brute force over all `n²−n` pairs. Bit-exact
//!   across SIMD levels and artifact table modes (owned and mmap), so it
//!   doubles as the recall oracle for the pruned tier.
//! - [`Tier::Pruned`] — three pair-level pruning stages compose: an
//!   [`IvfIndex`] over the destination city table routes each user to
//!   `nprobe` spherical caps (members deduplicated across the 2-way
//!   spill lists); an optional *refinement cut* keeps only the `refine`
//!   best probed destinations by exact affinity; and the pair sweep
//!   walks origins in descending `a[o]` with an exact cutoff — once
//!   `a[o] + max(b)` falls strictly below the top-k floor, no remaining
//!   origin can contribute, so the sweep stops. Together: >10x fewer
//!   pair candidates for <1% recall@k loss (gated ≥0.99 at ≥5x in
//!   `tests/recall_gate.rs`).
//!
//! A [`Retriever`] is built per artifact *generation* — `od-serve`'s
//! `Funnel` rebuilds it on every hot publish and stamps retrievals with
//! the generation's `ArtifactVersion`, exactly like ranking responses.

#![warn(missing_docs)]

mod ivf;
mod topk;

pub use ivf::IvfIndex;

use od_hsg::{CityId, UserId};
use od_tensor::simd::{self, SimdLevel};
use odnet_core::FrozenOdNet;
use std::sync::Arc;
use std::time::Instant;

/// Retrieval tuning knobs. `Default` picks auto sizing from the city
/// universe and the best SIMD level the host supports.
#[derive(Clone, Copy, Debug, Default)]
pub struct RetrievalConfig {
    /// IVF cluster count for the pruned tier; `0` = `√n`-flavored auto.
    pub ncentroids: usize,
    /// Clusters probed per query; `0` = `max(1, 3·ncentroids/4)`. The
    /// auto default probes generously — destination coverage is what
    /// recall@k lives or dies on, while the scan-reduction gates are
    /// carried by the refinement cut and the origin cutoff, which prune
    /// at the pair level.
    pub nprobe: usize,
    /// Refinement cut for the pruned tier: after probing, only the
    /// `refine` best probed destinations (by their exact scan affinity)
    /// enter the O(n·refine) pair sweep. `0` disables the cut. The top-k
    /// pair set only ever spans the top `k+1` destinations by affinity,
    /// so any `refine > k` is lossless relative to the probe set; the
    /// recall gate runs tighter cuts (~0.6k) that trade <1% recall@k for
    /// the bulk of the scan reduction.
    pub refine: usize,
    /// Kernel dispatch level; `None` = [`SimdLevel::detect`]. An
    /// explicitly requested level the host cannot execute degrades to
    /// scalar inside the kernels.
    pub level: Option<SimdLevel>,
}

/// Which retrieval tier serves a query.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Tier {
    /// Brute-force scored top-k over every OD pair (the exact baseline
    /// and recall oracle).
    Exact,
    /// IVF-pruned destination scan: `nprobe` clusters per query.
    Pruned,
}

impl Tier {
    /// Stable lowercase name (metric label / CLI flag value).
    pub fn name(self) -> &'static str {
        match self {
            Tier::Exact => "exact",
            Tier::Pruned => "pruned",
        }
    }
}

/// One retrieved OD pair with its separable retrieval score.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ScoredPair {
    /// Origin city.
    pub origin: CityId,
    /// Destination city.
    pub dest: CityId,
    /// `θ·⟨u_O,c_O⟩ + (1−θ)·⟨u_D,c_D⟩`.
    pub score: f32,
}

/// Per-query cost accounting, fed into the `od_retrieval_*` metrics and
/// the BENCH_retrieval gates.
#[derive(Clone, Copy, Debug, Default)]
pub struct RetrievalStats {
    /// Candidate pairs examined by the scan (the ≥5x pruning gate
    /// compares this between tiers).
    pub scanned: u64,
    /// IVF clusters probed (0 for the exact tier).
    pub probed: u32,
    /// Routing time (centroid bounds + member gather); 0 for exact.
    pub route_ns: u64,
    /// Table-scoring time (the per-city GEMVs).
    pub scan_ns: u64,
    /// Pair sweep + top-k selection time.
    pub select_ns: u64,
}

impl RetrievalStats {
    /// The three timed stages in execution order, as `(name, ns)` pairs.
    /// Tracing uses this to synthesize `route`/`scan`/`select` child
    /// spans under a query's `retrieval` span without the trace layer
    /// knowing the stage set.
    pub fn stages(&self) -> [(&'static str, u64); 3] {
        [
            ("route", self.route_ns),
            ("scan", self.scan_ns),
            ("select", self.select_ns),
        ]
    }
}

/// A retrieval answer: pairs in canonical order (score descending, pair
/// index ascending) plus the query's cost accounting.
#[derive(Clone, Debug)]
pub struct Retrieved {
    /// Top pairs, best first.
    pub pairs: Vec<ScoredPair>,
    /// What the query cost.
    pub stats: RetrievalStats,
}

thread_local! {
    /// Reusable per-thread query buffers for [`Retriever::top_k`]: the
    /// affinity tables, sweep order, and probed member list. Queries
    /// are tens of microseconds, so a handful of allocator round trips
    /// per call is real, *level-independent* overhead — it dilutes the
    /// SIMD speedup without making either level better.
    static SCRATCH: std::cell::RefCell<Scratch> = std::cell::RefCell::new(Scratch::default());
}

#[derive(Default)]
struct Scratch {
    /// Origin affinities `a[o]`.
    a: Vec<f32>,
    /// Destination affinities `b[j]`.
    b: Vec<f32>,
    /// Probed destination ids (pruned tier).
    members: Vec<u32>,
    /// Origin sweep order.
    order: Vec<u32>,
}

/// The retrieval stage over one frozen artifact generation: pinned
/// tables (owned or mmap — scoring borrows either way), a pruned
/// destination index built once at construction, and a resolved SIMD
/// level.
pub struct Retriever {
    model: Arc<FrozenOdNet>,
    index: IvfIndex,
    level: SimdLevel,
    nprobe: usize,
    refine: usize,
}

impl Retriever {
    /// Build the retrieval stage for an artifact: resolves the SIMD
    /// level and clusters the destination table. At the paper's universe
    /// (200 cities × d=16) the index build is microseconds; it is meant
    /// to run on every artifact load *and* every hot publish.
    pub fn build(model: Arc<FrozenOdNet>, cfg: RetrievalConfig) -> Retriever {
        let ev = model.embeddings();
        let index = IvfIndex::build(ev.dest_cities, ev.num_cities, ev.dim, cfg.ncentroids);
        let nprobe = if cfg.nprobe == 0 {
            (index.ncentroids() * 3 / 4).max(1)
        } else {
            cfg.nprobe.min(index.ncentroids())
        };
        Retriever {
            model,
            index,
            level: cfg.level.unwrap_or_else(SimdLevel::detect),
            nprobe,
            refine: cfg.refine,
        }
    }

    /// The artifact generation this retriever serves.
    pub fn model(&self) -> &Arc<FrozenOdNet> {
        &self.model
    }

    /// The kernel level queries dispatch to.
    pub fn level(&self) -> SimdLevel {
        self.level
    }

    /// Clusters in the pruned index.
    pub fn ncentroids(&self) -> usize {
        self.index.ncentroids()
    }

    /// Clusters probed per pruned query.
    pub fn nprobe(&self) -> usize {
        self.nprobe
    }

    /// Refinement cut of the pruned tier (`0` = disabled).
    pub fn refine(&self) -> usize {
        self.refine
    }

    /// Best `k` OD pairs for `user` over the whole universe (self-pairs
    /// `o == d` excluded), best first. Deterministic: the result is the
    /// prefix of the total order (score desc, pair index asc), identical
    /// across SIMD levels and table modes.
    ///
    /// Panics if `user` is outside the artifact's universe — callers on
    /// the serving path (the `Funnel`) validate ids at admission.
    pub fn top_k(&self, user: UserId, k: usize, tier: Tier) -> Retrieved {
        SCRATCH.with(|cell| self.top_k_into(&mut cell.borrow_mut(), user, k, tier))
    }

    /// [`top_k`](Self::top_k) against caller-provided scratch buffers.
    fn top_k_into(&self, scratch: &mut Scratch, user: UserId, k: usize, tier: Tier) -> Retrieved {
        let Scratch {
            a,
            b,
            members,
            order,
        } = scratch;
        let ev = self.model.embeddings();
        let n = ev.num_cities;
        assert!(
            user.index() < ev.num_users,
            "user {} outside the artifact universe ({} users)",
            user.0,
            ev.num_users
        );
        let mut stats = RetrievalStats::default();
        if k == 0 {
            return Retrieved {
                pairs: Vec::new(),
                stats,
            };
        }

        // Route: pick the destination subset (pruned) or all (exact).
        members.clear();
        if tier == Tier::Pruned {
            let t = Instant::now();
            stats.probed = self.index.route(
                self.level,
                ev.dest_user_row(user.index()),
                self.nprobe,
                members,
            ) as u32;
            stats.route_ns = t.elapsed().as_nanos() as u64;
        }

        // Scan: one scaled GEMV per branch. θ folds into the city
        // affinities so the pair score is a plain add.
        let t = Instant::now();
        a.clear();
        a.resize(n, 0.0);
        simd::table_scores(
            self.level,
            ev.origin_user_row(user.index()),
            ev.origin_cities,
            ev.dim,
            ev.theta,
            a,
        );
        b.clear();
        b.resize(
            if tier == Tier::Pruned {
                members.len()
            } else {
                n
            },
            0.0,
        );
        match tier {
            Tier::Exact => simd::table_scores(
                self.level,
                ev.dest_user_row(user.index()),
                ev.dest_cities,
                ev.dim,
                1.0 - ev.theta,
                b,
            ),
            Tier::Pruned => simd::table_scores_indexed(
                self.level,
                ev.dest_user_row(user.index()),
                ev.dest_cities,
                ev.dim,
                1.0 - ev.theta,
                members,
                b,
            ),
        }
        // Refine: keep only the best `refine` probed destinations by
        // their exact affinity before paying the O(n·len(b)) pair sweep.
        // Deterministic cut: affinity descending, destination id
        // ascending — same total-order discipline as the selection.
        if tier == Tier::Pruned && self.refine > 0 && members.len() > self.refine {
            let mut keep: Vec<u32> = (0..members.len() as u32).collect();
            keep.sort_unstable_by(|&x, &y| {
                b[y as usize]
                    .total_cmp(&b[x as usize])
                    .then_with(|| members[x as usize].cmp(&members[y as usize]))
            });
            keep.truncate(self.refine);
            // Back to id order for scan locality and stable output.
            keep.sort_unstable_by_key(|&x| members[x as usize]);
            let kept: Vec<u32> = keep.iter().map(|&x| members[x as usize]).collect();
            let kept_b: Vec<f32> = keep.iter().map(|&x| b[x as usize]).collect();
            *members = kept;
            *b = kept_b;
        }
        stats.scan_ns = t.elapsed().as_nanos() as u64;

        // Select: sweep `a[o] + b[j]` through the bounded heap. Until
        // the heap fills, every candidate goes through the exact push;
        // after that the SIMD threshold scan discards lanes below the
        // heap floor and the rare survivor takes the exact order test.
        //
        // The sweep visits high-affinity origins first (ties: lower
        // index). The heap's result is arrival-order independent, so
        // ordering changes nothing about the answer — but it tightens
        // the floor after the first few origins, putting the rest of
        // the sweep on the scan's all-lanes-fail fast path instead of
        // flooding the heap with doomed survivors.
        //
        // The pruned tier needs the *full* descending order: it stops
        // at the first origin whose best possible pair (`a[o] +
        // max(b)`) falls strictly below the heap floor, which is only
        // sound if every later origin is no better (candidates *at*
        // the floor are still swept, so index tie-breaks are
        // preserved). The exact tier keeps the full n² sweep — it is
        // the brute-force baseline and recall oracle — so it only
        // fronts the `LEAD` best origins with an O(n) partition and
        // leaves the rest in index order: the floor is essentially
        // final after those rows, and skipping the full sort keeps the
        // level-independent overhead out of the SIMD speedup.
        let t = Instant::now();
        let dest_of = |j: u32| -> u32 {
            if tier == Tier::Pruned {
                members[j as usize]
            } else {
                j
            }
        };
        let by_affinity_desc = |&x: &u32, &y: &u32| {
            a[y as usize]
                .total_cmp(&a[x as usize])
                .then_with(|| x.cmp(&y))
        };
        const LEAD: usize = 8;
        order.clear();
        order.extend(0..n as u32);
        if tier == Tier::Pruned || n <= LEAD {
            order.sort_unstable_by(by_affinity_desc);
        } else {
            order.select_nth_unstable_by(LEAD - 1, by_affinity_desc);
            order[..LEAD].sort_unstable_by(by_affinity_desc);
        }
        let bmax = b.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut heap = topk::PairHeap::new(k);
        // Cold phase: row-by-row until the heap fills and has a floor.
        let mut warm_from = 0usize;
        for &o in order.iter() {
            if heap.is_full() {
                break;
            }
            let bias = a[o as usize];
            if heap.is_empty() {
                // Seed with this row's canonical top-k in one partition
                // pass instead of a sift per candidate.
                let idx_base = o as u64 * n as u64;
                let cands: Vec<topk::Entry> = b
                    .iter()
                    .enumerate()
                    .filter_map(|(j, &bd)| {
                        let d = dest_of(j as u32);
                        (d != o).then(|| topk::Entry {
                            idx: idx_base + d as u64,
                            score: bias + bd,
                        })
                    })
                    .collect();
                heap = topk::PairHeap::from_candidates(k, cands);
            } else {
                for (j, &bd) in b.iter().enumerate() {
                    let d = dest_of(j as u32);
                    if d != o {
                        heap.push(o as u64 * n as u64 + d as u64, bias + bd);
                    }
                }
            }
            stats.scanned += b.len() as u64;
            warm_from += 1;
        }
        // Warm phase: one monomorphized kernel call sweeps every
        // remaining row against the live heap floor — each survivor
        // returns the updated floor, so a strong lane tightens the scan
        // for the rest of the sweep immediately. The pruned tier hands
        // the kernel its stop margin (`max(b)`).
        if heap.is_full() && warm_from < order.len() {
            let stop = (tier == Tier::Pruned).then_some(bmax);
            let swept = simd::sweep_scan_add_ge(
                self.level,
                &order[warm_from..],
                a,
                b,
                heap.floor(),
                stop,
                &mut |o, j, s| {
                    let d = dest_of(j);
                    if d != o {
                        heap.push(o as u64 * n as u64 + d as u64, s);
                    }
                    heap.floor()
                },
            );
            stats.scanned += swept as u64 * b.len() as u64;
        }
        let pairs = heap
            .into_sorted()
            .into_iter()
            .map(|e| ScoredPair {
                origin: CityId((e.idx / n as u64) as u32),
                dest: CityId((e.idx % n as u64) as u32),
                score: e.score,
            })
            .collect();
        stats.select_ns = t.elapsed().as_nanos() as u64;

        Retrieved { pairs, stats }
    }
}

/// Fraction of `exact`'s pairs that `pruned` also retrieved — the
/// recall@k of a pruned answer against the exact oracle for the same
/// `(user, k)`. 1.0 when `exact` is empty.
pub fn recall_against_exact(exact: &[ScoredPair], pruned: &[ScoredPair]) -> f64 {
    if exact.is_empty() {
        return 1.0;
    }
    let got: std::collections::HashSet<(u32, u32)> =
        pruned.iter().map(|p| (p.origin.0, p.dest.0)).collect();
    let hit = exact
        .iter()
        .filter(|p| got.contains(&(p.origin.0, p.dest.0)))
        .count();
    hit as f64 / exact.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tier_and_config_defaults() {
        assert_eq!(Tier::Exact.name(), "exact");
        assert_eq!(Tier::Pruned.name(), "pruned");
        let cfg = RetrievalConfig::default();
        assert_eq!(cfg.ncentroids, 0);
        assert_eq!(cfg.nprobe, 0);
        assert_eq!(cfg.refine, 0);
        assert!(cfg.level.is_none());
    }

    #[test]
    fn recall_helper_counts_overlap() {
        let p = |o: u32, d: u32| ScoredPair {
            origin: CityId(o),
            dest: CityId(d),
            score: 0.0,
        };
        let exact = vec![p(0, 1), p(1, 2), p(2, 3), p(3, 4)];
        let pruned = vec![p(1, 2), p(0, 1), p(9, 9)];
        assert_eq!(recall_against_exact(&exact, &pruned), 0.5);
        assert_eq!(recall_against_exact(&[], &pruned), 1.0);
    }
}
