//! Tape-free inference kernels and scratch-buffer management.
//!
//! The autograd [`crate::Graph`] pays for gradients nobody needs at serving
//! time: every op allocates a node payload and an adjoint slot. This module
//! provides the same forward kernels as free functions that write into
//! caller-provided buffers drawn from a [`Workspace`] pool, so a hot serving
//! loop reaches a steady state with **zero allocations per request**.
//!
//! Numerical contract: each kernel mirrors the corresponding tape op
//! *exactly* — same kernel, same accumulation order, same rounding.
//! [`matmul_into`] runs the identical `gemm_nn_stripe` micro-kernel as
//! [`crate::linalg::matmul`] (sequentially; the parallel path is
//! bit-identical to sequential by construction), [`mean_rows_into`] mirrors
//! `sum_rows`-then-divide, and the elementwise ops apply the same scalar
//! functions. Frozen forwards built on these kernels are therefore
//! bit-identical to the live tape forward, not merely close.

use crate::linalg;

/// Pool of reusable scratch buffers for tape-free forwards.
///
/// [`Workspace::take`] hands out a zeroed buffer of the requested length,
/// reusing a pooled allocation when one is available; [`Workspace::give`]
/// returns a buffer to the pool. Buffers keep their capacity across the
/// take/give cycle, so a serving loop that scores same-shaped requests
/// allocates only during warm-up: after the first request every `take` is
/// satisfied from the pool.
///
/// The pool is LIFO, which matches the nested take/give discipline of the
/// frozen forwards — each buffer ends up serving the same role (and
/// therefore the same size) on every request.
#[derive(Default)]
pub struct Workspace {
    pool: Vec<Vec<f32>>,
}

impl Workspace {
    /// An empty workspace (no pooled buffers yet).
    pub fn new() -> Self {
        Self::default()
    }

    /// Borrow a zero-filled buffer of exactly `len` elements.
    pub fn take(&mut self, len: usize) -> Vec<f32> {
        let mut buf = self.pool.pop().unwrap_or_default();
        buf.clear();
        buf.resize(len, 0.0);
        buf
    }

    /// Return a buffer to the pool, keeping its allocation for reuse.
    pub fn give(&mut self, buf: Vec<f32>) {
        self.pool.push(buf);
    }

    /// Number of buffers currently pooled (diagnostics/tests).
    pub fn pooled(&self) -> usize {
        self.pool.len()
    }
}

/// `out = a · b` where `a` is `m×k`, `b` is `k×n`, and `out` has room for
/// `m·n` values. Runs the same tiled micro-kernel as
/// [`crate::linalg::matmul`], so results are bit-identical to the tape path.
///
/// # Panics
/// Panics when a buffer is shorter than its stated shape requires.
pub fn matmul_into(a: &[f32], m: usize, k: usize, b: &[f32], n: usize, out: &mut [f32]) {
    assert!(a.len() >= m * k, "matmul_into: lhs buffer too short");
    assert!(b.len() >= k * n, "matmul_into: rhs buffer too short");
    assert!(out.len() >= m * n, "matmul_into: output buffer too short");
    // Edge tiles of the stripe kernel accumulate; start from zero.
    out[..m * n].fill(0.0);
    linalg::gemm_nn_stripe(0, m, k, n, a, b, out);
}

/// `out = aᵀ` where `a` is `r×c` row-major; `out` receives `c×r`.
pub fn transpose_into(a: &[f32], r: usize, c: usize, out: &mut [f32]) {
    assert!(a.len() >= r * c, "transpose_into: input buffer too short");
    assert!(
        out.len() >= r * c,
        "transpose_into: output buffer too short"
    );
    for i in 0..r {
        for j in 0..c {
            out[j * r + i] = a[i * c + j];
        }
    }
}

/// Apply `f` to every element, processing 8-lane chunks through fixed-size
/// arrays so the compiler vectorizes the body. Elementwise ops touch each
/// element independently, so widening cannot change rounding.
#[inline]
fn for_each_wide(xs: &mut [f32], f: impl Fn(f32) -> f32) {
    let mut chunks = xs.chunks_exact_mut(8);
    for chunk in &mut chunks {
        let arr: &mut [f32; 8] = chunk.try_into().unwrap();
        for x in arr.iter_mut() {
            *x = f(*x);
        }
    }
    for x in chunks.into_remainder() {
        *x = f(*x);
    }
}

/// Elementwise `x = max(x, 0)` — mirrors the tape's `relu`.
pub fn relu_in_place(xs: &mut [f32]) {
    for_each_wide(xs, |x| x.max(0.0));
}

/// Elementwise `x *= s` — mirrors the tape's `scale`.
pub fn scale_in_place(xs: &mut [f32], s: f32) {
    for_each_wide(xs, |x| x * s);
}

/// Add `bias` (length `cols`) to every row of the `rows×cols` view of `xs`
/// — mirrors the tape's broadcasting `add_row`.
pub fn add_row_in_place(xs: &mut [f32], cols: usize, bias: &[f32]) {
    assert_eq!(bias.len(), cols, "add_row_in_place: bias length mismatch");
    for row in xs.chunks_mut(cols) {
        let mut rc = row.chunks_exact_mut(8);
        let mut bc = bias.chunks_exact(8);
        for (rs, bs) in (&mut rc).zip(&mut bc) {
            let ra: &mut [f32; 8] = rs.try_into().unwrap();
            let ba: &[f32; 8] = bs.try_into().unwrap();
            for l in 0..8 {
                ra[l] += ba[l];
            }
        }
        for (x, &b) in rc.into_remainder().iter_mut().zip(bc.remainder()) {
            *x += b;
        }
    }
}

/// Row-wise softmax over the `rows×cols` view of `xs`, in place — mirrors
/// the tape's `softmax_rows` (same stabilized single-row kernel).
pub fn softmax_rows_in_place(xs: &mut [f32], cols: usize) {
    if cols == 0 {
        return;
    }
    for row in xs.chunks_mut(cols) {
        linalg::softmax_in_place(row);
    }
}

/// Mean over the rows of the `rows×cols` view of `a`, written to `out`
/// (length `cols`). Mirrors the tape's `mean_rows` exactly: accumulate row
/// sums in row order, then divide by `rows.max(1)`.
pub fn mean_rows_into(a: &[f32], rows: usize, cols: usize, out: &mut [f32]) {
    assert!(a.len() >= rows * cols, "mean_rows_into: input too short");
    assert!(out.len() >= cols, "mean_rows_into: output too short");
    out[..cols].fill(0.0);
    for i in 0..rows {
        // axpy with α = 1 adds each element exactly (1·v == v bitwise), so
        // the widened accumulation matches the tape's scalar row sum.
        linalg::axpy(1.0, &a[i * cols..(i + 1) * cols], &mut out[..cols]);
    }
    let r = rows.max(1) as f32;
    for_each_wide(&mut out[..cols], |o| o / r);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::Tensor;

    fn pseudo(rows: usize, cols: usize, seed: u64) -> Tensor {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
        let data: Vec<f32> = (0..rows * cols)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                ((state >> 40) as f32 / (1u64 << 24) as f32) - 0.5
            })
            .collect();
        Tensor::matrix(rows, cols, &data)
    }

    #[test]
    fn workspace_reuses_allocations() {
        let mut ws = Workspace::new();
        let a = ws.take(64);
        let ptr = a.as_ptr();
        ws.give(a);
        let b = ws.take(32);
        assert_eq!(b.as_ptr(), ptr, "pooled buffer must be reused");
        assert!(b.iter().all(|&v| v == 0.0), "reused buffer must be zeroed");
        assert_eq!(b.len(), 32);
        ws.give(b);
        assert_eq!(ws.pooled(), 1);
    }

    #[test]
    fn matmul_into_is_bit_identical_to_tape_matmul() {
        for &(m, k, n) in &[(1, 1, 1), (3, 5, 7), (5, 9, 17), (13, 21, 33)] {
            let a = pseudo(m, k, (m + n) as u64);
            let b = pseudo(k, n, (k + m) as u64);
            let reference = linalg::matmul(&a, &b);
            let mut out = vec![f32::NAN; m * n];
            matmul_into(a.as_slice(), m, k, b.as_slice(), n, &mut out);
            assert_eq!(out.as_slice(), reference.as_slice(), "{m}x{k}x{n}");
        }
    }

    #[test]
    fn matmul_into_overwrites_stale_contents() {
        let a = [1.0, 2.0];
        let b = [3.0, 4.0];
        let mut out = [999.0f32];
        matmul_into(&a, 1, 2, &b, 1, &mut out);
        assert_eq!(out, [11.0]);
    }

    #[test]
    fn transpose_into_matches_tape_transpose() {
        let a = pseudo(4, 7, 11);
        let reference = linalg::transpose(&a);
        let mut out = vec![0.0f32; 28];
        transpose_into(a.as_slice(), 4, 7, &mut out);
        assert_eq!(out.as_slice(), reference.as_slice());
    }

    #[test]
    fn elementwise_kernels_match_tape_semantics() {
        let mut xs = [-1.5f32, 0.0, 2.0];
        relu_in_place(&mut xs);
        assert_eq!(xs, [0.0, 0.0, 2.0]);
        scale_in_place(&mut xs, 0.5);
        assert_eq!(xs, [0.0, 0.0, 1.0]);
        let mut m = [1.0f32, 2.0, 3.0, 4.0];
        add_row_in_place(&mut m, 2, &[10.0, 20.0]);
        assert_eq!(m, [11.0, 22.0, 13.0, 24.0]);
    }

    #[test]
    fn softmax_rows_in_place_matches_tape_softmax() {
        let a = pseudo(3, 5, 13);
        let reference = linalg::softmax_rows(&a);
        let mut out = a.as_slice().to_vec();
        softmax_rows_in_place(&mut out, 5);
        assert_eq!(out.as_slice(), reference.as_slice());
    }

    #[test]
    fn mean_rows_into_matches_tape_mean_rows() {
        let a = pseudo(6, 4, 17);
        let reference = linalg::mean_rows(&a);
        let mut out = vec![0.0f32; 4];
        mean_rows_into(a.as_slice(), 6, 4, &mut out);
        assert_eq!(out.as_slice(), reference.as_slice());
        // Zero rows: defined (all zeros), mirroring rows.max(1).
        mean_rows_into(&[], 0, 4, &mut out);
        assert_eq!(out, [0.0; 4]);
    }
}
