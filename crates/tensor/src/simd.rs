//! Runtime-dispatched SIMD kernels for the retrieval tier.
//!
//! The retrieval stage (crate `od-retrieval`) reduces "best k OD pairs out
//! of ~40k" to three dense primitives over the frozen artifact's embedding
//! tables:
//!
//! - [`table_scores`] — a scaled GEMV: one dot product per table row
//!   against a query vector (per-city origin/destination affinities),
//! - [`table_scores_indexed`] — the same over a scattered row subset (the
//!   members of the IVF clusters a query routes to),
//! - [`scan_add_ge`] — a branch-light threshold scan over `bias + xs[i]`
//!   (the separable pair score `a[o] + b[d]` against the current top-k
//!   heap floor), reporting only the surviving lanes; each survivor's
//!   callback returns the (monotonically rising) threshold for the rest
//!   of the scan, so a tightening heap floor takes effect mid-row.
//!
//! Every kernel exists at three [`SimdLevel`]s — scalar, AVX2 (x86_64,
//! runtime-detected via `is_x86_feature_detected!`), and NEON (aarch64,
//! baseline) — and all three are **bit-identical** by construction, the
//! same contract the rest of the repo's kernels keep (see
//! `linalg::axpy`): the scalar path accumulates dot products into eight
//! strided partial sums and folds them with a fixed reduction tree, which
//! is exactly the lane arithmetic of one 256-bit AVX2 register (or an
//! aarch64 NEON register pair). The scalar level therefore *is* the
//! oracle: `od-retrieval`'s proptests assert the vector levels reproduce
//! its top-k result sets exactly, so index selection can never drift
//! across deployment hardware.
//!
//! Dispatch is explicit — callers pass the [`SimdLevel`] — so benchmarks
//! and tests can pin a level; [`SimdLevel::detect`] picks the best level
//! the host supports, and every entry point downgrades an unsupported
//! request to scalar instead of executing illegal instructions.

use std::fmt;

/// One instruction-set tier of the retrieval kernels.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SimdLevel {
    /// Portable Rust with 8-lane strided accumulation — the bit-exact
    /// oracle every other level must reproduce.
    Scalar,
    /// 256-bit AVX2 on x86_64 (runtime-detected).
    Avx2,
    /// 128-bit NEON register pairs on aarch64 (architecture baseline).
    Neon,
}

impl fmt::Display for SimdLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl SimdLevel {
    /// Stable lowercase name (metric label / bench report key).
    pub fn name(self) -> &'static str {
        match self {
            SimdLevel::Scalar => "scalar",
            SimdLevel::Avx2 => "avx2",
            SimdLevel::Neon => "neon",
        }
    }

    /// The best level this host can execute. The feature probe is cached
    /// by the standard library, so calling this per request is fine.
    pub fn detect() -> SimdLevel {
        #[cfg(target_arch = "x86_64")]
        {
            if is_x86_feature_detected!("avx2") {
                return SimdLevel::Avx2;
            }
        }
        #[cfg(target_arch = "aarch64")]
        {
            return SimdLevel::Neon;
        }
        #[allow(unreachable_code)]
        SimdLevel::Scalar
    }

    /// Can this host execute this level?
    pub fn supported(self) -> bool {
        match self {
            SimdLevel::Scalar => true,
            #[cfg(target_arch = "x86_64")]
            SimdLevel::Avx2 => is_x86_feature_detected!("avx2"),
            #[cfg(target_arch = "aarch64")]
            SimdLevel::Neon => true,
            #[allow(unreachable_patterns)]
            _ => false,
        }
    }

    /// Every level the host can execute (scalar first) — what equivalence
    /// tests and the `exact-vs-scalar` benchmark iterate over.
    pub fn available() -> Vec<SimdLevel> {
        [SimdLevel::Scalar, SimdLevel::Avx2, SimdLevel::Neon]
            .into_iter()
            .filter(|l| l.supported())
            .collect()
    }

    /// The level actually dispatched for a request: `self` when the host
    /// supports it, scalar otherwise. This is what makes the public
    /// kernels safe — an unsupported level degrades, it never faults.
    fn effective(self) -> SimdLevel {
        if self.supported() {
            self
        } else {
            SimdLevel::Scalar
        }
    }
}

/// The fixed reduction tree shared by every level: fold eight partial
/// sums pairwise. AVX2/NEON store their accumulator lanes and run this
/// exact tree, so the result is bit-identical to the scalar path.
#[inline]
fn reduce8(acc: &[f32; 8]) -> f32 {
    ((acc[0] + acc[1]) + (acc[2] + acc[3])) + ((acc[4] + acc[5]) + (acc[6] + acc[7]))
}

/// Bit-exact dot product: 8 strided partial accumulators over the common
/// prefix, [`reduce8`], then the tail elements folded in sequentially.
/// This is the reference semantics of all [`table_scores`] levels.
#[inline]
pub fn dot8(x: &[f32], y: &[f32]) -> f32 {
    debug_assert_eq!(x.len(), y.len());
    let n8 = x.len() / 8 * 8;
    let mut acc = [0.0f32; 8];
    for (cx, cy) in x[..n8].chunks_exact(8).zip(y[..n8].chunks_exact(8)) {
        for j in 0..8 {
            acc[j] += cx[j] * cy[j];
        }
    }
    let mut s = reduce8(&acc);
    for (a, b) in x[n8..].iter().zip(&y[n8..]) {
        s += a * b;
    }
    s
}

/// `out[r] = scale * dot(query, table[r])` for every row of a row-major
/// `rows×dim` table. `scale` folds the frozen θ mixture weight into the
/// per-city affinities so the pair scan is a plain add.
pub fn table_scores(
    level: SimdLevel,
    query: &[f32],
    table: &[f32],
    dim: usize,
    scale: f32,
    out: &mut [f32],
) {
    assert_eq!(query.len(), dim, "query/dim mismatch");
    assert_eq!(table.len(), out.len() * dim, "table geometry mismatch");
    match level.effective() {
        SimdLevel::Scalar => {
            for (r, o) in out.iter_mut().enumerate() {
                *o = scale * dot8(query, &table[r * dim..(r + 1) * dim]);
            }
        }
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `effective()` returned Avx2 only after
        // `is_x86_feature_detected!("avx2")`, and the slice geometry was
        // asserted above.
        SimdLevel::Avx2 => unsafe { avx2::table_scores(query, table, dim, scale, out) },
        #[cfg(target_arch = "aarch64")]
        // SAFETY: NEON is baseline on aarch64; geometry asserted above.
        SimdLevel::Neon => unsafe { neon::table_scores(query, table, dim, scale, out) },
        #[allow(unreachable_patterns)]
        _ => unreachable!("effective() only returns host-supported levels"),
    }
}

/// [`table_scores`] over a scattered row subset: `out[i] = scale *
/// dot(query, table[ids[i]])`. The pruned tier scores only the
/// destinations inside the probed IVF clusters.
///
/// Panics if any id is out of range — callers index with ids produced by
/// the index build over the same table.
pub fn table_scores_indexed(
    level: SimdLevel,
    query: &[f32],
    table: &[f32],
    dim: usize,
    scale: f32,
    ids: &[u32],
    out: &mut [f32],
) {
    assert_eq!(query.len(), dim, "query/dim mismatch");
    assert_eq!(ids.len(), out.len(), "ids/out mismatch");
    let rows = table.len() / dim;
    match level.effective() {
        SimdLevel::Scalar => {
            for (&id, o) in ids.iter().zip(out.iter_mut()) {
                let r = id as usize;
                assert!(r < rows, "row id {r} out of range ({rows} rows)");
                *o = scale * dot8(query, &table[r * dim..(r + 1) * dim]);
            }
        }
        #[cfg(target_arch = "x86_64")]
        // SAFETY: AVX2 presence established by `effective()`; row bounds
        // are asserted inside the kernel before any unchecked access.
        SimdLevel::Avx2 => unsafe {
            avx2::table_scores_indexed(query, table, dim, scale, ids, out)
        },
        #[cfg(target_arch = "aarch64")]
        // SAFETY: NEON is baseline on aarch64; bounds asserted inside.
        SimdLevel::Neon => unsafe {
            neon::table_scores_indexed(query, table, dim, scale, ids, out)
        },
        #[allow(unreachable_patterns)]
        _ => unreachable!("effective() only returns host-supported levels"),
    }
}

/// Threshold scan: call `visit(i, bias + xs[i])` for every `i` with
/// `bias + xs[i] >= threshold`, in ascending `i`. Each call returns the
/// threshold for the rest of the scan, which **must be ≥ the value it
/// replaces** — the caller is tracking a top-k heap floor, which only
/// rises as survivors displace entries.
///
/// This is the inner loop of the brute-force pair scan: `bias` is the
/// origin affinity `a[o]`, `xs` the destination affinities `b`, and
/// `threshold` the current top-k heap floor — with a warm heap almost
/// every lane fails the compare, so the vector levels retire 8 candidate
/// pairs per compare+movemask and only survivors take the call. Letting
/// a survivor raise the threshold mid-scan keeps the floor *live*: a
/// strong early lane immediately disqualifies the rest of the row
/// instead of flooding the heap with doomed candidates. The comparison
/// is IEEE `>=` at every level (quiet-NaN lanes never survive), and
/// survivors are visited in index order against the identical live
/// threshold at every level (the vector paths re-test block survivors
/// against it before visiting), so selection downstream is deterministic
/// and level-independent.
pub fn scan_add_ge<F: FnMut(u32, f32) -> f32>(
    level: SimdLevel,
    bias: f32,
    xs: &[f32],
    mut threshold: f32,
    visit: &mut F,
) {
    match level.effective() {
        SimdLevel::Scalar => {
            for (i, &x) in xs.iter().enumerate() {
                let s = bias + x;
                if s >= threshold {
                    threshold = visit(i as u32, s);
                }
            }
        }
        #[cfg(target_arch = "x86_64")]
        // SAFETY: AVX2 presence established by `effective()`.
        SimdLevel::Avx2 => unsafe { avx2::scan_add_ge(bias, xs, threshold, visit) },
        #[cfg(target_arch = "aarch64")]
        // SAFETY: NEON is baseline on aarch64.
        SimdLevel::Neon => unsafe { neon::scan_add_ge(bias, xs, threshold, visit) },
        #[allow(unreachable_patterns)]
        _ => unreachable!("effective() only returns host-supported levels"),
    }
}

/// Warm-heap sweep: [`scan_add_ge`] over many rows in one call. For
/// each origin `o` in `order`, scans `biases[o] + xs[j]` for every `j`
/// and calls `visit(o, j, s)` for survivors `s >= threshold`, origins in
/// `order` sequence and lanes in ascending `j` — the same visit sequence
/// at every level, under the same live monotone-threshold contract as
/// [`scan_add_ge`].
///
/// When `stop_margin` is `Some(m)`, the sweep stops *before* the first
/// origin with `biases[o] + m < threshold` (the caller passes `m =
/// max(xs)`, making that origin — and, with `order` sorted by descending
/// bias, every later one — provably unable to produce a survivor).
/// Returns the number of origins actually swept.
///
/// This exists because the per-row entry cost is not free: a
/// `#[target_feature]` kernel cannot inline into its caller, so a
/// row-at-a-time loop pays call + register setup per origin. Hoisting
/// the loop inside the kernel pays it once per query.
pub fn sweep_scan_add_ge<F: FnMut(u32, u32, f32) -> f32>(
    level: SimdLevel,
    order: &[u32],
    biases: &[f32],
    xs: &[f32],
    mut threshold: f32,
    stop_margin: Option<f32>,
    visit: &mut F,
) -> usize {
    match level.effective() {
        SimdLevel::Scalar => {
            for (swept, &o) in order.iter().enumerate() {
                let bias = biases[o as usize];
                if let Some(m) = stop_margin {
                    if bias + m < threshold {
                        return swept;
                    }
                }
                for (j, &x) in xs.iter().enumerate() {
                    let s = bias + x;
                    if s >= threshold {
                        threshold = visit(o, j as u32, s);
                    }
                }
            }
            order.len()
        }
        #[cfg(target_arch = "x86_64")]
        // SAFETY: AVX2 presence established by `effective()`.
        SimdLevel::Avx2 => unsafe {
            avx2::sweep_scan_add_ge(order, biases, xs, threshold, stop_margin, visit)
        },
        #[cfg(target_arch = "aarch64")]
        // SAFETY: NEON is baseline on aarch64.
        SimdLevel::Neon => unsafe {
            neon::sweep_scan_add_ge(order, biases, xs, threshold, stop_margin, visit)
        },
        #[allow(unreachable_patterns)]
        _ => unreachable!("effective() only returns host-supported levels"),
    }
}

#[cfg(target_arch = "x86_64")]
mod avx2 {
    //! AVX2 kernels. Eight f32 lanes per register — the same partial-sum
    //! layout as the scalar oracle's `acc[0..8]`, reduced by the same
    //! [`reduce8`](super::reduce8) tree, so results are bit-identical.

    use super::reduce8;
    use std::arch::x86_64::*;

    /// One row's dot product with the 8-lane accumulator scheme.
    ///
    /// # Safety
    /// Caller guarantees AVX2 is available and `x`/`y` have equal length.
    #[target_feature(enable = "avx2")]
    #[inline]
    unsafe fn dot_row(x: &[f32], y: &[f32]) -> f32 {
        let n = x.len();
        let n8 = n / 8 * 8;
        let (px, py) = (x.as_ptr(), y.as_ptr());
        let mut acc = _mm256_setzero_ps();
        let mut i = 0;
        while i < n8 {
            // SAFETY: i + 8 <= n8 <= n, so both 8-wide unaligned loads
            // stay inside the slices.
            let vx = _mm256_loadu_ps(px.add(i));
            let vy = _mm256_loadu_ps(py.add(i));
            // mul then add (no FMA): matches the scalar `acc[j] += x * y`
            // two-op rounding exactly.
            acc = _mm256_add_ps(acc, _mm256_mul_ps(vx, vy));
            i += 8;
        }
        let mut lanes = [0.0f32; 8];
        _mm256_storeu_ps(lanes.as_mut_ptr(), acc);
        let mut s = reduce8(&lanes);
        // Tail elements folded sequentially, exactly like the oracle.
        for j in n8..n {
            s += x[j] * y[j];
        }
        s
    }

    /// # Safety
    /// Caller guarantees AVX2 is available, `query.len() == dim`, and
    /// `table.len() == out.len() * dim`.
    #[target_feature(enable = "avx2")]
    pub unsafe fn table_scores(
        query: &[f32],
        table: &[f32],
        dim: usize,
        scale: f32,
        out: &mut [f32],
    ) {
        for (r, o) in out.iter_mut().enumerate() {
            // SAFETY: row r is in range by the table.len() precondition.
            *o = scale * dot_row(query, &table[r * dim..(r + 1) * dim]);
        }
    }

    /// # Safety
    /// Caller guarantees AVX2 is available, `query.len() == dim`, and
    /// `ids.len() == out.len()`. Row ids are bounds-checked here.
    #[target_feature(enable = "avx2")]
    pub unsafe fn table_scores_indexed(
        query: &[f32],
        table: &[f32],
        dim: usize,
        scale: f32,
        ids: &[u32],
        out: &mut [f32],
    ) {
        let rows = table.len() / dim;
        for (&id, o) in ids.iter().zip(out.iter_mut()) {
            let r = id as usize;
            assert!(r < rows, "row id {r} out of range ({rows} rows)");
            *o = scale * dot_row(query, &table[r * dim..(r + 1) * dim]);
        }
    }

    /// Drain one 8-lane block's survivors in index order, re-testing
    /// each against the live threshold (an earlier lane in the block may
    /// have raised it) — exactly the lane sequence the scalar oracle
    /// visits.
    ///
    /// # Safety
    /// Caller guarantees AVX2 is available.
    #[target_feature(enable = "avx2")]
    #[inline]
    unsafe fn drain_block<F: FnMut(u32, f32) -> f32>(
        base: u32,
        s: __m256,
        mask: u32,
        threshold: &mut f32,
        visit: &mut F,
    ) {
        let mut lanes = [0.0f32; 8];
        _mm256_storeu_ps(lanes.as_mut_ptr(), s);
        let mut m = mask;
        // Lowest set bit first keeps survivors in index order.
        while m != 0 {
            let j = m.trailing_zeros();
            if lanes[j as usize] >= *threshold {
                *threshold = visit(base + j, lanes[j as usize]);
            }
            m &= m - 1;
        }
    }

    /// # Safety
    /// Caller guarantees AVX2 is available.
    #[target_feature(enable = "avx2")]
    pub unsafe fn scan_add_ge<F: FnMut(u32, f32) -> f32>(
        bias: f32,
        xs: &[f32],
        mut threshold: f32,
        visit: &mut F,
    ) {
        let n = xs.len();
        let n8 = n / 8 * 8;
        let n16 = n / 16 * 16;
        let p = xs.as_ptr();
        let vb = _mm256_set1_ps(bias);
        let mut vt = _mm256_set1_ps(threshold);
        let mut i = 0;
        // Two blocks per iteration: with a warm heap floor the OR'd
        // movemask almost always tests zero, so the all-fail fast path
        // pays one branch per 16 lanes. The second block's pre-filter
        // may use a threshold that block-one survivors have since
        // raised — harmless, because the pre-filter only ever
        // over-approximates and the drain re-tests every lane against
        // the live value.
        while i < n16 {
            // SAFETY: i + 16 <= n16 <= n keeps both loads in bounds.
            let s0 = _mm256_add_ps(vb, _mm256_loadu_ps(p.add(i)));
            let s1 = _mm256_add_ps(vb, _mm256_loadu_ps(p.add(i + 8)));
            // GE, ordered+quiet: NaN lanes compare false, like scalar >=.
            let m0 = _mm256_movemask_ps(_mm256_cmp_ps::<_CMP_GE_OQ>(s0, vt)) as u32;
            let m1 = _mm256_movemask_ps(_mm256_cmp_ps::<_CMP_GE_OQ>(s1, vt)) as u32;
            if (m0 | m1) != 0 {
                if m0 != 0 {
                    drain_block(i as u32, s0, m0, &mut threshold, visit);
                }
                if m1 != 0 {
                    drain_block(i as u32 + 8, s1, m1, &mut threshold, visit);
                }
                vt = _mm256_set1_ps(threshold);
            }
            i += 16;
        }
        if i < n8 {
            // SAFETY: i + 8 <= n8 <= n keeps the load in bounds.
            let s = _mm256_add_ps(vb, _mm256_loadu_ps(p.add(i)));
            let mask = _mm256_movemask_ps(_mm256_cmp_ps::<_CMP_GE_OQ>(s, vt)) as u32;
            if mask != 0 {
                drain_block(i as u32, s, mask, &mut threshold, visit);
            }
            i += 8;
        }
        for (j, &x) in xs.iter().enumerate().skip(i) {
            let s = bias + x;
            if s >= threshold {
                threshold = visit(j as u32, s);
            }
        }
    }

    /// # Safety
    /// Caller guarantees AVX2 is available.
    #[target_feature(enable = "avx2")]
    pub unsafe fn sweep_scan_add_ge<F: FnMut(u32, u32, f32) -> f32>(
        order: &[u32],
        biases: &[f32],
        xs: &[f32],
        mut threshold: f32,
        stop_margin: Option<f32>,
        visit: &mut F,
    ) -> usize {
        let n = xs.len();
        let n8 = n / 8 * 8;
        let n16 = n / 16 * 16;
        let p = xs.as_ptr();
        // The threshold register survives across rows; it is reloaded
        // only when a survivor raises the scalar value.
        let mut vt = _mm256_set1_ps(threshold);
        for (swept, &o) in order.iter().enumerate() {
            let bias = biases[o as usize];
            if let Some(m) = stop_margin {
                if bias + m < threshold {
                    return swept;
                }
            }
            let vb = _mm256_set1_ps(bias);
            let visit_row = &mut |j: u32, s: f32| visit(o, j, s);
            let mut i = 0;
            // Same two-blocks-per-branch shape as `scan_add_ge`, same
            // conservative-pre-filter argument for exactness.
            while i < n16 {
                // SAFETY: i + 16 <= n16 <= n keeps both loads in bounds.
                let s0 = _mm256_add_ps(vb, _mm256_loadu_ps(p.add(i)));
                let s1 = _mm256_add_ps(vb, _mm256_loadu_ps(p.add(i + 8)));
                let m0 = _mm256_movemask_ps(_mm256_cmp_ps::<_CMP_GE_OQ>(s0, vt)) as u32;
                let m1 = _mm256_movemask_ps(_mm256_cmp_ps::<_CMP_GE_OQ>(s1, vt)) as u32;
                if (m0 | m1) != 0 {
                    if m0 != 0 {
                        drain_block(i as u32, s0, m0, &mut threshold, visit_row);
                    }
                    if m1 != 0 {
                        drain_block(i as u32 + 8, s1, m1, &mut threshold, visit_row);
                    }
                    vt = _mm256_set1_ps(threshold);
                }
                i += 16;
            }
            if i < n8 {
                // SAFETY: i + 8 <= n8 <= n keeps the load in bounds.
                let s = _mm256_add_ps(vb, _mm256_loadu_ps(p.add(i)));
                let mask = _mm256_movemask_ps(_mm256_cmp_ps::<_CMP_GE_OQ>(s, vt)) as u32;
                if mask != 0 {
                    drain_block(i as u32, s, mask, &mut threshold, visit_row);
                    vt = _mm256_set1_ps(threshold);
                }
                i += 8;
            }
            let mut tail_raised = false;
            for (j, &x) in xs.iter().enumerate().skip(i) {
                let s = bias + x;
                if s >= threshold {
                    threshold = visit(o, j as u32, s);
                    tail_raised = true;
                }
            }
            if tail_raised {
                vt = _mm256_set1_ps(threshold);
            }
        }
        order.len()
    }
}

#[cfg(target_arch = "aarch64")]
mod neon {
    //! NEON kernels. Two 128-bit registers form the same eight f32 lanes
    //! as one AVX2 register (lanes 0–3 and 4–7 of the scalar oracle's
    //! accumulator), reduced by the same tree — bit-identical again.

    use super::reduce8;
    use std::arch::aarch64::*;

    /// # Safety
    /// Caller guarantees `x`/`y` have equal length. NEON is the aarch64
    /// baseline.
    #[target_feature(enable = "neon")]
    #[inline]
    unsafe fn dot_row(x: &[f32], y: &[f32]) -> f32 {
        let n = x.len();
        let n8 = n / 8 * 8;
        let (px, py) = (x.as_ptr(), y.as_ptr());
        let mut acc0 = vdupq_n_f32(0.0);
        let mut acc1 = vdupq_n_f32(0.0);
        let mut i = 0;
        while i < n8 {
            // SAFETY: i + 8 <= n8 <= n keeps all four loads in bounds.
            let x0 = vld1q_f32(px.add(i));
            let x1 = vld1q_f32(px.add(i + 4));
            let y0 = vld1q_f32(py.add(i));
            let y1 = vld1q_f32(py.add(i + 4));
            // mul then add (no fused vfmaq): matches scalar rounding.
            acc0 = vaddq_f32(acc0, vmulq_f32(x0, y0));
            acc1 = vaddq_f32(acc1, vmulq_f32(x1, y1));
            i += 8;
        }
        let mut lanes = [0.0f32; 8];
        vst1q_f32(lanes.as_mut_ptr(), acc0);
        vst1q_f32(lanes.as_mut_ptr().add(4), acc1);
        let mut s = reduce8(&lanes);
        for j in n8..n {
            s += x[j] * y[j];
        }
        s
    }

    /// # Safety
    /// Caller guarantees `query.len() == dim` and `table.len() ==
    /// out.len() * dim`.
    #[target_feature(enable = "neon")]
    pub unsafe fn table_scores(
        query: &[f32],
        table: &[f32],
        dim: usize,
        scale: f32,
        out: &mut [f32],
    ) {
        for (r, o) in out.iter_mut().enumerate() {
            // SAFETY: row r is in range by the table.len() precondition.
            *o = scale * dot_row(query, &table[r * dim..(r + 1) * dim]);
        }
    }

    /// # Safety
    /// Caller guarantees `query.len() == dim` and `ids.len() ==
    /// out.len()`. Row ids are bounds-checked here.
    #[target_feature(enable = "neon")]
    pub unsafe fn table_scores_indexed(
        query: &[f32],
        table: &[f32],
        dim: usize,
        scale: f32,
        ids: &[u32],
        out: &mut [f32],
    ) {
        let rows = table.len() / dim;
        for (&id, o) in ids.iter().zip(out.iter_mut()) {
            let r = id as usize;
            assert!(r < rows, "row id {r} out of range ({rows} rows)");
            *o = scale * dot_row(query, &table[r * dim..(r + 1) * dim]);
        }
    }

    /// # Safety
    /// NEON is the aarch64 baseline; no further preconditions.
    #[target_feature(enable = "neon")]
    pub unsafe fn scan_add_ge<F: FnMut(u32, f32) -> f32>(
        bias: f32,
        xs: &[f32],
        mut threshold: f32,
        visit: &mut F,
    ) {
        let n = xs.len();
        let n4 = n / 4 * 4;
        let p = xs.as_ptr();
        let vb = vdupq_n_f32(bias);
        let mut vt = vdupq_n_f32(threshold);
        let mut i = 0;
        while i < n4 {
            // SAFETY: i + 4 <= n4 <= n keeps the load in bounds.
            let s = vaddq_f32(vb, vld1q_f32(p.add(i)));
            let ge = vcgeq_f32(s, vt);
            // Any lane set? maxv over the mask is cheap on aarch64.
            if vmaxvq_u32(ge) != 0 {
                let mut lanes = [0.0f32; 4];
                let mut mask = [0u32; 4];
                vst1q_f32(lanes.as_mut_ptr(), s);
                vst1q_u32(mask.as_mut_ptr(), ge);
                // The block compared against the threshold as of block
                // entry; re-test survivors against the live one so the
                // visit sequence matches the scalar oracle exactly.
                for j in 0..4 {
                    if mask[j] != 0 && lanes[j] >= threshold {
                        threshold = visit((i + j) as u32, lanes[j]);
                    }
                }
                vt = vdupq_n_f32(threshold);
            }
            i += 4;
        }
        for j in n4..n {
            let s = bias + xs[j];
            if s >= threshold {
                threshold = visit(j as u32, s);
            }
        }
    }

    /// # Safety
    /// NEON is the aarch64 baseline; no further preconditions.
    #[target_feature(enable = "neon")]
    pub unsafe fn sweep_scan_add_ge<F: FnMut(u32, u32, f32) -> f32>(
        order: &[u32],
        biases: &[f32],
        xs: &[f32],
        mut threshold: f32,
        stop_margin: Option<f32>,
        visit: &mut F,
    ) -> usize {
        let n = xs.len();
        let n4 = n / 4 * 4;
        let p = xs.as_ptr();
        // The threshold register survives across rows; it is reloaded
        // only when a survivor raises the scalar value.
        let mut vt = vdupq_n_f32(threshold);
        for (swept, &o) in order.iter().enumerate() {
            let bias = biases[o as usize];
            if let Some(m) = stop_margin {
                if bias + m < threshold {
                    return swept;
                }
            }
            let vb = vdupq_n_f32(bias);
            let mut i = 0;
            while i < n4 {
                // SAFETY: i + 4 <= n4 <= n keeps the load in bounds.
                let s = vaddq_f32(vb, vld1q_f32(p.add(i)));
                let ge = vcgeq_f32(s, vt);
                if vmaxvq_u32(ge) != 0 {
                    let mut lanes = [0.0f32; 4];
                    let mut mask = [0u32; 4];
                    vst1q_f32(lanes.as_mut_ptr(), s);
                    vst1q_u32(mask.as_mut_ptr(), ge);
                    // Re-test against the live threshold, as in
                    // `scan_add_ge`.
                    for j in 0..4 {
                        if mask[j] != 0 && lanes[j] >= threshold {
                            threshold = visit(o, (i + j) as u32, lanes[j]);
                        }
                    }
                    vt = vdupq_n_f32(threshold);
                }
                i += 4;
            }
            let mut tail_raised = false;
            for j in n4..n {
                let s = bias + xs[j];
                if s >= threshold {
                    threshold = visit(o, j as u32, s);
                    tail_raised = true;
                }
            }
            if tail_raised {
                vt = vdupq_n_f32(threshold);
            }
        }
        order.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic pseudo-random table (splitmix-style), no RNG dep.
    fn noise(n: usize, seed: u64) -> Vec<f32> {
        let mut s = seed;
        (0..n)
            .map(|_| {
                s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((s >> 33) as f32 / (1u64 << 31) as f32) - 0.5
            })
            .collect()
    }

    #[test]
    fn detect_is_supported_and_available_starts_scalar() {
        assert!(SimdLevel::detect().supported());
        let levels = SimdLevel::available();
        assert_eq!(levels[0], SimdLevel::Scalar);
        #[cfg(target_arch = "x86_64")]
        if is_x86_feature_detected!("avx2") {
            assert!(levels.contains(&SimdLevel::Avx2));
        }
    }

    #[test]
    fn unsupported_level_degrades_to_scalar() {
        // A level foreign to this host must degrade, not fault: on
        // x86_64 that is Neon, elsewhere Avx2.
        let foreign = if cfg!(target_arch = "x86_64") {
            SimdLevel::Neon
        } else {
            SimdLevel::Avx2
        };
        let q = noise(16, 1);
        let t = noise(16 * 5, 2);
        let mut a = vec![0.0; 5];
        let mut b = vec![0.0; 5];
        table_scores(foreign, &q, &t, 16, 1.0, &mut a);
        table_scores(SimdLevel::Scalar, &q, &t, 16, 1.0, &mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn all_levels_match_scalar_bitwise_across_dims() {
        // Dims cover multiple full 8-lane blocks, exactly one, and tails.
        for dim in [1usize, 3, 7, 8, 9, 15, 16, 17, 24, 31, 64] {
            let rows = 37;
            let q = noise(dim, 41 + dim as u64);
            let t = noise(rows * dim, 97 + dim as u64);
            let ids: Vec<u32> = (0..rows as u32).rev().step_by(3).collect();
            let mut want = vec![0.0f32; rows];
            table_scores(SimdLevel::Scalar, &q, &t, dim, 0.7, &mut want);
            let mut want_idx = vec![0.0f32; ids.len()];
            table_scores_indexed(SimdLevel::Scalar, &q, &t, dim, 0.7, &ids, &mut want_idx);
            for level in SimdLevel::available() {
                let mut got = vec![0.0f32; rows];
                table_scores(level, &q, &t, dim, 0.7, &mut got);
                assert_eq!(
                    got.iter().map(|f| f.to_bits()).collect::<Vec<_>>(),
                    want.iter().map(|f| f.to_bits()).collect::<Vec<_>>(),
                    "table_scores({level}) differs at dim {dim}"
                );
                let mut got_idx = vec![0.0f32; ids.len()];
                table_scores_indexed(level, &q, &t, dim, 0.7, &ids, &mut got_idx);
                assert_eq!(
                    got_idx.iter().map(|f| f.to_bits()).collect::<Vec<_>>(),
                    want_idx.iter().map(|f| f.to_bits()).collect::<Vec<_>>(),
                    "table_scores_indexed({level}) differs at dim {dim}"
                );
            }
        }
    }

    #[test]
    fn scan_survivors_are_identical_and_in_order() {
        for n in [0usize, 1, 5, 8, 13, 64, 257] {
            let xs = noise(n, 7 + n as u64);
            for threshold in [-10.0f32, -0.1, 0.0, 0.1, 10.0] {
                let mut want = Vec::new();
                scan_add_ge(SimdLevel::Scalar, 0.05, &xs, threshold, &mut |i, s| {
                    want.push((i, s.to_bits()));
                    threshold
                });
                for level in SimdLevel::available() {
                    let mut got = Vec::new();
                    scan_add_ge(level, 0.05, &xs, threshold, &mut |i, s| {
                        got.push((i, s.to_bits()));
                        threshold
                    });
                    assert_eq!(got, want, "scan_add_ge({level}) differs at n={n}");
                    assert!(
                        got.windows(2).all(|w| w[0].0 < w[1].0),
                        "not in index order"
                    );
                }
            }
        }
    }

    #[test]
    fn raising_the_threshold_mid_scan_prunes_identically_across_levels() {
        // A top-1 style callback: every survivor raises the bar to its
        // own score. The visit sequence (running maxima, in index order)
        // must agree bitwise at every level — the vector paths re-test
        // block survivors against the live threshold.
        for n in [1usize, 8, 13, 64, 257] {
            let xs = noise(n, 19 + n as u64);
            let run = |level: SimdLevel| {
                let mut seen = Vec::new();
                scan_add_ge(level, 0.05, &xs, f32::NEG_INFINITY, &mut |i, s| {
                    seen.push((i, s.to_bits()));
                    s
                });
                seen
            };
            let want = run(SimdLevel::Scalar);
            assert!(!want.is_empty(), "a finite lane always beats -inf");
            for level in SimdLevel::available() {
                assert_eq!(
                    run(level),
                    want,
                    "live-threshold scan differs at {level}, n={n}"
                );
            }
        }
    }

    #[test]
    fn nan_lanes_never_survive() {
        let mut xs = noise(16, 3);
        xs[4] = f32::NAN;
        xs[11] = f32::NAN;
        for level in SimdLevel::available() {
            let mut got = Vec::new();
            scan_add_ge(level, 0.0, &xs, f32::NEG_INFINITY, &mut |i, _| {
                got.push(i);
                f32::NEG_INFINITY
            });
            assert!(
                !got.contains(&4) && !got.contains(&11),
                "NaN survived at {level}"
            );
        }
    }

    #[test]
    fn dot8_matches_naive_closely() {
        // Not bit-equal to a naive left fold (different association), but
        // must be numerically sane.
        let x = noise(100, 11);
        let y = noise(100, 13);
        let naive: f32 = x.iter().zip(&y).map(|(a, b)| a * b).sum();
        assert!((dot8(&x, &y) - naive).abs() < 1e-4);
    }
}
