//! Shape arithmetic for dense row-major tensors.
//!
//! The engine is deliberately restricted to ranks 0..=2: every quantity the
//! ODNET reproduction manipulates is a scalar, a vector, or a matrix (batches
//! of sequences are handled as per-sample matrices). Keeping the rank small
//! makes the autograd rules easy to audit against the paper's equations.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The shape of a dense tensor: `[]` (scalar), `[n]` (vector) or `[r, c]`
/// (matrix, row-major).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Shape {
    /// A single value.
    Scalar,
    /// A vector of `n` elements.
    Vector(usize),
    /// A matrix with `rows × cols` elements stored row-major.
    Matrix(usize, usize),
}

impl Shape {
    /// Total number of elements.
    pub fn len(&self) -> usize {
        match *self {
            Shape::Scalar => 1,
            Shape::Vector(n) => n,
            Shape::Matrix(r, c) => r * c,
        }
    }

    /// True when the shape holds no elements (zero-length vector or a matrix
    /// with an empty dimension).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The rank (number of axes): 0, 1, or 2.
    pub fn rank(&self) -> usize {
        match self {
            Shape::Scalar => 0,
            Shape::Vector(_) => 1,
            Shape::Matrix(_, _) => 2,
        }
    }

    /// Number of rows when viewed as a matrix: scalars and vectors are a
    /// single row.
    pub fn rows(&self) -> usize {
        match *self {
            Shape::Scalar | Shape::Vector(_) => 1,
            Shape::Matrix(r, _) => r,
        }
    }

    /// Number of columns when viewed as a matrix.
    pub fn cols(&self) -> usize {
        match *self {
            Shape::Scalar => 1,
            Shape::Vector(n) => n,
            Shape::Matrix(_, c) => c,
        }
    }

    /// The shape of the transpose.
    pub fn transposed(&self) -> Shape {
        match *self {
            Shape::Matrix(r, c) => Shape::Matrix(c, r),
            other => other,
        }
    }

    /// Shape of the matrix product `self · rhs`, or `None` when the inner
    /// dimensions disagree.
    pub fn matmul(&self, rhs: &Shape) -> Option<Shape> {
        let (m, k1) = (self.rows(), self.cols());
        let (k2, n) = (rhs.rows(), rhs.cols());
        if k1 != k2 {
            return None;
        }
        Some(Shape::Matrix(m, n))
    }
}

impl fmt::Debug for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Shape::Scalar => write!(f, "[]"),
            Shape::Vector(n) => write!(f, "[{n}]"),
            Shape::Matrix(r, c) => write!(f, "[{r}, {c}]"),
        }
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn len_counts_elements() {
        assert_eq!(Shape::Scalar.len(), 1);
        assert_eq!(Shape::Vector(7).len(), 7);
        assert_eq!(Shape::Matrix(3, 4).len(), 12);
    }

    #[test]
    fn empty_shapes() {
        assert!(Shape::Vector(0).is_empty());
        assert!(Shape::Matrix(0, 5).is_empty());
        assert!(Shape::Matrix(5, 0).is_empty());
        assert!(!Shape::Scalar.is_empty());
    }

    #[test]
    fn rank_is_axis_count() {
        assert_eq!(Shape::Scalar.rank(), 0);
        assert_eq!(Shape::Vector(2).rank(), 1);
        assert_eq!(Shape::Matrix(2, 2).rank(), 2);
    }

    #[test]
    fn rows_cols_view() {
        assert_eq!((Shape::Scalar.rows(), Shape::Scalar.cols()), (1, 1));
        assert_eq!((Shape::Vector(5).rows(), Shape::Vector(5).cols()), (1, 5));
        assert_eq!(
            (Shape::Matrix(2, 3).rows(), Shape::Matrix(2, 3).cols()),
            (2, 3)
        );
    }

    #[test]
    fn transpose_swaps_matrix_axes_only() {
        assert_eq!(Shape::Matrix(2, 3).transposed(), Shape::Matrix(3, 2));
        assert_eq!(Shape::Vector(4).transposed(), Shape::Vector(4));
        assert_eq!(Shape::Scalar.transposed(), Shape::Scalar);
    }

    #[test]
    fn matmul_shape_checks_inner_dim() {
        assert_eq!(
            Shape::Matrix(2, 3).matmul(&Shape::Matrix(3, 5)),
            Some(Shape::Matrix(2, 5))
        );
        assert_eq!(Shape::Matrix(2, 3).matmul(&Shape::Matrix(4, 5)), None);
        // Vector is treated as a 1×n row.
        assert_eq!(
            Shape::Vector(3).matmul(&Shape::Matrix(3, 2)),
            Some(Shape::Matrix(1, 2))
        );
    }

    #[test]
    fn display_matches_debug() {
        assert_eq!(format!("{}", Shape::Matrix(2, 3)), "[2, 3]");
        assert_eq!(format!("{:?}", Shape::Vector(9)), "[9]");
    }
}
