//! First-order optimizers over a [`ParamStore`].
//!
//! The paper trains every model with Adam (lr = 0.01, batch 128, 5 epochs,
//! §V-A.5); [`Adam::paper_default`] encodes that setting. Plain SGD is kept
//! for tests and ablations because its one-line update makes hand-checking
//! trivial.

use crate::param::ParamStore;
use crate::tensor::Tensor;

/// Shared optimizer interface: consume accumulated gradients, update values.
pub trait Optimizer {
    /// Apply one update step from the store's accumulated gradients, then
    /// leave the gradients untouched (callers decide when to zero them).
    fn step(&mut self, store: &mut ParamStore);

    /// The current learning rate.
    fn learning_rate(&self) -> f32;

    /// Override the learning rate (e.g. for decay schedules).
    fn set_learning_rate(&mut self, lr: f32);
}

/// Vanilla stochastic gradient descent: `w ← w − lr · g`.
#[derive(Debug, Clone)]
pub struct Sgd {
    lr: f32,
}

impl Sgd {
    /// SGD with the given learning rate.
    pub fn new(lr: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        Sgd { lr }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, store: &mut ParamStore) {
        let ids: Vec<_> = store.ids().collect();
        for id in ids {
            let g = store.grad(id);
            store.value_mut(id).axpy(-self.lr, &g);
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// Adam (Kingma & Ba) with bias correction.
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: u64,
    /// First/second moment estimates, indexed like the store's parameters.
    m: Vec<Tensor>,
    v: Vec<Tensor>,
}

impl Adam {
    /// Adam with custom hyper-parameters.
    pub fn new(lr: f32, beta1: f32, beta2: f32, eps: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        assert!((0.0..1.0).contains(&beta1) && (0.0..1.0).contains(&beta2));
        Adam {
            lr,
            beta1,
            beta2,
            eps,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// The paper's training configuration: Adam with lr = 0.01 (§V-A.5) and
    /// the standard β₁ = 0.9, β₂ = 0.999.
    pub fn paper_default() -> Self {
        Adam::new(0.01, 0.9, 0.999, 1e-8)
    }

    /// Conventional default (lr = 1e-3).
    pub fn with_lr(lr: f32) -> Self {
        Adam::new(lr, 0.9, 0.999, 1e-8)
    }

    fn ensure_state(&mut self, store: &ParamStore) {
        let ids: Vec<_> = store.ids().collect();
        while self.m.len() < ids.len() {
            let id = ids[self.m.len()];
            let shape = store.value(id).shape();
            self.m.push(Tensor::zeros(shape));
            self.v.push(Tensor::zeros(shape));
        }
    }

    /// Number of steps taken so far.
    pub fn steps(&self) -> u64 {
        self.t
    }
}

impl Optimizer for Adam {
    fn step(&mut self, store: &mut ParamStore) {
        self.ensure_state(store);
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        let ids: Vec<_> = store.ids().collect();
        for (i, id) in ids.into_iter().enumerate() {
            let g = store.grad(id);
            let m = &mut self.m[i];
            let v = &mut self.v[i];
            for ((mi, vi), &gi) in m
                .as_mut_slice()
                .iter_mut()
                .zip(v.as_mut_slice())
                .zip(g.as_slice())
            {
                *mi = self.beta1 * *mi + (1.0 - self.beta1) * gi;
                *vi = self.beta2 * *vi + (1.0 - self.beta2) * gi * gi;
            }
            let value = store.value_mut(id);
            for ((wi, &mi), &vi) in value
                .as_mut_slice()
                .iter_mut()
                .zip(m.as_slice())
                .zip(v.as_slice())
            {
                let m_hat = mi / bc1;
                let v_hat = vi / bc2;
                *wi -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
            }
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;

    /// Minimize (w − 3)² and check convergence — exercises the full
    /// graph → grad → optimizer loop.
    fn converges_to_three(opt: &mut dyn Optimizer) -> f32 {
        let mut store = ParamStore::new();
        let w = store.register("w", Tensor::scalar(0.0));
        for _ in 0..500 {
            store.zero_grads();
            let mut g = Graph::new();
            let wv = g.param(&store, w);
            let diff = g.add_scalar(wv, -3.0);
            let sq = g.mul(diff, diff);
            let loss = g.sum_all(sq);
            g.backward(loss);
            g.accumulate_param_grads(&mut store);
            opt.step(&mut store);
        }
        store.value(w).item()
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut opt = Sgd::new(0.1);
        let w = converges_to_three(&mut opt);
        assert!((w - 3.0).abs() < 1e-3, "sgd ended at {w}");
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut opt = Adam::with_lr(0.05);
        let w = converges_to_three(&mut opt);
        assert!((w - 3.0).abs() < 1e-2, "adam ended at {w}");
    }

    #[test]
    fn sgd_single_step_is_exact() {
        let mut store = ParamStore::new();
        let w = store.register("w", Tensor::vector(&[1.0, 2.0]));
        store.grad_mut(w).axpy(1.0, &Tensor::vector(&[10.0, -10.0]));
        Sgd::new(0.1).step(&mut store);
        assert_eq!(store.value(w).as_slice(), &[0.0, 3.0]);
    }

    #[test]
    fn adam_first_step_size_is_lr() {
        // With bias correction, the very first Adam step has magnitude ≈ lr
        // regardless of gradient scale.
        let mut store = ParamStore::new();
        let w = store.register("w", Tensor::scalar(0.0));
        store.grad_mut(w).axpy(1.0, &Tensor::scalar(1234.0));
        let mut opt = Adam::with_lr(0.01);
        opt.step(&mut store);
        assert!((store.value(w).item() + 0.01).abs() < 1e-4);
        assert_eq!(opt.steps(), 1);
    }

    #[test]
    fn paper_default_lr_matches_section_v() {
        assert!((Adam::paper_default().learning_rate() - 0.01).abs() < f32::EPSILON);
    }

    #[test]
    #[should_panic(expected = "learning rate must be positive")]
    fn rejects_non_positive_lr() {
        Sgd::new(0.0);
    }
}
