//! Named trainable-parameter storage with gradient buffers and
//! checkpoint (de)serialization.
//!
//! A [`ParamStore`] owns the canonical value of every trainable tensor in a
//! model. Graphs snapshot parameter values at [`crate::Graph::param`] time
//! and flush gradients back with `accumulate_param_grads`; optimizers then
//! consume the store's `(value, grad)` pairs. This separation lets many
//! tapes (e.g. per-sample LSTM unrollings) contribute gradients to one
//! optimization step.

use crate::tensor::Tensor;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Opaque handle to one parameter in a [`ParamStore`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct ParamId(pub(crate) usize);

impl ParamId {
    /// Dense index of the parameter (registration order) — usable to key
    /// external per-parameter state such as worker-local gradient buffers.
    pub fn index(self) -> usize {
        self.0
    }
}

#[derive(Serialize, Deserialize, Clone)]
struct Param {
    name: String,
    value: Tensor,
    #[serde(skip)]
    grad: Option<Tensor>,
}

/// Registry of named trainable tensors and their gradient accumulators.
#[derive(Default, Serialize, Deserialize, Clone)]
pub struct ParamStore {
    params: Vec<Param>,
    #[serde(skip)]
    by_name: HashMap<String, ParamId>,
}

impl ParamStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a new named parameter, returning its handle.
    ///
    /// # Panics
    /// Panics when the name is already registered — parameter names double
    /// as checkpoint keys and must be unique.
    pub fn register(&mut self, name: impl Into<String>, value: Tensor) -> ParamId {
        let name = name.into();
        assert!(
            !self.by_name.contains_key(&name),
            "duplicate parameter name {name:?}"
        );
        let id = ParamId(self.params.len());
        self.by_name.insert(name.clone(), id);
        self.params.push(Param {
            name,
            value,
            grad: None,
        });
        id
    }

    /// Handle for a previously registered name.
    pub fn lookup(&self, name: &str) -> Option<ParamId> {
        self.by_name.get(name).copied()
    }

    /// Number of registered parameters (tensors, not scalars).
    pub fn len(&self) -> usize {
        self.params.len()
    }

    /// True when no parameters are registered.
    pub fn is_empty(&self) -> bool {
        self.params.is_empty()
    }

    /// Total number of scalar weights across all parameters.
    pub fn num_weights(&self) -> usize {
        self.params.iter().map(|p| p.value.len()).sum()
    }

    /// The name of a parameter.
    pub fn name(&self, id: ParamId) -> &str {
        &self.params[id.0].name
    }

    /// Current value of a parameter.
    pub fn value(&self, id: ParamId) -> &Tensor {
        &self.params[id.0].value
    }

    /// Mutable value (used by optimizers and tests).
    pub fn value_mut(&mut self, id: ParamId) -> &mut Tensor {
        &mut self.params[id.0].value
    }

    /// Current gradient (zeros if nothing has been accumulated).
    pub fn grad(&self, id: ParamId) -> Tensor {
        let p = &self.params[id.0];
        p.grad
            .clone()
            .unwrap_or_else(|| Tensor::zeros(p.value.shape()))
    }

    /// Mutable gradient accumulator, lazily initialized to zeros.
    pub fn grad_mut(&mut self, id: ParamId) -> &mut Tensor {
        let p = &mut self.params[id.0];
        p.grad.get_or_insert_with(|| Tensor::zeros(p.value.shape()))
    }

    /// Reset every gradient accumulator to zero (keeping allocations).
    pub fn zero_grads(&mut self) {
        for p in &mut self.params {
            if let Some(g) = &mut p.grad {
                g.zero_();
            }
        }
    }

    /// Iterate over `(id, value, grad)` for optimizer steps. The gradient is
    /// `None` when nothing was accumulated for that parameter this step.
    pub fn ids(&self) -> impl Iterator<Item = ParamId> + '_ {
        (0..self.params.len()).map(ParamId)
    }

    /// Handle for the parameter at a dense index (the inverse of
    /// [`ParamId::index`]). Lets external per-parameter state keyed by index
    /// — e.g. worker-local gradient buffers — be merged back without an
    /// O(P) scan per parameter.
    ///
    /// # Panics
    /// Panics when `index >= self.len()`.
    pub fn id_at(&self, index: usize) -> ParamId {
        assert!(
            index < self.params.len(),
            "param index {index} out of range ({} registered)",
            self.params.len()
        );
        ParamId(index)
    }

    /// Global L2 norm of all accumulated gradients — used for clipping.
    pub fn grad_norm(&self) -> f32 {
        self.params
            .iter()
            .filter_map(|p| p.grad.as_ref())
            .map(Tensor::sq_norm)
            .sum::<f32>()
            .sqrt()
    }

    /// Scale every gradient so the global norm is at most `max_norm`.
    pub fn clip_grad_norm(&mut self, max_norm: f32) {
        let norm = self.grad_norm();
        if norm > max_norm && norm > 0.0 {
            let scale = max_norm / norm;
            for p in &mut self.params {
                if let Some(g) = &mut p.grad {
                    for v in g.as_mut_slice() {
                        *v *= scale;
                    }
                }
            }
        }
    }

    /// Serialize all parameter values (not gradients) to JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("ParamStore serialization cannot fail")
    }

    /// Restore a store from [`ParamStore::to_json`] output. Handles issued by
    /// the original store remain valid because registration order is
    /// preserved.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        let mut store: ParamStore = serde_json::from_str(json)?;
        store.reindex();
        Ok(store)
    }

    /// Rebuild the name → handle index. Must be called after obtaining a
    /// store through serde deserialization embedded in a larger structure
    /// (the index is `serde(skip)` because it is derivable).
    pub fn reindex(&mut self) {
        self.by_name = self
            .params
            .iter()
            .enumerate()
            .map(|(i, p)| (p.name.clone(), ParamId(i)))
            .collect();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shape::Shape;

    #[test]
    fn register_and_lookup() {
        let mut s = ParamStore::new();
        let id = s.register("w", Tensor::vector(&[1.0, 2.0]));
        assert_eq!(s.lookup("w"), Some(id));
        assert_eq!(s.lookup("missing"), None);
        assert_eq!(s.name(id), "w");
        assert_eq!(s.len(), 1);
        assert_eq!(s.num_weights(), 2);
    }

    #[test]
    #[should_panic(expected = "duplicate parameter name")]
    fn duplicate_names_rejected() {
        let mut s = ParamStore::new();
        s.register("w", Tensor::scalar(0.0));
        s.register("w", Tensor::scalar(1.0));
    }

    #[test]
    fn grads_start_zero_and_accumulate() {
        let mut s = ParamStore::new();
        let id = s.register("w", Tensor::vector(&[1.0, 2.0]));
        assert_eq!(s.grad(id).as_slice(), &[0.0, 0.0]);
        s.grad_mut(id).axpy(1.0, &Tensor::vector(&[0.5, 0.5]));
        s.grad_mut(id).axpy(1.0, &Tensor::vector(&[0.5, 0.5]));
        assert_eq!(s.grad(id).as_slice(), &[1.0, 1.0]);
        s.zero_grads();
        assert_eq!(s.grad(id).as_slice(), &[0.0, 0.0]);
    }

    #[test]
    fn grad_norm_and_clipping() {
        let mut s = ParamStore::new();
        let a = s.register("a", Tensor::vector(&[0.0, 0.0]));
        s.grad_mut(a).axpy(1.0, &Tensor::vector(&[3.0, 4.0]));
        assert!((s.grad_norm() - 5.0).abs() < 1e-6);
        s.clip_grad_norm(1.0);
        assert!((s.grad_norm() - 1.0).abs() < 1e-6);
        // Clipping below the threshold is a no-op.
        s.clip_grad_norm(10.0);
        assert!((s.grad_norm() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn json_round_trip_preserves_ids_and_values() {
        let mut s = ParamStore::new();
        let a = s.register("alpha", Tensor::matrix(2, 2, &[1.0, 2.0, 3.0, 4.0]));
        let b = s.register("beta", Tensor::scalar(0.5));
        let json = s.to_json();
        let restored = ParamStore::from_json(&json).unwrap();
        assert_eq!(restored.value(a).as_slice(), &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(restored.value(b).item(), 0.5);
        assert_eq!(restored.lookup("alpha"), Some(a));
        assert_eq!(restored.value(a).shape(), Shape::Matrix(2, 2));
    }
}
