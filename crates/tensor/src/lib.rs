//! # od-tensor — the training substrate of the ODNET reproduction
//!
//! A from-scratch dense `f32` tensor library with reverse-mode automatic
//! differentiation, neural-network layers, and first-order optimizers. The
//! paper trained ODNET with TensorFlow on Alibaba PAI; no comparable Rust
//! stack exists offline, so this crate *is* that substrate: everything the
//! model needs — matmul, softmax, embeddings, multi-head attention, LSTM
//! cells, MMoE building blocks, Adam — implemented and gradient-checked here.
//!
//! ## Quick tour
//!
//! ```
//! use od_tensor::{Graph, ParamStore, Tensor, Shape, Adam, Optimizer};
//!
//! // Fit w in `y = w·x` to the target w = 2.
//! let mut store = ParamStore::new();
//! let w = store.register("w", Tensor::scalar(0.0));
//! let mut opt = Adam::with_lr(0.1);
//! for _ in 0..200 {
//!     store.zero_grads();
//!     let mut g = Graph::new();
//!     let wv = g.param(&store, w);
//!     let x = g.input(Tensor::scalar(3.0));
//!     let pred = g.mul(wv, x);
//!     let loss = g.mse_loss(pred, &Tensor::scalar(6.0));
//!     g.backward(loss);
//!     g.accumulate_param_grads(&mut store);
//!     opt.step(&mut store);
//! }
//! assert!((store.value(w).item() - 2.0).abs() < 1e-2);
//! ```
//!
//! Design notes:
//! - **Rank ≤ 2.** Scalars, vectors, matrices. Sequence batches are handled
//!   per-sample, which keeps every autograd rule small enough to audit
//!   against the paper's equations.
//! - **Define-by-run tape.** A fresh [`Graph`] per mini-batch; gradients are
//!   flushed into the shared [`ParamStore`].
//! - **Numerics.** Losses are computed in logit space
//!   ([`Graph::bce_with_logits`]) and softmax is max-shifted, so training is
//!   stable without f64.

#![warn(missing_docs)]

mod graph;
mod linalg;
mod optim;
mod param;
mod shape;
mod tensor;

pub mod infer;
pub mod init;
pub mod nn;
pub mod simd;

pub use graph::{Graph, Value};
pub use infer::Workspace;
pub use linalg::{
    dot, matmul, matmul_naive, matmul_nt, matmul_tn, mean_rows, sigmoid, sigmoid_in_place,
    softmax_in_place, softmax_rows, softmax_rows_backward, stable_sigmoid, sum_rows, transpose,
};
pub use optim::{Adam, Optimizer, Sgd};
pub use param::{ParamId, ParamStore};
pub use shape::Shape;
pub use simd::SimdLevel;
pub use tensor::Tensor;
