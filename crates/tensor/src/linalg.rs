//! Pure linear-algebra kernels shared by the forward and backward passes.
//!
//! Kernels take matrix *views* (`rows/cols` of [`Tensor`]), so vectors are
//! treated as `1×n` rows throughout. The matmul uses an ikj loop order with a
//! row-major accumulator, which is cache-friendly enough for the model sizes
//! in this reproduction (embedding dims ≤ 256, batch ≤ a few hundred).

use crate::shape::Shape;
use crate::tensor::Tensor;

/// Matrix product `a · b` on the matrix views of the operands.
///
/// # Panics
/// Panics when the inner dimensions disagree.
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = (a.rows(), a.cols());
    let (k2, n) = (b.rows(), b.cols());
    assert_eq!(
        k, k2,
        "matmul inner dimension mismatch: {} vs {}",
        a.shape(),
        b.shape()
    );
    let mut out = vec![0.0f32; m * n];
    let ad = a.as_slice();
    let bd = b.as_slice();
    for i in 0..m {
        let arow = &ad[i * k..(i + 1) * k];
        let orow = &mut out[i * n..(i + 1) * n];
        for (p, &av) in arow.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let brow = &bd[p * n..(p + 1) * n];
            for (o, &bv) in orow.iter_mut().zip(brow) {
                *o += av * bv;
            }
        }
    }
    Tensor::new(Shape::Matrix(m, n), out)
}

/// Matrix product `aᵀ · b`, avoiding an explicit transpose of `a`.
pub fn matmul_tn(a: &Tensor, b: &Tensor) -> Tensor {
    let (k, m) = (a.rows(), a.cols());
    let (k2, n) = (b.rows(), b.cols());
    assert_eq!(
        k, k2,
        "matmul_tn outer dimension mismatch: {} vs {}",
        a.shape(),
        b.shape()
    );
    let mut out = vec![0.0f32; m * n];
    let ad = a.as_slice();
    let bd = b.as_slice();
    for p in 0..k {
        let arow = &ad[p * m..(p + 1) * m];
        let brow = &bd[p * n..(p + 1) * n];
        for (i, &av) in arow.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let orow = &mut out[i * n..(i + 1) * n];
            for (o, &bv) in orow.iter_mut().zip(brow) {
                *o += av * bv;
            }
        }
    }
    Tensor::new(Shape::Matrix(m, n), out)
}

/// Matrix product `a · bᵀ`, avoiding an explicit transpose of `b`.
pub fn matmul_nt(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = (a.rows(), a.cols());
    let (n, k2) = (b.rows(), b.cols());
    assert_eq!(
        k, k2,
        "matmul_nt inner dimension mismatch: {} vs {}",
        a.shape(),
        b.shape()
    );
    let mut out = vec![0.0f32; m * n];
    let ad = a.as_slice();
    let bd = b.as_slice();
    for i in 0..m {
        let arow = &ad[i * k..(i + 1) * k];
        for j in 0..n {
            let brow = &bd[j * k..(j + 1) * k];
            out[i * n + j] = dot(arow, brow);
        }
    }
    Tensor::new(Shape::Matrix(m, n), out)
}

/// Transpose of the matrix view.
pub fn transpose(a: &Tensor) -> Tensor {
    let (r, c) = (a.rows(), a.cols());
    let mut out = vec![0.0f32; r * c];
    let ad = a.as_slice();
    for i in 0..r {
        for j in 0..c {
            out[j * r + i] = ad[i * c + j];
        }
    }
    Tensor::new(Shape::Matrix(c, r), out)
}

/// Dot product of two equal-length slices.
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(&x, &y)| x * y).sum()
}

/// Row-wise softmax of the matrix view (numerically stabilized by the
/// row max).
pub fn softmax_rows(a: &Tensor) -> Tensor {
    let (r, c) = (a.rows(), a.cols());
    let mut out = a.as_slice().to_vec();
    for i in 0..r {
        softmax_in_place(&mut out[i * c..(i + 1) * c]);
    }
    Tensor::new(a.shape(), out).reshape(a.shape())
}

/// Numerically-stable softmax of a slice, in place.
pub fn softmax_in_place(xs: &mut [f32]) {
    if xs.is_empty() {
        return;
    }
    let max = xs.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0;
    for x in xs.iter_mut() {
        *x = (*x - max).exp();
        sum += *x;
    }
    // All-(-inf) rows would yield sum = 0; keep the output defined.
    if sum > 0.0 {
        for x in xs.iter_mut() {
            *x /= sum;
        }
    } else {
        let u = 1.0 / xs.len() as f32;
        xs.iter_mut().for_each(|x| *x = u);
    }
}

/// Sum over rows of the matrix view, producing a `1×cols` row vector tensor.
pub fn sum_rows(a: &Tensor) -> Tensor {
    let (r, c) = (a.rows(), a.cols());
    let mut out = vec![0.0f32; c];
    for i in 0..r {
        for (o, &v) in out.iter_mut().zip(a.row(i)) {
            *o += v;
        }
    }
    Tensor::new(Shape::Vector(c), out)
}

/// Mean over rows of the matrix view, producing a length-`cols` vector.
pub fn mean_rows(a: &Tensor) -> Tensor {
    let r = a.rows().max(1) as f32;
    sum_rows(a).map(|v| v / r)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t2x3() -> Tensor {
        Tensor::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]])
    }

    fn t3x2() -> Tensor {
        Tensor::from_rows(&[&[7.0, 8.0], &[9.0, 10.0], &[11.0, 12.0]])
    }

    #[test]
    fn matmul_known_values() {
        let c = matmul(&t2x3(), &t3x2());
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_tn_equals_explicit_transpose() {
        let a = t3x2(); // aᵀ is 2x3
        let b = t3x2();
        let via_tn = matmul_tn(&a, &b);
        let explicit = matmul(&transpose(&a), &b);
        assert_eq!(via_tn, explicit);
    }

    #[test]
    fn matmul_nt_equals_explicit_transpose() {
        let a = t2x3();
        let b = t2x3(); // bᵀ is 3x2
        let via_nt = matmul_nt(&a, &b);
        let explicit = matmul(&a, &transpose(&b));
        assert_eq!(via_nt, explicit);
    }

    #[test]
    #[should_panic(expected = "inner dimension mismatch")]
    fn matmul_rejects_bad_shapes() {
        matmul(&t2x3(), &t2x3());
    }

    #[test]
    fn vector_is_row_in_matmul() {
        let v = Tensor::vector(&[1.0, 0.0, -1.0]);
        let c = matmul(&v, &t3x2());
        assert_eq!(c.as_slice(), &[-4.0, -4.0]);
    }

    #[test]
    fn transpose_round_trips() {
        let a = t2x3();
        assert_eq!(transpose(&transpose(&a)), a);
        assert_eq!(transpose(&a).at(2, 1), 6.0);
    }

    #[test]
    fn softmax_rows_sum_to_one_and_order_preserved() {
        let s = softmax_rows(&Tensor::from_rows(&[&[1.0, 2.0, 3.0], &[0.0, 0.0, 0.0]]));
        for i in 0..2 {
            let sum: f32 = s.row(i).iter().sum();
            assert!((sum - 1.0).abs() < 1e-6);
        }
        assert!(s.at(0, 2) > s.at(0, 1) && s.at(0, 1) > s.at(0, 0));
        assert!((s.at(1, 0) - 1.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let a = Tensor::vector(&[1.0, 2.0, 3.0]);
        let b = Tensor::vector(&[1001.0, 1002.0, 1003.0]);
        let sa = softmax_rows(&a);
        let sb = softmax_rows(&b);
        for (x, y) in sa.as_slice().iter().zip(sb.as_slice()) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn softmax_handles_degenerate_rows() {
        let mut xs = [f32::NEG_INFINITY, f32::NEG_INFINITY];
        softmax_in_place(&mut xs);
        assert_eq!(xs, [0.5, 0.5]);
        softmax_in_place(&mut []);
    }

    #[test]
    fn row_reductions() {
        let a = t2x3();
        assert_eq!(sum_rows(&a).as_slice(), &[5.0, 7.0, 9.0]);
        assert_eq!(mean_rows(&a).as_slice(), &[2.5, 3.5, 4.5]);
    }

    #[test]
    fn dot_product() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        assert_eq!(dot(&[], &[]), 0.0);
    }
}
