//! Pure linear-algebra kernels shared by the forward and backward passes.
//!
//! Kernels take matrix *views* (`rows/cols` of [`Tensor`]), so vectors are
//! treated as `1×n` rows throughout.
//!
//! The matmul family is cache-blocked and register-tiled: the inner
//! micro-kernel accumulates an `MR×NR` output tile in stack arrays that the
//! compiler keeps in vector registers, streaming one row of `b` per `k`
//! step. Above [`PAR_MIN_FLOPS`] multiply-adds the output rows are
//! partitioned across threads; every output element is still produced by
//! exactly one thread with the same sequential accumulation order, so the
//! parallel path is bit-identical to the sequential one.
//!
//! Fused passes ([`softmax_rows`], [`sigmoid`], [`softmax_rows_backward`])
//! compute their result in a single sweep over one output buffer instead of
//! chaining elementwise ops through intermediate tensors.

use crate::shape::Shape;
use crate::tensor::Tensor;

/// Output-tile height of the register micro-kernel.
const MR: usize = 4;
/// Output-tile width of the register micro-kernel (two 8-lane vectors).
const NR: usize = 16;

/// Minimum multiply-add count (`m·n·k`) before a matmul is row-partitioned
/// across threads. Below this the spawn/join overhead dominates; the model
/// sizes of this reproduction (dims ≤ a few hundred, groups ≤ a few dozen
/// candidates) stay under it, so threading only engages for genuinely large
/// products.
const PAR_MIN_FLOPS: usize = 1 << 21;

fn par_threads(m: usize, n: usize, k: usize) -> usize {
    if m.saturating_mul(n).saturating_mul(k) < PAR_MIN_FLOPS {
        return 1;
    }
    let cores = std::thread::available_parallelism()
        .map(|c| c.get())
        .unwrap_or(1);
    // At least MR rows per stripe, or the stripes are all edge cases.
    cores.min(m / MR).max(1)
}

/// Run `kernel` over row stripes `[lo, hi)` of the `m`-row output, in
/// parallel when the problem is large enough. The kernel must write only
/// its own stripe of `out`.
fn row_partitioned(
    m: usize,
    n: usize,
    threads: usize,
    out: &mut [f32],
    kernel: &(dyn Fn(usize, usize, &mut [f32]) + Sync),
) {
    if threads <= 1 {
        kernel(0, m, out);
        return;
    }
    let rows_per = m.div_ceil(threads);
    crossbeam::thread::scope(|scope| {
        for (i, stripe) in out.chunks_mut(rows_per * n).enumerate() {
            let lo = i * rows_per;
            let hi = (lo + stripe.len() / n).min(m);
            scope.spawn(move |_| kernel(lo, hi, stripe));
        }
    })
    .expect("matmul worker must not panic");
}

/// `y += alpha · x`, accumulated in 8-lane chunks so the compiler can keep
/// the edge-tile paths of the gemm stripes vectorized. Each output element
/// still receives exactly one multiply-add per call, so widening does not
/// change rounding — the result is bit-identical to the scalar loop.
pub(crate) fn axpy(alpha: f32, x: &[f32], y: &mut [f32]) {
    debug_assert_eq!(x.len(), y.len());
    let mut xc = x.chunks_exact(8);
    let mut yc = y.chunks_exact_mut(8);
    for (ys, xs) in (&mut yc).zip(&mut xc) {
        let ya: &mut [f32; 8] = ys.try_into().unwrap();
        let xa: &[f32; 8] = xs.try_into().unwrap();
        for l in 0..8 {
            ya[l] += alpha * xa[l];
        }
    }
    for (o, &v) in yc.into_remainder().iter_mut().zip(xc.remainder()) {
        *o += alpha * v;
    }
}

/// Tiled `out[lo..hi, :] = a[lo..hi, :] · b` where `a` is `m×k` row-major and
/// `b` is `k×n`. `out` holds only the stripe's rows.
///
/// Edge (non-full) tiles *accumulate* into `out`, so callers outside
/// [`matmul`] must zero the stripe first. `pub(crate)` so the tape-free
/// inference kernels in [`crate::infer`] share the exact accumulation order
/// (and therefore rounding) of the tape's matmul.
pub(crate) fn gemm_nn_stripe(
    lo: usize,
    hi: usize,
    k: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
) {
    let mut i0 = lo;
    while i0 < hi {
        let ir = (hi - i0).min(MR);
        let mut j0 = 0;
        while j0 < n {
            let jr = (n - j0).min(NR);
            if ir == MR && jr == NR {
                let mut acc = [[0.0f32; NR]; MR];
                for p in 0..k {
                    let brow: &[f32; NR] = b[p * n + j0..p * n + j0 + NR].try_into().unwrap();
                    for r in 0..MR {
                        let av = a[(i0 + r) * k + p];
                        for c in 0..NR {
                            acc[r][c] += av * brow[c];
                        }
                    }
                }
                for (r, acc_row) in acc.iter().enumerate() {
                    let o = (i0 + r - lo) * n + j0;
                    out[o..o + NR].copy_from_slice(acc_row);
                }
            } else {
                for i in i0..i0 + ir {
                    let orow = &mut out[(i - lo) * n + j0..(i - lo) * n + j0 + jr];
                    for p in 0..k {
                        let av = a[i * k + p];
                        if av == 0.0 {
                            continue;
                        }
                        axpy(av, &b[p * n + j0..p * n + j0 + jr], orow);
                    }
                }
            }
            j0 += NR;
        }
        i0 += MR;
    }
}

/// Tiled stripe of `aᵀ · b` where `a` is `k×m` and `b` is `k×n`.
#[allow(clippy::too_many_arguments)]
fn gemm_tn_stripe(
    lo: usize,
    hi: usize,
    k: usize,
    m: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
) {
    let mut i0 = lo;
    while i0 < hi {
        let ir = (hi - i0).min(MR);
        let mut j0 = 0;
        while j0 < n {
            let jr = (n - j0).min(NR);
            if ir == MR && jr == NR {
                let mut acc = [[0.0f32; NR]; MR];
                for p in 0..k {
                    let arow: &[f32; MR] = a[p * m + i0..p * m + i0 + MR].try_into().unwrap();
                    let brow: &[f32; NR] = b[p * n + j0..p * n + j0 + NR].try_into().unwrap();
                    for r in 0..MR {
                        let av = arow[r];
                        for c in 0..NR {
                            acc[r][c] += av * brow[c];
                        }
                    }
                }
                for (r, acc_row) in acc.iter().enumerate() {
                    let o = (i0 + r - lo) * n + j0;
                    out[o..o + NR].copy_from_slice(acc_row);
                }
            } else {
                for p in 0..k {
                    let brow = &b[p * n + j0..p * n + j0 + jr];
                    for i in i0..i0 + ir {
                        let av = a[p * m + i];
                        if av == 0.0 {
                            continue;
                        }
                        axpy(
                            av,
                            brow,
                            &mut out[(i - lo) * n + j0..(i - lo) * n + j0 + jr],
                        );
                    }
                }
            }
            j0 += NR;
        }
        i0 += MR;
    }
}

/// Stripe of `a · bᵀ` where `a` is `m×k` and `b` is `n×k`: each output cell
/// is a dot product of two contiguous rows.
fn gemm_nt_stripe(lo: usize, hi: usize, k: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
    for i in lo..hi {
        let arow = &a[i * k..(i + 1) * k];
        let orow = &mut out[(i - lo) * n..(i - lo + 1) * n];
        for (j, o) in orow.iter_mut().enumerate() {
            *o = dot(arow, &b[j * k..(j + 1) * k]);
        }
    }
}

/// Matrix product `a · b` on the matrix views of the operands.
///
/// # Panics
/// Panics when the inner dimensions disagree.
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = (a.rows(), a.cols());
    let (k2, n) = (b.rows(), b.cols());
    assert_eq!(
        k,
        k2,
        "matmul inner dimension mismatch: {} vs {}",
        a.shape(),
        b.shape()
    );
    let mut out = vec![0.0f32; m * n];
    let (ad, bd) = (a.as_slice(), b.as_slice());
    let threads = par_threads(m, n, k);
    row_partitioned(m, n, threads, &mut out, &|lo, hi, stripe| {
        gemm_nn_stripe(lo, hi, k, n, ad, bd, stripe)
    });
    Tensor::new(Shape::Matrix(m, n), out)
}

/// Matrix product `aᵀ · b`, avoiding an explicit transpose of `a`.
pub fn matmul_tn(a: &Tensor, b: &Tensor) -> Tensor {
    let (k, m) = (a.rows(), a.cols());
    let (k2, n) = (b.rows(), b.cols());
    assert_eq!(
        k,
        k2,
        "matmul_tn outer dimension mismatch: {} vs {}",
        a.shape(),
        b.shape()
    );
    let mut out = vec![0.0f32; m * n];
    let (ad, bd) = (a.as_slice(), b.as_slice());
    let threads = par_threads(m, n, k);
    row_partitioned(m, n, threads, &mut out, &|lo, hi, stripe| {
        gemm_tn_stripe(lo, hi, k, m, n, ad, bd, stripe)
    });
    Tensor::new(Shape::Matrix(m, n), out)
}

/// Matrix product `a · bᵀ`, avoiding an explicit transpose of `b`.
pub fn matmul_nt(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = (a.rows(), a.cols());
    let (n, k2) = (b.rows(), b.cols());
    assert_eq!(
        k,
        k2,
        "matmul_nt inner dimension mismatch: {} vs {}",
        a.shape(),
        b.shape()
    );
    let mut out = vec![0.0f32; m * n];
    let (ad, bd) = (a.as_slice(), b.as_slice());
    let threads = par_threads(m, n, k);
    row_partitioned(m, n, threads, &mut out, &|lo, hi, stripe| {
        gemm_nt_stripe(lo, hi, k, n, ad, bd, stripe)
    });
    Tensor::new(Shape::Matrix(m, n), out)
}

/// Reference ikj matmul with no tiling — the correctness oracle for the
/// tiled kernels and the "before" side of the kernel benchmarks.
pub fn matmul_naive(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = (a.rows(), a.cols());
    let (k2, n) = (b.rows(), b.cols());
    assert_eq!(
        k,
        k2,
        "matmul inner dimension mismatch: {} vs {}",
        a.shape(),
        b.shape()
    );
    let mut out = vec![0.0f32; m * n];
    let ad = a.as_slice();
    let bd = b.as_slice();
    for i in 0..m {
        let arow = &ad[i * k..(i + 1) * k];
        let orow = &mut out[i * n..(i + 1) * n];
        for (p, &av) in arow.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let brow = &bd[p * n..(p + 1) * n];
            for (o, &bv) in orow.iter_mut().zip(brow) {
                *o += av * bv;
            }
        }
    }
    Tensor::new(Shape::Matrix(m, n), out)
}

/// Transpose of the matrix view.
pub fn transpose(a: &Tensor) -> Tensor {
    let (r, c) = (a.rows(), a.cols());
    let mut out = vec![0.0f32; r * c];
    let ad = a.as_slice();
    for i in 0..r {
        for j in 0..c {
            out[j * r + i] = ad[i * c + j];
        }
    }
    Tensor::new(Shape::Matrix(c, r), out)
}

/// Dot product of two equal-length slices, accumulated in eight independent
/// lanes so the compiler can vectorize the reduction (a single serial `sum`
/// cannot be reassociated under IEEE semantics).
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut lanes = [0.0f32; 8];
    let whole = a.len() / 8 * 8;
    let mut i = 0;
    while i < whole {
        let av: &[f32; 8] = a[i..i + 8].try_into().unwrap();
        let bv: &[f32; 8] = b[i..i + 8].try_into().unwrap();
        for l in 0..8 {
            lanes[l] += av[l] * bv[l];
        }
        i += 8;
    }
    let mut s = ((lanes[0] + lanes[4]) + (lanes[2] + lanes[6]))
        + ((lanes[1] + lanes[5]) + (lanes[3] + lanes[7]));
    for j in whole..a.len() {
        s += a[j] * b[j];
    }
    s
}

/// Row-wise softmax of the matrix view (numerically stabilized by the
/// row max). Single pass over a single output allocation.
pub fn softmax_rows(a: &Tensor) -> Tensor {
    let (r, c) = (a.rows(), a.cols());
    let mut out = a.as_slice().to_vec();
    for i in 0..r {
        softmax_in_place(&mut out[i * c..(i + 1) * c]);
    }
    Tensor::new(a.shape(), out)
}

/// Numerically-stable softmax of a slice, in place.
pub fn softmax_in_place(xs: &mut [f32]) {
    if xs.is_empty() {
        return;
    }
    let max = xs.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0;
    for x in xs.iter_mut() {
        *x = (*x - max).exp();
        sum += *x;
    }
    // All-(-inf) rows would yield sum = 0; keep the output defined.
    if sum > 0.0 {
        for x in xs.iter_mut() {
            *x /= sum;
        }
    } else {
        let u = 1.0 / xs.len() as f32;
        xs.iter_mut().for_each(|x| *x = u);
    }
}

/// Fused adjoint of [`softmax_rows`]: given the softmax output `y` and the
/// output gradient `g`, computes `dx[i,:] = y[i,:] ∘ (g[i,:] − g[i,:]·y[i,:])`
/// in one sweep per row.
pub fn softmax_rows_backward(y: &Tensor, g: &Tensor) -> Tensor {
    debug_assert_eq!(y.shape(), g.shape());
    let (r, c) = (y.rows(), y.cols());
    let mut out = vec![0.0f32; r * c];
    for row in 0..r {
        let yr = &y.as_slice()[row * c..(row + 1) * c];
        let gr = &g.as_slice()[row * c..(row + 1) * c];
        let dotv = dot(gr, yr);
        for ((o, &yi), &gi) in out[row * c..(row + 1) * c].iter_mut().zip(yr).zip(gr) {
            *o = yi * (gi - dotv);
        }
    }
    Tensor::new(y.shape(), out)
}

/// Sigmoid computed without overflow for large |x|.
pub fn stable_sigmoid(x: f32) -> f32 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// Fused elementwise logistic sigmoid: one sweep, one output allocation.
pub fn sigmoid(a: &Tensor) -> Tensor {
    let mut out = a.as_slice().to_vec();
    sigmoid_in_place(&mut out);
    Tensor::new(a.shape(), out)
}

/// Numerically-stable sigmoid of a slice, in place.
pub fn sigmoid_in_place(xs: &mut [f32]) {
    for x in xs.iter_mut() {
        *x = stable_sigmoid(*x);
    }
}

/// Sum over rows of the matrix view, producing a `1×cols` row vector tensor.
pub fn sum_rows(a: &Tensor) -> Tensor {
    let (r, c) = (a.rows(), a.cols());
    let mut out = vec![0.0f32; c];
    for i in 0..r {
        for (o, &v) in out.iter_mut().zip(a.row(i)) {
            *o += v;
        }
    }
    Tensor::new(Shape::Vector(c), out)
}

/// Mean over rows of the matrix view, producing a length-`cols` vector.
pub fn mean_rows(a: &Tensor) -> Tensor {
    let r = a.rows().max(1) as f32;
    sum_rows(a).map(|v| v / r)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t2x3() -> Tensor {
        Tensor::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]])
    }

    fn t3x2() -> Tensor {
        Tensor::from_rows(&[&[7.0, 8.0], &[9.0, 10.0], &[11.0, 12.0]])
    }

    /// Deterministic pseudo-random matrix for kernel cross-checks.
    fn pseudo(rows: usize, cols: usize, seed: u64) -> Tensor {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
        let data: Vec<f32> = (0..rows * cols)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                ((state >> 40) as f32 / (1u64 << 24) as f32) - 0.5
            })
            .collect();
        Tensor::new(Shape::Matrix(rows, cols), data)
    }

    fn close(a: &Tensor, b: &Tensor, tol: f32) -> bool {
        a.shape() == b.shape()
            && a.as_slice()
                .iter()
                .zip(b.as_slice())
                .all(|(x, y)| (x - y).abs() <= tol * (1.0 + x.abs().max(y.abs())))
    }

    #[test]
    fn matmul_known_values() {
        let c = matmul(&t2x3(), &t3x2());
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn tiled_matmul_matches_naive_at_awkward_sizes() {
        // Cover full tiles, row edges, column edges, and tiny shapes.
        for &(m, k, n) in &[
            (1, 1, 1),
            (3, 5, 7),
            (4, 8, 16),
            (5, 9, 17),
            (13, 21, 33),
            (64, 17, 48),
        ] {
            let a = pseudo(m, k, (m * 31 + n) as u64);
            let b = pseudo(k, n, (k * 17 + m) as u64);
            assert!(
                close(&matmul(&a, &b), &matmul_naive(&a, &b), 1e-5),
                "tiled != naive at {m}x{k}x{n}"
            );
        }
    }

    #[test]
    fn matmul_tn_equals_explicit_transpose() {
        let a = t3x2(); // aᵀ is 2x3
        let b = t3x2();
        let via_tn = matmul_tn(&a, &b);
        let explicit = matmul(&transpose(&a), &b);
        assert_eq!(via_tn, explicit);
    }

    #[test]
    fn matmul_nt_equals_explicit_transpose() {
        let a = t2x3();
        let b = t2x3(); // bᵀ is 3x2
        let via_nt = matmul_nt(&a, &b);
        let explicit = matmul(&a, &transpose(&b));
        assert_eq!(via_nt, explicit);
    }

    #[test]
    fn fused_transpose_kernels_match_at_awkward_sizes() {
        for &(m, k, n) in &[(1, 3, 1), (5, 9, 17), (19, 6, 23)] {
            let a_t = pseudo(k, m, 3);
            let b = pseudo(k, n, 4);
            assert!(close(
                &matmul_tn(&a_t, &b),
                &matmul(&transpose(&a_t), &b),
                1e-5
            ));
            let a = pseudo(m, k, 5);
            let b_t = pseudo(n, k, 6);
            assert!(close(
                &matmul_nt(&a, &b_t),
                &matmul(&a, &transpose(&b_t)),
                1e-5
            ));
        }
    }

    #[test]
    #[should_panic(expected = "inner dimension mismatch")]
    fn matmul_rejects_bad_shapes() {
        matmul(&t2x3(), &t2x3());
    }

    #[test]
    fn vector_is_row_in_matmul() {
        let v = Tensor::vector(&[1.0, 0.0, -1.0]);
        let c = matmul(&v, &t3x2());
        assert_eq!(c.as_slice(), &[-4.0, -4.0]);
    }

    #[test]
    fn transpose_round_trips() {
        let a = t2x3();
        assert_eq!(transpose(&transpose(&a)), a);
        assert_eq!(transpose(&a).at(2, 1), 6.0);
    }

    #[test]
    fn softmax_rows_sum_to_one_and_order_preserved() {
        let s = softmax_rows(&Tensor::from_rows(&[&[1.0, 2.0, 3.0], &[0.0, 0.0, 0.0]]));
        for i in 0..2 {
            let sum: f32 = s.row(i).iter().sum();
            assert!((sum - 1.0).abs() < 1e-6);
        }
        assert!(s.at(0, 2) > s.at(0, 1) && s.at(0, 1) > s.at(0, 0));
        assert!((s.at(1, 0) - 1.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let a = Tensor::vector(&[1.0, 2.0, 3.0]);
        let b = Tensor::vector(&[1001.0, 1002.0, 1003.0]);
        let sa = softmax_rows(&a);
        let sb = softmax_rows(&b);
        for (x, y) in sa.as_slice().iter().zip(sb.as_slice()) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn softmax_preserves_input_shape() {
        let v = softmax_rows(&Tensor::vector(&[1.0, 2.0]));
        assert_eq!(v.shape(), Shape::Vector(2));
        let m = softmax_rows(&Tensor::from_rows(&[&[1.0], &[2.0]]));
        assert_eq!(m.shape(), Shape::Matrix(2, 1));
    }

    #[test]
    fn softmax_handles_degenerate_rows() {
        let mut xs = [f32::NEG_INFINITY, f32::NEG_INFINITY];
        softmax_in_place(&mut xs);
        assert_eq!(xs, [0.5, 0.5]);
        softmax_in_place(&mut []);
    }

    #[test]
    fn softmax_backward_matches_formula() {
        let y = softmax_rows(&pseudo(3, 5, 9));
        let g = pseudo(3, 5, 10);
        let dx = softmax_rows_backward(&y, &g);
        for row in 0..3 {
            let yr = y.row(row);
            let gr = g.row(row);
            let d: f32 = yr.iter().zip(gr).map(|(&a, &b)| a * b).sum();
            for j in 0..5 {
                let expected = yr[j] * (gr[j] - d);
                assert!((dx.at(row, j) - expected).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn fused_sigmoid_is_stable_and_correct() {
        let t = Tensor::vector(&[0.0, 100.0, -100.0, 1.5]);
        let s = sigmoid(&t);
        assert!((s.as_slice()[0] - 0.5).abs() < 1e-7);
        assert!(s.as_slice()[1] > 0.999_999);
        assert!(s.as_slice()[2] < 1e-6 && s.as_slice()[2] >= 0.0);
        assert!((s.as_slice()[3] - stable_sigmoid(1.5)).abs() < 1e-7);
        assert_eq!(s.shape(), t.shape());
    }

    #[test]
    fn row_reductions() {
        let a = t2x3();
        assert_eq!(sum_rows(&a).as_slice(), &[5.0, 7.0, 9.0]);
        assert_eq!(mean_rows(&a).as_slice(), &[2.5, 3.5, 4.5]);
    }

    #[test]
    fn axpy_matches_scalar_loop_bitwise() {
        // Lengths around the 8-lane boundary: remainder-only, exact, mixed.
        for len in [0, 1, 7, 8, 9, 16, 23] {
            let x: Vec<f32> = (0..len).map(|i| (i as f32 - 3.5) * 0.37).collect();
            let mut y: Vec<f32> = (0..len).map(|i| (i as f32) * 0.11 - 1.0).collect();
            let mut reference = y.clone();
            let alpha = 1.7f32;
            for (o, &v) in reference.iter_mut().zip(&x) {
                *o += alpha * v;
            }
            axpy(alpha, &x, &mut y);
            assert_eq!(y, reference, "len {len}");
        }
    }

    #[test]
    fn dot_product() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        assert_eq!(dot(&[], &[]), 0.0);
        // Length > 8 exercises the vector lanes + remainder.
        let a: Vec<f32> = (0..11).map(|i| i as f32).collect();
        let b: Vec<f32> = (0..11).map(|i| (i % 3) as f32).collect();
        let expected: f32 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
        assert_eq!(dot(&a, &b), expected);
    }
}
