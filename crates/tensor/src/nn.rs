//! Neural-network layers composed from autograd primitives.
//!
//! Each layer owns [`ParamId`]s into a shared [`ParamStore`] and exposes a
//! `forward` that records onto a caller-provided [`Graph`]. This mirrors the
//! paper's building blocks: fully-connected layers (Algorithm 1 line 5,
//! towers, experts), embeddings (user/city id features), multi-head
//! self-attention (PEC encoding layer, Eq. 3), dot-product attention
//! (PEC attention layer, Eqs. 4–5), and LSTM cells (for the RNN baselines).

use crate::graph::{Graph, Value};
use crate::infer::{self, Workspace};
use crate::init;
use crate::linalg;
use crate::param::{ParamId, ParamStore};
use crate::shape::Shape;
use crate::tensor::Tensor;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Post-linear nonlinearity choice.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Activation {
    /// Identity.
    None,
    /// Rectified linear unit.
    Relu,
    /// Logistic sigmoid.
    Sigmoid,
    /// Hyperbolic tangent.
    Tanh,
}

impl Activation {
    /// Apply the activation on the graph.
    pub fn apply(self, g: &mut Graph, x: Value) -> Value {
        match self {
            Activation::None => x,
            Activation::Relu => g.relu(x),
            Activation::Sigmoid => g.sigmoid(x),
            Activation::Tanh => g.tanh(x),
        }
    }

    /// Apply the activation to a raw buffer — the tape-free counterpart of
    /// [`Activation::apply`], using the identical scalar kernels.
    pub fn apply_in_place(self, xs: &mut [f32]) {
        match self {
            Activation::None => {}
            Activation::Relu => infer::relu_in_place(xs),
            Activation::Sigmoid => linalg::sigmoid_in_place(xs),
            Activation::Tanh => {
                for x in xs.iter_mut() {
                    *x = x.tanh();
                }
            }
        }
    }
}

/// Fully-connected layer `y = x·W + b`.
#[derive(Clone, Debug)]
pub struct Linear {
    w: ParamId,
    b: Option<ParamId>,
    in_dim: usize,
    out_dim: usize,
}

impl Linear {
    /// Register a linear layer's parameters under `name` (keys `{name}.w`,
    /// `{name}.b`), initialized per the paper's N(0, 0.05²).
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        in_dim: usize,
        out_dim: usize,
        bias: bool,
        rng: &mut impl Rng,
    ) -> Self {
        let w = store.register(
            format!("{name}.w"),
            init::paper_default(Shape::Matrix(in_dim, out_dim), rng),
        );
        let b = bias
            .then(|| store.register(format!("{name}.b"), Tensor::zeros(Shape::Vector(out_dim))));
        Linear {
            w,
            b,
            in_dim,
            out_dim,
        }
    }

    /// Input feature dimension.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output feature dimension.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// `x` is `[n × in_dim]` (or a vector treated as one row); output is
    /// `[n × out_dim]`.
    pub fn forward(&self, g: &mut Graph, store: &ParamStore, x: Value) -> Value {
        debug_assert_eq!(g.value(x).cols(), self.in_dim, "Linear input dim mismatch");
        let w = g.param(store, self.w);
        let y = g.matmul(x, w);
        match self.b {
            Some(b) => {
                let bv = g.param(store, b);
                g.add_row(y, bv)
            }
            None => y,
        }
    }
}

/// Multi-layer perceptron with a shared hidden activation; the last layer's
/// activation is supplied separately (e.g. `None` to emit logits).
#[derive(Clone, Debug)]
pub struct Mlp {
    layers: Vec<Linear>,
    hidden_activation: Activation,
    output_activation: Activation,
}

impl Mlp {
    /// Build an MLP through the given layer widths, e.g. `&[64, 32, 1]`
    /// makes two layers 64→32→1.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        dims: &[usize],
        hidden_activation: Activation,
        output_activation: Activation,
        rng: &mut impl Rng,
    ) -> Self {
        assert!(dims.len() >= 2, "Mlp needs at least input and output dims");
        let layers = dims
            .windows(2)
            .enumerate()
            .map(|(i, w)| Linear::new(store, &format!("{name}.l{i}"), w[0], w[1], true, rng))
            .collect();
        Mlp {
            layers,
            hidden_activation,
            output_activation,
        }
    }

    /// Forward through all layers.
    pub fn forward(&self, g: &mut Graph, store: &ParamStore, mut x: Value) -> Value {
        let last = self.layers.len() - 1;
        for (i, layer) in self.layers.iter().enumerate() {
            x = layer.forward(g, store, x);
            x = if i == last {
                self.output_activation.apply(g, x)
            } else {
                self.hidden_activation.apply(g, x)
            };
        }
        x
    }

    /// Output dimension of the final layer.
    pub fn out_dim(&self) -> usize {
        self.layers.last().expect("non-empty").out_dim()
    }
}

/// Embedding table: a `[vocab × dim]` matrix addressed by row gather.
#[derive(Clone, Debug)]
pub struct Embedding {
    table: ParamId,
    vocab: usize,
    dim: usize,
}

impl Embedding {
    /// Register an embedding table under `name` initialized per the paper.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        vocab: usize,
        dim: usize,
        rng: &mut impl Rng,
    ) -> Self {
        let table = store.register(
            name.to_string(),
            init::paper_default(Shape::Matrix(vocab, dim), rng),
        );
        Embedding { table, vocab, dim }
    }

    /// Vocabulary size.
    pub fn vocab(&self) -> usize {
        self.vocab
    }

    /// Embedding dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The parameter id of the underlying table.
    pub fn table(&self) -> ParamId {
        self.table
    }

    /// Look up a batch of ids, producing `[ids.len() × dim]`.
    pub fn forward(&self, g: &mut Graph, store: &ParamStore, ids: &[usize]) -> Value {
        let table = g.param(store, self.table);
        g.gather_rows(table, ids)
    }

    /// Look up one id as a vector.
    pub fn forward_one(&self, g: &mut Graph, store: &ParamStore, id: usize) -> Value {
        let rows = self.forward(g, store, &[id]);
        g.row(rows, 0)
    }
}

/// Multi-head self-attention (Vaswani et al.), the encoding layer of the
/// paper's PEC (Eq. 3). `d_k = d / heads`, per-head projections plus an
/// output projection `W^O`.
#[derive(Clone, Debug)]
pub struct MultiHeadSelfAttention {
    wq: Vec<ParamId>,
    wk: Vec<ParamId>,
    wv: Vec<ParamId>,
    wo: ParamId,
    dim: usize,
    heads: usize,
    dk: usize,
}

impl MultiHeadSelfAttention {
    /// Register the projection matrices for `heads` heads over model width
    /// `dim` (`dim` must be divisible by `heads`).
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        dim: usize,
        heads: usize,
        rng: &mut impl Rng,
    ) -> Self {
        assert!(
            heads > 0 && dim.is_multiple_of(heads),
            "dim must divide by heads"
        );
        let dk = dim / heads;
        let mut wq = Vec::with_capacity(heads);
        let mut wk = Vec::with_capacity(heads);
        let mut wv = Vec::with_capacity(heads);
        for h in 0..heads {
            wq.push(store.register(
                format!("{name}.h{h}.wq"),
                init::paper_default(Shape::Matrix(dim, dk), rng),
            ));
            wk.push(store.register(
                format!("{name}.h{h}.wk"),
                init::paper_default(Shape::Matrix(dim, dk), rng),
            ));
            wv.push(store.register(
                format!("{name}.h{h}.wv"),
                init::paper_default(Shape::Matrix(dim, dk), rng),
            ));
        }
        let wo = store.register(
            format!("{name}.wo"),
            init::paper_default(Shape::Matrix(heads * dk, dim), rng),
        );
        MultiHeadSelfAttention {
            wq,
            wk,
            wv,
            wo,
            dim,
            heads,
            dk,
        }
    }

    /// Number of attention heads.
    pub fn heads(&self) -> usize {
        self.heads
    }

    /// Self-attend over a `[t × dim]` sequence, returning `[t × dim]`.
    pub fn forward(&self, g: &mut Graph, store: &ParamStore, e: Value) -> Value {
        debug_assert_eq!(g.value(e).cols(), self.dim, "MHA input dim mismatch");
        let scale = 1.0 / (self.dk as f32).sqrt();
        let mut head_outputs = Vec::with_capacity(self.heads);
        for h in 0..self.heads {
            let wq = g.param(store, self.wq[h]);
            let wk = g.param(store, self.wk[h]);
            let wv = g.param(store, self.wv[h]);
            let q = g.matmul(e, wq);
            let k = g.matmul(e, wk);
            let v = g.matmul(e, wv);
            let kt = g.transpose(k);
            let scores = g.matmul(q, kt);
            let scaled = g.scale(scores, scale);
            let attn = g.softmax_rows(scaled);
            head_outputs.push(g.matmul(attn, v));
        }
        let concat = g.concat_cols(&head_outputs);
        let wo = g.param(store, self.wo);
        g.matmul(concat, wo)
    }
}

/// Dot-product attention with a learnable bilinear form — the PEC attention
/// layer (Eqs. 4–5): `eᵢ* = v_sᵀ W* ê_Lⁱ`, weights `softmax(e*)`, output
/// `Σ ē ᵢ* ê_Lⁱ`.
#[derive(Clone, Debug)]
pub struct BilinearAttention {
    w: ParamId,
    dim: usize,
}

impl BilinearAttention {
    /// Register the `d × d` bilinear matrix `W*`.
    pub fn new(store: &mut ParamStore, name: &str, dim: usize, rng: &mut impl Rng) -> Self {
        let w = store.register(
            format!("{name}.w"),
            init::paper_default(Shape::Matrix(dim, dim), rng),
        );
        BilinearAttention { w, dim }
    }

    /// `query` is a length-`dim` vector (or `1×dim`), `keys` is `[t × dim]`;
    /// returns the attention-pooled `1×dim` summary (Eq. 5's `v_L`).
    pub fn forward(&self, g: &mut Graph, store: &ParamStore, query: Value, keys: Value) -> Value {
        debug_assert_eq!(g.value(query).cols(), self.dim);
        debug_assert_eq!(g.value(keys).cols(), self.dim);
        let w = g.param(store, self.w);
        let u = g.matmul(query, w); // 1×d
        let kt = g.transpose(keys); // d×t
        let scores = g.matmul(u, kt); // 1×t
        let weights = g.softmax_rows(scores);
        g.matmul(weights, keys) // 1×d
    }
}

/// Inference-time snapshot of a [`Linear`]: the weights copied out of the
/// [`ParamStore`] into plain tensors, with a tape-free forward that writes
/// into [`Workspace`] buffers.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct FrozenLinear {
    w: Tensor,
    b: Option<Tensor>,
    in_dim: usize,
    out_dim: usize,
}

impl Linear {
    /// Snapshot the layer's current weights into a [`FrozenLinear`].
    pub fn freeze(&self, store: &ParamStore) -> FrozenLinear {
        FrozenLinear {
            w: store.value(self.w).clone(),
            b: self.b.map(|b| store.value(b).clone()),
            in_dim: self.in_dim,
            out_dim: self.out_dim,
        }
    }
}

impl FrozenLinear {
    /// Output feature dimension.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// `x` is `rows×in_dim`; returns a `rows×out_dim` buffer drawn from the
    /// workspace (the caller gives it back when done). Mirrors
    /// [`Linear::forward`]: matmul, then broadcast bias add.
    pub fn forward(&self, ws: &mut Workspace, x: &[f32], rows: usize) -> Vec<f32> {
        let mut out = ws.take(rows * self.out_dim);
        infer::matmul_into(
            x,
            rows,
            self.in_dim,
            self.w.as_slice(),
            self.out_dim,
            &mut out,
        );
        if let Some(b) = &self.b {
            infer::add_row_in_place(&mut out, self.out_dim, b.as_slice());
        }
        out
    }
}

/// Inference-time snapshot of an [`Mlp`].
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct FrozenMlp {
    layers: Vec<FrozenLinear>,
    hidden_activation: Activation,
    output_activation: Activation,
}

impl Mlp {
    /// Snapshot all layer weights into a [`FrozenMlp`].
    pub fn freeze(&self, store: &ParamStore) -> FrozenMlp {
        FrozenMlp {
            layers: self.layers.iter().map(|l| l.freeze(store)).collect(),
            hidden_activation: self.hidden_activation,
            output_activation: self.output_activation,
        }
    }
}

impl FrozenMlp {
    /// Forward `rows×in_dim` input through all layers; returns a
    /// `rows×out_dim` workspace buffer.
    pub fn forward(&self, ws: &mut Workspace, x: &[f32], rows: usize) -> Vec<f32> {
        let last = self.layers.len() - 1;
        let mut cur: Option<Vec<f32>> = None;
        for (i, layer) in self.layers.iter().enumerate() {
            let mut next = layer.forward(ws, cur.as_deref().unwrap_or(x), rows);
            if i == last {
                self.output_activation.apply_in_place(&mut next);
            } else {
                self.hidden_activation.apply_in_place(&mut next);
            }
            if let Some(prev) = cur.replace(next) {
                ws.give(prev);
            }
        }
        cur.expect("Mlp has at least one layer")
    }
}

/// Inference-time snapshot of a [`MultiHeadSelfAttention`].
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct FrozenMha {
    wq: Vec<Tensor>,
    wk: Vec<Tensor>,
    wv: Vec<Tensor>,
    wo: Tensor,
    dim: usize,
    heads: usize,
    dk: usize,
}

impl MultiHeadSelfAttention {
    /// Snapshot the projection matrices into a [`FrozenMha`].
    pub fn freeze(&self, store: &ParamStore) -> FrozenMha {
        let grab = |ids: &[ParamId]| ids.iter().map(|&id| store.value(id).clone()).collect();
        FrozenMha {
            wq: grab(&self.wq),
            wk: grab(&self.wk),
            wv: grab(&self.wv),
            wo: store.value(self.wo).clone(),
            dim: self.dim,
            heads: self.heads,
            dk: self.dk,
        }
    }
}

impl FrozenMha {
    /// Self-attend over a `t×dim` sequence buffer, returning a `t×dim`
    /// workspace buffer. Mirrors [`MultiHeadSelfAttention::forward`] op for
    /// op: per-head q/k/v projections, explicit key transpose, scaled
    /// softmax scores, head concat, output projection.
    pub fn forward(&self, ws: &mut Workspace, e: &[f32], t: usize) -> Vec<f32> {
        let (d, dk) = (self.dim, self.dk);
        let scale = 1.0 / (dk as f32).sqrt();
        let mut concat = ws.take(t * d);
        let mut q = ws.take(t * dk);
        let mut k = ws.take(t * dk);
        let mut v = ws.take(t * dk);
        let mut kt = ws.take(dk * t);
        let mut scores = ws.take(t * t);
        let mut head = ws.take(t * dk);
        for h in 0..self.heads {
            infer::matmul_into(e, t, d, self.wq[h].as_slice(), dk, &mut q);
            infer::matmul_into(e, t, d, self.wk[h].as_slice(), dk, &mut k);
            infer::matmul_into(e, t, d, self.wv[h].as_slice(), dk, &mut v);
            infer::transpose_into(&k, t, dk, &mut kt);
            infer::matmul_into(&q, t, dk, &kt, t, &mut scores);
            infer::scale_in_place(&mut scores, scale);
            infer::softmax_rows_in_place(&mut scores, t);
            infer::matmul_into(&scores, t, t, &v, dk, &mut head);
            for i in 0..t {
                concat[i * d + h * dk..i * d + (h + 1) * dk]
                    .copy_from_slice(&head[i * dk..(i + 1) * dk]);
            }
        }
        ws.give(q);
        ws.give(k);
        ws.give(v);
        ws.give(kt);
        ws.give(scores);
        ws.give(head);
        let mut out = ws.take(t * d);
        infer::matmul_into(&concat, t, d, self.wo.as_slice(), d, &mut out);
        ws.give(concat);
        out
    }
}

/// Inference-time snapshot of a [`BilinearAttention`].
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct FrozenBilinear {
    w: Tensor,
    dim: usize,
}

impl BilinearAttention {
    /// Snapshot the bilinear matrix into a [`FrozenBilinear`].
    pub fn freeze(&self, store: &ParamStore) -> FrozenBilinear {
        FrozenBilinear {
            w: store.value(self.w).clone(),
            dim: self.dim,
        }
    }
}

impl FrozenBilinear {
    /// `query` is a length-`dim` buffer, `keys` is `t×dim`; returns the
    /// attention-pooled length-`dim` summary as a workspace buffer. Mirrors
    /// [`BilinearAttention::forward`] (explicit key transpose included, so
    /// rounding matches the tape).
    pub fn forward(&self, ws: &mut Workspace, query: &[f32], keys: &[f32], t: usize) -> Vec<f32> {
        let d = self.dim;
        let mut u = ws.take(d);
        infer::matmul_into(query, 1, d, self.w.as_slice(), d, &mut u);
        let mut kt = ws.take(d * t);
        infer::transpose_into(keys, t, d, &mut kt);
        let mut scores = ws.take(t);
        infer::matmul_into(&u, 1, d, &kt, t, &mut scores);
        linalg::softmax_in_place(&mut scores);
        let mut out = ws.take(d);
        infer::matmul_into(&scores, 1, t, keys, d, &mut out);
        ws.give(u);
        ws.give(kt);
        ws.give(scores);
        out
    }
}

/// A structural flaw found while validating a frozen artifact: either the
/// matrix dimensions disagree with the declared layer geometry (a corrupt or
/// hand-edited checkpoint) or a weight tensor carries NaN/±∞ (which would
/// silently poison every score downstream).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FrozenCheckError {
    /// Matrix dimensions are mutually inconsistent.
    Shape(String),
    /// A weight tensor contains NaN or infinite values.
    NonFinite(String),
}

impl fmt::Display for FrozenCheckError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrozenCheckError::Shape(what) => write!(f, "inconsistent dimensions: {what}"),
            FrozenCheckError::NonFinite(what) => write!(f, "non-finite weights: {what}"),
        }
    }
}

impl std::error::Error for FrozenCheckError {}

/// Validate that `t` is a finite `rows×cols` matrix (vectors count as one
/// row) whose buffer length matches its shape — the leaf check every frozen
/// component builds on.
pub fn check_matrix(
    what: &str,
    t: &Tensor,
    rows: usize,
    cols: usize,
) -> Result<(), FrozenCheckError> {
    let shape = t.shape();
    if shape.rows() != rows || shape.cols() != cols {
        return Err(FrozenCheckError::Shape(format!(
            "{what}: expected {rows}x{cols}, found {}x{}",
            shape.rows(),
            shape.cols()
        )));
    }
    if t.as_slice().len() != rows * cols {
        return Err(FrozenCheckError::Shape(format!(
            "{what}: buffer holds {} values but the shape declares {rows}x{cols}",
            t.as_slice().len()
        )));
    }
    if !t.all_finite() {
        return Err(FrozenCheckError::NonFinite(format!(
            "{what} contains NaN or infinite weights"
        )));
    }
    Ok(())
}

impl FrozenLinear {
    /// Input feature dimension.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Validate weight/bias shapes against the declared `in_dim → out_dim`
    /// geometry and reject non-finite weights.
    pub fn check(&self, what: &str) -> Result<(), FrozenCheckError> {
        check_matrix(&format!("{what}.w"), &self.w, self.in_dim, self.out_dim)?;
        if let Some(b) = &self.b {
            check_matrix(&format!("{what}.b"), b, 1, self.out_dim)?;
        }
        Ok(())
    }
}

impl FrozenMlp {
    /// Validate the layer chain: `in_dim` feeds the first layer, consecutive
    /// layers agree on their shared dimension, and the last layer emits
    /// `out_dim` — plus per-layer shape/finiteness checks.
    pub fn check(&self, what: &str, in_dim: usize, out_dim: usize) -> Result<(), FrozenCheckError> {
        let Some(first) = self.layers.first() else {
            return Err(FrozenCheckError::Shape(format!(
                "{what}: MLP has no layers"
            )));
        };
        if first.in_dim != in_dim {
            return Err(FrozenCheckError::Shape(format!(
                "{what}: first layer consumes {} features, expected {in_dim}",
                first.in_dim
            )));
        }
        for (i, layer) in self.layers.iter().enumerate() {
            layer.check(&format!("{what}.layer{i}"))?;
            if let Some(next) = self.layers.get(i + 1) {
                if next.in_dim != layer.out_dim {
                    return Err(FrozenCheckError::Shape(format!(
                        "{what}: layer {i} emits {} features but layer {} consumes {}",
                        layer.out_dim,
                        i + 1,
                        next.in_dim
                    )));
                }
            }
        }
        let last = self.layers.last().expect("checked non-empty");
        if last.out_dim != out_dim {
            return Err(FrozenCheckError::Shape(format!(
                "{what}: last layer emits {} features, expected {out_dim}",
                last.out_dim
            )));
        }
        Ok(())
    }
}

impl FrozenMha {
    /// Validate head count, per-head projection shapes, and the output
    /// projection against the declared model dimension `dim`.
    pub fn check(&self, what: &str, dim: usize) -> Result<(), FrozenCheckError> {
        if self.dim != dim {
            return Err(FrozenCheckError::Shape(format!(
                "{what}: attention dim {} does not match the branch dim {dim}",
                self.dim
            )));
        }
        if self.heads == 0 || self.heads * self.dk != dim {
            return Err(FrozenCheckError::Shape(format!(
                "{what}: {} heads of width {} do not tile dim {dim}",
                self.heads, self.dk
            )));
        }
        for (name, mats) in [("wq", &self.wq), ("wk", &self.wk), ("wv", &self.wv)] {
            if mats.len() != self.heads {
                return Err(FrozenCheckError::Shape(format!(
                    "{what}.{name}: {} projections for {} heads",
                    mats.len(),
                    self.heads
                )));
            }
            for (h, m) in mats.iter().enumerate() {
                check_matrix(&format!("{what}.{name}[{h}]"), m, dim, self.dk)?;
            }
        }
        check_matrix(&format!("{what}.wo"), &self.wo, dim, dim)
    }
}

impl FrozenBilinear {
    /// Validate the bilinear matrix against the declared dimension.
    pub fn check(&self, what: &str, dim: usize) -> Result<(), FrozenCheckError> {
        if self.dim != dim {
            return Err(FrozenCheckError::Shape(format!(
                "{what}: bilinear dim {} does not match the branch dim {dim}",
                self.dim
            )));
        }
        check_matrix(&format!("{what}.w"), &self.w, dim, dim)
    }
}

/// A single LSTM cell (Hochreiter & Schmidhuber), the recurrence of the RNN
/// baselines (LSTM/STGN/LSTPM/STOD-PPA). Gate order in the packed weight is
/// `[input, forget, output, candidate]`.
#[derive(Clone, Debug)]
pub struct LstmCell {
    wx: ParamId,
    wh: ParamId,
    b: ParamId,
    input_dim: usize,
    hidden_dim: usize,
}

/// Hidden and cell state for an LSTM step.
#[derive(Clone, Copy, Debug)]
pub struct LstmState {
    /// Hidden state `h`, a length-`hidden` vector.
    pub h: Value,
    /// Cell state `c`, a length-`hidden` vector.
    pub c: Value,
}

impl LstmCell {
    /// Register the cell parameters under `name`.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        input_dim: usize,
        hidden_dim: usize,
        rng: &mut impl Rng,
    ) -> Self {
        let wx = store.register(
            format!("{name}.wx"),
            init::paper_default(Shape::Matrix(input_dim, 4 * hidden_dim), rng),
        );
        let wh = store.register(
            format!("{name}.wh"),
            init::paper_default(Shape::Matrix(hidden_dim, 4 * hidden_dim), rng),
        );
        // Forget-gate bias starts at 1 (standard trick to let gradients flow
        // through long sequences early in training).
        let mut bias = Tensor::zeros(Shape::Vector(4 * hidden_dim));
        for i in hidden_dim..2 * hidden_dim {
            bias.as_mut_slice()[i] = 1.0;
        }
        let b = store.register(format!("{name}.b"), bias);
        LstmCell {
            wx,
            wh,
            b,
            input_dim,
            hidden_dim,
        }
    }

    /// Hidden width of the cell.
    pub fn hidden_dim(&self) -> usize {
        self.hidden_dim
    }

    /// A zero initial state recorded on the graph. States are vectors
    /// (matching the output shape of single-row slices).
    pub fn zero_state(&self, g: &mut Graph) -> LstmState {
        let h = g.input(Tensor::zeros(Shape::Vector(self.hidden_dim)));
        let c = g.input(Tensor::zeros(Shape::Vector(self.hidden_dim)));
        LstmState { h, c }
    }

    /// One recurrence step: `x` is `1×input_dim`.
    pub fn step(&self, g: &mut Graph, store: &ParamStore, x: Value, state: LstmState) -> LstmState {
        debug_assert_eq!(g.value(x).cols(), self.input_dim, "LSTM input dim");
        let wx = g.param(store, self.wx);
        let wh = g.param(store, self.wh);
        let b = g.param(store, self.b);
        let xg = g.matmul(x, wx);
        let hg = g.matmul(state.h, wh);
        let pre = g.add(xg, hg);
        let gates = g.add_row(pre, b);
        let hd = self.hidden_dim;
        let i_pre = g.slice_cols(gates, 0, hd);
        let f_pre = g.slice_cols(gates, hd, 2 * hd);
        let o_pre = g.slice_cols(gates, 2 * hd, 3 * hd);
        let c_pre = g.slice_cols(gates, 3 * hd, 4 * hd);
        let i = g.sigmoid(i_pre);
        let f = g.sigmoid(f_pre);
        let o = g.sigmoid(o_pre);
        let c_tilde = g.tanh(c_pre);
        let fc = g.mul(f, state.c);
        let ic = g.mul(i, c_tilde);
        let c = g.add(fc, ic);
        let ct = g.tanh(c);
        let h = g.mul(o, ct);
        LstmState { h, c }
    }

    /// Run the cell over a `[t × input_dim]` sequence, returning the final
    /// hidden state (a length-`hidden` vector).
    pub fn run(&self, g: &mut Graph, store: &ParamStore, seq: Value) -> Value {
        let t = g.value(seq).rows();
        let mut state = self.zero_state(g);
        for i in 0..t {
            let xi = g.row(seq, i);
            state = self.step(g, store, xi, state);
        }
        state.h
    }
}

/// Sample an inverted-dropout mask (0 with probability `p`, `1/(1−p)`
/// otherwise) and apply it. Call only in training mode.
pub fn dropout(g: &mut Graph, x: Value, p: f32, rng: &mut impl Rng) -> Value {
    assert!((0.0..1.0).contains(&p), "dropout rate must be in [0, 1)");
    if p == 0.0 {
        return x;
    }
    let keep = 1.0 - p;
    let shape = g.value(x).shape();
    let mask = Tensor::new(
        shape,
        (0..shape.len())
            .map(|_| {
                if rng.gen::<f32>() < keep {
                    1.0 / keep
                } else {
                    0.0
                }
            })
            .collect(),
    );
    g.mask_mul(x, mask)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(17)
    }

    #[test]
    fn linear_shapes_and_bias() {
        let mut store = ParamStore::new();
        let lin = Linear::new(&mut store, "fc", 4, 3, true, &mut rng());
        assert_eq!((lin.in_dim(), lin.out_dim()), (4, 3));
        let mut g = Graph::new();
        let x = g.input(Tensor::zeros(Shape::Matrix(5, 4)));
        let y = lin.forward(&mut g, &store, x);
        assert_eq!(g.value(y).shape(), Shape::Matrix(5, 3));
        // Zero input + zero bias → zero output.
        assert_eq!(g.value(y).sum(), 0.0);
    }

    #[test]
    fn mlp_stacks_layers() {
        let mut store = ParamStore::new();
        let mlp = Mlp::new(
            &mut store,
            "mlp",
            &[8, 16, 1],
            Activation::Relu,
            Activation::Sigmoid,
            &mut rng(),
        );
        assert_eq!(mlp.out_dim(), 1);
        let mut g = Graph::new();
        let x = g.input(Tensor::ones(Shape::Matrix(2, 8)));
        let y = mlp.forward(&mut g, &store, x);
        assert_eq!(g.value(y).shape(), Shape::Matrix(2, 1));
        // Sigmoid output lies in (0, 1).
        assert!(g
            .value(y)
            .as_slice()
            .iter()
            .all(|&v| (0.0..1.0).contains(&v)));
    }

    #[test]
    #[should_panic(expected = "at least input and output")]
    fn mlp_rejects_single_dim() {
        Mlp::new(
            &mut ParamStore::new(),
            "m",
            &[4],
            Activation::Relu,
            Activation::None,
            &mut rng(),
        );
    }

    #[test]
    fn embedding_lookup_matches_table() {
        let mut store = ParamStore::new();
        let emb = Embedding::new(&mut store, "emb", 10, 4, &mut rng());
        assert_eq!((emb.vocab(), emb.dim()), (10, 4));
        let table = store.value(emb.table()).clone();
        let mut g = Graph::new();
        let rows = emb.forward(&mut g, &store, &[3, 7, 3]);
        assert_eq!(g.value(rows).shape(), Shape::Matrix(3, 4));
        assert_eq!(g.value(rows).row(0), table.row(3));
        assert_eq!(g.value(rows).row(1), table.row(7));
        assert_eq!(g.value(rows).row(2), table.row(3));
    }

    #[test]
    fn mha_preserves_sequence_shape() {
        let mut store = ParamStore::new();
        let mha = MultiHeadSelfAttention::new(&mut store, "mha", 8, 4, &mut rng());
        assert_eq!(mha.heads(), 4);
        let mut g = Graph::new();
        let e = g.input(init::paper_default(Shape::Matrix(6, 8), &mut rng()));
        let out = mha.forward(&mut g, &store, e);
        assert_eq!(g.value(out).shape(), Shape::Matrix(6, 8));
        assert!(g.value(out).all_finite());
    }

    #[test]
    #[should_panic(expected = "dim must divide by heads")]
    fn mha_rejects_indivisible_heads() {
        MultiHeadSelfAttention::new(&mut ParamStore::new(), "m", 10, 3, &mut rng());
    }

    #[test]
    fn bilinear_attention_pools_to_query_shape() {
        let mut store = ParamStore::new();
        let attn = BilinearAttention::new(&mut store, "attn", 6, &mut rng());
        let mut g = Graph::new();
        let q = g.input(init::paper_default(Shape::Matrix(1, 6), &mut rng()));
        let keys = g.input(init::paper_default(Shape::Matrix(4, 6), &mut rng()));
        let out = attn.forward(&mut g, &store, q, keys);
        assert_eq!(g.value(out).shape(), Shape::Matrix(1, 6));
    }

    #[test]
    fn bilinear_attention_output_is_convex_combination() {
        // With identical keys, the output must equal that key regardless of
        // the learned weights.
        let mut store = ParamStore::new();
        let attn = BilinearAttention::new(&mut store, "attn", 3, &mut rng());
        let mut g = Graph::new();
        let q = g.input(Tensor::matrix(1, 3, &[1.0, -1.0, 0.5]));
        let key_row: &[f32] = &[2.0, 3.0, 4.0];
        let keys = g.input(Tensor::from_rows(&[key_row; 5]));
        let out = attn.forward(&mut g, &store, q, keys);
        for (o, e) in g.value(out).as_slice().iter().zip(&[2.0, 3.0, 4.0]) {
            assert!((o - e).abs() < 1e-5);
        }
    }

    #[test]
    fn lstm_run_produces_hidden_state() {
        let mut store = ParamStore::new();
        let cell = LstmCell::new(&mut store, "lstm", 4, 6, &mut rng());
        assert_eq!(cell.hidden_dim(), 6);
        let mut g = Graph::new();
        let seq = g.input(init::paper_default(Shape::Matrix(5, 4), &mut rng()));
        let h = cell.run(&mut g, &store, seq);
        assert_eq!(g.value(h).shape(), Shape::Vector(6));
        assert!(g.value(h).all_finite());
        // Hidden state is bounded by tanh × sigmoid.
        assert!(g.value(h).as_slice().iter().all(|v| v.abs() < 1.0));
    }

    #[test]
    fn lstm_gradients_flow_to_all_params() {
        let mut store = ParamStore::new();
        let cell = LstmCell::new(&mut store, "lstm", 3, 4, &mut rng());
        let mut g = Graph::new();
        let seq = g.input(init::gaussian(Shape::Matrix(4, 3), 0.0, 1.0, &mut rng()));
        let h = cell.run(&mut g, &store, seq);
        let loss = g.sum_all(h);
        g.backward(loss);
        g.accumulate_param_grads(&mut store);
        for id in store.ids().collect::<Vec<_>>() {
            assert!(
                store.grad(id).sq_norm() > 0.0,
                "no gradient reached {}",
                store.name(id)
            );
        }
    }

    #[test]
    fn frozen_linear_and_mlp_match_live_bitwise() {
        let mut store = ParamStore::new();
        let mlp = Mlp::new(
            &mut store,
            "mlp",
            &[6, 5, 2],
            Activation::Relu,
            Activation::None,
            &mut rng(),
        );
        let x = init::gaussian(Shape::Matrix(3, 6), 0.0, 1.0, &mut rng());
        let mut g = Graph::new();
        let xv = g.input(x.clone());
        let live = mlp.forward(&mut g, &store, xv);
        let frozen = mlp.freeze(&store);
        let mut ws = Workspace::new();
        let out = frozen.forward(&mut ws, x.as_slice(), 3);
        assert_eq!(out.as_slice(), g.value(live).as_slice());
        ws.give(out);
    }

    #[test]
    fn frozen_mha_matches_live_bitwise() {
        let mut store = ParamStore::new();
        let mha = MultiHeadSelfAttention::new(&mut store, "mha", 8, 2, &mut rng());
        let e = init::gaussian(Shape::Matrix(5, 8), 0.0, 1.0, &mut rng());
        let mut g = Graph::new();
        let ev = g.input(e.clone());
        let live = mha.forward(&mut g, &store, ev);
        let frozen = mha.freeze(&store);
        let mut ws = Workspace::new();
        let out = frozen.forward(&mut ws, e.as_slice(), 5);
        assert_eq!(out.as_slice(), g.value(live).as_slice());
        ws.give(out);
    }

    #[test]
    fn frozen_bilinear_matches_live_bitwise() {
        let mut store = ParamStore::new();
        let attn = BilinearAttention::new(&mut store, "attn", 6, &mut rng());
        let q = init::gaussian(Shape::Matrix(1, 6), 0.0, 1.0, &mut rng());
        let keys = init::gaussian(Shape::Matrix(4, 6), 0.0, 1.0, &mut rng());
        let mut g = Graph::new();
        let qv = g.input(q.clone());
        let kv = g.input(keys.clone());
        let live = attn.forward(&mut g, &store, qv, kv);
        let frozen = attn.freeze(&store);
        let mut ws = Workspace::new();
        let out = frozen.forward(&mut ws, q.as_slice(), keys.as_slice(), 4);
        assert_eq!(out.as_slice(), g.value(live).as_slice());
        ws.give(out);
    }

    #[test]
    fn frozen_layers_round_trip_through_serde() {
        let mut store = ParamStore::new();
        let lin = Linear::new(&mut store, "fc", 3, 2, true, &mut rng());
        let frozen = lin.freeze(&store);
        let json = serde_json::to_string(&frozen).unwrap();
        let back: FrozenLinear = serde_json::from_str(&json).unwrap();
        let mut ws = Workspace::new();
        let x = [1.0f32, -2.0, 0.5];
        assert_eq!(frozen.forward(&mut ws, &x, 1), back.forward(&mut ws, &x, 1));
    }

    #[test]
    fn dropout_zero_rate_is_identity() {
        let mut g = Graph::new();
        let x = g.input(Tensor::vector(&[1.0, 2.0]));
        let y = dropout(&mut g, x, 0.0, &mut rng());
        assert_eq!(x, y);
    }

    #[test]
    fn dropout_preserves_expectation_roughly() {
        let mut g = Graph::new();
        let x = g.input(Tensor::ones(Shape::Vector(10_000)));
        let y = dropout(&mut g, x, 0.5, &mut rng());
        let mean = g.value(y).mean();
        assert!((mean - 1.0).abs() < 0.05, "dropout mean {mean}");
    }
}
