//! Define-by-run reverse-mode automatic differentiation.
//!
//! A [`Graph`] is a tape: every operation eagerly computes its forward value
//! and records the operation plus its operands. [`Graph::backward`] then walks
//! the tape in reverse, applying the analytic adjoint of each operation.
//! A fresh graph is built per mini-batch (define-by-run), which keeps
//! recurrent models (LSTM unrolling) and data-dependent control flow trivial.
//!
//! Gradient correctness is the single invariant everything else in the
//! reproduction rests on; see `tests/gradcheck.rs` for finite-difference
//! property tests covering every op here.

use crate::linalg;
use crate::linalg::stable_sigmoid;
use crate::param::{ParamId, ParamStore};
use crate::shape::Shape;
use crate::tensor::Tensor;

/// Handle to a node in a [`Graph`]'s tape.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Value(usize);

/// Recorded operation for one tape node.
#[derive(Debug)]
enum Op {
    /// Constant input; never receives a gradient.
    Input,
    /// Trainable parameter leaf; gradient is accumulated into the store.
    Param(ParamId),
    Add(Value, Value),
    /// `matrix + row` where the row vector is broadcast over all rows.
    AddRow(Value, Value),
    Sub(Value, Value),
    Mul(Value, Value),
    Scale(Value, f32),
    AddScalar(Value),
    Matmul(Value, Value),
    Relu(Value),
    Sigmoid(Value),
    Tanh(Value),
    Exp(Value),
    Log(Value),
    SoftmaxRows(Value),
    Transpose(Value),
    ConcatCols(Vec<Value>),
    /// Column concatenation where single-row operands are broadcast down
    /// all output rows (the batched `q` assembly of the serving path).
    ConcatColsBcast(Vec<Value>, usize),
    ConcatRows(Vec<Value>),
    SliceCols(Value, usize, usize),
    Row(Value, usize),
    GatherRows(Value, Vec<usize>),
    SumAll(Value),
    MeanAll(Value),
    MeanRows(Value),
    /// Row-wise scale: `out[i, :] = w[i] * a[i, :]` with `w` a length-rows vector.
    ScaleRows(Value, Value),
    Reshape(Value, Shape),
    /// Elementwise multiply by a constant mask (inverted dropout).
    MaskMul(Value, Tensor),
    /// Numerically-stable binary cross-entropy with logits against constant
    /// targets; output is a scalar mean loss.
    BceWithLogits(Value, Tensor),
    /// Mean squared error against constant targets; output is a scalar.
    MseLoss(Value, Tensor),
}

struct Node {
    data: Tensor,
    grad: Option<Tensor>,
    op: Op,
    requires_grad: bool,
}

/// A define-by-run autograd tape.
#[derive(Default)]
pub struct Graph {
    nodes: Vec<Node>,
}

impl Graph {
    /// An empty tape.
    pub fn new() -> Self {
        Graph { nodes: Vec::new() }
    }

    /// A tape with preallocated node capacity (useful for unrolled RNNs).
    pub fn with_capacity(n: usize) -> Self {
        Graph {
            nodes: Vec::with_capacity(n),
        }
    }

    /// Clear the tape while keeping its node-vector capacity, so a worker
    /// that builds one tape per group amortizes the tape allocation across
    /// the whole run instead of paying it per group.
    pub fn reset(&mut self) {
        self.nodes.clear();
    }

    /// Number of nodes recorded so far.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when no nodes have been recorded.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    fn push(&mut self, data: Tensor, op: Op, requires_grad: bool) -> Value {
        self.nodes.push(Node {
            data,
            grad: None,
            op,
            requires_grad,
        });
        Value(self.nodes.len() - 1)
    }

    fn data(&self, v: Value) -> &Tensor {
        &self.nodes[v.0].data
    }

    fn needs_grad(&self, v: Value) -> bool {
        self.nodes[v.0].requires_grad
    }

    /// The forward value of a node.
    pub fn value(&self, v: Value) -> &Tensor {
        self.data(v)
    }

    /// The accumulated gradient of a node (populated by [`Graph::backward`]).
    pub fn grad(&self, v: Value) -> Option<&Tensor> {
        self.nodes[v.0].grad.as_ref()
    }

    // ---- leaves -----------------------------------------------------------

    /// Record a constant input (no gradient flows into it).
    pub fn input(&mut self, t: Tensor) -> Value {
        self.push(t, Op::Input, false)
    }

    /// Record a trainable parameter leaf holding a snapshot of the parameter's
    /// current value. After `backward`, flush gradients back with
    /// [`Graph::accumulate_param_grads`].
    pub fn param(&mut self, store: &ParamStore, id: ParamId) -> Value {
        self.push(store.value(id).clone(), Op::Param(id), true)
    }

    // ---- elementwise binary ----------------------------------------------

    /// Elementwise sum of two same-shape tensors.
    pub fn add(&mut self, a: Value, b: Value) -> Value {
        let data = self.data(a).zip(self.data(b), |x, y| x + y);
        let rg = self.needs_grad(a) || self.needs_grad(b);
        self.push(data, Op::Add(a, b), rg)
    }

    /// `matrix + row-vector`, broadcasting the row over every matrix row
    /// (the usual bias add).
    pub fn add_row(&mut self, a: Value, row: Value) -> Value {
        let m = self.data(a);
        let r = self.data(row);
        assert_eq!(
            m.cols(),
            r.len(),
            "add_row: matrix cols {} vs row len {}",
            m.cols(),
            r.len()
        );
        let mut out = m.clone();
        for i in 0..out.rows() {
            for (o, &b) in out.row_mut(i).iter_mut().zip(r.as_slice()) {
                *o += b;
            }
        }
        let rg = self.needs_grad(a) || self.needs_grad(row);
        self.push(out, Op::AddRow(a, row), rg)
    }

    /// Elementwise difference.
    pub fn sub(&mut self, a: Value, b: Value) -> Value {
        let data = self.data(a).zip(self.data(b), |x, y| x - y);
        let rg = self.needs_grad(a) || self.needs_grad(b);
        self.push(data, Op::Sub(a, b), rg)
    }

    /// Elementwise (Hadamard) product.
    pub fn mul(&mut self, a: Value, b: Value) -> Value {
        let data = self.data(a).zip(self.data(b), |x, y| x * y);
        let rg = self.needs_grad(a) || self.needs_grad(b);
        self.push(data, Op::Mul(a, b), rg)
    }

    /// Multiply by a constant scalar.
    pub fn scale(&mut self, a: Value, s: f32) -> Value {
        let data = self.data(a).map(|x| x * s);
        let rg = self.needs_grad(a);
        self.push(data, Op::Scale(a, s), rg)
    }

    /// Add a constant scalar to every element.
    pub fn add_scalar(&mut self, a: Value, s: f32) -> Value {
        let data = self.data(a).map(|x| x + s);
        let rg = self.needs_grad(a);
        self.push(data, Op::AddScalar(a), rg)
    }

    // ---- linear algebra ----------------------------------------------------

    /// Matrix product of the matrix views.
    pub fn matmul(&mut self, a: Value, b: Value) -> Value {
        let data = linalg::matmul(self.data(a), self.data(b));
        let rg = self.needs_grad(a) || self.needs_grad(b);
        self.push(data, Op::Matmul(a, b), rg)
    }

    /// Transpose of the matrix view.
    pub fn transpose(&mut self, a: Value) -> Value {
        let data = linalg::transpose(self.data(a));
        let rg = self.needs_grad(a);
        self.push(data, Op::Transpose(a), rg)
    }

    // ---- activations -------------------------------------------------------

    /// Rectified linear unit.
    pub fn relu(&mut self, a: Value) -> Value {
        let data = self.data(a).map(|x| x.max(0.0));
        let rg = self.needs_grad(a);
        self.push(data, Op::Relu(a), rg)
    }

    /// Logistic sigmoid (fused single-pass kernel).
    pub fn sigmoid(&mut self, a: Value) -> Value {
        let data = linalg::sigmoid(self.data(a));
        let rg = self.needs_grad(a);
        self.push(data, Op::Sigmoid(a), rg)
    }

    /// Hyperbolic tangent.
    pub fn tanh(&mut self, a: Value) -> Value {
        let data = self.data(a).map(f32::tanh);
        let rg = self.needs_grad(a);
        self.push(data, Op::Tanh(a), rg)
    }

    /// Elementwise exponential.
    pub fn exp(&mut self, a: Value) -> Value {
        let data = self.data(a).map(f32::exp);
        let rg = self.needs_grad(a);
        self.push(data, Op::Exp(a), rg)
    }

    /// Elementwise natural logarithm (inputs must be positive).
    pub fn log(&mut self, a: Value) -> Value {
        let data = self.data(a).map(f32::ln);
        let rg = self.needs_grad(a);
        self.push(data, Op::Log(a), rg)
    }

    /// Row-wise softmax of the matrix view.
    pub fn softmax_rows(&mut self, a: Value) -> Value {
        let data = linalg::softmax_rows(self.data(a));
        let rg = self.needs_grad(a);
        self.push(data, Op::SoftmaxRows(a), rg)
    }

    // ---- structural ---------------------------------------------------------

    /// Concatenate matrices along columns (all operands must share a row
    /// count in the matrix view).
    pub fn concat_cols(&mut self, parts: &[Value]) -> Value {
        assert!(!parts.is_empty(), "concat_cols of zero tensors");
        let rows = self.data(parts[0]).rows();
        let total_cols: usize = parts.iter().map(|&p| self.data(p).cols()).sum();
        let mut out = Tensor::zeros(Shape::Matrix(rows, total_cols));
        let mut col = 0;
        for &p in parts {
            let t = self.data(p);
            assert_eq!(t.rows(), rows, "concat_cols: row count mismatch");
            let c = t.cols();
            for i in 0..rows {
                out.row_mut(i)[col..col + c].copy_from_slice(t.row(i));
            }
            col += c;
        }
        let out = if rows == 1 {
            out.reshape(Shape::Vector(total_cols))
        } else {
            out
        };
        let rg = parts.iter().any(|&p| self.needs_grad(p));
        self.push(out, Op::ConcatCols(parts.to_vec()), rg)
    }

    /// Concatenate along columns into an `rows × Σcols` matrix, broadcasting
    /// any single-row operand (vector or `1×c` matrix) down all `rows` rows.
    /// This fuses the "tile the shared trunk, then concat with per-candidate
    /// features" pattern into one op and one allocation — the tiled copies
    /// are never materialized as separate tensors.
    pub fn concat_cols_bcast(&mut self, parts: &[Value], rows: usize) -> Value {
        assert!(!parts.is_empty(), "concat_cols_bcast of zero tensors");
        assert!(rows > 0, "concat_cols_bcast needs at least one row");
        let total_cols: usize = parts.iter().map(|&p| self.data(p).cols()).sum();
        let mut out = Tensor::zeros(Shape::Matrix(rows, total_cols));
        let mut col = 0;
        for &p in parts {
            let t = self.data(p);
            let c = t.cols();
            if t.rows() == rows {
                for i in 0..rows {
                    out.row_mut(i)[col..col + c].copy_from_slice(t.row(i));
                }
            } else {
                assert_eq!(
                    t.rows(),
                    1,
                    "concat_cols_bcast: operand has {} rows, expected 1 or {rows}",
                    t.rows()
                );
                let src = t.row(0);
                for i in 0..rows {
                    out.row_mut(i)[col..col + c].copy_from_slice(src);
                }
            }
            col += c;
        }
        let rg = parts.iter().any(|&p| self.needs_grad(p));
        self.push(out, Op::ConcatColsBcast(parts.to_vec(), rows), rg)
    }

    /// Stack matrices along rows (all operands must share a column count in
    /// the matrix view). Vectors stack as single rows.
    pub fn concat_rows(&mut self, parts: &[Value]) -> Value {
        assert!(!parts.is_empty(), "concat_rows of zero tensors");
        let cols = self.data(parts[0]).cols();
        let total_rows: usize = parts.iter().map(|&p| self.data(p).rows()).sum();
        let mut data = Vec::with_capacity(total_rows * cols);
        for &p in parts {
            let t = self.data(p);
            assert_eq!(t.cols(), cols, "concat_rows: column count mismatch");
            data.extend_from_slice(t.as_slice());
        }
        let out = Tensor::new(Shape::Matrix(total_rows, cols), data);
        let rg = parts.iter().any(|&p| self.needs_grad(p));
        self.push(out, Op::ConcatRows(parts.to_vec()), rg)
    }

    /// Columns `lo..hi` of the matrix view.
    pub fn slice_cols(&mut self, a: Value, lo: usize, hi: usize) -> Value {
        let t = self.data(a);
        assert!(lo < hi && hi <= t.cols(), "slice_cols range out of bounds");
        let rows = t.rows();
        let mut out = Tensor::zeros(Shape::Matrix(rows, hi - lo));
        for i in 0..rows {
            out.row_mut(i).copy_from_slice(&t.row(i)[lo..hi]);
        }
        let out = if rows == 1 {
            out.reshape(Shape::Vector(hi - lo))
        } else {
            out
        };
        let rg = self.needs_grad(a);
        self.push(out, Op::SliceCols(a, lo, hi), rg)
    }

    /// One row of the matrix view, as a vector.
    pub fn row(&mut self, a: Value, i: usize) -> Value {
        let t = self.data(a);
        assert!(i < t.rows(), "row index out of bounds");
        let out = Tensor::vector(t.row(i));
        let rg = self.needs_grad(a);
        self.push(out, Op::Row(a, i), rg)
    }

    /// Gather rows of `table` by index — the embedding lookup. The gradient
    /// scatter-adds back into the gathered rows, so repeated indices
    /// accumulate.
    pub fn gather_rows(&mut self, table: Value, indices: &[usize]) -> Value {
        let t = self.data(table);
        let cols = t.cols();
        let mut out = Tensor::zeros(Shape::Matrix(indices.len(), cols));
        for (i, &idx) in indices.iter().enumerate() {
            assert!(idx < t.rows(), "gather_rows index {idx} out of bounds");
            out.row_mut(i).copy_from_slice(t.row(idx));
        }
        let rg = self.needs_grad(table);
        self.push(out, Op::GatherRows(table, indices.to_vec()), rg)
    }

    /// Reinterpret under a new shape with the same element count.
    pub fn reshape(&mut self, a: Value, shape: Shape) -> Value {
        let data = self.data(a).clone().reshape(shape);
        let rg = self.needs_grad(a);
        self.push(data, Op::Reshape(a, self.nodes[a.0].data.shape()), rg)
    }

    // ---- reductions ----------------------------------------------------------

    /// Sum of all elements (scalar output).
    pub fn sum_all(&mut self, a: Value) -> Value {
        let data = Tensor::scalar(self.data(a).sum());
        let rg = self.needs_grad(a);
        self.push(data, Op::SumAll(a), rg)
    }

    /// Mean of all elements (scalar output).
    pub fn mean_all(&mut self, a: Value) -> Value {
        let data = Tensor::scalar(self.data(a).mean());
        let rg = self.needs_grad(a);
        self.push(data, Op::MeanAll(a), rg)
    }

    /// Mean over rows of the matrix view — the average-pooling layer of the
    /// paper's PEC (Fig. 4).
    pub fn mean_rows(&mut self, a: Value) -> Value {
        let data = linalg::mean_rows(self.data(a));
        let rg = self.needs_grad(a);
        self.push(data, Op::MeanRows(a), rg)
    }

    /// Row-wise scaling `out[i, :] = w[i] · a[i, :]` where `w` has one entry
    /// per row — used to apply attention weights to value rows.
    pub fn scale_rows(&mut self, a: Value, w: Value) -> Value {
        let m = self.data(a);
        let wv = self.data(w);
        assert_eq!(
            m.rows(),
            wv.len(),
            "scale_rows: {} rows vs {} weights",
            m.rows(),
            wv.len()
        );
        let mut out = m.clone();
        for i in 0..out.rows() {
            let s = wv.as_slice()[i];
            out.row_mut(i).iter_mut().for_each(|x| *x *= s);
        }
        let rg = self.needs_grad(a) || self.needs_grad(w);
        self.push(out, Op::ScaleRows(a, w), rg)
    }

    /// Inverted-dropout: multiply by a constant 0/(1/keep) mask. The caller
    /// samples the mask so that evaluation mode is simply "don't call this".
    pub fn mask_mul(&mut self, a: Value, mask: Tensor) -> Value {
        let data = self.data(a).zip(&mask, |x, m| x * m);
        let rg = self.needs_grad(a);
        self.push(data, Op::MaskMul(a, mask), rg)
    }

    // ---- losses ----------------------------------------------------------------

    /// Mean binary cross-entropy over logits, computed in the numerically
    /// stable form `max(z,0) − z·t + ln(1 + e^{−|z|})`. This is the loss of
    /// the paper's Eqs. 9–10 with the sigmoid folded in.
    pub fn bce_with_logits(&mut self, logits: Value, targets: &Tensor) -> Value {
        let z = self.data(logits);
        assert_eq!(z.shape(), targets.shape(), "bce_with_logits shape mismatch");
        let n = z.len().max(1) as f32;
        let mut loss = 0.0;
        for (&zi, &ti) in z.as_slice().iter().zip(targets.as_slice()) {
            loss += zi.max(0.0) - zi * ti + (-(zi.abs())).exp().ln_1p();
        }
        let rg = self.needs_grad(logits);
        self.push(
            Tensor::scalar(loss / n),
            Op::BceWithLogits(logits, targets.clone()),
            rg,
        )
    }

    /// Mean squared error against constant targets (scalar output).
    pub fn mse_loss(&mut self, pred: Value, targets: &Tensor) -> Value {
        let p = self.data(pred);
        assert_eq!(p.shape(), targets.shape(), "mse_loss shape mismatch");
        let n = p.len().max(1) as f32;
        let loss: f32 = p
            .as_slice()
            .iter()
            .zip(targets.as_slice())
            .map(|(&a, &b)| (a - b) * (a - b))
            .sum();
        let rg = self.needs_grad(pred);
        self.push(
            Tensor::scalar(loss / n),
            Op::MseLoss(pred, targets.clone()),
            rg,
        )
    }

    // ---- backward -----------------------------------------------------------

    /// Reverse-mode sweep from a scalar `loss` node. Gradients accumulate on
    /// every `requires_grad` node reachable from `loss`.
    ///
    /// # Panics
    /// Panics when `loss` is not a scalar.
    pub fn backward(&mut self, loss: Value) {
        assert_eq!(
            self.data(loss).shape(),
            Shape::Scalar,
            "backward must start from a scalar loss"
        );
        self.nodes[loss.0].grad = Some(Tensor::scalar(1.0));
        for i in (0..=loss.0).rev() {
            if !self.nodes[i].requires_grad {
                continue;
            }
            let Some(g) = self.nodes[i].grad.take() else {
                continue;
            };
            self.propagate(i, &g);
            self.nodes[i].grad = Some(g);
        }
    }

    fn accum(&mut self, v: Value, delta: Tensor) {
        if !self.nodes[v.0].requires_grad {
            return;
        }
        match &mut self.nodes[v.0].grad {
            Some(g) => g.axpy(1.0, &delta),
            slot @ None => *slot = Some(delta),
        }
    }

    /// Apply the adjoint of node `i`'s op given its output gradient `g`.
    fn propagate(&mut self, i: usize, g: &Tensor) {
        // Ops are matched by value where cheap; tensors cloned out of
        // `self.nodes` where the borrow checker requires it.
        enum Deferred {
            None,
            One(Value, Tensor),
            Two(Value, Tensor, Value, Tensor),
            Many(Vec<(Value, Tensor)>),
        }
        let deferred = {
            let node = &self.nodes[i];
            match &node.op {
                Op::Input | Op::Param(_) => Deferred::None,
                Op::Add(a, b) => Deferred::Two(*a, g.clone(), *b, g.clone()),
                Op::AddRow(a, row) => {
                    let row_grad = linalg::sum_rows(g);
                    Deferred::Two(*a, g.clone(), *row, row_grad)
                }
                Op::Sub(a, b) => Deferred::Two(*a, g.clone(), *b, g.map(|x| -x)),
                Op::Mul(a, b) => {
                    let da = g.zip(&self.nodes[b.0].data, |x, y| x * y);
                    let db = g.zip(&self.nodes[a.0].data, |x, y| x * y);
                    Deferred::Two(*a, da, *b, db)
                }
                Op::Scale(a, s) => Deferred::One(*a, g.map(|x| x * s)),
                Op::AddScalar(a) => Deferred::One(*a, g.clone()),
                Op::Matmul(a, b) => {
                    let ta = &self.nodes[a.0].data;
                    let tb = &self.nodes[b.0].data;
                    // dA = g · Bᵀ reshaped to A's shape; dB = Aᵀ · g.
                    let da = linalg::matmul_nt(g, tb).reshape(ta.shape());
                    let db = linalg::matmul_tn(ta, g).reshape(tb.shape());
                    Deferred::Two(*a, da, *b, db)
                }
                Op::Relu(a) => {
                    let da = g.zip(
                        &self.nodes[a.0].data,
                        |gi, x| if x > 0.0 { gi } else { 0.0 },
                    );
                    Deferred::One(*a, da)
                }
                Op::Sigmoid(a) => {
                    let da = g.zip(&node.data, |gi, y| gi * y * (1.0 - y));
                    Deferred::One(*a, da)
                }
                Op::Tanh(a) => {
                    let da = g.zip(&node.data, |gi, y| gi * (1.0 - y * y));
                    Deferred::One(*a, da)
                }
                Op::Exp(a) => {
                    let da = g.zip(&node.data, |gi, y| gi * y);
                    Deferred::One(*a, da)
                }
                Op::Log(a) => {
                    let da = g.zip(&self.nodes[a.0].data, |gi, x| gi / x);
                    Deferred::One(*a, da)
                }
                Op::SoftmaxRows(a) => {
                    // Per row: dx = y ∘ (g − (g · y)), fused in linalg.
                    Deferred::One(*a, linalg::softmax_rows_backward(&node.data, g))
                }
                Op::Transpose(a) => {
                    let da = linalg::transpose(g).reshape(self.nodes[a.0].data.shape());
                    Deferred::One(*a, da)
                }
                Op::ConcatCols(parts) => {
                    let mut grads = Vec::with_capacity(parts.len());
                    let rows = node.data.rows();
                    let mut col = 0;
                    for &p in parts {
                        let t = &self.nodes[p.0].data;
                        let c = t.cols();
                        let mut dp = Tensor::zeros(Shape::Matrix(rows, c));
                        let gcols = node.data.cols();
                        for r in 0..rows {
                            let src = &g.as_slice()[r * gcols + col..r * gcols + col + c];
                            dp.row_mut(r).copy_from_slice(src);
                        }
                        grads.push((p, dp.reshape(t.shape())));
                        col += c;
                    }
                    Deferred::Many(grads)
                }
                Op::ConcatColsBcast(parts, rows) => {
                    let mut grads = Vec::with_capacity(parts.len());
                    let gcols = node.data.cols();
                    let mut col = 0;
                    for &p in parts {
                        let t = &self.nodes[p.0].data;
                        let c = t.cols();
                        let mut dp = Tensor::zeros(t.shape());
                        if t.rows() == *rows {
                            for r in 0..*rows {
                                let src = &g.as_slice()[r * gcols + col..r * gcols + col + c];
                                dp.row_mut(r).copy_from_slice(src);
                            }
                        } else {
                            // Broadcast operand: the adjoint of tiling is the
                            // sum over the tiled rows.
                            let dst = dp.as_mut_slice();
                            for r in 0..*rows {
                                let src = &g.as_slice()[r * gcols + col..r * gcols + col + c];
                                for (d, &s) in dst.iter_mut().zip(src) {
                                    *d += s;
                                }
                            }
                        }
                        grads.push((p, dp));
                        col += c;
                    }
                    Deferred::Many(grads)
                }
                Op::ConcatRows(parts) => {
                    let mut grads = Vec::with_capacity(parts.len());
                    let cols = node.data.cols();
                    let mut row = 0;
                    for &p in parts {
                        let t = &self.nodes[p.0].data;
                        let r = t.rows();
                        let slice = &g.as_slice()[row * cols..(row + r) * cols];
                        grads.push((p, Tensor::new(t.shape(), slice.to_vec())));
                        row += r;
                    }
                    Deferred::Many(grads)
                }
                Op::SliceCols(a, lo, _hi) => {
                    let t = &self.nodes[a.0].data;
                    let mut da = Tensor::zeros(t.shape());
                    let c = g.cols();
                    for r in 0..t.rows() {
                        let src = &g.as_slice()[r * c..(r + 1) * c];
                        da.row_mut(r)[*lo..*lo + c].copy_from_slice(src);
                    }
                    Deferred::One(*a, da)
                }
                Op::Row(a, idx) => {
                    let t = &self.nodes[a.0].data;
                    let mut da = Tensor::zeros(t.shape());
                    da.row_mut(*idx).copy_from_slice(g.as_slice());
                    Deferred::One(*a, da)
                }
                Op::GatherRows(table, indices) => {
                    let t = &self.nodes[table.0].data;
                    let mut dt = Tensor::zeros(t.shape());
                    let c = t.cols();
                    for (row, &idx) in indices.iter().enumerate() {
                        let src = &g.as_slice()[row * c..(row + 1) * c];
                        let dst = dt.row_mut(idx);
                        for (d, &s) in dst.iter_mut().zip(src) {
                            *d += s;
                        }
                    }
                    Deferred::One(*table, dt)
                }
                Op::Reshape(a, original) => Deferred::One(*a, g.clone().reshape(*original)),
                Op::SumAll(a) => {
                    let t = &self.nodes[a.0].data;
                    Deferred::One(*a, Tensor::full(t.shape(), g.item()))
                }
                Op::MeanAll(a) => {
                    let t = &self.nodes[a.0].data;
                    let n = t.len().max(1) as f32;
                    Deferred::One(*a, Tensor::full(t.shape(), g.item() / n))
                }
                Op::MeanRows(a) => {
                    let t = &self.nodes[a.0].data;
                    let r = t.rows().max(1) as f32;
                    let mut da = Tensor::zeros(t.shape());
                    for row in 0..t.rows() {
                        for (d, &gi) in da.row_mut(row).iter_mut().zip(g.as_slice()) {
                            *d = gi / r;
                        }
                    }
                    Deferred::One(*a, da)
                }
                Op::ScaleRows(a, w) => {
                    let ta = &self.nodes[a.0].data;
                    let tw = &self.nodes[w.0].data;
                    let mut da = g.clone();
                    for row in 0..da.rows() {
                        let s = tw.as_slice()[row];
                        da.row_mut(row).iter_mut().for_each(|x| *x *= s);
                    }
                    let mut dw = Tensor::zeros(tw.shape());
                    let c = ta.cols();
                    for row in 0..ta.rows() {
                        let grow = &g.as_slice()[row * c..(row + 1) * c];
                        dw.as_mut_slice()[row] = linalg::dot(grow, ta.row(row));
                    }
                    Deferred::Two(*a, da, *w, dw)
                }
                Op::MaskMul(a, mask) => Deferred::One(*a, g.zip(mask, |gi, m| gi * m)),
                Op::BceWithLogits(logits, targets) => {
                    let z = &self.nodes[logits.0].data;
                    let n = z.len().max(1) as f32;
                    let scale = g.item() / n;
                    let dz = z.zip(targets, |zi, ti| (stable_sigmoid(zi) - ti) * scale);
                    Deferred::One(*logits, dz)
                }
                Op::MseLoss(pred, targets) => {
                    let p = &self.nodes[pred.0].data;
                    let n = p.len().max(1) as f32;
                    let scale = 2.0 * g.item() / n;
                    let dp = p.zip(targets, |a, b| (a - b) * scale);
                    Deferred::One(*pred, dp)
                }
            }
        };
        match deferred {
            Deferred::None => {}
            Deferred::One(a, da) => self.accum(a, da),
            Deferred::Two(a, da, b, db) => {
                self.accum(a, da);
                self.accum(b, db);
            }
            Deferred::Many(grads) => {
                for (v, dv) in grads {
                    self.accum(v, dv);
                }
            }
        }
    }

    /// Flush gradients of every `Param` leaf into the store's gradient
    /// buffers (adding — the store may already hold gradients from other
    /// graphs in the same batch).
    pub fn accumulate_param_grads(&self, store: &mut ParamStore) {
        for node in &self.nodes {
            if let (Op::Param(id), Some(grad)) = (&node.op, &node.grad) {
                store.grad_mut(*id).axpy(1.0, grad);
            }
        }
    }

    /// Iterate over `(ParamId, gradient)` pairs of this tape without
    /// touching a store — used by data-parallel training workers that merge
    /// gradients on the main thread.
    pub fn param_grads(&self) -> impl Iterator<Item = (ParamId, &Tensor)> + '_ {
        self.nodes
            .iter()
            .filter_map(|node| match (&node.op, &node.grad) {
                (Op::Param(id), Some(grad)) => Some((*id, grad)),
                _ => None,
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::param::ParamStore;

    #[test]
    fn forward_values_are_eager() {
        let mut g = Graph::new();
        let a = g.input(Tensor::vector(&[1.0, 2.0]));
        let b = g.input(Tensor::vector(&[3.0, 4.0]));
        let c = g.add(a, b);
        assert_eq!(g.value(c).as_slice(), &[4.0, 6.0]);
        let d = g.mul(a, b);
        assert_eq!(g.value(d).as_slice(), &[3.0, 8.0]);
    }

    #[test]
    fn inputs_get_no_grad() {
        let mut g = Graph::new();
        let a = g.input(Tensor::scalar(2.0));
        let b = g.scale(a, 3.0);
        g.backward(b);
        assert!(g.grad(a).is_none());
    }

    #[test]
    fn simple_chain_rule() {
        // loss = sum((2x)^2) over x=[1,2]; dloss/dx = 8x.
        let mut store = ParamStore::new();
        let x = store.register("x", Tensor::vector(&[1.0, 2.0]));
        let mut g = Graph::new();
        let xv = g.param(&store, x);
        let y = g.scale(xv, 2.0);
        let y2 = g.mul(y, y);
        let loss = g.sum_all(y2);
        assert_eq!(g.value(loss).item(), 4.0 + 16.0);
        g.backward(loss);
        g.accumulate_param_grads(&mut store);
        assert_eq!(store.grad(x).as_slice(), &[8.0, 16.0]);
    }

    #[test]
    fn matmul_gradients_known_values() {
        // loss = sum(A·B); dA = 1·Bᵀ, dB = Aᵀ·1.
        let mut store = ParamStore::new();
        let a = store.register("a", Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]));
        let b = store.register("b", Tensor::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]));
        let mut g = Graph::new();
        let av = g.param(&store, a);
        let bv = g.param(&store, b);
        let c = g.matmul(av, bv);
        let loss = g.sum_all(c);
        g.backward(loss);
        g.accumulate_param_grads(&mut store);
        // dA[i,k] = sum_j B[k,j] = row sums of B.
        assert_eq!(store.grad(a).as_slice(), &[11.0, 15.0, 11.0, 15.0]);
        // dB[k,j] = sum_i A[i,k] = col sums of A.
        assert_eq!(store.grad(b).as_slice(), &[4.0, 4.0, 6.0, 6.0]);
    }

    #[test]
    fn gather_rows_scatter_adds_on_repeats() {
        let mut store = ParamStore::new();
        let e = store.register("e", Tensor::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]));
        let mut g = Graph::new();
        let ev = g.param(&store, e);
        let rows = g.gather_rows(ev, &[0, 0, 1]);
        let loss = g.sum_all(rows);
        g.backward(loss);
        g.accumulate_param_grads(&mut store);
        // Row 0 gathered twice → gradient 2 per element; row 1 once.
        assert_eq!(store.grad(e).as_slice(), &[2.0, 2.0, 1.0, 1.0]);
    }

    #[test]
    fn bce_with_logits_matches_naive_formula() {
        let mut g = Graph::new();
        let z = g.input(Tensor::vector(&[0.5, -1.5]));
        let t = Tensor::vector(&[1.0, 0.0]);
        let loss = g.bce_with_logits(z, &t);
        let naive = |z: f32, t: f32| {
            let p = stable_sigmoid(z);
            -(t * p.ln() + (1.0 - t) * (1.0 - p).ln())
        };
        let expected = (naive(0.5, 1.0) + naive(-1.5, 0.0)) / 2.0;
        assert!((g.value(loss).item() - expected).abs() < 1e-6);
    }

    #[test]
    fn bce_with_logits_is_stable_for_extreme_logits() {
        let mut g = Graph::new();
        let z = g.input(Tensor::vector(&[80.0, -80.0]));
        let t = Tensor::vector(&[1.0, 0.0]);
        let loss = g.bce_with_logits(z, &t);
        assert!(g.value(loss).item().is_finite());
        assert!(g.value(loss).item() < 1e-6);
    }

    #[test]
    fn softmax_rows_then_backward_runs() {
        let mut store = ParamStore::new();
        let x = store.register("x", Tensor::from_rows(&[&[1.0, 2.0, 3.0]]));
        let mut g = Graph::new();
        let xv = g.param(&store, x);
        let s = g.softmax_rows(xv);
        let first = g.slice_cols(s, 0, 1);
        let loss = g.sum_all(first);
        g.backward(loss);
        g.accumulate_param_grads(&mut store);
        // Gradient of softmax wrt its max-probability coordinate is negative
        // for the other coordinates.
        let grads = store.grad(x).as_slice().to_vec();
        assert!(grads[0] > 0.0 && grads[2] < 0.0);
        // Softmax gradient rows sum to ~0 (shift invariance).
        assert!(grads.iter().sum::<f32>().abs() < 1e-6);
    }

    #[test]
    fn concat_and_slice_round_trip_gradients() {
        let mut store = ParamStore::new();
        let a = store.register("a", Tensor::vector(&[1.0, 2.0]));
        let b = store.register("b", Tensor::vector(&[3.0]));
        let mut g = Graph::new();
        let av = g.param(&store, a);
        let bv = g.param(&store, b);
        let cat = g.concat_cols(&[av, bv]);
        assert_eq!(g.value(cat).as_slice(), &[1.0, 2.0, 3.0]);
        let right = g.slice_cols(cat, 1, 3);
        let loss = g.sum_all(right);
        g.backward(loss);
        g.accumulate_param_grads(&mut store);
        assert_eq!(store.grad(a).as_slice(), &[0.0, 1.0]);
        assert_eq!(store.grad(b).as_slice(), &[1.0]);
    }

    #[test]
    fn scale_rows_forward_and_backward() {
        let mut store = ParamStore::new();
        let a = store.register("a", Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]));
        let w = store.register("w", Tensor::vector(&[2.0, -1.0]));
        let mut g = Graph::new();
        let av = g.param(&store, a);
        let wv = g.param(&store, w);
        let out = g.scale_rows(av, wv);
        assert_eq!(g.value(out).as_slice(), &[2.0, 4.0, -3.0, -4.0]);
        let loss = g.sum_all(out);
        g.backward(loss);
        g.accumulate_param_grads(&mut store);
        assert_eq!(store.grad(a).as_slice(), &[2.0, 2.0, -1.0, -1.0]);
        assert_eq!(store.grad(w).as_slice(), &[3.0, 7.0]);
    }

    #[test]
    fn add_row_broadcasts_bias() {
        let mut store = ParamStore::new();
        let b = store.register("b", Tensor::vector(&[10.0, 20.0]));
        let mut g = Graph::new();
        let m = g.input(Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]));
        let bv = g.param(&store, b);
        let out = g.add_row(m, bv);
        assert_eq!(g.value(out).as_slice(), &[11.0, 22.0, 13.0, 24.0]);
        let loss = g.sum_all(out);
        g.backward(loss);
        g.accumulate_param_grads(&mut store);
        // Bias gradient is the column sums of dOut = all-ones → 2 per entry.
        assert_eq!(store.grad(b).as_slice(), &[2.0, 2.0]);
    }

    #[test]
    fn stable_sigmoid_extremes() {
        assert!((stable_sigmoid(0.0) - 0.5).abs() < 1e-7);
        assert!(stable_sigmoid(100.0) > 0.999_999);
        assert!(stable_sigmoid(-100.0) < 1e-6);
        assert!(stable_sigmoid(-100.0) >= 0.0);
    }

    #[test]
    #[should_panic(expected = "scalar loss")]
    fn backward_rejects_non_scalar() {
        let mut g = Graph::new();
        let a = g.input(Tensor::vector(&[1.0, 2.0]));
        g.backward(a);
    }

    #[test]
    fn reset_clears_tape_and_keeps_capacity() {
        let mut g = Graph::new();
        for _ in 0..8 {
            g.input(Tensor::scalar(1.0));
        }
        assert_eq!(g.len(), 8);
        g.reset();
        assert!(g.is_empty());
        // The tape is usable again after a reset.
        let a = g.input(Tensor::vector(&[1.0, 2.0]));
        let b = g.scale(a, 2.0);
        assert_eq!(g.value(b).as_slice(), &[2.0, 4.0]);
    }

    #[test]
    fn concat_cols_bcast_tiles_single_rows() {
        let mut g = Graph::new();
        let shared = g.input(Tensor::vector(&[9.0, 8.0]));
        let per_row = g.input(Tensor::from_rows(&[&[1.0], &[2.0], &[3.0]]));
        let cat = g.concat_cols_bcast(&[shared, per_row], 3);
        assert_eq!(g.value(cat).shape(), Shape::Matrix(3, 3));
        assert_eq!(
            g.value(cat).as_slice(),
            &[9.0, 8.0, 1.0, 9.0, 8.0, 2.0, 9.0, 8.0, 3.0]
        );
    }

    #[test]
    fn concat_cols_bcast_broadcast_grad_is_row_sum() {
        let mut store = ParamStore::new();
        let shared = store.register("s", Tensor::vector(&[1.0, 2.0]));
        let full = store.register("f", Tensor::from_rows(&[&[1.0], &[2.0], &[3.0]]));
        let mut g = Graph::new();
        let sv = g.param(&store, shared);
        let fv = g.param(&store, full);
        let cat = g.concat_cols_bcast(&[sv, fv], 3);
        let loss = g.sum_all(cat);
        g.backward(loss);
        g.accumulate_param_grads(&mut store);
        // The shared row is tiled into 3 rows → gradient 3 per element.
        assert_eq!(store.grad(shared).as_slice(), &[3.0, 3.0]);
        assert_eq!(store.grad(full).as_slice(), &[1.0, 1.0, 1.0]);
    }

    #[test]
    fn concat_cols_bcast_matches_plain_concat_for_full_rows() {
        let mut g = Graph::new();
        let a = g.input(Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]));
        let b = g.input(Tensor::from_rows(&[&[5.0], &[6.0]]));
        let plain = g.concat_cols(&[a, b]);
        let bcast = g.concat_cols_bcast(&[a, b], 2);
        assert_eq!(g.value(plain).as_slice(), g.value(bcast).as_slice());
    }

    #[test]
    #[should_panic(expected = "expected 1 or 3")]
    fn concat_cols_bcast_rejects_mismatched_rows() {
        let mut g = Graph::new();
        let a = g.input(Tensor::from_rows(&[&[1.0], &[2.0]]));
        g.concat_cols_bcast(&[a], 3);
    }

    #[test]
    fn grad_accumulates_across_fanout() {
        // loss = sum(x + x) → dx = 2.
        let mut store = ParamStore::new();
        let x = store.register("x", Tensor::scalar(3.0));
        let mut g = Graph::new();
        let xv = g.param(&store, x);
        let s = g.add(xv, xv);
        let loss = g.sum_all(s);
        g.backward(loss);
        g.accumulate_param_grads(&mut store);
        assert_eq!(store.grad(x).item(), 2.0);
    }
}
