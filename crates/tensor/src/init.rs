//! Parameter initializers.
//!
//! The paper initializes all deep-network parameters from a Gaussian with
//! μ = 0, σ = 0.05 (§V-A.5); [`gaussian`] with those defaults is therefore
//! the initializer used by every model in the reproduction. Xavier/Glorot is
//! provided for the ablation benches that probe initialization sensitivity.

use crate::shape::Shape;
use crate::tensor::Tensor;
use rand::Rng;
use rand_distr::{Distribution, Normal, Uniform};

/// The paper's initialization: Gaussian with μ = 0, σ = 0.05.
pub const PAPER_SIGMA: f32 = 0.05;

/// Sample a tensor from `N(mu, sigma²)`.
pub fn gaussian(shape: Shape, mu: f32, sigma: f32, rng: &mut impl Rng) -> Tensor {
    let normal = Normal::new(mu, sigma).expect("sigma must be finite and non-negative");
    let data = (0..shape.len()).map(|_| normal.sample(rng)).collect();
    Tensor::new(shape, data)
}

/// The paper's default initializer: `N(0, 0.05²)`.
pub fn paper_default(shape: Shape, rng: &mut impl Rng) -> Tensor {
    gaussian(shape, 0.0, PAPER_SIGMA, rng)
}

/// Xavier/Glorot uniform initialization `U(−a, a)` with
/// `a = sqrt(6 / (fan_in + fan_out))`, using the matrix view for fans.
pub fn xavier_uniform(shape: Shape, rng: &mut impl Rng) -> Tensor {
    let fan_in = shape.rows().max(1) as f32;
    let fan_out = shape.cols().max(1) as f32;
    let a = (6.0 / (fan_in + fan_out)).sqrt();
    let uniform = Uniform::new_inclusive(-a, a);
    let data = (0..shape.len()).map(|_| uniform.sample(rng)).collect();
    Tensor::new(shape, data)
}

/// Uniform initialization over `[lo, hi)`.
pub fn uniform(shape: Shape, lo: f32, hi: f32, rng: &mut impl Rng) -> Tensor {
    let dist = Uniform::new(lo, hi);
    let data = (0..shape.len()).map(|_| dist.sample(rng)).collect();
    Tensor::new(shape, data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn gaussian_moments_roughly_match() {
        let mut rng = StdRng::seed_from_u64(7);
        let t = gaussian(Shape::Matrix(100, 100), 0.0, 0.05, &mut rng);
        let mean = t.mean();
        let var = t.as_slice().iter().map(|v| (v - mean).powi(2)).sum::<f32>() / 9999.0;
        assert!(mean.abs() < 0.005, "mean {mean} too far from 0");
        assert!((var.sqrt() - 0.05).abs() < 0.005, "std {} off", var.sqrt());
    }

    #[test]
    fn xavier_respects_bound() {
        let mut rng = StdRng::seed_from_u64(7);
        let t = xavier_uniform(Shape::Matrix(30, 70), &mut rng);
        let a = (6.0f32 / 100.0).sqrt();
        assert!(t.as_slice().iter().all(|v| v.abs() <= a));
        // Should not be degenerate.
        assert!(t.sq_norm() > 0.0);
    }

    #[test]
    fn uniform_respects_range() {
        let mut rng = StdRng::seed_from_u64(7);
        let t = uniform(Shape::Vector(1000), -2.0, 3.0, &mut rng);
        assert!(t.as_slice().iter().all(|&v| (-2.0..3.0).contains(&v)));
    }

    #[test]
    fn seeded_init_is_deterministic() {
        let a = paper_default(Shape::Vector(16), &mut StdRng::seed_from_u64(42));
        let b = paper_default(Shape::Vector(16), &mut StdRng::seed_from_u64(42));
        assert_eq!(a, b);
    }
}
