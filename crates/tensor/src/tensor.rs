//! Dense row-major `f32` tensor.
//!
//! This is the plain (non-differentiable) numeric workhorse. The autograd
//! layer in [`crate::graph`] stores `Tensor`s as node payloads and gradient
//! buffers; all numeric kernels here are pure functions so they can be tested
//! against hand-computed values and reused by both forward and backward
//! passes.

use crate::shape::Shape;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A dense, row-major tensor of `f32` values with rank 0..=2.
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

impl Tensor {
    /// Build a tensor from a shape and a flat row-major buffer.
    ///
    /// # Panics
    /// Panics when `data.len() != shape.len()`.
    pub fn new(shape: Shape, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            shape.len(),
            "tensor data length {} does not match shape {shape}",
            data.len()
        );
        Tensor { shape, data }
    }

    /// A scalar tensor.
    pub fn scalar(v: f32) -> Self {
        Tensor::new(Shape::Scalar, vec![v])
    }

    /// A vector tensor from a slice.
    pub fn vector(values: &[f32]) -> Self {
        Tensor::new(Shape::Vector(values.len()), values.to_vec())
    }

    /// A matrix tensor from a flat row-major slice.
    pub fn matrix(rows: usize, cols: usize, values: &[f32]) -> Self {
        Tensor::new(Shape::Matrix(rows, cols), values.to_vec())
    }

    /// A matrix built from nested row slices (test convenience).
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged rows in Tensor::from_rows");
            data.extend_from_slice(row);
        }
        Tensor::new(Shape::Matrix(r, c), data)
    }

    /// All-zero tensor of the given shape.
    pub fn zeros(shape: Shape) -> Self {
        Tensor {
            shape,
            data: vec![0.0; shape.len()],
        }
    }

    /// All-one tensor of the given shape.
    pub fn ones(shape: Shape) -> Self {
        Tensor {
            shape,
            data: vec![1.0; shape.len()],
        }
    }

    /// Tensor filled with a constant.
    pub fn full(shape: Shape, v: f32) -> Self {
        Tensor {
            shape,
            data: vec![v; shape.len()],
        }
    }

    /// Identity matrix of size `n × n`.
    pub fn eye(n: usize) -> Self {
        let mut t = Tensor::zeros(Shape::Matrix(n, n));
        for i in 0..n {
            t.data[i * n + i] = 1.0;
        }
        t
    }

    /// The shape of this tensor.
    pub fn shape(&self) -> Shape {
        self.shape
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the tensor holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Rows when viewed as a matrix.
    pub fn rows(&self) -> usize {
        self.shape.rows()
    }

    /// Columns when viewed as a matrix.
    pub fn cols(&self) -> usize {
        self.shape.cols()
    }

    /// Flat row-major view of the data.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable flat view of the data.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consume into the flat buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// The single value of a scalar tensor.
    ///
    /// # Panics
    /// Panics when the tensor is not a scalar.
    pub fn item(&self) -> f32 {
        assert_eq!(
            self.shape,
            Shape::Scalar,
            "item() called on non-scalar tensor of shape {}",
            self.shape
        );
        self.data[0]
    }

    /// Element at `(row, col)` in the matrix view.
    pub fn at(&self, row: usize, col: usize) -> f32 {
        let c = self.cols();
        debug_assert!(row < self.rows() && col < c, "index out of bounds");
        self.data[row * c + col]
    }

    /// Set element at `(row, col)` in the matrix view.
    pub fn set(&mut self, row: usize, col: usize, v: f32) {
        let c = self.cols();
        debug_assert!(row < self.rows() && col < c, "index out of bounds");
        self.data[row * c + col] = v;
    }

    /// Borrow one row of the matrix view.
    pub fn row(&self, row: usize) -> &[f32] {
        let c = self.cols();
        &self.data[row * c..(row + 1) * c]
    }

    /// Mutably borrow one row of the matrix view.
    pub fn row_mut(&mut self, row: usize) -> &mut [f32] {
        let c = self.cols();
        &mut self.data[row * c..(row + 1) * c]
    }

    /// Reinterpret the buffer under a new shape with the same element count.
    pub fn reshape(mut self, shape: Shape) -> Self {
        assert_eq!(
            self.len(),
            shape.len(),
            "reshape from {} to {shape} changes element count",
            self.shape
        );
        self.shape = shape;
        self
    }

    /// Apply a function to every element, producing a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            shape: self.shape,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Combine two same-shape tensors elementwise.
    ///
    /// # Panics
    /// Panics when shapes differ.
    pub fn zip(&self, rhs: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
        assert_eq!(
            self.shape, rhs.shape,
            "elementwise op on mismatched shapes {} vs {}",
            self.shape, rhs.shape
        );
        Tensor {
            shape: self.shape,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }

    /// In-place `self += alpha * rhs` (axpy). Shapes must match.
    pub fn axpy(&mut self, alpha: f32, rhs: &Tensor) {
        assert_eq!(
            self.shape, rhs.shape,
            "axpy on mismatched shapes {} vs {}",
            self.shape, rhs.shape
        );
        for (a, &b) in self.data.iter_mut().zip(&rhs.data) {
            *a += alpha * b;
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements (0 for empty tensors).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Maximum element (−∞ for empty tensors).
    pub fn max(&self) -> f32 {
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Squared L2 norm of the buffer.
    pub fn sq_norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum()
    }

    /// True when every element is finite (no NaN/∞) — used by training-loop
    /// sanity assertions.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }

    /// Fill with zeros in place, keeping the allocation.
    pub fn zero_(&mut self) {
        self.data.iter_mut().for_each(|v| *v = 0.0);
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{} ", self.shape)?;
        match self.shape {
            Shape::Scalar => write!(f, "{}", self.data[0]),
            Shape::Vector(_) => write!(f, "{:?}", self.data),
            Shape::Matrix(r, _) => {
                writeln!(f, "[")?;
                for i in 0..r {
                    writeln!(f, "  {:?},", self.row(i))?;
                }
                write!(f, "]")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "does not match shape")]
    fn new_rejects_wrong_length() {
        Tensor::new(Shape::Matrix(2, 2), vec![1.0; 3]);
    }

    #[test]
    fn constructors() {
        assert_eq!(Tensor::scalar(2.5).item(), 2.5);
        assert_eq!(Tensor::vector(&[1.0, 2.0]).shape(), Shape::Vector(2));
        let m = Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(m.at(1, 0), 3.0);
        assert_eq!(Tensor::ones(Shape::Vector(3)).sum(), 3.0);
        assert_eq!(Tensor::full(Shape::Matrix(2, 2), 0.5).sum(), 2.0);
    }

    #[test]
    fn eye_has_unit_diagonal() {
        let i = Tensor::eye(3);
        assert_eq!(i.at(0, 0), 1.0);
        assert_eq!(i.at(1, 2), 0.0);
        assert_eq!(i.sum(), 3.0);
    }

    #[test]
    fn row_access_and_set() {
        let mut m = Tensor::zeros(Shape::Matrix(2, 3));
        m.set(1, 2, 9.0);
        assert_eq!(m.row(1), &[0.0, 0.0, 9.0]);
        m.row_mut(0)[1] = 4.0;
        assert_eq!(m.at(0, 1), 4.0);
    }

    #[test]
    fn reshape_preserves_data() {
        let v = Tensor::vector(&[1.0, 2.0, 3.0, 4.0]);
        let m = v.reshape(Shape::Matrix(2, 2));
        assert_eq!(m.at(1, 1), 4.0);
    }

    #[test]
    #[should_panic(expected = "changes element count")]
    fn reshape_rejects_size_change() {
        Tensor::vector(&[1.0, 2.0]).reshape(Shape::Matrix(2, 2));
    }

    #[test]
    fn map_zip_axpy() {
        let a = Tensor::vector(&[1.0, -2.0]);
        let b = Tensor::vector(&[3.0, 4.0]);
        assert_eq!(a.map(f32::abs).as_slice(), &[1.0, 2.0]);
        assert_eq!(a.zip(&b, |x, y| x * y).as_slice(), &[3.0, -8.0]);
        let mut c = a.clone();
        c.axpy(2.0, &b);
        assert_eq!(c.as_slice(), &[7.0, 6.0]);
    }

    #[test]
    fn reductions() {
        let t = Tensor::vector(&[1.0, 2.0, 3.0]);
        assert_eq!(t.sum(), 6.0);
        assert_eq!(t.mean(), 2.0);
        assert_eq!(t.max(), 3.0);
        assert_eq!(t.sq_norm(), 14.0);
    }

    #[test]
    fn finiteness_check() {
        assert!(Tensor::vector(&[1.0, 2.0]).all_finite());
        assert!(!Tensor::vector(&[1.0, f32::NAN]).all_finite());
        assert!(!Tensor::vector(&[f32::INFINITY]).all_finite());
    }

    #[test]
    fn zero_in_place() {
        let mut t = Tensor::ones(Shape::Vector(4));
        t.zero_();
        assert_eq!(t.sum(), 0.0);
    }

    #[test]
    fn empty_tensor_mean_is_zero() {
        assert_eq!(Tensor::zeros(Shape::Vector(0)).mean(), 0.0);
    }
}
