//! Property-based tests of the linear-algebra kernels: algebraic identities
//! that must hold (within f32 tolerance) for arbitrary matrices.

use od_tensor::{matmul, matmul_nt, matmul_tn, softmax_rows, sum_rows, transpose, Tensor};
use proptest::prelude::*;

fn mat(rows: usize, cols: usize) -> impl Strategy<Value = Tensor> {
    prop::collection::vec(-3.0f32..3.0, rows * cols)
        .prop_map(move |v| Tensor::matrix(rows, cols, &v))
}

fn close(a: &Tensor, b: &Tensor, tol: f32) -> bool {
    a.shape() == b.shape()
        && a.as_slice()
            .iter()
            .zip(b.as_slice())
            .all(|(x, y)| (x - y).abs() <= tol * (1.0 + x.abs().max(y.abs())))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn matmul_associates((a, b, c) in (mat(3, 4), mat(4, 2), mat(2, 5))) {
        let ab_c = matmul(&matmul(&a, &b), &c);
        let a_bc = matmul(&a, &matmul(&b, &c));
        prop_assert!(close(&ab_c, &a_bc, 1e-4));
    }

    #[test]
    fn transpose_reverses_matmul((a, b) in (mat(3, 4), mat(4, 2))) {
        // (AB)ᵀ = Bᵀ Aᵀ.
        let left = transpose(&matmul(&a, &b));
        let right = matmul(&transpose(&b), &transpose(&a));
        prop_assert!(close(&left, &right, 1e-5));
    }

    #[test]
    fn fused_transpose_kernels_match((a, b) in (mat(4, 3), mat(4, 5))) {
        // matmul_tn(a, b) = aᵀ·b ; matmul_nt over transposed b agrees.
        let fused = matmul_tn(&a, &b);
        let explicit = matmul(&transpose(&a), &b);
        prop_assert!(close(&fused, &explicit, 1e-5));
        let fused_nt = matmul_nt(&transpose(&a), &transpose(&b));
        prop_assert!(close(&fused_nt, &explicit, 1e-5));
    }

    #[test]
    fn identity_is_neutral(a in mat(4, 4)) {
        let i = Tensor::eye(4);
        prop_assert!(close(&matmul(&a, &i), &a, 1e-6));
        prop_assert!(close(&matmul(&i, &a), &a, 1e-6));
    }

    #[test]
    fn softmax_rows_are_distributions(a in mat(5, 7)) {
        let s = softmax_rows(&a);
        for r in 0..5 {
            let row = s.row(r);
            prop_assert!(row.iter().all(|&v| (0.0..=1.0).contains(&v)));
            let sum: f32 = row.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn softmax_preserves_argmax(a in mat(2, 6)) {
        let s = softmax_rows(&a);
        for r in 0..2 {
            let argmax_in = a.row(r)
                .iter()
                .enumerate()
                .max_by(|x, y| x.1.partial_cmp(y.1).unwrap())
                .unwrap()
                .0;
            let argmax_out = s.row(r)
                .iter()
                .enumerate()
                .max_by(|x, y| x.1.partial_cmp(y.1).unwrap())
                .unwrap()
                .0;
            prop_assert_eq!(argmax_in, argmax_out);
        }
    }

    #[test]
    fn sum_rows_is_linear((a, b) in (mat(3, 4), mat(3, 4))) {
        let sum_of_sums = {
            let mut s = sum_rows(&a);
            s.axpy(1.0, &sum_rows(&b));
            s
        };
        let sum_of_total = sum_rows(&a.zip(&b, |x, y| x + y));
        prop_assert!(close(&sum_of_sums, &sum_of_total, 1e-5));
    }

    #[test]
    fn matmul_distributes((a, b, c) in (mat(3, 4), mat(4, 2), mat(4, 2))) {
        // A(B + C) = AB + AC.
        let bc = b.zip(&c, |x, y| x + y);
        let left = matmul(&a, &bc);
        let mut right = matmul(&a, &b);
        right.axpy(1.0, &matmul(&a, &c));
        prop_assert!(close(&left, &right, 1e-4));
    }
}
