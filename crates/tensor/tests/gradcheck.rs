//! Finite-difference gradient checking for every differentiable op.
//!
//! This is the load-bearing invariant of the whole reproduction: if these
//! pass, any model composed from the ops trains the function it claims to.
//! Strategy: for a scalar loss `L(θ)` built from one parameter tensor θ, the
//! autograd gradient must match the central difference
//! `(L(θ + εeᵢ) − L(θ − εeᵢ)) / 2ε` in every coordinate.

use od_tensor::{Graph, ParamId, ParamStore, Shape, Tensor, Value};
use proptest::prelude::*;

/// Relative/absolute tolerance appropriate for f32 central differences.
const EPS: f32 = 1e-2;
const TOL: f32 = 2e-2;

/// Check autograd against central differences for `build`, which must record
/// a scalar loss from the single parameter value.
fn gradcheck(
    initial: Tensor,
    build: impl Fn(&mut Graph, &ParamStore, ParamId) -> Value,
) -> Result<(), String> {
    let mut store = ParamStore::new();
    let p = store.register("p", initial.clone());

    // Analytic gradient.
    let mut g = Graph::new();
    let loss = build(&mut g, &store, p);
    g.backward(loss);
    g.accumulate_param_grads(&mut store);
    let analytic = store.grad(p);

    // Numeric gradient, coordinate by coordinate.
    let eval = |store: &ParamStore| -> f32 {
        let mut g = Graph::new();
        let loss = build(&mut g, store, p);
        g.value(loss).item()
    };
    for i in 0..initial.len() {
        let orig = store.value(p).as_slice()[i];
        store.value_mut(p).as_mut_slice()[i] = orig + EPS;
        let plus = eval(&store);
        store.value_mut(p).as_mut_slice()[i] = orig - EPS;
        let minus = eval(&store);
        store.value_mut(p).as_mut_slice()[i] = orig;
        let numeric = (plus - minus) / (2.0 * EPS);
        let a = analytic.as_slice()[i];
        let denom = 1.0f32.max(a.abs()).max(numeric.abs());
        if (a - numeric).abs() / denom > TOL {
            return Err(format!("coordinate {i}: analytic {a} vs numeric {numeric}"));
        }
    }
    Ok(())
}

/// A proptest strategy for a parameter tensor with smooth-friendly values
/// (bounded away from ReLU kinks and log singularities by construction of
/// each test).
fn values(n: usize) -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(-2.0f32..2.0, n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn grad_add_mul_chain(v in values(6)) {
        let t = Tensor::matrix(2, 3, &v);
        gradcheck(t, |g, s, p| {
            let x = g.param(s, p);
            let y = g.add(x, x);
            let z = g.mul(y, x);
            g.sum_all(z)
        }).unwrap();
    }

    #[test]
    fn grad_matmul(v in values(6)) {
        let t = Tensor::matrix(2, 3, &v);
        gradcheck(t, |g, s, p| {
            let x = g.param(s, p);
            let c = g.input(Tensor::matrix(3, 2, &[0.5, -1.0, 1.5, 2.0, -0.5, 0.25]));
            let y = g.matmul(x, c);
            let y2 = g.mul(y, y);
            g.sum_all(y2)
        }).unwrap();
    }

    #[test]
    fn grad_matmul_both_sides(v in values(4)) {
        // x · xᵀ exercises the same parameter on both matmul slots.
        let t = Tensor::matrix(2, 2, &v);
        gradcheck(t, |g, s, p| {
            let x = g.param(s, p);
            let xt = g.transpose(x);
            let y = g.matmul(x, xt);
            g.sum_all(y)
        }).unwrap();
    }

    #[test]
    fn grad_sigmoid_tanh(v in values(5)) {
        let t = Tensor::vector(&v);
        gradcheck(t, |g, s, p| {
            let x = g.param(s, p);
            let a = g.sigmoid(x);
            let b = g.tanh(a);
            g.sum_all(b)
        }).unwrap();
    }

    #[test]
    fn grad_relu_away_from_kink(v in prop::collection::vec(0.3f32..2.0, 4)) {
        // Stay on the positive side so the finite difference is valid.
        let t = Tensor::vector(&v);
        gradcheck(t, |g, s, p| {
            let x = g.param(s, p);
            let y = g.relu(x);
            let z = g.mul(y, y);
            g.sum_all(z)
        }).unwrap();
    }

    #[test]
    fn grad_exp_log(v in prop::collection::vec(0.5f32..2.0, 4)) {
        let t = Tensor::vector(&v);
        gradcheck(t, |g, s, p| {
            let x = g.param(s, p);
            let y = g.log(x);
            let z = g.exp(y);
            let w = g.mul(z, y);
            g.sum_all(w)
        }).unwrap();
    }

    #[test]
    fn grad_softmax_rows(v in values(8)) {
        let t = Tensor::matrix(2, 4, &v);
        gradcheck(t, |g, s, p| {
            let x = g.param(s, p);
            let sm = g.softmax_rows(x);
            let picked = g.slice_cols(sm, 1, 3);
            let sq = g.mul(picked, picked);
            g.sum_all(sq)
        }).unwrap();
    }

    #[test]
    fn grad_concat_slice_row(v in values(6)) {
        let t = Tensor::matrix(3, 2, &v);
        gradcheck(t, |g, s, p| {
            let x = g.param(s, p);
            let cat = g.concat_cols(&[x, x]);
            let r = g.row(cat, 1);
            let sl = g.slice_cols(r, 1, 3);
            let sq = g.mul(sl, sl);
            g.sum_all(sq)
        }).unwrap();
    }

    #[test]
    fn grad_concat_rows(v in values(4)) {
        let t = Tensor::matrix(2, 2, &v);
        gradcheck(t, |g, s, p| {
            let x = g.param(s, p);
            let stacked = g.concat_rows(&[x, x, x]);
            let sq = g.mul(stacked, stacked);
            g.mean_all(sq)
        }).unwrap();
    }

    #[test]
    fn grad_gather_rows(v in values(8)) {
        let t = Tensor::matrix(4, 2, &v);
        gradcheck(t, |g, s, p| {
            let table = g.param(s, p);
            let rows = g.gather_rows(table, &[0, 2, 2, 3]);
            let sq = g.mul(rows, rows);
            g.sum_all(sq)
        }).unwrap();
    }

    #[test]
    fn grad_mean_rows_and_scale_rows(v in values(6)) {
        let t = Tensor::matrix(3, 2, &v);
        gradcheck(t, |g, s, p| {
            let x = g.param(s, p);
            let w = g.input(Tensor::vector(&[0.5, -1.0, 2.0]));
            let scaled = g.scale_rows(x, w);
            let pooled = g.mean_rows(scaled);
            let sq = g.mul(pooled, pooled);
            g.sum_all(sq)
        }).unwrap();
    }

    #[test]
    fn grad_scale_rows_weight_side(v in values(3)) {
        let t = Tensor::vector(&v);
        gradcheck(t, |g, s, p| {
            let w = g.param(s, p);
            let x = g.input(Tensor::matrix(3, 2, &[1.0, -0.5, 2.0, 0.25, -1.5, 1.0]));
            let scaled = g.scale_rows(x, w);
            let sq = g.mul(scaled, scaled);
            g.sum_all(sq)
        }).unwrap();
    }

    #[test]
    fn grad_add_row_bias(v in values(3)) {
        let t = Tensor::vector(&v);
        gradcheck(t, |g, s, p| {
            let b = g.param(s, p);
            let x = g.input(Tensor::matrix(2, 3, &[1.0, 2.0, -1.0, 0.5, -0.5, 1.5]));
            let y = g.add_row(x, b);
            let sq = g.mul(y, y);
            g.sum_all(sq)
        }).unwrap();
    }

    #[test]
    fn grad_bce_with_logits(v in values(4)) {
        let t = Tensor::vector(&v);
        gradcheck(t, |g, s, p| {
            let z = g.param(s, p);
            g.bce_with_logits(z, &Tensor::vector(&[1.0, 0.0, 1.0, 0.0]))
        }).unwrap();
    }

    #[test]
    fn grad_mse(v in values(4)) {
        let t = Tensor::vector(&v);
        gradcheck(t, |g, s, p| {
            let x = g.param(s, p);
            g.mse_loss(x, &Tensor::vector(&[0.5, -0.5, 1.0, 0.0]))
        }).unwrap();
    }

    #[test]
    fn grad_sub_scale_addscalar(v in values(4)) {
        let t = Tensor::vector(&v);
        gradcheck(t, |g, s, p| {
            let x = g.param(s, p);
            let a = g.scale(x, 1.7);
            let b = g.add_scalar(x, 0.3);
            let d = g.sub(a, b);
            let sq = g.mul(d, d);
            g.mean_all(sq)
        }).unwrap();
    }

    #[test]
    fn grad_transpose_reshape(v in values(6)) {
        let t = Tensor::matrix(2, 3, &v);
        gradcheck(t, |g, s, p| {
            let x = g.param(s, p);
            let xt = g.transpose(x);
            let r = g.reshape(xt, Shape::Matrix(2, 3));
            let y = g.mul(r, r);
            g.sum_all(y)
        }).unwrap();
    }
}

/// Deterministic composite check: a full attention block, the shape that the
/// model actually uses, gradient-checked end to end.
#[test]
fn grad_attention_composite() {
    let init = Tensor::matrix(
        4,
        4,
        &[
            0.2, -0.1, 0.4, 0.3, -0.2, 0.5, 0.1, -0.4, 0.3, 0.2, -0.3, 0.1, 0.0, -0.5, 0.2, 0.4,
        ],
    );
    gradcheck(init, |g, s, p| {
        let wq = g.param(s, p);
        let e = g.input(Tensor::matrix(
            3,
            4,
            &[
                0.5, -0.2, 0.1, 0.3, -0.1, 0.4, 0.2, -0.3, 0.2, 0.1, -0.4, 0.5,
            ],
        ));
        let q = g.matmul(e, wq);
        let kt = g.transpose(e);
        let scores = g.matmul(q, kt);
        let scaled = g.scale(scores, 0.5);
        let attn = g.softmax_rows(scaled);
        let out = g.matmul(attn, e);
        let sq = g.mul(out, out);
        g.sum_all(sq)
    })
    .unwrap();
}

/// Deterministic composite check: an MMoE-style gate (softmax over experts,
/// weighted sum) — the paper's Eqs. 6–7 shape.
#[test]
fn grad_mmoe_gate_composite() {
    let init = Tensor::matrix(4, 3, &[0.1; 12]);
    gradcheck(init, |g, s, p| {
        let wg = g.param(s, p);
        let q = g.input(Tensor::matrix(1, 4, &[0.5, -0.3, 0.2, 0.7]));
        let gate_logits = g.matmul(q, wg); // 1×3
        let gate = g.softmax_rows(gate_logits);
        let experts = g.input(Tensor::matrix(3, 2, &[1.0, 0.0, 0.0, 1.0, 0.5, 0.5]));
        let mixed = g.matmul(gate, experts); // 1×2
        let sq = g.mul(mixed, mixed);
        g.sum_all(sq)
    })
    .unwrap();
}

/// Deterministic composite check: broadcast column concat — the batched
/// PEC assembly shape (shared trunk rows tiled down a candidate batch).
#[test]
fn grad_concat_cols_bcast_composite() {
    let init = Tensor::matrix(1, 2, &[0.7, -0.4]);
    gradcheck(init, |g, s, p| {
        let shared = g.param(s, p); // 1×2, broadcast down 3 rows
        let per_row = g.input(Tensor::matrix(3, 2, &[1.0, -0.5, 2.0, 0.25, -1.5, 1.0]));
        let cat = g.concat_cols_bcast(&[shared, per_row], 3); // 3×4
        let sq = g.mul(cat, cat);
        g.sum_all(sq)
    })
    .unwrap();
}

/// Same op, gradient flowing through a full-row (non-broadcast) operand.
#[test]
fn grad_concat_cols_bcast_full_rows_side() {
    let init = Tensor::matrix(3, 2, &[1.0, -0.5, 2.0, 0.25, -1.5, 1.0]);
    gradcheck(init, |g, s, p| {
        let per_row = g.param(s, p);
        let shared = g.input(Tensor::matrix(1, 2, &[0.7, -0.4]));
        let cat = g.concat_cols_bcast(&[shared, per_row], 3);
        let sq = g.mul(cat, cat);
        g.sum_all(sq)
    })
    .unwrap();
}
