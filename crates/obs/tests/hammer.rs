//! Concurrency suite: counters under a multi-thread hammer, and
//! histogram snapshots taken *while* other threads are recording.

use od_obs::{Counter, LatencyHistogram, Registry};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// 8 threads × 100k increments must lose nothing: the sharded counter's
/// relaxed adds still sum exactly (each add hits exactly one shard).
#[test]
fn counter_hammer_loses_no_increments() {
    const THREADS: usize = 8;
    const PER_THREAD: u64 = 100_000;
    let c = Counter::new();
    std::thread::scope(|s| {
        for _ in 0..THREADS {
            let c = c.clone();
            s.spawn(move || {
                for _ in 0..PER_THREAD {
                    c.inc();
                }
            });
        }
    });
    assert_eq!(c.get(), THREADS as u64 * PER_THREAD);
}

/// Mixed-width adds across threads sum exactly too.
#[test]
fn counter_hammer_mixed_adds() {
    let c = Counter::new();
    std::thread::scope(|s| {
        for t in 1..=4u64 {
            let c = c.clone();
            s.spawn(move || {
                for _ in 0..10_000 {
                    c.add(t);
                }
            });
        }
    });
    assert_eq!(c.get(), 10_000 * (1 + 2 + 3 + 4));
}

/// Snapshots raced against recorders are always *internally consistent*
/// (count derives from the buckets, never a separate atomic) and
/// *monotone* (bucket counts only grow), and the final snapshot after
/// joining sees every sample.
#[test]
fn snapshot_while_recording_is_consistent_and_monotone() {
    const RECORDERS: usize = 4;
    const PER_THREAD: u64 = 50_000;
    let h = LatencyHistogram::new();
    let stop = Arc::new(AtomicBool::new(false));

    std::thread::scope(|s| {
        for t in 0..RECORDERS as u64 {
            let h = h.clone();
            s.spawn(move || {
                for i in 0..PER_THREAD {
                    // Deterministic spread over several octaves.
                    h.record((i * 7 + t) % 100_000);
                }
            });
        }
        let snapshotter = {
            let h = h.clone();
            let stop = Arc::clone(&stop);
            s.spawn(move || {
                let mut last_count = 0u64;
                let mut last_sum = 0u64;
                let mut snaps = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let snap = h.snapshot();
                    let count = snap.count();
                    assert!(
                        count >= last_count,
                        "bucket totals went backwards: {count} < {last_count}"
                    );
                    assert!(snap.sum >= last_sum, "sum went backwards");
                    assert!(
                        count <= RECORDERS as u64 * PER_THREAD,
                        "snapshot invented samples"
                    );
                    // Quantiles on a mid-storm snapshot must still be
                    // well-formed (max is tracked separately from the
                    // buckets, so allow one bucket width of skew).
                    if count > 0 {
                        let p99 = snap.quantile(0.99);
                        assert!(p99 <= 100_000 + 100_000 / 16);
                    }
                    last_count = count;
                    last_sum = snap.sum;
                    snaps += 1;
                }
                snaps
            })
        };
        // Recorders finish when the scope joins them; signal the
        // snapshotter afterwards via a sentinel thread ordering: simplest
        // is to join recorders implicitly by ending the loop spawns above,
        // but scope joins at block end — so spin the snapshotter down on a
        // timer instead.
        std::thread::sleep(std::time::Duration::from_millis(50));
        stop.store(true, Ordering::Relaxed);
        let snaps = snapshotter.join().expect("snapshotter must not panic");
        assert!(snaps > 0, "snapshotter never ran");
    });

    let fin = h.snapshot();
    assert_eq!(
        fin.count(),
        RECORDERS as u64 * PER_THREAD,
        "final snapshot must see every sample"
    );
}

/// Registering from many threads while snapshotting must neither dead-lock
/// nor drop entries.
#[test]
fn registry_is_thread_safe_under_registration_and_snapshot() {
    let reg: &'static Registry = Box::leak(Box::new(Registry::new()));
    std::thread::scope(|s| {
        for t in 0..4 {
            s.spawn(move || {
                for i in 0..50 {
                    let c = reg.counter("shared_total", "hammered");
                    c.add(1);
                    if i % 10 == t {
                        let _ = reg.snapshot().to_prometheus();
                    }
                }
            });
        }
    });
    assert_eq!(reg.snapshot().counter("shared_total"), 200);
}
