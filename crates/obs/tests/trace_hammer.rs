//! Race test for the trace ring: many threads begin/record/end traces
//! while a reader snapshots concurrently. Pins the concurrency contract:
//!
//! - no torn spans — every captured trace is well-formed (unique span
//!   ids, one root, children nested in their parents);
//! - bounded memory — the ring never holds more than its capacity, and
//!   span buffers never exceed `MAX_SPANS`;
//! - in-order eviction — surviving admission numbers are unique, and the
//!   oldest survivor is no older than `pushed - capacity - shed` (a slot
//!   only ever moves forward in seq, modulo traces shed to a reader
//!   holding the slot lock).

use od_obs::clock;
use od_obs::trace::{check_well_formed, TraceConfig, Tracer};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

#[test]
fn hammer_ring_with_concurrent_reader() {
    let tracer = Arc::new(Tracer::new());
    tracer.enable(TraceConfig {
        slow_ns: 0, // keep everything: maximum ring churn
        sample_every: 0,
    });

    const THREADS: usize = 6;
    const TRACES_PER_THREAD: usize = 2_000;
    let stop = Arc::new(AtomicBool::new(false));

    // A concurrent reader snapshotting mid-storm: every trace it sees
    // must already be fully assembled (the ring only holds completed
    // traces), so well-formedness under fire is the torn-span check.
    let reader = {
        let tracer = Arc::clone(&tracer);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut seen = 0u64;
            while !stop.load(Ordering::Relaxed) {
                for t in tracer.snapshot(0, false, 0) {
                    check_well_formed(&t).expect("mid-storm trace well-formed");
                    seen += 1;
                }
            }
            seen
        })
    };

    let writers: Vec<_> = (0..THREADS)
        .map(|w| {
            let tracer = Arc::clone(&tracer);
            std::thread::spawn(move || {
                for i in 0..TRACES_PER_THREAD {
                    let t0 = clock::now();
                    let ctx = tracer.begin(&format!("w{w}-{i}"));
                    let inner_end = clock::now();
                    let spans = 1 + (i % 5);
                    let mut last = ctx;
                    for s in 0..spans {
                        let names = ["parse", "queue_wait", "forward", "scan", "write"];
                        let id = tracer.record(last, names[s % names.len()], t0, inner_end);
                        last = last.child(id.max(last.span_id));
                    }
                    tracer.end(ctx, "request", t0, clock::now(), i % 97 == 0);
                }
            })
        })
        .collect();
    for w in writers {
        w.join().expect("writer");
    }
    stop.store(true, Ordering::Relaxed);
    let read_mid_storm = reader.join().expect("reader");

    let stats = tracer.stats();
    let total = (THREADS * TRACES_PER_THREAD) as u64;
    assert_eq!(stats.started + stats.no_slot, total);
    // slow_ns = 0 keeps every started trace (`shed` counts the subset of
    // kept traces lost to the concurrent reader holding a slot lock).
    assert_eq!(stats.kept, stats.started);
    assert!(stats.shed <= stats.kept);
    assert_eq!(stats.dropped, 0);

    let survivors = tracer.snapshot(0, false, 0);
    assert!(survivors.len() <= 256, "ring overgrew: {}", survivors.len());
    assert!(!survivors.is_empty());

    // Unique seqs, newest-first, and strictly bounded staleness: a slot
    // holds the newest trace that hashed to it, so nothing older than
    // (pushed - capacity - shed) can survive.
    let mut seqs: Vec<u64> = survivors.iter().map(|t| t.seq).collect();
    let sorted = {
        let mut s = seqs.clone();
        s.sort_unstable_by(|a, b| b.cmp(a));
        s.dedup();
        s
    };
    assert_eq!(sorted, seqs, "snapshot not unique/newest-first");
    seqs.sort_unstable();
    let oldest = seqs[0];
    // Each shed lets one slot keep an occupant a further lap (256 seqs)
    // older than the newest push; otherwise slots only move forward.
    let floor = stats.kept.saturating_sub(256 * (stats.shed + 1));
    assert!(
        oldest >= floor,
        "survivor seq {oldest} older than eviction floor {floor}"
    );

    // Every survivor is fully assembled and bounded.
    for t in &survivors {
        check_well_formed(t).expect("final trace well-formed");
        assert!(t.spans.len() <= od_obs::trace::MAX_SPANS);
    }
    // The reader actually raced the writers.
    assert!(read_mid_storm > 0, "reader never observed a trace");
}
