//! Property tests pinning the histogram's two core contracts:
//!
//! 1. **Bucket bounds** — every recorded value lies inside the inclusive
//!    bounds of the bucket it was binned into, and quantile estimates are
//!    conservative: at or above the true quantile, within one bucket
//!    width, and never above the exactly-tracked max.
//! 2. **Merge algebra** — snapshot merge is associative and commutative,
//!    with the empty snapshot as identity, and merging two histograms
//!    equals recording their samples into one.

use od_obs::{bucket_bounds, bucket_index, HistogramSnapshot, LatencyHistogram};
use proptest::collection::vec;
use proptest::prelude::*;

/// Values spanning every octave the histogram bins, plus the clamp range:
/// a raw 64-bit draw shifted right by a uniform amount is log-uniform-ish,
/// hitting the exact region (<32), µs/ms/s-scale latencies, and the
/// overflow tail with comparable probability.
fn value() -> impl Strategy<Value = u64> {
    (0u32..64, 0u64..u64::MAX).prop_map(|(shift, raw)| raw >> shift)
}

fn snapshot_of(values: &[u64]) -> HistogramSnapshot {
    let h = LatencyHistogram::new();
    for &v in values {
        h.record(v);
    }
    h.snapshot()
}

proptest! {
    #[test]
    fn recorded_value_lies_within_its_bucket(v in value()) {
        let (lo, hi) = bucket_bounds(bucket_index(v));
        prop_assert!(lo <= v && v <= hi,
            "value {v} binned into [{lo}, {hi}]");
    }

    #[test]
    fn bucket_index_is_monotone(a in value(), b in value()) {
        let (a, b) = (a.min(b), a.max(b));
        prop_assert!(bucket_index(a) <= bucket_index(b),
            "smaller value must never land in a later bucket");
    }

    #[test]
    fn quantile_estimates_are_conservative_and_tight(
        mut values in vec(value(), 1..200),
        q in 0.0f64..=1.0,
    ) {
        let snap = snapshot_of(&values);
        values.sort_unstable();
        let rank = ((q * values.len() as f64).ceil() as usize).clamp(1, values.len());
        let truth = values[rank - 1];
        let est = snap.quantile(q);
        // Never below the true quantile…
        prop_assert!(est >= truth, "estimate {est} under true quantile {truth}");
        // …never above the true quantile's bucket upper bound (≤ 6.25%
        // relative error), and never above the exact max.
        let (_, hi) = bucket_bounds(bucket_index(truth));
        prop_assert!(est <= hi.min(snap.max),
            "estimate {est} above bucket bound {hi} / max {}", snap.max);
    }

    #[test]
    fn count_sum_max_are_exact(values in vec(value(), 0..200)) {
        let snap = snapshot_of(&values);
        prop_assert_eq!(snap.count(), values.len() as u64);
        // Sums of u64 samples can overflow in theory; these strategies stay
        // far below that, so the tracked sum is exact.
        let total: u128 = values.iter().map(|&v| v as u128).sum();
        if total <= u64::MAX as u128 {
            prop_assert_eq!(snap.sum, total as u64);
        }
        prop_assert_eq!(snap.max, values.iter().copied().max().unwrap_or(0));
    }

    #[test]
    fn merge_is_associative_and_commutative(
        a in vec(value(), 0..100),
        b in vec(value(), 0..100),
        c in vec(value(), 0..100),
    ) {
        let (sa, sb, sc) = (snapshot_of(&a), snapshot_of(&b), snapshot_of(&c));

        // (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c)
        let mut left = sa.clone();
        left.merge(&sb);
        left.merge(&sc);
        let mut bc = sb.clone();
        bc.merge(&sc);
        let mut right = sa.clone();
        right.merge(&bc);
        prop_assert_eq!(&left, &right, "merge must be associative");

        // a ⊕ b == b ⊕ a
        let mut ab = sa.clone();
        ab.merge(&sb);
        let mut ba = sb.clone();
        ba.merge(&sa);
        prop_assert_eq!(&ab, &ba, "merge must be commutative");

        // identity
        let mut with_empty = sa.clone();
        with_empty.merge(&HistogramSnapshot::empty());
        prop_assert_eq!(&with_empty, &sa, "empty must be the identity");
    }

    #[test]
    fn merge_equals_recording_together(
        a in vec(value(), 0..100),
        b in vec(value(), 0..100),
    ) {
        let mut merged = snapshot_of(&a);
        merged.merge(&snapshot_of(&b));
        let mut both = a.clone();
        both.extend_from_slice(&b);
        prop_assert_eq!(merged, snapshot_of(&both));
    }

    #[test]
    fn delta_since_recovers_the_window(
        before in vec(value(), 0..100),
        after in vec(value(), 0..100),
    ) {
        let h = LatencyHistogram::new();
        for &v in &before {
            h.record(v);
        }
        let early = h.snapshot();
        for &v in &after {
            h.record(v);
        }
        let delta = h.snapshot().delta_since(&early);
        prop_assert_eq!(delta.count(), after.len() as u64);
        let window: u128 = after.iter().map(|&v| v as u128).sum();
        if window <= u64::MAX as u128 {
            prop_assert_eq!(delta.sum, window as u64);
        }
    }
}
