//! Prometheus exposition lint: render a snapshot and parse it back,
//! checking the text-format invariants a real scraper relies on:
//!
//! - every sample line is `name{labels} value` with a legal metric name;
//! - every sample's base name was declared by a preceding `# TYPE` line;
//! - histogram `_bucket` series are cumulative and non-decreasing in
//!   `le` order, end with `le="+Inf"`, and the `+Inf` count equals the
//!   `_count` sample;
//! - no duplicate `(name, labels)` sample lines;
//! - OpenMetrics exemplars (`… # {trace_id="…"} value`) appear only on
//!   `_bucket` lines, carry a 16-hex-digit `trace_id`, and their value
//!   lies at or below the bucket's `le` bound.

use od_obs::Registry;
use std::collections::{HashMap, HashSet};

/// A parsed sample line.
#[derive(Debug)]
struct Sample {
    name: String,
    labels: Vec<(String, String)>,
    value: f64,
    exemplar: Option<(Vec<(String, String)>, f64)>,
}

fn parse_labels(block: &str) -> Vec<(String, String)> {
    // `k="v",k2="v2"` — values may contain escaped quotes.
    let mut out = Vec::new();
    let mut rest = block;
    while !rest.is_empty() {
        let eq = rest.find("=\"").expect("label must be k=\"v\"");
        let key = rest[..eq].trim_start_matches(',').to_string();
        let mut val = String::new();
        let mut chars = rest[eq + 2..].char_indices();
        let mut consumed = eq + 2;
        let mut escaped = false;
        for (i, c) in &mut chars {
            consumed = eq + 2 + i + c.len_utf8();
            if escaped {
                val.push(c);
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                break;
            } else {
                val.push(c);
            }
        }
        out.push((key, val));
        rest = &rest[consumed..];
    }
    out
}

fn parse(text: &str) -> (HashMap<String, String>, Vec<Sample>) {
    let mut types = HashMap::new();
    let mut samples = Vec::new();
    let name_ok = |n: &str| -> bool {
        n.chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
    };
    for line in text.lines() {
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut it = rest.splitn(2, ' ');
            let name = it.next().expect("TYPE needs a name");
            let kind = it.next().expect("TYPE needs a kind");
            assert!(name_ok(name), "illegal metric name {name:?}");
            assert!(
                ["counter", "gauge", "histogram"].contains(&kind),
                "unknown TYPE {kind:?}"
            );
            assert!(
                types.insert(name.to_string(), kind.to_string()).is_none(),
                "duplicate TYPE for {name}"
            );
            continue;
        }
        if line.starts_with('#') {
            continue; // HELP or comment
        }
        // An OpenMetrics exemplar rides after ` # ` on a sample line:
        // `name{labels} value # {k="v",…} exemplar_value`.
        let (body, exemplar) = match line.split_once(" # ") {
            Some((body, ex)) => {
                let ex = ex.trim();
                let rest = ex
                    .strip_prefix('{')
                    .expect("exemplar must open a label set");
                let close = rest.find('}').expect("unclosed exemplar label set");
                let labels = parse_labels(&rest[..close]);
                let val = rest[close + 1..].trim();
                let val: f64 = val
                    .parse()
                    .unwrap_or_else(|_| panic!("bad exemplar value in {line:?}"));
                (body, Some((labels, val)))
            }
            None => (line, None),
        };
        let (series, value) = body.rsplit_once(' ').expect("sample line needs a value");
        let value: f64 = if value == "+Inf" {
            f64::INFINITY
        } else {
            value
                .parse()
                .unwrap_or_else(|_| panic!("bad value in {line:?}"))
        };
        let (name, labels) = match series.split_once('{') {
            Some((n, rest)) => {
                let body = rest.strip_suffix('}').expect("unclosed label block");
                (n.to_string(), parse_labels(body))
            }
            None => (series.to_string(), Vec::new()),
        };
        assert!(name_ok(&name), "illegal metric name {name:?}");
        samples.push(Sample {
            name,
            labels,
            value,
            exemplar,
        });
    }
    (types, samples)
}

/// Base name of a sample (strips histogram suffixes).
fn base(name: &str) -> &str {
    name.strip_suffix("_bucket")
        .or_else(|| name.strip_suffix("_sum"))
        .or_else(|| name.strip_suffix("_count"))
        .unwrap_or(name)
}

fn fixture() -> Registry {
    let reg = Registry::new();
    reg.counter("od_test_requests_total", "Accepted requests")
        .add(12_345);
    reg.gauge("od_test_queue_depth", "Requests queued").set(7);
    reg.float_gauge("od_test_theta", "Learnable θ").set(0.41);
    let h = reg.histogram("od_test_wait_ns", "Queue wait");
    for v in [0u64, 3, 17, 900, 901, 65_536, 1_000_000, 123_456_789] {
        h.record(v);
    }
    // Tail-sampled traces stamp exemplars into their sample's bucket.
    h.record_exemplar(123_456_790, 0x00c0_ffee);
    h.record_exemplar(902, 0xfade_dbee);
    // Labeled + merged variants exercise the grouping logic.
    let w0 = reg.histogram_with("od_test_forward_ns", "Forward time", &[("worker", "0")]);
    let w1 = reg.histogram_with("od_test_forward_ns", "Forward time", &[("worker", "1")]);
    w0.record(500);
    w1.record(1_500);
    reg.counter("od_test_requests_total", "Accepted requests")
        .add(5); // merges

    // Retrieval-shaped series: the same one counter/histogram name fanned
    // out across tier labels (how od-retrieval registers), plus a unit
    // float gauge (sampled recall) — exercises label round-trips where
    // the label value, not the name, distinguishes the series.
    reg.counter_with(
        "od_test_retrieval_total",
        "Retrievals by tier",
        &[("tier", "exact")],
    )
    .add(3);
    reg.counter_with(
        "od_test_retrieval_total",
        "Retrievals by tier",
        &[("tier", "pruned")],
    )
    .add(97);
    let se = reg.histogram_with("od_test_scanned", "Pairs scanned", &[("tier", "exact")]);
    let sp = reg.histogram_with("od_test_scanned", "Pairs scanned", &[("tier", "pruned")]);
    for v in [39_800u64, 39_800, 39_800] {
        se.record(v);
    }
    for v in [2_912u64, 3_104, 2_880] {
        sp.record(v);
    }
    reg.float_gauge("od_test_recall", "Sampled recall@k")
        .set(0.9992);

    // HTTP-tier-shaped series (how od-http registers): one counter name
    // fanned out across status-code labels — numeric label values must
    // round-trip as strings, not numbers — and one histogram name fanned
    // across route labels, plus an up/down readiness gauge.
    for (code, n) in [("200", 9_000u64), ("429", 31), ("503", 4), ("504", 2)] {
        reg.counter_with(
            "od_test_http_responses_total",
            "Responses by code",
            &[("code", code)],
        )
        .add(n);
    }
    let re = reg.histogram_with("od_test_http_e2e_ns", "Request e2e", &[("route", "score")]);
    let rr = reg.histogram_with(
        "od_test_http_e2e_ns",
        "Request e2e",
        &[("route", "recommend")],
    );
    for v in [21_000u64, 48_000, 1_900_000] {
        re.record(v);
    }
    rr.record(310_000);
    reg.gauge("od_test_http_draining", "1 while draining")
        .set(1);
    reg
}

#[test]
fn exposition_parses_back_with_valid_structure() {
    let reg = fixture();
    let text = reg.snapshot().to_prometheus();
    let (types, samples) = parse(&text);
    assert!(!samples.is_empty());

    // Every sample's base name must have a TYPE, and histogram-suffixed
    // names must belong to histogram-typed metrics.
    for s in &samples {
        let b = base(&s.name);
        let kind = types
            .get(b)
            .unwrap_or_else(|| panic!("sample {} has no TYPE declaration", s.name));
        if s.name != b {
            assert_eq!(kind, "histogram", "{} suffix on non-histogram", s.name);
        }
    }

    // No duplicate (name, labels) pairs.
    let mut seen = HashSet::new();
    for s in &samples {
        let key = format!("{}{:?}", s.name, s.labels);
        assert!(
            seen.insert(key),
            "duplicate sample {} {:?}",
            s.name,
            s.labels
        );
    }

    // Merged counter: 12345 + 5.
    let c = samples
        .iter()
        .find(|s| s.name == "od_test_requests_total")
        .expect("counter sample");
    assert_eq!(c.value, 12_350.0);

    // Tier-labeled counters stay distinct series under one TYPE: the
    // label value alone must round-trip each count.
    let tier = |want: &str| {
        samples
            .iter()
            .find(|s| {
                s.name == "od_test_retrieval_total"
                    && s.labels == vec![("tier".to_string(), want.to_string())]
            })
            .unwrap_or_else(|| panic!("missing tier={want} sample"))
            .value
    };
    assert_eq!(tier("exact"), 3.0);
    assert_eq!(tier("pruned"), 97.0);

    // Status-code fanout (the od-http overload ladder): numeric-looking
    // label values must round-trip verbatim as strings.
    let code = |want: &str| {
        samples
            .iter()
            .find(|s| {
                s.name == "od_test_http_responses_total"
                    && s.labels == vec![("code".to_string(), want.to_string())]
            })
            .unwrap_or_else(|| panic!("missing code={want} sample"))
            .value
    };
    assert_eq!(code("200"), 9_000.0);
    assert_eq!(code("429"), 31.0);
    assert_eq!(code("503"), 4.0);
    assert_eq!(code("504"), 2.0);

    // Route-labeled histograms keep their per-route counts distinct.
    let e2e_count = |route: &str| {
        samples
            .iter()
            .find(|s| {
                s.name == "od_test_http_e2e_ns_count"
                    && s.labels == vec![("route".to_string(), route.to_string())]
            })
            .unwrap_or_else(|| panic!("missing route={route} _count sample"))
            .value
    };
    assert_eq!(e2e_count("score"), 3.0);
    assert_eq!(e2e_count("recommend"), 1.0);
}

#[test]
fn exemplars_are_wellformed_and_bucket_scoped() {
    let reg = fixture();
    let text = reg.snapshot().to_prometheus();
    let (_, samples) = parse(&text);

    let with_ex: Vec<&Sample> = samples.iter().filter(|s| s.exemplar.is_some()).collect();
    assert_eq!(
        with_ex.len(),
        2,
        "fixture records exactly two exemplars (one per bucket)"
    );
    for s in &samples {
        let Some((labels, value)) = &s.exemplar else {
            continue;
        };
        // Exemplars only attach to histogram bucket series.
        assert!(
            s.name.ends_with("_bucket"),
            "exemplar on non-bucket sample {}",
            s.name
        );
        // trace_id label, 16 lower-case hex digits.
        let tid = labels
            .iter()
            .find(|(k, _)| k == "trace_id")
            .map(|(_, v)| v.as_str())
            .unwrap_or_else(|| panic!("exemplar on {} lacks trace_id", s.name));
        assert_eq!(tid.len(), 16, "trace_id {tid:?} not 16 hex digits");
        assert!(tid
            .chars()
            .all(|c| c.is_ascii_hexdigit() && !c.is_ascii_uppercase()));
        // The exemplar's value must lie at or below the bucket bound.
        let le = s
            .labels
            .iter()
            .find(|(k, _)| k == "le")
            .map(|(_, v)| {
                if v == "+Inf" {
                    f64::INFINITY
                } else {
                    v.parse::<f64>().expect("numeric le")
                }
            })
            .expect("_bucket carries le");
        assert!(
            *value <= le,
            "exemplar value {value} above bucket le {le} on {}",
            s.name
        );
    }
    assert!(
        with_ex
            .iter()
            .any(|s| s.exemplar.as_ref().unwrap().1 == 123_456_790.0),
        "tail exemplar survived to the exposition"
    );
}

#[test]
fn histogram_buckets_are_cumulative_and_reconcile() {
    let reg = fixture();
    let text = reg.snapshot().to_prometheus();
    let (_, samples) = parse(&text);

    // Group _bucket samples per (base name, non-le labels).
    type SeriesKey = (String, Vec<(String, String)>);
    let mut series: HashMap<SeriesKey, Vec<(f64, f64)>> = HashMap::new();
    for s in &samples {
        if let Some(b) = s.name.strip_suffix("_bucket") {
            let le = s
                .labels
                .iter()
                .find(|(k, _)| k == "le")
                .map(|(_, v)| {
                    if v == "+Inf" {
                        f64::INFINITY
                    } else {
                        v.parse::<f64>().expect("numeric le")
                    }
                })
                .expect("_bucket must carry le");
            let others: Vec<(String, String)> = s
                .labels
                .iter()
                .filter(|(k, _)| k != "le")
                .cloned()
                .collect();
            series
                .entry((b.to_string(), others))
                .or_default()
                .push((le, s.value));
        }
    }
    assert!(!series.is_empty(), "fixture must produce histogram series");
    for ((b, labels), buckets) in &series {
        // le strictly increasing as emitted, counts non-decreasing,
        // terminated by +Inf.
        for w in buckets.windows(2) {
            assert!(w[0].0 < w[1].0, "{b}: le not increasing");
            assert!(w[0].1 <= w[1].1, "{b}: cumulative count decreased");
        }
        let (last_le, inf_count) = *buckets.last().unwrap();
        assert!(last_le.is_infinite(), "{b}: missing +Inf bucket");
        // +Inf equals the _count sample with the same label set.
        let count = samples
            .iter()
            .find(|s| s.name == format!("{b}_count") && &s.labels == labels)
            .unwrap_or_else(|| panic!("{b}{labels:?}: no matching _count sample"));
        assert_eq!(inf_count, count.value, "{b}{labels:?}: +Inf != _count");
    }
}
