//! A cheap monotonic stamp clock for stage timing.
//!
//! The serving engine reads the clock up to seven times per request; at
//! `std::time::Instant` cost (~35 ns per vDSO `clock_gettime`) the reads
//! alone eat ~2% of a ~12 µs request, which is most of the 3% overhead
//! budget the ci.sh gate enforces. On x86-64 this module reads the TSC
//! directly (`rdtsc`, ~8 ns) and converts tick deltas to nanoseconds with
//! a fixed-point scale calibrated once against `Instant` — the same trick
//! the kernel's `tsc` clocksource (and every production profiler) uses.
//! Elsewhere it falls back to `Instant` against a process-wide epoch.
//!
//! Stamps are opaque `u64` ticks: only *differences* between two stamps
//! from this process mean anything, and [`ns_between`] is saturating, so
//! the worst a skewed reading can produce is a zero-length stage, never a
//! panic or a giant bogus sample. On any machine the kernel itself trusts
//! the TSC (`constant_tsc nonstop_tsc`, clocksource `tsc`), cross-core
//! deltas are as sound as `clock_gettime` — both read the same counter.

/// An opaque monotonic timestamp in clock ticks. Take one with [`now`],
/// turn a pair into nanoseconds with [`ns_between`].
pub type Stamp = u64;

/// Current timestamp, in ticks.
#[inline]
pub fn now() -> Stamp {
    imp::now()
}

/// Nanoseconds elapsed from `start` to `end` (both from [`now`]).
/// Saturating: returns 0 when `end < start` (e.g. TSC read reordering),
/// mirroring `Instant::saturating_duration_since`.
#[inline]
pub fn ns_between(start: Stamp, end: Stamp) -> u64 {
    imp::ticks_to_ns(end.saturating_sub(start))
}

/// Force the tick→ns calibration now (on x86-64 a one-time ~5 ms sleep).
/// Timed components call this at construction so the first recorded
/// sample never pays for calibration mid-request.
pub fn calibrate() {
    imp::ticks_to_ns(0);
}

#[cfg(target_arch = "x86_64")]
mod imp {
    use std::sync::OnceLock;
    use std::time::Instant;

    #[inline]
    pub fn now() -> u64 {
        // SAFETY: rdtsc has no preconditions; it reads a counter.
        unsafe { core::arch::x86_64::_rdtsc() }
    }

    /// ns-per-tick as a 32.32 fixed-point factor, calibrated once by
    /// racing the TSC against `Instant` over a ~5 ms sleep. For a 3 GHz
    /// TSC the factor is ~0.33 × 2³², comfortably inside `u64`, and the
    /// `u128` multiply in [`ticks_to_ns`] cannot overflow for any delta
    /// shorter than ~136 years.
    fn scale() -> u64 {
        static SCALE: OnceLock<u64> = OnceLock::new();
        *SCALE.get_or_init(|| {
            let (i0, t0) = (Instant::now(), now());
            std::thread::sleep(std::time::Duration::from_millis(5));
            let ns = i0.elapsed().as_nanos() as u64;
            let ticks = (now() - t0).max(1);
            (((ns as u128) << 32) / ticks as u128) as u64
        })
    }

    #[inline]
    pub fn ticks_to_ns(delta: u64) -> u64 {
        ((delta as u128 * scale() as u128) >> 32) as u64
    }
}

#[cfg(not(target_arch = "x86_64"))]
mod imp {
    use std::sync::OnceLock;
    use std::time::Instant;

    fn epoch() -> Instant {
        static EPOCH: OnceLock<Instant> = OnceLock::new();
        *EPOCH.get_or_init(Instant::now)
    }

    #[inline]
    pub fn now() -> u64 {
        epoch().elapsed().as_nanos() as u64
    }

    #[inline]
    pub fn ticks_to_ns(delta: u64) -> u64 {
        delta
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stamps_are_monotone_enough_to_time_a_sleep() {
        let t0 = now();
        std::thread::sleep(std::time::Duration::from_millis(20));
        let ns = ns_between(t0, now());
        // Sleeps only promise "at least"; the upper bound is generous to
        // survive loaded CI, and still catches a mis-calibrated scale
        // (which would be off by orders of magnitude, not percent).
        assert!(
            (15_000_000..2_000_000_000).contains(&ns),
            "20 ms sleep measured as {ns} ns"
        );
    }

    #[test]
    fn reversed_stamps_saturate_to_zero() {
        let t0 = now();
        assert_eq!(ns_between(t0 + 1_000_000, t0), 0);
    }

    #[test]
    fn stamps_across_threads_compare_sanely() {
        let t0 = now();
        let t1 = std::thread::spawn(|| {
            std::thread::sleep(std::time::Duration::from_millis(5));
            now()
        })
        .join()
        .expect("clock thread");
        let ns = ns_between(t0, t1);
        assert!(ns >= 1_000_000, "cross-thread 5 ms measured as {ns} ns");
    }
}
