//! The process-global instrument catalogue.
//!
//! Registering an instrument appends a `(name, labels, handle)` entry and
//! hands the caller a cheap clone of the handle; the hot path never goes
//! through the registry again. [`Registry::snapshot`] reads every live
//! instrument and **merges series that share a name, labels, and kind** —
//! counters and gauges sum, histograms bucket-merge — so several engines
//! (or a respawned worker, or sequential bench runs) fold into one
//! process-level series, which is exactly the Prometheus model of a
//! process under restarting subcomponents.
//!
//! Entries are held strongly: a counter keeps counting monotonically
//! across the lifetime of the process even after the component that owned
//! it is dropped (components that want their *gauges* to stop
//! contributing reset them to zero on drop, as the serving engine does).
//! Registration is O(1) amortized and happens at component construction,
//! never per request.

use crate::hist::{HistogramSnapshot, LatencyHistogram};
use crate::scalar::{Counter, FloatGauge, Gauge};
use std::sync::Mutex;

/// What kind of series an instrument produces.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Kind {
    /// Monotone sum ([`Counter`]).
    Counter,
    /// Signed instantaneous value ([`Gauge`]).
    Gauge,
    /// Floating-point instantaneous value ([`FloatGauge`]).
    FloatGauge,
    /// Log-linear distribution ([`LatencyHistogram`]).
    Histogram,
}

#[derive(Clone)]
enum Instrument {
    Counter(Counter),
    Gauge(Gauge),
    Float(FloatGauge),
    Hist(LatencyHistogram),
}

impl Instrument {
    fn kind(&self) -> Kind {
        match self {
            Instrument::Counter(_) => Kind::Counter,
            Instrument::Gauge(_) => Kind::Gauge,
            Instrument::Float(_) => Kind::FloatGauge,
            Instrument::Hist(_) => Kind::Histogram,
        }
    }
}

struct Entry {
    name: String,
    help: String,
    labels: Vec<(String, String)>,
    inst: Instrument,
}

/// A catalogue of instruments; usually the [`global`] one.
pub struct Registry {
    entries: Mutex<Vec<Entry>>,
}

/// The process-global registry every subsystem registers into.
pub fn global() -> &'static Registry {
    static GLOBAL: Registry = Registry::new();
    &GLOBAL
}

impl Registry {
    /// An empty registry (tests use private ones; production code uses
    /// [`global`]).
    pub const fn new() -> Registry {
        Registry {
            entries: Mutex::new(Vec::new()),
        }
    }

    fn push(&self, name: &str, help: &str, labels: &[(&str, &str)], inst: Instrument) {
        let mut entries = self.entries.lock().unwrap_or_else(|p| p.into_inner());
        entries.push(Entry {
            name: name.to_string(),
            help: help.to_string(),
            labels: labels
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
            inst,
        });
    }

    /// Create and register a counter.
    pub fn counter(&self, name: &str, help: &str) -> Counter {
        self.counter_with(name, help, &[])
    }

    /// Create and register a counter with labels.
    pub fn counter_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Counter {
        let c = Counter::new();
        self.push(name, help, labels, Instrument::Counter(c.clone()));
        c
    }

    /// Create and register a gauge.
    pub fn gauge(&self, name: &str, help: &str) -> Gauge {
        let g = Gauge::new();
        self.push(name, help, &[], Instrument::Gauge(g.clone()));
        g
    }

    /// Create and register a float gauge.
    pub fn float_gauge(&self, name: &str, help: &str) -> FloatGauge {
        let g = FloatGauge::new();
        self.push(name, help, &[], Instrument::Float(g.clone()));
        g
    }

    /// Create and register a histogram.
    pub fn histogram(&self, name: &str, help: &str) -> LatencyHistogram {
        self.histogram_with(name, help, &[])
    }

    /// Create and register a histogram with labels.
    pub fn histogram_with(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
    ) -> LatencyHistogram {
        let h = LatencyHistogram::new();
        self.push(name, help, labels, Instrument::Hist(h.clone()));
        h
    }

    /// Read every instrument and merge same-`(name, labels, kind)` series;
    /// the result is sorted by name then labels for stable exposition.
    pub fn snapshot(&self) -> Snapshot {
        let entries = self.entries.lock().unwrap_or_else(|p| p.into_inner());
        let mut series: Vec<Series> = Vec::new();
        for e in entries.iter() {
            let value = match &e.inst {
                Instrument::Counter(c) => Value::Counter(c.get()),
                Instrument::Gauge(g) => Value::Gauge(g.get()),
                Instrument::Float(g) => Value::Float(g.get()),
                Instrument::Hist(h) => Value::Histogram(h.snapshot()),
            };
            match series
                .iter_mut()
                .find(|s| s.name == e.name && s.labels == e.labels && s.kind() == e.inst.kind())
            {
                Some(s) => s.absorb(value),
                None => series.push(Series {
                    name: e.name.clone(),
                    help: e.help.clone(),
                    labels: e.labels.clone(),
                    value,
                }),
            }
        }
        drop(entries);
        series.sort_by(|a, b| a.name.cmp(&b.name).then_with(|| a.labels.cmp(&b.labels)));
        Snapshot { series }
    }
}

impl Default for Registry {
    fn default() -> Self {
        Registry::new()
    }
}

/// One merged series in a [`Snapshot`].
#[derive(Clone, Debug)]
pub struct Series {
    /// Metric name (unit suffix by convention: `_ns`, `_total`, …).
    pub name: String,
    /// Human description (the first registrant's wins on merge).
    pub help: String,
    /// Label pairs, e.g. `[("worker", "0")]`.
    pub labels: Vec<(String, String)>,
    /// The merged value.
    pub value: Value,
}

/// A [`Series`] value.
#[derive(Clone, Debug)]
pub enum Value {
    /// Monotone total (merged by summing).
    Counter(u64),
    /// Signed gauge (merged by summing — per-component gauges like queue
    /// depth add up to the process-wide figure).
    Gauge(i64),
    /// Float gauge (merged by summing; dropped components reset theirs
    /// to 0 so they stop contributing).
    Float(f64),
    /// Histogram (bucket-merged).
    Histogram(HistogramSnapshot),
}

impl Series {
    fn kind(&self) -> Kind {
        match &self.value {
            Value::Counter(_) => Kind::Counter,
            Value::Gauge(_) => Kind::Gauge,
            Value::Float(_) => Kind::FloatGauge,
            Value::Histogram(_) => Kind::Histogram,
        }
    }

    fn absorb(&mut self, other: Value) {
        match (&mut self.value, other) {
            (Value::Counter(a), Value::Counter(b)) => *a += b,
            (Value::Gauge(a), Value::Gauge(b)) => *a += b,
            (Value::Float(a), Value::Float(b)) => *a += b,
            (Value::Histogram(a), Value::Histogram(b)) => a.merge(&b),
            _ => unreachable!("absorb is only called for matching kinds"),
        }
    }
}

/// A point-in-time, merged view of a registry; renders to Prometheus text
/// ([`to_prometheus`](Self::to_prometheus)) or JSON ([`to_json`](Self::to_json)).
#[derive(Clone, Debug)]
pub struct Snapshot {
    /// The merged series, sorted by `(name, labels)`.
    pub series: Vec<Series>,
}

impl Snapshot {
    /// Find a series by name (and labels, when `labels` is non-empty the
    /// match must be exact; when empty, the first label-free series wins).
    pub fn find(&self, name: &str) -> Option<&Series> {
        self.series
            .iter()
            .find(|s| s.name == name && s.labels.is_empty())
    }

    /// Find a labeled series by exact name + labels.
    pub fn find_with(&self, name: &str, labels: &[(&str, &str)]) -> Option<&Series> {
        self.series.iter().find(|s| {
            s.name == name
                && s.labels.len() == labels.len()
                && s.labels
                    .iter()
                    .zip(labels)
                    .all(|((k, v), (lk, lv))| k == lk && v == lv)
        })
    }

    /// Counter value of `name`, 0 when absent.
    pub fn counter(&self, name: &str) -> u64 {
        match self.find(name).map(|s| &s.value) {
            Some(Value::Counter(v)) => *v,
            _ => 0,
        }
    }

    /// Histogram snapshot of `name`, empty when absent.
    pub fn histogram(&self, name: &str) -> HistogramSnapshot {
        match self.find(name).map(|s| &s.value) {
            Some(Value::Histogram(h)) => h.clone(),
            _ => HistogramSnapshot::empty(),
        }
    }

    /// Render as Prometheus text exposition format.
    pub fn to_prometheus(&self) -> String {
        crate::expo::render_prometheus(self)
    }

    /// Render as a JSON document.
    pub fn to_json(&self) -> String {
        crate::expo::render_json(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_name_series_merge_in_snapshots() {
        let reg = Registry::new();
        let a = reg.counter("requests_total", "requests");
        let b = reg.counter("requests_total", "requests");
        a.add(3);
        b.add(4);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("requests_total"), 7);
        assert_eq!(snap.series.len(), 1, "merged into one series");
    }

    #[test]
    fn labels_keep_series_apart() {
        let reg = Registry::new();
        let a = reg.counter_with("forward_total", "f", &[("worker", "0")]);
        let b = reg.counter_with("forward_total", "f", &[("worker", "1")]);
        a.inc();
        b.add(2);
        let snap = reg.snapshot();
        assert_eq!(snap.series.len(), 2);
        match &snap
            .find_with("forward_total", &[("worker", "1")])
            .unwrap()
            .value
        {
            Value::Counter(v) => assert_eq!(*v, 2),
            other => panic!("wrong kind {other:?}"),
        }
    }

    #[test]
    fn histograms_merge_and_quantile() {
        let reg = Registry::new();
        let h1 = reg.histogram("lat_ns", "latency");
        let h2 = reg.histogram("lat_ns", "latency");
        h1.record(10);
        h2.record(30);
        let merged = reg.snapshot().histogram("lat_ns");
        assert_eq!(merged.count(), 2);
        assert_eq!(merged.max, 30);
    }

    #[test]
    fn dropped_instruments_keep_their_counts() {
        let reg = Registry::new();
        {
            let c = reg.counter("persist_total", "outlives its owner");
            c.add(9);
        }
        assert_eq!(reg.snapshot().counter("persist_total"), 9);
    }
}
