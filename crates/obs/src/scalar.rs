//! Lock-free scalar instruments: sharded [`Counter`], signed [`Gauge`],
//! and bit-cast [`FloatGauge`].

use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Shards per counter. A power of two so the thread slot can be masked.
/// 16 covers every worker-pool size the engine realistically runs per
/// core while keeping an idle counter at one cache line per shard.
const SHARDS: usize = 16;

/// One cache line per shard: two shards must never share a line, or the
/// sharding buys nothing.
#[repr(align(64))]
#[derive(Default)]
struct Shard(AtomicU64);

/// Stable small id for the current thread, assigned on first use. Shared
/// with the histogram's shard selection.
pub(crate) fn thread_slot() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static SLOT: usize = NEXT.fetch_add(1, Ordering::Relaxed);
    }
    SLOT.with(|s| *s)
}

/// A monotonically increasing sum, sharded across cache lines so that
/// concurrent writers (engine workers, load-gen clients) do not serialize
/// on one atomic. Cloning shares the underlying shards.
#[derive(Clone, Default)]
pub struct Counter {
    shards: Arc<[Shard; SHARDS]>,
}

impl Counter {
    /// A fresh counter at zero.
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.shards[thread_slot() & (SHARDS - 1)]
            .0
            .fetch_add(n, Ordering::Relaxed);
    }

    /// Current total (sum over shards). Concurrent with writers: the value
    /// is a valid total of some interleaving, and monotone across calls
    /// from one thread.
    pub fn get(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }
}

impl std::fmt::Debug for Counter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("Counter").field(&self.get()).finish()
    }
}

/// A signed instantaneous value (queue depth, live workers). Unsharded:
/// gauges are read as often as written and the engine writes them once
/// per batch, not per request.
#[derive(Clone, Default)]
pub struct Gauge {
    value: Arc<AtomicI64>,
}

impl Gauge {
    /// A fresh gauge at zero.
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Overwrite the value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Move the value up by `n`.
    #[inline]
    pub fn add(&self, n: i64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Move the value down by `n`.
    #[inline]
    pub fn sub(&self, n: i64) {
        self.value.fetch_sub(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

impl std::fmt::Debug for Gauge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("Gauge").field(&self.get()).finish()
    }
}

/// An `f64` gauge (loss, θ, hit-rate) stored as its bit pattern in an
/// `AtomicU64` — stores and loads are atomic, no lock, no torn reads.
#[derive(Clone, Default)]
pub struct FloatGauge {
    bits: Arc<AtomicU64>,
}

impl FloatGauge {
    /// A fresh gauge at 0.0.
    pub fn new() -> FloatGauge {
        FloatGauge::default()
    }

    /// Overwrite the value.
    #[inline]
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

impl std::fmt::Debug for FloatGauge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("FloatGauge").field(&self.get()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
    }

    #[test]
    fn counter_clones_share_state() {
        let c = Counter::new();
        let d = c.clone();
        c.inc();
        d.inc();
        assert_eq!(c.get(), 2);
    }

    #[test]
    fn gauge_moves_both_ways() {
        let g = Gauge::new();
        g.add(5);
        g.sub(2);
        assert_eq!(g.get(), 3);
        g.set(-7);
        assert_eq!(g.get(), -7);
    }

    #[test]
    fn float_gauge_round_trips() {
        let g = FloatGauge::new();
        assert_eq!(g.get(), 0.0);
        g.set(0.12345);
        assert_eq!(g.get(), 0.12345);
        g.set(-1e-9);
        assert_eq!(g.get(), -1e-9);
    }
}
