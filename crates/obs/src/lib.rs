//! # od-obs — observability primitives for the ODNET stack
//!
//! The serving engine (PR 3/4) and the trainer each grew their own ad-hoc
//! telemetry: hand-rolled atomic counters, a bare batch-size array, and a
//! sort-a-`Vec` percentile pass in the load generator. This crate replaces
//! all of it with three composable, std-only primitives:
//!
//! - [`Counter`] / [`Gauge`] / [`FloatGauge`] — lock-free scalars. The
//!   counter is *sharded*: increments land on a per-thread cache-line-
//!   padded shard, so worker threads hammering the same series never
//!   contend on one cache line.
//! - [`LatencyHistogram`] — a fixed-size log-linear histogram (HDR-style:
//!   16 sub-buckets per power of two, exact below 32, ≤ 6.25% relative
//!   bucket width above). Recording is one atomic add; snapshots are plain
//!   `u64` vectors that [merge](HistogramSnapshot::merge) associatively
//!   and answer conservative quantile queries (`p50`/`p95`/`p99` never
//!   exceed the exactly-tracked max). Property tests in `tests/` pin the
//!   bucket-bound and merge invariants.
//! - [`trace`] — request-scoped tracing with tail sampling: spans
//!   stamped by the same TSC clock, a bounded ring of kept traces, and
//!   histogram [exemplars](Exemplar) linking tail buckets to the trace
//!   that landed there.
//! - [`Registry`] — a process-global catalogue of instruments.
//!   Registering hands back a cheap clonable handle; a
//!   [snapshot](Registry::snapshot) merges same-named series (so several
//!   engines sum into one process-level view) and renders as Prometheus
//!   text exposition or a JSON document, both without any serializer
//!   dependency.
//!
//! # Cost model
//!
//! Recording a counter or histogram sample is a relaxed atomic add on a
//! thread-local shard — no locks, no allocation, no shared cache line.
//! Stage timing uses [`clock`] (raw TSC on x86-64, ~8 ns per stamp) and
//! is the caller's to gate: the convention across the workspace is a
//! single `bool` branch (e.g. `EngineConfig::stage_timing`) in front of
//! every clock read, so the disabled path costs one predicted branch. The
//! `ci.sh` overhead gate holds the enabled path to within 3% of disabled
//! throughput.
//!
//! # Units
//!
//! Histograms store bare `u64`s; by convention the metric *name* carries
//! the unit suffix (`_ns` for durations recorded via
//! [`LatencyHistogram::record_duration`], `_micro` for fixed-point floats,
//! none for dimensionless sizes).

#![warn(missing_docs)]

pub mod clock;
mod expo;
mod hist;
mod registry;
mod scalar;
pub mod trace;

pub use expo::{render_json, render_prometheus};
pub use hist::{
    bucket_bounds, bucket_index, Bucket, Exemplar, HistogramSnapshot, LatencyHistogram,
};
pub use registry::{global, Kind, Registry, Series, Snapshot, Value};
pub use scalar::{Counter, FloatGauge, Gauge};
