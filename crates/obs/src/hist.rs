//! A fixed-size log-linear latency histogram.
//!
//! # Bucketing
//!
//! HDR-histogram-style log-linear layout: values below [`SUB`] get one
//! bucket each; every power-of-two octave above is split into [`SUB`]
//! equal sub-buckets. With `SUB = 16` this is *exact* for values `< 32`
//! (bucket width 1) and keeps the relative bucket width at or below
//! `1/16 = 6.25%` everywhere else, which bounds the error of every
//! quantile estimate. The index math is a handful of shifts on the hot
//! path — no search, no floating point.
//!
//! The value domain is `u64`; durations are recorded in nanoseconds
//! ([`LatencyHistogram::record_duration`]), which the top octave caps at
//! about 19 hours — anything larger clamps into the overflow bucket.
//!
//! # Concurrency
//!
//! Recording is three relaxed `fetch_add`/`fetch_max` ops on a
//! *thread-sharded* copy of the bucket array: latency samples cluster in
//! a few hot buckets, and the running `sum`/`max` are touched by every
//! record, so an unsharded histogram serializes every recording thread on
//! the same two or three cache lines (measured at ~9% of engine
//! throughput under 6 threads; sharding brings the stage clock under the
//! 3% ci.sh gate). Shards are merged bucket-wise at snapshot time —
//! the memory cost is `SHARDS ×` the bucket array (~44 KiB per
//! histogram), bought once per registered series, not per sample.
//!
//! Snapshots read the shards without stopping writers. A snapshot taken
//! mid-storm is a valid histogram of *some* subset of the recorded
//! samples (each sample lands in one bucket of one shard, so per-bucket
//! counts are never torn, and bucket counts only grow — the race test in
//! `tests/hammer.rs` pins this). Quantiles and totals are computed from
//! the snapshot's buckets, never from a separately-read count, so a
//! snapshot is always internally consistent.

use crate::scalar::thread_slot;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// log2 of the sub-buckets per octave.
const SUB_BITS: u32 = 4;
/// Sub-buckets per power-of-two octave.
const SUB: u64 = 1 << SUB_BITS;
/// Largest value exponent before clamping: values `< 2^(E_MAX + 1)`
/// (~19.5 hours in ns) are binned, larger ones land in the last bucket.
const E_MAX: u32 = 45;
/// Total bucket count.
pub(crate) const NUM_BUCKETS: usize = (SUB as usize) * (E_MAX - SUB_BITS + 2) as usize;

/// Bucket index of `v`. Exact (`lo == hi`) for `v < 32`.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v < SUB {
        return v as usize;
    }
    let e = 63 - v.leading_zeros();
    if e > E_MAX {
        return NUM_BUCKETS - 1;
    }
    let sub = (v >> (e - SUB_BITS)) - SUB;
    (SUB as usize) * (e - SUB_BITS + 1) as usize + sub as usize
}

/// Inclusive `(lo, hi)` value bounds of bucket `i`. The last bucket is
/// the overflow bucket and reports `hi == u64::MAX`.
pub fn bucket_bounds(i: usize) -> (u64, u64) {
    assert!(i < NUM_BUCKETS, "bucket index {i} out of range");
    if i == NUM_BUCKETS - 1 {
        let lo = (SUB + SUB - 1) << (E_MAX - SUB_BITS);
        return (lo, u64::MAX);
    }
    if (i as u64) < SUB {
        return (i as u64, i as u64);
    }
    let k = i as u64 - SUB;
    let e = (k / SUB) as u32 + SUB_BITS;
    let sub = k % SUB;
    let lo = (SUB + sub) << (e - SUB_BITS);
    let width = 1u64 << (e - SUB_BITS);
    (lo, lo + width - 1)
}

/// Recording shards per histogram. A power of two so the thread slot can
/// be masked. 8 keeps the per-histogram footprint at ~44 KiB while giving
/// the engine's workers + load clients distinct lines to record into.
const HIST_SHARDS: usize = 8;

/// One thread-shard of the recording state. `align(64)`: `sum` and `max`
/// of different shards must never share a cache line (the bucket arrays
/// are separate heap allocations, so they are already disjoint).
#[repr(align(64))]
struct HistShard {
    buckets: Vec<AtomicU64>, // NUM_BUCKETS long
    sum: AtomicU64,
    max: AtomicU64,
}

/// Most-recent exemplar per bucket: the trace id and value of the last
/// sample recorded through [`LatencyHistogram::record_exemplar`].
/// Unsharded — exemplar-bearing samples are the tail-sampled minority —
/// and the two cells are written with independent relaxed stores: a torn
/// pair still pairs a value with *a* trace that landed in the same
/// bucket, which is all an exemplar promises.
struct ExemplarSlot {
    trace_id: AtomicU64, // 0 = none recorded yet
    value: AtomicU64,
}

impl Default for HistShard {
    fn default() -> Self {
        HistShard {
            buckets: (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

/// A concurrent log-linear histogram; see the module docs for layout and
/// consistency guarantees. Cloning shares the underlying shards.
#[derive(Clone)]
pub struct LatencyHistogram {
    shards: Arc<[HistShard; HIST_SHARDS]>,
    exemplars: Arc<[ExemplarSlot]>,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            shards: Arc::new(std::array::from_fn(|_| HistShard::default())),
            exemplars: (0..NUM_BUCKETS)
                .map(|_| ExemplarSlot {
                    trace_id: AtomicU64::new(0),
                    value: AtomicU64::new(0),
                })
                .collect(),
        }
    }
}

impl LatencyHistogram {
    /// A fresh, empty histogram.
    pub fn new() -> LatencyHistogram {
        LatencyHistogram::default()
    }

    /// Record one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        let shard = &self.shards[thread_slot() & (HIST_SHARDS - 1)];
        shard.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        shard.sum.fetch_add(v, Ordering::Relaxed);
        shard.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Record a duration in nanoseconds (saturating on the — theoretical —
    /// 585-year overflow).
    #[inline]
    pub fn record_duration(&self, d: Duration) {
        self.record(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Record one sample and stamp its bucket's exemplar with `trace_id`,
    /// so the exposition can link the bucket to a captured trace
    /// (OpenMetrics exemplar syntax). A zero trace id records plainly.
    #[inline]
    pub fn record_exemplar(&self, v: u64, trace_id: u64) {
        self.record(v);
        if trace_id != 0 {
            let slot = &self.exemplars[bucket_index(v)];
            slot.value.store(v, Ordering::Relaxed);
            slot.trace_id.store(trace_id, Ordering::Relaxed);
        }
    }

    /// Merge the thread-shards into an owned snapshot. Safe concurrent
    /// with writers; see the module docs for what a mid-storm snapshot
    /// means.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut counts = vec![0u64; NUM_BUCKETS];
        let mut sum = 0u64;
        let mut max = 0u64;
        for shard in self.shards.iter() {
            for (c, b) in counts.iter_mut().zip(&shard.buckets) {
                *c += b.load(Ordering::Relaxed);
            }
            sum = sum.wrapping_add(shard.sum.load(Ordering::Relaxed));
            max = max.max(shard.max.load(Ordering::Relaxed));
        }
        let exemplars = self
            .exemplars
            .iter()
            .enumerate()
            .filter(|(_, e)| e.trace_id.load(Ordering::Relaxed) != 0)
            .map(|(bucket, e)| Exemplar {
                bucket,
                value: e.value.load(Ordering::Relaxed),
                trace_id: e.trace_id.load(Ordering::Relaxed),
            })
            .collect();
        HistogramSnapshot {
            counts,
            sum,
            max,
            exemplars,
        }
    }
}

impl std::fmt::Debug for LatencyHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.snapshot();
        f.debug_struct("LatencyHistogram")
            .field("count", &s.count())
            .field("max", &s.max)
            .finish()
    }
}

/// One non-empty bucket of a [`HistogramSnapshot`]: `count` samples whose
/// values all lie in `lo..=hi`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Bucket {
    /// Smallest value binned here.
    pub lo: u64,
    /// Largest value binned here (inclusive).
    pub hi: u64,
    /// Samples in the bucket.
    pub count: u64,
}

/// A recent trace that landed in a bucket — the payload of the
/// OpenMetrics exemplar the exposition attaches to that bucket's series.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Exemplar {
    /// Bucket index the exemplar belongs to.
    pub bucket: usize,
    /// The recorded value (always within the bucket's bounds).
    pub value: u64,
    /// The trace id, non-zero.
    pub trace_id: u64,
}

/// An owned, immutable copy of a histogram's state: plain `u64`s that
/// merge associatively and answer quantile queries.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    counts: Vec<u64>,
    /// Sum of all recorded values (mean = `sum / count`).
    pub sum: u64,
    /// Largest recorded value, tracked exactly.
    pub max: u64,
    /// Per-bucket exemplars (at most one per non-empty bucket).
    exemplars: Vec<Exemplar>,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            counts: vec![0; NUM_BUCKETS],
            sum: 0,
            max: 0,
            exemplars: Vec::new(),
        }
    }
}

impl HistogramSnapshot {
    /// An empty snapshot (the identity of [`merge`](Self::merge)).
    pub fn empty() -> HistogramSnapshot {
        HistogramSnapshot::default()
    }

    /// Total samples (sum of bucket counts — never a separately-tracked
    /// number, so it always agrees with the buckets).
    pub fn count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Mean recorded value, 0.0 when empty.
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum as f64 / n as f64
        }
    }

    /// Conservative quantile estimate: the upper bound of the bucket
    /// holding the `q`-quantile sample, capped at the exact [`max`](Self::max).
    /// Guaranteed `>=` the true quantile and within one bucket width
    /// (≤ 6.25% relative) above it. `q` is clamped to `[0, 1]`; returns 0
    /// on an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_bounds(i).1.min(self.max);
            }
        }
        self.max
    }

    /// Fold `other` into `self`. Associative and commutative: bucket
    /// counts and sums add, maxes take the larger. Sums are mod 2⁶⁴,
    /// the same semantics as the recorder's atomic `fetch_add`, which
    /// keeps merge exactly equal to having recorded into one histogram
    /// even if the (astronomical) total overflows.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.sum = self.sum.wrapping_add(other.sum);
        self.max = self.max.max(other.max);
        // Exemplars: keep ours per bucket, adopt the other's for buckets
        // we have none for (there is no recency order across snapshots).
        for e in &other.exemplars {
            if !self.exemplars.iter().any(|m| m.bucket == e.bucket) {
                self.exemplars.push(*e);
            }
        }
        self.exemplars.sort_by_key(|e| e.bucket);
    }

    /// The samples recorded between `earlier` (an older snapshot of the
    /// same histogram) and `self` — bucket-wise subtraction. `max` is
    /// carried from `self` (a lifetime max; an interval max is not
    /// recoverable from two snapshots).
    pub fn delta_since(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        HistogramSnapshot {
            counts: self
                .counts
                .iter()
                .zip(&earlier.counts)
                .map(|(&a, &b)| a.saturating_sub(b))
                .collect(),
            sum: self.sum.wrapping_sub(earlier.sum),
            max: self.max,
            exemplars: self.exemplars.clone(),
        }
    }

    /// The exemplars captured in this snapshot, in bucket order.
    pub fn exemplars(&self) -> &[Exemplar] {
        &self.exemplars
    }

    /// The non-empty buckets, in value order.
    pub fn buckets(&self) -> impl Iterator<Item = Bucket> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| {
                let (lo, hi) = bucket_bounds(i);
                Bucket { lo, hi, count: c }
            })
    }

    /// Cumulative `(upper_bound, count_at_or_below)` pairs over the
    /// non-empty buckets — the shape Prometheus `_bucket{le=...}` series
    /// want (the caller appends `+Inf`).
    pub fn cumulative(&self) -> Vec<(u64, u64)> {
        let mut acc = 0u64;
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| {
                acc += c;
                (bucket_bounds(i).1, acc)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        for v in 0..32u64 {
            let (lo, hi) = bucket_bounds(bucket_index(v));
            assert_eq!((lo, hi), (v, v), "value {v} must bin exactly");
        }
    }

    #[test]
    fn bounds_cover_the_whole_domain_contiguously() {
        // Every bucket's lo is the previous bucket's hi + 1.
        let mut expect_lo = 0u64;
        for i in 0..NUM_BUCKETS {
            let (lo, hi) = bucket_bounds(i);
            assert_eq!(lo, expect_lo, "gap or overlap at bucket {i}");
            assert!(hi >= lo);
            if i < NUM_BUCKETS - 1 {
                expect_lo = hi + 1;
            } else {
                assert_eq!(hi, u64::MAX, "last bucket must absorb overflow");
            }
        }
    }

    #[test]
    fn relative_width_is_bounded() {
        for i in 0..NUM_BUCKETS - 1 {
            let (lo, hi) = bucket_bounds(i);
            assert!(
                (hi - lo) as f64 <= lo.max(1) as f64 / 16.0 + 1e-9,
                "bucket {i} [{lo}, {hi}] wider than 1/16 of its lower bound"
            );
        }
    }

    #[test]
    fn quantiles_of_a_known_distribution() {
        let h = LatencyHistogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 100);
        assert_eq!(s.max, 100);
        assert_eq!(s.sum, 5050);
        // p50's sample is 50; bucket [48,50] (width 3 at that octave...
        // actually 50 -> e=5, width 2, bucket [50,51], capped by max no).
        let p50 = s.quantile(0.50);
        assert!((50..=53).contains(&p50), "p50 estimate {p50}");
        assert!(s.quantile(1.0) == 100, "p100 capped at the exact max");
        assert_eq!(s.quantile(0.0), 1, "rank clamps to the first sample");
    }

    #[test]
    fn merge_equals_recording_together() {
        let a = LatencyHistogram::new();
        let b = LatencyHistogram::new();
        let both = LatencyHistogram::new();
        for v in [3u64, 17, 900, 70_000, 5] {
            a.record(v);
            both.record(v);
        }
        for v in [1u64, 1_000_000, 31] {
            b.record(v);
            both.record(v);
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged, both.snapshot());
    }

    #[test]
    fn delta_since_isolates_the_window() {
        let h = LatencyHistogram::new();
        h.record(10);
        h.record(20);
        let early = h.snapshot();
        h.record(30);
        let delta = h.snapshot().delta_since(&early);
        assert_eq!(delta.count(), 1);
        assert_eq!(delta.sum, 30);
    }

    #[test]
    fn exemplars_stamp_the_sample_bucket() {
        let h = LatencyHistogram::new();
        h.record(900); // plain sample: no exemplar
        h.record_exemplar(905, 0xdead_beef);
        h.record_exemplar(17, 0x1234);
        let s = h.snapshot();
        let ex = s.exemplars();
        assert_eq!(ex.len(), 2);
        for e in ex {
            let (lo, hi) = bucket_bounds(e.bucket);
            assert!((lo..=hi).contains(&e.value), "exemplar outside bucket");
        }
        assert!(ex.iter().any(|e| e.trace_id == 0xdead_beef));
        // A later sample in the same bucket replaces the exemplar.
        h.record_exemplar(906, 0xfeed);
        let ex2 = h.snapshot();
        assert!(ex2.exemplars().iter().any(|e| e.trace_id == 0xfeed));
        assert!(!ex2.exemplars().iter().any(|e| e.trace_id == 0xdead_beef));
        // Merge keeps self's exemplar for contested buckets, adopts
        // the other's for new ones.
        let other = LatencyHistogram::new();
        other.record_exemplar(903, 0xaaaa);
        other.record_exemplar(1_000_000, 0xbbbb);
        let mut m = h.snapshot();
        m.merge(&other.snapshot());
        assert!(m.exemplars().iter().any(|e| e.trace_id == 0xfeed));
        assert!(m.exemplars().iter().any(|e| e.trace_id == 0xbbbb));
        assert!(!m.exemplars().iter().any(|e| e.trace_id == 0xaaaa));
    }

    #[test]
    fn overflow_clamps_to_the_last_bucket() {
        let h = LatencyHistogram::new();
        h.record(u64::MAX);
        let s = h.snapshot();
        assert_eq!(s.count(), 1);
        assert_eq!(s.max, u64::MAX);
        let b: Vec<_> = s.buckets().collect();
        assert_eq!(b.len(), 1);
        assert_eq!(b[0].hi, u64::MAX);
    }
}
