//! Exposition: render a [`Snapshot`] as Prometheus text format or JSON,
//! with no serializer dependency.
//!
//! The Prometheus renderer follows the text exposition format: one
//! `# HELP` / `# TYPE` block per metric name, histograms expanded into
//! cumulative `_bucket{le="…"}` series plus `_sum` and `_count`.
//! Histograms record nanoseconds and the `le` bounds are emitted in the
//! metric's own unit (the name carries the `_ns` suffix), keeping the
//! series self-describing. Only non-empty buckets are emitted (cumulative
//! counts stay correct — an omitted bucket adds nothing), plus the
//! mandatory `+Inf` bucket; the exposition lint in
//! `crates/obs/tests/exposition.rs` parses the output back and checks the
//! format invariants.
//!
//! Buckets whose histogram captured an exemplar (see
//! [`LatencyHistogram::record_exemplar`](crate::LatencyHistogram::record_exemplar))
//! carry it in OpenMetrics exemplar syntax —
//! `…_bucket{le="X"} N # {trace_id="<16-hex>"} value` — so a tail bucket
//! links directly to a trace in `/debug/traces`. Plain-Prometheus
//! scrapers that split on the first space still parse the line; the lint
//! validates the exemplar grammar too.

use crate::registry::{Snapshot, Value};
use std::fmt::Write;

/// Escape a HELP string: backslashes and newlines per the text format.
fn escape_help(s: &str) -> String {
    s.replace('\\', "\\\\").replace('\n', "\\n")
}

/// Escape a label value: backslashes, quotes, newlines.
fn escape_label(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Render `{k="v",…}` (empty string for no labels), with `extra` appended
/// (used for the `le` label of histogram buckets).
fn label_block(labels: &[(String, String)], extra: Option<(&str, &str)>) -> String {
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect();
    if let Some((k, v)) = extra {
        parts.push(format!("{k}=\"{}\"", escape_label(v)));
    }
    if parts.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", parts.join(","))
    }
}

/// Render the snapshot in Prometheus text exposition format.
pub fn render_prometheus(snap: &Snapshot) -> String {
    let mut out = String::new();
    let mut last_name: Option<&str> = None;
    for s in &snap.series {
        // One HELP/TYPE block per name; labeled variants follow under it.
        if last_name != Some(s.name.as_str()) {
            let kind = match &s.value {
                Value::Counter(_) => "counter",
                Value::Gauge(_) | Value::Float(_) => "gauge",
                Value::Histogram(_) => "histogram",
            };
            let _ = writeln!(out, "# HELP {} {}", s.name, escape_help(&s.help));
            let _ = writeln!(out, "# TYPE {} {kind}", s.name);
            last_name = Some(s.name.as_str());
        }
        match &s.value {
            Value::Counter(v) => {
                let _ = writeln!(out, "{}{} {v}", s.name, label_block(&s.labels, None));
            }
            Value::Gauge(v) => {
                let _ = writeln!(out, "{}{} {v}", s.name, label_block(&s.labels, None));
            }
            Value::Float(v) => {
                let _ = writeln!(out, "{}{} {v}", s.name, label_block(&s.labels, None));
            }
            Value::Histogram(h) => {
                let total = h.count();
                // Exemplars keyed by their bucket's upper bound; the
                // overflow bucket's (hi == u64::MAX) rides on +Inf.
                let exemplar_at = |hi: u64| -> String {
                    h.exemplars()
                        .iter()
                        .find(|e| crate::hist::bucket_bounds(e.bucket).1 == hi)
                        .map(|e| {
                            format!(
                                " # {{trace_id=\"{e:016x}\"}} {v}",
                                e = e.trace_id,
                                v = e.value
                            )
                        })
                        .unwrap_or_default()
                };
                for (hi, cum) in h.cumulative() {
                    // The overflow bucket's bound is u64::MAX; it is
                    // indistinguishable from +Inf, which follows anyway.
                    if hi == u64::MAX {
                        continue;
                    }
                    let le = hi.to_string();
                    let _ = writeln!(
                        out,
                        "{}_bucket{} {cum}{}",
                        s.name,
                        label_block(&s.labels, Some(("le", &le))),
                        exemplar_at(hi)
                    );
                }
                let _ = writeln!(
                    out,
                    "{}_bucket{} {total}{}",
                    s.name,
                    label_block(&s.labels, Some(("le", "+Inf"))),
                    exemplar_at(u64::MAX)
                );
                let _ = writeln!(
                    out,
                    "{}_sum{} {}",
                    s.name,
                    label_block(&s.labels, None),
                    h.sum
                );
                let _ = writeln!(
                    out,
                    "{}_count{} {total}",
                    s.name,
                    label_block(&s.labels, None)
                );
            }
        }
    }
    out
}

/// Escape a string for a JSON literal.
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// A JSON-safe float literal (JSON has no NaN/∞; they render as null).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        // `{}` on f64 is shortest-round-trip and always includes enough
        // digits; integral values print without a dot, still valid JSON.
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Render the snapshot as a JSON document:
/// `{"series": [{"name": …, "kind": …, "labels": {…}, …}]}` — scalar
/// series carry `"value"`, histograms carry `count`/`sum`/`max`/`mean`,
/// conservative `p50`/`p95`/`p99` bounds, and the non-empty `buckets`.
pub fn render_json(snap: &Snapshot) -> String {
    let mut out = String::from("{\"series\":[");
    for (i, s) in snap.series.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"help\":\"{}\",\"labels\":{{",
            escape_json(&s.name),
            escape_json(&s.help)
        );
        for (j, (k, v)) in s.labels.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":\"{}\"", escape_json(k), escape_json(v));
        }
        out.push_str("},");
        match &s.value {
            Value::Counter(v) => {
                let _ = write!(out, "\"kind\":\"counter\",\"value\":{v}");
            }
            Value::Gauge(v) => {
                let _ = write!(out, "\"kind\":\"gauge\",\"value\":{v}");
            }
            Value::Float(v) => {
                let _ = write!(out, "\"kind\":\"float_gauge\",\"value\":{}", json_f64(*v));
            }
            Value::Histogram(h) => {
                let _ = write!(
                    out,
                    "\"kind\":\"histogram\",\"count\":{},\"sum\":{},\"max\":{},\"mean\":{},\
                     \"p50\":{},\"p95\":{},\"p99\":{},\"buckets\":[",
                    h.count(),
                    h.sum,
                    h.max,
                    json_f64(h.mean()),
                    h.quantile(0.50),
                    h.quantile(0.95),
                    h.quantile(0.99),
                );
                for (j, b) in h.buckets().enumerate() {
                    if j > 0 {
                        out.push(',');
                    }
                    let _ = write!(
                        out,
                        "{{\"lo\":{},\"hi\":{},\"count\":{}}}",
                        b.lo, b.hi, b.count
                    );
                }
                out.push(']');
            }
        }
        out.push('}');
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use crate::registry::Registry;

    #[test]
    fn prometheus_text_has_help_type_and_samples() {
        let reg = Registry::new();
        reg.counter("odnet_requests_total", "Requests accepted")
            .add(5);
        let h = reg.histogram("odnet_wait_ns", "Queue wait");
        h.record(100);
        h.record(900);
        let text = reg.snapshot().to_prometheus();
        assert!(text.contains("# TYPE odnet_requests_total counter"));
        assert!(text.contains("odnet_requests_total 5"));
        assert!(text.contains("# TYPE odnet_wait_ns histogram"));
        assert!(text.contains("odnet_wait_ns_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("odnet_wait_ns_sum 1000"));
        assert!(text.contains("odnet_wait_ns_count 2"));
    }

    #[test]
    fn exemplars_render_in_openmetrics_syntax() {
        let reg = Registry::new();
        let h = reg.histogram("odnet_e2e_ns", "Request e2e");
        h.record(100);
        h.record_exemplar(900, 0xabcd);
        let text = reg.snapshot().to_prometheus();
        let line = text
            .lines()
            .find(|l| l.contains(" # "))
            .expect("an exemplar-bearing bucket line");
        assert!(
            line.contains("# {trace_id=\"000000000000abcd\"} 900"),
            "bad exemplar syntax: {line}"
        );
        // Un-exemplared buckets stay plain.
        assert!(text
            .lines()
            .filter(|l| l.starts_with("odnet_e2e_ns_bucket"))
            .any(|l| !l.contains(" # ")));
    }

    #[test]
    fn json_is_wellformed_for_odd_strings() {
        let reg = Registry::new();
        reg.counter_with(
            "c_total",
            "has \"quotes\" and \\slashes\\",
            &[("k", "v\n2")],
        )
        .inc();
        let json = reg.snapshot().to_json();
        // Quick structural sanity; the full parse-back happens in the CLI
        // (serde_json reads this output in `odnet serve-bench`).
        assert!(json.starts_with("{\"series\":["));
        assert!(json.ends_with("]}"));
        assert!(json.contains("\\\"quotes\\\""));
        assert!(json.contains("\"k\":\"v\\n2\""));
    }
}
