//! Request-scoped tracing with tail sampling.
//!
//! Stage histograms (PR 5) say *that* p99 moved; this module says *why
//! one request* was slow. Every request that enters the serving path
//! while tracing is enabled records a handful of [`Span`]s — parse,
//! admission, queue wait, coalesce, worker forward, retrieval stages,
//! response write — stamped by the same ~8 ns TSC [`clock`](crate::clock)
//! the stage timers use. When the root span closes, a **tail-sampling**
//! decision runs once per trace:
//!
//! - traces that were *slow* (end-to-end at/above a configurable
//!   threshold, or above the live e2e histogram's tail when a tail
//!   source is attached) are always kept;
//! - traces that ended in an *error* (a `ServeError`, a 5xx) are always
//!   kept;
//! - of the remaining fast-and-healthy majority, 1 in
//!   [`TraceConfig::sample_every`] is kept.
//!
//! Kept traces are assembled into a [`Trace`] and pushed into a fixed
//! process-global ring of completed traces; the oldest trace in a ring
//! slot is evicted on overwrite, so memory is bounded by construction.
//! Dropped traces cost two stamp reads per span and are forgotten.
//!
//! # Cost model and gating
//!
//! Like the stage clock, the whole subsystem is gated behind a single
//! branch: [`enabled`] is one relaxed atomic load, and an inactive
//! [`TraceContext`] (`trace_id == 0`) short-circuits every record call
//! at its first instruction. When enabled, a span record is two TSC
//! stamps plus one push into the trace's pre-reserved span buffer under
//! an uncontended per-trace lock (the spans of one trace are produced by
//! a causal chain — conn worker, then engine worker — so the lock is
//! never fought over in the steady state). The throughput_bench overhead
//! gate holds tracing at 1/64 sampling to within 3% of tracing disabled.
//!
//! # Concurrency and eviction semantics
//!
//! In-flight traces live in a fixed pool of slots handed out by
//! [`Tracer::begin`]; when the pool is exhausted the request simply goes
//! untraced (counted in [`TraceStats::no_slot`]). The completed ring is
//! written position `seq % capacity` under a *try-lock*: writers never
//! block — the only contender is a snapshotting reader, and losing that
//! race sheds the trace (counted in [`TraceStats::shed`]) instead of
//! stalling a worker. Admission numbers (`seq`) are monotone, so the
//! ring always holds, per slot, the newest trace that landed there:
//! eviction is strictly oldest-first modulo sheds, which the hammer test
//! in `tests/trace_hammer.rs` pins.
//!
//! # Identifiers
//!
//! Trace ids are unique non-zero `u64`s (a bijective mix of a process
//! counter, so they look random but never collide); span ids are drawn
//! from the same counter raw. Both render as 16-digit lower-case hex —
//! the same form the HTTP tier echoes in `X-Request-Id` and the
//! histograms attach as OpenMetrics exemplars.

use crate::clock::{self, Stamp};
use crate::hist::LatencyHistogram;
use crate::scalar::thread_slot;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// Spans kept per trace; further records set [`Trace::truncated`].
pub const MAX_SPANS: usize = 96;
/// In-flight trace slots; when exhausted, requests go untraced.
const ACTIVE_SLOTS: usize = 512;
/// Completed-trace ring capacity.
const RING_SLOTS: usize = 256;
/// Tail decisions between refreshes of the auto-tail threshold.
const TAIL_REFRESH_EVERY: u64 = 1024;

/// Render an id as the canonical 16-digit lower-case hex string used in
/// `X-Request-Id`, `/debug/traces`, and exemplar labels.
pub fn hex_id(id: u64) -> String {
    format!("{id:016x}")
}

/// SplitMix64 finalizer — a bijection on `u64`, so sequential inputs map
/// to unique, random-looking trace ids.
fn mix(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

/// The per-request handle threaded through the serving path. `Copy`, two
/// words of payload: which trace to record into and which span is the
/// current parent. An inactive context (`trace_id == 0`) makes every
/// record call a no-op after one branch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceContext {
    /// Trace this request records into; 0 = untraced.
    pub trace_id: u64,
    /// Current parent span id (the root span right after [`Tracer::begin`]).
    pub span_id: u64,
    /// In-flight slot index, private to the tracer.
    slot: u32,
}

impl TraceContext {
    /// The inactive context: every record call against it is a no-op.
    pub const NONE: TraceContext = TraceContext {
        trace_id: 0,
        span_id: 0,
        slot: 0,
    };

    /// Whether record calls against this context do anything.
    #[inline]
    pub fn is_active(&self) -> bool {
        self.trace_id != 0
    }

    /// The same trace with `span_id` as the parent for subsequent spans.
    #[inline]
    pub fn child(&self, span_id: u64) -> TraceContext {
        TraceContext { span_id, ..*self }
    }
}

impl Default for TraceContext {
    fn default() -> Self {
        TraceContext::NONE
    }
}

/// One timed operation inside a trace. Plain old data — `&'static` names
/// and fixed attribute slots, no allocation per span.
#[derive(Clone, Copy, Debug)]
pub struct Span {
    /// Unique (process-wide) span id.
    pub id: u64,
    /// Parent span id; 0 marks the root span.
    pub parent: u64,
    /// Operation name (`"parse"`, `"queue_wait"`, `"forward"`, …).
    pub name: &'static str,
    /// Start, in nanoseconds since the tracer was enabled.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// A causal link to a span in *another* trace (a coalesced follower
    /// links to the leader's forward span); 0 = none.
    pub link: u64,
    /// Whether the operation failed (expired, panicked, 5xx).
    pub error: bool,
    /// Small id of the recording thread (same ids the histogram shards
    /// key on) — becomes the `tid` lane in the Chrome export.
    pub tid: u64,
    /// Up to two numeric attributes (batch seq, artifact epoch); an empty
    /// name marks an unused slot.
    pub attrs: [(&'static str, u64); 2],
}

/// No attributes — the common case for most record calls.
pub const NO_ATTRS: [(&str, u64); 2] = [("", 0), ("", 0)];

/// A completed, kept trace: the root span plus every child recorded
/// before the root closed.
#[derive(Clone, Debug)]
pub struct Trace {
    /// Ring admission number; monotone across kept traces.
    pub seq: u64,
    /// The trace id (also the root span's trace).
    pub trace_id: u64,
    /// The request id the HTTP tier echoed (client-sent or generated).
    pub request_id: String,
    /// Root (end-to-end) duration in nanoseconds.
    pub dur_ns: u64,
    /// Whether the trace ended in an error.
    pub error: bool,
    /// True when more than [`MAX_SPANS`] spans were recorded and the
    /// excess was dropped.
    pub truncated: bool,
    /// All spans, in record order; the root span is last.
    pub spans: Vec<Span>,
}

/// Sampling and thresholds for [`Tracer::enable`].
#[derive(Clone, Copy, Debug)]
pub struct TraceConfig {
    /// Traces with end-to-end duration at/above this are always kept.
    pub slow_ns: u64,
    /// Keep 1 in this many fast-and-healthy traces (0 = keep none of
    /// them; slow and errored traces are always kept).
    pub sample_every: u64,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            slow_ns: 10_000_000, // 10 ms
            sample_every: 64,
        }
    }
}

/// Point-in-time tracer counters, for `/debug/traces` and the per-round
/// stats `odnet online` stamps into its JSONL.
#[derive(Clone, Copy, Debug, Default)]
pub struct TraceStats {
    /// Traces begun (slots handed out).
    pub started: u64,
    /// Traces kept by the tail decision and pushed toward the ring.
    pub kept: u64,
    /// Fast, healthy traces dropped by sampling.
    pub dropped: u64,
    /// Requests that went untraced because the in-flight pool was full.
    pub no_slot: u64,
    /// Kept traces shed because a reader held the ring slot's lock.
    pub shed: u64,
    /// Slowest end-to-end duration seen since enable, in nanoseconds.
    pub slowest_ns: u64,
    /// Trace id of (approximately — the pairing is racy under concurrent
    /// maxima) the slowest trace.
    pub slowest_id: u64,
}

/// In-flight per-trace state; reset between occupants.
struct SlotState {
    trace_id: u64,
    request_id: String,
    truncated: bool,
    spans: Vec<Span>,
}

/// The tracing subsystem. One process-global instance lives behind
/// [`global`]; tests build private instances with [`Tracer::new`].
pub struct Tracer {
    on: AtomicBool,
    /// Stamp taken at enable; span times are offsets from it.
    epoch: AtomicU64,
    slow_ns: AtomicU64,
    /// Threshold taken from the attached tail source; `u64::MAX` = unset.
    tail_ns: AtomicU64,
    sample_every: AtomicU64,
    next_id: AtomicU64,
    decisions: AtomicU64,
    started: AtomicU64,
    kept: AtomicU64,
    dropped: AtomicU64,
    no_slot: AtomicU64,
    shed: AtomicU64,
    slowest_ns: AtomicU64,
    slowest_id: AtomicU64,
    active: Vec<Mutex<SlotState>>,
    free: Mutex<Vec<u32>>,
    head: AtomicU64,
    ring: Vec<Mutex<Option<Trace>>>,
    tail_source: Mutex<Option<LatencyHistogram>>,
}

impl Default for Tracer {
    fn default() -> Self {
        Tracer::new()
    }
}

impl Tracer {
    /// A fresh, disabled tracer.
    pub fn new() -> Tracer {
        Tracer {
            on: AtomicBool::new(false),
            epoch: AtomicU64::new(0),
            slow_ns: AtomicU64::new(u64::MAX),
            tail_ns: AtomicU64::new(u64::MAX),
            sample_every: AtomicU64::new(0),
            next_id: AtomicU64::new(1),
            decisions: AtomicU64::new(0),
            started: AtomicU64::new(0),
            kept: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            no_slot: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            slowest_ns: AtomicU64::new(0),
            slowest_id: AtomicU64::new(0),
            active: (0..ACTIVE_SLOTS)
                .map(|_| {
                    Mutex::new(SlotState {
                        trace_id: 0,
                        request_id: String::new(),
                        truncated: false,
                        spans: Vec::with_capacity(MAX_SPANS),
                    })
                })
                .collect(),
            free: Mutex::new((0..ACTIVE_SLOTS as u32).rev().collect()),
            head: AtomicU64::new(0),
            ring: (0..RING_SLOTS).map(|_| Mutex::new(None)).collect(),
            tail_source: Mutex::new(None),
        }
    }

    /// Turn tracing on. Calibrates the TSC clock (so the first span never
    /// pays for calibration) and stamps the epoch all span times offset
    /// from.
    pub fn enable(&self, cfg: TraceConfig) {
        clock::calibrate();
        self.epoch.store(clock::now(), Ordering::Relaxed);
        self.slow_ns.store(cfg.slow_ns, Ordering::Relaxed);
        self.sample_every.store(cfg.sample_every, Ordering::Relaxed);
        self.on.store(true, Ordering::Release);
    }

    /// Turn tracing off. In-flight traces finish recording but nothing
    /// new begins.
    pub fn disable(&self) {
        self.on.store(false, Ordering::Release);
    }

    /// The one branch the disabled path costs.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.on.load(Ordering::Relaxed)
    }

    /// Attach a live histogram whose tail drives the slow threshold: the
    /// decision loop periodically refreshes an internal threshold to the
    /// source's p99, so "slow" tracks the workload instead of a constant.
    pub fn set_tail_source(&self, h: LatencyHistogram) {
        *self.tail_source.lock().unwrap() = h.into();
    }

    /// Current effective slow threshold (configured floor vs live tail,
    /// whichever keeps more).
    pub fn slow_threshold_ns(&self) -> u64 {
        self.slow_ns
            .load(Ordering::Relaxed)
            .min(self.tail_ns.load(Ordering::Relaxed))
    }

    fn alloc_id(&self) -> u64 {
        self.next_id.fetch_add(1, Ordering::Relaxed)
    }

    /// Start a trace for a request. Returns [`TraceContext::NONE`] when
    /// tracing is off or the in-flight pool is exhausted; `request_id` is
    /// the string the HTTP tier will echo back to the client.
    pub fn begin(&self, request_id: &str) -> TraceContext {
        if !self.enabled() {
            return TraceContext::NONE;
        }
        let slot = match self.free.lock().unwrap().pop() {
            Some(s) => s,
            None => {
                self.no_slot.fetch_add(1, Ordering::Relaxed);
                return TraceContext::NONE;
            }
        };
        let mut trace_id = mix(self.alloc_id());
        if trace_id == 0 {
            trace_id = mix(self.alloc_id());
        }
        let root_span = self.alloc_id();
        {
            let mut st = self.active[slot as usize].lock().unwrap();
            st.trace_id = trace_id;
            st.request_id.clear();
            st.request_id.push_str(request_id);
            st.truncated = false;
            st.spans.clear();
        }
        self.started.fetch_add(1, Ordering::Relaxed);
        TraceContext {
            trace_id,
            span_id: root_span,
            slot,
        }
    }

    /// Record a completed span stamped with [`clock::now`] values.
    /// Returns the new span's id (0 when the context is inactive), which
    /// callers use to parent sub-spans ([`TraceContext::child`]) or link
    /// coalesced followers.
    #[inline]
    pub fn record(&self, ctx: TraceContext, name: &'static str, start: Stamp, end: Stamp) -> u64 {
        if !ctx.is_active() {
            return 0;
        }
        let epoch = self.epoch.load(Ordering::Relaxed);
        self.record_ext(
            ctx,
            name,
            clock::ns_between(epoch, start),
            clock::ns_between(start, end),
            0,
            false,
            NO_ATTRS,
        )
    }

    /// [`record`](Self::record) with a link, error flag, and attributes.
    #[allow(clippy::too_many_arguments)]
    pub fn record_full(
        &self,
        ctx: TraceContext,
        name: &'static str,
        start: Stamp,
        end: Stamp,
        link: u64,
        error: bool,
        attrs: [(&'static str, u64); 2],
    ) -> u64 {
        if !ctx.is_active() {
            return 0;
        }
        let epoch = self.epoch.load(Ordering::Relaxed);
        self.record_ext(
            ctx,
            name,
            clock::ns_between(epoch, start),
            clock::ns_between(start, end),
            link,
            error,
            attrs,
        )
    }

    /// Record a span from explicit epoch-relative nanoseconds — used to
    /// synthesize sub-spans from stage durations measured elsewhere
    /// (e.g. `RetrievalStats` route/scan/select).
    #[allow(clippy::too_many_arguments)]
    pub fn record_ext(
        &self,
        ctx: TraceContext,
        name: &'static str,
        start_ns: u64,
        dur_ns: u64,
        link: u64,
        error: bool,
        attrs: [(&'static str, u64); 2],
    ) -> u64 {
        if !ctx.is_active() {
            return 0;
        }
        let id = self.alloc_id();
        let mut st = self.active[ctx.slot as usize].lock().unwrap();
        if st.trace_id != ctx.trace_id {
            return 0; // stale context: the slot moved on to another trace
        }
        if st.spans.len() >= MAX_SPANS {
            st.truncated = true;
            return 0;
        }
        st.spans.push(Span {
            id,
            parent: ctx.span_id,
            name,
            start_ns,
            dur_ns,
            link,
            error,
            tid: thread_slot() as u64,
            attrs,
        });
        id
    }

    /// Nanoseconds from the enable epoch to `stamp` — the offset basis
    /// for [`record_ext`](Self::record_ext).
    pub fn since_epoch_ns(&self, stamp: Stamp) -> u64 {
        clock::ns_between(self.epoch.load(Ordering::Relaxed), stamp)
    }

    /// Close the trace: record the root span, run the tail-sampling
    /// decision, and either push the assembled [`Trace`] into the ring or
    /// forget it. Returns `true` when the trace was kept.
    pub fn end(
        &self,
        ctx: TraceContext,
        root_name: &'static str,
        start: Stamp,
        end: Stamp,
        error: bool,
    ) -> bool {
        if !ctx.is_active() {
            return false;
        }
        let epoch = self.epoch.load(Ordering::Relaxed);
        let dur_ns = clock::ns_between(start, end);
        // The tail decision only needs the duration and error flag, so it
        // runs *before* the slot is touched: on the drop path (almost
        // every request at steady state) the slot's span Vec and
        // request-id String are cleared in place, keeping their capacity
        // for the next occupant instead of reallocating per request.
        let n = self.decisions.fetch_add(1, Ordering::Relaxed);
        if n.is_multiple_of(TAIL_REFRESH_EVERY) {
            if let Some(src) = self.tail_source.lock().unwrap().as_ref() {
                let p99 = src.snapshot().quantile(0.99);
                if p99 > 0 {
                    self.tail_ns.store(p99, Ordering::Relaxed);
                }
            }
        }
        let every = self.sample_every.load(Ordering::Relaxed);
        let keep =
            error || dur_ns >= self.slow_threshold_ns() || (every != 0 && n.is_multiple_of(every));
        let kept = {
            let mut st = self.active[ctx.slot as usize].lock().unwrap();
            if st.trace_id != ctx.trace_id {
                return false;
            }
            st.trace_id = 0;
            if !keep {
                st.spans.clear();
                st.request_id.clear();
                st.truncated = false;
                None
            } else {
                if st.spans.len() < MAX_SPANS {
                    st.spans.push(Span {
                        id: ctx.span_id,
                        parent: 0,
                        name: root_name,
                        start_ns: clock::ns_between(epoch, start),
                        dur_ns,
                        link: 0,
                        error,
                        tid: thread_slot() as u64,
                        attrs: NO_ATTRS,
                    });
                } else {
                    st.truncated = true;
                }
                Some((
                    std::mem::take(&mut st.spans),
                    std::mem::take(&mut st.request_id),
                    st.truncated,
                ))
            }
        };
        self.free.lock().unwrap().push(ctx.slot);

        if self.slowest_ns.fetch_max(dur_ns, Ordering::Relaxed) < dur_ns {
            // Benign race: under concurrent maxima the id may pair with a
            // near-slowest trace; stats are advisory.
            self.slowest_id.store(ctx.trace_id, Ordering::Relaxed);
        }
        let Some((spans, request_id, truncated)) = kept else {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return false;
        };
        self.kept.fetch_add(1, Ordering::Relaxed);
        let seq = self.head.fetch_add(1, Ordering::Relaxed);
        let trace = Trace {
            seq,
            trace_id: ctx.trace_id,
            request_id,
            dur_ns,
            error,
            truncated,
            spans,
        };
        match self.ring[(seq % RING_SLOTS as u64) as usize].try_lock() {
            Ok(mut slot) => {
                *slot = Some(trace);
                true
            }
            Err(_) => {
                // A reader holds the slot; shed rather than block a worker.
                self.shed.fetch_add(1, Ordering::Relaxed);
                false
            }
        }
    }

    /// Reset the slowest-trace tracker, returning the previous
    /// `(dur_ns, trace_id)` — lets a periodic reporter (e.g. the online
    /// loop's per-round rows) attribute a maximum to each window instead
    /// of the whole process lifetime.
    pub fn take_slowest(&self) -> (u64, u64) {
        let ns = self.slowest_ns.swap(0, Ordering::Relaxed);
        let id = self.slowest_id.swap(0, Ordering::Relaxed);
        (ns, id)
    }

    /// Counters snapshot.
    pub fn stats(&self) -> TraceStats {
        TraceStats {
            started: self.started.load(Ordering::Relaxed),
            kept: self.kept.load(Ordering::Relaxed),
            dropped: self.dropped.load(Ordering::Relaxed),
            no_slot: self.no_slot.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            slowest_ns: self.slowest_ns.load(Ordering::Relaxed),
            slowest_id: self.slowest_id.load(Ordering::Relaxed),
        }
    }

    /// Copy the kept traces out of the ring, newest first, filtered by
    /// minimum duration and (optionally) to errors only, capped at
    /// `limit` (0 = no cap).
    pub fn snapshot(&self, min_dur_ns: u64, errors_only: bool, limit: usize) -> Vec<Trace> {
        let mut out: Vec<Trace> = Vec::new();
        for slot in &self.ring {
            let guard = slot.lock().unwrap();
            if let Some(t) = guard.as_ref() {
                if t.dur_ns >= min_dur_ns && (!errors_only || t.error) {
                    out.push(t.clone());
                }
            }
        }
        out.sort_by_key(|t| std::cmp::Reverse(t.seq));
        if limit != 0 {
            out.truncate(limit);
        }
        out
    }

    /// Drop every kept trace and zero the slowest-trace stats — test and
    /// bench isolation between rounds.
    pub fn clear(&self) {
        for slot in &self.ring {
            *slot.lock().unwrap() = None;
        }
        self.slowest_ns.store(0, Ordering::Relaxed);
        self.slowest_id.store(0, Ordering::Relaxed);
    }
}

/// The process-global tracer the serving path records into.
pub fn global() -> &'static Tracer {
    static GLOBAL: OnceLock<Tracer> = OnceLock::new();
    GLOBAL.get_or_init(Tracer::new)
}

/// One relaxed load: is the global tracer on?
#[inline]
pub fn enabled() -> bool {
    global().enabled()
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn span_json(out: &mut String, s: &Span) {
    let _ = write!(
        out,
        "{{\"id\":\"{}\",\"parent\":\"{}\",\"name\":\"{}\",\"start_ns\":{},\"dur_ns\":{},\"tid\":{}",
        hex_id(s.id),
        hex_id(s.parent),
        escape_json(s.name),
        s.start_ns,
        s.dur_ns,
        s.tid
    );
    if s.link != 0 {
        let _ = write!(out, ",\"link\":\"{}\"", hex_id(s.link));
    }
    if s.error {
        out.push_str(",\"error\":true");
    }
    for (k, v) in s.attrs.iter().filter(|(k, _)| !k.is_empty()) {
        let _ = write!(out, ",\"{}\":{v}", escape_json(k));
    }
    out.push('}');
}

/// Render traces as the `/debug/traces` JSON document:
/// `{"traces":[{"trace_id":…,"request_id":…,"spans":[…]},…]}`.
pub fn to_json(traces: &[Trace]) -> String {
    let mut out = String::from("{\"traces\":[");
    for (i, t) in traces.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"trace_id\":\"{}\",\"request_id\":\"{}\",\"seq\":{},\"dur_ns\":{},\"error\":{},\
             \"truncated\":{},\"spans\":[",
            hex_id(t.trace_id),
            escape_json(&t.request_id),
            t.seq,
            t.dur_ns,
            t.error,
            t.truncated
        );
        for (j, s) in t.spans.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            span_json(&mut out, s);
        }
        out.push_str("]}");
    }
    out.push_str("]}");
    out
}

/// Render traces in Chrome `trace_event` JSON (complete events, `ph:"X"`,
/// microsecond timestamps) — the output of `odnet trace --chrome` and of
/// `GET /debug/traces?format=chrome`, loadable in `chrome://tracing` and
/// Perfetto. Each trace becomes one `pid` lane so concurrent requests
/// stay visually separate; `tid` is the recording thread.
pub fn to_chrome(traces: &[Trace]) -> String {
    let mut out = String::from("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[");
    let mut first = true;
    for (i, t) in traces.iter().enumerate() {
        let pid = i + 1;
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(
            out,
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\
             \"args\":{{\"name\":\"trace {} ({})\"}}}}",
            hex_id(t.trace_id),
            escape_json(&t.request_id)
        );
        for s in &t.spans {
            let _ = write!(
                out,
                ",{{\"name\":\"{}\",\"ph\":\"X\",\"ts\":{}.{:03},\"dur\":{}.{:03},\
                 \"pid\":{pid},\"tid\":{},\"args\":{{\"span_id\":\"{}\",\"parent\":\"{}\"",
                escape_json(s.name),
                s.start_ns / 1000,
                s.start_ns % 1000,
                s.dur_ns / 1000,
                s.dur_ns % 1000,
                s.tid,
                hex_id(s.id),
                hex_id(s.parent)
            );
            if s.link != 0 {
                let _ = write!(out, ",\"link\":\"{}\"", hex_id(s.link));
            }
            if s.error {
                out.push_str(",\"error\":true");
            }
            for (k, v) in s.attrs.iter().filter(|(k, _)| !k.is_empty()) {
                let _ = write!(out, ",\"{}\":{v}", escape_json(k));
            }
            out.push_str("}}");
        }
    }
    out.push_str("]}");
    out
}

/// Structural well-formedness check for a captured trace: exactly one
/// root, unique span ids, every parent present, child intervals nested
/// inside their parent's. Returns a description of the first violation.
/// Shared by `--check` assertions and the property tests.
pub fn check_well_formed(t: &Trace) -> Result<(), String> {
    use std::collections::HashMap;
    let mut by_id: HashMap<u64, &Span> = HashMap::new();
    let mut roots = 0usize;
    for s in &t.spans {
        if s.id == 0 {
            return Err("span id 0".into());
        }
        if by_id.insert(s.id, s).is_some() {
            return Err(format!("duplicate span id {}", hex_id(s.id)));
        }
        if s.parent == 0 {
            roots += 1;
        }
    }
    if roots != 1 {
        return Err(format!("{roots} roots (want 1)"));
    }
    for s in &t.spans {
        if s.parent == 0 {
            continue;
        }
        let p = by_id.get(&s.parent).ok_or_else(|| {
            format!(
                "span {} orphaned (parent {})",
                hex_id(s.id),
                hex_id(s.parent)
            )
        })?;
        let (s0, s1) = (s.start_ns, s.start_ns.saturating_add(s.dur_ns));
        let (p0, p1) = (p.start_ns, p.start_ns.saturating_add(p.dur_ns));
        if s0 < p0 || s1 > p1 {
            return Err(format!(
                "span {} [{s0},{s1}] escapes parent {} [{p0},{p1}]",
                s.name, p.name
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn on(cfg: TraceConfig) -> Tracer {
        let t = Tracer::new();
        t.enable(cfg);
        t
    }

    #[test]
    fn inactive_context_records_nothing() {
        let t = on(TraceConfig::default());
        assert_eq!(t.record(TraceContext::NONE, "x", 0, 0), 0);
        assert!(!t.end(TraceContext::NONE, "r", 0, 0, false));
        assert_eq!(t.stats().started, 0);
    }

    #[test]
    fn slow_trace_is_kept_and_well_formed() {
        let t = on(TraceConfig {
            slow_ns: 0, // everything is "slow"
            sample_every: 0,
        });
        let t0 = clock::now();
        let ctx = t.begin("req-1");
        assert!(ctx.is_active());
        let g_end = clock::now();
        let c_end = clock::now();
        let mid = t.record(ctx, "child", t0, c_end);
        assert_ne!(mid, 0);
        t.record(ctx.child(mid), "grandchild", t0, g_end);
        std::thread::sleep(std::time::Duration::from_millis(1));
        assert!(t.end(ctx, "request", t0, clock::now(), false));
        let traces = t.snapshot(0, false, 0);
        assert_eq!(traces.len(), 1);
        let tr = &traces[0];
        assert_eq!(tr.request_id, "req-1");
        assert_eq!(tr.spans.len(), 3);
        assert!(tr.dur_ns >= 500_000, "1 ms sleep traced as {}", tr.dur_ns);
        check_well_formed(tr).expect("well-formed");
    }

    #[test]
    fn fast_healthy_traces_are_sampled_one_in_n() {
        let t = on(TraceConfig {
            slow_ns: u64::MAX,
            sample_every: 4,
        });
        let mut kept = 0;
        for i in 0..16 {
            let ctx = t.begin(&format!("r{i}"));
            let now = clock::now();
            if t.end(ctx, "request", now, now, false) {
                kept += 1;
            }
        }
        assert_eq!(kept, 4, "1/4 sampling over 16 traces");
        assert_eq!(t.stats().dropped, 12);
    }

    #[test]
    fn errors_are_always_kept() {
        let t = on(TraceConfig {
            slow_ns: u64::MAX,
            sample_every: 0,
        });
        let ctx = t.begin("boom");
        let now = clock::now();
        assert!(t.end(ctx, "request", now, now, true));
        let traces = t.snapshot(0, true, 0);
        assert_eq!(traces.len(), 1);
        assert!(traces[0].error);
    }

    #[test]
    fn ring_evicts_oldest_and_filters_apply() {
        let t = on(TraceConfig {
            slow_ns: 0,
            sample_every: 0,
        });
        for i in 0..(RING_SLOTS + 10) {
            let ctx = t.begin(&format!("r{i}"));
            let now = clock::now();
            t.end(ctx, "request", now, now, false);
        }
        let traces = t.snapshot(0, false, 0);
        assert_eq!(traces.len(), RING_SLOTS);
        // Newest first, and the oldest 10 were evicted.
        assert_eq!(traces[0].seq, (RING_SLOTS + 10 - 1) as u64);
        assert!(traces.iter().all(|t| t.seq >= 10));
        assert_eq!(t.snapshot(0, false, 3).len(), 3);
        assert_eq!(t.snapshot(u64::MAX, false, 0).len(), 0);
    }

    #[test]
    fn stale_context_after_end_is_ignored() {
        let t = on(TraceConfig {
            slow_ns: 0,
            sample_every: 0,
        });
        let ctx = t.begin("a");
        let now = clock::now();
        t.end(ctx, "request", now, now, false);
        // The slot is free (maybe reused); a late record must not land.
        let ctx2 = t.begin("b");
        assert_eq!(t.record(ctx, "late", now, now), 0);
        t.end(ctx2, "request", now, now, false);
        for tr in t.snapshot(0, false, 0) {
            assert!(tr.spans.iter().all(|s| s.name != "late"));
        }
    }

    #[test]
    fn span_overflow_truncates_not_grows() {
        let t = on(TraceConfig {
            slow_ns: 0,
            sample_every: 0,
        });
        let ctx = t.begin("big");
        let now = clock::now();
        for _ in 0..(MAX_SPANS + 20) {
            t.record(ctx, "s", now, now);
        }
        t.end(ctx, "request", now, now, false);
        let tr = &t.snapshot(0, false, 0)[0];
        assert!(tr.truncated);
        assert!(tr.spans.len() <= MAX_SPANS);
    }

    #[test]
    fn json_and_chrome_exports_are_structurally_sound() {
        let t = on(TraceConfig {
            slow_ns: 0,
            sample_every: 0,
        });
        let t0 = clock::now();
        let ctx = t.begin("exp\"ort");
        let leader = t.record(ctx, "forward", t0, clock::now());
        t.record_full(
            ctx,
            "forward_link",
            t0,
            clock::now(),
            leader,
            false,
            [("batch", 7), ("epoch", 3)],
        );
        t.end(ctx, "request", t0, clock::now(), false);
        let traces = t.snapshot(0, false, 0);
        let json = to_json(&traces);
        assert!(json.starts_with("{\"traces\":["));
        assert!(json.contains("\"request_id\":\"exp\\\"ort\""));
        assert!(json.contains("\"batch\":7"));
        let chrome = to_chrome(&traces);
        assert!(chrome.contains("\"traceEvents\":["));
        assert!(chrome.contains("\"ph\":\"X\""));
        assert!(chrome.contains("\"epoch\":3"));
    }

    #[test]
    fn tail_source_tracks_the_live_histogram() {
        let t = on(TraceConfig {
            slow_ns: u64::MAX,
            sample_every: 0,
        });
        let h = LatencyHistogram::new();
        for _ in 0..100 {
            h.record(1_000);
        }
        t.set_tail_source(h);
        // First decision refreshes the tail to ~p99 of the source.
        let ctx = t.begin("fast");
        let now = clock::now();
        t.end(ctx, "request", now, now, false);
        let tail = t.slow_threshold_ns();
        assert!((1_000..10_000).contains(&tail), "tail threshold {tail}");
    }
}
