//! Property-based tests of the Fliggy dataset generator: structural
//! invariants must hold for arbitrary (small) configurations.

use od_data::{FliggyConfig, FliggyDataset};
use proptest::prelude::*;

fn configs() -> impl Strategy<Value = FliggyConfig> {
    (
        20usize..80, // users
        6usize..20,  // cities
        200u32..500, // horizon
        2usize..5,   // min bookings
        0u64..1000,  // seed
    )
        .prop_map(
            |(users, cities, horizon, min_bookings, seed)| FliggyConfig {
                num_users: users,
                num_cities: cities,
                horizon_days: horizon,
                test_window_days: horizon / 8,
                bookings_per_user: (min_bookings, min_bookings + 4),
                eval_negatives: 9,
                seed,
                ..FliggyConfig::default()
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn generator_invariants(config in configs()) {
        let cut = config.horizon_days - config.test_window_days;
        let ds = FliggyDataset::generate(config.clone());

        // Sample mix is exactly 1 : partial : full per positive.
        let s = ds.statistics();
        prop_assert_eq!(s.train_partial, s.train_pos * config.partial_negatives);
        prop_assert_eq!(s.train_full, s.train_pos * config.full_negatives);

        // Split boundary.
        prop_assert!(ds.train.iter().all(|x| x.day < cut));
        prop_assert!(ds.test.iter().all(|x| x.day >= cut));

        // Labels are consistent with the positive pair of each (user, day).
        for sample in ds.train.iter().take(200) {
            prop_assert!(sample.origin != sample.dest || sample.label_o + sample.label_d == 0.0);
            prop_assert!(sample.origin.index() < config.num_cities);
            prop_assert!(sample.dest.index() < config.num_cities);
        }

        // Histories are time-ordered and within the horizon.
        for h in &ds.histories {
            prop_assert!(h.bookings.windows(2).all(|w| w[0].day <= w[1].day));
            prop_assert!(h.bookings.iter().all(|b| b.day < config.horizon_days));
            prop_assert!(h.bookings.iter().all(|b| b.origin != b.dest));
        }

        // Eval cases: exactly one truth, valid pairs, right size.
        for case in &ds.eval_cases {
            prop_assert_eq!(case.candidates.len(), config.eval_negatives + 1);
            prop_assert!(case.true_index < case.candidates.len());
            let truth = case.candidates[case.true_index];
            prop_assert_eq!(
                case.candidates.iter().filter(|&&c| c == truth).count(),
                1
            );
            prop_assert!(case.candidates.iter().all(|(o, d)| o != d));
        }

        // HSG interactions never leak the test window.
        let max_train_bookings: usize = ds
            .histories
            .iter()
            .map(|h| h.bookings.iter().filter(|b| b.day < cut).count())
            .sum();
        prop_assert_eq!(ds.hsg_interactions().len(), max_train_bookings);
    }

    #[test]
    fn same_seed_same_dataset(config in configs()) {
        let a = FliggyDataset::generate(config.clone());
        let b = FliggyDataset::generate(config);
        prop_assert_eq!(a.train.len(), b.train.len());
        prop_assert_eq!(a.eval_cases.len(), b.eval_cases.len());
        for (x, y) in a.train.iter().zip(&b.train).take(100) {
            prop_assert_eq!((x.user, x.day, x.origin, x.dest), (y.user, y.day, y.origin, y.dest));
        }
    }

    #[test]
    fn different_seeds_differ(mut config in configs()) {
        config.num_users = config.num_users.max(40);
        let a = FliggyDataset::generate(config.clone());
        config.seed = config.seed.wrapping_add(1);
        let b = FliggyDataset::generate(config);
        // Some booking must differ (overwhelmingly likely).
        let same = a
            .histories
            .iter()
            .zip(&b.histories)
            .all(|(x, y)| x.bookings == y.bookings);
        prop_assert!(!same, "seed change produced identical data");
    }
}
