//! Property-based tests of the evaluation metrics: invariances and bounds
//! that must hold for arbitrary score/label vectors.

use od_data::{auc, rank_of_truth, RankingAccumulator};
use proptest::prelude::*;

fn scores_and_labels() -> impl Strategy<Value = (Vec<f32>, Vec<f32>)> {
    prop::collection::vec((0.0f32..1.0, prop::bool::ANY), 2..40).prop_map(|v| {
        let scores: Vec<f32> = v.iter().map(|(s, _)| *s).collect();
        let labels: Vec<f32> = v.iter().map(|(_, l)| *l as u32 as f32).collect();
        (scores, labels)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn auc_is_bounded((scores, labels) in scores_and_labels()) {
        let a = auc(&scores, &labels);
        prop_assert!((0.0..=1.0).contains(&a));
    }

    #[test]
    fn auc_is_invariant_to_monotone_transform((scores, labels) in scores_and_labels()) {
        let a = auc(&scores, &labels);
        // Strictly monotone transform must not change AUC.
        let transformed: Vec<f32> = scores.iter().map(|s| (3.0 * s + 1.0).exp()).collect();
        let b = auc(&transformed, &labels);
        prop_assert!((a - b).abs() < 1e-9, "{a} vs {b}");
    }

    #[test]
    fn auc_negation_flips((scores, labels) in scores_and_labels()) {
        let has_both = labels.iter().any(|&l| l > 0.5) && labels.iter().any(|&l| l < 0.5);
        prop_assume!(has_both);
        let a = auc(&scores, &labels);
        let negated: Vec<f32> = scores.iter().map(|s| -s).collect();
        let b = auc(&negated, &labels);
        prop_assert!((a + b - 1.0).abs() < 1e-9);
    }

    #[test]
    fn auc_single_class_is_half(scores in prop::collection::vec(0.0f32..1.0, 1..20)) {
        let ones = vec![1.0; scores.len()];
        prop_assert_eq!(auc(&scores, &ones), 0.5);
        let zeros = vec![0.0; scores.len()];
        prop_assert_eq!(auc(&scores, &zeros), 0.5);
    }

    #[test]
    fn rank_of_truth_is_bounded(
        scores in prop::collection::vec(0.0f32..1.0, 1..30),
        idx_seed in 0usize..100,
    ) {
        let idx = idx_seed % scores.len();
        let rank = rank_of_truth(&scores, idx);
        prop_assert!(rank < scores.len());
        // The max-scoring (first on ties) candidate ranks 0.
        let best = scores
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap().then(b.0.cmp(&a.0)))
            .unwrap()
            .0;
        prop_assert_eq!(rank_of_truth(&scores, best), 0);
    }

    #[test]
    fn hr_is_monotone_and_mrr_bounded_by_hr(ranks in prop::collection::vec(0usize..40, 1..50)) {
        let mut acc = RankingAccumulator::new();
        for r in &ranks {
            acc.push(*r);
        }
        let mut prev = 0.0;
        for k in 1..45 {
            let hr = acc.hr_at(k);
            prop_assert!(hr >= prev);
            prop_assert!((0.0..=1.0).contains(&hr));
            // MRR@k ≤ HR@k (each hit contributes at most 1 to both).
            prop_assert!(acc.mrr_at(k) <= hr + 1e-12);
            prev = hr;
        }
        // MRR@1 == HR@1 (paper note).
        prop_assert_eq!(acc.mrr_at(1), acc.hr_at(1));
    }

    #[test]
    fn mrr_is_monotone_in_k(ranks in prop::collection::vec(0usize..30, 1..40)) {
        let mut acc = RankingAccumulator::new();
        for r in &ranks {
            acc.push(*r);
        }
        let mut prev = 0.0;
        for k in 1..35 {
            let m = acc.mrr_at(k);
            prop_assert!(m >= prev - 1e-12);
            prev = m;
        }
    }
}
