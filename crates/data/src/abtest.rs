//! Online A/B test simulator (paper §V-E, Figure 7).
//!
//! The paper ran a week-long production A/B test over 400k Fliggy users;
//! offline we replay the same protocol against the ground-truth [`World`]'s
//! click model: each simulated day, a fixed panel of users is served a
//! top-k flight list by each method, every list slot is an impression, and
//! clicks are drawn from the world's click probability. **Common random
//! numbers** are used — the click coin-flip for a given (day, user, O, D)
//! is a hash-seeded draw, identical across methods — so CTR differences
//! reflect ranking quality, not sampling luck.

use crate::fliggy::UserHistory;
use crate::metrics::ctr;
use crate::world::{Context, World};
use od_hsg::{CityId, UserId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Configuration of the simulated A/B test.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct AbTestConfig {
    /// Number of simulated days (paper: one week).
    pub days: u32,
    /// Users sampled into each day's panel.
    pub users_per_day: usize,
    /// List length served per user (impressions per user per day).
    pub top_k: usize,
    /// First simulation day of the test (after the training horizon).
    pub start_day: u32,
    /// Seed for panel sampling and the common-random-number hash.
    pub seed: u64,
}

impl Default for AbTestConfig {
    fn default() -> Self {
        AbTestConfig {
            days: 7,
            users_per_day: 200,
            top_k: 10,
            start_day: 720,
            seed: 0xAB7E57,
        }
    }
}

/// One day's outcome for one method.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct DayOutcome {
    /// Day offset within the test (0-based).
    pub day: u32,
    /// Impressions served.
    pub impressions: u64,
    /// Clicks received.
    pub clicks: u64,
}

impl DayOutcome {
    /// The day's CTR (Eq. 14).
    pub fn ctr(&self) -> f64 {
        ctr(self.clicks, self.impressions)
    }
}

/// One served impression and its click outcome — the feedback stream an
/// online learning loop trains on (clicked slots become positives,
/// unclicked ones negatives).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct Impression {
    /// The panel user the list slot was served to.
    pub user: UserId,
    /// Absolute simulation day of the impression.
    pub day: u32,
    /// Served origin.
    pub origin: CityId,
    /// Served destination.
    pub dest: CityId,
    /// Whether the common-random-number click draw came up heads.
    pub clicked: bool,
}

/// Result of running one method through the test.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct AbTestResult {
    /// Method display name.
    pub method: String,
    /// Per-day outcomes.
    pub days: Vec<DayOutcome>,
}

impl AbTestResult {
    /// Overall CTR across the whole test.
    pub fn overall_ctr(&self) -> f64 {
        let clicks: u64 = self.days.iter().map(|d| d.clicks).sum();
        let imps: u64 = self.days.iter().map(|d| d.impressions).sum();
        ctr(clicks, imps)
    }
}

/// The simulator. Panels are fixed at construction so every method faces
/// the same users on the same days.
pub struct AbTestHarness<'w> {
    world: &'w World,
    config: AbTestConfig,
    /// `panels[d]` = users served on day `d`.
    panels: Vec<Vec<UserId>>,
    /// Per-user booking histories; the click model's novelty and return
    /// terms consume them when present.
    histories: Option<&'w [UserHistory]>,
}

impl<'w> AbTestHarness<'w> {
    /// Build the harness, sampling one user panel per day.
    pub fn new(world: &'w World, config: AbTestConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let panels = (0..config.days)
            .map(|_| {
                (0..config.users_per_day)
                    .map(|_| UserId(rng.gen_range(0..world.num_users()) as u32))
                    .collect()
            })
            .collect();
        AbTestHarness {
            world,
            config,
            panels,
            histories: None,
        }
    }

    /// Attach per-user histories so the click model includes the novelty
    /// and return-trip terms (recommended; without them the ground truth
    /// clicks ignore trip context).
    pub fn with_histories(mut self, histories: &'w [UserHistory]) -> Self {
        self.histories = Some(histories);
        self
    }

    /// The test configuration.
    pub fn config(&self) -> &AbTestConfig {
        &self.config
    }

    /// The user panel of a given day (0-based).
    pub fn panel(&self, day: u32) -> &[UserId] {
        &self.panels[day as usize]
    }

    /// Serve the whole test with `recommend(user, absolute_day, k)` and
    /// collect per-day CTRs. Deterministic for a fixed harness and method.
    pub fn run(
        &self,
        method: impl Into<String>,
        mut recommend: impl FnMut(UserId, u32, usize) -> Vec<(CityId, CityId)>,
    ) -> AbTestResult {
        let days = (0..self.config.days)
            .map(|d| self.run_day(d, &mut recommend).0)
            .collect();
        AbTestResult {
            method: method.into(),
            days,
        }
    }

    /// Serve one test day (0-based) and return both the aggregate outcome
    /// and every served impression with its click draw. This is the
    /// building block the online learning loop uses: serve day `d` on the
    /// current model, fold the clicked/unclicked impressions back into
    /// training data, retrain, publish, and move to day `d + 1` — the
    /// clicks stay common-random-number draws, so two runs with the same
    /// harness seed see identical coins for identical lists.
    pub fn run_day(
        &self,
        d: u32,
        mut recommend: impl FnMut(UserId, u32, usize) -> Vec<(CityId, CityId)>,
    ) -> (DayOutcome, Vec<Impression>) {
        let abs_day = self.config.start_day + d;
        let mut served = Vec::with_capacity(self.config.users_per_day * self.config.top_k);
        for &user in self.panel(d) {
            let list = recommend(user, abs_day, self.config.top_k);
            for &(o, dest) in list.iter().take(self.config.top_k) {
                served.push(Impression {
                    user,
                    day: abs_day,
                    origin: o,
                    dest,
                    clicked: self.click_draw(abs_day, user, o, dest),
                });
            }
        }
        let outcome = DayOutcome {
            day: d,
            impressions: served.len() as u64,
            clicks: served.iter().filter(|i| i.clicked).count() as u64,
        };
        (outcome, served)
    }

    /// Common-random-number click draw: a hash of (seed, day, user, O, D)
    /// seeds the Bernoulli draw, so every method sees the same coin for the
    /// same impression.
    fn click_draw(&self, day: u32, user: UserId, o: CityId, d: CityId) -> bool {
        let history = self
            .histories
            .map(|h| h[user.index()].bookings.as_slice())
            .unwrap_or(&[]);
        let visible = &history[..history.partition_point(|b| b.day < day)];
        let ctx = Context {
            day,
            last_booking: visible.last().copied(),
            recent_history: visible,
        };
        let p = self.world.click_probability(user, o, d, ctx);
        let mut h = self.config.seed;
        for v in [day as u64, user.0 as u64, o.0 as u64, d.0 as u64] {
            // SplitMix64-style mixing.
            h = h.wrapping_add(0x9E37_79B9_7F4A_7C15).wrapping_add(v);
            h = (h ^ (h >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            h = (h ^ (h >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            h ^= h >> 31;
        }
        let u = (h >> 11) as f64 / (1u64 << 53) as f64;
        u < p as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn world() -> World {
        World::generate(100, 20, &mut StdRng::seed_from_u64(9))
    }

    fn config() -> AbTestConfig {
        AbTestConfig {
            days: 3,
            users_per_day: 40,
            top_k: 5,
            start_day: 700,
            seed: 42,
        }
    }

    /// An "oracle" that serves the k truly-best pairs per user.
    fn oracle(world: &World) -> impl Fn(UserId, u32, usize) -> Vec<(CityId, CityId)> + '_ {
        move |user, day, k| {
            let ctx = Context {
                day,
                last_booking: None,
                recent_history: &[],
            };
            let n = world.num_cities();
            let mut pairs: Vec<(f32, (CityId, CityId))> = Vec::new();
            for o in 0..n {
                for d in 0..n {
                    if o == d {
                        continue;
                    }
                    let (o, d) = (CityId(o as u32), CityId(d as u32));
                    pairs.push((world.utility(user, o, d, ctx), (o, d)));
                }
            }
            pairs.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap());
            pairs.into_iter().take(k).map(|(_, p)| p).collect()
        }
    }

    /// A random recommender.
    fn random(
        world: &World,
        seed: u64,
    ) -> impl FnMut(UserId, u32, usize) -> Vec<(CityId, CityId)> + '_ {
        let mut rng = StdRng::seed_from_u64(seed);
        move |_, _, k| {
            let n = world.num_cities() as u32;
            (0..k)
                .map(|_| loop {
                    let o = CityId(rng.gen_range(0..n));
                    let d = CityId(rng.gen_range(0..n));
                    if o != d {
                        return (o, d);
                    }
                })
                .collect()
        }
    }

    #[test]
    fn impressions_equal_panel_times_k() {
        let w = world();
        let h = AbTestHarness::new(&w, config());
        let result = h.run("oracle", oracle(&w));
        for day in &result.days {
            assert_eq!(day.impressions, 40 * 5);
        }
        assert_eq!(result.days.len(), 3);
    }

    #[test]
    fn oracle_beats_random() {
        let w = world();
        let h = AbTestHarness::new(&w, config());
        let good = h.run("oracle", oracle(&w)).overall_ctr();
        let bad = h.run("random", random(&w, 1)).overall_ctr();
        assert!(
            good > bad + 0.05,
            "oracle CTR {good} must clearly beat random {bad}"
        );
    }

    #[test]
    fn panels_are_identical_across_runs() {
        let w = world();
        let h1 = AbTestHarness::new(&w, config());
        let h2 = AbTestHarness::new(&w, config());
        for d in 0..3 {
            assert_eq!(h1.panel(d), h2.panel(d));
        }
    }

    #[test]
    fn common_random_numbers_make_runs_deterministic() {
        let w = world();
        let h = AbTestHarness::new(&w, config());
        let a = h.run("oracle", oracle(&w));
        let b = h.run("oracle", oracle(&w));
        for (x, y) in a.days.iter().zip(&b.days) {
            assert_eq!(x.clicks, y.clicks);
        }
    }

    #[test]
    fn ctr_values_are_probabilities() {
        let w = world();
        let h = AbTestHarness::new(&w, config());
        let r = h.run("oracle", oracle(&w));
        for d in &r.days {
            let c = d.ctr();
            assert!((0.0..=1.0).contains(&c));
        }
        assert!((0.0..=1.0).contains(&r.overall_ctr()));
    }
}
