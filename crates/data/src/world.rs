//! The ground-truth world model.
//!
//! Everything downstream — history rollout, training samples, and the online
//! A/B click simulator — draws from one latent utility model, so offline
//! ranking quality and simulated CTR measure the same underlying preference
//! structure (as they do in the paper's production system). The utility
//! plants exactly the paper's two challenges:
//!
//! 1. **Exploration of O&D** — the origin term rewards departing from a
//!    nearby *hub* when its flights are cheaper than the home city's, and
//!    the destination term is driven by a *pattern* preference shared across
//!    cities, so unvisited same-pattern cities are genuinely good choices.
//! 2. **Unity of O&D** — the price term couples O and D through the route
//!    price matrix, and a strong *return-trip* bonus makes the best (O, D)
//!    depend jointly on the previous booking.

use crate::cities::{City, Pattern};
use od_hsg::{CityId, UserId};
use rand::Rng;
use rand_distr::{Distribution, Gumbel};
use serde::{Deserialize, Serialize};

/// Days per simulated month (the generator uses a 12×30-day calendar).
pub const DAYS_PER_MONTH: u32 = 30;

/// A synthetic user profile — the latent preferences the models must learn.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct UserProfile {
    /// Stable id, also the HSG user-node index.
    pub id: UserId,
    /// Home (resident) city.
    pub home: CityId,
    /// Preference weight per [`Pattern`] (higher = more liked).
    pub pattern_prefs: [f32; 5],
    /// How strongly price reduces utility (≥ 0).
    pub price_sensitivity: f32,
    /// Willingness to depart from a non-home city (≥ 0).
    pub origin_flexibility: f32,
    /// Month (0–11) of a yearly vacation habit, if any.
    pub seasonal_month: Option<u8>,
    /// Pattern preferred during the seasonal month.
    pub seasonal_pattern: Pattern,
}

/// One historical booking event.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Booking {
    /// Simulation day (0 = start of the 2-year window).
    pub day: u32,
    /// Origin city.
    pub origin: CityId,
    /// Destination city.
    pub dest: CityId,
}

/// One short-term click event (same payload, different meaning).
pub type Click = Booking;

/// Route price model: `price(o, d)` grows with distance and drops for hub
/// origins — the paper's Figure 1 phenomenon (Shanghai→Sanya cheaper than
/// Ningbo→Sanya).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PriceModel {
    n: usize,
    /// Row-major `price[o][d]`, normalized to roughly [0, 1].
    prices: Vec<f32>,
}

impl PriceModel {
    /// Build from the city universe with per-route noise.
    pub fn new(cities: &[City], rng: &mut impl Rng) -> Self {
        let n = cities.len();
        let mut prices = vec![0.0f32; n * n];
        // Normalize distances by the map diagonal so prices land in [0, ~1].
        let mut max_d = 1e-9;
        for a in cities {
            for b in cities {
                max_d = f64::max(max_d, a.coords.l2(b.coords));
            }
        }
        for (i, a) in cities.iter().enumerate() {
            for (j, b) in cities.iter().enumerate() {
                if i == j {
                    continue;
                }
                let dist = (a.coords.l2(b.coords) / max_d) as f32;
                let mut p = 0.25 + 0.75 * dist.powf(0.7);
                if a.is_hub {
                    // Dense competition out of hubs → cheaper fares.
                    p *= 0.65;
                }
                p *= rng.gen_range(0.9..1.1);
                prices[i * n + j] = p;
            }
        }
        PriceModel { n, prices }
    }

    /// Price of the route `o → d` (0 for o == d).
    pub fn price(&self, o: CityId, d: CityId) -> f32 {
        self.prices[o.index() * self.n + d.index()]
    }
}

/// Context the utility depends on besides the (O, D) pair itself.
#[derive(Clone, Copy, Debug, Default)]
pub struct Context<'a> {
    /// Simulation day of the decision.
    pub day: u32,
    /// The user's most recent booking, if any (drives the return-trip term).
    pub last_booking: Option<Booking>,
    /// The user's recent booking history (drives the novelty term: travellers
    /// avoid destinations they visited recently, which is what makes
    /// *exploring* unvisited same-pattern cities necessary).
    pub recent_history: &'a [Booking],
}

/// The ground-truth world: cities, users, prices, and the latent utility.
#[derive(Clone, Debug)]
pub struct World {
    /// City universe.
    pub cities: Vec<City>,
    /// User population.
    pub users: Vec<UserProfile>,
    /// Route prices.
    pub prices: PriceModel,
}

/// Weights of the utility terms (fixed; models must discover them from
/// behaviour, not from this struct).
mod weights {
    pub const HOME_ORIGIN: f32 = 2.0;
    pub const ORIGIN_DISTANCE: f32 = 0.9;
    pub const PATTERN: f32 = 1.6;
    pub const POPULARITY: f32 = 0.8;
    pub const PRICE: f32 = 2.4;
    pub const SEASONAL: f32 = 1.6;
    pub const RETURN_TRIP: f32 = 3.5;
    /// Days within which a reverse trip counts as a "return ticket".
    pub const RETURN_WINDOW: u32 = 21;
    /// Penalty for re-visiting a destination seen within NOVELTY_WINDOW —
    /// vacationers seek new places, so the next trip is usually an
    /// *unvisited* city of a liked pattern (the exploration signal).
    pub const NOVELTY: f32 = 1.8;
    pub const NOVELTY_WINDOW: u32 = 150;
}

impl World {
    /// Generate a world with `num_users` users over `num_cities` cities.
    pub fn generate(num_users: usize, num_cities: usize, rng: &mut impl Rng) -> Self {
        let cities = crate::cities::generate_cities(num_cities, rng);
        World::from_cities(cities, num_users, rng)
    }

    /// Build a world over a caller-supplied city universe (e.g. the rail
    /// corridor of [`crate::cities::generate_corridor_cities`]) — the §VII
    /// generalization hook.
    pub fn from_cities(cities: Vec<City>, num_users: usize, rng: &mut impl Rng) -> Self {
        let num_cities = cities.len();
        let prices = PriceModel::new(&cities, rng);
        let users = (0..num_users)
            .map(|i| {
                let home = CityId(rng.gen_range(0..num_cities) as u32);
                let mut pattern_prefs = [0.0f32; 5];
                for p in &mut pattern_prefs {
                    *p = rng.gen_range(0.0..1.0);
                }
                // Sharpen: each user strongly prefers one or two patterns,
                // which is what makes pattern-based exploration learnable.
                let fav = rng.gen_range(0..5);
                pattern_prefs[fav] += 1.2;
                let seasonal_month = if rng.gen_bool(0.5) {
                    Some(rng.gen_range(0..12u8))
                } else {
                    None
                };
                UserProfile {
                    id: UserId(i as u32),
                    home,
                    pattern_prefs,
                    price_sensitivity: rng.gen_range(0.4..1.6),
                    origin_flexibility: rng.gen_range(0.2..1.4),
                    seasonal_month,
                    seasonal_pattern: Pattern::ALL[rng.gen_range(0..5)],
                }
            })
            .collect();
        World {
            cities,
            users,
            prices,
        }
    }

    /// Number of cities.
    pub fn num_cities(&self) -> usize {
        self.cities.len()
    }

    /// Number of users.
    pub fn num_users(&self) -> usize {
        self.users.len()
    }

    /// The latent utility of user `u` booking the flight `o → d` in context
    /// `ctx`. Deterministic; decision noise is added at choice time.
    pub fn utility(&self, u: UserId, o: CityId, d: CityId, ctx: Context<'_>) -> f32 {
        if o == d {
            return f32::NEG_INFINITY;
        }
        let user = &self.users[u.index()];
        let oc = &self.cities[o.index()];
        let dc = &self.cities[d.index()];

        // The user's physical location: their last destination if the trip
        // is recent (they are still away), otherwise home.
        let base_city = match ctx.last_booking {
            Some(last) if ctx.day.saturating_sub(last.day) <= weights::RETURN_WINDOW => last.dest,
            _ => user.home,
        };
        let base = &self.cities[base_city.index()];

        // Origin: the current city is best, nearby cities usable in
        // proportion to the user's flexibility; distance on the map scale.
        let origin_term = if o == base_city {
            weights::HOME_ORIGIN
        } else {
            let dist = base.coords.l2(oc.coords) as f32;
            user.origin_flexibility - weights::ORIGIN_DISTANCE * dist.min(6.0)
        };

        // Destination: pattern preference + popularity prior.
        let mut dest_term = weights::PATTERN * user.pattern_prefs[dc.pattern.index()]
            + weights::POPULARITY * dc.popularity;
        if let Some(m) = user.seasonal_month {
            let month = (ctx.day / DAYS_PER_MONTH) % 12;
            if month == m as u32 && dc.pattern == user.seasonal_pattern {
                dest_term += weights::SEASONAL;
            }
        }

        // Price couples O and D (hub origins are cheaper — exploration pays).
        let price_term = -user.price_sensitivity * weights::PRICE * self.prices.price(o, d);

        // Novelty: recently visited destinations lose appeal (going *home*
        // is exempt — return legs are driven by the return term below).
        let mut novelty_term = 0.0;
        if d != user.home {
            let revisits = ctx
                .recent_history
                .iter()
                .filter(|b| b.dest == d && ctx.day.saturating_sub(b.day) <= weights::NOVELTY_WINDOW)
                .count();
            novelty_term = -weights::NOVELTY * (revisits.min(2) as f32);
        }

        // Return-trip demand: the strongest O&D-unity signal.
        let return_term = match ctx.last_booking {
            Some(last)
                if last.origin == d
                    && last.dest == o
                    && ctx.day.saturating_sub(last.day) <= weights::RETURN_WINDOW =>
            {
                weights::RETURN_TRIP
            }
            _ => 0.0,
        };

        origin_term + dest_term + price_term + return_term + novelty_term
    }

    /// Sample one booking by Gumbel-perturbed utility maximization over all
    /// (O, D) pairs (equivalent to a softmax choice with temperature
    /// `temperature`).
    pub fn sample_choice(
        &self,
        u: UserId,
        ctx: Context<'_>,
        temperature: f32,
        rng: &mut impl Rng,
    ) -> (CityId, CityId) {
        let gumbel = Gumbel::new(0.0f32, 1.0).expect("valid gumbel");
        let n = self.num_cities();
        let mut best = (CityId(0), CityId(1));
        let mut best_score = f32::NEG_INFINITY;
        for o in 0..n {
            for d in 0..n {
                if o == d {
                    continue;
                }
                let (o, d) = (CityId(o as u32), CityId(d as u32));
                let score = self.utility(u, o, d, ctx) + temperature * gumbel.sample(rng);
                if score > best_score {
                    best_score = score;
                    best = (o, d);
                }
            }
        }
        best
    }

    /// Ground-truth click probability for an impression of `o → d` shown to
    /// `u` — a squashed utility, used by the A/B simulator.
    pub fn click_probability(&self, u: UserId, o: CityId, d: CityId, ctx: Context<'_>) -> f32 {
        let util = self.utility(u, o, d, ctx);
        // Center the sigmoid so that typical good offers land around 0.2–0.5
        // CTR and bad ones near zero, mirroring industrial CTR magnitudes.
        1.0 / (1.0 + (-(util - 2.5)).exp())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn world() -> World {
        World::generate(50, 30, &mut StdRng::seed_from_u64(11))
    }

    #[test]
    fn generate_populates_everything() {
        let w = world();
        assert_eq!(w.num_users(), 50);
        assert_eq!(w.num_cities(), 30);
        assert!(w.users.iter().all(|u| u.home.index() < 30));
    }

    #[test]
    fn self_loop_is_impossible() {
        let w = world();
        let ctx = Context::default();
        assert_eq!(
            w.utility(UserId(0), CityId(3), CityId(3), ctx),
            f32::NEG_INFINITY
        );
    }

    #[test]
    fn home_origin_beats_far_origin() {
        let w = world();
        let u = UserId(0);
        let home = w.users[0].home;
        // Pick the city farthest from home as the bad origin.
        let far = (0..w.num_cities())
            .map(|i| CityId(i as u32))
            .filter(|&c| c != home)
            .max_by(|&a, &b| {
                let ha = w.cities[home.index()].coords.l2(w.cities[a.index()].coords);
                let hb = w.cities[home.index()].coords.l2(w.cities[b.index()].coords);
                ha.partial_cmp(&hb).unwrap()
            })
            .unwrap();
        let dest = (0..w.num_cities())
            .map(|i| CityId(i as u32))
            .find(|&c| c != home && c != far)
            .unwrap();
        let ctx = Context::default();
        assert!(w.utility(u, home, dest, ctx) > w.utility(u, far, dest, ctx));
    }

    #[test]
    fn return_trip_bonus_applies_within_window() {
        let w = world();
        let u = UserId(1);
        let (a, b) = (CityId(0), CityId(5));
        let last = Booking {
            day: 100,
            origin: a,
            dest: b,
        };
        let ctx_with = Context {
            day: 110,
            last_booking: Some(last),
            recent_history: &[],
        };
        let ctx_late = Context {
            day: 100 + 60,
            last_booking: Some(last),
            recent_history: &[],
        };
        let ctx_without = Context {
            day: 110,
            last_booking: None,
            recent_history: &[],
        };
        let with = w.utility(u, b, a, ctx_with);
        let late = w.utility(u, b, a, ctx_late);
        let without = w.utility(u, b, a, ctx_without);
        assert!(with > without + 3.0);
        assert!((late - without).abs() < 1e-6, "window must expire");
        // Within the window the reverse leg (b → a) must dominate repeating
        // the outbound leg (a → b): the user is *at* b and wants to return.
        let repeat = w.utility(u, a, b, ctx_with);
        assert!(
            with > repeat + 3.0,
            "return {with} must beat repeat {repeat}"
        );
    }

    #[test]
    fn hub_origin_is_cheaper_on_average() {
        let w = world();
        let hubs: Vec<usize> = (0..w.num_cities())
            .filter(|&i| w.cities[i].is_hub)
            .collect();
        let non_hubs: Vec<usize> = (0..w.num_cities())
            .filter(|&i| !w.cities[i].is_hub)
            .collect();
        assert!(!hubs.is_empty());
        let avg = |set: &[usize]| -> f32 {
            let mut total = 0.0;
            let mut count = 0;
            for &o in set {
                for d in 0..w.num_cities() {
                    if d != o {
                        total += w.prices.price(CityId(o as u32), CityId(d as u32));
                        count += 1;
                    }
                }
            }
            total / count as f32
        };
        assert!(avg(&hubs) < avg(&non_hubs) * 0.85);
    }

    #[test]
    fn sample_choice_returns_valid_pairs_and_tracks_utility() {
        let w = world();
        let mut rng = StdRng::seed_from_u64(5);
        let ctx = Context::default();
        // At low temperature the choice should be near-greedy: its utility
        // must be close to the max utility.
        let (o, d) = w.sample_choice(UserId(2), ctx, 0.05, &mut rng);
        assert_ne!(o, d);
        let chosen = w.utility(UserId(2), o, d, ctx);
        let max = (0..w.num_cities())
            .flat_map(|a| (0..w.num_cities()).map(move |b| (a, b)))
            .filter(|&(a, b)| a != b)
            .map(|(a, b)| w.utility(UserId(2), CityId(a as u32), CityId(b as u32), ctx))
            .fold(f32::NEG_INFINITY, f32::max);
        assert!(chosen > max - 1.0, "chosen {chosen} vs max {max}");
    }

    #[test]
    fn click_probability_is_a_probability_and_monotone_in_utility() {
        let w = world();
        let ctx = Context::default();
        let mut pairs: Vec<(f32, f32)> = Vec::new();
        for o in 0..10 {
            for d in 0..10 {
                if o == d {
                    continue;
                }
                let (o, d) = (CityId(o), CityId(d));
                let p = w.click_probability(UserId(3), o, d, ctx);
                assert!((0.0..=1.0).contains(&p));
                pairs.push((w.utility(UserId(3), o, d, ctx), p));
            }
        }
        pairs.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        for w2 in pairs.windows(2) {
            assert!(w2[0].1 <= w2[1].1 + 1e-6);
        }
    }

    #[test]
    fn seasonal_bonus_only_in_month() {
        let w = world();
        // Find a seasonal user.
        let user = w
            .users
            .iter()
            .find(|u| u.seasonal_month.is_some())
            .expect("some user is seasonal");
        let m = user.seasonal_month.unwrap() as u32;
        // A destination with the seasonal pattern.
        let dest = w
            .cities
            .iter()
            .find(|c| c.pattern == user.seasonal_pattern && c.id != user.home)
            .expect("a seasonal-pattern city exists");
        let origin = user.home;
        let in_month = Context {
            day: m * DAYS_PER_MONTH + 5,
            last_booking: None,
            recent_history: &[],
        };
        let off_month = Context {
            day: ((m + 6) % 12) * DAYS_PER_MONTH + 5,
            last_booking: None,
            recent_history: &[],
        };
        let u_in = w.utility(user.id, origin, dest.id, in_month);
        let u_off = w.utility(user.id, origin, dest.id, off_month);
        assert!(u_in > u_off + 1.0);
    }
}
