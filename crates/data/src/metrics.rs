//! Evaluation metrics: AUC, HR@k, MRR@k (paper §V-A.2) and CTR (Eq. 14).

/// Area under the ROC curve via the rank-sum statistic, with tied scores
/// handled by midranks. Returns 0.5 when either class is empty.
///
/// NaN scores are tolerated: `total_cmp` orders them above +∞ (so a NaN
/// score counts as "ranked best"), and evaluation of a misbehaving model
/// degrades its metrics instead of panicking the harness.
pub fn auc(scores: &[f32], labels: &[f32]) -> f64 {
    assert_eq!(scores.len(), labels.len(), "auc input length mismatch");
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| scores[a].total_cmp(&scores[b]));
    // Midrank assignment.
    let mut ranks = vec![0.0f64; scores.len()];
    let mut i = 0;
    while i < order.len() {
        let mut j = i;
        while j + 1 < order.len() && scores[order[j + 1]] == scores[order[i]] {
            j += 1;
        }
        let midrank = (i + j) as f64 / 2.0 + 1.0;
        for &idx in &order[i..=j] {
            ranks[idx] = midrank;
        }
        i = j + 1;
    }
    let pos: Vec<usize> = (0..labels.len()).filter(|&i| labels[i] > 0.5).collect();
    let n_pos = pos.len() as f64;
    let n_neg = (labels.len() - pos.len()) as f64;
    if n_pos == 0.0 || n_neg == 0.0 {
        return 0.5;
    }
    let rank_sum: f64 = pos.iter().map(|&i| ranks[i]).sum();
    (rank_sum - n_pos * (n_pos + 1.0) / 2.0) / (n_pos * n_neg)
}

/// Outcome of ranking one evaluation case: the 0-based position of the true
/// item in the descending-score order (`None` if it wasn't among the
/// candidates, which cannot happen for our generated cases).
pub fn rank_of_truth(scores: &[f32], true_index: usize) -> usize {
    let true_score = scores[true_index];
    // Position = number of candidates strictly better, counting earlier ties
    // as better (pessimistic, avoids inflating metrics on degenerate models
    // that emit constant scores).
    scores
        .iter()
        .enumerate()
        .filter(|&(i, &s)| s > true_score || (s == true_score && i < true_index))
        .count()
}

/// Accumulates ranking outcomes into HR@k and MRR@k.
#[derive(Clone, Debug, Default)]
pub struct RankingAccumulator {
    ranks: Vec<usize>,
}

impl RankingAccumulator {
    /// Empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record the 0-based rank of one case's true item.
    pub fn push(&mut self, rank: usize) {
        self.ranks.push(rank);
    }

    /// Number of recorded cases.
    pub fn len(&self) -> usize {
        self.ranks.len()
    }

    /// Whether no cases were recorded.
    pub fn is_empty(&self) -> bool {
        self.ranks.is_empty()
    }

    /// Hit ratio at `k` (Eq. 12): share of cases whose true item landed in
    /// the top-k.
    pub fn hr_at(&self, k: usize) -> f64 {
        if self.ranks.is_empty() {
            return 0.0;
        }
        let hits = self.ranks.iter().filter(|&&r| r < k).count();
        hits as f64 / self.ranks.len() as f64
    }

    /// Mean reciprocal rank at `k` (Eq. 13): `1/(rank+1)` for cases in the
    /// top-k, 0 otherwise.
    pub fn mrr_at(&self, k: usize) -> f64 {
        if self.ranks.is_empty() {
            return 0.0;
        }
        let total: f64 = self
            .ranks
            .iter()
            .map(|&r| if r < k { 1.0 / (r as f64 + 1.0) } else { 0.0 })
            .sum();
        total / self.ranks.len() as f64
    }
}

/// Click-through rate (Eq. 14): clicks / impressions.
pub fn ctr(clicks: u64, impressions: u64) -> f64 {
    if impressions == 0 {
        0.0
    } else {
        clicks as f64 / impressions as f64
    }
}

/// The standard metric bundle reported by the paper's Tables III/IV.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct RankingMetrics {
    /// HR@1 (= MRR@1).
    pub hr1: f64,
    /// HR@5.
    pub hr5: f64,
    /// HR@10.
    pub hr10: f64,
    /// MRR@5.
    pub mrr5: f64,
    /// MRR@10.
    pub mrr10: f64,
}

impl RankingMetrics {
    /// Extract the bundle from an accumulator.
    pub fn from_accumulator(acc: &RankingAccumulator) -> Self {
        RankingMetrics {
            hr1: acc.hr_at(1),
            hr5: acc.hr_at(5),
            hr10: acc.hr_at(10),
            mrr5: acc.mrr_at(5),
            mrr10: acc.mrr_at(10),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn auc_perfect_and_inverted() {
        let scores = [0.9, 0.8, 0.2, 0.1];
        let labels = [1.0, 1.0, 0.0, 0.0];
        assert_eq!(auc(&scores, &labels), 1.0);
        let inverted = [0.1, 0.2, 0.8, 0.9];
        assert_eq!(auc(&inverted, &labels), 0.0);
    }

    #[test]
    fn auc_random_is_half() {
        // All scores tied → midranks → AUC exactly 0.5.
        let scores = [0.5; 6];
        let labels = [1.0, 0.0, 1.0, 0.0, 1.0, 0.0];
        assert!((auc(&scores, &labels) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn auc_known_value_with_tie() {
        // scores: pos {0.8, 0.5}, neg {0.5, 0.2}.
        // Pairs: (0.8 vs 0.5)=1, (0.8 vs 0.2)=1, (0.5 vs 0.5)=0.5,
        // (0.5 vs 0.2)=1 → AUC = 3.5/4.
        let scores = [0.8, 0.5, 0.5, 0.2];
        let labels = [1.0, 1.0, 0.0, 0.0];
        assert!((auc(&scores, &labels) - 0.875).abs() < 1e-12);
    }

    #[test]
    fn auc_tolerates_nan_scores() {
        // Regression: this used to panic on the `partial_cmp` expect. A NaN
        // score sorts above +∞ under total_cmp, so a NaN on a negative ranks
        // it "best" and drags the AUC down — but the harness stays alive.
        let scores = [0.9, f32::NAN, 0.2, 0.1];
        let labels = [1.0, 0.0, 1.0, 0.0];
        let a = auc(&scores, &labels);
        assert!(a.is_finite());
        assert!((0.0..=1.0).contains(&a));
        // All-NaN stays well-defined too (NaNs don't midrank-tie because
        // NaN == NaN is false, but the positional ranks are still valid).
        let all_nan = [f32::NAN; 4];
        let a = auc(&all_nan, &labels);
        assert!(a.is_finite() && (0.0..=1.0).contains(&a));
    }

    #[test]
    fn auc_single_class_degenerates_to_half() {
        assert_eq!(auc(&[0.1, 0.9], &[1.0, 1.0]), 0.5);
        assert_eq!(auc(&[], &[]), 0.5);
    }

    #[test]
    fn rank_of_truth_counts_strictly_better() {
        let scores = [0.3, 0.9, 0.5, 0.1];
        assert_eq!(rank_of_truth(&scores, 1), 0); // best
        assert_eq!(rank_of_truth(&scores, 2), 1);
        assert_eq!(rank_of_truth(&scores, 3), 3); // worst
    }

    #[test]
    fn rank_of_truth_ties_are_pessimistic() {
        let scores = [0.5, 0.5, 0.5];
        assert_eq!(rank_of_truth(&scores, 0), 0);
        assert_eq!(rank_of_truth(&scores, 2), 2);
    }

    #[test]
    fn hr_and_mrr_basic() {
        let mut acc = RankingAccumulator::new();
        acc.push(0); // hit@1, rr 1
        acc.push(3); // hit@5, rr 1/4
        acc.push(12); // miss@10
        assert_eq!(acc.len(), 3);
        assert!((acc.hr_at(1) - 1.0 / 3.0).abs() < 1e-12);
        assert!((acc.hr_at(5) - 2.0 / 3.0).abs() < 1e-12);
        assert!((acc.hr_at(10) - 2.0 / 3.0).abs() < 1e-12);
        assert!((acc.mrr_at(5) - (1.0 + 0.25) / 3.0).abs() < 1e-12);
    }

    #[test]
    fn mrr_at_one_equals_hr_at_one() {
        // The paper notes MRR@k = HR@k for k = 1.
        let mut acc = RankingAccumulator::new();
        for r in [0, 2, 0, 7, 1] {
            acc.push(r);
        }
        assert_eq!(acc.mrr_at(1), acc.hr_at(1));
    }

    #[test]
    fn hr_monotone_in_k() {
        let mut acc = RankingAccumulator::new();
        for r in [0, 1, 4, 9, 15, 3] {
            acc.push(r);
        }
        let mut prev = 0.0;
        for k in 1..20 {
            let h = acc.hr_at(k);
            assert!(h >= prev);
            prev = h;
        }
    }

    #[test]
    fn ctr_division() {
        assert_eq!(ctr(25, 100), 0.25);
        assert_eq!(ctr(0, 0), 0.0);
        assert_eq!(ctr(5, 0), 0.0);
    }

    #[test]
    fn metrics_bundle() {
        let mut acc = RankingAccumulator::new();
        acc.push(0);
        acc.push(6);
        let m = RankingMetrics::from_accumulator(&acc);
        assert_eq!(m.hr1, 0.5);
        assert_eq!(m.hr5, 0.5);
        assert_eq!(m.hr10, 1.0);
        assert!((m.mrr10 - (1.0 + 1.0 / 7.0) / 2.0).abs() < 1e-12);
    }
}
