//! The synthetic city universe.
//!
//! The Fliggy dataset is proprietary, so the reproduction generates a city
//! map with the structure the paper's motivating examples rely on:
//!
//! - cities carry a **pattern** (seaside, mountain, metro, …) so that
//!   destination exploration ("users who liked Sanya may like Qingdao,
//!   another seaside city") is learnable from co-visitation;
//! - a minority of cities are **hubs** with cheaper outbound flights, so
//!   that origin exploration ("fly from nearby Shanghai instead of Ningbo")
//!   pays off;
//! - coordinates are laid out in pattern clusters plus jitter, so that the
//!   Eq. 2 inverse-distance weights carry signal.

use od_hsg::{CityId, GeoPoint};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Thematic pattern of a city — the latent attribute behind the paper's
/// "cities with the same pattern" destination-exploration example.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Pattern {
    /// Coastal vacation cities (Sanya, Qingdao, Dalian…).
    Seaside,
    /// Mountain/scenery cities.
    Mountain,
    /// Large business metros (usually hubs).
    Metro,
    /// Historic/cultural cities (Xi'an…).
    Historic,
    /// Tourist cities (Dali, Kunming…).
    Tourist,
}

impl Pattern {
    /// All patterns in dense order.
    pub const ALL: [Pattern; 5] = [
        Pattern::Seaside,
        Pattern::Mountain,
        Pattern::Metro,
        Pattern::Historic,
        Pattern::Tourist,
    ];

    /// Dense index for preference vectors.
    pub fn index(self) -> usize {
        Self::ALL.iter().position(|&p| p == self).expect("in ALL")
    }
}

/// A synthetic city.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct City {
    /// Stable id, also the HSG city-node index.
    pub id: CityId,
    /// Synthetic display name, e.g. `"metro-3"`.
    pub name: String,
    /// Longitude/latitude.
    pub coords: GeoPoint,
    /// Thematic pattern.
    pub pattern: Pattern,
    /// Hub cities have denser, cheaper outbound routes.
    pub is_hub: bool,
    /// Base attractiveness (popularity prior), roughly Zipf-distributed.
    pub popularity: f32,
}

/// Generate a city universe of `n` cities.
///
/// Layout: each pattern owns a spatial cluster center; its cities scatter
/// around it. Every ~6th metro city is a hub. Popularity follows a Zipf-like
/// `1/(rank+1)^0.8` profile shuffled across cities.
pub fn generate_cities(n: usize, rng: &mut impl Rng) -> Vec<City> {
    assert!(
        n >= Pattern::ALL.len(),
        "need at least one city per pattern"
    );
    // Cluster centers spread out on a synthetic map ~ China's extent.
    let centers = [
        (118.0, 26.0), // seaside: southeast coast
        (103.0, 30.0), // mountain: southwest
        (116.0, 36.0), // metro: east-central
        (109.0, 34.0), // historic: central
        (101.0, 25.0), // tourist: Yunnan-like
    ];
    let mut cities = Vec::with_capacity(n);
    let mut pattern_counts = [0usize; 5];
    for i in 0..n {
        let pattern = Pattern::ALL[i % Pattern::ALL.len()];
        let pi = pattern.index();
        let (clon, clat) = centers[pi];
        let coords = GeoPoint {
            lon: clon + rng.gen_range(-4.0..4.0),
            lat: clat + rng.gen_range(-3.0..3.0),
        };
        // Hubs: the first metro city of every block of 6 cities.
        let is_hub = pattern == Pattern::Metro && pattern_counts[pi] % 2 == 0;
        pattern_counts[pi] += 1;
        cities.push(City {
            id: CityId(i as u32),
            name: format!("{:?}-{}", pattern, pattern_counts[pi]).to_lowercase(),
            coords,
            pattern,
            is_hub,
            popularity: 0.0,
        });
    }
    // Zipf-ish popularity assigned to a random permutation of cities, with
    // hubs boosted (big metros are popular in reality).
    let mut order: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        order.swap(i, rng.gen_range(0..=i));
    }
    for (rank, &idx) in order.iter().enumerate() {
        cities[idx].popularity = 1.0 / (rank as f32 + 1.0).powf(0.8);
    }
    for c in &mut cities {
        if c.is_hub {
            c.popularity = (c.popularity * 2.0).min(1.0);
        }
    }
    cities
}

/// Generate a rail-corridor city universe: `n` stations along a main line
/// (think Beijing–Shanghai HSR) with spur jitter. Patterns rotate along the
/// corridor so pattern clusters are *segments* of the line; hubs are the
/// large interchange stations every ~8 stops. Used by the paper's §VII
/// generalization claim ("ODNET can also be directly applied to achieve
/// high-quality train recommendation").
pub fn generate_corridor_cities(n: usize, rng: &mut impl Rng) -> Vec<City> {
    assert!(
        n >= Pattern::ALL.len(),
        "need at least one city per pattern"
    );
    let mut cities = Vec::with_capacity(n);
    let mut pattern_counts = [0usize; 5];
    for i in 0..n {
        let t = i as f64 / (n - 1).max(1) as f64;
        // Main line from (116, 40) to (121, 31) with small spur offsets.
        let coords = GeoPoint {
            lon: 116.0 + 5.0 * t + rng.gen_range(-0.4..0.4),
            lat: 40.0 - 9.0 * t + rng.gen_range(-0.3..0.3),
        };
        // Segments of the corridor share a pattern (cultural region).
        let pattern = Pattern::ALL[(i * Pattern::ALL.len() / n).min(4)];
        let pi = pattern.index();
        let is_hub = i % 8 == 0;
        pattern_counts[pi] += 1;
        cities.push(City {
            id: CityId(i as u32),
            name: format!("station-{i}-{:?}", pattern).to_lowercase(),
            coords,
            pattern,
            is_hub,
            popularity: 0.0,
        });
    }
    // Popularity decays away from the corridor endpoints (termini dominate).
    for (i, c) in cities.iter_mut().enumerate() {
        let t = i as f64 / (n - 1).max(1) as f64;
        let endpointness = (1.0 - (2.0 * t - 1.0).abs()) as f32; // 0 at ends, 1 mid
        c.popularity = (1.0 - 0.6 * endpointness) * rng.gen_range(0.5..1.0);
        if c.is_hub {
            c.popularity = (c.popularity * 1.5).min(1.0);
        }
    }
    cities
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn pattern_indices_are_dense() {
        for (i, p) in Pattern::ALL.iter().enumerate() {
            assert_eq!(p.index(), i);
        }
    }

    #[test]
    fn generates_requested_count_with_all_patterns() {
        let mut rng = StdRng::seed_from_u64(1);
        let cities = generate_cities(40, &mut rng);
        assert_eq!(cities.len(), 40);
        for p in Pattern::ALL {
            assert!(
                cities.iter().any(|c| c.pattern == p),
                "missing pattern {p:?}"
            );
        }
        // Ids are dense and in order.
        for (i, c) in cities.iter().enumerate() {
            assert_eq!(c.id.index(), i);
        }
    }

    #[test]
    fn has_hubs_and_only_metro_hubs() {
        let mut rng = StdRng::seed_from_u64(2);
        let cities = generate_cities(50, &mut rng);
        let hubs: Vec<_> = cities.iter().filter(|c| c.is_hub).collect();
        assert!(!hubs.is_empty(), "no hubs generated");
        assert!(hubs.iter().all(|c| c.pattern == Pattern::Metro));
        assert!(hubs.len() < cities.len() / 4, "too many hubs");
    }

    #[test]
    fn popularity_is_positive_and_bounded() {
        let mut rng = StdRng::seed_from_u64(3);
        let cities = generate_cities(30, &mut rng);
        assert!(cities
            .iter()
            .all(|c| c.popularity > 0.0 && c.popularity <= 1.0));
        // Popularity is skewed: the max should dominate the median.
        let mut pops: Vec<f32> = cities.iter().map(|c| c.popularity).collect();
        pops.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!(pops[pops.len() - 1] > 4.0 * pops[pops.len() / 2]);
    }

    #[test]
    fn same_pattern_cities_cluster_spatially() {
        let mut rng = StdRng::seed_from_u64(4);
        let cities = generate_cities(50, &mut rng);
        // Mean intra-pattern distance should be below mean inter-pattern
        // distance — this is what makes Eq. 2 spatial weights informative.
        let (mut intra, mut inter) = ((0.0, 0usize), (0.0, 0usize));
        for a in &cities {
            for b in &cities {
                if a.id >= b.id {
                    continue;
                }
                let d = a.coords.l2(b.coords);
                if a.pattern == b.pattern {
                    intra = (intra.0 + d, intra.1 + 1);
                } else {
                    inter = (inter.0 + d, inter.1 + 1);
                }
            }
        }
        let intra_mean = intra.0 / intra.1 as f64;
        let inter_mean = inter.0 / inter.1 as f64;
        assert!(
            intra_mean < inter_mean,
            "intra {intra_mean} !< inter {inter_mean}"
        );
    }

    #[test]
    #[should_panic(expected = "at least one city per pattern")]
    fn rejects_tiny_universe() {
        generate_cities(3, &mut StdRng::seed_from_u64(0));
    }

    #[test]
    fn corridor_cities_lie_along_the_line() {
        let mut rng = StdRng::seed_from_u64(8);
        let cities = generate_corridor_cities(24, &mut rng);
        assert_eq!(cities.len(), 24);
        // Longitudes increase monotonically up to jitter.
        for w in cities.windows(4) {
            assert!(w[3].coords.lon > w[0].coords.lon - 0.5);
        }
        // Hubs every ~8 stations.
        assert!(cities.iter().filter(|c| c.is_hub).count() >= 3);
        // Neighboring stations share patterns (segments).
        let same_neighbor = cities
            .windows(2)
            .filter(|w| w[0].pattern == w[1].pattern)
            .count();
        assert!(same_neighbor > cities.len() / 2);
    }
}
