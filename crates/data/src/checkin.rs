//! Foursquare/Gowalla-like LBSN check-in datasets.
//!
//! The public dumps are not redistributable offline, so these generators
//! produce destination-only check-in sequences with the statistical shape
//! that matters for Table IV: power-law POI popularity, user mobility
//! radius, and pattern-clustered POIs so that graph-based exploration
//! (STL+G) still pays off while multi-task O&D learning is inapplicable
//! (there is no origin side — exactly why the paper evaluates only
//! single-task models on these datasets).

use crate::cities::{generate_cities, City};
use od_hsg::{CityId, EdgeType, GeoPoint, Hsg, HsgBuilder, UserId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, Gumbel};
use serde::{Deserialize, Serialize};

/// Generation parameters for a check-in dataset.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CheckinConfig {
    /// Dataset display name (`"foursquare"` / `"gowalla"`).
    pub name: String,
    /// Number of users.
    pub num_users: usize,
    /// Number of POIs.
    pub num_pois: usize,
    /// Simulation horizon in days.
    pub horizon_days: u32,
    /// Min/max check-ins per user.
    pub checkins_per_user: (usize, usize),
    /// Check-ins inside the trailing window become test cases.
    pub test_window_days: u32,
    /// How strongly users stay near their previous location (Gowalla users
    /// roam wider than Foursquare users).
    pub mobility: f32,
    /// Negative POIs ranked against each true next POI at evaluation.
    pub eval_negatives: usize,
    /// Negative samples per positive for AUC-style training.
    pub train_negatives: usize,
    /// Master seed.
    pub seed: u64,
}

impl CheckinConfig {
    /// Foursquare-like preset: denser check-ins, tighter mobility.
    pub fn foursquare() -> Self {
        CheckinConfig {
            name: "foursquare".into(),
            num_users: 600,
            num_pois: 120,
            horizon_days: 540,
            checkins_per_user: (8, 24),
            test_window_days: 45,
            mobility: 1.1,
            eval_negatives: 49,
            train_negatives: 4,
            seed: 0x405,
        }
    }

    /// Gowalla-like preset: more POIs relative to check-ins, wider roaming.
    pub fn gowalla() -> Self {
        CheckinConfig {
            name: "gowalla".into(),
            num_users: 600,
            num_pois: 180,
            horizon_days: 540,
            checkins_per_user: (6, 18),
            test_window_days: 45,
            mobility: 0.6,
            eval_negatives: 49,
            train_negatives: 4,
            seed: 0x60A11A,
        }
    }

    /// Miniature preset for tests.
    pub fn tiny() -> Self {
        CheckinConfig {
            name: "tiny".into(),
            num_users: 50,
            num_pois: 20,
            horizon_days: 240,
            checkins_per_user: (5, 10),
            test_window_days: 30,
            mobility: 1.0,
            eval_negatives: 9,
            train_negatives: 3,
            seed: 7,
        }
    }
}

/// One check-in event.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Checkin {
    /// Simulation day.
    pub day: u32,
    /// Visited POI.
    pub poi: CityId,
}

/// A labelled next-POI training sample.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct PoiSample {
    /// The checking-in user.
    pub user: UserId,
    /// Decision day.
    pub day: u32,
    /// Candidate POI.
    pub poi: CityId,
    /// 1.0 iff `poi` is the true next check-in.
    pub label: f32,
}

/// A next-POI ranking case (truth among sampled negatives).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PoiEvalCase {
    /// The checking-in user.
    pub user: UserId,
    /// Decision day.
    pub day: u32,
    /// Candidate POIs; `candidates[true_index]` is the true next POI.
    pub candidates: Vec<CityId>,
    /// Index of the truth.
    pub true_index: usize,
}

/// A generated LBSN dataset.
#[derive(Clone, Debug)]
pub struct CheckinDataset {
    /// POI universe (reuses the city generator: patterns + popularity).
    pub pois: Vec<City>,
    /// Per-user time-ordered check-in sequences.
    pub histories: Vec<Vec<Checkin>>,
    /// Training samples.
    pub train: Vec<PoiSample>,
    /// Testing samples.
    pub test: Vec<PoiSample>,
    /// Ranking cases built from test positives.
    pub eval_cases: Vec<PoiEvalCase>,
    /// The generating configuration.
    pub config: CheckinConfig,
    /// Per-user latent pattern preferences (ground truth; diagnostics only).
    pattern_prefs: Vec<[f32; 5]>,
}

impl CheckinDataset {
    /// Generate a dataset from the configuration.
    pub fn generate(config: CheckinConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let pois = generate_cities(config.num_pois, &mut rng);
        let mut pattern_prefs = Vec::with_capacity(config.num_users);
        for _ in 0..config.num_users {
            let mut prefs = [0.0f32; 5];
            for p in &mut prefs {
                *p = rng.gen_range(0.0..1.0);
            }
            prefs[rng.gen_range(0..5)] += 1.2;
            pattern_prefs.push(prefs);
        }
        let mut histories = Vec::with_capacity(config.num_users);
        for prefs in pattern_prefs.iter().take(config.num_users) {
            histories.push(roll_out(&pois, prefs, &config, &mut rng));
        }
        let train_end = config.horizon_days - config.test_window_days;
        let mut train = Vec::new();
        let mut test = Vec::new();
        let mut eval_cases = Vec::new();
        for (u, hist) in histories.iter().enumerate() {
            let user = UserId(u as u32);
            for (i, c) in hist.iter().enumerate() {
                if i == 0 {
                    continue;
                }
                let positive = PoiSample {
                    user,
                    day: c.day,
                    poi: c.poi,
                    label: 1.0,
                };
                let bucket = if c.day < train_end {
                    &mut train
                } else {
                    &mut test
                };
                bucket.push(positive);
                for _ in 0..config.train_negatives {
                    let neg = loop {
                        let p = CityId(rng.gen_range(0..config.num_pois as u32));
                        if p != c.poi {
                            break p;
                        }
                    };
                    bucket.push(PoiSample {
                        poi: neg,
                        label: 0.0,
                        ..positive
                    });
                }
                if c.day >= train_end {
                    eval_cases.push(make_eval_case(&positive, &config, &mut rng));
                }
            }
        }
        CheckinDataset {
            pois,
            histories,
            train,
            test,
            eval_cases,
            config,
            pattern_prefs,
        }
    }

    /// First day of the test window.
    pub fn train_end_day(&self) -> u32 {
        self.config.horizon_days - self.config.test_window_days
    }

    /// Check-ins of `user` strictly before `day` (the model-visible history).
    pub fn history_before(&self, user: UserId, day: u32) -> &[Checkin] {
        let h = &self.histories[user.index()];
        let end = h.partition_point(|c| c.day < day);
        &h[..end]
    }

    /// Build the user-POI interaction graph (arrive edges only — LBSN data
    /// has no origin side) from training-period check-ins.
    pub fn hsg(&self) -> Hsg {
        let coords: Vec<GeoPoint> = self.pois.iter().map(|p| p.coords).collect();
        let mut b = HsgBuilder::new(self.config.num_users, coords);
        let cut = self.train_end_day();
        for (u, hist) in self.histories.iter().enumerate() {
            for c in hist {
                if c.day < cut {
                    b.add_edge(UserId(u as u32), c.poi, EdgeType::Arrive);
                }
            }
        }
        b.build()
    }

    /// Table-II-style statistics: `(users, pois, check-ins)`.
    pub fn statistics(&self) -> (usize, usize, usize) {
        let checkins = self.histories.iter().map(Vec::len).sum();
        (self.config.num_users, self.config.num_pois, checkins)
    }

    /// Ground-truth pattern preferences (diagnostics only — models never see
    /// this).
    pub fn pattern_prefs(&self, user: UserId) -> &[f32; 5] {
        &self.pattern_prefs[user.index()]
    }
}

/// Latent check-in utility: pattern preference + popularity − travel
/// distance from the current location, Gumbel-perturbed at choice time.
fn poi_utility(
    pois: &[City],
    prefs: &[f32; 5],
    current: Option<CityId>,
    candidate: usize,
    mobility: f32,
) -> f32 {
    let poi = &pois[candidate];
    let mut u = 1.6 * prefs[poi.pattern.index()] + 1.0 * poi.popularity;
    if let Some(cur) = current {
        if cur.index() == candidate {
            return f32::NEG_INFINITY; // no self-repeat
        }
        let d = pois[cur.index()].coords.l2(poi.coords) as f32;
        u -= mobility * 0.35 * d.min(12.0);
    }
    u
}

fn roll_out(
    pois: &[City],
    prefs: &[f32; 5],
    config: &CheckinConfig,
    rng: &mut StdRng,
) -> Vec<Checkin> {
    let n = rng.gen_range(config.checkins_per_user.0..=config.checkins_per_user.1);
    let gumbel = Gumbel::new(0.0f32, 1.0).expect("valid gumbel");
    let mut out = Vec::with_capacity(n);
    let mut day = rng.gen_range(0..30u32);
    // Scale inter-check-in gaps to the horizon so user activity spans it
    // (and the trailing test window receives events at every config size).
    let step_max = (2 * config.horizon_days / n.max(1) as u32).max(6);
    let mut current: Option<CityId> = None;
    for _ in 0..n {
        if day >= config.horizon_days {
            break;
        }
        let mut best = 0usize;
        let mut best_score = f32::NEG_INFINITY;
        for cand in 0..pois.len() {
            let score =
                poi_utility(pois, prefs, current, cand, config.mobility) + gumbel.sample(rng);
            if score > best_score {
                best_score = score;
                best = cand;
            }
        }
        let poi = CityId(best as u32);
        out.push(Checkin { day, poi });
        current = Some(poi);
        day += rng.gen_range(3..step_max);
    }
    out
}

fn make_eval_case(positive: &PoiSample, config: &CheckinConfig, rng: &mut StdRng) -> PoiEvalCase {
    let mut candidates = Vec::with_capacity(config.eval_negatives + 1);
    while candidates.len() < config.eval_negatives {
        let p = CityId(rng.gen_range(0..config.num_pois as u32));
        if p != positive.poi && !candidates.contains(&p) {
            candidates.push(p);
        }
    }
    let true_index = rng.gen_range(0..=candidates.len());
    candidates.insert(true_index, positive.poi);
    PoiEvalCase {
        user: positive.user,
        day: positive.day,
        candidates,
        true_index,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dataset() -> CheckinDataset {
        CheckinDataset::generate(CheckinConfig::tiny())
    }

    #[test]
    fn splits_and_labels() {
        let ds = dataset();
        let cut = ds.train_end_day();
        assert!(ds.train.iter().all(|s| s.day < cut));
        assert!(ds.test.iter().all(|s| s.day >= cut));
        let pos = ds.train.iter().filter(|s| s.label > 0.5).count();
        let neg = ds.train.iter().filter(|s| s.label < 0.5).count();
        assert_eq!(neg, pos * ds.config.train_negatives);
    }

    #[test]
    fn histories_ordered_no_self_repeat() {
        let ds = dataset();
        for h in &ds.histories {
            assert!(h.windows(2).all(|w| w[0].day <= w[1].day));
            assert!(h.windows(2).all(|w| w[0].poi != w[1].poi));
        }
    }

    #[test]
    fn history_before_is_strict() {
        let ds = dataset();
        let h = &ds.histories[0];
        if let Some(third) = h.get(2) {
            let visible = ds.history_before(UserId(0), third.day);
            assert!(visible.iter().all(|c| c.day < third.day));
        }
    }

    #[test]
    fn eval_cases_well_formed() {
        let ds = dataset();
        assert!(!ds.eval_cases.is_empty());
        for case in &ds.eval_cases {
            assert_eq!(case.candidates.len(), ds.config.eval_negatives + 1);
            let truth = case.candidates[case.true_index];
            assert_eq!(case.candidates.iter().filter(|&&c| c == truth).count(), 1);
        }
    }

    #[test]
    fn hsg_has_only_arrive_edges() {
        let ds = dataset();
        let g = ds.hsg();
        assert_eq!(g.num_users(), ds.config.num_users);
        assert_eq!(g.num_cities(), ds.config.num_pois);
        // No departure edges in LBSN data.
        for u in 0..g.num_users() {
            assert!(g
                .user_neighbor_cities(UserId(u as u32), od_hsg::Metapath::RHO1)
                .is_empty());
        }
        assert!(g.num_edges() > 0);
    }

    #[test]
    fn presets_differ_as_documented() {
        let f = CheckinConfig::foursquare();
        let g = CheckinConfig::gowalla();
        // Gowalla: more POIs, wider roaming (lower mobility penalty).
        assert!(g.num_pois > f.num_pois);
        assert!(g.mobility < f.mobility);
    }

    #[test]
    fn statistics_count_checkins() {
        let ds = dataset();
        let (users, pois, checkins) = ds.statistics();
        assert_eq!(users, ds.config.num_users);
        assert_eq!(pois, ds.config.num_pois);
        assert_eq!(checkins, ds.histories.iter().map(Vec::len).sum::<usize>());
        assert!(checkins > 0);
    }

    #[test]
    fn users_revisit_preferred_patterns() {
        // The learnable signal: a user's favourite pattern should dominate
        // their check-ins more often than chance (1/5).
        let ds = dataset();
        let mut favored = 0;
        let mut total = 0;
        for (u, h) in ds.histories.iter().enumerate() {
            let prefs = ds.pattern_prefs(UserId(u as u32));
            let fav = prefs
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .unwrap()
                .0;
            for c in h {
                total += 1;
                if ds.pois[c.poi.index()].pattern.index() == fav {
                    favored += 1;
                }
            }
        }
        let share = favored as f64 / total as f64;
        assert!(share > 0.3, "favourite-pattern share {share} ≤ chance");
    }
}
