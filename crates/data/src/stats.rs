//! Temporal statistics of cities — the `x_st` feature vector of the PEC
//! (paper §IV-B: "statistics of temporal information of each city, such as
//! the number of visits to a city in the last month or in the same period of
//! history").

use crate::world::Booking;
use od_hsg::CityId;
use serde::{Deserialize, Serialize};

/// Which side of the OD pair a city is being scored for.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Side {
    /// Candidate origin city.
    Origin,
    /// Candidate destination city.
    Dest,
}

/// Number of features produced per (city, day, side) query.
pub const TEMPORAL_FEATURES: usize = 4;

/// Per-city visit-day indexes built from the *training-period* bookings
/// (never from test data), supporting O(log n) windowed counts.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct TemporalStats {
    /// Sorted booking days per city, origin side.
    origin_days: Vec<Vec<u32>>,
    /// Sorted booking days per city, destination side.
    dest_days: Vec<Vec<u32>>,
    total_bookings: usize,
}

impl TemporalStats {
    /// Build from a booking log over `num_cities` cities.
    pub fn from_bookings<'a>(
        num_cities: usize,
        bookings: impl IntoIterator<Item = &'a Booking>,
    ) -> Self {
        let mut origin_days = vec![Vec::new(); num_cities];
        let mut dest_days = vec![Vec::new(); num_cities];
        let mut total = 0;
        for b in bookings {
            origin_days[b.origin.index()].push(b.day);
            dest_days[b.dest.index()].push(b.day);
            total += 1;
        }
        for v in origin_days.iter_mut().chain(dest_days.iter_mut()) {
            v.sort_unstable();
        }
        TemporalStats {
            origin_days,
            dest_days,
            total_bookings: total,
        }
    }

    fn days(&self, city: CityId, side: Side) -> &[u32] {
        match side {
            Side::Origin => &self.origin_days[city.index()],
            Side::Dest => &self.dest_days[city.index()],
        }
    }

    /// Count visits to `city` (on `side`) in the half-open day window
    /// `[lo, hi)`.
    pub fn count_window(&self, city: CityId, side: Side, lo: u32, hi: u32) -> usize {
        let days = self.days(city, side);
        let start = days.partition_point(|&d| d < lo);
        let end = days.partition_point(|&d| d < hi);
        end - start
    }

    /// The `x_st` feature vector for scoring `city` on `side` at decision
    /// day `day`:
    /// 1. log1p(visits in the last 30 days),
    /// 2. log1p(visits in the same 30-day window one year earlier),
    /// 3. log1p(all visits before `day`),
    /// 4. the city's share of total traffic (popularity prior).
    pub fn features(&self, city: CityId, side: Side, day: u32) -> [f32; TEMPORAL_FEATURES] {
        let last_month = self.count_window(city, side, day.saturating_sub(30), day) as f32;
        let year_ago_window = if day >= 360 {
            // ±15 days around the same date one year earlier, clamped to
            // the start of the horizon (day 360..375 would underflow).
            let anchor = day - 360;
            self.count_window(city, side, anchor.saturating_sub(15), anchor + 15) as f32
        } else {
            0.0
        };
        let to_date = self.count_window(city, side, 0, day) as f32;
        let share = if self.total_bookings > 0 {
            self.days(city, side).len() as f32 / self.total_bookings as f32
        } else {
            0.0
        };
        [
            last_month.ln_1p(),
            year_ago_window.ln_1p(),
            to_date.ln_1p(),
            share,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn booking(day: u32, o: u32, d: u32) -> Booking {
        Booking {
            day,
            origin: CityId(o),
            dest: CityId(d),
        }
    }

    #[test]
    fn window_counts_are_half_open() {
        let log = [booking(10, 0, 1), booking(20, 0, 1), booking(30, 0, 1)];
        let ts = TemporalStats::from_bookings(2, log.iter());
        assert_eq!(ts.count_window(CityId(0), Side::Origin, 10, 30), 2);
        assert_eq!(ts.count_window(CityId(0), Side::Origin, 0, 100), 3);
        assert_eq!(ts.count_window(CityId(0), Side::Origin, 11, 20), 0);
        // City 1 only ever appears as destination.
        assert_eq!(ts.count_window(CityId(1), Side::Origin, 0, 100), 0);
        assert_eq!(ts.count_window(CityId(1), Side::Dest, 0, 100), 3);
    }

    #[test]
    fn features_reflect_recency() {
        let mut log = Vec::new();
        // 5 visits to city 0 in days 400–404, 2 old visits around day 30.
        for d in 400..405 {
            log.push(booking(d, 5, 0));
        }
        log.push(booking(30, 5, 0));
        log.push(booking(31, 5, 0));
        let ts = TemporalStats::from_bookings(6, log.iter());
        let f = ts.features(CityId(0), Side::Dest, 405);
        assert!((f[0] - (5.0f32).ln_1p()).abs() < 1e-6, "last month");
        // Same period last year: day 405-360=45 ± 15 → window [30, 60) has 2.
        assert!((f[1] - (2.0f32).ln_1p()).abs() < 1e-6, "year ago");
        assert!((f[2] - (7.0f32).ln_1p()).abs() < 1e-6, "to date");
        assert!(f[3] > 0.0 && f[3] <= 1.0);
    }

    #[test]
    fn early_days_have_no_year_ago_feature() {
        let log = [booking(10, 0, 1)];
        let ts = TemporalStats::from_bookings(2, log.iter());
        let f = ts.features(CityId(1), Side::Dest, 100);
        assert_eq!(f[1], 0.0);
    }

    #[test]
    fn empty_log_is_all_zero() {
        let ts = TemporalStats::from_bookings(3, [].iter());
        let f = ts.features(CityId(2), Side::Origin, 50);
        assert_eq!(f, [0.0; TEMPORAL_FEATURES]);
    }
}
