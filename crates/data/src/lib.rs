//! # od-data — datasets, metrics, and the A/B simulator
//!
//! The paper evaluates on three datasets (proprietary Fliggy logs and the
//! Foursquare/Gowalla LBSN dumps) and a production A/B test. None of those
//! are available offline, so this crate builds their closest synthetic
//! equivalents from one ground-truth [`World`] model whose latent utility
//! plants exactly the phenomena the paper's model exploits:
//!
//! - **Origin exploration** — hub cities have cheaper outbound fares, so
//!   departing from a nearby hub beats the home city for price-sensitive
//!   users (the paper's Ningbo→Shanghai example).
//! - **Destination exploration** — destinations carry latent *patterns*
//!   (seaside, mountain, …); a user who liked one seaside city will like
//!   others (the Sanya→Qingdao example).
//! - **O&D unity** — route price couples O and D, and a strong return-trip
//!   bonus makes the best OD pair depend on the previous booking (the
//!   Beijing⇄Chengdu return-ticket example).
//!
//! Modules: [`world`] (ground truth + choice model), [`fliggy`] (OD booking
//! dataset, Table I shape), [`checkin`] (Foursquare/Gowalla-like, Table II
//! shape), [`metrics`] (AUC/HR@k/MRR@k/CTR), [`stats`] (the `x_st` temporal
//! features), and [`abtest`] (the Figure 7 CTR simulator).

#![warn(missing_docs)]

pub mod abtest;
pub mod checkin;
pub mod cities;
pub mod fliggy;
pub mod metrics;
pub mod stats;
pub mod world;

pub use abtest::{AbTestConfig, AbTestHarness, AbTestResult, DayOutcome, Impression};
pub use checkin::{Checkin, CheckinConfig, CheckinDataset, PoiEvalCase, PoiSample};
pub use cities::{generate_cities, generate_corridor_cities, City, Pattern};
pub use fliggy::{
    DatasetStatistics, EvalCase, FliggyConfig, FliggyDataset, OdSample, UserHistory, WorldMismatch,
};
pub use metrics::{auc, ctr, rank_of_truth, RankingAccumulator, RankingMetrics};
pub use stats::{Side, TemporalStats, TEMPORAL_FEATURES};
pub use world::{Booking, Click, Context, PriceModel, UserProfile, World};
