//! The Fliggy-like OD booking dataset.
//!
//! Substitutes the proprietary 2.6M-user production dataset (paper Table I)
//! with a scaled-down synthetic equivalent rolled out from the ground-truth
//! [`World`]: per-user booking histories over a two-year horizon, short-term
//! click streams in the 7 days before each booking, and training samples in
//! the paper's exact 1 : 4 : 2 mix of positive, partially-negative and fully
//! negative forms.

use crate::stats::TemporalStats;
use crate::world::{Booking, Click, Context, World};
use od_hsg::{CityId, Interaction, UserId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Generation parameters. Defaults produce a laptop-scale dataset with the
/// same *structure* as Table I (ratios, windows), not the same magnitude.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct FliggyConfig {
    /// Number of users to simulate.
    pub num_users: usize,
    /// Number of cities (the paper uses 200 origin + 200 destination; ours
    /// is one shared universe).
    pub num_cities: usize,
    /// Simulation horizon in days (paper: 2 years of long-term behaviour).
    pub horizon_days: u32,
    /// Bookings inside the trailing window become test positives (paper:
    /// bookings of March 2021).
    pub test_window_days: u32,
    /// Click lookback for short-term behaviour (paper: last 7 days).
    pub short_term_days: u32,
    /// Min/max bookings per user over the horizon.
    pub bookings_per_user: (usize, usize),
    /// Min/max clicks generated before each booking.
    pub clicks_per_booking: (usize, usize),
    /// Partially negative samples per positive, split evenly between the
    /// `(O⁺, D⁻)` and `(O⁻, D⁺)` forms (paper: 4).
    pub partial_negatives: usize,
    /// Fully negative `(O⁻, D⁻)` samples per positive (paper: 2).
    pub full_negatives: usize,
    /// Negative OD pairs ranked against each true pair at evaluation time.
    pub eval_negatives: usize,
    /// Gumbel temperature of the booking choice (higher = noisier users).
    pub choice_temperature: f32,
    /// Gumbel temperature of click generation (noisier than bookings).
    pub click_temperature: f32,
    /// Master seed.
    pub seed: u64,
}

impl Default for FliggyConfig {
    fn default() -> Self {
        FliggyConfig {
            num_users: 1000,
            num_cities: 50,
            horizon_days: 720,
            test_window_days: 45,
            short_term_days: 7,
            bookings_per_user: (4, 10),
            clicks_per_booking: (2, 6),
            partial_negatives: 4,
            full_negatives: 2,
            eval_negatives: 49,
            choice_temperature: 1.0,
            click_temperature: 2.5,
            seed: 0xF11667,
        }
    }
}

impl FliggyConfig {
    /// A miniature configuration for fast tests.
    pub fn tiny() -> Self {
        FliggyConfig {
            num_users: 60,
            num_cities: 15,
            horizon_days: 400,
            bookings_per_user: (3, 6),
            eval_negatives: 19,
            ..Self::default()
        }
    }

    /// The paper's production magnitude (Table I): 2.6M users over a 200
    /// origin / 200 destination city universe. Generation is linear in
    /// users (histories, samples, and eval cases all scale per-user; only
    /// the price model is quadratic, and only in the 200 cities), so a
    /// full roll-out fits in memory on a large host — but the intended use
    /// is freezing paper-scale *artifacts*, where only the [`World`]'s
    /// universe sizes matter, not the behavioural roll-out.
    pub fn paper_scale() -> Self {
        FliggyConfig {
            num_users: 2_600_000,
            num_cities: 200,
            ..Self::default()
        }
    }
}

/// A [`World`] handed to [`FliggyDataset::generate_from_world`] whose
/// universe does not match the configuration it is rolled out under.
/// Every downstream index (histories, samples, eval cases) assumes the
/// config's sizes, so the mismatch is rejected up front as a typed error.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WorldMismatch {
    /// The world holds a different number of users than `config.num_users`.
    Users {
        /// `config.num_users`.
        expected: usize,
        /// `world.num_users()`.
        found: usize,
    },
    /// The world holds a different number of cities than
    /// `config.num_cities`.
    Cities {
        /// `config.num_cities`.
        expected: usize,
        /// `world.num_cities()`.
        found: usize,
    },
}

impl std::fmt::Display for WorldMismatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WorldMismatch::Users { expected, found } => write!(
                f,
                "world holds {found} users but the config declares {expected}"
            ),
            WorldMismatch::Cities { expected, found } => write!(
                f,
                "world holds {found} cities but the config declares {expected}"
            ),
        }
    }
}

impl std::error::Error for WorldMismatch {}

/// One labelled training/testing sample: a candidate (O, D) with per-side
/// labels (`label_o` says whether O is the true next origin, `label_d`
/// whether D is the true next destination).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct OdSample {
    /// The booking user.
    pub user: UserId,
    /// Decision day — histories and temporal features are sliced at this day.
    pub day: u32,
    /// Candidate origin.
    pub origin: CityId,
    /// Candidate destination.
    pub dest: CityId,
    /// 1.0 iff `origin` is the true next origin.
    pub label_o: f32,
    /// 1.0 iff `dest` is the true next destination.
    pub label_d: f32,
}

/// A ranking evaluation case: the true next OD pair hidden among sampled
/// negatives (HR@k / MRR@k protocol).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct EvalCase {
    /// The booking user.
    pub user: UserId,
    /// Decision day.
    pub day: u32,
    /// Candidate pairs; `candidates[true_index]` is the true pair.
    pub candidates: Vec<(CityId, CityId)>,
    /// Index of the true pair inside `candidates`.
    pub true_index: usize,
}

/// A user's full behavioural record.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct UserHistory {
    /// Time-ordered bookings (long-term behaviour source).
    pub bookings: Vec<Booking>,
    /// Time-ordered clicks (short-term behaviour source).
    pub clicks: Vec<Click>,
}

/// The assembled dataset.
#[derive(Clone, Debug)]
pub struct FliggyDataset {
    /// The generating world (ground truth; used only by the A/B simulator
    /// and diagnostics, never by models).
    pub world: World,
    /// Per-user histories, indexed by user id.
    pub histories: Vec<UserHistory>,
    /// Training samples (decision day before the test window).
    pub train: Vec<OdSample>,
    /// Testing samples (decision day inside the test window).
    pub test: Vec<OdSample>,
    /// Ranking evaluation cases built from test positives.
    pub eval_cases: Vec<EvalCase>,
    /// Temporal statistics built from training-period bookings only.
    pub temporal: TemporalStats,
    /// The generating configuration.
    pub config: FliggyConfig,
}

impl FliggyDataset {
    /// Generate a dataset from the configuration.
    pub fn generate(config: FliggyConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let world = World::generate(config.num_users, config.num_cities, &mut rng);
        Self::generate_from_world(world, config, &mut rng)
            .expect("world generated from the same config")
    }

    /// Roll out a dataset over a caller-supplied world (e.g. a rail
    /// corridor). `config.num_users`/`num_cities` must match the world;
    /// a mismatch is returned as a typed [`WorldMismatch`] instead of
    /// panicking, so callers assembling worlds from external inputs can
    /// surface the error.
    pub fn generate_from_world(
        world: World,
        config: FliggyConfig,
        rng: &mut StdRng,
    ) -> Result<Self, WorldMismatch> {
        if world.num_users() != config.num_users {
            return Err(WorldMismatch::Users {
                expected: config.num_users,
                found: world.num_users(),
            });
        }
        if world.num_cities() != config.num_cities {
            return Err(WorldMismatch::Cities {
                expected: config.num_cities,
                found: world.num_cities(),
            });
        }
        let mut histories = Vec::with_capacity(config.num_users);
        for u in 0..config.num_users {
            histories.push(roll_out_user(&world, UserId(u as u32), &config, rng));
        }
        let train_end = config.horizon_days - config.test_window_days;

        let mut train = Vec::new();
        let mut test = Vec::new();
        let mut eval_cases = Vec::new();
        for (u, hist) in histories.iter().enumerate() {
            let user = UserId(u as u32);
            // Each booking with at least one earlier booking becomes a
            // positive; the first booking has no long-term history to learn
            // from.
            for (i, b) in hist.bookings.iter().enumerate() {
                if i == 0 {
                    continue;
                }
                let positive = OdSample {
                    user,
                    day: b.day,
                    origin: b.origin,
                    dest: b.dest,
                    label_o: 1.0,
                    label_d: 1.0,
                };
                let bucket = if b.day < train_end {
                    &mut train
                } else {
                    &mut test
                };
                bucket.push(positive);
                push_negatives(bucket, &positive, &config, rng);
                if b.day >= train_end {
                    eval_cases.push(make_eval_case(&positive, &world, &config, rng));
                }
            }
        }
        // Temporal statistics must not see the test window.
        let temporal = TemporalStats::from_bookings(
            config.num_cities,
            histories
                .iter()
                .flat_map(|h| h.bookings.iter())
                .filter(|b| b.day < train_end),
        );
        Ok(FliggyDataset {
            world,
            histories,
            train,
            test,
            eval_cases,
            temporal,
            config,
        })
    }

    /// First day of the test window.
    pub fn train_end_day(&self) -> u32 {
        self.config.horizon_days - self.config.test_window_days
    }

    /// Long-term behaviour of `user` visible at `day`: all strictly earlier
    /// bookings (paper: last two years — our whole horizon).
    pub fn long_term(&self, user: UserId, day: u32) -> &[Booking] {
        let bookings = &self.histories[user.index()].bookings;
        let end = bookings.partition_point(|b| b.day < day);
        &bookings[..end]
    }

    /// Short-term behaviour of `user` visible at `day`: clicks within the
    /// configured lookback window (paper: last 7 days).
    pub fn short_term(&self, user: UserId, day: u32) -> &[Click] {
        let clicks = &self.histories[user.index()].clicks;
        let lo = clicks.partition_point(|c| c.day + self.config.short_term_days < day);
        let hi = clicks.partition_point(|c| c.day < day);
        &clicks[lo..hi]
    }

    /// The user's "current city" at decision time — their most recent
    /// destination if they appear mid-trip, otherwise their home city. This
    /// stands in for the paper's LBS-derived current-city feature.
    pub fn current_city(&self, user: UserId, day: u32) -> CityId {
        let lt = self.long_term(user, day);
        match lt.last() {
            Some(b) if day.saturating_sub(b.day) <= 14 => b.dest,
            _ => self.world.users[user.index()].home,
        }
    }

    /// Interactions for building the HSG — training-period bookings only,
    /// so the graph never leaks test-window behaviour.
    pub fn hsg_interactions(&self) -> Vec<Interaction> {
        let train_end = self.train_end_day();
        let mut out = Vec::new();
        for (u, hist) in self.histories.iter().enumerate() {
            for b in &hist.bookings {
                if b.day < train_end {
                    out.push(Interaction {
                        user: UserId(u as u32),
                        origin: b.origin,
                        dest: b.dest,
                    });
                }
            }
        }
        out
    }

    /// Table-I-style statistics of the generated dataset.
    pub fn statistics(&self) -> DatasetStatistics {
        let count = |samples: &[OdSample]| -> (usize, usize, usize, usize) {
            let mut pos = 0;
            let mut partial = 0;
            let mut full = 0;
            for s in samples {
                match (s.label_o > 0.5, s.label_d > 0.5) {
                    (true, true) => pos += 1,
                    (false, false) => full += 1,
                    _ => partial += 1,
                }
            }
            (samples.len(), pos, partial, full)
        };
        let (train_total, train_pos, train_partial, train_full) = count(&self.train);
        let (test_total, test_pos, test_partial, test_full) = count(&self.test);
        let train_users = distinct_users(&self.train);
        let test_users = distinct_users(&self.test);
        DatasetStatistics {
            train_total,
            train_pos,
            train_partial,
            train_full,
            test_total,
            test_pos,
            test_partial,
            test_full,
            train_users,
            test_users,
            num_cities: self.config.num_cities,
        }
    }
}

fn distinct_users(samples: &[OdSample]) -> usize {
    let mut ids: Vec<u32> = samples.iter().map(|s| s.user.0).collect();
    ids.sort_unstable();
    ids.dedup();
    ids.len()
}

/// Counts mirroring the rows of the paper's Table I.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct DatasetStatistics {
    /// Total training samples.
    pub train_total: usize,
    /// Training `(O⁺, D⁺)` samples.
    pub train_pos: usize,
    /// Training `(O⁺, D⁻)` + `(O⁻, D⁺)` samples.
    pub train_partial: usize,
    /// Training `(O⁻, D⁻)` samples.
    pub train_full: usize,
    /// Total testing samples.
    pub test_total: usize,
    /// Testing positives.
    pub test_pos: usize,
    /// Testing partial negatives.
    pub test_partial: usize,
    /// Testing full negatives.
    pub test_full: usize,
    /// Distinct users with training samples.
    pub train_users: usize,
    /// Distinct users with testing samples.
    pub test_users: usize,
    /// City universe size.
    pub num_cities: usize,
}

/// Roll out one user's two-year behaviour.
fn roll_out_user(
    world: &World,
    user: UserId,
    config: &FliggyConfig,
    rng: &mut StdRng,
) -> UserHistory {
    let n_bookings = rng.gen_range(config.bookings_per_user.0..=config.bookings_per_user.1);
    let mut bookings: Vec<Booking> = Vec::with_capacity(n_bookings);
    let mut clicks: Vec<Click> = Vec::new();
    let mut day = rng.gen_range(0..60u32);
    let mut last: Option<Booking> = None;
    // Long (non-return) gaps are sized so a user's bookings span the whole
    // horizon; 40% of gaps are short return-trip intervals (see below).
    let mean_gap = (config.horizon_days / n_bookings.max(1) as u32).max(20);
    let long_mean = (((mean_gap as f32) - 0.4 * 8.0) / 0.6) as u32;
    let (long_lo, long_hi) = (long_mean / 2, long_mean * 3 / 2 + 2);
    for _ in 0..n_bookings {
        if day >= config.horizon_days {
            break;
        }
        let ctx = Context {
            day,
            last_booking: last,
            recent_history: &bookings,
        };
        // Short-term clicks in the week before the booking: noisy draws
        // from the same preference model, so clicks foreshadow the booking.
        let n_clicks = rng.gen_range(config.clicks_per_booking.0..=config.clicks_per_booking.1);
        for _ in 0..n_clicks {
            let click_day = day.saturating_sub(rng.gen_range(1..=config.short_term_days));
            let click_ctx = Context {
                day: click_day,
                last_booking: last,
                recent_history: &bookings,
            };
            let (o, d) = world.sample_choice(user, click_ctx, config.click_temperature, rng);
            clicks.push(Click {
                day: click_day,
                origin: o,
                dest: d,
            });
        }
        let (o, d) = world.sample_choice(user, ctx, config.choice_temperature, rng);
        let booking = Booking {
            day,
            origin: o,
            dest: d,
        };
        // Users usually also click the itinerary they end up booking.
        if rng.gen_bool(0.7) {
            clicks.push(Click {
                day: day.saturating_sub(1),
                origin: o,
                dest: d,
            });
        }
        bookings.push(booking);
        last = Some(booking);
        // Next decision: often a quick return leg (the O&D-unity signal),
        // otherwise a longer horizon-scaled gap.
        day += if rng.gen_bool(0.4) {
            rng.gen_range(2..14)
        } else {
            rng.gen_range(long_lo..long_hi)
        };
    }
    clicks.sort_by_key(|c| c.day);
    UserHistory { bookings, clicks }
}

/// Append the paper's negative forms for one positive: `partial_negatives`
/// split between `(O⁺, D⁻)` and `(O⁻, D⁺)`, plus `full_negatives` of
/// `(O⁻, D⁻)`.
fn push_negatives(
    out: &mut Vec<OdSample>,
    positive: &OdSample,
    config: &FliggyConfig,
    rng: &mut StdRng,
) {
    let n = config.num_cities as u32;
    let mut random_city_except = |avoid: &[CityId]| -> CityId {
        loop {
            let c = CityId(rng.gen_range(0..n));
            if !avoid.contains(&c) {
                return c;
            }
        }
    };
    for i in 0..config.partial_negatives {
        if i % 2 == 0 {
            let d_neg = random_city_except(&[positive.dest, positive.origin]);
            out.push(OdSample {
                dest: d_neg,
                label_d: 0.0,
                ..*positive
            });
        } else {
            let o_neg = random_city_except(&[positive.origin, positive.dest]);
            out.push(OdSample {
                origin: o_neg,
                label_o: 0.0,
                ..*positive
            });
        }
    }
    for _ in 0..config.full_negatives {
        let o_neg = random_city_except(&[positive.origin]);
        let d_neg = random_city_except(&[positive.dest, o_neg]);
        out.push(OdSample {
            origin: o_neg,
            dest: d_neg,
            label_o: 0.0,
            label_d: 0.0,
            ..*positive
        });
    }
}

/// Build an HR/MRR evaluation case: the true pair shuffled among
/// `eval_negatives` distinct corrupted pairs. Half the negatives keep the
/// true origin (hard negatives, the `(O⁺, D⁻)` form) so that the origin
/// feature alone — e.g. "depart from the current city" — cannot identify
/// the truth; the rest corrupt both sides.
fn make_eval_case(
    positive: &OdSample,
    world: &World,
    config: &FliggyConfig,
    rng: &mut StdRng,
) -> EvalCase {
    let n = config.num_cities as u32;
    let truth = (positive.origin, positive.dest);
    let mut candidates = Vec::with_capacity(config.eval_negatives + 1);
    // Popularity-weighted destination sampling: hard negatives are
    // *plausible* cities, not uniform noise, so ranking quality — not just
    // outlier rejection — decides the metrics.
    let pop_total: f32 = world.cities.iter().map(|c| c.popularity).sum();
    let popular_city = |rng: &mut StdRng| -> CityId {
        let mut t = rng.gen_range(0.0..pop_total);
        for c in &world.cities {
            t -= c.popularity;
            if t <= 0.0 {
                return c.id;
            }
        }
        CityId(n - 1)
    };
    while candidates.len() < config.eval_negatives {
        let o = if rng.gen_bool(0.5) {
            positive.origin
        } else {
            CityId(rng.gen_range(0..n))
        };
        let d = if rng.gen_bool(0.5) {
            popular_city(rng)
        } else {
            CityId(rng.gen_range(0..n))
        };
        if o != d && (o, d) != truth && !candidates.contains(&(o, d)) {
            candidates.push((o, d));
        }
    }
    let true_index = rng.gen_range(0..=candidates.len());
    candidates.insert(true_index, truth);
    EvalCase {
        user: positive.user,
        day: positive.day,
        candidates,
        true_index,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dataset() -> FliggyDataset {
        FliggyDataset::generate(FliggyConfig::tiny())
    }

    #[test]
    fn sample_mix_matches_table_one_ratios() {
        let ds = dataset();
        let s = ds.statistics();
        assert!(s.train_pos > 0, "no positives generated");
        assert_eq!(s.train_partial, 4 * s.train_pos, "partial ≠ 4× positives");
        assert_eq!(s.train_full, 2 * s.train_pos, "full ≠ 2× positives");
        assert_eq!(s.train_total, 7 * s.train_pos);
        assert_eq!(s.test_partial, 4 * s.test_pos);
        assert_eq!(s.test_full, 2 * s.test_pos);
    }

    #[test]
    fn split_respects_test_window() {
        let ds = dataset();
        let cut = ds.train_end_day();
        assert!(ds.train.iter().all(|s| s.day < cut));
        assert!(ds.test.iter().all(|s| s.day >= cut));
        assert!(!ds.test.is_empty(), "no test samples — enlarge horizon");
    }

    #[test]
    fn histories_are_time_ordered() {
        let ds = dataset();
        for h in &ds.histories {
            assert!(h.bookings.windows(2).all(|w| w[0].day <= w[1].day));
            assert!(h.clicks.windows(2).all(|w| w[0].day <= w[1].day));
        }
    }

    #[test]
    fn long_term_slicing_is_strictly_before_day() {
        let ds = dataset();
        let u = ds.test.first().map(|s| s.user).unwrap_or(UserId(0));
        let all = &ds.histories[u.index()].bookings;
        if let Some(third) = all.get(2) {
            let lt = ds.long_term(u, third.day);
            assert!(lt.iter().all(|b| b.day < third.day));
            // The slice ends exactly where bookings reach `day`.
            assert_eq!(lt.len(), all.partition_point(|b| b.day < third.day));
        }
    }

    #[test]
    fn short_term_window_is_bounded() {
        let ds = dataset();
        for s in ds.test.iter().take(50) {
            for c in ds.short_term(s.user, s.day) {
                assert!(c.day < s.day);
                assert!(c.day + ds.config.short_term_days >= s.day);
            }
        }
    }

    #[test]
    fn eval_cases_contain_truth_once() {
        let ds = dataset();
        assert!(!ds.eval_cases.is_empty());
        for case in &ds.eval_cases {
            assert_eq!(case.candidates.len(), ds.config.eval_negatives + 1);
            let truth = case.candidates[case.true_index];
            assert_eq!(
                case.candidates.iter().filter(|&&c| c == truth).count(),
                1,
                "truth duplicated among negatives"
            );
            // No degenerate pairs.
            assert!(case.candidates.iter().all(|(o, d)| o != d));
        }
    }

    #[test]
    fn hsg_interactions_exclude_test_window() {
        let ds = dataset();
        let cut = ds.train_end_day();
        let interactions = ds.hsg_interactions();
        assert!(!interactions.is_empty());
        // Count bookings before the cut and compare.
        let expected: usize = ds
            .histories
            .iter()
            .map(|h| h.bookings.iter().filter(|b| b.day < cut).count())
            .sum();
        assert_eq!(interactions.len(), expected);
    }

    #[test]
    fn current_city_is_home_or_recent_destination() {
        let ds = dataset();
        for s in ds.test.iter().take(30) {
            let cc = ds.current_city(s.user, s.day);
            let home = ds.world.users[s.user.index()].home;
            let recent_dest = ds.long_term(s.user, s.day).last().map(|b| b.dest);
            assert!(cc == home || Some(cc) == recent_dest);
        }
    }

    #[test]
    fn generation_is_deterministic_under_seed() {
        let a = FliggyDataset::generate(FliggyConfig::tiny());
        let b = FliggyDataset::generate(FliggyConfig::tiny());
        assert_eq!(a.train.len(), b.train.len());
        for (x, y) in a.train.iter().zip(&b.train) {
            assert_eq!(
                (x.user, x.day, x.origin, x.dest),
                (y.user, y.day, y.origin, y.dest)
            );
        }
    }

    #[test]
    fn return_trips_exist_in_histories() {
        // The unity-of-O&D signal: a non-trivial share of consecutive
        // booking pairs must be exact reverses.
        let ds = dataset();
        let mut pairs = 0;
        let mut returns = 0;
        for h in &ds.histories {
            for w in h.bookings.windows(2) {
                pairs += 1;
                if w[1].origin == w[0].dest && w[1].dest == w[0].origin {
                    returns += 1;
                }
            }
        }
        assert!(pairs > 0);
        let share = returns as f64 / pairs as f64;
        assert!(share > 0.1, "return-trip share too small: {share}");
    }

    #[test]
    fn mismatched_world_is_a_typed_error_not_a_panic() {
        let config = FliggyConfig::tiny();
        let mut rng = StdRng::seed_from_u64(config.seed);
        let world = World::generate(config.num_users + 1, config.num_cities, &mut rng);
        match FliggyDataset::generate_from_world(world, config.clone(), &mut rng) {
            Err(WorldMismatch::Users { expected, found }) => {
                assert_eq!(expected, config.num_users);
                assert_eq!(found, config.num_users + 1);
            }
            other => panic!("expected WorldMismatch::Users, got {other:?}"),
        }

        let world = World::generate(config.num_users, config.num_cities + 2, &mut rng);
        match FliggyDataset::generate_from_world(world, config.clone(), &mut rng) {
            Err(WorldMismatch::Cities { expected, found }) => {
                assert_eq!(expected, config.num_cities);
                assert_eq!(found, config.num_cities + 2);
                // The error renders both sides for the operator.
                let msg = WorldMismatch::Cities { expected, found }.to_string();
                assert!(msg.contains(&expected.to_string()) && msg.contains(&found.to_string()));
            }
            other => panic!("expected WorldMismatch::Cities, got {other:?}"),
        }
    }

    #[test]
    fn paper_scale_preset_matches_table_one() {
        let cfg = FliggyConfig::paper_scale();
        assert_eq!(cfg.num_users, 2_600_000);
        assert_eq!(cfg.num_cities, 200);
    }
}
