//! STGN baseline (paper §V-A.3, Zhao et al. AAAI'19): an LSTM variant with
//! dedicated *time* and *distance* gates. Each step receives the interval
//! Δt since the previous event and the geographic distance Δd between the
//! previous and current city; two extra sigmoid gates modulate how much of
//! the candidate cell state enters memory:
//!
//! ```text
//! T = σ(x·W_xt + Δt·u_t + b_t)      (time gate)
//! D = σ(x·W_xd + Δd·u_d + b_d)      (distance gate)
//! c' = f∘c + i∘T∘D∘c̃
//! h' = o∘tanh(c')
//! ```
//!
//! This is the short-term gate pair of the published STGN, which is the
//! part that drives its advantage over the plain LSTM.

use crate::common::{BaselineConfig, CityMeta, PlainSource};
use crate::seqnet::{SeqInput, SideEncoder, TwoSideModel};
use od_hsg::CityId;
use od_tensor::nn::Linear;
use od_tensor::{init, Graph, ParamId, ParamStore, Shape, Tensor, Value};
use rand::Rng;

/// The spatio-temporal gated cell parameters.
pub struct StgnEncoder {
    /// Standard LSTM gate block `x,h → [i f o c̃]`.
    wx: ParamId,
    wh: ParamId,
    b: ParamId,
    /// Time gate: input projection + interval weight + bias.
    time_gate: ExtraGate,
    /// Distance gate.
    dist_gate: ExtraGate,
    meta: CityMeta,
    input_dim: usize,
    hidden: usize,
}

struct ExtraGate {
    wx: Linear,
    u: ParamId,
    b: ParamId,
}

impl ExtraGate {
    fn new(
        store: &mut ParamStore,
        name: &str,
        input_dim: usize,
        hidden: usize,
        rng: &mut impl Rng,
    ) -> Self {
        ExtraGate {
            wx: Linear::new(store, &format!("{name}.wx"), input_dim, hidden, false, rng),
            u: store.register(
                format!("{name}.u"),
                init::paper_default(Shape::Vector(hidden), rng),
            ),
            b: store.register(format!("{name}.b"), Tensor::zeros(Shape::Vector(hidden))),
        }
    }

    /// `σ(x·W + delta·u + b)` for a scalar `delta`.
    fn forward(&self, g: &mut Graph, store: &ParamStore, x: Value, delta: f32) -> Value {
        let proj = self.wx.forward(g, store, x);
        let proj = g.reshape(proj, Shape::Vector(g.value(proj).len()));
        let u = g.param(store, self.u);
        let scaled = g.scale(u, delta);
        let b = g.param(store, self.b);
        let s1 = g.add(proj, scaled);
        let s2 = g.add(s1, b);
        g.sigmoid(s2)
    }
}

impl StgnEncoder {
    fn new(
        store: &mut ParamStore,
        name: &str,
        cfg: &BaselineConfig,
        meta: CityMeta,
        rng: &mut impl Rng,
    ) -> Self {
        let (d, h) = (cfg.embed_dim, cfg.hidden_dim);
        let wx = store.register(
            format!("{name}.wx"),
            init::paper_default(Shape::Matrix(d, 4 * h), rng),
        );
        let wh = store.register(
            format!("{name}.wh"),
            init::paper_default(Shape::Matrix(h, 4 * h), rng),
        );
        let mut bias = Tensor::zeros(Shape::Vector(4 * h));
        for i in h..2 * h {
            bias.as_mut_slice()[i] = 1.0; // forget-gate bias trick
        }
        let b = store.register(format!("{name}.b"), bias);
        StgnEncoder {
            wx,
            wh,
            b,
            time_gate: ExtraGate::new(store, &format!("{name}.tgate"), d, h, rng),
            dist_gate: ExtraGate::new(store, &format!("{name}.dgate"), d, h, rng),
            meta,
            input_dim: d,
            hidden: h,
        }
    }

    /// One gated step. `dt` is the normalized time interval, `dd` the
    /// normalized travel distance since the previous event.
    #[allow(clippy::too_many_arguments)]
    fn step(
        &self,
        g: &mut Graph,
        store: &ParamStore,
        x: Value,
        h_prev: Value,
        c_prev: Value,
        dt: f32,
        dd: f32,
    ) -> (Value, Value) {
        debug_assert_eq!(g.value(x).cols(), self.input_dim);
        let wx = g.param(store, self.wx);
        let wh = g.param(store, self.wh);
        let b = g.param(store, self.b);
        let xg = g.matmul(x, wx);
        let hg = g.matmul(h_prev, wh);
        let pre = g.add(xg, hg);
        let gates = g.add_row(pre, b);
        let h = self.hidden;
        let i_pre = g.slice_cols(gates, 0, h);
        let f_pre = g.slice_cols(gates, h, 2 * h);
        let o_pre = g.slice_cols(gates, 2 * h, 3 * h);
        let c_pre = g.slice_cols(gates, 3 * h, 4 * h);
        let i = g.sigmoid(i_pre);
        let f = g.sigmoid(f_pre);
        let o = g.sigmoid(o_pre);
        let c_tilde = g.tanh(c_pre);
        let t_gate = self.time_gate.forward(g, store, x, dt);
        let d_gate = self.dist_gate.forward(g, store, x, dd);
        // c' = f∘c + i∘T∘D∘c̃
        let fc = g.mul(f, c_prev);
        let itd = g.mul(i, t_gate);
        let itd = g.mul(itd, d_gate);
        let ic = g.mul(itd, c_tilde);
        let c = g.add(fc, ic);
        let ct = g.tanh(c);
        let h_next = g.mul(o, ct);
        (h_next, c)
    }
}

impl SideEncoder for StgnEncoder {
    fn out_dim(&self) -> usize {
        self.hidden
    }

    fn encode(
        &self,
        g: &mut Graph,
        store: &ParamStore,
        src: &PlainSource,
        input: &SeqInput<'_>,
    ) -> Value {
        // Merge long + short events preserving order; days drive Δt.
        let mut events: Vec<(CityId, u32)> = input
            .lt_ids
            .iter()
            .zip(input.lt_days)
            .chain(input.st_ids.iter().zip(input.st_days))
            .map(|(&c, &d)| (c, d))
            .collect();
        events.sort_by_key(|&(_, d)| d);
        if events.is_empty() {
            return g.input(Tensor::zeros(Shape::Vector(self.hidden)));
        }
        let mut h = g.input(Tensor::zeros(Shape::Vector(self.hidden)));
        let mut c = g.input(Tensor::zeros(Shape::Vector(self.hidden)));
        let mut prev: Option<(CityId, u32)> = None;
        for &(city, day) in &events {
            let x = src.city(g, city);
            let (dt, dd) = match prev {
                Some((pc, pd)) => (
                    (day.saturating_sub(pd) as f32 / 30.0).min(4.0),
                    self.meta.distance(pc, city),
                ),
                None => (0.0, 0.0),
            };
            let (h2, c2) = self.step(g, store, x, h, c, dt, dd);
            h = h2;
            c = c2;
            prev = Some((city, day));
        }
        h
    }
}

/// The assembled two-side STGN baseline.
pub type StgnBaseline = TwoSideModel<StgnEncoder>;

impl StgnBaseline {
    /// Build the baseline; `meta` supplies inter-city distances for the
    /// distance gate.
    pub fn new(cfg: BaselineConfig, num_users: usize, num_cities: usize, meta: CityMeta) -> Self {
        TwoSideModel::assemble(
            "STGN",
            cfg,
            num_users,
            num_cities,
            move |store, name, cfg, rng| StgnEncoder::new(store, name, cfg, meta.clone(), rng),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seqnet::test_support::{assert_learns, learnable_groups};
    use od_hsg::GeoPoint;
    use odnet_core::{OdScorer, TrainableModel};

    fn meta(n: usize) -> CityMeta {
        let coords = (0..n)
            .map(|i| GeoPoint {
                lon: i as f64,
                lat: 0.3 * i as f64,
            })
            .collect();
        CityMeta::from_groups(coords, &[])
    }

    #[test]
    fn learns_a_repetition_pattern() {
        let mut model = StgnBaseline::new(BaselineConfig::tiny(), 10, 8, meta(8));
        assert_learns(&mut model, 13);
    }

    #[test]
    fn empty_history_encodes_to_finite_scores() {
        let model = StgnBaseline::new(BaselineConfig::tiny(), 10, 8, meta(8));
        let mut group = learnable_groups(1, 8, 2).pop().unwrap();
        group.lt_origins.clear();
        group.lt_dests.clear();
        group.lt_days.clear();
        group.st_origins.clear();
        group.st_dests.clear();
        group.st_days.clear();
        let scores = model.score_group(&group);
        assert!(scores.iter().all(|(a, b)| a.is_finite() && b.is_finite()));
    }

    #[test]
    fn gates_receive_gradients() {
        let model = StgnBaseline::new(BaselineConfig::tiny(), 10, 8, meta(8));
        let group = &learnable_groups(1, 8, 3)[0];
        let mut g = od_tensor::Graph::new();
        let loss = model.group_loss(&mut g, group);
        g.backward(loss);
        let mut reached_time_gate = false;
        for (id, grad) in g.param_grads() {
            if model.store.name(id).contains("tgate") && grad.sq_norm() > 0.0 {
                reached_time_gate = true;
            }
        }
        assert!(reached_time_gate, "time gate got no gradient");
    }

    #[test]
    fn name_matches_table() {
        assert_eq!(
            StgnBaseline::new(BaselineConfig::tiny(), 4, 4, meta(4)).name(),
            "STGN"
        );
    }
}
