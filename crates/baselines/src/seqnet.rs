//! Scaffold shared by the sequential neural baselines (LSTM, STGN, LSTPM):
//! two single-task sides (origin and destination), each with its own
//! embedding tables, a pluggable sequence encoder, and a logit tower. Only
//! the encoder differs between the baselines — exactly the factor the
//! paper's comparison isolates.

use crate::common::{single_task_group_loss, BaselineConfig, PlainSource, SideTables};
use od_hsg::CityId;
use od_tensor::nn::{Activation, Mlp};
use od_tensor::{stable_sigmoid, Graph, ParamStore, Value};
use odnet_core::{GroupInput, OdScorer, TrainHyper, TrainableModel};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The sequence context one side's encoder sees.
pub struct SeqInput<'a> {
    /// Long-term city ids (bookings).
    pub lt_ids: &'a [CityId],
    /// Days of the long-term events.
    pub lt_days: &'a [u32],
    /// Short-term city ids (clicks).
    pub st_ids: &'a [CityId],
    /// Days of the short-term events.
    pub st_days: &'a [u32],
    /// The user's current city.
    pub current_city: CityId,
    /// Decision day.
    pub day: u32,
}

/// A per-side sequence encoder: consumes the side's history and returns a
/// fixed-width summary vector.
pub trait SideEncoder: Sync {
    /// Output width of [`SideEncoder::encode`].
    fn out_dim(&self) -> usize;

    /// Encode the side's history into a vector of [`SideEncoder::out_dim`].
    fn encode(
        &self,
        g: &mut Graph,
        store: &ParamStore,
        src: &PlainSource,
        input: &SeqInput<'_>,
    ) -> Value;
}

struct Side<E> {
    tables: SideTables,
    encoder: E,
    tower: Mlp,
}

/// A complete two-side baseline with pluggable encoders.
pub struct TwoSideModel<E> {
    name: String,
    /// All trainable parameters.
    pub store: ParamStore,
    cfg: BaselineConfig,
    side_o: Side<E>,
    side_d: Side<E>,
}

impl<E: SideEncoder> TwoSideModel<E> {
    /// Assemble the model; `make_encoder` registers one encoder per side.
    pub fn assemble(
        name: impl Into<String>,
        cfg: BaselineConfig,
        num_users: usize,
        num_cities: usize,
        mut make_encoder: impl FnMut(&mut ParamStore, &str, &BaselineConfig, &mut StdRng) -> E,
    ) -> Self {
        let name = name.into();
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut store = ParamStore::new();
        let mut make_side = |store: &mut ParamStore, side: &str, rng: &mut StdRng| {
            let tables = SideTables::new(store, side, num_users, num_cities, cfg.embed_dim, rng);
            let encoder = make_encoder(store, &format!("{side}.enc"), &cfg, rng);
            let q_dim = encoder.out_dim() + 3 * cfg.embed_dim + odnet_core::XST_DIM;
            let tower = Mlp::new(
                store,
                &format!("{side}.tower"),
                &[q_dim, cfg.tower_hidden, 1],
                Activation::Relu,
                Activation::None,
                rng,
            );
            Side {
                tables,
                encoder,
                tower,
            }
        };
        let side_o = make_side(&mut store, "o", &mut rng);
        let side_d = make_side(&mut store, "d", &mut rng);
        TwoSideModel {
            name,
            store,
            cfg,
            side_o,
            side_d,
        }
    }

    /// Forward one group to per-candidate `(logit_O, logit_D)` nodes.
    pub fn forward_group(&self, g: &mut Graph, group: &GroupInput) -> (Vec<Value>, Vec<Value>) {
        let run_side =
            |g: &mut Graph, side: &Side<E>, ids: (&[CityId], &[CityId]), days: (&[u32], &[u32])| {
                let src = side.tables.begin(g, &self.store);
                let input = SeqInput {
                    lt_ids: ids.0,
                    lt_days: days.0,
                    st_ids: ids.1,
                    st_days: days.1,
                    current_city: group.current_city,
                    day: group.day,
                };
                let enc = side.encoder.encode(g, &self.store, &src, &input);
                let e_user = src.user(g, group.user);
                let e_lbs = src.city(g, group.current_city);
                (src, enc, e_user, e_lbs)
            };
        let (src_o, enc_o, user_o, lbs_o) = run_side(
            g,
            &self.side_o,
            (&group.lt_origins, &group.st_origins),
            (&group.lt_days, &group.st_days),
        );
        let (src_d, enc_d, user_d, lbs_d) = run_side(
            g,
            &self.side_d,
            (&group.lt_dests, &group.st_dests),
            (&group.lt_days, &group.st_days),
        );
        let mut logits_o = Vec::with_capacity(group.candidates.len());
        let mut logits_d = Vec::with_capacity(group.candidates.len());
        for cand in &group.candidates {
            let e_co = src_o.city(g, cand.origin);
            let xo = g.input(od_tensor::Tensor::vector(&cand.xst_o));
            let q_o = g.concat_cols(&[enc_o, user_o, lbs_o, e_co, xo]);
            logits_o.push(self.side_o.tower.forward(g, &self.store, q_o));
            let e_cd = src_d.city(g, cand.dest);
            let xd = g.input(od_tensor::Tensor::vector(&cand.xst_d));
            let q_d = g.concat_cols(&[enc_d, user_d, lbs_d, e_cd, xd]);
            logits_d.push(self.side_d.tower.forward(g, &self.store, q_d));
        }
        (logits_o, logits_d)
    }
}

impl<E: SideEncoder> TrainableModel for TwoSideModel<E> {
    fn store(&self) -> &ParamStore {
        &self.store
    }

    fn store_mut(&mut self) -> &mut ParamStore {
        &mut self.store
    }

    fn group_loss(&self, g: &mut Graph, group: &GroupInput) -> Value {
        let (lo, ld) = self.forward_group(g, group);
        single_task_group_loss(g, &lo, &ld, group)
    }

    fn hyper(&self) -> TrainHyper {
        self.cfg.hyper()
    }
}

impl<E: SideEncoder> OdScorer for TwoSideModel<E> {
    fn score_group(&self, group: &GroupInput) -> Vec<(f32, f32)> {
        let mut g = Graph::new();
        let (lo, ld) = self.forward_group(&mut g, group);
        lo.iter()
            .zip(&ld)
            .map(|(&a, &b)| {
                (
                    stable_sigmoid(g.value(a).as_slice()[0]),
                    stable_sigmoid(g.value(b).as_slice()[0]),
                )
            })
            .collect()
    }

    fn name(&self) -> String {
        self.name.clone()
    }
}

#[cfg(test)]
pub(crate) mod test_support {
    use super::*;
    use od_hsg::UserId;
    use odnet_core::CandidateInput;
    use rand::Rng;

    /// Synthetic learnable groups: the positive destination is always the
    /// same as the user's most recent history entry ("users repeat
    /// themselves"), the positive origin is the current city.
    pub fn learnable_groups(n: usize, num_cities: u32, seed: u64) -> Vec<GroupInput> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                let fav = CityId(rng.gen_range(0..num_cities));
                let cur = CityId(rng.gen_range(0..num_cities));
                let neg_d = CityId((fav.0 + 1 + rng.gen_range(0..num_cities - 1)) % num_cities);
                let neg_o = CityId((cur.0 + 1 + rng.gen_range(0..num_cities - 1)) % num_cities);
                GroupInput {
                    user: UserId((i % 10) as u32),
                    day: 60 + i as u32,
                    current_city: cur,
                    lt_origins: vec![cur, cur],
                    lt_dests: vec![fav, fav],
                    lt_days: vec![10, 40],
                    st_origins: vec![cur],
                    st_dests: vec![fav],
                    st_days: vec![58],
                    candidates: vec![
                        CandidateInput {
                            origin: cur,
                            dest: fav,
                            xst_o: {
                                let mut x = [0.0; odnet_core::XST_DIM];
                                x[0] = 0.5;
                                x[2] = 0.5;
                                x[3] = 0.1;
                                x
                            },
                            xst_d: {
                                let mut x = [0.0; odnet_core::XST_DIM];
                                x[0] = 0.5;
                                x[2] = 0.5;
                                x[3] = 0.1;
                                x
                            },
                            label_o: 1.0,
                            label_d: 1.0,
                        },
                        CandidateInput {
                            origin: neg_o,
                            dest: neg_d,
                            xst_o: [0.0; odnet_core::XST_DIM],
                            xst_d: [0.0; odnet_core::XST_DIM],
                            label_o: (neg_o == cur) as u32 as f32,
                            label_d: (neg_d == fav) as u32 as f32,
                        },
                    ],
                }
            })
            .collect()
    }

    /// Train a model briefly and assert it ranks the positive candidate of
    /// held-out groups above the negative more often than chance.
    pub fn assert_learns<M: TrainableModel + OdScorer>(model: &mut M, seed: u64) {
        let train = learnable_groups(120, 8, seed);
        let test = learnable_groups(40, 8, seed + 1);
        odnet_core::train(model, &train);
        let mut correct = 0;
        for g in &test {
            let s = model.score_group(g);
            let combined0 = model.serving_score(s[0].0, s[0].1);
            let combined1 = model.serving_score(s[1].0, s[1].1);
            if combined0 > combined1 {
                correct += 1;
            }
        }
        assert!(
            correct >= 30,
            "{} ranked only {correct}/40 held-out groups correctly",
            model.name()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lstm::LstmBaseline;

    #[test]
    fn forward_shapes_and_scores() {
        let mut model = LstmBaseline::new(BaselineConfig::tiny(), 10, 8);
        let groups = test_support::learnable_groups(3, 8, 1);
        let scores = model.score_group(&groups[0]);
        assert_eq!(scores.len(), 2);
        assert!(scores
            .iter()
            .all(|(a, b)| (0.0..=1.0).contains(a) && (0.0..=1.0).contains(b)));
        // Loss is a finite scalar.
        let mut g = Graph::new();
        let loss = model.group_loss(&mut g, &groups[0]);
        assert!(g.value(loss).item().is_finite());
        let _ = &mut model;
    }
}
