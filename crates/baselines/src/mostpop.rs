//! MostPop — the rule-based popularity baseline (paper §V-A.3): cities are
//! ranked by their visit popularity, and a user's current city is paired
//! with the most popular destinations.

use crate::common::CityMeta;
use odnet_core::{GroupInput, OdScorer};

/// The fitted popularity scorer. "Fitting" is just counting.
#[derive(Clone, Debug)]
pub struct MostPop {
    meta: CityMeta,
}

impl MostPop {
    /// Build from training-derived city metadata.
    pub fn new(meta: CityMeta) -> Self {
        MostPop { meta }
    }
}

impl OdScorer for MostPop {
    fn score_group(&self, group: &GroupInput) -> Vec<(f32, f32)> {
        group
            .candidates
            .iter()
            .map(|c| {
                // Origin: the user's current city dominates; other origins
                // fall back to global origin popularity.
                let p_o = if c.origin == group.current_city {
                    1.0
                } else {
                    0.5 * self.meta.pop_origin[c.origin.index()]
                };
                let p_d = self.meta.pop_dest[c.dest.index()];
                (p_o, p_d)
            })
            .collect()
    }

    fn name(&self) -> String {
        "MostPop".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use od_hsg::{CityId, GeoPoint, UserId};
    use odnet_core::CandidateInput;

    fn meta() -> CityMeta {
        let coords: Vec<GeoPoint> = (0..4)
            .map(|i| GeoPoint {
                lon: i as f64,
                lat: 0.0,
            })
            .collect();
        let mut m = CityMeta::from_groups(coords, &[]);
        m.pop_origin = vec![0.1, 0.9, 0.2, 0.0];
        m.pop_dest = vec![0.0, 0.3, 1.0, 0.5];
        m
    }

    fn group() -> GroupInput {
        GroupInput {
            user: UserId(0),
            day: 5,
            current_city: CityId(0),
            lt_origins: vec![],
            lt_dests: vec![],
            lt_days: vec![],
            st_origins: vec![],
            st_dests: vec![],
            st_days: vec![],
            candidates: vec![
                CandidateInput {
                    origin: CityId(0),
                    dest: CityId(2),
                    xst_o: [0.0; odnet_core::XST_DIM],
                    xst_d: [0.0; odnet_core::XST_DIM],
                    label_o: 1.0,
                    label_d: 1.0,
                },
                CandidateInput {
                    origin: CityId(1),
                    dest: CityId(3),
                    xst_o: [0.0; odnet_core::XST_DIM],
                    xst_d: [0.0; odnet_core::XST_DIM],
                    label_o: 0.0,
                    label_d: 0.0,
                },
            ],
        }
    }

    #[test]
    fn current_city_origin_scores_highest() {
        let mp = MostPop::new(meta());
        let scores = mp.score_group(&group());
        // Candidate 0 departs from the current city → p_o = 1.
        assert_eq!(scores[0].0, 1.0);
        // Candidate 1 departs elsewhere → scaled popularity.
        assert!((scores[1].0 - 0.45).abs() < 1e-6);
        // Destinations ranked purely by popularity.
        assert_eq!(scores[0].1, 1.0);
        assert_eq!(scores[1].1, 0.5);
    }

    #[test]
    fn name_matches_table() {
        assert_eq!(MostPop::new(meta()).name(), "MostPop");
    }
}
