//! LSTM baseline (paper §V-A.3, Hochreiter & Schmidhuber 1997): a plain
//! recurrent encoder over the concatenated long-term + short-term city
//! sequence, the simplest sequential model in the comparison.

use crate::common::{BaselineConfig, PlainSource};
use crate::seqnet::{SeqInput, SideEncoder, TwoSideModel};
use od_tensor::nn::LstmCell;
use od_tensor::{Graph, ParamStore, Shape, Tensor, Value};

/// The plain LSTM side encoder.
pub struct LstmEncoder {
    cell: LstmCell,
    hidden: usize,
}

impl SideEncoder for LstmEncoder {
    fn out_dim(&self) -> usize {
        self.hidden
    }

    fn encode(
        &self,
        g: &mut Graph,
        store: &ParamStore,
        src: &PlainSource,
        input: &SeqInput<'_>,
    ) -> Value {
        let mut ids: Vec<_> = input.lt_ids.to_vec();
        ids.extend_from_slice(input.st_ids);
        match src.cities(g, &ids) {
            Some(seq) => self.cell.run(g, store, seq),
            None => g.input(Tensor::zeros(Shape::Vector(self.hidden))),
        }
    }
}

/// The assembled two-side LSTM baseline.
pub type LstmBaseline = TwoSideModel<LstmEncoder>;

impl LstmBaseline {
    /// Build the baseline for a universe of `num_users` × `num_cities`.
    pub fn new(cfg: BaselineConfig, num_users: usize, num_cities: usize) -> Self {
        TwoSideModel::assemble(
            "LSTM",
            cfg,
            num_users,
            num_cities,
            |store, name, cfg, rng| LstmEncoder {
                cell: LstmCell::new(store, name, cfg.embed_dim, cfg.hidden_dim, rng),
                hidden: cfg.hidden_dim,
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seqnet::test_support::assert_learns;
    use odnet_core::OdScorer;

    #[test]
    fn learns_a_repetition_pattern() {
        let mut model = LstmBaseline::new(BaselineConfig::tiny(), 10, 8);
        assert_learns(&mut model, 11);
    }

    #[test]
    fn name_matches_table() {
        let model = LstmBaseline::new(BaselineConfig::tiny(), 4, 4);
        assert_eq!(model.name(), "LSTM");
    }
}
