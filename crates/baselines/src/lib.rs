//! # od-baselines — the paper's comparison methods, from scratch
//!
//! Every method in the paper's Tables III–V is reimplemented here on the
//! same substrate and evaluation harness as ODNET:
//!
//! | Method      | Family      | Module |
//! |-------------|-------------|--------|
//! | MostPop     | rule-based  | [`mostpop`] |
//! | GBDT        | boosted trees (Friedman 2001) | [`gbdt`] |
//! | LSTM        | RNN | [`lstm`] |
//! | STGN        | RNN + time/distance gates | [`stgn`] |
//! | LSTPM       | RNN + non-local / geo-dilated | [`lstpm`] |
//! | STOD-PPA    | origin-aware RNN + preference attention | [`stod_ppa`] |
//! | STP-UDGAT   | homogeneous spatial/temporal/preference GATs | [`stp_udgat`] |
//!
//! All neural baselines implement [`odnet_core::TrainableModel`] (so the
//! shared data-parallel trainer drives them) and [`odnet_core::OdScorer`]
//! (so the shared evaluation harness scores them). The paper's ODNET
//! ablation variants (ODNET−G, STL±G) live in `odnet-core` as variants of
//! the main model.

#![warn(missing_docs)]

pub mod common;
pub mod gbdt;
pub mod lstm;
pub mod lstpm;
pub mod mostpop;
pub mod seqnet;
pub mod stgn;
pub mod stod_ppa;
pub mod stp_udgat;

pub use common::{BaselineConfig, CityMeta};
pub use gbdt::{GbdtBaseline, GbdtConfig};
pub use lstm::LstmBaseline;
pub use lstpm::LstpmBaseline;
pub use mostpop::MostPop;
pub use seqnet::{SeqInput, SideEncoder, TwoSideModel};
pub use stgn::StgnBaseline;
pub use stod_ppa::StodPpaBaseline;
pub use stp_udgat::{CityGraph, GraphKind, StpUdgatBaseline};
