//! LSTPM baseline (paper §V-A.3, Sun et al. AAAI'20): long- and short-term
//! preference modeling. The long-term preference is an LSTM whose hidden
//! states are pooled by a *non-local* attention block queried by the
//! short-term state; the short-term preference is a *geo-dilated* LSTM that
//! weights each step by geographic proximity to the user's current city.
//! The encoder output is the concatenation of both preferences.

use crate::common::{BaselineConfig, CityMeta, PlainSource};
use crate::seqnet::{SeqInput, SideEncoder, TwoSideModel};
use od_tensor::nn::{BilinearAttention, LstmCell};
use od_tensor::{Graph, ParamStore, Shape, Tensor, Value};
use rand::Rng;

/// The LSTPM side encoder.
pub struct LstpmEncoder {
    long_cell: LstmCell,
    short_cell: LstmCell,
    nonlocal: BilinearAttention,
    meta: CityMeta,
    hidden: usize,
}

impl LstpmEncoder {
    fn new(
        store: &mut ParamStore,
        name: &str,
        cfg: &BaselineConfig,
        meta: CityMeta,
        rng: &mut impl Rng,
    ) -> Self {
        LstpmEncoder {
            long_cell: LstmCell::new(
                store,
                &format!("{name}.long"),
                cfg.embed_dim,
                cfg.hidden_dim,
                rng,
            ),
            short_cell: LstmCell::new(
                store,
                &format!("{name}.short"),
                cfg.embed_dim,
                cfg.hidden_dim,
                rng,
            ),
            nonlocal: BilinearAttention::new(
                store,
                &format!("{name}.nonlocal"),
                cfg.hidden_dim,
                rng,
            ),
            meta,
            hidden: cfg.hidden_dim,
        }
    }
}

impl SideEncoder for LstpmEncoder {
    fn out_dim(&self) -> usize {
        2 * self.hidden
    }

    fn encode(
        &self,
        g: &mut Graph,
        store: &ParamStore,
        src: &PlainSource,
        input: &SeqInput<'_>,
    ) -> Value {
        // Short-term: geo-dilated LSTM — inputs scaled by proximity to the
        // current city, so nearby clicks dominate the state.
        let short = if input.st_ids.is_empty() {
            g.input(Tensor::zeros(Shape::Vector(self.hidden)))
        } else {
            let mut state = self.short_cell.zero_state(g);
            for &city in input.st_ids {
                let x = src.city(g, city);
                let proximity = 1.0 / (1.0 + 4.0 * self.meta.distance(input.current_city, city));
                let x = g.scale(x, proximity);
                state = self.short_cell.step(g, store, x, state);
            }
            state.h
        };
        // Long-term: LSTM over bookings keeping every hidden state, then a
        // non-local attention pooled by the short-term query.
        let long = if input.lt_ids.is_empty() {
            g.input(Tensor::zeros(Shape::Vector(self.hidden)))
        } else {
            let mut state = self.long_cell.zero_state(g);
            let mut hiddens = Vec::with_capacity(input.lt_ids.len());
            for &city in input.lt_ids {
                let x = src.city(g, city);
                state = self.long_cell.step(g, store, x, state);
                hiddens.push(state.h);
            }
            let h_matrix = g.concat_rows(&hiddens); // t×h
            let pooled = self.nonlocal.forward(g, store, short, h_matrix);
            g.reshape(pooled, Shape::Vector(self.hidden))
        };
        g.concat_cols(&[long, short])
    }
}

/// The assembled two-side LSTPM baseline.
pub type LstpmBaseline = TwoSideModel<LstpmEncoder>;

impl LstpmBaseline {
    /// Build the baseline; `meta` supplies the geo-dilation distances.
    pub fn new(cfg: BaselineConfig, num_users: usize, num_cities: usize, meta: CityMeta) -> Self {
        TwoSideModel::assemble(
            "LSTPM",
            cfg,
            num_users,
            num_cities,
            move |store, name, cfg, rng| LstpmEncoder::new(store, name, cfg, meta.clone(), rng),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seqnet::test_support::{assert_learns, learnable_groups};
    use od_hsg::GeoPoint;
    use odnet_core::OdScorer;

    fn meta(n: usize) -> CityMeta {
        let coords = (0..n)
            .map(|i| GeoPoint {
                lon: (i * i % 7) as f64,
                lat: i as f64,
            })
            .collect();
        CityMeta::from_groups(coords, &[])
    }

    #[test]
    fn learns_a_repetition_pattern() {
        let mut model = LstpmBaseline::new(BaselineConfig::tiny(), 10, 8, meta(8));
        assert_learns(&mut model, 17);
    }

    #[test]
    fn handles_partial_histories() {
        let model = LstpmBaseline::new(BaselineConfig::tiny(), 10, 8, meta(8));
        // Only long-term, no short-term.
        let mut group = learnable_groups(1, 8, 4).pop().unwrap();
        group.st_origins.clear();
        group.st_dests.clear();
        group.st_days.clear();
        let scores = model.score_group(&group);
        assert!(scores.iter().all(|(a, b)| a.is_finite() && b.is_finite()));
        // Only short-term, no long-term.
        let mut group2 = learnable_groups(1, 8, 5).pop().unwrap();
        group2.lt_origins.clear();
        group2.lt_dests.clear();
        group2.lt_days.clear();
        let scores2 = model.score_group(&group2);
        assert!(scores2.iter().all(|(a, b)| a.is_finite() && b.is_finite()));
    }

    #[test]
    fn name_matches_table() {
        assert_eq!(
            LstpmBaseline::new(BaselineConfig::tiny(), 4, 4, meta(4)).name(),
            "LSTPM"
        );
    }
}
