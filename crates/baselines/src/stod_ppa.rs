//! STOD-PPA baseline (paper §V-A.3, Lim et al. WSDM'21): origin-aware next
//! destination recommendation with personalized preference attention.
//!
//! The published model encodes the user's origin and destination sequences
//! with spatial-temporal LSTMs and learns the OO, DD and OD relationships;
//! a preference attention conditions on the candidate. This reproduction
//! keeps those structural ingredients: two LSTM encoders (one per sequence),
//! bilinear cross-attention between them (the OD relationship — this is the
//! *exploitation* of O&D the paper credits STOD-PPA for), and a per-candidate
//! preference attention over the history hidden states. What it deliberately
//! lacks — like the original — is any *exploration* of unseen cities, which
//! is why it trails the graph-based methods.

use crate::common::{single_task_group_loss, BaselineConfig, SideTables};
use od_tensor::nn::{Activation, BilinearAttention, Linear, LstmCell, Mlp};
use od_tensor::{stable_sigmoid, Graph, ParamStore, Shape, Tensor, Value};
use odnet_core::{GroupInput, OdScorer, TrainHyper, TrainableModel};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The assembled STOD-PPA baseline.
pub struct StodPpaBaseline {
    /// All trainable parameters.
    pub store: ParamStore,
    cfg: BaselineConfig,
    tables: SideTables,
    lstm_o: LstmCell,
    lstm_d: LstmCell,
    /// OD cross-attention: origin summary queries destination hiddens.
    cross_od: BilinearAttention,
    /// DO cross-attention: destination summary queries origin hiddens.
    cross_do: BilinearAttention,
    /// Candidate-embedding projection into hidden space for the PPA query.
    proj_cand: Linear,
    ppa_o: BilinearAttention,
    ppa_d: BilinearAttention,
    tower_o: Mlp,
    tower_d: Mlp,
}

impl StodPpaBaseline {
    /// Build the baseline for a universe of `num_users` × `num_cities`.
    pub fn new(cfg: BaselineConfig, num_users: usize, num_cities: usize) -> Self {
        let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x57_0D);
        let mut store = ParamStore::new();
        let (d, h) = (cfg.embed_dim, cfg.hidden_dim);
        let tables = SideTables::new(&mut store, "stod", num_users, num_cities, d, &mut rng);
        let lstm_o = LstmCell::new(&mut store, "stod.lstm_o", d, h, &mut rng);
        let lstm_d = LstmCell::new(&mut store, "stod.lstm_d", d, h, &mut rng);
        let cross_od = BilinearAttention::new(&mut store, "stod.cross_od", h, &mut rng);
        let cross_do = BilinearAttention::new(&mut store, "stod.cross_do", h, &mut rng);
        let proj_cand = Linear::new(&mut store, "stod.proj_cand", d, h, true, &mut rng);
        let ppa_o = BilinearAttention::new(&mut store, "stod.ppa_o", h, &mut rng);
        let ppa_d = BilinearAttention::new(&mut store, "stod.ppa_d", h, &mut rng);
        // q = [own summary | cross | ppa | user | lbs | candidate | x_st].
        let q_dim = 3 * h + 3 * d + odnet_core::XST_DIM;
        let tower = |store: &mut ParamStore, name: &str, rng: &mut StdRng| {
            Mlp::new(
                store,
                name,
                &[q_dim, cfg.tower_hidden, 1],
                Activation::Relu,
                Activation::None,
                rng,
            )
        };
        let tower_o = tower(&mut store, "stod.tower_o", &mut rng);
        let tower_d = tower(&mut store, "stod.tower_d", &mut rng);
        StodPpaBaseline {
            store,
            cfg,
            tables,
            lstm_o,
            lstm_d,
            cross_od,
            cross_do,
            proj_cand,
            ppa_o,
            ppa_d,
            tower_o,
            tower_d,
        }
    }

    /// Forward one group to per-candidate logits.
    pub fn forward_group(&self, g: &mut Graph, group: &GroupInput) -> (Vec<Value>, Vec<Value>) {
        let store = &self.store;
        let h = self.cfg.hidden_dim;
        let src = self.tables.begin(g, store);
        // Encode both sequences keeping all hidden states.
        let encode =
            |g: &mut Graph, cell: &LstmCell, ids: &[od_hsg::CityId]| -> (Value, Option<Value>) {
                if ids.is_empty() {
                    return (g.input(Tensor::zeros(Shape::Vector(h))), None);
                }
                let mut state = cell.zero_state(g);
                let mut hiddens = Vec::with_capacity(ids.len());
                for &c in ids {
                    let x = src.city(g, c);
                    state = cell.step(g, store, x, state);
                    hiddens.push(state.h);
                }
                let matrix = g.concat_rows(&hiddens);
                (state.h, Some(matrix))
            };
        let (sum_o, hist_o) = encode(g, &self.lstm_o, &group.lt_origins);
        let (sum_d, hist_d) = encode(g, &self.lstm_d, &group.lt_dests);
        // OD relationship: each side's summary attends the other side's
        // hidden states.
        let cross =
            |g: &mut Graph, attn: &BilinearAttention, query: Value, keys: Option<Value>| match keys
            {
                Some(keys) => {
                    let pooled = attn.forward(g, store, query, keys);
                    g.reshape(pooled, Shape::Vector(h))
                }
                None => g.input(Tensor::zeros(Shape::Vector(h))),
            };
        let od_rel = cross(g, &self.cross_od, sum_o, hist_d);
        let do_rel = cross(g, &self.cross_do, sum_d, hist_o);
        let e_user = src.user(g, group.user);
        let e_lbs = src.city(g, group.current_city);
        let mut logits_o = Vec::with_capacity(group.candidates.len());
        let mut logits_d = Vec::with_capacity(group.candidates.len());
        for cand in &group.candidates {
            let e_co = src.city(g, cand.origin);
            let e_cd = src.city(g, cand.dest);
            // Personalized preference attention: the candidate (projected
            // into hidden space) queries its own side's history states.
            let q_cand_o = self.proj_cand.forward(g, store, e_co);
            let q_cand_o = g.reshape(q_cand_o, Shape::Vector(h));
            let pref_o = cross(g, &self.ppa_o, q_cand_o, hist_o);
            let q_cand_d = self.proj_cand.forward(g, store, e_cd);
            let q_cand_d = g.reshape(q_cand_d, Shape::Vector(h));
            let pref_d = cross(g, &self.ppa_d, q_cand_d, hist_d);
            let xo = g.input(Tensor::vector(&cand.xst_o));
            let xd = g.input(Tensor::vector(&cand.xst_d));
            let q_o = g.concat_cols(&[sum_o, od_rel, pref_o, e_user, e_lbs, e_co]);
            let q_o = g.concat_cols(&[q_o, xo]);
            let q_d = g.concat_cols(&[sum_d, do_rel, pref_d, e_user, e_lbs, e_cd]);
            let q_d = g.concat_cols(&[q_d, xd]);
            logits_o.push(self.tower_o.forward(g, store, q_o));
            logits_d.push(self.tower_d.forward(g, store, q_d));
        }
        (logits_o, logits_d)
    }
}

impl TrainableModel for StodPpaBaseline {
    fn store(&self) -> &ParamStore {
        &self.store
    }

    fn store_mut(&mut self) -> &mut ParamStore {
        &mut self.store
    }

    fn group_loss(&self, g: &mut Graph, group: &GroupInput) -> Value {
        let (lo, ld) = self.forward_group(g, group);
        single_task_group_loss(g, &lo, &ld, group)
    }

    fn hyper(&self) -> TrainHyper {
        self.cfg.hyper()
    }
}

impl OdScorer for StodPpaBaseline {
    fn score_group(&self, group: &GroupInput) -> Vec<(f32, f32)> {
        let mut g = Graph::new();
        let (lo, ld) = self.forward_group(&mut g, group);
        lo.iter()
            .zip(&ld)
            .map(|(&a, &b)| {
                (
                    stable_sigmoid(g.value(a).as_slice()[0]),
                    stable_sigmoid(g.value(b).as_slice()[0]),
                )
            })
            .collect()
    }

    fn name(&self) -> String {
        "STOD-PPA".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seqnet::test_support::{assert_learns, learnable_groups};

    #[test]
    fn learns_a_repetition_pattern() {
        let mut model = StodPpaBaseline::new(BaselineConfig::tiny(), 10, 8);
        assert_learns(&mut model, 23);
    }

    #[test]
    fn handles_missing_origin_history() {
        // Check-in style input: no origin sequence at all.
        let model = StodPpaBaseline::new(BaselineConfig::tiny(), 10, 8);
        let mut group = learnable_groups(1, 8, 6).pop().unwrap();
        group.lt_origins.clear();
        group.st_origins.clear();
        let scores = model.score_group(&group);
        assert!(scores.iter().all(|(a, b)| a.is_finite() && b.is_finite()));
    }

    #[test]
    fn cross_attention_receives_gradients() {
        let model = StodPpaBaseline::new(BaselineConfig::tiny(), 10, 8);
        let group = &learnable_groups(1, 8, 7)[0];
        let mut g = Graph::new();
        let loss = model.group_loss(&mut g, group);
        g.backward(loss);
        let mut reached = false;
        for (id, grad) in g.param_grads() {
            if model.store.name(id).contains("cross_od") && grad.sq_norm() > 0.0 {
                reached = true;
            }
        }
        assert!(reached, "OD cross-attention got no gradient");
    }

    #[test]
    fn name_matches_table() {
        assert_eq!(
            StodPpaBaseline::new(BaselineConfig::tiny(), 4, 4).name(),
            "STOD-PPA"
        );
    }
}
