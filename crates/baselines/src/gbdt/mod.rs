//! GBDT baseline (paper §V-A.3, Friedman 2001): gradient-boosted regression
//! trees on logistic loss over hand-crafted candidate features, one booster
//! for the origin task and one for the destination task. The paper uses 300
//! trees; [`GbdtConfig::default`] follows.

mod binned;
pub mod features;
mod tree;

use crate::common::CityMeta;
use binned::BinnedDataset;
use od_tensor::stable_sigmoid;
use odnet_core::{GroupInput, OdScorer};
pub use tree::{RegressionTree, TreeParams};

/// Boosting hyper-parameters.
#[derive(Clone, Copy, Debug)]
pub struct GbdtConfig {
    /// Number of boosting rounds (paper: 300).
    pub num_trees: usize,
    /// Shrinkage per tree.
    pub learning_rate: f32,
    /// Per-tree growth parameters.
    pub tree: TreeParams,
}

impl Default for GbdtConfig {
    fn default() -> Self {
        GbdtConfig {
            num_trees: 300,
            learning_rate: 0.1,
            tree: TreeParams::default(),
        }
    }
}

impl GbdtConfig {
    /// Miniature config for tests.
    pub fn tiny() -> Self {
        GbdtConfig {
            num_trees: 30,
            ..Self::default()
        }
    }
}

/// One boosted ensemble on logistic loss.
#[derive(Clone, Debug)]
struct Booster {
    bias: f32,
    trees: Vec<RegressionTree>,
    learning_rate: f32,
}

impl Booster {
    /// Fit on row-major features and 0/1 labels.
    fn fit(x: &[Vec<f32>], y: &[f32], config: GbdtConfig) -> Booster {
        assert_eq!(x.len(), y.len());
        assert!(!x.is_empty(), "cannot fit a booster on zero samples");
        // Quantize features once; every boosting round reuses the bins.
        let binned = BinnedDataset::build(x);
        // Prior log-odds.
        let p = (y.iter().sum::<f32>() / y.len() as f32).clamp(1e-4, 1.0 - 1e-4);
        let bias = (p / (1.0 - p)).ln();
        let mut margins = vec![bias; y.len()];
        let mut trees = Vec::with_capacity(config.num_trees);
        let mut grad = vec![0.0f32; y.len()];
        let mut hess = vec![0.0f32; y.len()];
        for _ in 0..config.num_trees {
            for i in 0..y.len() {
                let p = stable_sigmoid(margins[i]);
                grad[i] = p - y[i];
                hess[i] = (p * (1.0 - p)).max(1e-6);
            }
            let tree = RegressionTree::fit_binned(&binned, &grad, &hess, config.tree);
            for (i, xi) in x.iter().enumerate() {
                margins[i] += config.learning_rate * tree.predict(xi);
            }
            trees.push(tree);
        }
        Booster {
            bias,
            trees,
            learning_rate: config.learning_rate,
        }
    }

    fn predict_margin(&self, features: &[f32]) -> f32 {
        self.bias + self.learning_rate * self.trees.iter().map(|t| t.predict(features)).sum::<f32>()
    }

    fn predict_proba(&self, features: &[f32]) -> f32 {
        stable_sigmoid(self.predict_margin(features))
    }
}

/// The fitted two-task GBDT baseline.
pub struct GbdtBaseline {
    meta: CityMeta,
    booster_o: Booster,
    booster_d: Booster,
}

impl GbdtBaseline {
    /// Fit both boosters from training groups.
    pub fn fit(meta: CityMeta, groups: &[GroupInput], config: GbdtConfig) -> Self {
        let mut x = Vec::new();
        let mut y_o = Vec::new();
        let mut y_d = Vec::new();
        for g in groups {
            for c in &g.candidates {
                x.push(features::extract(g, c, &meta));
                y_o.push(c.label_o);
                y_d.push(c.label_d);
            }
        }
        let booster_o = Booster::fit(&x, &y_o, config);
        let booster_d = Booster::fit(&x, &y_d, config);
        GbdtBaseline {
            meta,
            booster_o,
            booster_d,
        }
    }

    /// Number of trees per booster (diagnostics).
    pub fn num_trees(&self) -> usize {
        self.booster_o.trees.len()
    }
}

impl OdScorer for GbdtBaseline {
    fn score_group(&self, group: &GroupInput) -> Vec<(f32, f32)> {
        group
            .candidates
            .iter()
            .map(|c| {
                let f = features::extract(group, c, &self.meta);
                (
                    self.booster_o.predict_proba(&f),
                    self.booster_d.predict_proba(&f),
                )
            })
            .collect()
    }

    fn name(&self) -> String {
        "GBDT".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use od_hsg::{CityId, GeoPoint, UserId};
    use odnet_core::CandidateInput;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Synthetic groups where the positive candidate always departs from
    /// the current city and arrives at city 0 — trivially learnable from
    /// the hand-crafted features.
    fn learnable_groups(n: usize) -> (CityMeta, Vec<GroupInput>) {
        let coords: Vec<GeoPoint> = (0..6)
            .map(|i| GeoPoint {
                lon: i as f64,
                lat: (i % 3) as f64,
            })
            .collect();
        let mut rng = StdRng::seed_from_u64(3);
        let mut groups = Vec::new();
        for i in 0..n {
            let current = CityId(rng.gen_range(1..6));
            let neg_o = CityId((current.0 % 5) + 1);
            let mut g = GroupInput {
                user: UserId(i as u32),
                day: 100,
                current_city: current,
                lt_origins: vec![current],
                lt_dests: vec![CityId(0)],
                lt_days: vec![50],
                st_origins: vec![],
                st_dests: vec![],
                st_days: vec![],
                candidates: vec![],
            };
            g.candidates.push(CandidateInput {
                origin: current,
                dest: CityId(0),
                xst_o: [0.0; odnet_core::XST_DIM],
                xst_d: [0.0; odnet_core::XST_DIM],
                label_o: 1.0,
                label_d: 1.0,
            });
            g.candidates.push(CandidateInput {
                origin: neg_o,
                dest: CityId(3),
                xst_o: [0.0; odnet_core::XST_DIM],
                xst_d: [0.0; odnet_core::XST_DIM],
                label_o: (neg_o == current) as u32 as f32,
                label_d: 0.0,
            });
            groups.push(g);
        }
        let meta = CityMeta::from_groups(coords, &groups);
        (meta, groups)
    }

    #[test]
    fn learns_the_planted_rule() {
        let (meta, groups) = learnable_groups(120);
        let model = GbdtBaseline::fit(meta, &groups, GbdtConfig::tiny());
        assert_eq!(model.num_trees(), 30);
        let mut correct = 0;
        for g in &groups[..40] {
            let scores = model.score_group(g);
            if scores[0].0 > scores[1].0 && scores[0].1 > scores[1].1 {
                correct += 1;
            }
        }
        assert!(correct >= 36, "only {correct}/40 groups ranked correctly");
    }

    #[test]
    fn probabilities_are_valid() {
        let (meta, groups) = learnable_groups(40);
        let model = GbdtBaseline::fit(meta, &groups, GbdtConfig::tiny());
        for g in &groups[..10] {
            for (po, pd) in model.score_group(g) {
                assert!((0.0..=1.0).contains(&po));
                assert!((0.0..=1.0).contains(&pd));
            }
        }
    }

    #[test]
    fn name_matches_table() {
        let (meta, groups) = learnable_groups(30);
        let model = GbdtBaseline::fit(meta, &groups, GbdtConfig::tiny());
        assert_eq!(model.name(), "GBDT");
    }

    #[test]
    #[should_panic(expected = "zero samples")]
    fn rejects_empty_training_data() {
        let coords = vec![GeoPoint { lon: 0.0, lat: 0.0 }];
        let meta = CityMeta::from_groups(coords, &[]);
        GbdtBaseline::fit(meta, &[], GbdtConfig::tiny());
    }
}
