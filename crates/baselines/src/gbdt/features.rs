//! Hand-crafted candidate features for the GBDT baseline — the classic
//! industrial feature set: popularity, temporal statistics, history matches,
//! return-trip indicators, and spatial distances.

use crate::common::CityMeta;
use odnet_core::{CandidateInput, GroupInput};

/// Number of features produced per candidate: 2 popularity priors, two
/// 8-wide x_st vectors, 5 history matches, 2 unity signals, 2 spatial
/// distances, 1 history-volume feature.
pub const NUM_FEATURES: usize = 12 + 2 * odnet_core::XST_DIM;

/// Extract the fixed-length feature vector for one candidate in a group.
pub fn extract(group: &GroupInput, cand: &CandidateInput, meta: &CityMeta) -> Vec<f32> {
    let o = cand.origin;
    let d = cand.dest;
    let count = |seq: &[od_hsg::CityId], c: od_hsg::CityId| -> f32 {
        let n = seq.iter().filter(|&&x| x == c).count();
        (n as f32) / (seq.len().max(1) as f32)
    };
    // Return-trip signal: the reversed candidate pair appears as the most
    // recent long-term booking.
    let last_lt = group
        .lt_origins
        .last()
        .copied()
        .zip(group.lt_dests.last().copied());
    let is_return = match last_lt {
        Some((lo, ld)) => (ld == o && lo == d) as u32 as f32,
        None => 0.0,
    };
    let pair_in_history = group
        .lt_origins
        .iter()
        .zip(&group.lt_dests)
        .any(|(&ho, &hd)| ho == o && hd == d) as u32 as f32;

    let mut f = Vec::with_capacity(NUM_FEATURES);
    // Popularity priors (2).
    f.push(meta.pop_origin[o.index()]);
    f.push(meta.pop_dest[d.index()]);
    // Temporal statistics x_st (2 × XST_DIM).
    f.extend_from_slice(&cand.xst_o);
    f.extend_from_slice(&cand.xst_d);
    // History matches (5).
    f.push((o == group.current_city) as u32 as f32);
    f.push(count(&group.lt_origins, o));
    f.push(count(&group.st_origins, o));
    f.push(count(&group.lt_dests, d));
    f.push(count(&group.st_dests, d));
    // Unity signals (2).
    f.push(is_return);
    f.push(pair_in_history);
    // Spatial (2).
    f.push(meta.distance(group.current_city, o));
    f.push(meta.distance(o, d));
    // History volume (1).
    f.push((group.lt_dests.len() as f32).ln_1p());
    debug_assert_eq!(f.len(), NUM_FEATURES);
    f
}

#[cfg(test)]
mod tests {
    use super::*;
    use od_hsg::{CityId, GeoPoint, UserId};

    fn meta() -> CityMeta {
        let coords: Vec<GeoPoint> = (0..5)
            .map(|i| GeoPoint {
                lon: i as f64,
                lat: 0.0,
            })
            .collect();
        CityMeta::from_groups(coords, &[])
    }

    fn group() -> GroupInput {
        GroupInput {
            user: UserId(0),
            day: 50,
            current_city: CityId(1),
            lt_origins: vec![CityId(0), CityId(1)],
            lt_dests: vec![CityId(2), CityId(3)],
            lt_days: vec![10, 30],
            st_origins: vec![CityId(1)],
            st_dests: vec![CityId(3)],
            st_days: vec![48],
            candidates: vec![],
        }
    }

    fn cand(o: u32, d: u32) -> CandidateInput {
        CandidateInput {
            origin: CityId(o),
            dest: CityId(d),
            xst_o: {
                let mut x = [0.0; odnet_core::XST_DIM];
                x[..4].copy_from_slice(&[0.1, 0.2, 0.3, 0.4]);
                x
            },
            xst_d: {
                let mut x = [0.0; odnet_core::XST_DIM];
                x[..4].copy_from_slice(&[0.5, 0.6, 0.7, 0.8]);
                x
            },
            label_o: 0.0,
            label_d: 0.0,
        }
    }

    #[test]
    fn feature_vector_has_declared_length() {
        let f = extract(&group(), &cand(1, 3), &meta());
        assert_eq!(f.len(), NUM_FEATURES);
        assert!(f.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn return_trip_flag_fires_on_reversed_last_booking() {
        // Last booking was 1 → 3; the return candidate is 3 → 1.
        let f = extract(&group(), &cand(3, 1), &meta());
        let is_return = f[2 + 2 * odnet_core::XST_DIM + 5];
        assert_eq!(is_return, 1.0);
        let f2 = extract(&group(), &cand(1, 3), &meta());
        assert_eq!(f2[2 + 2 * odnet_core::XST_DIM + 5], 0.0);
    }

    #[test]
    fn pair_in_history_flag() {
        // (1, 3) is the second historical booking.
        let f = extract(&group(), &cand(1, 3), &meta());
        assert_eq!(f[2 + 2 * odnet_core::XST_DIM + 6], 1.0);
        let f2 = extract(&group(), &cand(0, 4), &meta());
        assert_eq!(f2[2 + 2 * odnet_core::XST_DIM + 6], 0.0);
    }

    #[test]
    fn current_city_and_counts() {
        let base = 2 + 2 * odnet_core::XST_DIM;
        let f = extract(&group(), &cand(1, 3), &meta());
        assert_eq!(f[base], 1.0, "origin == current city");
        assert_eq!(f[base + 1], 0.5, "origin appears once in 2 lt origins");
        assert_eq!(f[base + 3], 0.5, "dest appears once in 2 lt dests");
        assert_eq!(f[base + 4], 1.0, "dest appears in all st dests");
    }

    #[test]
    fn xst_features_pass_through() {
        let f = extract(&group(), &cand(0, 4), &meta());
        assert_eq!(&f[2..6], &[0.1, 0.2, 0.3, 0.4]);
        let d0 = 2 + odnet_core::XST_DIM;
        assert_eq!(&f[d0..d0 + 4], &[0.5, 0.6, 0.7, 0.8]);
    }

    #[test]
    fn empty_history_is_safe() {
        let mut g = group();
        g.lt_origins.clear();
        g.lt_dests.clear();
        g.st_origins.clear();
        g.st_dests.clear();
        let f = extract(&g, &cand(2, 3), &meta());
        assert_eq!(f.len(), NUM_FEATURES);
        assert!(f.iter().all(|v| v.is_finite()));
        assert_eq!(f[2 + 2 * odnet_core::XST_DIM + 5], 0.0);
    }
}
