//! Histogram binning for fast GBDT split finding.
//!
//! Features are quantized once per booster into at most [`MAX_BINS`]
//! quantile bins; trees then find splits by accumulating gradient/hessian
//! histograms per node — O(n·features) per node instead of
//! O(features·n log n). This is the standard production design
//! (LightGBM-style) and is what makes GBDT the *fastest* trainer in the
//! paper's Table V.

/// Maximum number of bins per feature (fits in a `u8` index).
pub const MAX_BINS: usize = 32;

/// A feature matrix quantized to per-feature quantile bins.
#[derive(Clone, Debug)]
pub struct BinnedDataset {
    /// Row-major bin indices, `n × num_features`.
    bins: Vec<u8>,
    /// Per feature: upper edge of each bin except the last (splitting at
    /// bin `b` means `raw value <= edges[f][b]` goes left).
    edges: Vec<Vec<f32>>,
    num_features: usize,
    num_rows: usize,
}

impl BinnedDataset {
    /// Quantize row-major raw features.
    pub fn build(x: &[Vec<f32>]) -> BinnedDataset {
        assert!(!x.is_empty(), "cannot bin an empty dataset");
        let num_rows = x.len();
        let num_features = x[0].len();
        let mut edges = Vec::with_capacity(num_features);
        for f in 0..num_features {
            let mut values: Vec<f32> = x.iter().map(|row| row[f]).collect();
            values.sort_by(|a, b| a.partial_cmp(b).expect("no NaN features"));
            values.dedup();
            let feature_edges = if values.len() <= MAX_BINS {
                // One bin per distinct value; edges between consecutive values.
                values
                    .windows(2)
                    .map(|w| (w[0] + w[1]) / 2.0)
                    .collect::<Vec<f32>>()
            } else {
                // Quantile edges.
                let mut e = Vec::with_capacity(MAX_BINS - 1);
                for b in 1..MAX_BINS {
                    let idx = b * (values.len() - 1) / MAX_BINS;
                    let edge = values[idx];
                    if e.last() != Some(&edge) {
                        e.push(edge);
                    }
                }
                e
            };
            edges.push(feature_edges);
        }
        let mut bins = vec![0u8; num_rows * num_features];
        for (r, row) in x.iter().enumerate() {
            for f in 0..num_features {
                bins[r * num_features + f] = bin_of(&edges[f], row[f]);
            }
        }
        BinnedDataset {
            bins,
            edges,
            num_features,
            num_rows,
        }
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.num_rows
    }

    /// Number of features.
    pub fn num_features(&self) -> usize {
        self.num_features
    }

    /// Bin index of `(row, feature)`.
    pub fn bin(&self, row: usize, feature: usize) -> u8 {
        self.bins[row * self.num_features + feature]
    }

    /// Number of bins a feature uses (edges + 1).
    pub fn bins_of(&self, feature: usize) -> usize {
        self.edges[feature].len() + 1
    }

    /// The raw-space threshold of splitting feature `f` after bin `b`
    /// (rows with `bin <= b` go left ⇔ `raw <= edges[f][b]`).
    pub fn threshold(&self, feature: usize, bin: usize) -> f32 {
        self.edges[feature][bin]
    }
}

/// Bin index of a raw value: the number of edges ≤ … (first bin whose edge
/// exceeds the value).
fn bin_of(edges: &[f32], value: f32) -> u8 {
    edges.partition_point(|&e| value > e) as u8
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn few_distinct_values_get_exact_bins() {
        let x = vec![vec![0.0], vec![1.0], vec![1.0], vec![2.0]];
        let b = BinnedDataset::build(&x);
        assert_eq!(b.bins_of(0), 3);
        assert_eq!(b.bin(0, 0), 0);
        assert_eq!(b.bin(1, 0), 1);
        assert_eq!(b.bin(2, 0), 1);
        assert_eq!(b.bin(3, 0), 2);
        // Threshold after bin 0 separates 0.0 from 1.0.
        assert!(b.threshold(0, 0) > 0.0 && b.threshold(0, 0) < 1.0);
    }

    #[test]
    fn many_values_are_quantile_capped() {
        let x: Vec<Vec<f32>> = (0..1000).map(|i| vec![i as f32]).collect();
        let b = BinnedDataset::build(&x);
        assert!(b.bins_of(0) <= MAX_BINS);
        assert!(b.bins_of(0) >= MAX_BINS / 2);
        // Bins are monotone in the raw value.
        for r in 1..1000 {
            assert!(b.bin(r, 0) >= b.bin(r - 1, 0));
        }
    }

    #[test]
    fn binning_preserves_order_consistency() {
        let x = vec![vec![5.0, -1.0], vec![3.0, 4.0], vec![9.0, 0.0]];
        let b = BinnedDataset::build(&x);
        assert_eq!(b.num_rows(), 3);
        assert_eq!(b.num_features(), 2);
        // raw order 3 < 5 < 9 must hold in bins.
        assert!(b.bin(1, 0) < b.bin(0, 0));
        assert!(b.bin(0, 0) < b.bin(2, 0));
    }

    #[test]
    fn constant_feature_has_single_bin() {
        let x = vec![vec![7.0]; 10];
        let b = BinnedDataset::build(&x);
        assert_eq!(b.bins_of(0), 1);
        assert!((0..10).all(|r| b.bin(r, 0) == 0));
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn rejects_empty() {
        BinnedDataset::build(&[]);
    }
}
