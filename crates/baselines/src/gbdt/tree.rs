//! Regression trees for gradient boosting: histogram-based greedy splits
//! (gradient/hessian accumulated per quantile bin) with Newton leaf values.
//! Thresholds are stored in raw feature space, so prediction needs no
//! binning.

use super::binned::BinnedDataset;

/// One fitted regression tree (array-encoded binary tree).
#[derive(Clone, Debug)]
pub struct RegressionTree {
    nodes: Vec<Node>,
}

#[derive(Clone, Debug)]
enum Node {
    Split {
        feature: usize,
        threshold: f32,
        /// Index of the left child subtree's root.
        left: usize,
        /// Index of the right child subtree's root (the left subtree may
        /// span many nodes, so this cannot be derived from `left`).
        right: usize,
    },
    Leaf {
        value: f32,
    },
}

/// Training options for one tree.
#[derive(Clone, Copy, Debug)]
pub struct TreeParams {
    /// Maximum depth (root = depth 0).
    pub max_depth: usize,
    /// Minimum samples required to attempt a split.
    pub min_split: usize,
    /// L2 regularization on leaf values (λ in the Newton step).
    pub lambda: f32,
}

impl Default for TreeParams {
    fn default() -> Self {
        TreeParams {
            max_depth: 4,
            min_split: 20,
            lambda: 1.0,
        }
    }
}

impl RegressionTree {
    /// Convenience: bin `x` and fit (tests and one-off fits). Boosters bin
    /// once and call [`RegressionTree::fit_binned`] per round instead.
    pub fn fit(x: &[Vec<f32>], grad: &[f32], hess: &[f32], params: TreeParams) -> RegressionTree {
        let binned = BinnedDataset::build(x);
        RegressionTree::fit_binned(&binned, grad, hess, params)
    }

    /// Fit a tree on pre-binned features, following the XGBoost-style
    /// objective: split gain maximizes
    /// `GL²/(HL+λ) + GR²/(HR+λ) − G²/(H+λ)`, leaf value `−G/(H+λ)`.
    pub fn fit_binned(
        binned: &BinnedDataset,
        grad: &[f32],
        hess: &[f32],
        params: TreeParams,
    ) -> RegressionTree {
        assert_eq!(binned.num_rows(), grad.len());
        assert_eq!(binned.num_rows(), hess.len());
        let indices: Vec<usize> = (0..binned.num_rows()).collect();
        let mut nodes = Vec::new();
        build(binned, grad, hess, &indices, 0, params, &mut nodes);
        RegressionTree { nodes }
    }

    /// Predict one sample.
    pub fn predict(&self, features: &[f32]) -> f32 {
        let mut i = 0;
        loop {
            match &self.nodes[i] {
                Node::Leaf { value } => return *value,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    i = if features[*feature] <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }

    /// Number of nodes (diagnostics).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tree is a single leaf.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() <= 1
    }
}

/// Recursively build the tree, returning the index of the created node.
fn build(
    binned: &BinnedDataset,
    grad: &[f32],
    hess: &[f32],
    indices: &[usize],
    depth: usize,
    params: TreeParams,
    nodes: &mut Vec<Node>,
) -> usize {
    let g_sum: f64 = indices.iter().map(|&i| grad[i] as f64).sum();
    let h_sum: f64 = indices.iter().map(|&i| hess[i] as f64).sum();
    let leaf_value = (-g_sum / (h_sum + params.lambda as f64)) as f32;

    let make_leaf = |nodes: &mut Vec<Node>| {
        nodes.push(Node::Leaf { value: leaf_value });
        nodes.len() - 1
    };
    if depth >= params.max_depth || indices.len() < params.min_split {
        return make_leaf(nodes);
    }
    let Some((feature, split_bin)) = best_split(binned, grad, hess, indices, g_sum, h_sum, params)
    else {
        return make_leaf(nodes);
    };
    let (left_idx, right_idx): (Vec<usize>, Vec<usize>) = indices
        .iter()
        .partition(|&&i| binned.bin(i, feature) as usize <= split_bin);
    if left_idx.is_empty() || right_idx.is_empty() {
        return make_leaf(nodes);
    }
    let threshold = binned.threshold(feature, split_bin);
    // Reserve this node's slot, then build both child subtrees and link
    // their roots explicitly.
    let slot = nodes.len();
    nodes.push(Node::Leaf { value: 0.0 }); // placeholder
    let left = build(binned, grad, hess, &left_idx, depth + 1, params, nodes);
    let right = build(binned, grad, hess, &right_idx, depth + 1, params, nodes);
    nodes[slot] = Node::Split {
        feature,
        threshold,
        left,
        right,
    };
    slot
}

/// Histogram greedy split search: accumulate per-bin gradient/hessian
/// totals, then scan bin boundaries. Returns the best `(feature, bin)` or
/// `None` when no split improves on the parent.
fn best_split(
    binned: &BinnedDataset,
    grad: &[f32],
    hess: &[f32],
    indices: &[usize],
    g_total: f64,
    h_total: f64,
    params: TreeParams,
) -> Option<(usize, usize)> {
    let lambda = params.lambda as f64;
    let parent_score = g_total * g_total / (h_total + lambda);
    let mut best: Option<(f64, usize, usize)> = None;
    let mut g_hist = [0.0f64; super::binned::MAX_BINS];
    let mut h_hist = [0.0f64; super::binned::MAX_BINS];
    for f in 0..binned.num_features() {
        let num_bins = binned.bins_of(f);
        if num_bins < 2 {
            continue;
        }
        g_hist[..num_bins].fill(0.0);
        h_hist[..num_bins].fill(0.0);
        for &i in indices {
            let b = binned.bin(i, f) as usize;
            g_hist[b] += grad[i] as f64;
            h_hist[b] += hess[i] as f64;
        }
        let mut g_left = 0.0f64;
        let mut h_left = 0.0f64;
        // Splitting after the last bin sends everything left — skip it.
        for b in 0..num_bins - 1 {
            g_left += g_hist[b];
            h_left += h_hist[b];
            if h_left == 0.0 {
                continue;
            }
            let g_right = g_total - g_left;
            let h_right = h_total - h_left;
            if h_right == 0.0 {
                break;
            }
            let gain = g_left * g_left / (h_left + lambda) + g_right * g_right / (h_right + lambda)
                - parent_score;
            if gain > 1e-9 && best.is_none_or(|(bg, _, _)| gain > bg) {
                best = Some((gain, f, b));
            }
        }
    }
    best.map(|(_, f, b)| (f, b))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// y = 1 when x0 > 0.5, else −1; hess = 1 → leaf values track targets.
    fn step_data(n: usize) -> (Vec<Vec<f32>>, Vec<f32>, Vec<f32>) {
        let mut x = Vec::new();
        let mut grad = Vec::new();
        for i in 0..n {
            let v = i as f32 / n as f32;
            x.push(vec![v, 0.0]);
            // grad = −residual in the boosting convention: target +1/−1.
            grad.push(if v > 0.5 { -1.0 } else { 1.0 });
        }
        let hess = vec![1.0; n];
        (x, grad, hess)
    }

    #[test]
    fn learns_a_step_function() {
        let (x, g, h) = step_data(100);
        let tree = RegressionTree::fit(
            &x,
            &g,
            &h,
            TreeParams {
                max_depth: 2,
                min_split: 4,
                lambda: 0.0,
            },
        );
        assert!(tree.predict(&[0.9, 0.0]) > 0.9);
        assert!(tree.predict(&[0.1, 0.0]) < -0.9);
    }

    #[test]
    fn depth_zero_is_single_leaf_with_newton_value() {
        let (x, g, h) = step_data(10);
        let tree = RegressionTree::fit(
            &x,
            &g,
            &h,
            TreeParams {
                max_depth: 0,
                min_split: 2,
                lambda: 0.0,
            },
        );
        assert!(tree.is_empty());
        // Leaf = −ΣG/ΣH. 10 points: 5 at +1 (v≤0.5 is i/n≤0.5 → i ≤ 5 → 6
        // points +1, 4 points −1) → −(6−4)/10 = −0.2.
        assert!((tree.predict(&[0.0, 0.0]) + 0.2).abs() < 1e-6);
    }

    #[test]
    fn constant_features_yield_leaf() {
        let x = vec![vec![1.0, 1.0]; 30];
        let g = vec![0.5; 30];
        let h = vec![1.0; 30];
        let tree = RegressionTree::fit(&x, &g, &h, TreeParams::default());
        assert!(tree.is_empty(), "no split possible on constant features");
    }

    #[test]
    fn regularization_shrinks_leaves() {
        let (x, g, h) = step_data(40);
        let loose = RegressionTree::fit(
            &x,
            &g,
            &h,
            TreeParams {
                max_depth: 1,
                min_split: 2,
                lambda: 0.0,
            },
        );
        let tight = RegressionTree::fit(
            &x,
            &g,
            &h,
            TreeParams {
                max_depth: 1,
                min_split: 2,
                lambda: 10.0,
            },
        );
        assert!(tight.predict(&[0.9, 0.0]).abs() < loose.predict(&[0.9, 0.0]).abs());
    }

    #[test]
    fn respects_min_split() {
        let (x, g, h) = step_data(10);
        let tree = RegressionTree::fit(
            &x,
            &g,
            &h,
            TreeParams {
                max_depth: 5,
                min_split: 100,
                lambda: 0.0,
            },
        );
        assert!(tree.is_empty());
    }

    #[test]
    fn splits_on_the_informative_feature() {
        // Feature 1 is noise; the tree must pick feature 0.
        let mut x = Vec::new();
        let mut g = Vec::new();
        for i in 0..60 {
            x.push(vec![(i % 2) as f32, (i % 7) as f32]);
            g.push(if i % 2 == 0 { 1.0 } else { -1.0 });
        }
        let h = vec![1.0; 60];
        let tree = RegressionTree::fit(
            &x,
            &g,
            &h,
            TreeParams {
                max_depth: 1,
                min_split: 2,
                lambda: 0.0,
            },
        );
        assert!(tree.predict(&[0.0, 3.0]) < -0.9);
        assert!(tree.predict(&[1.0, 3.0]) > 0.9);
    }
}
