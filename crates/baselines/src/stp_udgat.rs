//! STP-UDGAT baseline (paper §V-A.3, Lim et al. CIKM'20): explore-exploit
//! next-POI recommendation over *homogeneous* Spatial, Temporal and
//! Preference POI-POI graphs with graph attention networks.
//!
//! Reproduced structure: three city-city graphs built from training data —
//! **S** (k-nearest by distance), **T** (observed transitions), **P**
//! (co-visitation by the same user) — each carrying one GAT layer; a city's
//! representation is its embedding plus the mean of the three attended
//! neighborhoods. This achieves the destination *exploration* the paper
//! credits STP-UDGAT for, but — unlike ODNET's HSG — the graphs are
//! homogeneous (city-city only) and there is no joint O&D learning, which
//! is exactly the gap Tables III/IV measure.

use crate::common::{single_task_group_loss, BaselineConfig, CityMeta, SideTables};
use od_hsg::CityId;
use od_tensor::nn::{Activation, BilinearAttention, Linear, Mlp};
use od_tensor::{init, stable_sigmoid, Graph, ParamId, ParamStore, Shape, Tensor, Value};
use odnet_core::{GroupInput, OdScorer, TrainHyper, TrainableModel};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;

/// The three homogeneous graph flavours.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GraphKind {
    /// k-nearest neighbors by distance.
    Spatial,
    /// Observed consecutive transitions.
    Temporal,
    /// Co-visited by the same user.
    Preference,
}

/// One homogeneous city-city adjacency (neighbor lists capped and sorted).
#[derive(Clone, Debug)]
pub struct CityGraph {
    kind: GraphKind,
    neighbors: Vec<Vec<u32>>,
}

impl CityGraph {
    /// Build the spatial graph: each city's `k` nearest cities.
    pub fn spatial(meta: &CityMeta, k: usize) -> Self {
        let n = meta.len();
        let mut neighbors = Vec::with_capacity(n);
        for i in 0..n {
            let mut order: Vec<u32> = (0..n as u32).filter(|&j| j as usize != i).collect();
            order.sort_by(|&a, &b| {
                meta.distance(CityId(i as u32), CityId(a))
                    .partial_cmp(&meta.distance(CityId(i as u32), CityId(b)))
                    .expect("finite distances")
            });
            order.truncate(k);
            order.sort_unstable();
            neighbors.push(order);
        }
        CityGraph {
            kind: GraphKind::Spatial,
            neighbors,
        }
    }

    /// Build the temporal graph from consecutive pairs in history
    /// sequences, keeping each city's `k` most frequent successors.
    pub fn temporal(num_cities: usize, sequences: &[&[CityId]], k: usize) -> Self {
        let mut counts: Vec<HashMap<u32, u32>> = vec![HashMap::new(); num_cities];
        for seq in sequences {
            for w in seq.windows(2) {
                if w[0] != w[1] {
                    *counts[w[0].index()].entry(w[1].0).or_insert(0) += 1;
                }
            }
        }
        CityGraph {
            kind: GraphKind::Temporal,
            neighbors: top_k(counts, k),
        }
    }

    /// Build the preference graph from co-visitation: cities appearing in
    /// the same user's history, keeping the `k` most frequent co-visits.
    pub fn preference(num_cities: usize, user_cities: &[Vec<CityId>], k: usize) -> Self {
        let mut counts: Vec<HashMap<u32, u32>> = vec![HashMap::new(); num_cities];
        for cities in user_cities {
            let mut distinct: Vec<u32> = cities.iter().map(|c| c.0).collect();
            distinct.sort_unstable();
            distinct.dedup();
            for &a in &distinct {
                for &b in &distinct {
                    if a != b {
                        *counts[a as usize].entry(b).or_insert(0) += 1;
                    }
                }
            }
        }
        CityGraph {
            kind: GraphKind::Preference,
            neighbors: top_k(counts, k),
        }
    }

    /// The graph flavour.
    pub fn kind(&self) -> GraphKind {
        self.kind
    }

    /// Neighbor list of one city.
    pub fn neighbors(&self, c: CityId) -> &[u32] {
        &self.neighbors[c.index()]
    }
}

fn top_k(counts: Vec<HashMap<u32, u32>>, k: usize) -> Vec<Vec<u32>> {
    counts
        .into_iter()
        .map(|m| {
            let mut pairs: Vec<(u32, u32)> = m.into_iter().collect();
            pairs.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
            pairs.truncate(k);
            let mut ids: Vec<u32> = pairs.into_iter().map(|(c, _)| c).collect();
            ids.sort_unstable();
            ids
        })
        .collect()
}

/// One GAT layer: `h'_i = σ(Σ_j α_ij · W e_j)` with
/// `α_ij = softmax_j(LeakyReLU(a₁·We_i + a₂·We_j))`.
struct GatLayer {
    w: Linear,
    a_self: ParamId,
    a_nbr: ParamId,
}

impl GatLayer {
    fn new(store: &mut ParamStore, name: &str, dim: usize, rng: &mut StdRng) -> Self {
        GatLayer {
            w: Linear::new(store, &format!("{name}.w"), dim, dim, false, rng),
            a_self: store.register(
                format!("{name}.a_self"),
                init::paper_default(Shape::Matrix(dim, 1), rng),
            ),
            a_nbr: store.register(
                format!("{name}.a_nbr"),
                init::paper_default(Shape::Matrix(dim, 1), rng),
            ),
        }
    }

    /// Attend `city` over its graph neighbors. `lookup` resolves raw
    /// embeddings. Returns a vector of the layer width.
    fn forward(
        &self,
        g: &mut Graph,
        store: &ParamStore,
        graph: &CityGraph,
        city: CityId,
        lookup: &mut dyn FnMut(&mut Graph, CityId) -> Value,
        dim: usize,
    ) -> Value {
        let nbr_ids = graph.neighbors(city);
        let e_self = lookup(g, city);
        let we_self = self.w.forward(g, store, e_self);
        if nbr_ids.is_empty() {
            let act = g.relu(we_self);
            return g.reshape(act, Shape::Vector(dim));
        }
        let nbr_rows: Vec<Value> = nbr_ids.iter().map(|&j| lookup(g, CityId(j))).collect();
        let nbrs = g.concat_rows(&nbr_rows); // m×d
        let w_nbrs = self.w.forward(g, store, nbrs); // m×d
        let a_self = g.param(store, self.a_self);
        let a_nbr = g.param(store, self.a_nbr);
        let s_self = g.matmul(we_self, a_self); // 1×1
        let s_nbrs = g.matmul(w_nbrs, a_nbr); // m×1
        let s_nbrs_t = g.transpose(s_nbrs); // 1×m
                                            // Broadcast the self score over the neighbor row differentiably:
                                            // (1×1) · (1×m row of ones) keeps the gradient path to a_self.
        let ones = g.input(Tensor::ones(Shape::Matrix(1, nbr_ids.len())));
        let self_row = g.matmul(s_self, ones); // 1×m
        let raw = g.add(s_nbrs_t, self_row);
        // LeakyReLU(x) = max(x, 0.2x) = relu(x) − 0.2·relu(−x).
        let pos = g.relu(raw);
        let neg_in = g.scale(raw, -1.0);
        let neg = g.relu(neg_in);
        let neg_scaled = g.scale(neg, -0.2);
        let leaky = g.add(pos, neg_scaled);
        let alpha = g.softmax_rows(leaky); // 1×m
        let pooled = g.matmul(alpha, w_nbrs); // 1×d
        let act = g.relu(pooled);
        g.reshape(act, Shape::Vector(dim))
    }
}

/// The assembled STP-UDGAT baseline.
pub struct StpUdgatBaseline {
    /// All trainable parameters.
    pub store: ParamStore,
    cfg: BaselineConfig,
    tables: SideTables,
    gat_s: GatLayer,
    gat_t: GatLayer,
    gat_p: GatLayer,
    graphs: [CityGraph; 3],
    user_attn: BilinearAttention,
    tower_o: Mlp,
    tower_d: Mlp,
}

impl StpUdgatBaseline {
    /// Build the baseline from training groups: the three STP graphs are
    /// derived from the groups' history sequences and the city metadata.
    pub fn new(
        cfg: BaselineConfig,
        num_users: usize,
        num_cities: usize,
        meta: &CityMeta,
        train_groups: &[GroupInput],
    ) -> Self {
        const GRAPH_K: usize = 5;
        // Temporal: long-term destination transition sequences.
        let sequences: Vec<&[CityId]> =
            train_groups.iter().map(|g| g.lt_dests.as_slice()).collect();
        let temporal = CityGraph::temporal(num_cities, &sequences, GRAPH_K);
        // Preference: per user, union of visited cities.
        let mut per_user: HashMap<u32, Vec<CityId>> = HashMap::new();
        for g in train_groups {
            let entry = per_user.entry(g.user.0).or_default();
            entry.extend_from_slice(&g.lt_dests);
            entry.extend_from_slice(&g.lt_origins);
        }
        let user_cities: Vec<Vec<CityId>> = per_user.into_values().collect();
        let preference = CityGraph::preference(num_cities, &user_cities, GRAPH_K);
        let spatial = CityGraph::spatial(meta, GRAPH_K);

        let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x0DCA7);
        let mut store = ParamStore::new();
        let d = cfg.embed_dim;
        let tables = SideTables::new(&mut store, "udgat", num_users, num_cities, d, &mut rng);
        let gat_s = GatLayer::new(&mut store, "udgat.gat_s", d, &mut rng);
        let gat_t = GatLayer::new(&mut store, "udgat.gat_t", d, &mut rng);
        let gat_p = GatLayer::new(&mut store, "udgat.gat_p", d, &mut rng);
        let user_attn = BilinearAttention::new(&mut store, "udgat.user_attn", d, &mut rng);
        let q_dim = 4 * d + odnet_core::XST_DIM;
        let tower = |store: &mut ParamStore, name: &str, rng: &mut StdRng| {
            Mlp::new(
                store,
                name,
                &[q_dim, cfg.tower_hidden, 1],
                Activation::Relu,
                Activation::None,
                rng,
            )
        };
        let tower_o = tower(&mut store, "udgat.tower_o", &mut rng);
        let tower_d = tower(&mut store, "udgat.tower_d", &mut rng);
        StpUdgatBaseline {
            store,
            cfg,
            tables,
            gat_s,
            gat_t,
            gat_p,
            graphs: [spatial, temporal, preference],
            user_attn,
            tower_o,
            tower_d,
        }
    }

    /// Forward one group to per-candidate logits.
    pub fn forward_group(&self, g: &mut Graph, group: &GroupInput) -> (Vec<Value>, Vec<Value>) {
        let store = &self.store;
        let d = self.cfg.embed_dim;
        let src = self.tables.begin(g, store);
        let mut gat = GatSource {
            model: self,
            src,
            raw: HashMap::new(),
            enriched: HashMap::new(),
        };
        let e_user = gat.src.user(g, group.user);
        let e_lbs = gat.enriched(g, group.current_city);
        // Per-side user preference summary: the user embedding queries the
        // GAT-enriched history (the "user-dimensional" attention).
        let summarize = |g: &mut Graph, gat: &mut GatSource<'_>, ids: &[CityId]| -> Value {
            if ids.is_empty() {
                return g.input(Tensor::zeros(Shape::Vector(d)));
            }
            let rows: Vec<Value> = ids.iter().map(|&c| gat.enriched(g, c)).collect();
            let matrix = g.concat_rows(&rows);
            let pooled = self.user_attn.forward(g, store, e_user, matrix);
            g.reshape(pooled, Shape::Vector(d))
        };
        let mut all_o: Vec<CityId> = group.lt_origins.clone();
        all_o.extend_from_slice(&group.st_origins);
        let mut all_d: Vec<CityId> = group.lt_dests.clone();
        all_d.extend_from_slice(&group.st_dests);
        let sum_o = summarize(g, &mut gat, &all_o);
        let sum_d = summarize(g, &mut gat, &all_d);

        let mut logits_o = Vec::with_capacity(group.candidates.len());
        let mut logits_d = Vec::with_capacity(group.candidates.len());
        for cand in &group.candidates {
            let e_co = gat.enriched(g, cand.origin);
            let e_cd = gat.enriched(g, cand.dest);
            let xo = g.input(Tensor::vector(&cand.xst_o));
            let xd = g.input(Tensor::vector(&cand.xst_d));
            let q_o = g.concat_cols(&[sum_o, e_user, e_lbs, e_co, xo]);
            let q_d = g.concat_cols(&[sum_d, e_user, e_lbs, e_cd, xd]);
            logits_o.push(self.tower_o.forward(g, store, q_o));
            logits_d.push(self.tower_d.forward(g, store, q_d));
        }
        (logits_o, logits_d)
    }
}

/// Per-graph-build memoized GAT embedding source.
struct GatSource<'a> {
    model: &'a StpUdgatBaseline,
    src: crate::common::PlainSource,
    raw: HashMap<u32, Value>,
    enriched: HashMap<u32, Value>,
}

impl GatSource<'_> {
    fn raw(&mut self, g: &mut Graph, c: CityId) -> Value {
        if let Some(&v) = self.raw.get(&c.0) {
            return v;
        }
        let v = self.src.city(g, c);
        self.raw.insert(c.0, v);
        v
    }

    /// Raw embedding + mean of the three attended graph neighborhoods
    /// (residual connection).
    fn enriched(&mut self, g: &mut Graph, c: CityId) -> Value {
        if let Some(&v) = self.enriched.get(&c.0) {
            return v;
        }
        let d = self.model.cfg.embed_dim;
        let store = &self.model.store;
        // Resolve raw neighbor embeddings first to keep borrows simple.
        let mut lookup_cache: HashMap<u32, Value> = HashMap::new();
        let mut need: Vec<CityId> = vec![c];
        for graph in &self.model.graphs {
            need.extend(graph.neighbors(c).iter().map(|&j| CityId(j)));
        }
        for city in need {
            let v = self.raw(g, city);
            lookup_cache.insert(city.0, v);
        }
        let mut lookup =
            |_g: &mut Graph, cc: CityId| -> Value { *lookup_cache.get(&cc.0).expect("prefetched") };
        let hs = self
            .model
            .gat_s
            .forward(g, store, &self.model.graphs[0], c, &mut lookup, d);
        let ht = self
            .model
            .gat_t
            .forward(g, store, &self.model.graphs[1], c, &mut lookup, d);
        let hp = self
            .model
            .gat_p
            .forward(g, store, &self.model.graphs[2], c, &mut lookup, d);
        let e_raw = *lookup_cache.get(&c.0).expect("self prefetched");
        let sum = g.add(hs, ht);
        let sum = g.add(sum, hp);
        let mean = g.scale(sum, 1.0 / 3.0);
        let v = g.add(mean, e_raw);
        self.enriched.insert(c.0, v);
        v
    }
}

impl TrainableModel for StpUdgatBaseline {
    fn store(&self) -> &ParamStore {
        &self.store
    }

    fn store_mut(&mut self) -> &mut ParamStore {
        &mut self.store
    }

    fn group_loss(&self, g: &mut Graph, group: &GroupInput) -> Value {
        let (lo, ld) = self.forward_group(g, group);
        single_task_group_loss(g, &lo, &ld, group)
    }

    fn hyper(&self) -> TrainHyper {
        self.cfg.hyper()
    }
}

impl OdScorer for StpUdgatBaseline {
    fn score_group(&self, group: &GroupInput) -> Vec<(f32, f32)> {
        let mut g = Graph::new();
        let (lo, ld) = self.forward_group(&mut g, group);
        lo.iter()
            .zip(&ld)
            .map(|(&a, &b)| {
                (
                    stable_sigmoid(g.value(a).as_slice()[0]),
                    stable_sigmoid(g.value(b).as_slice()[0]),
                )
            })
            .collect()
    }

    fn name(&self) -> String {
        "STP-UDGAT".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seqnet::test_support::{assert_learns, learnable_groups};
    use od_hsg::GeoPoint;

    fn meta(n: usize) -> CityMeta {
        let coords = (0..n)
            .map(|i| GeoPoint {
                lon: (i % 4) as f64,
                lat: (i / 4) as f64,
            })
            .collect();
        CityMeta::from_groups(coords, &[])
    }

    #[test]
    fn spatial_graph_is_knn() {
        let m = meta(9);
        let g = CityGraph::spatial(&m, 3);
        assert_eq!(g.kind(), GraphKind::Spatial);
        for c in 0..9 {
            assert_eq!(g.neighbors(CityId(c)).len(), 3);
            assert!(!g.neighbors(CityId(c)).contains(&c));
        }
        // City 0 at (0,0): nearest are (1,0)=1, (0,1)=4, and (1,1)=5.
        assert_eq!(g.neighbors(CityId(0)), &[1, 4, 5]);
    }

    #[test]
    fn temporal_graph_counts_transitions() {
        let seq1 = [CityId(0), CityId(1), CityId(2)];
        let seq2 = [CityId(0), CityId(1)];
        let g = CityGraph::temporal(4, &[&seq1, &seq2], 2);
        assert_eq!(g.neighbors(CityId(0)), &[1]);
        assert_eq!(g.neighbors(CityId(1)), &[2]);
        assert!(g.neighbors(CityId(3)).is_empty());
    }

    #[test]
    fn preference_graph_links_covisits() {
        let users = vec![
            vec![CityId(0), CityId(1), CityId(2)],
            vec![CityId(1), CityId(2)],
        ];
        let g = CityGraph::preference(4, &users, 5);
        assert_eq!(g.neighbors(CityId(0)), &[1, 2]);
        assert_eq!(g.neighbors(CityId(1)), &[0, 2]);
        assert!(g.neighbors(CityId(3)).is_empty());
    }

    #[test]
    fn learns_a_repetition_pattern() {
        let train = learnable_groups(40, 8, 31);
        let mut model = StpUdgatBaseline::new(BaselineConfig::tiny(), 10, 8, &meta(8), &train);
        assert_learns(&mut model, 31);
    }

    #[test]
    fn scores_isolated_city_without_neighbors() {
        let train = learnable_groups(5, 8, 32);
        let model = StpUdgatBaseline::new(BaselineConfig::tiny(), 10, 8, &meta(8), &train);
        let group = &learnable_groups(1, 8, 33)[0];
        let scores = model.score_group(group);
        assert!(scores.iter().all(|(a, b)| a.is_finite() && b.is_finite()));
    }

    #[test]
    fn name_matches_table() {
        let train = learnable_groups(5, 8, 34);
        let model = StpUdgatBaseline::new(BaselineConfig::tiny(), 4, 8, &meta(8), &train);
        assert_eq!(model.name(), "STP-UDGAT");
    }
}
