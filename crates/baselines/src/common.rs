//! Infrastructure shared by the baselines: city metadata derived from
//! training groups, plain embedding sources, and the common configuration.

use od_hsg::{CityId, GeoPoint, UserId};
use od_tensor::nn::Embedding;
use od_tensor::{Graph, ParamStore, Shape, Value};
use odnet_core::{GroupInput, TrainHyper};
use rand::Rng;

/// Shared baseline hyper-parameters (widths follow the ODNET defaults so
/// capacity comparisons are fair; optimization follows the paper's §V-A.5).
#[derive(Clone, Debug)]
pub struct BaselineConfig {
    /// Embedding width.
    pub embed_dim: usize,
    /// Recurrent / encoder hidden width.
    pub hidden_dim: usize,
    /// Tower hidden width.
    pub tower_hidden: usize,
    /// Adam learning rate (paper: 0.01).
    pub learning_rate: f32,
    /// Training epochs (paper: 5).
    pub epochs: usize,
    /// Groups per mini-batch.
    pub batch_groups: usize,
    /// Data-parallel workers.
    pub workers: usize,
    /// Global gradient clip.
    pub grad_clip: f32,
    /// Initialization seed.
    pub seed: u64,
}

impl Default for BaselineConfig {
    fn default() -> Self {
        BaselineConfig {
            embed_dim: 16,
            hidden_dim: 32,
            tower_hidden: 32,
            learning_rate: 0.01,
            epochs: 5,
            batch_groups: 18,
            workers: std::thread::available_parallelism()
                .map(|n| n.get().min(8))
                .unwrap_or(1),
            grad_clip: 5.0,
            seed: 0xBA5E,
        }
    }
}

impl BaselineConfig {
    /// Miniature config for tests.
    pub fn tiny() -> Self {
        BaselineConfig {
            embed_dim: 8,
            hidden_dim: 8,
            tower_hidden: 8,
            epochs: 2,
            workers: 1,
            ..Self::default()
        }
    }

    /// The shared trainer hyper-parameters.
    pub fn hyper(&self) -> TrainHyper {
        TrainHyper {
            learning_rate: self.learning_rate,
            epochs: self.epochs,
            batch_groups: self.batch_groups,
            workers: self.workers,
            grad_clip: self.grad_clip,
            seed: self.seed,
        }
    }
}

/// Static city metadata every baseline may consult: coordinates (for
/// spatial gates/graphs) and train-set popularity per side.
#[derive(Clone, Debug)]
pub struct CityMeta {
    /// City coordinates.
    pub coords: Vec<GeoPoint>,
    /// Popularity as an origin, normalized to [0, 1].
    pub pop_origin: Vec<f32>,
    /// Popularity as a destination, normalized to [0, 1].
    pub pop_dest: Vec<f32>,
    /// Map scale (max pairwise distance), for normalizing distances.
    pub map_scale: f64,
}

impl CityMeta {
    /// Build from coordinates plus popularity counted over the *positive*
    /// candidates and histories of training groups.
    pub fn from_groups(coords: Vec<GeoPoint>, groups: &[GroupInput]) -> Self {
        let n = coords.len();
        let mut pop_origin = vec![0.0f32; n];
        let mut pop_dest = vec![0.0f32; n];
        for g in groups {
            for c in &g.candidates {
                if c.label_o > 0.5 {
                    pop_origin[c.origin.index()] += 1.0;
                }
                if c.label_d > 0.5 {
                    pop_dest[c.dest.index()] += 1.0;
                }
            }
            for &c in &g.lt_origins {
                pop_origin[c.index()] += 0.25;
            }
            for &c in &g.lt_dests {
                pop_dest[c.index()] += 0.25;
            }
        }
        normalize_max(&mut pop_origin);
        normalize_max(&mut pop_dest);
        let mut map_scale = 1e-9f64;
        for a in &coords {
            for b in &coords {
                map_scale = map_scale.max(a.l2(*b));
            }
        }
        CityMeta {
            coords,
            pop_origin,
            pop_dest,
            map_scale,
        }
    }

    /// Normalized distance between two cities in [0, 1].
    pub fn distance(&self, a: CityId, b: CityId) -> f32 {
        (self.coords[a.index()].l2(self.coords[b.index()]) / self.map_scale) as f32
    }

    /// Number of cities.
    pub fn len(&self) -> usize {
        self.coords.len()
    }

    /// Whether the metadata covers no cities.
    pub fn is_empty(&self) -> bool {
        self.coords.is_empty()
    }
}

fn normalize_max(v: &mut [f32]) {
    let max = v.iter().copied().fold(0.0f32, f32::max);
    if max > 0.0 {
        v.iter_mut().for_each(|x| *x /= max);
    }
}

/// Plain user/city embedding tables for one task side.
#[derive(Clone, Debug)]
pub struct SideTables {
    user: Embedding,
    city: Embedding,
}

impl SideTables {
    /// Register tables under `name`.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        num_users: usize,
        num_cities: usize,
        dim: usize,
        rng: &mut impl Rng,
    ) -> Self {
        SideTables {
            user: Embedding::new(store, &format!("{name}.users"), num_users, dim, rng),
            city: Embedding::new(store, &format!("{name}.cities"), num_cities, dim, rng),
        }
    }

    /// Snapshot both tables onto the graph once, returning a lookup source.
    pub fn begin(&self, g: &mut Graph, store: &ParamStore) -> PlainSource {
        PlainSource {
            users: g.param(store, self.user.table()),
            cities: g.param(store, self.city.table()),
            dim: self.user.dim(),
        }
    }
}

/// Per-graph snapshot of a [`SideTables`] with cheap row lookups.
pub struct PlainSource {
    users: Value,
    cities: Value,
    dim: usize,
}

impl PlainSource {
    /// Embedding width.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// One user embedding as a vector.
    pub fn user(&self, g: &mut Graph, u: UserId) -> Value {
        let row = g.gather_rows(self.users, &[u.index()]);
        g.reshape(row, Shape::Vector(self.dim))
    }

    /// One city embedding as a vector.
    pub fn city(&self, g: &mut Graph, c: CityId) -> Value {
        let row = g.gather_rows(self.cities, &[c.index()]);
        g.reshape(row, Shape::Vector(self.dim))
    }

    /// A city sequence stacked into `[t × d]` (`None` when empty).
    pub fn cities(&self, g: &mut Graph, ids: &[CityId]) -> Option<Value> {
        if ids.is_empty() {
            return None;
        }
        let idx: Vec<usize> = ids.iter().map(|c| c.index()).collect();
        Some(g.gather_rows(self.cities, &idx))
    }
}

/// Stack per-candidate `1×1` logits into a vector and attach the equal-
/// weight two-task BCE loss used by every single-task baseline.
pub fn single_task_group_loss(
    g: &mut Graph,
    logits_o: &[Value],
    logits_d: &[Value],
    group: &GroupInput,
) -> Value {
    let labels_o: Vec<f32> = group.candidates.iter().map(|c| c.label_o).collect();
    let labels_d: Vec<f32> = group.candidates.iter().map(|c| c.label_d).collect();
    let n = labels_o.len();
    let so = g.concat_rows(logits_o);
    let so = g.reshape(so, Shape::Vector(n));
    let sd = g.concat_rows(logits_d);
    let sd = g.reshape(sd, Shape::Vector(n));
    let lo = g.bce_with_logits(so, &od_tensor::Tensor::vector(&labels_o));
    let ld = g.bce_with_logits(sd, &od_tensor::Tensor::vector(&labels_d));
    let s = g.add(lo, ld);
    g.scale(s, 0.5)
}

#[cfg(test)]
mod tests {
    use super::*;
    use odnet_core::CandidateInput;

    fn group_with(positive: (u32, u32)) -> GroupInput {
        GroupInput {
            user: UserId(0),
            day: 1,
            current_city: CityId(0),
            lt_origins: vec![CityId(0)],
            lt_dests: vec![CityId(1)],
            lt_days: vec![0],
            st_origins: vec![],
            st_dests: vec![],
            st_days: vec![],
            candidates: vec![CandidateInput {
                origin: CityId(positive.0),
                dest: CityId(positive.1),
                xst_o: [0.0; odnet_core::XST_DIM],
                xst_d: [0.0; odnet_core::XST_DIM],
                label_o: 1.0,
                label_d: 1.0,
            }],
        }
    }

    fn coords(n: usize) -> Vec<GeoPoint> {
        (0..n)
            .map(|i| GeoPoint {
                lon: i as f64,
                lat: 0.0,
            })
            .collect()
    }

    #[test]
    fn city_meta_popularity_reflects_positives() {
        let groups = vec![group_with((2, 3)), group_with((2, 4)), group_with((1, 3))];
        let meta = CityMeta::from_groups(coords(5), &groups);
        assert_eq!(meta.len(), 5);
        // City 2 is the most popular origin (2 positives), normalized to 1.
        assert_eq!(meta.pop_origin[2], 1.0);
        assert!(meta.pop_origin[1] < 1.0 && meta.pop_origin[1] > 0.0);
        assert_eq!(meta.pop_dest[3], 1.0);
    }

    #[test]
    fn distances_are_normalized() {
        let meta = CityMeta::from_groups(coords(5), &[]);
        assert!((meta.distance(CityId(0), CityId(4)) - 1.0).abs() < 1e-6);
        assert_eq!(meta.distance(CityId(2), CityId(2)), 0.0);
        assert!((meta.distance(CityId(0), CityId(2)) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn plain_source_lookups() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut store = ParamStore::new();
        let tables = SideTables::new(&mut store, "side", 3, 4, 6, &mut StdRng::seed_from_u64(1));
        let mut g = Graph::new();
        let src = tables.begin(&mut g, &store);
        assert_eq!(src.dim(), 6);
        let u = src.user(&mut g, UserId(2));
        assert_eq!(g.value(u).shape(), Shape::Vector(6));
        let seq = src.cities(&mut g, &[CityId(0), CityId(3)]).unwrap();
        assert_eq!(g.value(seq).shape(), Shape::Matrix(2, 6));
        assert!(src.cities(&mut g, &[]).is_none());
    }

    #[test]
    fn shared_loss_is_finite_scalar() {
        let group = group_with((1, 2));
        let mut g = Graph::new();
        let l1 = g.input(od_tensor::Tensor::matrix(1, 1, &[0.3]));
        let l2 = g.input(od_tensor::Tensor::matrix(1, 1, &[-0.7]));
        let loss = single_task_group_loss(&mut g, &[l1], &[l2], &group);
        assert!(g.value(loss).item().is_finite());
        assert!(g.value(loss).item() > 0.0);
    }
}
