//! Corruption robustness of the `.odz` binary loader.
//!
//! A serving replica mmap-loads whatever artifact the deployment pipeline
//! hands it; a corrupt, truncated, or hand-edited file must surface as a
//! typed [`CheckpointError`] at load time — never a panic, and never
//! undefined behaviour from reading past a mapping. Every test here
//! byte-surgeon's a valid artifact (the header layout is specified in
//! DESIGN.md §12) and asserts both load paths refuse it.

use odnet_core::{CheckpointError, FrozenOdNet, OdNetModel, OdnetConfig, Variant};
use std::path::PathBuf;

/// FNV-1a (32-bit), mirrored from the spec so tests can re-seal headers
/// after deliberate tampering.
fn fnv1a(bytes: &[u8]) -> u32 {
    let mut h: u32 = 0x811c_9dc5;
    for &b in bytes {
        h ^= b as u32;
        h = h.wrapping_mul(0x0100_0193);
    }
    h
}

/// Recompute the header checksum (bytes 12..16 over the 64-byte header
/// with the field zeroed) after a test edited header fields.
fn reseal_header(bytes: &mut [u8]) {
    let mut h = [0u8; 64];
    h.copy_from_slice(&bytes[..64]);
    h[12..16].fill(0);
    let fnv = fnv1a(&h);
    bytes[12..16].copy_from_slice(&fnv.to_le_bytes());
}

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("odz_corruption_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir.join(name)
}

/// A small untrained artifact: universe sizes are all `freeze` needs.
fn tiny_artifact_bytes() -> &'static [u8] {
    use std::sync::OnceLock;
    static BYTES: OnceLock<Vec<u8>> = OnceLock::new();
    BYTES.get_or_init(|| {
        // ODNET−G: the graph-free variant, so no HSG is needed to freeze.
        let frozen = OdNetModel::new(Variant::OdnetG, OdnetConfig::tiny(), 30, 12, None).freeze();
        let path = scratch("pristine.odz");
        frozen.save_bin(&path).expect("save tiny artifact");
        let bytes = std::fs::read(&path).expect("read back");
        let _ = std::fs::remove_file(&path);
        bytes
    })
}

/// Write corrupted bytes and collect the error from both load paths.
fn load_both(name: &str, bytes: &[u8]) -> [Result<FrozenOdNet, CheckpointError>; 2] {
    let path = scratch(name);
    std::fs::write(&path, bytes).expect("write corrupted artifact");
    let out = [
        FrozenOdNet::load_bin(&path),
        FrozenOdNet::load_bin_mmap(&path),
    ];
    let _ = std::fs::remove_file(&path);
    out
}

#[test]
fn pristine_artifact_loads_on_both_paths() {
    for r in load_both("ok.odz", tiny_artifact_bytes()) {
        let frozen = r.expect("pristine artifact loads");
        assert_eq!(frozen.num_users(), 30);
        assert_eq!(frozen.num_cities(), 12);
    }
}

#[test]
fn bad_magic_is_rejected() {
    let mut bytes = tiny_artifact_bytes().to_vec();
    bytes[..4].copy_from_slice(b"JPEG");
    reseal_header(&mut bytes);
    for r in load_both("magic.odz", &bytes) {
        match r {
            Err(CheckpointError::Binary(what)) => assert!(what.contains("magic"), "{what}"),
            other => panic!("expected Binary(magic), got {other:?}"),
        }
    }
}

#[test]
fn unknown_format_version_reports_version() {
    let mut bytes = tiny_artifact_bytes().to_vec();
    bytes[4..8].copy_from_slice(&7u32.to_le_bytes());
    reseal_header(&mut bytes);
    for r in load_both("version.odz", &bytes) {
        match r {
            Err(CheckpointError::Version(7)) => {}
            other => panic!("expected Version(7), got {other:?}"),
        }
    }
}

#[test]
fn every_flipped_header_byte_is_detected() {
    let pristine = tiny_artifact_bytes();
    for i in 0..64 {
        let mut bytes = pristine.to_vec();
        bytes[i] ^= 0x20;
        // Deliberately NOT resealed: the header checksum (or an earlier
        // magic/version check) must catch the flip on both paths.
        for r in load_both("hdrflip.odz", &bytes) {
            assert!(r.is_err(), "flipped header byte {i} loaded successfully");
        }
    }
}

#[test]
fn truncated_files_are_rejected_at_every_length() {
    let pristine = tiny_artifact_bytes();
    // Below the header, mid-payload, and mid-meta truncations all fail
    // with a typed error (the meta block is the last thing in the file,
    // so any truncation cuts it off).
    for keep in [0, 1, 63, 64, 200, pristine.len() / 2, pristine.len() - 1] {
        for r in load_both("trunc.odz", &pristine[..keep]) {
            match r {
                Err(CheckpointError::Binary(_)) => {}
                other => panic!("{keep}-byte truncation: expected Binary, got {other:?}"),
            }
        }
    }
}

#[test]
fn payload_corruption_fails_the_audited_read() {
    let mut bytes = tiny_artifact_bytes().to_vec();
    // Flip a bit in the middle of the first table's payload. Exponent-bit
    // flips like this one keep the value finite, so only the checksum —
    // not the finiteness scan — can catch it.
    bytes[64 + 5] ^= 0x01;
    let path = scratch("payload.odz");
    std::fs::write(&path, &bytes).expect("write");
    match FrozenOdNet::load_bin(&path) {
        Err(CheckpointError::Binary(what)) => assert!(what.contains("checksum"), "{what}"),
        other => panic!("expected Binary(checksum), got {other:?}"),
    }
    // The zero-copy path skips payload audits by design (DESIGN.md §12):
    // it must still load and must not panic when the region is scored.
    FrozenOdNet::load_bin_mmap(&path).expect("mmap load validates geometry only");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn meta_corruption_is_caught_by_the_meta_checksum() {
    let pristine = tiny_artifact_bytes();
    let meta_offset = u64::from_le_bytes(pristine[40..48].try_into().unwrap()) as usize;
    let mut bytes = pristine.to_vec();
    // Flip one digit inside the meta JSON (e.g. a tower weight) without
    // touching structure: swap a '1' for a '2' somewhere after the
    // directory. Fall back to xor if the byte isn't a digit.
    let target = meta_offset + (bytes.len() - meta_offset) / 2;
    bytes[target] = if bytes[target] == b'1' {
        b'2'
    } else {
        bytes[target] ^ 0x01
    };
    for r in load_both("meta.odz", &bytes) {
        match r {
            // Either the checksum catches it (expected) or, if the flip
            // produced invalid UTF-8/JSON, the parse does — but it must
            // never load.
            Err(
                CheckpointError::Binary(_)
                | CheckpointError::Parse(_)
                | CheckpointError::Inconsistent(_),
            ) => {}
            other => panic!("expected a typed load error, got {other:?}"),
        }
    }
}

#[test]
fn misaligned_table_offset_is_rejected() {
    let pristine = tiny_artifact_bytes();
    let meta_offset = u64::from_le_bytes(pristine[40..48].try_into().unwrap()) as usize;
    let mut bytes = pristine.to_vec();
    // The first table sits at offset 64 directly after the header; its
    // directory entry reads "offset":64. Nudge it to the same-width,
    // misaligned 65 and re-seal the meta + header checksums so ONLY the
    // alignment check can object.
    let meta = std::str::from_utf8(&bytes[meta_offset..]).expect("meta is JSON");
    let at = meta
        .find("\"offset\":64")
        .expect("first table at offset 64");
    bytes[meta_offset + at + "\"offset\":6".len()] = b'5';
    let meta_fnv = fnv1a(&bytes[meta_offset..]);
    bytes[56..60].copy_from_slice(&meta_fnv.to_le_bytes());
    reseal_header(&mut bytes);
    for r in load_both("misaligned.odz", &bytes) {
        match r {
            Err(CheckpointError::Binary(what)) => assert!(what.contains("aligned"), "{what}"),
            other => panic!("expected Binary(aligned), got {other:?}"),
        }
    }
}

#[test]
fn table_escaping_the_payload_region_is_rejected() {
    let pristine = tiny_artifact_bytes();
    let meta_offset = u64::from_le_bytes(pristine[40..48].try_into().unwrap()) as usize;
    let mut bytes = pristine.to_vec();
    // Inflate the first table's row count by an order of magnitude (same
    // digit width trick: 30 users -> 90) so its byte range runs past the
    // meta block; reseal checksums so only the bounds check can object.
    let meta = std::str::from_utf8(&bytes[meta_offset..]).expect("meta is JSON");
    let at = meta.find("\"rows\":30").expect("users table has 30 rows");
    bytes[meta_offset + at + "\"rows\":".len()] = b'9';
    let meta_fnv = fnv1a(&bytes[meta_offset..]);
    bytes[56..60].copy_from_slice(&meta_fnv.to_le_bytes());
    reseal_header(&mut bytes);
    for r in load_both("escape.odz", &bytes) {
        match r {
            // load_bin notices the bad checksum-range or bounds; both are
            // Binary. The geometry check (30 declared vs 90 directory)
            // would be Inconsistent — also acceptable, also typed.
            Err(CheckpointError::Binary(_) | CheckpointError::Inconsistent(_)) => {}
            other => panic!("expected typed rejection, got {other:?}"),
        }
    }
}

#[test]
fn empty_and_garbage_files_are_rejected() {
    for r in load_both("empty.odz", &[]) {
        assert!(matches!(r, Err(CheckpointError::Binary(_))));
    }
    for r in load_both("garbage.odz", &[0xABu8; 4096]) {
        assert!(matches!(r, Err(CheckpointError::Binary(_))));
    }
}
