//! Property test of the admission-validation contract: on well-formed
//! request shapes (aligned sequence lengths within the configured maxima,
//! finite features), `validate_group` accepts a group **iff** the frozen
//! forward scores it without panicking. This is the guarantee the serving
//! engine's admission edge relies on — `Ok(())` means no worker will hit
//! an out-of-range table row.
//!
//! Ids, by contrast, are drawn from *twice* their valid ranges, so about
//! half the generated groups are invalid in some way.
//!
//! One asymmetry: a candidate-free group short-circuits `score_group`
//! (it returns empty before touching any table), so for those only the
//! soundness direction (`validated → scores without panicking`) holds —
//! validation still rejects bad ids a later non-empty request would trip
//! over.

use odnet_core::{FrozenOdNet, GroupInput, OdNetModel, OdnetConfig, Variant, XST_DIM};
use proptest::prelude::*;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::OnceLock;

fn frozen() -> &'static FrozenOdNet {
    static FIX: OnceLock<FrozenOdNet> = OnceLock::new();
    FIX.get_or_init(|| {
        let ds = od_data::FliggyDataset::generate(od_data::FliggyConfig::tiny());
        let coords = ds.world.cities.iter().map(|c| c.coords).collect();
        let mut b = od_hsg::HsgBuilder::new(ds.world.num_users(), coords);
        for it in ds.hsg_interactions() {
            b.add_interaction(it);
        }
        OdNetModel::new(
            Variant::Odnet,
            OdnetConfig::tiny(),
            ds.world.num_users(),
            ds.world.num_cities(),
            Some(b.build()),
        )
        .freeze()
    })
}

/// An aligned (origins, dests, days) sequence triple of length `0..=max`,
/// with city ids drawn from twice the valid range.
fn seq_triple(
    city_bound: u32,
    max: usize,
) -> impl Strategy<Value = (Vec<od_hsg::CityId>, Vec<od_hsg::CityId>, Vec<u32>)> {
    prop::collection::vec((0..city_bound, 0..city_bound, 0u32..400), 0..=max).prop_map(|v| {
        let origins = v.iter().map(|&(o, _, _)| od_hsg::CityId(o)).collect();
        let dests = v.iter().map(|&(_, d, _)| od_hsg::CityId(d)).collect();
        let days = v.iter().map(|&(_, _, t)| t).collect();
        (origins, dests, days)
    })
}

fn group_strategy() -> impl Strategy<Value = GroupInput> {
    let m = frozen();
    let user_bound = (2 * m.num_users()) as u32;
    let city_bound = (2 * m.num_cities()) as u32;
    let cfg = m.config();
    let candidate = (0..city_bound, 0..city_bound, -1.0f32..1.0).prop_map(|(o, d, x)| {
        odnet_core::CandidateInput {
            origin: od_hsg::CityId(o),
            dest: od_hsg::CityId(d),
            xst_o: [x; XST_DIM],
            xst_d: [-x; XST_DIM],
            label_o: 0.0,
            label_d: 1.0,
        }
    });
    (
        0..user_bound,
        0u32..400,
        0..city_bound,
        seq_triple(city_bound, cfg.max_long_seq),
        seq_triple(city_bound, cfg.max_short_seq),
        prop::collection::vec(candidate, 0..4),
    )
        .prop_map(|(user, day, cc, lt, st, candidates)| GroupInput {
            user: od_hsg::UserId(user),
            day,
            current_city: od_hsg::CityId(cc),
            lt_origins: lt.0,
            lt_dests: lt.1,
            lt_days: lt.2,
            st_origins: st.0,
            st_dests: st.1,
            st_days: st.2,
            candidates,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn validated_iff_scorable(group in group_strategy()) {
        let m = frozen();
        let validated = m.validate_group(&group).is_ok();
        // Expected panics (index out of range) would spam stderr through
        // the default hook; silence it around the probe.
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let scored = catch_unwind(AssertUnwindSafe(|| m.score_group(&group))).is_ok();
        std::panic::set_hook(prev);
        if validated {
            prop_assert!(scored, "validate_group accepted a group that panics: {:?}", &group);
        } else if !group.candidates.is_empty() {
            prop_assert!(
                !scored,
                "validate_group rejected a group the forward scores fine: {:?}",
                &group
            );
        }
    }
}
