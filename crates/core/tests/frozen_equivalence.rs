//! The frozen serving artifact must reproduce the live tape.
//!
//! `OdNetModel::freeze` materializes the HSGC closure into dense tables and
//! extracts every weight into plain matrices; its tape-free forward mirrors
//! the live batched forward op for op. The live model stays the correctness
//! oracle: frozen scores must agree within float tolerance with both the
//! batched path and the original per-candidate path, for every variant,
//! with and without the HSGC, the MMoE head, and the intent extension.

use od_hsg::{CityId, HsgBuilder};
use od_tensor::infer::Workspace;
use odnet_core::{
    CandidateInput, CheckpointError, FeatureExtractor, FrozenOdNet, GroupInput, OdNetModel,
    OdnetConfig, Variant, XST_DIM,
};
use proptest::prelude::*;
use std::sync::OnceLock;

const TOL: f32 = 1e-5;

struct Fixture {
    /// `(frozen, batched live, per-candidate live)` triples sharing
    /// identical parameters.
    triples: Vec<(FrozenOdNet, OdNetModel, OdNetModel)>,
    /// Per-triple reloads of the frozen artifact through every persistence
    /// path: `[JSON round-trip, .odz owned read, .odz zero-copy mmap]`.
    /// All three must score bit-identically to the original.
    reloaded: Vec<[FrozenOdNet; 3]>,
    /// A real group (with history) providing the user context.
    template: GroupInput,
    num_cities: usize,
    num_users: usize,
}

fn fixture() -> &'static Fixture {
    static FIX: OnceLock<Fixture> = OnceLock::new();
    FIX.get_or_init(|| {
        let ds = od_data::FliggyDataset::generate(od_data::FliggyConfig::tiny());
        let hsg = || {
            let coords = ds.world.cities.iter().map(|c| c.coords).collect();
            let mut b = HsgBuilder::new(ds.world.num_users(), coords);
            for it in ds.hsg_interactions() {
                b.add_interaction(it);
            }
            b.build()
        };
        let build = |variant: Variant, intents: usize| {
            let mut models = Vec::new();
            for per_candidate in [false, true] {
                let mut cfg = OdnetConfig::tiny();
                cfg.intents = intents;
                cfg.per_candidate_scoring = per_candidate;
                let g = variant.uses_graph().then(hsg);
                models.push(OdNetModel::new(
                    variant,
                    cfg,
                    ds.world.num_users(),
                    ds.world.num_cities(),
                    g,
                ));
            }
            let per_candidate = models.pop().unwrap();
            let batched = models.pop().unwrap();
            (batched.freeze(), batched, per_candidate)
        };
        let triples = vec![
            build(Variant::Odnet, 0),
            build(Variant::StlG, 0),
            build(Variant::OdnetG, 3),
            build(Variant::StlPlusG, 0),
        ];
        let reloaded = triples
            .iter()
            .enumerate()
            .map(|(i, (frozen, _, _))| {
                let json = FrozenOdNet::load_json(&frozen.save_json()).expect("json round trip");
                let path = std::env::temp_dir()
                    .join(format!("odnet_equiv_{}_{i}.odz", std::process::id()));
                frozen.save_bin(&path).expect("save .odz");
                let bin = FrozenOdNet::load_bin(&path).expect("owned binary read");
                let mapped = FrozenOdNet::load_bin_mmap(&path).expect("zero-copy mmap");
                // Unlink immediately: on unix the mapping stays valid, and
                // the fixture leaves no temp litter behind.
                let _ = std::fs::remove_file(&path);
                [json, bin, mapped]
            })
            .collect();
        let fx = FeatureExtractor::new(6, 4);
        let template = fx
            .groups_from_samples(&ds, &ds.train)
            .into_iter()
            .find(|g| !g.lt_origins.is_empty())
            .expect("a group with history exists");
        Fixture {
            triples,
            reloaded,
            template,
            num_cities: ds.world.num_cities(),
            num_users: ds.world.num_users(),
        }
    })
}

/// A candidate drawn from arbitrary city pairs and feature values.
fn candidates(num_cities: usize) -> impl Strategy<Value = Vec<CandidateInput>> {
    let cand = (
        0..num_cities as u32,
        0..num_cities as u32,
        prop::collection::vec(-1.0f32..3.0, 2 * XST_DIM),
        prop::bool::ANY,
    )
        .prop_map(|(o, d, x, label)| {
            let mut xst_o = [0.0f32; XST_DIM];
            let mut xst_d = [0.0f32; XST_DIM];
            xst_o.copy_from_slice(&x[..XST_DIM]);
            xst_d.copy_from_slice(&x[XST_DIM..]);
            CandidateInput {
                origin: CityId(o),
                dest: CityId(d),
                xst_o,
                xst_d,
                label_o: if label { 1.0 } else { 0.0 },
                label_d: if label { 0.0 } else { 1.0 },
            }
        });
    prop::collection::vec(cand, 1..=64)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Frozen scores agree with both live paths (batched and the original
    /// per-candidate oracle) for arbitrary candidate sets of size 1–64.
    #[test]
    fn frozen_scores_match_live_oracles(cands in candidates(fixture().num_cities)) {
        let fix = fixture();
        let mut group = fix.template.clone();
        group.candidates = cands;
        for (frozen, batched, per_candidate) in &fix.triples {
            let cold = frozen.score_group(&group);
            let live_b = batched.score_group(&group);
            let live_p = per_candidate.score_group(&group);
            prop_assert_eq!(cold.len(), live_b.len());
            for (i, ((fo, fd), ((bo, bd), (po, pd)))) in
                cold.iter().zip(live_b.iter().zip(&live_p)).enumerate()
            {
                prop_assert!(
                    (fo - bo).abs() <= TOL && (fd - bd).abs() <= TOL,
                    "{} candidate {i}: frozen ({fo}, {fd}) vs batched ({bo}, {bd})",
                    frozen.variant().name()
                );
                prop_assert!(
                    (fo - po).abs() <= TOL && (fd - pd).abs() <= TOL,
                    "{} candidate {i}: frozen ({fo}, {fd}) vs per-candidate ({po}, {pd})",
                    frozen.variant().name()
                );
            }
        }
    }

    /// Every persistence path — JSON round-trip, `.odz` owned read, and
    /// `.odz` zero-copy mmap — scores **bit-identically** to the original
    /// in-memory artifact, for every variant and arbitrary candidate sets.
    /// Exact equality (not tolerance): all four serve the same IEEE-754
    /// bit patterns through the same kernels.
    #[test]
    fn persistence_paths_score_bit_identically(cands in candidates(fixture().num_cities)) {
        let fix = fixture();
        let mut group = fix.template.clone();
        group.candidates = cands;
        for ((frozen, _, _), reloaded) in fix.triples.iter().zip(&fix.reloaded) {
            let expected = frozen.score_group(&group);
            for (path, other) in ["json", "bin", "mmap"].iter().zip(reloaded.iter()) {
                let got = other.score_group(&group);
                prop_assert_eq!(
                    &expected,
                    &got,
                    "{} via {} diverged from the in-memory artifact",
                    frozen.variant().name(),
                    path
                );
            }
        }
    }
}

/// Reloaded artifacts carry identical metadata on every path.
#[test]
fn persistence_paths_preserve_metadata() {
    let fix = fixture();
    for ((frozen, _, _), reloaded) in fix.triples.iter().zip(&fix.reloaded) {
        for other in reloaded {
            assert_eq!(other.variant(), frozen.variant());
            assert_eq!(other.theta().to_bits(), frozen.theta().to_bits());
            assert_eq!(other.num_users(), frozen.num_users());
            assert_eq!(other.num_cities(), frozen.num_cities());
            assert_eq!(other.config(), frozen.config());
        }
    }
}

/// On the template group the frozen path reproduces the live batched tape
/// *bitwise* — the kernels are mirrored op for op, not merely approximated.
#[test]
fn frozen_matches_batched_bitwise_on_template() {
    let fix = fixture();
    let group = &fix.template;
    for (frozen, batched, _) in &fix.triples {
        assert_eq!(
            frozen.score_group(group),
            batched.score_group(group),
            "{} frozen diverged from the live batched tape",
            frozen.variant().name()
        );
    }
}

/// Empty groups score to an empty vector without touching the workspace.
#[test]
fn empty_candidate_group_scores_empty() {
    let fix = fixture();
    let mut group = fix.template.clone();
    group.candidates.clear();
    for (frozen, _, _) in &fix.triples {
        assert!(frozen.score_group(&group).is_empty());
    }
}

/// Workspace reuse across groups must not leak state between scores:
/// scoring group A, then B, then A again with one workspace gives identical
/// results, and matches a fresh workspace.
#[test]
fn workspace_reuse_is_stateless_across_groups() {
    let fix = fixture();
    let (frozen, _, _) = &fix.triples[0];
    let mut a = fix.template.clone();
    a.candidates.truncate(3.min(a.candidates.len()));
    let mut b = fix.template.clone();
    b.candidates.reverse();
    let mut ws = Workspace::new();
    let first = frozen.score_group_with(&mut ws, &a);
    let _ = frozen.score_group_with(&mut ws, &b);
    let again = frozen.score_group_with(&mut ws, &a);
    assert_eq!(first, again);
    assert_eq!(first, frozen.score_group_with(&mut Workspace::new(), &a));
}

/// The standalone artifact JSON round-trips with exactly-equal scores and
/// metadata.
#[test]
fn save_load_round_trips_exactly() {
    let fix = fixture();
    for (frozen, _, _) in &fix.triples {
        let json = frozen.save_json();
        let back = FrozenOdNet::load_json(&json).expect("round trip");
        assert_eq!(back.variant(), frozen.variant());
        assert_eq!(back.theta(), frozen.theta());
        assert_eq!(back.num_users(), fix.num_users);
        assert_eq!(back.num_cities(), fix.num_cities);
        assert_eq!(
            back.score_group(&fix.template),
            frozen.score_group(&fix.template)
        );
    }
}

/// A frozen artifact with an unknown format version is rejected with
/// `CheckpointError::Version`, not a parse error.
#[test]
fn load_rejects_version_mismatch() {
    let fix = fixture();
    let (frozen, _, _) = &fix.triples[0];
    let json = frozen.save_json();
    let tampered = json.replacen("\"format_version\":1", "\"format_version\":999", 1);
    assert_ne!(json, tampered, "version field not found in artifact JSON");
    match FrozenOdNet::load_json(&tampered) {
        Err(CheckpointError::Version(999)) => {}
        other => panic!("expected Version(999), got {other:?}"),
    }
    assert!(matches!(
        FrozenOdNet::load_json("not json"),
        Err(CheckpointError::Parse(_))
    ));
}

/// v2 training checkpoints embed the frozen artifact; extracting it needs
/// no HSG and scores identically to freezing the live model directly.
#[test]
fn checkpoint_embeds_extractable_artifact() {
    let fix = fixture();
    let (frozen, batched, _) = &fix.triples[0];
    let ckpt = batched.save_json(fix.num_users, fix.num_cities);
    let extracted = FrozenOdNet::from_checkpoint_json(&ckpt).expect("v2 checkpoint embeds frozen");
    assert_eq!(
        extracted.score_group(&fix.template),
        frozen.score_group(&fix.template)
    );

    // A previous-version checkpoint reports its version, not a parse error.
    let tampered = ckpt.replacen("\"format_version\":2", "\"format_version\":1", 1);
    assert_ne!(ckpt, tampered, "version field not found in checkpoint JSON");
    match FrozenOdNet::from_checkpoint_json(&tampered) {
        Err(CheckpointError::Version(1)) => {}
        other => panic!("expected Version(1), got {other:?}"),
    }
}
