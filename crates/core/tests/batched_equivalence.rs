//! The batched group forward must reproduce the per-candidate oracle.
//!
//! `per_candidate_scoring = true` selects the original one-candidate-at-a-
//! time forward; the default batched path stacks the group into `n×d`
//! matrices. Both paths share every parameter (the flag does not perturb
//! initialization), so their scores must agree within float tolerance for
//! any candidate set — across variants, with and without the HSGC, the
//! MMoE head, and the intent extension.

use od_hsg::{CityId, HsgBuilder};
use odnet_core::{
    CandidateInput, FeatureExtractor, GroupInput, OdNetModel, OdnetConfig, Variant, XST_DIM,
};
use proptest::prelude::*;
use std::sync::OnceLock;

const TOL: f32 = 1e-5;

struct Fixture {
    /// `(batched, per_candidate)` model pairs with identical parameters.
    pairs: Vec<(OdNetModel, OdNetModel)>,
    /// A real group (with history) providing the user context.
    template: GroupInput,
    num_cities: usize,
}

fn fixture() -> &'static Fixture {
    static FIX: OnceLock<Fixture> = OnceLock::new();
    FIX.get_or_init(|| {
        let ds = od_data::FliggyDataset::generate(od_data::FliggyConfig::tiny());
        let hsg = || {
            let coords = ds.world.cities.iter().map(|c| c.coords).collect();
            let mut b = HsgBuilder::new(ds.world.num_users(), coords);
            for it in ds.hsg_interactions() {
                b.add_interaction(it);
            }
            b.build()
        };
        let build = |variant: Variant, intents: usize| {
            let mut pair = Vec::new();
            for per_candidate in [false, true] {
                let mut cfg = OdnetConfig::tiny();
                cfg.intents = intents;
                cfg.per_candidate_scoring = per_candidate;
                let g = variant.uses_graph().then(hsg);
                pair.push(OdNetModel::new(
                    variant,
                    cfg,
                    ds.world.num_users(),
                    ds.world.num_cities(),
                    g,
                ));
            }
            let per_candidate = pair.pop().unwrap();
            let batched = pair.pop().unwrap();
            (batched, per_candidate)
        };
        let pairs = vec![
            build(Variant::Odnet, 0),
            build(Variant::StlG, 0),
            build(Variant::OdnetG, 3),
        ];
        let fx = FeatureExtractor::new(6, 4);
        let template = fx
            .groups_from_samples(&ds, &ds.train)
            .into_iter()
            .find(|g| !g.lt_origins.is_empty())
            .expect("a group with history exists");
        let num_cities = ds.world.num_cities();
        Fixture {
            pairs,
            template,
            num_cities,
        }
    })
}

/// A candidate drawn from arbitrary city pairs and feature values.
fn candidates(num_cities: usize) -> impl Strategy<Value = Vec<CandidateInput>> {
    let cand = (
        0..num_cities as u32,
        0..num_cities as u32,
        prop::collection::vec(-1.0f32..3.0, 2 * XST_DIM),
        prop::bool::ANY,
    )
        .prop_map(|(o, d, x, label)| {
            let mut xst_o = [0.0f32; XST_DIM];
            let mut xst_d = [0.0f32; XST_DIM];
            xst_o.copy_from_slice(&x[..XST_DIM]);
            xst_d.copy_from_slice(&x[XST_DIM..]);
            CandidateInput {
                origin: CityId(o),
                dest: CityId(d),
                xst_o,
                xst_d,
                label_o: if label { 1.0 } else { 0.0 },
                label_d: if label { 0.0 } else { 1.0 },
            }
        });
    prop::collection::vec(cand, 1..=64)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn batched_scores_match_per_candidate_oracle(cands in candidates(fixture().num_cities)) {
        let fix = fixture();
        let mut group = fix.template.clone();
        group.candidates = cands;
        for (batched, oracle) in &fix.pairs {
            let fast = batched.score_group(&group);
            let slow = oracle.score_group(&group);
            prop_assert_eq!(fast.len(), slow.len());
            for (i, ((fo, fd), (so, sd))) in fast.iter().zip(&slow).enumerate() {
                prop_assert!(
                    (fo - so).abs() <= TOL && (fd - sd).abs() <= TOL,
                    "{} candidate {i}: batched ({fo}, {fd}) vs oracle ({so}, {sd})",
                    batched.variant.name()
                );
            }
        }
    }

    #[test]
    fn batched_loss_matches_per_candidate_oracle(cands in candidates(fixture().num_cities)) {
        let fix = fixture();
        let mut group = fix.template.clone();
        group.candidates = cands;
        for (batched, oracle) in &fix.pairs {
            let mut g1 = od_tensor::Graph::new();
            let l1 = batched.group_loss(&mut g1, &group);
            let mut g2 = od_tensor::Graph::new();
            let l2 = oracle.group_loss(&mut g2, &group);
            let (a, b) = (g1.value(l1).item(), g2.value(l2).item());
            prop_assert!(
                (a - b).abs() <= TOL,
                "{} loss: batched {a} vs oracle {b}",
                batched.variant.name()
            );
        }
    }
}

/// Single-candidate groups hit the vector-shaped (rows == 1) corners of
/// every batched op; exercise them deterministically too.
#[test]
fn single_candidate_group_matches() {
    let fix = fixture();
    let mut group = fix.template.clone();
    group.candidates.truncate(1);
    for (batched, oracle) in &fix.pairs {
        let fast = batched.score_group(&group);
        let slow = oracle.score_group(&group);
        assert_eq!(fast.len(), 1);
        assert!((fast[0].0 - slow[0].0).abs() <= TOL);
        assert!((fast[0].1 - slow[0].1).abs() <= TOL);
    }
}

/// Empty groups score to an empty vector on both paths (no panic from the
/// batched assert).
#[test]
fn empty_candidate_group_scores_empty() {
    let fix = fixture();
    let mut group = fix.template.clone();
    group.candidates.clear();
    for (batched, oracle) in &fix.pairs {
        assert!(batched.score_group(&group).is_empty());
        assert!(oracle.score_group(&group).is_empty());
    }
}

/// Tape reuse across groups must not leak state between scores: scoring
/// group A, then B, then A again on one graph gives identical results.
#[test]
fn graph_reuse_is_stateless_across_groups() {
    let fix = fixture();
    let (batched, _) = &fix.pairs[0];
    let mut a = fix.template.clone();
    a.candidates.truncate(3.min(a.candidates.len()));
    let mut b = fix.template.clone();
    b.candidates.reverse();
    let mut tape = od_tensor::Graph::new();
    let first = batched.score_group_with(&mut tape, &a);
    let _ = batched.score_group_with(&mut tape, &b);
    let again = batched.score_group_with(&mut tape, &a);
    assert_eq!(first, again);
}
