//! The assembled ODNET model (Figure 3) and its ablation variants.
//!
//! Two branch stacks (origin-aware and destination-aware), each an optional
//! HSGC over its metapath plus a PEC, feeding either the MMoE joint head
//! (multi-task variants) or two independent towers (single-task variants):
//!
//! | Variant   | HSGC | Head        |
//! |-----------|------|-------------|
//! | `Odnet`   | yes  | MMoE (joint)|
//! | `OdnetG`  | no   | MMoE (joint)|
//! | `StlPlusG`| yes  | independent |
//! | `StlG`    | no   | independent |

use crate::config::OdnetConfig;
use crate::features::GroupInput;
use crate::frozen::{FrozenBranch, FrozenHead, FrozenOdNet};
use crate::hsgc::{HsgcForward, HsgcModule};
use crate::intent::IntentModule;
use crate::mmoe::{MmoeHead, SingleTaskHead};
use crate::pec::PecModule;
use od_hsg::{CityId, Hsg, Metapath, NeighborTable, UserId};
use od_tensor::nn::Embedding;
use od_tensor::{stable_sigmoid, Graph, ParamId, ParamStore, Shape, Tensor, Value};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Which model variant to assemble (paper §V-A.4).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Variant {
    /// Full ODNET: HSGC exploration + MMoE joint learning.
    Odnet,
    /// ODNET−G: MMoE joint learning without the HSGC.
    OdnetG,
    /// STL+G: HSGC exploration, O and D learned separately.
    StlPlusG,
    /// STL−G: no HSGC, O and D learned separately.
    StlG,
}

impl Variant {
    /// Whether the variant deploys the HSGC.
    pub fn uses_graph(self) -> bool {
        matches!(self, Variant::Odnet | Variant::StlPlusG)
    }

    /// Whether the variant learns O and D jointly (MMoE).
    pub fn joint(self) -> bool {
        matches!(self, Variant::Odnet | Variant::OdnetG)
    }

    /// Display name matching the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            Variant::Odnet => "ODNET",
            Variant::OdnetG => "ODNET-G",
            Variant::StlPlusG => "STL+G",
            Variant::StlG => "STL-G",
        }
    }
}

/// One branch (origin-aware or destination-aware): its embedding source and
/// PEC.
#[derive(Debug)]
struct Branch {
    hsgc: Option<HsgcModule>,
    /// Plain embedding tables for the −G variants.
    plain_user: Option<Embedding>,
    plain_city: Option<Embedding>,
    pec: PecModule,
    /// Optional travel-intention module (the paper's future-work extension;
    /// `OdnetConfig::intents > 0`).
    intent: Option<IntentModule>,
}

enum Head {
    Joint(MmoeHead),
    Single(SingleTaskHead),
}

/// Per-candidate output logits of a group forward pass.
pub struct GroupForward {
    /// O-task logit node per candidate.
    pub logits_o: Vec<Value>,
    /// D-task logit node per candidate.
    pub logits_d: Vec<Value>,
}

/// Output logits of a batched group forward pass: each field is an `n×1`
/// column with one logit per candidate, in candidate order.
pub struct GroupForwardBatched {
    /// O-task logit column.
    pub logits_o: Value,
    /// D-task logit column.
    pub logits_d: Value,
}

/// A trained or trainable ODNET model instance.
pub struct OdNetModel {
    /// Hyper-parameters.
    pub config: OdnetConfig,
    /// Assembled variant.
    pub variant: Variant,
    /// All trainable parameters.
    pub store: ParamStore,
    origin_branch: Branch,
    dest_branch: Branch,
    head: Head,
    /// Raw learnable loss weight; θ = sigmoid(raw) ∈ (0,1) (Eq. 8). Only
    /// present for joint variants; single-task variants use a fixed 0.5.
    theta_raw: Option<ParamId>,
    /// The HSG and its sampled neighbor tables (graph variants only).
    graph_ctx: Option<GraphContext>,
}

struct GraphContext {
    hsg: Hsg,
    /// ρ₁ (departure) sampled neighborhoods for the origin branch.
    table_o: NeighborTable,
    /// ρ₂ (arrive) sampled neighborhoods for the destination branch.
    table_d: NeighborTable,
}

impl OdNetModel {
    /// Assemble a variant. `hsg` is required for graph variants (pass the
    /// training-period interaction graph) and ignored otherwise.
    pub fn new(
        variant: Variant,
        config: OdnetConfig,
        num_users: usize,
        num_cities: usize,
        hsg: Option<Hsg>,
    ) -> Self {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut store = ParamStore::new();
        let d = config.embed_dim;
        let make_branch = |store: &mut ParamStore, name: &str, rng: &mut StdRng| -> Branch {
            let (hsgc, plain_user, plain_city) = if variant.uses_graph() {
                (
                    Some(HsgcModule::new(
                        store,
                        &format!("{name}.hsgc"),
                        num_users,
                        num_cities,
                        d,
                        config.depth,
                        rng,
                    )),
                    None,
                    None,
                )
            } else {
                (
                    None,
                    Some(Embedding::new(
                        store,
                        &format!("{name}.users"),
                        num_users,
                        d,
                        rng,
                    )),
                    Some(Embedding::new(
                        store,
                        &format!("{name}.cities"),
                        num_cities,
                        d,
                        rng,
                    )),
                )
            };
            let pec = PecModule::new(store, &format!("{name}.pec"), d, config.heads, rng);
            let intent = (config.intents > 0).then(|| {
                IntentModule::new(store, &format!("{name}.intent"), config.intents, d, rng)
            });
            Branch {
                hsgc,
                plain_user,
                plain_city,
                pec,
                intent,
            }
        };
        let origin_branch = make_branch(&mut store, "origin", &mut rng);
        let dest_branch = make_branch(&mut store, "dest", &mut rng);
        let q_dim = config.q_dim();
        let head = if variant.joint() {
            Head::Joint(MmoeHead::new(
                &mut store,
                "jlc",
                2 * q_dim,
                config.experts,
                config.expert_dim,
                config.tower_hidden,
                &mut rng,
            ))
        } else {
            Head::Single(SingleTaskHead::new(
                &mut store,
                "stl",
                q_dim,
                config.tower_hidden,
                &mut rng,
            ))
        };
        let theta_raw = variant.joint().then(|| {
            let init = inv_sigmoid(config.theta_init);
            store.register("theta_raw", Tensor::scalar(init))
        });
        let graph_ctx = if variant.uses_graph() {
            let hsg = hsg.expect("graph variants require an HSG");
            assert_eq!(hsg.num_users(), num_users, "HSG user count mismatch");
            assert_eq!(hsg.num_cities(), num_cities, "HSG city count mismatch");
            let table_o = hsg.neighbor_table(Metapath::RHO1, config.neighbor_cap, &mut rng);
            let table_d = hsg.neighbor_table(Metapath::RHO2, config.neighbor_cap, &mut rng);
            Some(GraphContext {
                hsg,
                table_o,
                table_d,
            })
        } else {
            None
        };
        OdNetModel {
            config,
            variant,
            store,
            origin_branch,
            dest_branch,
            head,
            theta_raw,
            graph_ctx,
        }
    }

    /// Current value of the loss weight θ (Eq. 8).
    pub fn theta(&self) -> f32 {
        match self.theta_raw {
            Some(id) => stable_sigmoid(self.store.value(id).item()),
            None => 0.5,
        }
    }

    /// Total scalar parameter count.
    pub fn num_weights(&self) -> usize {
        self.store.num_weights()
    }

    /// Shared setup of a group forward: both branch embedding sources plus
    /// their candidate-independent trunks.
    fn branch_setup<'m>(
        &'m self,
        g: &mut Graph,
        group: &GroupInput,
    ) -> (BranchSource<'m>, BranchSource<'m>, Trunk, Trunk) {
        let store = &self.store;
        let mut origin_src =
            BranchSource::new(&self.origin_branch, self.graph_ctx.as_ref(), true, g, store);
        let mut dest_src =
            BranchSource::new(&self.dest_branch, self.graph_ctx.as_ref(), false, g, store);
        let trunk_o = branch_trunk(
            g,
            store,
            &self.origin_branch,
            &mut origin_src,
            group.user,
            group.current_city,
            &group.lt_origins,
            &group.st_origins,
        );
        let trunk_d = branch_trunk(
            g,
            store,
            &self.dest_branch,
            &mut dest_src,
            group.user,
            group.current_city,
            &group.lt_dests,
            &group.st_dests,
        );
        (origin_src, dest_src, trunk_o, trunk_d)
    }

    /// Forward one group, producing per-candidate logit nodes. The shared
    /// user-side trunk (HSGC closure + PEC summary) is computed once. This
    /// is the reference path; [`OdNetModel::forward_group_batched`] computes
    /// the same logits with one matmul per layer per group.
    pub fn forward_group(&self, g: &mut Graph, group: &GroupInput) -> GroupForward {
        let store = &self.store;
        let (mut origin_src, mut dest_src, trunk_o, trunk_d) = self.branch_setup(g, group);

        let mut logits_o = Vec::with_capacity(group.candidates.len());
        let mut logits_d = Vec::with_capacity(group.candidates.len());
        for cand in &group.candidates {
            let e_co = origin_src.city(g, store, cand.origin);
            let e_cd = dest_src.city(g, store, cand.dest);
            let xst_o = g.input(Tensor::vector(&cand.xst_o));
            let xst_d = g.input(Tensor::vector(&cand.xst_d));
            let mut parts_o = vec![trunk_o.v_l, trunk_o.e_user, trunk_o.e_lbs, e_co, xst_o];
            if let Some(intent) = trunk_o.intent {
                parts_o.push(intent);
            }
            let q_o = g.concat_cols(&parts_o);
            let mut parts_d = vec![trunk_d.v_l, trunk_d.e_user, trunk_d.e_lbs, e_cd, xst_d];
            if let Some(intent) = trunk_d.intent {
                parts_d.push(intent);
            }
            let q_d = g.concat_cols(&parts_d);
            let (lo, ld) = match &self.head {
                Head::Joint(mmoe) => {
                    let q_cat = g.concat_cols(&[q_o, q_d]);
                    mmoe.forward(g, store, q_cat)
                }
                Head::Single(stl) => stl.forward(g, store, q_o, q_d),
            };
            logits_o.push(lo);
            logits_d.push(ld);
        }
        GroupForward { logits_o, logits_d }
    }

    /// Batched group forward: all `n` candidates are stacked into `n×d`
    /// matrices, so the PEC concat, every expert/gate/tower layer, and the
    /// candidate-embedding gather each run once per group instead of once
    /// per candidate. The shared trunk rows are broadcast down the batch by
    /// [`Graph::concat_cols_bcast`] without materializing tiled copies.
    pub fn forward_group_batched(&self, g: &mut Graph, group: &GroupInput) -> GroupForwardBatched {
        let n = group.candidates.len();
        assert!(n > 0, "forward_group_batched needs at least one candidate");
        let store = &self.store;
        let (mut origin_src, mut dest_src, trunk_o, trunk_d) = self.branch_setup(g, group);

        let origin_ids: Vec<CityId> = group.candidates.iter().map(|c| c.origin).collect();
        let dest_ids: Vec<CityId> = group.candidates.iter().map(|c| c.dest).collect();
        let e_co = origin_src
            .cities(g, store, &origin_ids)
            .expect("candidate set is non-empty");
        let e_cd = dest_src
            .cities(g, store, &dest_ids)
            .expect("candidate set is non-empty");

        let xst_dim = crate::features::XST_DIM;
        let mut xst_o = Tensor::zeros(Shape::Matrix(n, xst_dim));
        let mut xst_d = Tensor::zeros(Shape::Matrix(n, xst_dim));
        for (i, cand) in group.candidates.iter().enumerate() {
            xst_o.row_mut(i).copy_from_slice(&cand.xst_o);
            xst_d.row_mut(i).copy_from_slice(&cand.xst_d);
        }
        let xst_o = g.input(xst_o);
        let xst_d = g.input(xst_d);

        // Same part order as the per-candidate path; trunk rows broadcast.
        let mut parts_o = vec![trunk_o.v_l, trunk_o.e_user, trunk_o.e_lbs, e_co, xst_o];
        if let Some(intent) = trunk_o.intent {
            parts_o.push(intent);
        }
        let q_o = g.concat_cols_bcast(&parts_o, n);
        let mut parts_d = vec![trunk_d.v_l, trunk_d.e_user, trunk_d.e_lbs, e_cd, xst_d];
        if let Some(intent) = trunk_d.intent {
            parts_d.push(intent);
        }
        let q_d = g.concat_cols_bcast(&parts_d, n);

        let (logits_o, logits_d) = match &self.head {
            Head::Joint(mmoe) => {
                let q_cat = g.concat_cols(&[q_o, q_d]);
                mmoe.forward_batched(g, store, q_cat)
            }
            Head::Single(stl) => stl.forward(g, store, q_o, q_d),
        };
        GroupForwardBatched { logits_o, logits_d }
    }

    /// Forward a group and attach the joint loss (Eq. 8 over Eqs. 9–10),
    /// returning the scalar loss node.
    pub fn group_loss(&self, g: &mut Graph, group: &GroupInput) -> Value {
        let labels_o: Vec<f32> = group.candidates.iter().map(|c| c.label_o).collect();
        let labels_d: Vec<f32> = group.candidates.iter().map(|c| c.label_d).collect();
        let n = labels_o.len();
        let (stacked_o, stacked_d) = if self.config.per_candidate_scoring {
            let fwd = self.forward_group(g, group);
            let so = g.concat_rows(&fwd.logits_o);
            let sd = g.concat_rows(&fwd.logits_d);
            (so, sd)
        } else {
            let fwd = self.forward_group_batched(g, group);
            (fwd.logits_o, fwd.logits_d)
        };
        let stacked_o = g.reshape(stacked_o, Shape::Vector(n));
        let stacked_d = g.reshape(stacked_d, Shape::Vector(n));
        let loss_o = g.bce_with_logits(stacked_o, &Tensor::vector(&labels_o));
        let loss_d = g.bce_with_logits(stacked_d, &Tensor::vector(&labels_d));
        match self.theta_raw {
            Some(id) => {
                let raw = g.param(&self.store, id);
                let theta = g.sigmoid(raw);
                let one = g.input(Tensor::scalar(1.0));
                let theta_c = g.sub(one, theta);
                let to = g.mul(theta, loss_o);
                let td = g.mul(theta_c, loss_d);
                let weighted = g.add(to, td);
                // Entropy regularization of the learnable θ: minimizing the
                // bare convex combination of Eq. 8 over θ collapses to the
                // easier task and starves the other. Adding
                // λ·(θ·lnθ + (1−θ)·ln(1−θ)) gives the unique stationary
                // point θ* = σ((L_D − L_O)/λ): θ stays learnable and
                // up-weights the currently harder task instead of
                // abandoning it.
                let lambda = self.config.theta_entropy;
                if lambda > 0.0 {
                    let ln_t = g.log(theta);
                    let t_ln_t = g.mul(theta, ln_t);
                    let ln_c = g.log(theta_c);
                    let c_ln_c = g.mul(theta_c, ln_c);
                    let neg_entropy = g.add(t_ln_t, c_ln_c);
                    let reg = g.scale(neg_entropy, lambda);
                    g.add(weighted, reg)
                } else {
                    weighted
                }
            }
            None => {
                // STL: equal-weight sum of the two independent task losses.
                let s = g.add(loss_o, loss_d);
                g.scale(s, 0.5)
            }
        }
    }

    /// Score a group in inference mode: per-candidate `(p^O, p^D)`
    /// probabilities.
    pub fn score_group(&self, group: &GroupInput) -> Vec<(f32, f32)> {
        let mut g = Graph::new();
        self.score_group_with(&mut g, group)
    }

    /// Score a group using a caller-provided graph. The tape is reset (its
    /// node storage is retained), so serving loops can reuse one graph's
    /// allocations across many groups instead of paying a fresh tape per
    /// call.
    pub fn score_group_with(&self, g: &mut Graph, group: &GroupInput) -> Vec<(f32, f32)> {
        g.reset();
        if group.candidates.is_empty() {
            return Vec::new();
        }
        if self.config.per_candidate_scoring {
            let fwd = self.forward_group(g, group);
            fwd.logits_o
                .iter()
                .zip(&fwd.logits_d)
                .map(|(&lo, &ld)| {
                    (
                        stable_sigmoid(g.value(lo).as_slice()[0]),
                        stable_sigmoid(g.value(ld).as_slice()[0]),
                    )
                })
                .collect()
        } else {
            let fwd = self.forward_group_batched(g, group);
            let lo = g.value(fwd.logits_o).as_slice();
            let ld = g.value(fwd.logits_d).as_slice();
            lo.iter()
                .zip(ld)
                .map(|(&a, &b)| (stable_sigmoid(a), stable_sigmoid(b)))
                .collect()
        }
    }

    /// The serving score of Eq. 11: `θ·p^O + (1−θ)·p^D`.
    pub fn serving_score(&self, p_o: f32, p_d: f32) -> f32 {
        let theta = self.theta();
        theta * p_o + (1.0 - theta) * p_d
    }

    /// Freeze the model into a tape-free [`FrozenOdNet`] serving artifact.
    ///
    /// Graph variants have their HSGC user/city embeddings materialized once
    /// into dense tables (the per-request K-step aggregation becomes a row
    /// lookup); plain variants snapshot their embedding tables directly.
    /// PEC/MMoE/tower weights are extracted from the [`ParamStore`] into
    /// plain row-major matrices and θ becomes a plain scalar. The frozen
    /// forward mirrors the live batched tape op for op, so its scores are
    /// bit-identical to [`OdNetModel::score_group`]'s batched path.
    pub fn freeze(&self) -> FrozenOdNet {
        let freeze_branch = |branch: &Branch, is_origin: bool| -> FrozenBranch {
            let (users, cities) = match (&branch.hsgc, self.graph_ctx.as_ref()) {
                (Some(hsgc), Some(ctx)) => {
                    let table = if is_origin {
                        &ctx.table_o
                    } else {
                        &ctx.table_d
                    };
                    hsgc.materialize(&self.store, table, ctx.hsg.distances())
                }
                _ => {
                    let pu = branch.plain_user.as_ref().expect("plain tables present");
                    let pc = branch.plain_city.as_ref().expect("plain tables present");
                    (
                        self.store.value(pu.table()).clone(),
                        self.store.value(pc.table()).clone(),
                    )
                }
            };
            FrozenBranch {
                users: users.into(),
                cities: cities.into(),
                pec: branch.pec.freeze(&self.store),
                intent: branch.intent.as_ref().map(|m| m.freeze(&self.store)),
            }
        };
        let origin = freeze_branch(&self.origin_branch, true);
        let dest = freeze_branch(&self.dest_branch, false);
        let head = match &self.head {
            Head::Joint(mmoe) => FrozenHead::Joint(Box::new(mmoe.freeze(&self.store))),
            Head::Single(stl) => FrozenHead::Single(stl.freeze(&self.store)),
        };
        FrozenOdNet {
            variant: self.variant,
            config: self.config.clone(),
            num_users: origin.users.rows(),
            num_cities: origin.cities.rows(),
            origin,
            dest,
            head,
            theta: self.theta(),
        }
    }

    /// Serialize the model (variant, config, universe sizes, and all
    /// trained parameters) to a JSON checkpoint. Since format version 2 the
    /// checkpoint also embeds the frozen serving artifact, so serving-only
    /// consumers can extract it via [`FrozenOdNet::from_checkpoint_json`]
    /// without rebuilding the HSG.
    pub fn save_json(&self, num_users: usize, num_cities: usize) -> String {
        let ckpt = Checkpoint {
            format_version: CHECKPOINT_VERSION,
            variant: self.variant,
            config: self.config.clone(),
            num_users,
            num_cities,
            store: self.store.clone(),
            frozen: Some(self.freeze()),
        };
        serde_json::to_string(&ckpt).expect("checkpoint serialization cannot fail")
    }

    /// Restore a model from a [`OdNetModel::save_json`] checkpoint. Graph
    /// variants need the HSG again (the graph is data, not parameters, and
    /// is rebuilt from interactions by the caller).
    pub fn load_json(json: &str, hsg: Option<Hsg>) -> Result<Self, CheckpointError> {
        let ckpt: Checkpoint = serde_json::from_str(json).map_err(CheckpointError::Parse)?;
        if ckpt.format_version != CHECKPOINT_VERSION {
            return Err(CheckpointError::Version(ckpt.format_version));
        }
        if ckpt.variant.uses_graph() && hsg.is_none() {
            return Err(CheckpointError::MissingHsg);
        }
        // Rebuild the architecture (registers parameters in the same order),
        // then swap in the trained store.
        let mut model = OdNetModel::new(
            ckpt.variant,
            ckpt.config,
            ckpt.num_users,
            ckpt.num_cities,
            hsg,
        );
        if model.store.len() != ckpt.store.len() {
            return Err(CheckpointError::ParamMismatch {
                expected: model.store.len(),
                found: ckpt.store.len(),
            });
        }
        let mut restored = ckpt.store;
        restored.reindex(); // the name index is serde(skip)
                            // Re-link name lookups built during registration.
        for id in model.store.ids().collect::<Vec<_>>() {
            let name = model.store.name(id);
            if restored.lookup(name) != Some(id) {
                return Err(CheckpointError::ParamMismatch {
                    expected: model.store.len(),
                    found: restored.len(),
                });
            }
        }
        std::mem::swap(&mut model.store, &mut restored);
        Ok(model)
    }
}

/// Checkpoint format version (bump on layout changes). v2 embeds the frozen
/// serving artifact alongside the training parameters.
const CHECKPOINT_VERSION: u32 = 2;

#[derive(Serialize)]
struct Checkpoint {
    format_version: u32,
    variant: Variant,
    config: OdnetConfig,
    num_users: usize,
    num_cities: usize,
    store: ParamStore,
    /// The serving artifact (v2+); absent in v1 checkpoints.
    frozen: Option<FrozenOdNet>,
}

// Hand-written so `frozen` defaults to `None` when absent (the vendored
// serde derive has no `#[serde(default)]`): a v1 checkpoint must parse far
// enough to report a version error, not a parse error.
impl serde::Deserialize for Checkpoint {
    fn from_content(content: &serde::Content) -> Result<Self, serde::DeError> {
        let map = content
            .as_map()
            .ok_or_else(|| serde::DeError::expected("map", "Checkpoint"))?;
        fn req<T: serde::Deserialize>(
            map: &[(String, serde::Content)],
            name: &str,
        ) -> Result<T, serde::DeError> {
            match serde::Content::get_field(map, name) {
                Some(v) => T::from_content(v),
                None => Err(serde::DeError::missing_field(name, "Checkpoint")),
            }
        }
        Ok(Checkpoint {
            format_version: req(map, "format_version")?,
            variant: req(map, "variant")?,
            config: req(map, "config")?,
            num_users: req(map, "num_users")?,
            num_cities: req(map, "num_cities")?,
            store: req(map, "store")?,
            frozen: match serde::Content::get_field(map, "frozen") {
                Some(v) => serde::Deserialize::from_content(v)?,
                None => None,
            },
        })
    }
}

impl FrozenOdNet {
    /// Extract the embedded serving artifact from a full training
    /// checkpoint produced by [`OdNetModel::save_json`]. Unlike
    /// [`OdNetModel::load_json`] this needs no HSG — the graph closure is
    /// already materialized into the frozen tables.
    pub fn from_checkpoint_json(json: &str) -> Result<Self, CheckpointError> {
        let ckpt: Checkpoint = serde_json::from_str(json).map_err(CheckpointError::Parse)?;
        if ckpt.format_version != CHECKPOINT_VERSION {
            return Err(CheckpointError::Version(ckpt.format_version));
        }
        let frozen = ckpt.frozen.ok_or(CheckpointError::MissingFrozen)?;
        frozen.validate_artifact()?;
        Ok(frozen)
    }
}

/// Failure modes of [`OdNetModel::load_json`].
#[derive(Debug)]
pub enum CheckpointError {
    /// Malformed JSON or schema mismatch.
    Parse(serde_json::Error),
    /// Unknown checkpoint format version.
    Version(u32),
    /// A graph variant was loaded without supplying the HSG.
    MissingHsg,
    /// The checkpoint carries no embedded frozen serving artifact.
    MissingFrozen,
    /// Parameter registry does not match the rebuilt architecture.
    ParamMismatch {
        /// Parameters the architecture registers.
        expected: usize,
        /// Parameters the checkpoint carries.
        found: usize,
    },
    /// Matrix dimensions inside the frozen artifact are mutually
    /// inconsistent (corrupt or hand-edited checkpoint).
    Inconsistent(String),
    /// The frozen artifact carries NaN or infinite weights, which would
    /// silently produce NaN scores at serving time.
    NonFinite(String),
    /// Filesystem failure while reading or writing a binary artifact.
    Io(String),
    /// Malformed `.odz` binary artifact: bad magic, checksum mismatch,
    /// truncation, misaligned or out-of-bounds table directory.
    Binary(String),
}

impl From<od_tensor::nn::FrozenCheckError> for CheckpointError {
    fn from(e: od_tensor::nn::FrozenCheckError) -> Self {
        match e {
            od_tensor::nn::FrozenCheckError::Shape(what) => CheckpointError::Inconsistent(what),
            od_tensor::nn::FrozenCheckError::NonFinite(what) => CheckpointError::NonFinite(what),
        }
    }
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Parse(e) => write!(f, "malformed checkpoint: {e}"),
            CheckpointError::Version(v) => write!(f, "unsupported checkpoint version {v}"),
            CheckpointError::MissingHsg => {
                write!(
                    f,
                    "graph variant checkpoint requires the HSG to be supplied"
                )
            }
            CheckpointError::MissingFrozen => {
                write!(f, "checkpoint embeds no frozen serving artifact")
            }
            CheckpointError::ParamMismatch { expected, found } => write!(
                f,
                "checkpoint carries {found} parameters but the architecture has {expected}"
            ),
            CheckpointError::Inconsistent(what) => {
                write!(f, "inconsistent frozen artifact: {what}")
            }
            CheckpointError::NonFinite(what) => {
                write!(f, "non-finite weights in frozen artifact: {what}")
            }
            CheckpointError::Io(what) => write!(f, "artifact I/O error: {what}"),
            CheckpointError::Binary(what) => {
                write!(f, "malformed binary artifact: {what}")
            }
        }
    }
}

impl std::error::Error for CheckpointError {}

/// Inverse sigmoid for initializing `theta_raw`.
fn inv_sigmoid(p: f32) -> f32 {
    let p = p.clamp(1e-4, 1.0 - 1e-4);
    (p / (1.0 - p)).ln()
}

/// Embedding source for one branch during one graph build: either a
/// memoized HSGC forward or plain table lookups.
enum BranchSource<'m> {
    Graph(HsgcForward<'m>),
    Plain {
        users: Value,
        cities: Value,
        dim: usize,
    },
}

impl<'m> BranchSource<'m> {
    fn new(
        branch: &'m Branch,
        ctx: Option<&'m GraphContext>,
        is_origin: bool,
        g: &mut Graph,
        store: &ParamStore,
    ) -> Self {
        match (&branch.hsgc, ctx) {
            (Some(hsgc), Some(ctx)) => {
                let table = if is_origin {
                    &ctx.table_o
                } else {
                    &ctx.table_d
                };
                BranchSource::Graph(hsgc.begin(g, store, table, ctx.hsg.distances()))
            }
            _ => {
                let pu = branch.plain_user.as_ref().expect("plain tables present");
                let pc = branch.plain_city.as_ref().expect("plain tables present");
                BranchSource::Plain {
                    users: g.param(store, pu.table()),
                    cities: g.param(store, pc.table()),
                    dim: pu.dim(),
                }
            }
        }
    }

    fn user(&mut self, g: &mut Graph, store: &ParamStore, u: UserId) -> Value {
        match self {
            BranchSource::Graph(fwd) => fwd.user(g, store, u),
            BranchSource::Plain { users, dim, .. } => {
                let row = g.gather_rows(*users, &[u.index()]);
                g.reshape(row, Shape::Vector(*dim))
            }
        }
    }

    fn city(&mut self, g: &mut Graph, store: &ParamStore, c: CityId) -> Value {
        match self {
            BranchSource::Graph(fwd) => fwd.city(g, store, c),
            BranchSource::Plain { cities, dim, .. } => {
                let row = g.gather_rows(*cities, &[c.index()]);
                g.reshape(row, Shape::Vector(*dim))
            }
        }
    }

    fn cities(&mut self, g: &mut Graph, store: &ParamStore, ids: &[CityId]) -> Option<Value> {
        if ids.is_empty() {
            return None;
        }
        match self {
            BranchSource::Graph(fwd) => fwd.cities(g, store, ids),
            BranchSource::Plain { cities, .. } => {
                let idx: Vec<usize> = ids.iter().map(|c| c.index()).collect();
                Some(g.gather_rows(*cities, &idx))
            }
        }
    }
}

/// Candidate-independent per-branch computation.
struct Trunk {
    v_l: Value,
    e_user: Value,
    e_lbs: Value,
    /// Inferred travel intention (present when the extension is enabled).
    intent: Option<Value>,
}

#[allow(clippy::too_many_arguments)]
fn branch_trunk(
    g: &mut Graph,
    store: &ParamStore,
    branch: &Branch,
    src: &mut BranchSource<'_>,
    user: UserId,
    current_city: CityId,
    long_seq: &[CityId],
    short_seq: &[CityId],
) -> Trunk {
    let e_user = src.user(g, store, user);
    let e_lbs = src.city(g, store, current_city);
    let e_long = src.cities(g, store, long_seq);
    let e_short = src.cities(g, store, short_seq);
    let v_l = branch.pec.forward(g, store, e_long, e_short);
    let intent = branch.intent.as_ref().map(|m| m.forward(g, store, e_short));
    Trunk {
        v_l,
        e_user,
        e_lbs,
        intent,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::{CandidateInput, FeatureExtractor};
    use od_data::{FliggyConfig, FliggyDataset};
    use od_hsg::HsgBuilder;

    fn dataset() -> FliggyDataset {
        FliggyDataset::generate(FliggyConfig::tiny())
    }

    fn build_model(variant: Variant, ds: &FliggyDataset) -> OdNetModel {
        let cfg = OdnetConfig::tiny();
        let hsg = variant.uses_graph().then(|| {
            let coords = ds.world.cities.iter().map(|c| c.coords).collect();
            let mut b = HsgBuilder::new(ds.world.num_users(), coords);
            for it in ds.hsg_interactions() {
                b.add_interaction(it);
            }
            b.build()
        });
        OdNetModel::new(
            variant,
            cfg,
            ds.world.num_users(),
            ds.world.num_cities(),
            hsg,
        )
    }

    fn sample_group(ds: &FliggyDataset) -> GroupInput {
        let fx = FeatureExtractor::new(6, 4);
        fx.groups_from_samples(ds, &ds.train)
            .into_iter()
            .find(|g| !g.lt_origins.is_empty())
            .expect("a group with history exists")
    }

    #[test]
    fn variant_flags() {
        assert!(Variant::Odnet.uses_graph() && Variant::Odnet.joint());
        assert!(!Variant::OdnetG.uses_graph() && Variant::OdnetG.joint());
        assert!(Variant::StlPlusG.uses_graph() && !Variant::StlPlusG.joint());
        assert!(!Variant::StlG.uses_graph() && !Variant::StlG.joint());
        assert_eq!(Variant::Odnet.name(), "ODNET");
    }

    #[test]
    fn all_variants_forward_and_score() {
        let ds = dataset();
        let group = sample_group(&ds);
        for variant in [
            Variant::Odnet,
            Variant::OdnetG,
            Variant::StlPlusG,
            Variant::StlG,
        ] {
            let model = build_model(variant, &ds);
            let scores = model.score_group(&group);
            assert_eq!(scores.len(), group.candidates.len());
            for (po, pd) in scores {
                assert!((0.0..=1.0).contains(&po), "{variant:?} p_o={po}");
                assert!((0.0..=1.0).contains(&pd));
            }
        }
    }

    #[test]
    fn joint_loss_is_finite_scalar_and_backpropagates() {
        let ds = dataset();
        let group = sample_group(&ds);
        let model = build_model(Variant::Odnet, &ds);
        let mut g = Graph::new();
        let loss = model.group_loss(&mut g, &group);
        assert!(g.value(loss).item().is_finite());
        let mut g2 = Graph::new();
        let loss2 = model.group_loss(&mut g2, &group);
        g2.backward(loss2);
        // θ must receive a gradient in the joint variant.
        let theta_grads: Vec<_> = g2
            .param_grads()
            .filter(|(id, _)| model.store.name(*id) == "theta_raw")
            .collect();
        assert_eq!(theta_grads.len(), 1);
    }

    #[test]
    fn theta_starts_at_configured_value() {
        let ds = dataset();
        let model = build_model(Variant::Odnet, &ds);
        assert!((model.theta() - 0.5).abs() < 1e-5);
        let stl = build_model(Variant::StlG, &ds);
        assert_eq!(stl.theta(), 0.5);
    }

    #[test]
    fn serving_score_is_eq_11() {
        let ds = dataset();
        let model = build_model(Variant::StlG, &ds);
        assert!((model.serving_score(0.8, 0.4) - 0.6).abs() < 1e-6);
    }

    #[test]
    fn graph_variant_differs_from_plain_variant() {
        let ds = dataset();
        let group = sample_group(&ds);
        let with_g = build_model(Variant::Odnet, &ds);
        let without_g = build_model(Variant::OdnetG, &ds);
        // Same seed, but the HSGC path transforms embeddings, so outputs
        // must differ.
        assert_ne!(with_g.score_group(&group), without_g.score_group(&group));
    }

    #[test]
    fn scoring_empty_history_group_works() {
        // Cold-start user: no long/short sequences at all.
        let ds = dataset();
        let model = build_model(Variant::Odnet, &ds);
        let group = GroupInput {
            user: UserId(0),
            day: 100,
            current_city: CityId(0),
            lt_origins: vec![],
            lt_dests: vec![],
            lt_days: vec![],
            st_origins: vec![],
            st_dests: vec![],
            st_days: vec![],
            candidates: vec![CandidateInput {
                origin: CityId(1),
                dest: CityId(2),
                xst_o: [0.0; crate::features::XST_DIM],
                xst_d: [0.0; crate::features::XST_DIM],
                label_o: 1.0,
                label_d: 1.0,
            }],
        };
        let scores = model.score_group(&group);
        assert_eq!(scores.len(), 1);
        assert!(scores[0].0.is_finite());
    }

    #[test]
    #[should_panic(expected = "graph variants require an HSG")]
    fn graph_variant_without_hsg_panics() {
        OdNetModel::new(Variant::Odnet, OdnetConfig::tiny(), 10, 5, None);
    }

    #[test]
    fn intent_extension_trains_and_scores() {
        let ds = dataset();
        let group = sample_group(&ds);
        let mut cfg = OdnetConfig::tiny();
        cfg.intents = 3;
        let model = OdNetModel::new(
            Variant::OdnetG,
            cfg,
            ds.world.num_users(),
            ds.world.num_cities(),
            None,
        );
        // Intent prototypes registered per branch.
        assert!(model.store.lookup("origin.intent").is_some());
        assert!(model.store.lookup("dest.intent").is_some());
        let scores = model.score_group(&group);
        assert!(scores.iter().all(|(a, b)| a.is_finite() && b.is_finite()));
        let mut g = Graph::new();
        let loss = model.group_loss(&mut g, &group);
        assert!(g.value(loss).item().is_finite());
        g.backward(loss);
        let intent_grad: f32 = g
            .param_grads()
            .filter(|(id, _)| model.store.name(*id).contains("intent"))
            .map(|(_, grad)| grad.sq_norm())
            .sum();
        assert!(intent_grad > 0.0, "intent prototypes got no gradient");
    }
}
