//! Preference Extraction Component (paper §IV-B, Figure 4).
//!
//! Long-term booking embeddings `E_L` and short-term click embeddings `E_S`
//! each pass a multi-head self-attention encoding layer (Eq. 3). The encoded
//! short-term matrix is average-pooled into the query `v_S`; a learnable
//! bilinear dot-product attention (Eqs. 4–5) then pools the encoded
//! long-term matrix into the user-preference summary `v_L`, focused on the
//! user's latest intentions.

use od_tensor::infer::Workspace;
use od_tensor::nn::{BilinearAttention, FrozenBilinear, FrozenMha, MultiHeadSelfAttention};
use od_tensor::{Graph, ParamStore, Shape, Tensor, Value};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// The trainable parameters of one PEC copy.
#[derive(Clone, Debug)]
pub struct PecModule {
    encoder_long: MultiHeadSelfAttention,
    encoder_short: MultiHeadSelfAttention,
    attention: BilinearAttention,
    dim: usize,
}

impl PecModule {
    /// Register the module's parameters under `name`.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        dim: usize,
        heads: usize,
        rng: &mut impl Rng,
    ) -> Self {
        PecModule {
            encoder_long: MultiHeadSelfAttention::new(
                store,
                &format!("{name}.enc_long"),
                dim,
                heads,
                rng,
            ),
            encoder_short: MultiHeadSelfAttention::new(
                store,
                &format!("{name}.enc_short"),
                dim,
                heads,
                rng,
            ),
            attention: BilinearAttention::new(store, &format!("{name}.attn"), dim, rng),
            dim,
        }
    }

    /// Embedding width `d`.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Extract the preference summary `v_L` (a length-`d` vector) from the
    /// long-term sequence embeddings `e_long` (`t×d`) and short-term
    /// sequence embeddings `e_short` (`s×d`). Either sequence may be absent
    /// (new users / quiet weeks): a missing short-term sequence degrades the
    /// query to zeros (uniform-ish attention); a missing long-term sequence
    /// yields a zero summary.
    pub fn forward(
        &self,
        g: &mut Graph,
        store: &ParamStore,
        e_long: Option<Value>,
        e_short: Option<Value>,
    ) -> Value {
        let Some(e_long) = e_long else {
            return g.input(Tensor::zeros(Shape::Vector(self.dim)));
        };
        let enc_long = self.encoder_long.forward(g, store, e_long);
        let v_s = match e_short {
            Some(e_short) => {
                let enc_short = self.encoder_short.forward(g, store, e_short);
                g.mean_rows(enc_short) // average pooling layer (Fig. 4)
            }
            None => g.input(Tensor::zeros(Shape::Vector(self.dim))),
        };
        let v_l = self.attention.forward(g, store, v_s, enc_long);
        g.reshape(v_l, Shape::Vector(self.dim))
    }

    /// Snapshot the module's current weights into a [`FrozenPec`].
    pub fn freeze(&self, store: &ParamStore) -> FrozenPec {
        FrozenPec {
            encoder_long: self.encoder_long.freeze(store),
            encoder_short: self.encoder_short.freeze(store),
            attention: self.attention.freeze(store),
            dim: self.dim,
        }
    }
}

/// Inference-time snapshot of a [`PecModule`]: plain weight matrices and a
/// tape-free forward over [`Workspace`] buffers.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct FrozenPec {
    encoder_long: FrozenMha,
    encoder_short: FrozenMha,
    attention: FrozenBilinear,
    dim: usize,
}

impl FrozenPec {
    /// Validate encoder/attention shapes against the branch dimension `d`
    /// and reject non-finite weights.
    pub(crate) fn check(
        &self,
        what: &str,
        d: usize,
    ) -> Result<(), od_tensor::nn::FrozenCheckError> {
        if self.dim != d {
            return Err(od_tensor::nn::FrozenCheckError::Shape(format!(
                "{what}: PEC dim {} does not match the embedding dim {d}",
                self.dim
            )));
        }
        self.encoder_long
            .check(&format!("{what}.encoder_long"), d)?;
        self.encoder_short
            .check(&format!("{what}.encoder_short"), d)?;
        self.attention.check(&format!("{what}.attention"), d)
    }

    /// Tape-free counterpart of [`PecModule::forward`]: sequences are
    /// `(buffer, len)` pairs over `len×d` row-major data; returns the
    /// length-`d` summary `v_L` as a workspace buffer. Absent sequences
    /// degrade exactly as in the live path (missing short → zero query,
    /// missing long → zero summary).
    pub fn forward(
        &self,
        ws: &mut Workspace,
        e_long: Option<(&[f32], usize)>,
        e_short: Option<(&[f32], usize)>,
    ) -> Vec<f32> {
        let Some((e_long, t)) = e_long else {
            return ws.take(self.dim);
        };
        let enc_long = self.encoder_long.forward(ws, e_long, t);
        let v_s = match e_short {
            Some((e_short, s)) => {
                let enc_short = self.encoder_short.forward(ws, e_short, s);
                let mut pooled = ws.take(self.dim);
                od_tensor::infer::mean_rows_into(&enc_short, s, self.dim, &mut pooled);
                ws.give(enc_short);
                pooled
            }
            None => ws.take(self.dim),
        };
        let v_l = self.attention.forward(ws, &v_s, &enc_long, t);
        ws.give(v_s);
        ws.give(enc_long);
        v_l
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use od_tensor::init;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const DIM: usize = 8;

    fn module(store: &mut ParamStore) -> PecModule {
        PecModule::new(store, "pec", DIM, 2, &mut StdRng::seed_from_u64(3))
    }

    fn seq(g: &mut Graph, rows: usize, seed: u64) -> Value {
        g.input(init::gaussian(
            Shape::Matrix(rows, DIM),
            0.0,
            0.5,
            &mut StdRng::seed_from_u64(seed),
        ))
    }

    #[test]
    fn output_is_a_d_vector() {
        let mut store = ParamStore::new();
        let pec = module(&mut store);
        assert_eq!(pec.dim(), DIM);
        let mut g = Graph::new();
        let l = seq(&mut g, 5, 1);
        let s = seq(&mut g, 3, 2);
        let v = pec.forward(&mut g, &store, Some(l), Some(s));
        assert_eq!(g.value(v).shape(), Shape::Vector(DIM));
        assert!(g.value(v).all_finite());
    }

    #[test]
    fn missing_long_term_yields_zero_summary() {
        let mut store = ParamStore::new();
        let pec = module(&mut store);
        let mut g = Graph::new();
        let s = seq(&mut g, 3, 2);
        let v = pec.forward(&mut g, &store, None, Some(s));
        assert_eq!(g.value(v).sum(), 0.0);
    }

    #[test]
    fn missing_short_term_still_attends() {
        let mut store = ParamStore::new();
        let pec = module(&mut store);
        let mut g = Graph::new();
        let l = seq(&mut g, 4, 1);
        let v = pec.forward(&mut g, &store, Some(l), None);
        assert_eq!(g.value(v).shape(), Shape::Vector(DIM));
        // The summary is a convex combination of encoded long-term rows —
        // generally nonzero.
        assert!(g.value(v).sq_norm() > 0.0);
    }

    #[test]
    fn short_term_changes_the_attention_focus() {
        // Different short-term context must generally re-weight the
        // long-term pooling (this is the mechanism the paper describes:
        // focus historical preferences on the latest intentions).
        let mut store = ParamStore::new();
        let pec = module(&mut store);
        let run = |seed: u64, store: &ParamStore| -> Vec<f32> {
            let mut g = Graph::new();
            let l = seq(&mut g, 5, 10);
            let s = seq(&mut g, 3, seed);
            let v = pec.forward(&mut g, store, Some(l), Some(s));
            g.value(v).as_slice().to_vec()
        };
        let a = run(21, &store);
        let b = run(22, &store);
        assert_ne!(a, b);
    }

    #[test]
    fn gradients_flow_to_all_pec_params() {
        let mut store = ParamStore::new();
        let pec = module(&mut store);
        let mut g = Graph::new();
        let l = seq(&mut g, 4, 1);
        let s = seq(&mut g, 2, 2);
        let v = pec.forward(&mut g, &store, Some(l), Some(s));
        let sq = g.mul(v, v);
        let loss = g.sum_all(sq);
        g.backward(loss);
        g.accumulate_param_grads(&mut store);
        for id in store.ids().collect::<Vec<_>>() {
            assert!(
                store.grad(id).sq_norm() > 0.0,
                "no gradient reached {}",
                store.name(id)
            );
        }
    }

    #[test]
    fn frozen_pec_matches_live_bitwise() {
        let mut store = ParamStore::new();
        let pec = module(&mut store);
        let frozen = pec.freeze(&store);
        let mut ws = Workspace::new();
        let long = init::gaussian(
            Shape::Matrix(5, DIM),
            0.0,
            0.5,
            &mut StdRng::seed_from_u64(31),
        );
        let short = init::gaussian(
            Shape::Matrix(3, DIM),
            0.0,
            0.5,
            &mut StdRng::seed_from_u64(32),
        );
        let cases: &[(Option<&Tensor>, Option<&Tensor>)] = &[
            (Some(&long), Some(&short)),
            (Some(&long), None),
            (None, Some(&short)),
            (None, None),
        ];
        for &(l, s) in cases {
            let mut g = Graph::new();
            let lv = l.map(|t| g.input(t.clone()));
            let sv = s.map(|t| g.input(t.clone()));
            let live = pec.forward(&mut g, &store, lv, sv);
            let out = frozen.forward(
                &mut ws,
                l.map(|t| (t.as_slice(), t.rows())),
                s.map(|t| (t.as_slice(), t.rows())),
            );
            assert_eq!(out.as_slice(), g.value(live).as_slice());
            ws.give(out);
        }
    }

    #[test]
    fn single_element_sequences_work() {
        let mut store = ParamStore::new();
        let pec = module(&mut store);
        let mut g = Graph::new();
        let l = seq(&mut g, 1, 1);
        let s = seq(&mut g, 1, 2);
        let v = pec.forward(&mut g, &store, Some(l), Some(s));
        assert!(g.value(v).all_finite());
    }
}
