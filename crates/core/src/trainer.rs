//! Mini-batch training loop with data-parallel gradient workers.
//!
//! The paper trains on Alibaba PAI with 5 parameter servers and 50 workers;
//! the single-machine analogue is synchronous data parallelism: each batch
//! of groups is sharded across threads, every thread builds per-group tapes
//! against a shared read-only parameter snapshot and produces local gradient
//! buffers, and the main thread merges them, clips, and applies one Adam
//! step. This keeps the mathematical behaviour of large-batch synchronous
//! SGD while using all cores.

use crate::features::GroupInput;
use crate::model::OdNetModel;
use od_tensor::{Adam, Graph, Optimizer, ParamStore, Tensor, Value};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::time::{Duration, Instant};

/// Optimization hyper-parameters shared by every trainable model.
#[derive(Clone, Copy, Debug)]
pub struct TrainHyper {
    /// Adam learning rate.
    pub learning_rate: f32,
    /// Training epochs.
    pub epochs: usize,
    /// Groups per mini-batch.
    pub batch_groups: usize,
    /// Data-parallel worker threads.
    pub workers: usize,
    /// Global gradient-norm clip.
    pub grad_clip: f32,
    /// Shuffling seed.
    pub seed: u64,
}

impl From<&crate::config::OdnetConfig> for TrainHyper {
    fn from(c: &crate::config::OdnetConfig) -> Self {
        TrainHyper {
            learning_rate: c.learning_rate,
            epochs: c.epochs,
            batch_groups: c.batch_groups,
            workers: c.workers,
            grad_clip: c.grad_clip,
            seed: c.seed,
        }
    }
}

/// Anything trainable by the shared mini-batch loop: ODNET, its variants,
/// and every neural baseline.
pub trait TrainableModel: Sync {
    /// The parameter store holding all trainable tensors.
    fn store(&self) -> &ParamStore;
    /// Mutable access for the optimizer step.
    fn store_mut(&mut self) -> &mut ParamStore;
    /// Record one group's scalar loss on the tape.
    fn group_loss(&self, g: &mut Graph, group: &GroupInput) -> Value;
    /// Optimization hyper-parameters.
    fn hyper(&self) -> TrainHyper;
    /// The model's learnable θ (the Eq. 8 long/short-term blend), when it
    /// has one — surfaced in per-epoch telemetry and the `od_train_theta`
    /// gauge. Models without a θ (the baselines) report `None`.
    fn probe_theta(&self) -> Option<f32> {
        None
    }
}

impl TrainableModel for OdNetModel {
    fn store(&self) -> &ParamStore {
        &self.store
    }

    fn store_mut(&mut self) -> &mut ParamStore {
        &mut self.store
    }

    fn group_loss(&self, g: &mut Graph, group: &GroupInput) -> Value {
        OdNetModel::group_loss(self, g, group)
    }

    fn hyper(&self) -> TrainHyper {
        TrainHyper::from(&self.config)
    }

    fn probe_theta(&self) -> Option<f32> {
        Some(self.theta())
    }
}

/// Why a training run was aborted: the loss or a merged gradient went
/// non-finite, so continuing would optimize on NaN gradients and silently
/// destroy every parameter. The indices name the first offending mini-batch
/// so the failure is reproducible.
#[derive(Clone, Debug, PartialEq)]
pub enum TrainError {
    /// A mini-batch produced a NaN/infinite loss.
    NonFiniteLoss {
        /// Epoch of the offending batch (0-based).
        epoch: usize,
        /// Batch index within the epoch (0-based).
        batch: usize,
        /// The offending loss value.
        loss: f64,
    },
    /// A merged gradient tensor carries NaN/±∞ (caught by
    /// [`Tensor::all_finite`] before the optimizer step).
    NonFiniteGrad {
        /// Epoch of the offending batch (0-based).
        epoch: usize,
        /// Batch index within the epoch (0-based).
        batch: usize,
        /// Dense index of the first offending parameter.
        param: usize,
    },
}

impl std::fmt::Display for TrainError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrainError::NonFiniteLoss { epoch, batch, loss } => write!(
                f,
                "non-finite loss {loss} in epoch {epoch}, batch {batch}: aborting instead of \
                 optimizing on NaN gradients"
            ),
            TrainError::NonFiniteGrad {
                epoch,
                batch,
                param,
            } => write!(
                f,
                "non-finite gradient for parameter {param} in epoch {epoch}, batch {batch}: \
                 aborting instead of applying a NaN update"
            ),
        }
    }
}

impl std::error::Error for TrainError {}

/// One epoch's telemetry row: what `train --metrics-jsonl` writes per
/// line, and what feeds the `od_train_*` registry series.
#[derive(Clone, Debug, serde::Serialize)]
pub struct EpochMetrics {
    /// Epoch index (0-based).
    pub epoch: usize,
    /// Mean per-group loss over the epoch.
    pub mean_loss: f32,
    /// The learnable θ after the epoch ([`TrainableModel::probe_theta`]);
    /// `None` for models without one.
    pub theta: Option<f32>,
    /// Mean pre-clip global gradient norm across the epoch's batches.
    pub grad_norm_mean: f32,
    /// Largest pre-clip global gradient norm seen in the epoch.
    pub grad_norm_max: f32,
    /// Mini-batches processed.
    pub batches: usize,
    /// Wall-clock seconds this epoch took.
    pub wall_secs: f64,
}

/// Per-epoch training telemetry.
#[derive(Clone, Debug)]
pub struct TrainReport {
    /// Mean per-group loss for each epoch.
    pub epoch_losses: Vec<f32>,
    /// Full per-epoch telemetry (losses, θ, gradient norms, timing) —
    /// `epoch_losses` remains as the compact view of the same run.
    pub epochs: Vec<EpochMetrics>,
    /// Wall-clock time of the whole run.
    pub wall_time: Duration,
    /// Groups processed per second, averaged over the run.
    pub groups_per_second: f64,
}

impl TrainReport {
    /// Final epoch's mean loss.
    pub fn final_loss(&self) -> f32 {
        *self.epoch_losses.last().expect("at least one epoch")
    }

    /// The per-epoch rows as JSON Lines — one object per epoch, newline
    /// terminated, ready to append to a metrics file.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for row in &self.epochs {
            out.push_str(&serde_json::to_string(row).expect("epoch row serializes"));
            out.push('\n');
        }
        out
    }
}

/// Registry-backed training instruments, registered once per process (the
/// trainer is a library: several sequential runs fold into the same
/// monotone series, matching the engine's Prometheus-style semantics).
struct TrainInstruments {
    epochs: od_obs::Counter,
    batches: od_obs::Counter,
    epoch_ns: od_obs::LatencyHistogram,
    /// Pre-clip global gradient norms ×10⁶ (the histogram domain is
    /// integer, so norms are recorded in micro-units: 1.0 → 1_000_000).
    grad_norm_micro: od_obs::LatencyHistogram,
    loss: od_obs::FloatGauge,
    theta: od_obs::FloatGauge,
}

fn train_instruments() -> &'static TrainInstruments {
    static INSTRUMENTS: std::sync::OnceLock<TrainInstruments> = std::sync::OnceLock::new();
    INSTRUMENTS.get_or_init(|| {
        let reg = od_obs::global();
        TrainInstruments {
            epochs: reg.counter("od_train_epochs_total", "Training epochs completed"),
            batches: reg.counter("od_train_batches_total", "Training mini-batches applied"),
            epoch_ns: reg.histogram("od_train_epoch_ns", "Wall-clock time per training epoch"),
            grad_norm_micro: reg.histogram(
                "od_train_grad_norm_micro",
                "Pre-clip global gradient norm per mini-batch, in 1e-6 units",
            ),
            loss: reg.float_gauge("od_train_loss", "Mean per-group loss of the last epoch"),
            theta: reg.float_gauge("od_train_theta", "Learnable θ after the last epoch"),
        }
    })
}

/// Worker-local gradient accumulator keyed by dense parameter index.
struct GradBuffer {
    grads: Vec<Option<Tensor>>,
    loss_sum: f64,
    groups: usize,
}

impl GradBuffer {
    fn new(num_params: usize) -> Self {
        GradBuffer {
            grads: (0..num_params).map(|_| None).collect(),
            loss_sum: 0.0,
            groups: 0,
        }
    }

    fn absorb(&mut self, graph: &Graph) {
        for (id, grad) in graph.param_grads() {
            match &mut self.grads[id.index()] {
                Some(acc) => acc.axpy(1.0, grad),
                slot @ None => *slot = Some(grad.clone()),
            }
        }
    }
}

/// Train `model` on `groups` per its hyper-parameters (epochs, batch size,
/// learning rate, workers). Deterministic for a fixed config seed and worker
/// count of 1; with multiple workers, floating-point merge order is
/// deterministic too (workers are merged in index order), so runs remain
/// reproducible.
///
/// # Panics
/// Panics with the [`TrainError`] message when the loss or a gradient goes
/// non-finite; use [`try_train`] to handle that as a typed error.
pub fn train<M: TrainableModel>(model: &mut M, groups: &[GroupInput]) -> TrainReport {
    try_train(model, groups).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible form of [`train`]: aborts with a typed [`TrainError`] naming
/// the offending epoch/batch as soon as a mini-batch loss or a merged
/// gradient goes non-finite, instead of letting Adam apply NaN updates that
/// silently destroy the model.
pub fn try_train<M: TrainableModel>(
    model: &mut M,
    groups: &[GroupInput],
) -> Result<TrainReport, TrainError> {
    assert!(!groups.is_empty(), "cannot train on zero groups");
    let hyper = model.hyper();
    let epochs = hyper.epochs;
    let batch_groups = hyper.batch_groups.max(1);
    let workers = hyper.workers.max(1);
    let mut opt = Adam::with_lr(hyper.learning_rate);
    let mut order: Vec<usize> = (0..groups.len()).collect();
    let mut rng = StdRng::seed_from_u64(hyper.seed ^ 0x7EA1);
    let mut epoch_losses = Vec::with_capacity(epochs);
    let mut epoch_rows: Vec<EpochMetrics> = Vec::with_capacity(epochs);
    let instruments = train_instruments();
    let started = Instant::now();
    for epoch in 0..epochs {
        let epoch_started = Instant::now();
        order.shuffle(&mut rng);
        let mut loss_sum = 0.0f64;
        let mut loss_groups = 0usize;
        let mut grad_norm_sum = 0.0f64;
        let mut grad_norm_max = 0.0f32;
        let mut batches = 0usize;
        for (batch_idx, batch) in order.chunks(batch_groups).enumerate() {
            let buffers = process_batch(model, groups, batch, workers);
            let store = model.store_mut();
            store.zero_grads();
            let mut batch_loss = 0.0f64;
            for buf in &buffers {
                batch_loss += buf.loss_sum;
                loss_groups += buf.groups;
                for (idx, grad) in buf.grads.iter().enumerate() {
                    if let Some(grad) = grad {
                        // Dense index: `ids().nth(idx)` here made the merge
                        // O(P²) in the parameter count.
                        let id = store.id_at(idx);
                        store.grad_mut(id).axpy(1.0, grad);
                    }
                }
            }
            if !batch_loss.is_finite() {
                return Err(TrainError::NonFiniteLoss {
                    epoch,
                    batch: batch_idx,
                    loss: batch_loss,
                });
            }
            loss_sum += batch_loss;
            // Average over the batch's samples is already inside each group
            // loss; average over groups here.
            let scale = 1.0 / batch.len() as f32;
            for (param, id) in store.ids().collect::<Vec<_>>().into_iter().enumerate() {
                let g = store.grad_mut(id);
                for v in g.as_mut_slice() {
                    *v *= scale;
                }
                if !g.all_finite() {
                    return Err(TrainError::NonFiniteGrad {
                        epoch,
                        batch: batch_idx,
                        param,
                    });
                }
            }
            // Pre-clip norm: `clip_grad_norm` recomputes it anyway, so the
            // probe is the only extra O(P) pass, and the *unclipped* norm
            // is the diagnostic one (a clipped norm saturates at the
            // configured ceiling and hides divergence).
            let norm = store.grad_norm();
            grad_norm_sum += norm as f64;
            grad_norm_max = grad_norm_max.max(norm);
            instruments
                .grad_norm_micro
                .record((norm.max(0.0) as f64 * 1e6) as u64);
            batches += 1;
            store.clip_grad_norm(hyper.grad_clip);
            opt.step(store);
        }
        let mean_loss = (loss_sum / loss_groups.max(1) as f64) as f32;
        let theta = model.probe_theta();
        let epoch_wall = epoch_started.elapsed();
        epoch_losses.push(mean_loss);
        epoch_rows.push(EpochMetrics {
            epoch,
            mean_loss,
            theta,
            grad_norm_mean: (grad_norm_sum / batches.max(1) as f64) as f32,
            grad_norm_max,
            batches,
            wall_secs: epoch_wall.as_secs_f64(),
        });
        instruments.epochs.inc();
        instruments.batches.add(batches as u64);
        instruments.epoch_ns.record_duration(epoch_wall);
        instruments.loss.set(mean_loss as f64);
        if let Some(theta) = theta {
            instruments.theta.set(theta as f64);
        }
    }
    let wall_time = started.elapsed();
    let total_groups = groups.len() * epochs;
    Ok(TrainReport {
        epoch_losses,
        epochs: epoch_rows,
        wall_time,
        groups_per_second: total_groups as f64 / wall_time.as_secs_f64().max(1e-9),
    })
}

/// Shard one batch across worker threads; each worker returns its local
/// gradient buffer.
fn process_batch<M: TrainableModel>(
    model: &M,
    groups: &[GroupInput],
    batch: &[usize],
    workers: usize,
) -> Vec<GradBuffer> {
    let num_params = model.store().len();
    let run_shard = |shard: &[usize]| -> GradBuffer {
        let mut buf = GradBuffer::new(num_params);
        // One tape per worker, reset between groups: node storage is
        // retained, so steady-state training does no tape reallocation.
        let mut g = Graph::new();
        for &gi in shard {
            let group = &groups[gi];
            if group.candidates.is_empty() {
                continue;
            }
            g.reset();
            let loss = model.group_loss(&mut g, group);
            buf.loss_sum += g.value(loss).item() as f64;
            buf.groups += 1;
            g.backward(loss);
            buf.absorb(&g);
        }
        buf
    };
    if workers <= 1 || batch.len() < 2 {
        return vec![run_shard(batch)];
    }
    let chunk = batch.len().div_ceil(workers);
    crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = batch
            .chunks(chunk)
            .map(|shard| scope.spawn(move |_| run_shard(shard)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker must not panic"))
            .collect()
    })
    .expect("crossbeam scope")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::OdnetConfig;
    use crate::features::FeatureExtractor;
    use crate::model::Variant;
    use od_data::{FliggyConfig, FliggyDataset};
    use od_hsg::HsgBuilder;

    fn setup(variant: Variant, workers: usize) -> (OdNetModel, Vec<GroupInput>) {
        let ds = FliggyDataset::generate(FliggyConfig::tiny());
        let mut cfg = OdnetConfig::tiny();
        cfg.workers = workers;
        cfg.epochs = 2;
        let hsg = variant.uses_graph().then(|| {
            let coords = ds.world.cities.iter().map(|c| c.coords).collect();
            let mut b = HsgBuilder::new(ds.world.num_users(), coords);
            for it in ds.hsg_interactions() {
                b.add_interaction(it);
            }
            b.build()
        });
        let model = OdNetModel::new(
            variant,
            cfg,
            ds.world.num_users(),
            ds.world.num_cities(),
            hsg,
        );
        let fx = FeatureExtractor::new(6, 4);
        let groups: Vec<GroupInput> = fx
            .groups_from_samples(&ds, &ds.train)
            .into_iter()
            .take(40)
            .collect();
        (model, groups)
    }

    #[test]
    fn loss_decreases_over_epochs() {
        let (mut model, groups) = setup(Variant::OdnetG, 1);
        let report = train(&mut model, &groups);
        assert_eq!(report.epoch_losses.len(), 2);
        assert!(
            report.final_loss() < report.epoch_losses[0],
            "loss did not improve: {:?}",
            report.epoch_losses
        );
        assert!(report.final_loss().is_finite());
        assert!(report.groups_per_second > 0.0);
    }

    #[test]
    fn graph_variant_trains_too() {
        let (mut model, groups) = setup(Variant::Odnet, 1);
        let report = train(&mut model, &groups);
        assert!(report.final_loss() < report.epoch_losses[0]);
    }

    #[test]
    fn parallel_training_matches_serial_loss_scale() {
        // Not bit-identical across worker counts (float summation order
        // differs inside merged buffers), but both must train successfully
        // to a similar loss.
        let (mut serial, groups) = setup(Variant::OdnetG, 1);
        let (mut parallel, _) = setup(Variant::OdnetG, 4);
        let rs = train(&mut serial, &groups);
        let rp = train(&mut parallel, &groups);
        assert!((rs.final_loss() - rp.final_loss()).abs() < 0.1);
    }

    #[test]
    fn training_moves_theta() {
        let (mut model, groups) = setup(Variant::Odnet, 1);
        let before = model.theta();
        train(&mut model, &groups);
        // θ is learnable (Eq. 8) — it must have moved off its init.
        assert_ne!(model.theta(), before);
        assert!((0.0..1.0).contains(&model.theta()));
    }

    #[test]
    #[should_panic(expected = "zero groups")]
    fn rejects_empty_training_set() {
        let (mut model, _) = setup(Variant::StlG, 1);
        train(&mut model, &[]);
    }

    #[test]
    fn non_finite_batch_aborts_with_batch_index() {
        // A NaN feature in the very first group poisons the backward pass;
        // the guard must abort epoch 0 at batch 0 instead of optimizing on
        // NaN gradients. Depending on where clamping ops launder the NaN,
        // it surfaces as a non-finite loss or a non-finite gradient — both
        // typed errors name the offending batch.
        let (mut model, mut groups) = setup(Variant::StlG, 1);
        for g in &mut groups {
            g.candidates[0].xst_o[0] = f32::NAN;
        }
        match try_train(&mut model, &groups) {
            Err(TrainError::NonFiniteLoss { epoch, batch, loss }) => {
                assert_eq!((epoch, batch), (0, 0));
                assert!(!loss.is_finite());
            }
            Err(TrainError::NonFiniteGrad { epoch, batch, .. }) => {
                assert_eq!((epoch, batch), (0, 0));
            }
            other => panic!("expected a non-finite abort, got {other:?}"),
        }
        // The abort happened before any optimizer step, so every parameter
        // is still finite.
        for id in model.store.ids().collect::<Vec<_>>() {
            assert!(model.store.value(id).all_finite(), "parameters corrupted");
        }
    }

    #[test]
    fn epoch_telemetry_rows_are_complete_and_jsonl_parses() {
        let (mut model, groups) = setup(Variant::Odnet, 1);
        let report = train(&mut model, &groups);
        assert_eq!(report.epochs.len(), report.epoch_losses.len());
        for (i, row) in report.epochs.iter().enumerate() {
            assert_eq!(row.epoch, i);
            assert_eq!(row.mean_loss, report.epoch_losses[i]);
            assert!(row.batches > 0);
            assert!(row.grad_norm_mean > 0.0, "training must have gradients");
            assert!(row.grad_norm_max >= row.grad_norm_mean);
            assert!(row.wall_secs >= 0.0);
        }
        // The full variant exposes θ in every row.
        assert!(report.epochs.iter().all(|r| r.theta.is_some()));
        assert_eq!(
            report.epochs.last().unwrap().theta,
            Some(model.theta()),
            "last row's θ is the final trained θ"
        );
        let jsonl = report.to_jsonl();
        assert_eq!(jsonl.lines().count(), report.epochs.len());
        for line in jsonl.lines() {
            let v: serde_json::Value = serde_json::from_str(line).expect("valid JSON row");
            for key in ["epoch", "mean_loss", "theta", "grad_norm_mean", "wall_secs"] {
                assert!(v.get(key).is_some(), "JSONL row missing {key}");
            }
        }
        // The registry saw the run: epochs counted, norms recorded.
        let snap = od_obs::global().snapshot();
        assert!(snap.counter("od_train_epochs_total") >= report.epochs.len() as u64);
        assert!(snap.histogram("od_train_grad_norm_micro").count() > 0);
    }

    #[test]
    fn finite_training_is_unchanged_by_the_guard() {
        let (mut model, groups) = setup(Variant::StlG, 1);
        let report = try_train(&mut model, &groups).expect("finite run trains");
        assert!(report.final_loss().is_finite());
    }
}
