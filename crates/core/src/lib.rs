//! # odnet-core — the ODNET model
//!
//! A faithful from-scratch implementation of *ODNET: A Novel Personalized
//! Origin-Destination Ranking Network for Flight Recommendation*
//! (ICDE 2022) on the `od-tensor` autograd substrate:
//!
//! - [`hsgc`] — the Heterogeneous Spatial Graph Component (Algorithm 1 with
//!   the Eq. 1 attention and Eq. 2 spatial weights), run per-sample with
//!   memoized neighborhood recursion;
//! - `frozen` — the tape-free serving artifact ([`FrozenOdNet`]): training
//!   happens on the autograd tape, serving on dense materialized tables and
//!   plain matrix kernels (see `OdNetModel::freeze`);
//! - `pec` — the Preference Extraction Component (Eq. 3 multi-head
//!   encoding, Eq. 4–5 bilinear attention over long-term behaviour queried
//!   by short-term intent);
//! - `mmoe` — the O&D Joint Learning Component (Eqs. 6–7 MMoE) and the
//!   single-task head of the STL variants;
//! - `model` — the assembled network, its four variants (ODNET, ODNET−G,
//!   STL+G, STL−G), the Eq. 8 joint loss with learnable θ, and the Eq. 11
//!   serving score;
//! - `trainer` — synchronous data-parallel mini-batch training;
//! - `eval` — the shared evaluation harness ([`OdScorer`]) used by the
//!   baselines too;
//! - `features` — dataset → model-input extraction shared by every model.
//!
//! ```no_run
//! use od_data::{FliggyConfig, FliggyDataset};
//! use od_hsg::HsgBuilder;
//! use odnet_core::{FeatureExtractor, OdNetModel, OdnetConfig, Variant};
//!
//! let ds = FliggyDataset::generate(FliggyConfig::default());
//! let coords = ds.world.cities.iter().map(|c| c.coords).collect();
//! let mut builder = HsgBuilder::new(ds.world.num_users(), coords);
//! for it in ds.hsg_interactions() {
//!     builder.add_interaction(it);
//! }
//! let config = OdnetConfig::default();
//! let fx = FeatureExtractor::new(config.max_long_seq, config.max_short_seq);
//! let mut model = OdNetModel::new(
//!     Variant::Odnet,
//!     config,
//!     ds.world.num_users(),
//!     ds.world.num_cities(),
//!     Some(builder.build()),
//! );
//! let groups = fx.groups_from_samples(&ds, &ds.train);
//! let report = odnet_core::train(&mut model, &groups);
//! println!("final loss {}", report.final_loss());
//! ```

#![warn(missing_docs)]

mod artifact;
mod config;
mod eval;
mod features;
mod frozen;
mod intent;
mod mmoe;
mod model;
mod pec;
mod trainer;

pub mod hsgc;

pub use artifact::{fnv1a_checksum, read_odz_checksum, MmapRegion, ODZ_VERSION};
pub use config::OdnetConfig;
pub use eval::{
    evaluate_auc, evaluate_on_checkin, evaluate_on_fliggy, evaluate_ranking,
    evaluate_ranking_sliced, score_groups, FliggyEvaluation, OdScorer, SlicedRanking,
};
pub use features::{
    validate_group, CandidateInput, FeatureExtractor, GroupInput, InvalidInput, Xst, XST_DIM,
};
pub use frozen::{EmbeddingView, FrozenOdNet};
pub use intent::IntentModule;
pub use mmoe::{MmoeHead, SingleTaskHead};
pub use model::{CheckpointError, GroupForward, GroupForwardBatched, OdNetModel, Variant};
pub use pec::PecModule;
pub use trainer::{
    train, try_train, EpochMetrics, TrainError, TrainHyper, TrainReport, TrainableModel,
};
