//! Heterogeneous Spatial Graph Component — Algorithm 1 of the paper.
//!
//! The HSGC produces spatial semantic embeddings for user and city ids by
//! iteratively aggregating metapath-based neighbor cities in the HSG:
//!
//! ```text
//! e⁰_v   = M_T · h_v                                      (line 1)
//! e_N    = Σ_j α_ij · e^{k-1}_j over j ∈ N¹_ρ(v)          (line 4)
//! e^k_v  = ReLU(W^k · concat(e^{k-1}_v, e_N))             (line 5)
//! ```
//!
//! with the attention weights of Eq. 1 — plain dot-product attention for
//! user nodes, spatially reweighted (Eq. 2's `w_ij`) dot-product attention
//! for city nodes. Two implementation notes, both documented deviations:
//!
//! - `h_v` are id one-hots in the paper, so `M_T · h_v` is a row of a
//!   learnable embedding table; we learn the table directly.
//! - Eq. 1 writes `α^k` in terms of `e^k`, which is circular (the `e^k`
//!   being aggregated depend on `α^k`); we follow the standard GraphSAGE /
//!   GAT reading and compute step-`k` attention from the step-`k−1`
//!   embeddings.
//!
//! Per-sample inference uses lazy recursion with memoization: only the
//! receptive field of the ids actually requested (≤ cap^K neighbor closure)
//! is computed, exactly like minibatch GraphSAGE.

use od_hsg::{CityId, DistanceMatrix, NeighborTable, Node, UserId};
use od_tensor::nn::{Embedding, Linear};
use od_tensor::{Graph, ParamStore, Shape, Tensor, Value};
use rand::Rng;
use std::collections::HashMap;

/// The trainable parameters of one HSGC copy (origin-aware over ρ₁ or
/// destination-aware over ρ₂ — the copy does not know which; the caller
/// picks the matching [`NeighborTable`]).
#[derive(Clone, Debug)]
pub struct HsgcModule {
    user_table: Embedding,
    city_table: Embedding,
    /// One `2d → d` transform per exploration step (Algorithm 1's `W^k`).
    layers: Vec<Linear>,
    dim: usize,
    depth: usize,
}

impl HsgcModule {
    /// Register the module's parameters under `name`.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        num_users: usize,
        num_cities: usize,
        dim: usize,
        depth: usize,
        rng: &mut impl Rng,
    ) -> Self {
        let user_table = Embedding::new(store, &format!("{name}.users"), num_users, dim, rng);
        let city_table = Embedding::new(store, &format!("{name}.cities"), num_cities, dim, rng);
        let layers = (0..depth)
            .map(|k| Linear::new(store, &format!("{name}.w{k}"), 2 * dim, dim, false, rng))
            .collect();
        HsgcModule {
            user_table,
            city_table,
            layers,
            dim,
            depth,
        }
    }

    /// Embedding width `d`.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Exploration depth `K`.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Materialize the depth-`K` embeddings of *every* user and city into
    /// dense tables — the train/serve split's freeze step. At serving time
    /// Algorithm 1's K-step aggregation then collapses to a table lookup.
    ///
    /// Implemented by running the live tape forward once over all ids (one
    /// shared memoized pass), so the tables are bit-identical to what a
    /// per-request recursion would produce — not a reimplementation that
    /// could drift.
    pub fn materialize(
        &self,
        store: &ParamStore,
        neighbors: &NeighborTable,
        dist: &DistanceMatrix,
    ) -> (Tensor, Tensor) {
        let mut g = Graph::new();
        let mut fwd = self.begin(&mut g, store, neighbors, dist);
        // Cities first: user embeddings recurse into city embeddings, so the
        // memo is already warm when the user loop runs.
        let mut cities = Tensor::zeros(Shape::Matrix(self.city_table.vocab(), self.dim));
        for c in 0..self.city_table.vocab() {
            let v = fwd.city(&mut g, store, CityId(c as u32));
            cities.row_mut(c).copy_from_slice(g.value(v).as_slice());
        }
        let mut users = Tensor::zeros(Shape::Matrix(self.user_table.vocab(), self.dim));
        for u in 0..self.user_table.vocab() {
            let v = fwd.user(&mut g, store, UserId(u as u32));
            users.row_mut(u).copy_from_slice(g.value(v).as_slice());
        }
        (users, cities)
    }

    /// Start a memoized forward pass on `g`. The neighbor table selects the
    /// metapath (ρ₁ → origin-aware, ρ₂ → destination-aware); `dist`
    /// supplies Eq. 2's spatial weights.
    pub fn begin<'m>(
        &'m self,
        g: &mut Graph,
        store: &ParamStore,
        neighbors: &'m NeighborTable,
        dist: &'m DistanceMatrix,
    ) -> HsgcForward<'m> {
        // Snapshot both tables once per graph; every level-0 lookup gathers
        // from these shared nodes instead of re-cloning the tables.
        let users = g.param(store, self.user_table.table());
        let cities = g.param(store, self.city_table.table());
        HsgcForward {
            module: self,
            neighbors,
            dist,
            users,
            cities,
            memo: HashMap::new(),
        }
    }
}

/// One memoized HSGC forward pass over a single autograd graph.
pub struct HsgcForward<'m> {
    module: &'m HsgcModule,
    neighbors: &'m NeighborTable,
    dist: &'m DistanceMatrix,
    users: Value,
    cities: Value,
    memo: HashMap<(Node, usize), Value>,
}

impl HsgcForward<'_> {
    /// Final (depth-`K`) spatial semantic embedding of a user id, as a
    /// length-`d` vector.
    pub fn user(&mut self, g: &mut Graph, store: &ParamStore, u: UserId) -> Value {
        self.embed(g, store, Node::User(u), self.module.depth)
    }

    /// Final spatial semantic embedding of a city id, as a length-`d`
    /// vector.
    pub fn city(&mut self, g: &mut Graph, store: &ParamStore, c: CityId) -> Value {
        self.embed(g, store, Node::City(c), self.module.depth)
    }

    /// Embeddings of a city sequence stacked into a `[t × d]` matrix
    /// (`None` when the sequence is empty).
    pub fn cities(&mut self, g: &mut Graph, store: &ParamStore, ids: &[CityId]) -> Option<Value> {
        if ids.is_empty() {
            return None;
        }
        let rows: Vec<Value> = ids.iter().map(|&c| self.city(g, store, c)).collect();
        Some(g.concat_rows(&rows))
    }

    /// `e^k_v` with memoization.
    fn embed(&mut self, g: &mut Graph, store: &ParamStore, node: Node, k: usize) -> Value {
        if let Some(&v) = self.memo.get(&(node, k)) {
            return v;
        }
        let value = if k == 0 {
            // Line 1: M_T · h_v — a learnable table row.
            let (table, idx) = match node {
                Node::User(u) => (self.users, u.index()),
                Node::City(c) => (self.cities, c.index()),
            };
            let row = g.gather_rows(table, &[idx]);
            g.reshape(row, Shape::Vector(self.module.dim))
        } else {
            let e_self = self.embed(g, store, node, k - 1);
            let nbr_ids: Vec<CityId> = self.neighbors.of(node).to_vec();
            let e_nbr = if nbr_ids.is_empty() {
                // Cold node: aggregate over the empty neighborhood is zero.
                g.input(Tensor::zeros(Shape::Vector(self.module.dim)))
            } else {
                let rows: Vec<Value> = nbr_ids
                    .iter()
                    .map(|&c| self.embed(g, store, Node::City(c), k - 1))
                    .collect();
                let nbrs = g.concat_rows(&rows); // m×d
                let alpha = self.attention(g, node, e_self, nbrs, &nbr_ids);
                let pooled = g.matmul(alpha, nbrs); // 1×d
                g.reshape(pooled, Shape::Vector(self.module.dim))
            };
            // Line 5: ReLU(W^k · concat(e_self, e_N)).
            let cat = g.concat_cols(&[e_self, e_nbr]); // vector 2d
            let lin = self.module.layers[k - 1].forward(g, store, cat);
            let act = g.relu(lin);
            g.reshape(act, Shape::Vector(self.module.dim))
        };
        self.memo.insert((node, k), value);
        value
    }

    /// Eq. 1 attention over the neighbor rows: `softmax(ReLU(e_i · e_j))`
    /// for user nodes, `softmax(ReLU(w_ij · e_i · e_j))` for city nodes.
    /// Returns a `1 × m` weight row.
    fn attention(
        &self,
        g: &mut Graph,
        node: Node,
        e_self: Value,
        nbrs: Value,
        nbr_ids: &[CityId],
    ) -> Value {
        let nbrs_t = g.transpose(nbrs); // d×m
        let scores = g.matmul(e_self, nbrs_t); // 1×m
        let weighted = match node {
            Node::User(_) => scores,
            Node::City(c) => {
                // Spatial reweighting inside the ReLU (Eq. 1, city case).
                let w: Vec<f32> = nbr_ids
                    .iter()
                    .map(|&j| self.dist.weight(c.index(), j.index()))
                    .collect();
                let wt = g.input(Tensor::matrix(1, w.len(), &w));
                g.mul(scores, wt)
            }
        };
        let act = g.relu(weighted);
        g.softmax_rows(act)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use od_hsg::{GeoPoint, HsgBuilder, Interaction, Metapath};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const DIM: usize = 6;

    fn toy_hsg() -> od_hsg::Hsg {
        let coords = (0..5)
            .map(|i| GeoPoint {
                lon: i as f64,
                lat: (i * i) as f64 * 0.1,
            })
            .collect();
        let mut b = HsgBuilder::new(3, coords);
        for (u, o, d) in [(0, 0, 2), (0, 1, 3), (1, 1, 2), (2, 0, 4)] {
            b.add_interaction(Interaction {
                user: UserId(u),
                origin: CityId(o),
                dest: CityId(d),
            });
        }
        b.build()
    }

    fn module(store: &mut ParamStore, depth: usize) -> HsgcModule {
        let mut rng = StdRng::seed_from_u64(5);
        HsgcModule::new(store, "hsgc", 3, 5, DIM, depth, &mut rng)
    }

    #[test]
    fn embeddings_have_declared_shape() {
        let hsg = toy_hsg();
        let mut store = ParamStore::new();
        let m = module(&mut store, 2);
        assert_eq!((m.dim(), m.depth()), (DIM, 2));
        let mut rng = StdRng::seed_from_u64(1);
        let table = hsg.neighbor_table(Metapath::RHO1, 5, &mut rng);
        let mut g = Graph::new();
        let mut fwd = m.begin(&mut g, &store, &table, hsg.distances());
        let eu = fwd.user(&mut g, &store, UserId(0));
        let ec = fwd.city(&mut g, &store, CityId(1));
        assert_eq!(g.value(eu).shape(), Shape::Vector(DIM));
        assert_eq!(g.value(ec).shape(), Shape::Vector(DIM));
        assert!(g.value(eu).all_finite());
    }

    #[test]
    fn depth_zero_is_plain_table_row() {
        let hsg = toy_hsg();
        let mut store = ParamStore::new();
        let m = module(&mut store, 0);
        let mut rng = StdRng::seed_from_u64(1);
        let table = hsg.neighbor_table(Metapath::RHO1, 5, &mut rng);
        let raw = store
            .value(store.lookup("hsgc.users").unwrap())
            .row(1)
            .to_vec();
        let mut g = Graph::new();
        let mut fwd = m.begin(&mut g, &store, &table, hsg.distances());
        let e = fwd.user(&mut g, &store, UserId(1));
        assert_eq!(g.value(e).as_slice(), &raw[..]);
    }

    #[test]
    fn memoization_dedupes_repeated_nodes() {
        let hsg = toy_hsg();
        let mut store = ParamStore::new();
        let m = module(&mut store, 2);
        let mut rng = StdRng::seed_from_u64(1);
        let table = hsg.neighbor_table(Metapath::RHO1, 5, &mut rng);

        let mut g1 = Graph::new();
        let mut fwd = m.begin(&mut g1, &store, &table, hsg.distances());
        fwd.city(&mut g1, &store, CityId(0));
        let single = g1.len();
        // Requesting the same city twice must not grow the tape.
        fwd.city(&mut g1, &store, CityId(0));
        assert_eq!(g1.len(), single, "memo must prevent recomputation");
    }

    #[test]
    fn sequence_stacking_shape_and_empty() {
        let hsg = toy_hsg();
        let mut store = ParamStore::new();
        let m = module(&mut store, 1);
        let mut rng = StdRng::seed_from_u64(1);
        let table = hsg.neighbor_table(Metapath::RHO2, 5, &mut rng);
        let mut g = Graph::new();
        let mut fwd = m.begin(&mut g, &store, &table, hsg.distances());
        let seq = fwd
            .cities(&mut g, &store, &[CityId(2), CityId(3), CityId(2)])
            .unwrap();
        assert_eq!(g.value(seq).shape(), Shape::Matrix(3, DIM));
        assert!(fwd.cities(&mut g, &store, &[]).is_none());
    }

    #[test]
    fn gradients_reach_tables_and_layers() {
        let hsg = toy_hsg();
        let mut store = ParamStore::new();
        let m = module(&mut store, 2);
        let mut rng = StdRng::seed_from_u64(1);
        let table = hsg.neighbor_table(Metapath::RHO1, 5, &mut rng);
        let mut g = Graph::new();
        let mut fwd = m.begin(&mut g, &store, &table, hsg.distances());
        let e = fwd.user(&mut g, &store, UserId(0));
        let sq = g.mul(e, e);
        let loss = g.sum_all(sq);
        g.backward(loss);
        g.accumulate_param_grads(&mut store);
        // User 0's departure neighborhood touches cities {0, 1}, so the city
        // table, the user table, and both W layers must all receive signal.
        for name in ["hsgc.users", "hsgc.cities", "hsgc.w0.w", "hsgc.w1.w"] {
            let id = store.lookup(name).unwrap();
            assert!(store.grad(id).sq_norm() > 0.0, "no gradient reached {name}");
        }
    }

    #[test]
    fn exploration_differs_from_plain_embedding() {
        // With depth > 0 the embedding of a user must depend on its
        // neighbors' level-0 rows, i.e. differ from any fixed transform of
        // its own row alone. We check this by perturbing a neighbor city row
        // and observing the user embedding change.
        let hsg = toy_hsg();
        let mut store = ParamStore::new();
        let m = module(&mut store, 1);
        let mut rng = StdRng::seed_from_u64(1);
        let table = hsg.neighbor_table(Metapath::RHO1, 5, &mut rng);

        let embed_user0 = |store: &ParamStore| -> Vec<f32> {
            let mut g = Graph::new();
            let mut fwd = m.begin(&mut g, store, &table, hsg.distances());
            let e = fwd.user(&mut g, store, UserId(0));
            g.value(e).as_slice().to_vec()
        };
        let before = embed_user0(&store);
        let cid = store.lookup("hsgc.cities").unwrap();
        store.value_mut(cid).row_mut(0)[0] += 1.0; // city 0 ∈ N¹_ρ1(u0)
        let after = embed_user0(&store);
        assert_ne!(before, after, "neighbor perturbation must propagate");
    }

    #[test]
    fn materialized_tables_match_per_request_recursion_bitwise() {
        let hsg = toy_hsg();
        let mut store = ParamStore::new();
        let m = module(&mut store, 2);
        let mut rng = StdRng::seed_from_u64(1);
        let table = hsg.neighbor_table(Metapath::RHO1, 5, &mut rng);
        let (users, cities) = m.materialize(&store, &table, hsg.distances());
        assert_eq!(users.shape(), Shape::Matrix(3, DIM));
        assert_eq!(cities.shape(), Shape::Matrix(5, DIM));
        for u in 0..3u32 {
            let mut g = Graph::new();
            let mut fwd = m.begin(&mut g, &store, &table, hsg.distances());
            let e = fwd.user(&mut g, &store, UserId(u));
            assert_eq!(g.value(e).as_slice(), users.row(u as usize));
        }
        for c in 0..5u32 {
            let mut g = Graph::new();
            let mut fwd = m.begin(&mut g, &store, &table, hsg.distances());
            let e = fwd.city(&mut g, &store, CityId(c));
            assert_eq!(g.value(e).as_slice(), cities.row(c as usize));
        }
    }

    #[test]
    fn cold_nodes_with_no_neighbors_still_embed() {
        let hsg = toy_hsg();
        let mut store = ParamStore::new();
        let m = module(&mut store, 2);
        let mut rng = StdRng::seed_from_u64(1);
        // City 4 has no ρ1 city-neighbors beyond u2's {0}; city 3 has no
        // arrivals in common with anyone — exercise both metapaths.
        let table = hsg.neighbor_table(Metapath::RHO2, 5, &mut rng);
        let mut g = Graph::new();
        let mut fwd = m.begin(&mut g, &store, &table, hsg.distances());
        let e = fwd.city(&mut g, &store, CityId(4));
        assert!(g.value(e).all_finite());
        assert_eq!(g.value(e).shape(), Shape::Vector(DIM));
    }
}
