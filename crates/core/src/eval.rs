//! Evaluation harness shared by ODNET and every baseline.
//!
//! Anything that can score a [`GroupInput`] implements [`OdScorer`]; the
//! harness then computes the paper's offline metrics (AUC-O / AUC-D over
//! labelled samples, HR@k / MRR@k over ranking cases) and drives the online
//! A/B simulator.

use crate::features::{FeatureExtractor, GroupInput};
use crate::model::OdNetModel;
use od_data::{auc, rank_of_truth, RankingAccumulator, RankingMetrics};
use od_tensor::Graph;

/// A model that scores candidate OD pairs under a user context.
///
/// `Sync` so the evaluation harness can score groups from several threads
/// (models are immutable at inference time).
pub trait OdScorer: Sync {
    /// Per-candidate `(p^O, p^D)` probabilities for one group.
    fn score_group(&self, group: &GroupInput) -> Vec<(f32, f32)>;

    /// Score a group reusing a caller-provided graph tape. The default
    /// ignores the graph (baselines don't build one); [`OdNetModel`]
    /// overrides this so the evaluation loop reuses one tape per worker.
    fn score_group_reusing(&self, g: &mut Graph, group: &GroupInput) -> Vec<(f32, f32)> {
        let _ = g;
        self.score_group(group)
    }

    /// Score a group into a caller-provided buffer (cleared first), so a
    /// serving loop can reuse one output allocation across requests. The
    /// default copies through [`OdScorer::score_group`]; allocation-free
    /// scorers (the frozen artifact) override it with a true in-place write.
    fn score_group_into(&self, group: &GroupInput, out: &mut Vec<(f32, f32)>) {
        out.clear();
        out.extend(self.score_group(group));
    }

    /// Combine per-side probabilities into one ranking score (Eq. 11).
    /// Default is the θ = 0.5 blend; ODNET overrides with its learned θ.
    fn serving_score(&self, p_o: f32, p_d: f32) -> f32 {
        0.5 * (p_o + p_d)
    }

    /// Display name for result tables.
    fn name(&self) -> String;
}

impl OdScorer for OdNetModel {
    fn score_group(&self, group: &GroupInput) -> Vec<(f32, f32)> {
        OdNetModel::score_group(self, group)
    }

    fn score_group_reusing(&self, g: &mut Graph, group: &GroupInput) -> Vec<(f32, f32)> {
        self.score_group_with(g, group)
    }

    fn serving_score(&self, p_o: f32, p_d: f32) -> f32 {
        OdNetModel::serving_score(self, p_o, p_d)
    }

    fn name(&self) -> String {
        self.variant.name().to_string()
    }
}

/// Score many groups in parallel (order-preserving).
pub fn score_groups(scorer: &dyn OdScorer, groups: &[GroupInput]) -> Vec<Vec<(f32, f32)>> {
    let workers = std::thread::available_parallelism()
        .map(|n| n.get().min(8))
        .unwrap_or(1);
    if workers <= 1 || groups.len() < 4 {
        let mut tape = Graph::new();
        return groups
            .iter()
            .map(|g| scorer.score_group_reusing(&mut tape, g))
            .collect();
    }
    let chunk = groups.len().div_ceil(workers);
    crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = groups
            .chunks(chunk)
            .map(|shard| {
                scope.spawn(move |_| {
                    let mut tape = Graph::new();
                    shard
                        .iter()
                        .map(|g| scorer.score_group_reusing(&mut tape, g))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("scoring worker must not panic"))
            .collect()
    })
    .expect("crossbeam scope")
}

/// AUC over the O-labels and D-labels of labelled groups (the paper's
/// AUC-O / AUC-D columns).
pub fn evaluate_auc(scorer: &dyn OdScorer, groups: &[GroupInput]) -> (f64, f64) {
    let mut scores_o = Vec::new();
    let mut labels_o = Vec::new();
    let mut scores_d = Vec::new();
    let mut labels_d = Vec::new();
    let all_scores = score_groups(scorer, groups);
    for (group, scored) in groups.iter().zip(all_scores) {
        for (cand, (po, pd)) in group.candidates.iter().zip(scored) {
            scores_o.push(po);
            labels_o.push(cand.label_o);
            scores_d.push(pd);
            labels_d.push(cand.label_d);
        }
    }
    (auc(&scores_o, &labels_o), auc(&scores_d, &labels_d))
}

/// HR@k / MRR@k over ranking groups: candidates are ranked by the scorer's
/// serving score; the position of the labelled true candidate is recorded.
pub fn evaluate_ranking(scorer: &dyn OdScorer, groups: &[GroupInput]) -> RankingMetrics {
    let mut acc = RankingAccumulator::new();
    let all_scores = score_groups(scorer, groups);
    for (group, scored) in groups.iter().zip(all_scores) {
        if group.candidates.is_empty() {
            continue;
        }
        let combined: Vec<f32> = scored
            .iter()
            .map(|&(po, pd)| scorer.serving_score(po, pd))
            .collect();
        let true_index = group
            .candidates
            .iter()
            .position(|c| c.label_o > 0.5 && c.label_d > 0.5)
            .or_else(|| group.candidates.iter().position(|c| c.label_d > 0.5));
        if let Some(true_index) = true_index {
            acc.push(rank_of_truth(&combined, true_index));
        }
    }
    RankingMetrics::from_accumulator(&acc)
}

/// Full offline evaluation of a scorer on a Fliggy-style dataset: AUC over
/// test samples plus ranking metrics over the evaluation cases.
pub fn evaluate_on_fliggy(
    scorer: &dyn OdScorer,
    ds: &od_data::FliggyDataset,
    fx: &FeatureExtractor,
) -> FliggyEvaluation {
    let test_groups = fx.groups_from_samples(ds, &ds.test);
    let (auc_o, auc_d) = evaluate_auc(scorer, &test_groups);
    let eval_groups: Vec<GroupInput> = ds
        .eval_cases
        .iter()
        .map(|c| fx.group_from_eval_case(ds, c))
        .collect();
    let ranking = evaluate_ranking(scorer, &eval_groups);
    FliggyEvaluation {
        auc_o,
        auc_d,
        ranking,
    }
}

/// Full offline evaluation on a check-in dataset (single destination task:
/// AUC-D only, as in Table IV).
pub fn evaluate_on_checkin(
    scorer: &dyn OdScorer,
    ds: &od_data::CheckinDataset,
    fx: &FeatureExtractor,
) -> FliggyEvaluation {
    let test_groups = fx.checkin_groups(ds, &ds.test);
    let (_, auc_d) = evaluate_auc(scorer, &test_groups);
    let eval_groups: Vec<GroupInput> = ds
        .eval_cases
        .iter()
        .map(|c| fx.checkin_eval_group(ds, c))
        .collect();
    let ranking = evaluate_ranking(scorer, &eval_groups);
    FliggyEvaluation {
        auc_o: auc_d,
        auc_d,
        ranking,
    }
}

/// The metric bundle of one table row.
#[derive(Clone, Copy, Debug)]
pub struct FliggyEvaluation {
    /// AUC of the origin task.
    pub auc_o: f64,
    /// AUC of the destination task.
    pub auc_d: f64,
    /// HR@k / MRR@k bundle.
    pub ranking: RankingMetrics,
}

/// Ranking metrics split by whether the true destination was already in the
/// user's visible history — the **exploitation** slice (repeat visits, any
/// memorizing model can win) versus the **exploration** slice (the user
/// books an unvisited city; this is the regime the paper's HSG targets).
#[derive(Clone, Copy, Debug)]
pub struct SlicedRanking {
    /// Cases whose true destination appears in the group's long-term
    /// destination history.
    pub exploit: RankingMetrics,
    /// Number of exploitation cases.
    pub exploit_n: usize,
    /// Cases whose true destination is unvisited.
    pub explore: RankingMetrics,
    /// Number of exploration cases.
    pub explore_n: usize,
}

/// Rank evaluation groups split into exploitation/exploration slices.
pub fn evaluate_ranking_sliced(scorer: &dyn OdScorer, groups: &[GroupInput]) -> SlicedRanking {
    let mut exploit = RankingAccumulator::new();
    let mut explore = RankingAccumulator::new();
    for group in groups {
        if group.candidates.is_empty() {
            continue;
        }
        let Some(true_index) = group
            .candidates
            .iter()
            .position(|c| c.label_o > 0.5 && c.label_d > 0.5)
            .or_else(|| group.candidates.iter().position(|c| c.label_d > 0.5))
        else {
            continue;
        };
        let combined: Vec<f32> = scorer
            .score_group(group)
            .iter()
            .map(|&(po, pd)| scorer.serving_score(po, pd))
            .collect();
        let rank = rank_of_truth(&combined, true_index);
        let true_dest = group.candidates[true_index].dest;
        if group.lt_dests.contains(&true_dest) {
            exploit.push(rank);
        } else {
            explore.push(rank);
        }
    }
    SlicedRanking {
        exploit: RankingMetrics::from_accumulator(&exploit),
        exploit_n: exploit.len(),
        explore: RankingMetrics::from_accumulator(&explore),
        explore_n: explore.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::CandidateInput;
    use od_hsg::{CityId, UserId};

    /// A scorer that knows the truth (scores the labelled candidate
    /// highest) and one that anti-knows it.
    struct Oracle {
        invert: bool,
    }

    impl OdScorer for Oracle {
        fn score_group(&self, group: &GroupInput) -> Vec<(f32, f32)> {
            group
                .candidates
                .iter()
                .enumerate()
                .map(|(i, c)| {
                    let base = if self.invert {
                        1.0 - c.label_o
                    } else {
                        c.label_o
                    };
                    // Small index-dependent jitter to avoid pure ties.
                    let p = 0.8 * base + 0.01 * (i as f32 % 7.0) / 7.0;
                    (p, p)
                })
                .collect()
        }

        fn name(&self) -> String {
            "oracle".into()
        }
    }

    fn group(n: usize, true_index: usize) -> GroupInput {
        GroupInput {
            user: UserId(0),
            day: 10,
            current_city: CityId(0),
            lt_origins: vec![],
            lt_dests: vec![],
            lt_days: vec![],
            st_origins: vec![],
            st_dests: vec![],
            st_days: vec![],
            candidates: (0..n)
                .map(|i| CandidateInput {
                    origin: CityId(i as u32),
                    dest: CityId((i + 1) as u32),
                    xst_o: [0.0; crate::features::XST_DIM],
                    xst_d: [0.0; crate::features::XST_DIM],
                    label_o: (i == true_index) as u32 as f32,
                    label_d: (i == true_index) as u32 as f32,
                })
                .collect(),
        }
    }

    #[test]
    fn oracle_gets_perfect_metrics() {
        let groups: Vec<GroupInput> = (0..5).map(|i| group(10, i % 10)).collect();
        let oracle = Oracle { invert: false };
        let (auc_o, auc_d) = evaluate_auc(&oracle, &groups);
        assert!(auc_o > 0.99 && auc_d > 0.99);
        let ranking = evaluate_ranking(&oracle, &groups);
        assert_eq!(ranking.hr1, 1.0);
        assert_eq!(ranking.mrr10, 1.0);
    }

    #[test]
    fn inverted_oracle_gets_terrible_metrics() {
        let groups: Vec<GroupInput> = (0..5).map(|i| group(10, i % 10)).collect();
        let inverted = Oracle { invert: true };
        let (auc_o, _) = evaluate_auc(&inverted, &groups);
        assert!(auc_o < 0.2);
        let ranking = evaluate_ranking(&inverted, &groups);
        assert_eq!(ranking.hr1, 0.0);
    }

    #[test]
    fn default_serving_score_is_mean() {
        let oracle = Oracle { invert: false };
        assert!((oracle.serving_score(0.2, 0.8) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn empty_groups_are_skipped() {
        let mut g = group(5, 0);
        g.candidates.clear();
        let oracle = Oracle { invert: false };
        let (a, b) = evaluate_auc(&oracle, &[g.clone()]);
        assert_eq!((a, b), (0.5, 0.5));
        let r = evaluate_ranking(&oracle, &[g]);
        assert_eq!(r.hr10, 0.0);
    }
}
