//! O&D Joint Learning Component (paper §IV-C, Figure 5) — a Multi-gate
//! Mixture-of-Experts head, plus the single-task head used by the STL
//! ablation variants.
//!
//! Both heads emit *logits*; training applies the numerically stable
//! BCE-with-logits (the fold of Eqs. 9–10), and serving applies the sigmoid
//! to recover the paper's probabilities `p^O_c`, `p^D_c`.

use od_tensor::infer::{self, Workspace};
use od_tensor::nn::{Activation, FrozenLinear, FrozenMlp, Linear, Mlp};
use od_tensor::{Graph, ParamStore, Value};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// The MMoE joint-learning head: `experts` expert networks shared by both
/// tasks, two softmax gates (one per task), two tower networks.
#[derive(Clone, Debug)]
pub struct MmoeHead {
    experts: Vec<Linear>,
    gate_o: Linear,
    gate_d: Linear,
    tower_o: Mlp,
    tower_d: Mlp,
    expert_dim: usize,
}

impl MmoeHead {
    /// Register the head under `name`. `input_dim` is `2·d_q` (the width of
    /// `q⊕ = concat(q^O, q^D)`); `expert_dim` is `d_r`.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        input_dim: usize,
        num_experts: usize,
        expert_dim: usize,
        tower_hidden: usize,
        rng: &mut impl Rng,
    ) -> Self {
        assert!(num_experts >= 1, "need at least one expert");
        // Eq. 6: r_i = W^{expert_i} · q⊕. The paper calls the experts MLPs;
        // we follow Eq. 6's linear form plus a ReLU (the minimal MLP).
        let experts = (0..num_experts)
            .map(|i| {
                Linear::new(
                    store,
                    &format!("{name}.expert{i}"),
                    input_dim,
                    expert_dim,
                    true,
                    rng,
                )
            })
            .collect();
        // Eq. 7: r_g = softmax(W^{gate} · q⊕), bias-free as written.
        let gate_o = Linear::new(
            store,
            &format!("{name}.gate_o"),
            input_dim,
            num_experts,
            false,
            rng,
        );
        let gate_d = Linear::new(
            store,
            &format!("{name}.gate_d"),
            input_dim,
            num_experts,
            false,
            rng,
        );
        // Towers: "nonlinear transformation of the input with a sigmoid
        // layer" — one hidden ReLU layer, logit output.
        let tower_dims = [expert_dim, tower_hidden, 1];
        let tower_o = Mlp::new(
            store,
            &format!("{name}.tower_o"),
            &tower_dims,
            Activation::Relu,
            Activation::None,
            rng,
        );
        let tower_d = Mlp::new(
            store,
            &format!("{name}.tower_d"),
            &tower_dims,
            Activation::Relu,
            Activation::None,
            rng,
        );
        MmoeHead {
            experts,
            gate_o,
            gate_d,
            tower_o,
            tower_d,
            expert_dim,
        }
    }

    /// Forward `q⊕` (a `1×2d_q` row or vector) to the pair of task logits
    /// `(logit_O, logit_D)`, each `1×1`.
    pub fn forward(&self, g: &mut Graph, store: &ParamStore, q_cat: Value) -> (Value, Value) {
        // Expert outputs stacked into [experts × d_r].
        let outs: Vec<Value> = self
            .experts
            .iter()
            .map(|e| {
                let lin = e.forward(g, store, q_cat);
                g.relu(lin)
            })
            .collect();
        let expert_matrix = g.concat_rows(&outs);
        let mix = |g: &mut Graph, gate: &Linear, tower: &Mlp| -> Value {
            let gate_logits = gate.forward(g, store, q_cat); // 1×experts
            let weights = g.softmax_rows(gate_logits);
            // Sum pooling with gate weights (Fig. 5): weights · experts.
            let r = g.matmul(weights, expert_matrix); // 1×d_r
            tower.forward(g, store, r) // 1×1 logit
        };
        let logit_o = mix(g, &self.gate_o, &self.tower_o);
        let logit_d = mix(g, &self.gate_d, &self.tower_d);
        (logit_o, logit_d)
    }

    /// Batched forward: `q_cat` is `[n × 2d_q]` with one row per candidate;
    /// output is the pair of `n×1` logit columns. Each expert, gate, and
    /// tower runs one matmul for the whole group. The gate mixing unrolls
    /// the `weights · experts` product over experts in ascending order —
    /// per element the same f32 accumulation order as [`MmoeHead::forward`],
    /// so the two paths agree to rounding.
    pub fn forward_batched(
        &self,
        g: &mut Graph,
        store: &ParamStore,
        q_cat: Value,
    ) -> (Value, Value) {
        // Expert outputs, each [n × d_r].
        let outs: Vec<Value> = self
            .experts
            .iter()
            .map(|e| {
                let lin = e.forward(g, store, q_cat);
                g.relu(lin)
            })
            .collect();
        let mix = |g: &mut Graph, gate: &Linear, tower: &Mlp| -> Value {
            let gate_logits = gate.forward(g, store, q_cat); // n×experts
            let weights = g.softmax_rows(gate_logits);
            let mut r: Option<Value> = None;
            for (e, &out_e) in outs.iter().enumerate() {
                let w_e = g.slice_cols(weights, e, e + 1); // one weight per row
                let scaled = g.scale_rows(out_e, w_e); // n×d_r
                r = Some(match r {
                    Some(acc) => g.add(acc, scaled),
                    None => scaled,
                });
            }
            let r = r.expect("at least one expert");
            tower.forward(g, store, r) // n×1 logits
        };
        let logit_o = mix(g, &self.gate_o, &self.tower_o);
        let logit_d = mix(g, &self.gate_d, &self.tower_d);
        (logit_o, logit_d)
    }

    /// Expert output width `d_r`.
    pub fn expert_dim(&self) -> usize {
        self.expert_dim
    }

    /// Gate weights for diagnostics/tests: `(gate_O, gate_D)` rows over
    /// experts (each sums to 1).
    pub fn gate_weights(&self, g: &mut Graph, store: &ParamStore, q_cat: Value) -> (Value, Value) {
        let lo = self.gate_o.forward(g, store, q_cat);
        let go = g.softmax_rows(lo);
        let ld = self.gate_d.forward(g, store, q_cat);
        let gd = g.softmax_rows(ld);
        (go, gd)
    }

    /// Snapshot the head's current weights into a [`FrozenMmoeHead`].
    pub fn freeze(&self, store: &ParamStore) -> FrozenMmoeHead {
        FrozenMmoeHead {
            experts: self.experts.iter().map(|e| e.freeze(store)).collect(),
            gate_o: self.gate_o.freeze(store),
            gate_d: self.gate_d.freeze(store),
            tower_o: self.tower_o.freeze(store),
            tower_d: self.tower_d.freeze(store),
            expert_dim: self.expert_dim,
        }
    }
}

/// Inference-time snapshot of an [`MmoeHead`].
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct FrozenMmoeHead {
    experts: Vec<FrozenLinear>,
    gate_o: FrozenLinear,
    gate_d: FrozenLinear,
    tower_o: FrozenMlp,
    tower_d: FrozenMlp,
    expert_dim: usize,
}

impl FrozenMmoeHead {
    /// Validate expert/gate/tower shapes against the concatenated task
    /// dimension and the configured expert pool.
    pub(crate) fn check(
        &self,
        what: &str,
        q_cat_dim: usize,
        experts: usize,
        expert_dim: usize,
    ) -> Result<(), od_tensor::nn::FrozenCheckError> {
        use od_tensor::nn::FrozenCheckError;
        if self.experts.len() != experts {
            return Err(FrozenCheckError::Shape(format!(
                "{what}: {} experts but the config declares {experts}",
                self.experts.len()
            )));
        }
        if self.expert_dim != expert_dim {
            return Err(FrozenCheckError::Shape(format!(
                "{what}: expert width {} but the config declares {expert_dim}",
                self.expert_dim
            )));
        }
        for (e, expert) in self.experts.iter().enumerate() {
            expert.check(&format!("{what}.expert{e}"))?;
            if expert.in_dim() != q_cat_dim || expert.out_dim() != expert_dim {
                return Err(FrozenCheckError::Shape(format!(
                    "{what}.expert{e}: maps {}→{}, expected {q_cat_dim}→{expert_dim}",
                    expert.in_dim(),
                    expert.out_dim()
                )));
            }
        }
        for (name, gate) in [("gate_o", &self.gate_o), ("gate_d", &self.gate_d)] {
            gate.check(&format!("{what}.{name}"))?;
            if gate.in_dim() != q_cat_dim || gate.out_dim() != experts {
                return Err(FrozenCheckError::Shape(format!(
                    "{what}.{name}: maps {}→{}, expected {q_cat_dim}→{experts}",
                    gate.in_dim(),
                    gate.out_dim()
                )));
            }
        }
        self.tower_o
            .check(&format!("{what}.tower_o"), expert_dim, 1)?;
        self.tower_d
            .check(&format!("{what}.tower_d"), expert_dim, 1)
    }

    /// Tape-free counterpart of [`MmoeHead::forward_batched`]: `q_cat` is
    /// `n×2d_q`; returns the `(logit_O, logit_D)` columns as length-`n`
    /// workspace buffers. The gate mix accumulates experts in ascending
    /// order with separate multiply-then-add per element — the same f32
    /// accumulation order as the live path, so the logits are bit-identical.
    pub fn forward_batched(
        &self,
        ws: &mut Workspace,
        q_cat: &[f32],
        n: usize,
    ) -> (Vec<f32>, Vec<f32>) {
        let dr = self.expert_dim;
        let num = self.experts.len();
        let mut outs: Vec<Vec<f32>> = Vec::with_capacity(num);
        for e in &self.experts {
            let mut o = e.forward(ws, q_cat, n);
            infer::relu_in_place(&mut o);
            outs.push(o);
        }
        let mut mix = |gate: &FrozenLinear, tower: &FrozenMlp| -> Vec<f32> {
            let mut weights = gate.forward(ws, q_cat, n); // n×experts
            infer::softmax_rows_in_place(&mut weights, num);
            let mut r = ws.take(n * dr);
            for (e, out_e) in outs.iter().enumerate() {
                for i in 0..n {
                    let w = weights[i * num + e];
                    let row = &mut r[i * dr..(i + 1) * dr];
                    for (acc, &x) in row.iter_mut().zip(&out_e[i * dr..(i + 1) * dr]) {
                        if e == 0 {
                            *acc = w * x;
                        } else {
                            *acc += w * x;
                        }
                    }
                }
            }
            ws.give(weights);
            let logits = tower.forward(ws, &r, n); // n×1
            ws.give(r);
            logits
        };
        let logit_o = mix(&self.gate_o, &self.tower_o);
        let logit_d = mix(&self.gate_d, &self.tower_d);
        for o in outs {
            ws.give(o);
        }
        (logit_o, logit_d)
    }
}

/// Single-task head for the STL variants: two independent towers, one over
/// `q^O` and one over `q^D`, with no shared parameters and no expert mixing
/// — exactly "learning O and D in a separate manner".
#[derive(Clone, Debug)]
pub struct SingleTaskHead {
    tower_o: Mlp,
    tower_d: Mlp,
}

impl SingleTaskHead {
    /// Register the head under `name`. `q_dim` is the width of each task's
    /// own representation.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        q_dim: usize,
        tower_hidden: usize,
        rng: &mut impl Rng,
    ) -> Self {
        let dims = [q_dim, tower_hidden, 1];
        SingleTaskHead {
            tower_o: Mlp::new(
                store,
                &format!("{name}.tower_o"),
                &dims,
                Activation::Relu,
                Activation::None,
                rng,
            ),
            tower_d: Mlp::new(
                store,
                &format!("{name}.tower_d"),
                &dims,
                Activation::Relu,
                Activation::None,
                rng,
            ),
        }
    }

    /// Forward the two task representations independently to `(logit_O,
    /// logit_D)`.
    pub fn forward(
        &self,
        g: &mut Graph,
        store: &ParamStore,
        q_o: Value,
        q_d: Value,
    ) -> (Value, Value) {
        (
            self.tower_o.forward(g, store, q_o),
            self.tower_d.forward(g, store, q_d),
        )
    }

    /// Snapshot the head's current weights into a [`FrozenSingleHead`].
    pub fn freeze(&self, store: &ParamStore) -> FrozenSingleHead {
        FrozenSingleHead {
            tower_o: self.tower_o.freeze(store),
            tower_d: self.tower_d.freeze(store),
        }
    }
}

/// Inference-time snapshot of a [`SingleTaskHead`].
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct FrozenSingleHead {
    tower_o: FrozenMlp,
    tower_d: FrozenMlp,
}

impl FrozenSingleHead {
    /// Validate both towers against the task dimension `q_dim`.
    pub(crate) fn check(
        &self,
        what: &str,
        q_dim: usize,
    ) -> Result<(), od_tensor::nn::FrozenCheckError> {
        self.tower_o.check(&format!("{what}.tower_o"), q_dim, 1)?;
        self.tower_d.check(&format!("{what}.tower_d"), q_dim, 1)
    }

    /// Tape-free counterpart of [`SingleTaskHead::forward`] over `n×d_q`
    /// task representations; returns length-`n` logit buffers.
    pub fn forward_batched(
        &self,
        ws: &mut Workspace,
        q_o: &[f32],
        q_d: &[f32],
        n: usize,
    ) -> (Vec<f32>, Vec<f32>) {
        (
            self.tower_o.forward(ws, q_o, n),
            self.tower_d.forward(ws, q_d, n),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use od_tensor::{init, Shape};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const Q2: usize = 12;

    fn head(store: &mut ParamStore) -> MmoeHead {
        MmoeHead::new(store, "mmoe", Q2, 3, 6, 5, &mut StdRng::seed_from_u64(2))
    }

    fn q(g: &mut Graph, seed: u64) -> Value {
        g.input(init::gaussian(
            Shape::Matrix(1, Q2),
            0.0,
            1.0,
            &mut StdRng::seed_from_u64(seed),
        ))
    }

    #[test]
    fn logits_are_scalarish() {
        let mut store = ParamStore::new();
        let h = head(&mut store);
        assert_eq!(h.expert_dim(), 6);
        let mut g = Graph::new();
        let qv = q(&mut g, 1);
        let (lo, ld) = h.forward(&mut g, &store, qv);
        assert_eq!(g.value(lo).len(), 1);
        assert_eq!(g.value(ld).len(), 1);
    }

    #[test]
    fn gate_outputs_sum_to_one() {
        let mut store = ParamStore::new();
        let h = head(&mut store);
        let mut g = Graph::new();
        let qv = q(&mut g, 3);
        let (go, gd) = h.gate_weights(&mut g, &store, qv);
        for gate in [go, gd] {
            let t = g.value(gate);
            assert_eq!(t.len(), 3);
            assert!((t.sum() - 1.0).abs() < 1e-5);
            assert!(t.as_slice().iter().all(|&w| w >= 0.0));
        }
    }

    #[test]
    fn tasks_see_different_mixtures() {
        // The whole point of MMoE: the two gates can weight experts
        // differently for the two tasks.
        let mut store = ParamStore::new();
        let h = head(&mut store);
        let mut g = Graph::new();
        let qv = q(&mut g, 4);
        let (go, gd) = h.gate_weights(&mut g, &store, qv);
        assert_ne!(g.value(go).as_slice(), g.value(gd).as_slice());
    }

    #[test]
    fn gradients_reach_both_towers_and_all_experts() {
        let mut store = ParamStore::new();
        let h = head(&mut store);
        let mut g = Graph::new();
        let qv = q(&mut g, 5);
        let (lo, ld) = h.forward(&mut g, &store, qv);
        let s = g.add(lo, ld);
        let loss = g.sum_all(s);
        g.backward(loss);
        g.accumulate_param_grads(&mut store);
        for name in [
            "mmoe.expert0.w",
            "mmoe.expert1.w",
            "mmoe.expert2.w",
            "mmoe.gate_o.w",
            "mmoe.gate_d.w",
            "mmoe.tower_o.l0.w",
            "mmoe.tower_d.l1.w",
        ] {
            let id = store.lookup(name).unwrap();
            assert!(store.grad(id).sq_norm() > 0.0, "no grad at {name}");
        }
    }

    #[test]
    fn single_task_head_is_independent() {
        let mut store = ParamStore::new();
        let h = SingleTaskHead::new(&mut store, "stl", 6, 4, &mut StdRng::seed_from_u64(9));
        let mut g = Graph::new();
        let qo = g.input(init::gaussian(
            Shape::Matrix(1, 6),
            0.0,
            1.0,
            &mut StdRng::seed_from_u64(10),
        ));
        let qd = g.input(init::gaussian(
            Shape::Matrix(1, 6),
            0.0,
            1.0,
            &mut StdRng::seed_from_u64(11),
        ));
        let (lo, ld) = h.forward(&mut g, &store, qo, qd);
        // Backprop through the O logit only: D-tower params must stay
        // untouched (no parameter sharing between the tasks).
        let loss = g.sum_all(lo);
        g.backward(loss);
        g.accumulate_param_grads(&mut store);
        let od_grad = store.grad(store.lookup("stl.tower_d.l0.w").unwrap());
        assert_eq!(od_grad.sq_norm(), 0.0);
        let o_grad = store.grad(store.lookup("stl.tower_o.l0.w").unwrap());
        assert!(o_grad.sq_norm() > 0.0);
        let _ = ld;
    }

    #[test]
    fn frozen_mmoe_matches_batched_live_bitwise() {
        let mut store = ParamStore::new();
        let h = head(&mut store);
        let frozen = h.freeze(&store);
        let x = init::gaussian(
            Shape::Matrix(4, Q2),
            0.0,
            1.0,
            &mut StdRng::seed_from_u64(7),
        );
        let mut g = Graph::new();
        let xv = g.input(x.clone());
        let (lo, ld) = h.forward_batched(&mut g, &store, xv);
        let mut ws = Workspace::new();
        let (fo, fd) = frozen.forward_batched(&mut ws, x.as_slice(), 4);
        assert_eq!(fo.as_slice(), g.value(lo).as_slice());
        assert_eq!(fd.as_slice(), g.value(ld).as_slice());
    }

    #[test]
    fn frozen_single_head_matches_live_bitwise() {
        let mut store = ParamStore::new();
        let h = SingleTaskHead::new(&mut store, "stl", 6, 4, &mut StdRng::seed_from_u64(9));
        let frozen = h.freeze(&store);
        let qo = init::gaussian(
            Shape::Matrix(3, 6),
            0.0,
            1.0,
            &mut StdRng::seed_from_u64(10),
        );
        let qd = init::gaussian(
            Shape::Matrix(3, 6),
            0.0,
            1.0,
            &mut StdRng::seed_from_u64(11),
        );
        let mut g = Graph::new();
        let qov = g.input(qo.clone());
        let qdv = g.input(qd.clone());
        let (lo, ld) = h.forward(&mut g, &store, qov, qdv);
        let mut ws = Workspace::new();
        let (fo, fd) = frozen.forward_batched(&mut ws, qo.as_slice(), qd.as_slice(), 3);
        assert_eq!(fo.as_slice(), g.value(lo).as_slice());
        assert_eq!(fd.as_slice(), g.value(ld).as_slice());
    }

    #[test]
    #[should_panic(expected = "at least one expert")]
    fn rejects_zero_experts() {
        MmoeHead::new(
            &mut ParamStore::new(),
            "m",
            4,
            0,
            4,
            4,
            &mut StdRng::seed_from_u64(0),
        );
    }
}
