//! Shared feature extraction: turning dataset records into model inputs.
//!
//! All models (ODNET, its variants, and the baselines) consume the same
//! [`GroupInput`] structure — one (user, decision-day) context with all the
//! candidate OD pairs scored under it. Grouping matters for speed (the
//! user-side trunk of the network is computed once per group, not once per
//! sample) and mirrors serving, where one request scores many candidates.

use od_data::{CheckinDataset, FliggyDataset, OdSample, Side};
use od_hsg::{CityId, UserId};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Width of the `x_st` temporal-statistics vector per candidate city:
/// 4 global city statistics (visit volume over windows) plus 4 per-user
/// statistics (the user's own historical/recent engagement with the city —
/// the paper describes `x_st` as capturing "the temporal preferences of
/// users to cities", which requires the per-user half).
pub const XST_DIM: usize = od_data::TEMPORAL_FEATURES + 4;

/// The `x_st` feature vector of one candidate city.
pub type Xst = [f32; XST_DIM];

/// One candidate OD pair within a group, with its temporal features and
/// per-side labels.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct CandidateInput {
    /// Candidate origin city.
    pub origin: CityId,
    /// Candidate destination city.
    pub dest: CityId,
    /// Temporal statistics `x_st` of the candidate origin.
    pub xst_o: Xst,
    /// Temporal statistics `x_st` of the candidate destination.
    pub xst_d: Xst,
    /// 1.0 iff `origin` is the true next origin.
    pub label_o: f32,
    /// 1.0 iff `dest` is the true next destination.
    pub label_d: f32,
}

/// Per-user temporal statistics of a candidate city at decision day `day`:
/// 1. log1p(times the user's long-term history hits the city on this side),
/// 2. whether the most recent long-term event hits it,
/// 3. log1p(times the user's short-term clicks hit it),
/// 4. recency decay `exp(−Δdays/60)` of the last long-term hit.
fn user_city_features(
    lt_side: &[CityId],
    lt_days: &[u32],
    st_side: &[CityId],
    city: CityId,
    day: u32,
) -> [f32; 4] {
    let lt_count = lt_side.iter().filter(|&&c| c == city).count() as f32;
    let is_last = lt_side.last() == Some(&city);
    let st_count = st_side.iter().filter(|&&c| c == city).count() as f32;
    let last_hit_day = lt_side
        .iter()
        .zip(lt_days)
        .rev()
        .find(|(&c, _)| c == city)
        .map(|(_, &d)| d);
    let recency = match last_hit_day {
        Some(d) => (-(day.saturating_sub(d) as f32) / 60.0).exp(),
        None => 0.0,
    };
    [
        lt_count.ln_1p(),
        is_last as u32 as f32,
        st_count.ln_1p(),
        recency,
    ]
}

/// Assemble an [`Xst`] from the global half and the per-user half.
fn assemble_xst(global: [f32; od_data::TEMPORAL_FEATURES], user: [f32; 4]) -> Xst {
    let mut out = [0.0; XST_DIM];
    out[..od_data::TEMPORAL_FEATURES].copy_from_slice(&global);
    out[od_data::TEMPORAL_FEATURES..].copy_from_slice(&user);
    out
}

/// Why a [`GroupInput`] was turned away at the serving edge — the typed
/// admission-control taxonomy of [`validate_group`]. Each variant names the
/// offending field and the bound it violated, so callers can log actionable
/// diagnostics instead of a worker panicking deep inside table indexing.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum InvalidInput {
    /// The user id does not exist in the model's user universe.
    UserOutOfRange {
        /// Offending user id.
        user: u32,
        /// Users the model was built with.
        num_users: usize,
    },
    /// A city id (current city, history entry, or candidate side) does not
    /// exist in the model's city universe.
    CityOutOfRange {
        /// Which field carried the id.
        field: &'static str,
        /// Offending city id.
        city: u32,
        /// Cities the model was built with.
        num_cities: usize,
    },
    /// A history city sequence and its aligned day sequence disagree in
    /// length.
    MisalignedSequence {
        /// Which pair of fields disagrees.
        field: &'static str,
        /// City-sequence length.
        cities: usize,
        /// Day-sequence length.
        days: usize,
    },
    /// A history sequence exceeds the length the model was trained with —
    /// rejecting it bounds per-request compute at the admission edge.
    SequenceTooLong {
        /// Which field is oversized.
        field: &'static str,
        /// Submitted length.
        len: usize,
        /// Maximum the model accepts.
        max: usize,
    },
    /// A candidate's temporal feature vector carries NaN or ±∞, which would
    /// silently propagate into every score of its group.
    NonFiniteFeature {
        /// Index of the offending candidate.
        candidate: usize,
    },
}

impl std::fmt::Display for InvalidInput {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InvalidInput::UserOutOfRange { user, num_users } => {
                write!(
                    f,
                    "user id {user} out of range (model has {num_users} users)"
                )
            }
            InvalidInput::CityOutOfRange {
                field,
                city,
                num_cities,
            } => write!(
                f,
                "city id {city} in {field} out of range (model has {num_cities} cities)"
            ),
            InvalidInput::MisalignedSequence {
                field,
                cities,
                days,
            } => write!(f, "{field}: {cities} cities but {days} aligned day entries"),
            InvalidInput::SequenceTooLong { field, len, max } => {
                write!(f, "{field} holds {len} entries, model maximum is {max}")
            }
            InvalidInput::NonFiniteFeature { candidate } => {
                write!(f, "candidate {candidate} carries non-finite x_st features")
            }
        }
    }
}

impl std::error::Error for InvalidInput {}

/// Validate one scoring request against a model universe of `num_users` ×
/// `num_cities` and the trained sequence limits. `Ok(())` guarantees the
/// frozen forward will not panic on this input (the `validated == scored`
/// property test in `tests/proptest_validate.rs`).
pub fn validate_group(
    group: &GroupInput,
    num_users: usize,
    num_cities: usize,
    max_long: usize,
    max_short: usize,
) -> Result<(), InvalidInput> {
    if group.user.index() >= num_users {
        return Err(InvalidInput::UserOutOfRange {
            user: group.user.0,
            num_users,
        });
    }
    let city_ok = |field: &'static str, cities: &[CityId]| -> Result<(), InvalidInput> {
        for c in cities {
            if c.index() >= num_cities {
                return Err(InvalidInput::CityOutOfRange {
                    field,
                    city: c.0,
                    num_cities,
                });
            }
        }
        Ok(())
    };
    city_ok("current_city", std::slice::from_ref(&group.current_city))?;
    for (field, cities, days, max) in [
        ("lt_origins", &group.lt_origins, &group.lt_days, max_long),
        ("lt_dests", &group.lt_dests, &group.lt_days, max_long),
        ("st_origins", &group.st_origins, &group.st_days, max_short),
        ("st_dests", &group.st_dests, &group.st_days, max_short),
    ] {
        if cities.len() != days.len() {
            return Err(InvalidInput::MisalignedSequence {
                field,
                cities: cities.len(),
                days: days.len(),
            });
        }
        if cities.len() > max {
            return Err(InvalidInput::SequenceTooLong {
                field,
                len: cities.len(),
                max,
            });
        }
        city_ok(field, cities)?;
    }
    for (i, cand) in group.candidates.iter().enumerate() {
        city_ok("candidate origin", std::slice::from_ref(&cand.origin))?;
        city_ok("candidate dest", std::slice::from_ref(&cand.dest))?;
        if !cand.xst_o.iter().chain(&cand.xst_d).all(|v| v.is_finite()) {
            return Err(InvalidInput::NonFiniteFeature { candidate: i });
        }
    }
    Ok(())
}

/// One (user, day) decision context with its candidates.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct GroupInput {
    /// The deciding user.
    pub user: UserId,
    /// Decision day.
    pub day: u32,
    /// The user's current city (LBS feature).
    pub current_city: CityId,
    /// Long-term booked *origin* city sequence (most recent last, truncated).
    pub lt_origins: Vec<CityId>,
    /// Long-term booked *destination* city sequence.
    pub lt_dests: Vec<CityId>,
    /// Days of the long-term events (aligned with `lt_origins`/`lt_dests`) —
    /// the RNN baselines' temporal gates consume inter-event intervals.
    pub lt_days: Vec<u32>,
    /// Short-term clicked origin city sequence.
    pub st_origins: Vec<CityId>,
    /// Short-term clicked destination city sequence.
    pub st_dests: Vec<CityId>,
    /// Days of the short-term events (aligned with `st_*`).
    pub st_days: Vec<u32>,
    /// Candidate OD pairs to score.
    pub candidates: Vec<CandidateInput>,
}

/// Extracts [`GroupInput`]s from datasets under sequence-length limits.
#[derive(Clone, Copy, Debug)]
pub struct FeatureExtractor {
    /// Maximum long-term sequence length (keep the most recent).
    pub max_long: usize,
    /// Maximum short-term sequence length.
    pub max_short: usize,
}

impl FeatureExtractor {
    /// New extractor with the given truncation limits.
    pub fn new(max_long: usize, max_short: usize) -> Self {
        assert!(max_long > 0 && max_short > 0, "limits must be positive");
        FeatureExtractor {
            max_long,
            max_short,
        }
    }

    /// Build the user-side context of a group (no candidates yet).
    fn context(&self, ds: &FliggyDataset, user: UserId, day: u32) -> GroupInput {
        let lt = ds.long_term(user, day);
        let st = ds.short_term(user, day);
        let tail = |n: usize, len: usize| len.saturating_sub(n);
        let lt_tail = &lt[tail(self.max_long, lt.len())..];
        let st_tail = &st[tail(self.max_short, st.len())..];
        GroupInput {
            user,
            day,
            current_city: ds.current_city(user, day),
            lt_origins: lt_tail.iter().map(|b| b.origin).collect(),
            lt_dests: lt_tail.iter().map(|b| b.dest).collect(),
            lt_days: lt_tail.iter().map(|b| b.day).collect(),
            st_origins: st_tail.iter().map(|c| c.origin).collect(),
            st_dests: st_tail.iter().map(|c| c.dest).collect(),
            st_days: st_tail.iter().map(|c| c.day).collect(),
            candidates: Vec::new(),
        }
    }

    fn candidate(
        &self,
        ds: &FliggyDataset,
        ctx: &GroupInput,
        origin: CityId,
        dest: CityId,
        label_o: f32,
        label_d: f32,
    ) -> CandidateInput {
        let day = ctx.day;
        CandidateInput {
            origin,
            dest,
            xst_o: assemble_xst(
                ds.temporal.features(origin, Side::Origin, day),
                user_city_features(&ctx.lt_origins, &ctx.lt_days, &ctx.st_origins, origin, day),
            ),
            xst_d: assemble_xst(
                ds.temporal.features(dest, Side::Dest, day),
                user_city_features(&ctx.lt_dests, &ctx.lt_days, &ctx.st_dests, dest, day),
            ),
            label_o,
            label_d,
        }
    }

    /// Group labelled samples by (user, day) into training inputs.
    pub fn groups_from_samples(&self, ds: &FliggyDataset, samples: &[OdSample]) -> Vec<GroupInput> {
        let mut index: HashMap<(u32, u32), usize> = HashMap::new();
        let mut groups: Vec<GroupInput> = Vec::new();
        for s in samples {
            let key = (s.user.0, s.day);
            let gi = *index.entry(key).or_insert_with(|| {
                groups.push(self.context(ds, s.user, s.day));
                groups.len() - 1
            });
            let cand = self.candidate(ds, &groups[gi], s.origin, s.dest, s.label_o, s.label_d);
            groups[gi].candidates.push(cand);
        }
        groups
    }

    /// Build one scoring group from an evaluation case (labels are not used
    /// for scoring; they encode which candidate is the truth).
    pub fn group_from_eval_case(&self, ds: &FliggyDataset, case: &od_data::EvalCase) -> GroupInput {
        let mut g = self.context(ds, case.user, case.day);
        for (i, &(o, d)) in case.candidates.iter().enumerate() {
            let is_true = i == case.true_index;
            let cand = self.candidate(ds, &g, o, d, is_true as u32 as f32, is_true as u32 as f32);
            g.candidates.push(cand);
        }
        g
    }

    /// Build one ad-hoc scoring group for serving: arbitrary candidate pairs
    /// under the user's current context.
    pub fn group_for_serving(
        &self,
        ds: &FliggyDataset,
        user: UserId,
        day: u32,
        candidates: &[(CityId, CityId)],
    ) -> GroupInput {
        let mut g = self.context(ds, user, day);
        for &(o, d) in candidates {
            let cand = self.candidate(ds, &g, o, d, 0.0, 0.0);
            g.candidates.push(cand);
        }
        g
    }

    // ---- LBSN (check-in) extraction --------------------------------------

    /// Context for a check-in dataset: destination-only histories. The
    /// "origin" side is the *previous POI* sequence (how STOD-PPA frames
    /// origin-aware POI recommendation); candidates pair the user's last
    /// POI as origin with the candidate POI as destination.
    fn checkin_context(&self, ds: &CheckinDataset, user: UserId, day: u32) -> GroupInput {
        let hist = ds.history_before(user, day);
        let pois: Vec<CityId> = hist.iter().map(|c| c.poi).collect();
        let days: Vec<u32> = hist.iter().map(|c| c.day).collect();
        let tail = |n: usize, len: usize| len.saturating_sub(n);
        let lt_cut = tail(self.max_long, pois.len());
        let lt_dests: Vec<CityId> = pois[lt_cut..].to_vec();
        let lt_days: Vec<u32> = days[lt_cut..].to_vec();
        // Previous-POI sequence: shift by one (the origin of visit i is
        // visit i−1). The first visit has no origin and is dropped.
        let lt_origins: Vec<CityId> = if pois.len() >= 2 {
            let shifted = &pois[..pois.len() - 1];
            shifted[tail(self.max_long, shifted.len())..].to_vec()
        } else {
            Vec::new()
        };
        let st_cut = tail(self.max_short, pois.len());
        let st_dests: Vec<CityId> = pois[st_cut..].to_vec();
        let st_days: Vec<u32> = days[st_cut..].to_vec();
        let current = pois.last().copied().unwrap_or(CityId(0));
        GroupInput {
            user,
            day,
            current_city: current,
            lt_origins,
            lt_dests,
            lt_days,
            st_origins: Vec::new(),
            st_dests,
            st_days,
            candidates: Vec::new(),
        }
    }

    /// Group check-in training samples by (user, day).
    pub fn checkin_groups(
        &self,
        ds: &CheckinDataset,
        samples: &[od_data::PoiSample],
    ) -> Vec<GroupInput> {
        let mut index: HashMap<(u32, u32), usize> = HashMap::new();
        let mut groups: Vec<GroupInput> = Vec::new();
        for s in samples {
            let key = (s.user.0, s.day);
            let gi = *index.entry(key).or_insert_with(|| {
                groups.push(self.checkin_context(ds, s.user, s.day));
                groups.len() - 1
            });
            let ctx = &groups[gi];
            let origin = ctx.current_city;
            let xst_d = assemble_xst(
                [0.0; od_data::TEMPORAL_FEATURES],
                user_city_features(&ctx.lt_dests, &ctx.lt_days, &ctx.st_dests, s.poi, s.day),
            );
            groups[gi].candidates.push(CandidateInput {
                origin,
                dest: s.poi,
                xst_o: [0.0; XST_DIM],
                xst_d,
                label_o: s.label,
                label_d: s.label,
            });
        }
        groups
    }

    /// Build one scoring group from a check-in evaluation case.
    pub fn checkin_eval_group(
        &self,
        ds: &CheckinDataset,
        case: &od_data::PoiEvalCase,
    ) -> GroupInput {
        let mut g = self.checkin_context(ds, case.user, case.day);
        let origin = g.current_city;
        for (i, &poi) in case.candidates.iter().enumerate() {
            let label = (i == case.true_index) as u32 as f32;
            let xst_d = assemble_xst(
                [0.0; od_data::TEMPORAL_FEATURES],
                user_city_features(&g.lt_dests, &g.lt_days, &g.st_dests, poi, case.day),
            );
            g.candidates.push(CandidateInput {
                origin,
                dest: poi,
                xst_o: [0.0; XST_DIM],
                xst_d,
                label_o: label,
                label_d: label,
            });
        }
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use od_data::{CheckinConfig, FliggyConfig};

    fn fliggy() -> FliggyDataset {
        FliggyDataset::generate(FliggyConfig::tiny())
    }

    #[test]
    fn groups_collect_all_samples() {
        let ds = fliggy();
        let fx = FeatureExtractor::new(8, 5);
        let groups = fx.groups_from_samples(&ds, &ds.train);
        let total: usize = groups.iter().map(|g| g.candidates.len()).sum();
        assert_eq!(total, ds.train.len());
        // Every group carries the paper's 7-sample bundle (1 pos + 4 partial
        // + 2 full) — unless two bookings collide on the same day.
        assert!(groups.iter().all(|g| g.candidates.len() % 7 == 0));
    }

    #[test]
    fn sequences_respect_truncation_and_order() {
        let ds = fliggy();
        let fx = FeatureExtractor::new(3, 2);
        let groups = fx.groups_from_samples(&ds, &ds.train);
        for g in &groups {
            assert!(g.lt_origins.len() <= 3);
            assert!(g.st_dests.len() <= 2);
            assert_eq!(g.lt_origins.len(), g.lt_dests.len());
            // Truncation keeps the most recent bookings.
            let lt = ds.long_term(g.user, g.day);
            if lt.len() >= 3 {
                assert_eq!(g.lt_dests.last().copied(), lt.last().map(|b| b.dest));
            }
        }
    }

    #[test]
    fn eval_group_labels_mark_only_truth() {
        let ds = fliggy();
        let fx = FeatureExtractor::new(8, 5);
        let case = &ds.eval_cases[0];
        let g = fx.group_from_eval_case(&ds, case);
        assert_eq!(g.candidates.len(), case.candidates.len());
        let positives: Vec<usize> = g
            .candidates
            .iter()
            .enumerate()
            .filter(|(_, c)| c.label_o > 0.5)
            .map(|(i, _)| i)
            .collect();
        assert_eq!(positives, vec![case.true_index]);
    }

    #[test]
    fn serving_group_has_unlabelled_candidates() {
        let ds = fliggy();
        let fx = FeatureExtractor::new(8, 5);
        let pairs = [(CityId(0), CityId(1)), (CityId(2), CityId(3))];
        let g = fx.group_for_serving(&ds, UserId(0), ds.train_end_day(), &pairs);
        assert_eq!(g.candidates.len(), 2);
        assert!(g.candidates.iter().all(|c| c.label_o == 0.0));
        assert_eq!(g.candidates[1].origin, CityId(2));
    }

    #[test]
    fn checkin_context_shifts_origin_sequence() {
        let ds = CheckinDataset::generate(CheckinConfig::tiny());
        let fx = FeatureExtractor::new(6, 3);
        // Find a user with ≥ 3 check-ins and form the context at the last
        // check-in day.
        let (u, hist) = ds
            .histories
            .iter()
            .enumerate()
            .find(|(_, h)| h.len() >= 3)
            .expect("some user has 3+ check-ins");
        let day = hist.last().unwrap().day;
        let g = fx.checkin_context(&ds, UserId(u as u32), day);
        // Origins are the destinations shifted by one.
        assert_eq!(g.lt_origins.len() + 1, g.lt_dests.len().max(1));
        assert!(g.st_origins.is_empty());
        // Current city is the most recent visible POI.
        let visible = ds.history_before(UserId(u as u32), day);
        assert_eq!(g.current_city, visible.last().unwrap().poi);
    }

    #[test]
    fn checkin_eval_group_is_well_formed() {
        let ds = CheckinDataset::generate(CheckinConfig::tiny());
        let fx = FeatureExtractor::new(6, 3);
        let case = &ds.eval_cases[0];
        let g = fx.checkin_eval_group(&ds, case);
        assert_eq!(g.candidates.len(), case.candidates.len());
        assert_eq!(g.candidates.iter().filter(|c| c.label_d > 0.5).count(), 1);
        // All candidates share the same origin (the user's location).
        assert!(g.candidates.iter().all(|c| c.origin == g.current_city));
    }

    #[test]
    #[should_panic(expected = "limits must be positive")]
    fn rejects_zero_limits() {
        FeatureExtractor::new(0, 5);
    }
}
