//! The `.odz` binary serving artifact — paper-scale cold start.
//!
//! The JSON artifact ([`FrozenOdNet::save_json`]) is the debuggable,
//! self-describing interchange format, but loading it costs a full text
//! parse plus an owned copy of every table — at the paper's deployment
//! scale (2.6M users, PAPER.md §2) that is seconds of cold start and a
//! resident copy per serving process. The `.odz` format stores the
//! embedding tables as 64-byte-aligned little-endian `f32` rows that
//! [`FrozenOdNet`] can score **directly out of an mmap'd file**: load time
//! becomes page-fault time, and N serving processes mapping the same
//! artifact share one physical copy of the tables.
//!
//! Layout (all integers little-endian; see DESIGN.md §12):
//!
//! ```text
//! [0, 64)                  fixed header (magic, version, variant, dims,
//!                          meta location, FNV-1a checksums)
//! [64, meta_offset)        table payload: each table starts on a 64-byte
//!                          boundary; row-major f32 little-endian
//! [meta_offset, ..)        meta JSON: config, θ, small module weights
//!                          (PEC / MMoE / towers), and the table directory
//!                          (name, offset, rows, cols, per-table FNV)
//! ```
//!
//! The embedding tables dominate the artifact (99.9% of bytes at paper
//! scale); the PEC/MMoE/tower weights are a few hundred KB and ride in the
//! meta block, where they are loaded eagerly on every path. Three load
//! paths exist:
//!
//! - [`FrozenOdNet::load_json`]: parse + copy (oracle format),
//! - [`FrozenOdNet::load_bin`]: binary read + copy, every table checksum
//!   verified, full finiteness validation — the trust-establishing path,
//! - [`FrozenOdNet::load_bin_mmap`]: zero-copy. Header, directory, and
//!   meta checksums are verified and the geometry is validated, but table
//!   bytes are *not* scanned (that would fault in every page and defeat
//!   lazy loading). Mapped scoring is bit-identical to the JSON path
//!   because both serve the same IEEE-754 bit patterns.
//!
//! Safety: the mmap wrapper calls raw `mmap(2)`/`munmap(2)` through
//! `extern "C"` declarations (no new dependencies). The mapping is
//! `MAP_PRIVATE` and read-only; truncating the file while mapped can
//! deliver `SIGBUS`, the standard contract for mmap-served artifacts. On
//! non-Unix platforms [`MmapRegion`] transparently falls back to reading
//! the file into a 64-byte-aligned heap buffer.

use crate::config::OdnetConfig;
use crate::frozen::{FrozenBranch, FrozenHead, FrozenOdNet};
use crate::intent::FrozenIntent;
use crate::model::{CheckpointError, Variant};
use crate::pec::FrozenPec;
use od_tensor::{Shape, Tensor};
use serde::Deserialize;
use std::fs::File;
use std::io::{BufWriter, Read as _, Seek, SeekFrom, Write as _};
use std::path::Path;
use std::sync::Arc;

/// `.odz` format version. Independent of the JSON artifact's
/// `FROZEN_FORMAT_VERSION` and the training checkpoint version.
pub const ODZ_VERSION: u32 = 1;

const ODZ_MAGIC: [u8; 4] = *b"ODZ1";
const HEADER_LEN: usize = 64;
/// Table alignment: cache-line / SIMD friendly, and coarse enough that
/// every `f32` row lookup is at worst one line split.
const ALIGN: usize = 64;

/// The four payload tables, in canonical file order.
const TABLE_NAMES: [&str; 4] = ["origin.users", "origin.cities", "dest.users", "dest.cities"];

// ---------------------------------------------------------------------------
// FNV-1a (32-bit) — the checksum named in the header spec. Streaming-friendly
// and dependency-free; this guards against corrupt/truncated artifacts, not
// adversaries.

const FNV_OFFSET: u32 = 0x811c_9dc5;
const FNV_PRIME: u32 = 0x0100_0193;

fn fnv1a(mut h: u32, bytes: &[u8]) -> u32 {
    for &b in bytes {
        h ^= b as u32;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// FNV-1a (32-bit) checksum of arbitrary bytes — the same hash the `.odz`
/// header fields use, exposed so other layers can derive artifact
/// identities comparable with the on-disk checksums.
pub fn fnv1a_checksum(bytes: &[u8]) -> u32 {
    fnv1a(FNV_OFFSET, bytes)
}

/// Read only the 64-byte header of an `.odz` file and return its stored
/// meta-block checksum — the cheapest stable identity of the artifact's
/// content. The meta block carries the table directory (including every
/// table's own FNV), so this checksum transitively covers the payload
/// without touching (or faulting in) a single table page.
pub fn read_odz_checksum(path: &Path) -> Result<u32, CheckpointError> {
    let io = |e: std::io::Error| CheckpointError::Io(format!("reading {path:?}: {e}"));
    let mut file = File::open(path).map_err(io)?;
    let mut header = [0u8; HEADER_LEN];
    file.read_exact(&mut header).map_err(io)?;
    Ok(OdzHeader::decode(&header)?.meta_fnv)
}

impl FrozenOdNet {
    /// Cheap FNV-1a content fingerprint of an in-memory artifact, for
    /// version identity when no `.odz` header is at hand (e.g. a model
    /// frozen in-process and published without touching disk).
    ///
    /// Covers the variant, geometry, config, θ, and a strided sample of
    /// rows from every embedding table (first, last, and every
    /// `rows/16`-th row) — mmap-safe: at most a few dozen pages fault in.
    /// Equal artifacts always fingerprint equal; differently-trained
    /// artifacts differ in their tables and (with the usual hash caveats)
    /// fingerprint differently. This is an observability identity, not a
    /// cryptographic digest.
    pub fn fingerprint(&self) -> u32 {
        let mut h = FNV_OFFSET;
        h = fnv1a(h, format!("{:?}", self.variant).as_bytes());
        for dim in [self.num_users as u64, self.num_cities as u64] {
            h = fnv1a(h, &dim.to_le_bytes());
        }
        h = fnv1a(h, &self.theta.to_bits().to_le_bytes());
        if let Ok(cfg) = serde_json::to_string(&self.config) {
            h = fnv1a(h, cfg.as_bytes());
        }
        let tables = [
            &self.origin.users,
            &self.origin.cities,
            &self.dest.users,
            &self.dest.cities,
        ];
        let mut buf = Vec::new();
        for table in tables {
            let (rows, cols) = (table.rows(), table.cols());
            h = fnv1a(h, &(rows as u64).to_le_bytes());
            h = fnv1a(h, &(cols as u64).to_le_bytes());
            if rows == 0 {
                continue;
            }
            let step = (rows / 16).max(1);
            for i in (0..rows).step_by(step).chain(std::iter::once(rows - 1)) {
                buf.clear();
                for v in table.row(i) {
                    buf.extend_from_slice(&v.to_bits().to_le_bytes());
                }
                h = fnv1a(h, &buf);
            }
        }
        h
    }
}

// ---------------------------------------------------------------------------
// MmapRegion: read-only bytes backed by mmap(2) on Unix, by an aligned heap
// buffer elsewhere (or when the kernel refuses the mapping).

#[cfg(unix)]
mod sys {
    use std::ffi::{c_int, c_void};

    pub const PROT_READ: c_int = 1;
    pub const MAP_PRIVATE: c_int = 2;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> c_int;
    }
}

/// A 64-byte-aligned heap chunk for the read-into-buffer fallback.
#[derive(Clone, Copy)]
#[repr(C, align(64))]
struct AlignedChunk([u8; 64]);

/// An immutable byte region an artifact's tables are served from: either a
/// kernel mapping of the file or an owned aligned buffer. `Send + Sync`
/// because the region is never written after construction.
pub struct MmapRegion {
    ptr: *const u8,
    len: usize,
    /// `Some` when the region owns a heap buffer instead of a mapping.
    heap: Option<Vec<AlignedChunk>>,
}

// SAFETY: the region is read-only for its entire lifetime; the pointer
// refers either to a private file mapping or to the boxed buffer in `heap`.
unsafe impl Send for MmapRegion {}
unsafe impl Sync for MmapRegion {}

impl std::fmt::Debug for MmapRegion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MmapRegion")
            .field("len", &self.len)
            .field("mapped", &self.heap.is_none())
            .finish()
    }
}

impl MmapRegion {
    /// Map (or read) `file`, which must be `len` bytes long.
    fn open(file: &File, len: usize) -> std::io::Result<MmapRegion> {
        if len == 0 {
            // mmap(2) rejects zero-length mappings; an empty artifact is
            // malformed anyway, so hand back an empty heap region and let
            // header validation produce the typed error.
            return Ok(MmapRegion {
                ptr: std::ptr::NonNull::<u8>::dangling().as_ptr(),
                len: 0,
                heap: Some(Vec::new()),
            });
        }
        #[cfg(unix)]
        {
            use std::os::unix::io::AsRawFd;
            let p = unsafe {
                sys::mmap(
                    std::ptr::null_mut(),
                    len,
                    sys::PROT_READ,
                    sys::MAP_PRIVATE,
                    file.as_raw_fd(),
                    0,
                )
            };
            if p as isize != -1 {
                return Ok(MmapRegion {
                    ptr: p as *const u8,
                    len,
                    heap: None,
                });
            }
            // Fall through to the heap path (e.g. a filesystem without
            // mmap support); the caller cannot tell the difference.
        }
        Self::read_aligned(file, len)
    }

    /// Fallback: read the whole file into a 64-byte-aligned buffer.
    fn read_aligned(file: &File, len: usize) -> std::io::Result<MmapRegion> {
        let chunks = len.div_ceil(64);
        let mut heap = vec![AlignedChunk([0u8; 64]); chunks];
        // SAFETY: `heap` owns `chunks * 64 >= len` contiguous initialized
        // bytes; the slice is dropped before `heap` moves into the region.
        let bytes = unsafe { std::slice::from_raw_parts_mut(heap.as_mut_ptr() as *mut u8, len) };
        let mut f = file;
        f.seek(SeekFrom::Start(0))?;
        f.read_exact(bytes)?;
        let ptr = heap.as_ptr() as *const u8;
        Ok(MmapRegion {
            ptr,
            len,
            heap: Some(heap),
        })
    }

    /// The whole region.
    pub fn as_bytes(&self) -> &[u8] {
        // SAFETY: ptr/len describe the live mapping or heap buffer.
        unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
    }

    /// A `count`-element f32 slice at `offset` bytes. The loader has
    /// already validated alignment and bounds; both are re-checked here
    /// because this is the boundary where bytes become typed.
    fn f32_slice(&self, offset: usize, count: usize) -> &[f32] {
        let bytes = count * 4;
        assert!(
            offset.is_multiple_of(std::mem::align_of::<f32>()) && offset + bytes <= self.len,
            "table slice out of bounds or misaligned (validated at load)"
        );
        // SAFETY: in-bounds, 4-byte-aligned, and any bit pattern is a
        // valid f32 (NaNs are rejected by deep validation, not UB).
        unsafe { std::slice::from_raw_parts(self.ptr.add(offset) as *const f32, count) }
    }
}

impl Drop for MmapRegion {
    fn drop(&mut self) {
        #[cfg(unix)]
        if self.heap.is_none() && self.len > 0 {
            // SAFETY: ptr/len came from a successful mmap with this length.
            unsafe {
                sys::munmap(self.ptr as *mut std::ffi::c_void, self.len);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Table: the borrowed/owned storage behind FrozenOdNet's embedding tables.

/// A row-major `rows × cols` f32 table that is either owned (JSON and
/// binary-read paths) or borrowed from an [`MmapRegion`] (zero-copy path).
/// The scoring hot path only ever asks for [`Table::row`], which both
/// variants serve as a plain slice — the enum never shows up per-element.
#[derive(Clone)]
pub(crate) enum Table {
    Owned(Tensor),
    Mapped {
        region: Arc<MmapRegion>,
        /// Byte offset of the table inside the region.
        offset: usize,
        rows: usize,
        cols: usize,
    },
}

impl From<Tensor> for Table {
    fn from(t: Tensor) -> Self {
        Table::Owned(t)
    }
}

impl std::fmt::Debug for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Table::Owned(t) => write!(f, "Table::Owned({}x{})", t.rows(), t.cols()),
            Table::Mapped {
                rows, cols, offset, ..
            } => {
                write!(f, "Table::Mapped({rows}x{cols} @ {offset})")
            }
        }
    }
}

impl Table {
    pub(crate) fn rows(&self) -> usize {
        match self {
            Table::Owned(t) => t.rows(),
            Table::Mapped { rows, .. } => *rows,
        }
    }

    pub(crate) fn cols(&self) -> usize {
        match self {
            Table::Owned(t) => t.cols(),
            Table::Mapped { cols, .. } => *cols,
        }
    }

    /// One row — the only accessor the scoring hot path uses.
    #[inline]
    pub(crate) fn row(&self, i: usize) -> &[f32] {
        match self {
            Table::Owned(t) => t.row(i),
            Table::Mapped {
                region,
                offset,
                rows,
                cols,
            } => {
                assert!(i < *rows, "row {i} out of range ({rows} rows)");
                region.f32_slice(offset + i * cols * 4, *cols)
            }
        }
    }

    /// The full table as one contiguous slice.
    pub(crate) fn as_slice(&self) -> &[f32] {
        match self {
            Table::Owned(t) => t.as_slice(),
            Table::Mapped {
                region,
                offset,
                rows,
                cols,
            } => region.f32_slice(*offset, rows * cols),
        }
    }

    /// Mutable access for tests that inject corruption; only the owned
    /// variant supports it.
    #[cfg(test)]
    pub(crate) fn as_mut_slice(&mut self) -> &mut [f32] {
        match self {
            Table::Owned(t) => t.as_mut_slice(),
            Table::Mapped { .. } => panic!("cannot mutate a mapped table"),
        }
    }

    /// Shape check plus (optionally) the full finiteness scan. The scan is
    /// skipped on the mmap load path so validation does not fault in every
    /// page of a multi-GB artifact.
    pub(crate) fn check(
        &self,
        what: &str,
        rows: usize,
        cols: usize,
        deep: bool,
    ) -> Result<(), CheckpointError> {
        if self.rows() != rows || self.cols() != cols {
            return Err(CheckpointError::Inconsistent(format!(
                "{what}: expected {rows}x{cols}, found {}x{}",
                self.rows(),
                self.cols()
            )));
        }
        if deep && !self.as_slice().iter().all(|v| v.is_finite()) {
            return Err(CheckpointError::NonFinite(format!(
                "{what} contains NaN or infinite weights"
            )));
        }
        Ok(())
    }
}

impl serde::Serialize for Table {
    /// Serializes exactly like the `Tensor` it stands in for, so the JSON
    /// artifact format is unchanged by the borrowed/owned split.
    fn to_content(&self) -> serde::Content {
        match self {
            Table::Owned(t) => serde::Serialize::to_content(t),
            Table::Mapped { rows, cols, .. } => {
                let t = Tensor::new(Shape::Matrix(*rows, *cols), self.as_slice().to_vec());
                serde::Serialize::to_content(&t)
            }
        }
    }
}

impl serde::Deserialize for Table {
    fn from_content(content: &serde::Content) -> Result<Self, serde::DeError> {
        Tensor::from_content(content).map(Table::Owned)
    }
}

// ---------------------------------------------------------------------------
// Header encode/decode.

struct OdzHeader {
    variant: Variant,
    num_users: u64,
    num_cities: u64,
    table_count: u32,
    embed_dim: u32,
    meta_offset: u64,
    meta_len: u64,
    /// FNV-1a over the meta JSON bytes, so silent corruption of the small
    /// weights riding in the meta block is caught on every load path.
    meta_fnv: u32,
}

impl OdzHeader {
    fn encode(&self) -> [u8; HEADER_LEN] {
        let mut h = [0u8; HEADER_LEN];
        h[0..4].copy_from_slice(&ODZ_MAGIC);
        h[4..8].copy_from_slice(&ODZ_VERSION.to_le_bytes());
        h[8..12].copy_from_slice(&variant_tag(self.variant).to_le_bytes());
        // h[12..16]: header FNV, patched below.
        h[16..24].copy_from_slice(&self.num_users.to_le_bytes());
        h[24..32].copy_from_slice(&self.num_cities.to_le_bytes());
        h[32..36].copy_from_slice(&self.table_count.to_le_bytes());
        h[36..40].copy_from_slice(&self.embed_dim.to_le_bytes());
        h[40..48].copy_from_slice(&self.meta_offset.to_le_bytes());
        h[48..56].copy_from_slice(&self.meta_len.to_le_bytes());
        h[56..60].copy_from_slice(&self.meta_fnv.to_le_bytes());
        // h[60..64]: reserved, zero.
        let fnv = fnv1a(FNV_OFFSET, &h);
        h[12..16].copy_from_slice(&fnv.to_le_bytes());
        h
    }

    fn decode(bytes: &[u8]) -> Result<OdzHeader, CheckpointError> {
        if bytes.len() < HEADER_LEN {
            return Err(CheckpointError::Binary(format!(
                "file is {} bytes, smaller than the {HEADER_LEN}-byte header",
                bytes.len()
            )));
        }
        let h = &bytes[..HEADER_LEN];
        if h[0..4] != ODZ_MAGIC {
            return Err(CheckpointError::Binary(format!(
                "bad magic {:02x?} (expected {:02x?} — not an .odz artifact)",
                &h[0..4],
                ODZ_MAGIC
            )));
        }
        let version = u32_at(h, 4);
        if version != ODZ_VERSION {
            return Err(CheckpointError::Version(version));
        }
        // Verify the header checksum with the stored FNV field zeroed.
        let stored_fnv = u32_at(h, 12);
        let mut zeroed = [0u8; HEADER_LEN];
        zeroed.copy_from_slice(h);
        zeroed[12..16].fill(0);
        if fnv1a(FNV_OFFSET, &zeroed) != stored_fnv {
            return Err(CheckpointError::Binary(
                "header checksum mismatch (flipped or corrupt header bytes)".to_string(),
            ));
        }
        let variant = variant_from_tag(u32_at(h, 8))?;
        Ok(OdzHeader {
            variant,
            num_users: u64_at(h, 16),
            num_cities: u64_at(h, 24),
            table_count: u32_at(h, 32),
            embed_dim: u32_at(h, 36),
            meta_offset: u64_at(h, 40),
            meta_len: u64_at(h, 48),
            meta_fnv: u32_at(h, 56),
        })
    }
}

fn u32_at(b: &[u8], o: usize) -> u32 {
    u32::from_le_bytes(b[o..o + 4].try_into().expect("4 bytes"))
}

fn u64_at(b: &[u8], o: usize) -> u64 {
    u64::from_le_bytes(b[o..o + 8].try_into().expect("8 bytes"))
}

fn variant_tag(v: Variant) -> u32 {
    match v {
        Variant::Odnet => 0,
        Variant::OdnetG => 1,
        Variant::StlPlusG => 2,
        Variant::StlG => 3,
    }
}

fn variant_from_tag(tag: u32) -> Result<Variant, CheckpointError> {
    match tag {
        0 => Ok(Variant::Odnet),
        1 => Ok(Variant::OdnetG),
        2 => Ok(Variant::StlPlusG),
        3 => Ok(Variant::StlG),
        other => Err(CheckpointError::Binary(format!(
            "unknown variant tag {other}"
        ))),
    }
}

// ---------------------------------------------------------------------------
// Meta block: everything that is not a big table.

/// Table directory entry inside the meta JSON.
#[derive(Clone, Debug, serde::Serialize, Deserialize)]
struct OdzTableMeta {
    name: String,
    offset: u64,
    rows: u64,
    cols: u64,
    fnv: u32,
}

/// Deserialization target for the meta JSON. (Serialization is hand-built
/// from borrows in [`FrozenOdNet::save_bin`]; the vendored serde derive
/// cannot express a borrowing struct.)
#[derive(Deserialize)]
struct OdzMeta {
    format_version: u32,
    variant: Variant,
    config: OdnetConfig,
    num_users: u64,
    num_cities: u64,
    theta: f32,
    tables: Vec<OdzTableMeta>,
    origin_pec: FrozenPec,
    origin_intent: Option<FrozenIntent>,
    dest_pec: FrozenPec,
    dest_intent: Option<FrozenIntent>,
    head: FrozenHead,
}

/// A parsed, bounds-checked view of an `.odz` file: the meta block plus
/// resolved byte ranges for each payload table.
struct ParsedOdz {
    meta: OdzMeta,
    /// `(offset, rows, cols, fnv)` for each of [`TABLE_NAMES`], in order.
    tables: Vec<(usize, usize, usize, u32)>,
}

fn parse_odz(bytes: &[u8]) -> Result<ParsedOdz, CheckpointError> {
    let header = OdzHeader::decode(bytes)?;
    let meta_offset = header.meta_offset as usize;
    let meta_len = header.meta_len as usize;
    let meta_end = meta_offset
        .checked_add(meta_len)
        .filter(|&end| end <= bytes.len() && meta_offset >= HEADER_LEN)
        .ok_or_else(|| {
            CheckpointError::Binary(format!(
                "meta block [{meta_offset}, +{meta_len}) outside the {}-byte file (truncated?)",
                bytes.len()
            ))
        })?;
    let meta_bytes = &bytes[meta_offset..meta_end];
    if fnv1a(FNV_OFFSET, meta_bytes) != header.meta_fnv {
        return Err(CheckpointError::Binary(
            "meta block checksum mismatch (corrupt module weights or directory)".to_string(),
        ));
    }
    let meta_json = std::str::from_utf8(meta_bytes)
        .map_err(|_| CheckpointError::Binary("meta block is not UTF-8".to_string()))?;
    let meta: OdzMeta = serde_json::from_str(meta_json).map_err(CheckpointError::Parse)?;

    // The meta block repeats the header's identity fields; they must agree
    // (a mismatch means a spliced or hand-edited file).
    if meta.format_version != ODZ_VERSION {
        return Err(CheckpointError::Version(meta.format_version));
    }
    if meta.variant != header.variant
        || meta.num_users != header.num_users
        || meta.num_cities != header.num_cities
    {
        return Err(CheckpointError::Binary(
            "meta block disagrees with header (variant or universe dims)".to_string(),
        ));
    }
    if header.table_count as usize != TABLE_NAMES.len() || meta.tables.len() != TABLE_NAMES.len() {
        return Err(CheckpointError::Binary(format!(
            "expected {} tables, header declares {} and directory {}",
            TABLE_NAMES.len(),
            header.table_count,
            meta.tables.len()
        )));
    }

    let mut tables = Vec::with_capacity(TABLE_NAMES.len());
    for name in TABLE_NAMES {
        let entry = meta
            .tables
            .iter()
            .find(|t| t.name == name)
            .ok_or_else(|| CheckpointError::Binary(format!("table {name:?} missing")))?;
        let offset = entry.offset as usize;
        let rows = entry.rows as usize;
        let cols = entry.cols as usize;
        if !offset.is_multiple_of(ALIGN) {
            return Err(CheckpointError::Binary(format!(
                "table {name:?} offset {offset} is not {ALIGN}-byte aligned"
            )));
        }
        let byte_len = rows
            .checked_mul(cols)
            .and_then(|n| n.checked_mul(4))
            .ok_or_else(|| {
                CheckpointError::Binary(format!("table {name:?} dimensions overflow"))
            })?;
        if rows == 0 || cols == 0 {
            return Err(CheckpointError::Binary(format!(
                "table {name:?} has zero extent ({rows}x{cols})"
            )));
        }
        // Tables live strictly between the header and the meta block.
        if offset < HEADER_LEN || offset.checked_add(byte_len).is_none_or(|e| e > meta_offset) {
            return Err(CheckpointError::Binary(format!(
                "table {name:?} [{offset}, +{byte_len}) escapes the payload region \
                 [{HEADER_LEN}, {meta_offset}) (truncated?)"
            )));
        }
        tables.push((offset, rows, cols, entry.fnv));
    }
    Ok(ParsedOdz { meta, tables })
}

/// Assemble a [`FrozenOdNet`] from parsed meta and four resolved tables.
fn assemble(meta: OdzMeta, ou: Table, oc: Table, du: Table, dc: Table) -> FrozenOdNet {
    FrozenOdNet {
        variant: meta.variant,
        config: meta.config,
        num_users: meta.num_users as usize,
        num_cities: meta.num_cities as usize,
        origin: FrozenBranch {
            users: ou,
            cities: oc,
            pec: meta.origin_pec,
            intent: meta.origin_intent,
        },
        dest: FrozenBranch {
            users: du,
            cities: dc,
            pec: meta.dest_pec,
            intent: meta.dest_intent,
        },
        head: meta.head,
        theta: meta.theta,
    }
}

impl FrozenOdNet {
    /// Write the artifact as an `.odz` binary: aligned zero-copy-ready
    /// tables plus a checksummed meta block. Validates before writing so a
    /// corrupt in-memory artifact can never become a plausible file.
    pub fn save_bin(&self, path: &Path) -> Result<(), CheckpointError> {
        self.validate_artifact()?;
        let io = |e: std::io::Error| CheckpointError::Io(format!("writing {path:?}: {e}"));
        let file = File::create(path).map_err(io)?;
        let mut w = BufWriter::new(file);
        w.write_all(&[0u8; HEADER_LEN]).map_err(io)?;
        let mut pos = HEADER_LEN as u64;

        let tables: [(&str, &Table); 4] = [
            (TABLE_NAMES[0], &self.origin.users),
            (TABLE_NAMES[1], &self.origin.cities),
            (TABLE_NAMES[2], &self.dest.users),
            (TABLE_NAMES[3], &self.dest.cities),
        ];
        let mut directory = Vec::with_capacity(tables.len());
        for (name, table) in tables {
            let pad = (ALIGN as u64 - pos % ALIGN as u64) % ALIGN as u64;
            w.write_all(&vec![0u8; pad as usize]).map_err(io)?;
            pos += pad;
            let offset = pos;
            let mut fnv = FNV_OFFSET;
            // Stream in chunks so paper-scale tables never double in RAM.
            let data = table.as_slice();
            let mut buf = Vec::with_capacity(4 * 65_536);
            for chunk in data.chunks(65_536) {
                buf.clear();
                for v in chunk {
                    buf.extend_from_slice(&v.to_le_bytes());
                }
                fnv = fnv1a(fnv, &buf);
                w.write_all(&buf).map_err(io)?;
            }
            pos += 4 * data.len() as u64;
            directory.push(OdzTableMeta {
                name: name.to_string(),
                offset,
                rows: table.rows() as u64,
                cols: table.cols() as u64,
                fnv,
            });
        }

        // Meta JSON, hand-assembled from borrows (field names must match
        // the `OdzMeta` deserialization struct above).
        use serde::Serialize as _;
        let meta = serde::Content::Map(vec![
            ("format_version".into(), ODZ_VERSION.to_content()),
            ("variant".into(), self.variant.to_content()),
            ("config".into(), self.config.to_content()),
            ("num_users".into(), (self.num_users as u64).to_content()),
            ("num_cities".into(), (self.num_cities as u64).to_content()),
            ("theta".into(), self.theta.to_content()),
            ("tables".into(), directory.to_content()),
            ("origin_pec".into(), self.origin.pec.to_content()),
            ("origin_intent".into(), self.origin.intent.to_content()),
            ("dest_pec".into(), self.dest.pec.to_content()),
            ("dest_intent".into(), self.dest.intent.to_content()),
            ("head".into(), self.head.to_content()),
        ]);
        let meta_json = serde_json::to_string(&meta).map_err(CheckpointError::Parse)?;
        let meta_offset = pos;
        w.write_all(meta_json.as_bytes()).map_err(io)?;

        let header = OdzHeader {
            variant: self.variant,
            num_users: self.num_users as u64,
            num_cities: self.num_cities as u64,
            table_count: TABLE_NAMES.len() as u32,
            embed_dim: self.config.embed_dim as u32,
            meta_offset,
            meta_len: meta_json.len() as u64,
            meta_fnv: fnv1a(FNV_OFFSET, meta_json.as_bytes()),
        };
        let mut file = w.into_inner().map_err(|e| io(e.into_error()))?;
        file.seek(SeekFrom::Start(0)).map_err(io)?;
        file.write_all(&header.encode()).map_err(io)?;
        file.sync_all().map_err(io)?;
        Ok(())
    }

    /// Owned binary read: every table checksum is verified and the full
    /// artifact validation (including the finiteness scan) runs. Use this
    /// to establish trust in a file; use [`FrozenOdNet::load_bin_mmap`]
    /// for serving cold starts.
    pub fn load_bin(path: &Path) -> Result<Self, CheckpointError> {
        let bytes = std::fs::read(path)
            .map_err(|e| CheckpointError::Io(format!("reading {path:?}: {e}")))?;
        let parsed = parse_odz(&bytes)?;
        let mut loaded = Vec::with_capacity(TABLE_NAMES.len());
        for (name, &(offset, rows, cols, fnv)) in TABLE_NAMES.iter().zip(&parsed.tables) {
            let raw = &bytes[offset..offset + rows * cols * 4];
            if fnv1a(FNV_OFFSET, raw) != fnv {
                return Err(CheckpointError::Binary(format!(
                    "table {name:?} checksum mismatch (corrupt payload)"
                )));
            }
            let data: Vec<f32> = raw
                .chunks_exact(4)
                .map(|b| f32::from_le_bytes(b.try_into().expect("4 bytes")))
                .collect();
            loaded.push(Table::Owned(Tensor::new(Shape::Matrix(rows, cols), data)));
        }
        let dc = loaded.pop().expect("4 tables");
        let du = loaded.pop().expect("4 tables");
        let oc = loaded.pop().expect("4 tables");
        let ou = loaded.pop().expect("4 tables");
        let frozen = assemble(parsed.meta, ou, oc, du, dc);
        frozen.validate_artifact()?;
        Ok(frozen)
    }

    /// Zero-copy load: the returned artifact scores directly out of the
    /// mapped file. Header, directory, and meta checksums are verified and
    /// all geometry is validated against the config, but table payloads
    /// are not scanned — pages fault in lazily as rows are touched, and N
    /// processes mapping the same file share one physical copy.
    pub fn load_bin_mmap(path: &Path) -> Result<Self, CheckpointError> {
        let io = |e: std::io::Error| CheckpointError::Io(format!("mapping {path:?}: {e}"));
        let file = File::open(path).map_err(io)?;
        let len = file.metadata().map_err(io)?.len() as usize;
        let region = Arc::new(MmapRegion::open(&file, len).map_err(io)?);
        let parsed = parse_odz(region.as_bytes())?;
        let table = |&(offset, rows, cols, _fnv): &(usize, usize, usize, u32)| Table::Mapped {
            region: Arc::clone(&region),
            offset,
            rows,
            cols,
        };
        let [ou, oc, du, dc] = [
            table(&parsed.tables[0]),
            table(&parsed.tables[1]),
            table(&parsed.tables[2]),
            table(&parsed.tables[3]),
        ];
        let frozen = assemble(parsed.meta, ou, oc, du, dc);
        frozen.validate_geometry()?;
        Ok(frozen)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_vectors() {
        // Standard FNV-1a 32-bit test vectors.
        assert_eq!(fnv1a(FNV_OFFSET, b""), 0x811c_9dc5);
        assert_eq!(fnv1a(FNV_OFFSET, b"a"), 0xe40c_292c);
        assert_eq!(fnv1a(FNV_OFFSET, b"foobar"), 0xbf9c_f968);
    }

    #[test]
    fn header_round_trips_and_rejects_corruption() {
        let h = OdzHeader {
            variant: Variant::OdnetG,
            num_users: 2_600_000,
            num_cities: 200,
            table_count: 4,
            embed_dim: 16,
            meta_offset: 1 << 30,
            meta_len: 4096,
            meta_fnv: 0xdead_beef,
        };
        let enc = h.encode();
        let back = OdzHeader::decode(&enc).expect("round trip");
        assert_eq!(back.variant, Variant::OdnetG);
        assert_eq!(back.num_users, 2_600_000);
        assert_eq!(back.num_cities, 200);
        assert_eq!(back.meta_offset, 1 << 30);

        // Any flipped header byte must be caught by the checksum (or the
        // magic/version checks before it).
        for i in 0..HEADER_LEN {
            let mut bad = enc;
            bad[i] ^= 0x40;
            assert!(
                OdzHeader::decode(&bad).is_err(),
                "flipped header byte {i} went undetected"
            );
        }
    }

    #[test]
    fn aligned_fallback_region_is_64_byte_aligned() {
        let dir = std::env::temp_dir().join("odz_align_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("blob.bin");
        std::fs::write(&path, vec![7u8; 1000]).unwrap();
        let file = File::open(&path).unwrap();
        let region = MmapRegion::read_aligned(&file, 1000).unwrap();
        assert_eq!(region.as_bytes().len(), 1000);
        assert!(region.as_bytes().iter().all(|&b| b == 7));
        assert_eq!(region.as_bytes().as_ptr() as usize % 64, 0);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn mapped_region_serves_file_bytes() {
        let dir = std::env::temp_dir().join("odz_mmap_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("blob.bin");
        let data: Vec<u8> = (0..=255u8).cycle().take(8192).collect();
        std::fs::write(&path, &data).unwrap();
        let file = File::open(&path).unwrap();
        let region = MmapRegion::open(&file, data.len()).unwrap();
        assert_eq!(region.as_bytes(), &data[..]);
        let _ = std::fs::remove_file(&path);
    }
}
