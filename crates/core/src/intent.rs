//! Travel-intention module — the paper's stated future work (§VII: "we will
//! consider to take travel intentions of users into account").
//!
//! Intentions (vacation, business trip, return home, …) are latent and
//! short-lived; the observable trace is the user's *recent click stream*.
//! The module learns a small set of **intent prototypes** and infers a soft
//! intent vector per request: the mean short-term click embedding attends
//! over the prototypes, and the attention-weighted prototype mix joins the
//! per-task representation `q`. The prototype bottleneck forces the
//! short-term signal through a discrete-ish intent space instead of leaking
//! raw click averages, which is what makes the inferred intents
//! interpretable (each prototype specializes).
//!
//! Enabled via [`crate::OdnetConfig::intents`] (> 0 prototypes); off by
//! default, and benchmarked by the `ablation` binary.

use od_tensor::infer::{self, Workspace};
use od_tensor::nn::Embedding;
use od_tensor::{Graph, ParamStore, Shape, Tensor, Value};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A learned bank of intent prototypes with soft assignment.
#[derive(Clone, Debug)]
pub struct IntentModule {
    prototypes: Embedding,
    num_intents: usize,
    dim: usize,
}

impl IntentModule {
    /// Register `num_intents` prototype vectors of width `dim` under `name`.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        num_intents: usize,
        dim: usize,
        rng: &mut impl Rng,
    ) -> Self {
        assert!(num_intents > 0, "need at least one intent prototype");
        IntentModule {
            prototypes: Embedding::new(store, name, num_intents, dim, rng),
            num_intents,
            dim,
        }
    }

    /// Number of prototypes.
    pub fn num_intents(&self) -> usize {
        self.num_intents
    }

    /// Infer the soft intent vector from short-term click embeddings
    /// (`s×d`). Returns a length-`d` vector; zero when there are no recent
    /// clicks (no evidence → no intent).
    pub fn forward(&self, g: &mut Graph, store: &ParamStore, short_emb: Option<Value>) -> Value {
        let Some(short) = short_emb else {
            return g.input(Tensor::zeros(Shape::Vector(self.dim)));
        };
        let all: Vec<usize> = (0..self.num_intents).collect();
        let protos = self.prototypes.forward(g, store, &all); // k×d
        let query = g.mean_rows(short); // d
        let protos_t = g.transpose(protos); // d×k
        let scores = g.matmul(query, protos_t); // 1×k
        let assignment = g.softmax_rows(scores);
        let mixed = g.matmul(assignment, protos); // 1×d
        g.reshape(mixed, Shape::Vector(self.dim))
    }

    /// The soft assignment weights alone (diagnostics: which intent a
    /// click stream expresses). Row of `num_intents` probabilities.
    pub fn assignment(&self, g: &mut Graph, store: &ParamStore, short_emb: Value) -> Value {
        let all: Vec<usize> = (0..self.num_intents).collect();
        let protos = self.prototypes.forward(g, store, &all);
        let query = g.mean_rows(short_emb);
        let protos_t = g.transpose(protos);
        let scores = g.matmul(query, protos_t);
        g.softmax_rows(scores)
    }

    /// Snapshot the prototype bank into a [`FrozenIntent`].
    pub fn freeze(&self, store: &ParamStore) -> FrozenIntent {
        FrozenIntent {
            prototypes: store.value(self.prototypes.table()).clone(),
            num_intents: self.num_intents,
            dim: self.dim,
        }
    }
}

/// Inference-time snapshot of an [`IntentModule`].
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct FrozenIntent {
    prototypes: Tensor,
    num_intents: usize,
    dim: usize,
}

impl FrozenIntent {
    /// Validate the prototype table against the branch dimension `d`.
    pub(crate) fn check(
        &self,
        what: &str,
        d: usize,
    ) -> Result<(), od_tensor::nn::FrozenCheckError> {
        use od_tensor::nn::FrozenCheckError;
        if self.dim != d {
            return Err(FrozenCheckError::Shape(format!(
                "{what}: intent dim {} does not match the embedding dim {d}",
                self.dim
            )));
        }
        if self.num_intents == 0 {
            return Err(FrozenCheckError::Shape(format!(
                "{what}: intent module with zero prototypes"
            )));
        }
        od_tensor::nn::check_matrix(
            &format!("{what}.prototypes"),
            &self.prototypes,
            self.num_intents,
            d,
        )
    }

    /// Tape-free counterpart of [`IntentModule::forward`]: `short_emb` is an
    /// optional `(buffer, len)` pair of `s×d` click embeddings; returns the
    /// length-`d` soft intent vector as a workspace buffer (zeros when there
    /// are no recent clicks).
    pub fn forward(&self, ws: &mut Workspace, short_emb: Option<(&[f32], usize)>) -> Vec<f32> {
        let Some((short, s)) = short_emb else {
            return ws.take(self.dim);
        };
        let (k, d) = (self.num_intents, self.dim);
        let mut query = ws.take(d);
        infer::mean_rows_into(short, s, d, &mut query);
        let mut protos_t = ws.take(d * k);
        infer::transpose_into(self.prototypes.as_slice(), k, d, &mut protos_t);
        let mut scores = ws.take(k);
        infer::matmul_into(&query, 1, d, &protos_t, k, &mut scores);
        infer::softmax_rows_in_place(&mut scores, k);
        let mut mixed = ws.take(d);
        infer::matmul_into(&scores, 1, k, self.prototypes.as_slice(), d, &mut mixed);
        ws.give(query);
        ws.give(protos_t);
        ws.give(scores);
        mixed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use od_tensor::init;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const D: usize = 8;

    fn module(store: &mut ParamStore) -> IntentModule {
        IntentModule::new(store, "intent", 4, D, &mut StdRng::seed_from_u64(3))
    }

    #[test]
    fn output_is_a_convex_prototype_mix() {
        let mut store = ParamStore::new();
        let m = module(&mut store);
        assert_eq!(m.num_intents(), 4);
        let mut g = Graph::new();
        let clicks = g.input(init::gaussian(
            Shape::Matrix(3, D),
            0.0,
            0.5,
            &mut StdRng::seed_from_u64(9),
        ));
        let a = m.assignment(&mut g, &store, clicks);
        let t = g.value(a);
        assert_eq!(t.len(), 4);
        assert!((t.sum() - 1.0).abs() < 1e-5);
        assert!(t.as_slice().iter().all(|&w| w >= 0.0));
        let intent = m.forward(&mut g, &store, Some(clicks));
        assert_eq!(g.value(intent).shape(), Shape::Vector(D));
    }

    #[test]
    fn no_clicks_means_zero_intent() {
        let mut store = ParamStore::new();
        let m = module(&mut store);
        let mut g = Graph::new();
        let v = m.forward(&mut g, &store, None);
        assert_eq!(g.value(v).sum(), 0.0);
    }

    #[test]
    fn different_click_streams_express_different_intents() {
        let mut store = ParamStore::new();
        let m = module(&mut store);
        let run = |seed: u64, store: &ParamStore| {
            let mut g = Graph::new();
            let clicks = g.input(init::gaussian(
                Shape::Matrix(3, D),
                0.0,
                1.0,
                &mut StdRng::seed_from_u64(seed),
            ));
            let v = m.forward(&mut g, store, Some(clicks));
            g.value(v).as_slice().to_vec()
        };
        assert_ne!(run(1, &store), run(2, &store));
    }

    #[test]
    fn prototypes_receive_gradients() {
        let mut store = ParamStore::new();
        let m = module(&mut store);
        let mut g = Graph::new();
        let clicks = g.input(init::gaussian(
            Shape::Matrix(2, D),
            0.0,
            1.0,
            &mut StdRng::seed_from_u64(4),
        ));
        let v = m.forward(&mut g, &store, Some(clicks));
        let sq = g.mul(v, v);
        let loss = g.sum_all(sq);
        g.backward(loss);
        g.accumulate_param_grads(&mut store);
        let id = store.lookup("intent").unwrap();
        assert!(store.grad(id).sq_norm() > 0.0);
    }

    #[test]
    fn frozen_intent_matches_live_bitwise() {
        let mut store = ParamStore::new();
        let m = module(&mut store);
        let frozen = m.freeze(&store);
        let clicks = init::gaussian(Shape::Matrix(3, D), 0.0, 0.5, &mut StdRng::seed_from_u64(9));
        let mut g = Graph::new();
        let cv = g.input(clicks.clone());
        let live = m.forward(&mut g, &store, Some(cv));
        let mut ws = Workspace::new();
        let out = frozen.forward(&mut ws, Some((clicks.as_slice(), 3)));
        assert_eq!(out.as_slice(), g.value(live).as_slice());
        ws.give(out);
        let zero = frozen.forward(&mut ws, None);
        assert!(zero.iter().all(|&v| v == 0.0));
    }

    #[test]
    #[should_panic(expected = "at least one intent")]
    fn rejects_zero_prototypes() {
        IntentModule::new(
            &mut ParamStore::new(),
            "i",
            0,
            4,
            &mut StdRng::seed_from_u64(0),
        );
    }
}
