//! Model hyper-parameters.

use serde::{Deserialize, Serialize};

/// Hyper-parameters of ODNET and its variants. Defaults follow §V-A.5 and
/// §V-B of the paper where the paper specifies a value (heads = 4, K = 2,
/// neighbor cap = 5, Adam lr = 0.01, batch 128, 5 epochs) and sensible
/// laptop-scale widths elsewhere.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct OdnetConfig {
    /// Embedding width `d` (the output dimension of the HSGC's `M_T`).
    pub embed_dim: usize,
    /// Attention heads `h` in the PEC encoding layer (paper optimum: 4).
    pub heads: usize,
    /// HSG exploration depth `K` in Algorithm 1 (paper knee: 2).
    pub depth: usize,
    /// Per-node neighbor cap in the HSG (paper: 5, after Fan et al.).
    pub neighbor_cap: usize,
    /// Number of MMoE experts (paper: 3).
    pub experts: usize,
    /// Expert output width `d_r`.
    pub expert_dim: usize,
    /// Hidden width of the task towers.
    pub tower_hidden: usize,
    /// Maximum long-term sequence length fed to the PEC.
    pub max_long_seq: usize,
    /// Maximum short-term sequence length fed to the PEC.
    pub max_short_seq: usize,
    /// Adam learning rate (paper: 0.01).
    pub learning_rate: f32,
    /// Mini-batch size in *groups* — each group is one (user, day) decision
    /// with all its candidate samples (paper: batch 128 samples).
    pub batch_groups: usize,
    /// Training epochs (paper: 5).
    pub epochs: usize,
    /// Initial value of the learnable loss weight θ (Eq. 8), before the
    /// sigmoid reparameterization.
    pub theta_init: f32,
    /// Entropy-regularization strength λ on the learnable θ. The bare Eq. 8
    /// objective collapses θ onto the easier task; with the regularizer the
    /// stationary point is θ* = σ((L_D − L_O)/λ), which keeps both tasks
    /// learning. Set to 0 to recover the unregularized paper equation.
    pub theta_entropy: f32,
    /// Gradient-clipping threshold (global L2 norm).
    pub grad_clip: f32,
    /// Worker threads for data-parallel training (the paper trains on
    /// 50 PAI workers; we use cores).
    pub workers: usize,
    /// Travel-intention prototypes (the paper's §VII future-work extension;
    /// 0 disables the intent module).
    pub intents: usize,
    /// Score candidates one at a time instead of stacking the group into
    /// `n×d` batched matrices. The per-candidate path is the correctness
    /// oracle for the batched forward; serving and training default to the
    /// batched path, which runs one matmul per layer per group.
    pub per_candidate_scoring: bool,
    /// Seed for parameter initialization and neighbor sampling.
    pub seed: u64,
}

impl Default for OdnetConfig {
    fn default() -> Self {
        OdnetConfig {
            embed_dim: 16,
            heads: 4,
            depth: 2,
            neighbor_cap: 5,
            experts: 3,
            expert_dim: 32,
            tower_hidden: 32,
            max_long_seq: 12,
            max_short_seq: 8,
            learning_rate: 0.01,
            batch_groups: 18, // ≈ 128 samples at 7 samples per group
            epochs: 5,
            theta_init: 0.5,
            theta_entropy: 0.5,
            grad_clip: 5.0,
            workers: default_workers(),
            intents: 0,
            per_candidate_scoring: false,
            seed: 0x0D_0E7,
        }
    }
}

impl OdnetConfig {
    /// A miniature configuration for unit tests (fast, single-threaded).
    pub fn tiny() -> Self {
        OdnetConfig {
            embed_dim: 8,
            heads: 2,
            depth: 1,
            expert_dim: 8,
            tower_hidden: 8,
            max_long_seq: 6,
            max_short_seq: 4,
            epochs: 2,
            workers: 1,
            ..Self::default()
        }
    }

    /// Derived width of the per-task representation `q` (Fig. 4): the PEC
    /// summary `v_L`, the user embedding, the current-city embedding, the
    /// candidate-city embedding, and the temporal statistics vector.
    pub fn q_dim(&self) -> usize {
        let intent = if self.intents > 0 { self.embed_dim } else { 0 };
        4 * self.embed_dim + crate::features::XST_DIM + intent
    }
}

fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get().min(8))
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_settings() {
        let c = OdnetConfig::default();
        assert_eq!(c.heads, 4);
        assert_eq!(c.depth, 2);
        assert_eq!(c.neighbor_cap, 5);
        assert_eq!(c.experts, 3);
        assert_eq!(c.epochs, 5);
        assert!((c.learning_rate - 0.01).abs() < f32::EPSILON);
    }

    #[test]
    fn q_dim_accounts_for_all_concatenated_parts() {
        let c = OdnetConfig::default();
        assert_eq!(c.q_dim(), 4 * 16 + crate::features::XST_DIM);
    }

    #[test]
    fn tiny_is_small_and_single_threaded() {
        let c = OdnetConfig::tiny();
        assert_eq!(c.workers, 1);
        assert!(c.embed_dim <= 8);
        assert!(
            c.embed_dim.is_multiple_of(c.heads),
            "heads must divide embed_dim"
        );
    }
}
