//! The frozen inference artifact — the serving half of the train/serve
//! split.
//!
//! The paper trains ODNET offline (on PAI) and serves it online at Fliggy;
//! [`FrozenOdNet`] is that deployment boundary. [`crate::OdNetModel::freeze`]
//! produces it by:
//!
//! - materializing the HSGC's depth-`K` user/city embeddings for both
//!   branches into dense tables (Algorithm 1's K-step aggregation collapses
//!   to a row lookup at serving time),
//! - extracting PEC/MMoE/tower weights from the `ParamStore` into plain
//!   row-major matrices, and
//! - recording the learned loss weight θ as a plain scalar.
//!
//! Scoring then runs the tape-free forward from `od_tensor::infer`: no
//! `Graph`, no `Value`s, and — once the [`Workspace`] pool is warm — no
//! per-request allocation. Every kernel mirrors the live batched forward op
//! for op, so frozen scores are bit-identical to the live tape (the live
//! path remains the correctness oracle; see
//! `tests/frozen_equivalence.rs`).

use crate::artifact::Table;
use crate::config::OdnetConfig;
use crate::eval::OdScorer;
use crate::features::{GroupInput, XST_DIM};
use crate::intent::FrozenIntent;
use crate::mmoe::{FrozenMmoeHead, FrozenSingleHead};
use crate::model::{CheckpointError, Variant};
use crate::pec::FrozenPec;
use od_hsg::CityId;
use od_tensor::infer::Workspace;
use od_tensor::stable_sigmoid;
use serde::{Deserialize, Serialize};
use std::cell::RefCell;

/// Format version of the standalone frozen artifact (independent of the
/// full training checkpoint's version).
const FROZEN_FORMAT_VERSION: u32 = 1;

/// One frozen branch: dense embedding tables (already depth-`K` aggregated
/// for graph variants) plus the frozen PEC and optional intent module.
/// The tables are [`Table`]s so they can be owned (JSON / binary read) or
/// borrowed zero-copy from an mmap'd `.odz` file — scoring never copies.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub(crate) struct FrozenBranch {
    /// `num_users×d` final user embeddings.
    pub(crate) users: Table,
    /// `num_cities×d` final city embeddings.
    pub(crate) cities: Table,
    pub(crate) pec: FrozenPec,
    pub(crate) intent: Option<FrozenIntent>,
}

/// The frozen scoring head. The MMoE variant is boxed: it carries experts,
/// two gates, and two towers, dwarfing the single-task pair of towers.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub(crate) enum FrozenHead {
    Joint(Box<FrozenMmoeHead>),
    Single(FrozenSingleHead),
}

/// An immutable, tape-free serving artifact produced by
/// [`crate::OdNetModel::freeze`].
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct FrozenOdNet {
    pub(crate) variant: Variant,
    pub(crate) config: OdnetConfig,
    pub(crate) num_users: usize,
    pub(crate) num_cities: usize,
    pub(crate) origin: FrozenBranch,
    pub(crate) dest: FrozenBranch,
    pub(crate) head: FrozenHead,
    /// The learned loss weight θ (Eq. 8), already through the sigmoid.
    pub(crate) theta: f32,
}

thread_local! {
    /// Per-thread scratch pool for [`FrozenOdNet::score_group`], so the
    /// `&self` scoring API stays `Sync` without locking.
    static WORKSPACE: RefCell<Workspace> = RefCell::new(Workspace::new());
}

impl FrozenOdNet {
    /// Assembled variant.
    pub fn variant(&self) -> Variant {
        self.variant
    }

    /// Hyper-parameters the artifact was frozen from.
    pub fn config(&self) -> &OdnetConfig {
        &self.config
    }

    /// User universe size.
    pub fn num_users(&self) -> usize {
        self.num_users
    }

    /// City universe size.
    pub fn num_cities(&self) -> usize {
        self.num_cities
    }

    /// The frozen loss weight θ (Eq. 8).
    pub fn theta(&self) -> f32 {
        self.theta
    }

    /// Score a group: per-candidate `(p^O, p^D)` probabilities, using a
    /// thread-local [`Workspace`].
    pub fn score_group(&self, group: &GroupInput) -> Vec<(f32, f32)> {
        WORKSPACE.with(|ws| self.score_group_with(&mut ws.borrow_mut(), group))
    }

    /// Score a group with a caller-provided workspace. In a steady-state
    /// serving loop the workspace pool satisfies every scratch request
    /// without touching the allocator.
    pub fn score_group_with(&self, ws: &mut Workspace, group: &GroupInput) -> Vec<(f32, f32)> {
        let mut out = Vec::new();
        self.score_group_into(ws, group, &mut out);
        out
    }

    /// Score a group into a caller-provided output buffer (cleared first).
    /// Combined with a warm [`Workspace`] this removes the last per-request
    /// allocation from the serving hot path: the serving engine and ranking
    /// loops reuse one output buffer across requests.
    pub fn score_group_into(
        &self,
        ws: &mut Workspace,
        group: &GroupInput,
        out: &mut Vec<(f32, f32)>,
    ) {
        out.clear();
        let n = group.candidates.len();
        if n == 0 {
            return;
        }
        let q_dim = self.config.q_dim();

        let trunk_o = self.origin.trunk(ws, &group.lt_origins, &group.st_origins);
        let trunk_d = self.dest.trunk(ws, &group.lt_dests, &group.st_dests);
        let e_user_o = self.origin.users.row(group.user.index());
        let e_lbs_o = self.origin.cities.row(group.current_city.index());
        let e_user_d = self.dest.users.row(group.user.index());
        let e_lbs_d = self.dest.cities.row(group.current_city.index());

        // Assemble the per-candidate task representations. Joint variants
        // build q⊕ = concat(q^O, q^D) rows directly (plain copies, so this
        // equals the live path's nested concats exactly).
        let (logits_o, logits_d) = match &self.head {
            FrozenHead::Joint(mmoe) => {
                let mut q_cat = ws.take(n * 2 * q_dim);
                for (i, cand) in group.candidates.iter().enumerate() {
                    let row = &mut q_cat[i * 2 * q_dim..(i + 1) * 2 * q_dim];
                    let (row_o, row_d) = row.split_at_mut(q_dim);
                    fill_q(
                        row_o,
                        &trunk_o.v_l,
                        e_user_o,
                        e_lbs_o,
                        self.origin.cities.row(cand.origin.index()),
                        &cand.xst_o,
                        trunk_o.intent.as_deref(),
                    );
                    fill_q(
                        row_d,
                        &trunk_d.v_l,
                        e_user_d,
                        e_lbs_d,
                        self.dest.cities.row(cand.dest.index()),
                        &cand.xst_d,
                        trunk_d.intent.as_deref(),
                    );
                }
                let out = mmoe.forward_batched(ws, &q_cat, n);
                ws.give(q_cat);
                out
            }
            FrozenHead::Single(stl) => {
                let mut q_o = ws.take(n * q_dim);
                let mut q_d = ws.take(n * q_dim);
                for (i, cand) in group.candidates.iter().enumerate() {
                    fill_q(
                        &mut q_o[i * q_dim..(i + 1) * q_dim],
                        &trunk_o.v_l,
                        e_user_o,
                        e_lbs_o,
                        self.origin.cities.row(cand.origin.index()),
                        &cand.xst_o,
                        trunk_o.intent.as_deref(),
                    );
                    fill_q(
                        &mut q_d[i * q_dim..(i + 1) * q_dim],
                        &trunk_d.v_l,
                        e_user_d,
                        e_lbs_d,
                        self.dest.cities.row(cand.dest.index()),
                        &cand.xst_d,
                        trunk_d.intent.as_deref(),
                    );
                }
                let out = stl.forward_batched(ws, &q_o, &q_d, n);
                ws.give(q_o);
                ws.give(q_d);
                out
            }
        };

        out.extend(
            logits_o
                .iter()
                .zip(&logits_d)
                .map(|(&a, &b)| (stable_sigmoid(a), stable_sigmoid(b))),
        );
        ws.give(logits_o);
        ws.give(logits_d);
        trunk_o.give_back(ws);
        trunk_d.give_back(ws);
    }

    /// The serving score of Eq. 11 with the frozen θ.
    pub fn serving_score(&self, p_o: f32, p_d: f32) -> f32 {
        self.theta * p_o + (1.0 - self.theta) * p_d
    }

    /// Read-only view of the four dense embedding tables — the raw
    /// material of the retrieval tier (`od-retrieval`). The slices borrow
    /// straight from the artifact's [`Table`]s, so this is zero-copy for
    /// both owned and mmap-backed (`.odz`) artifacts; for the latter,
    /// touching a row faults its pages in lazily like every other score.
    pub fn embeddings(&self) -> EmbeddingView<'_> {
        EmbeddingView {
            origin_users: self.origin.users.as_slice(),
            origin_cities: self.origin.cities.as_slice(),
            dest_users: self.dest.users.as_slice(),
            dest_cities: self.dest.cities.as_slice(),
            num_users: self.num_users,
            num_cities: self.num_cities,
            dim: self.config.embed_dim,
            theta: self.theta,
        }
    }

    /// Serialize the artifact to standalone JSON (self-contained: no HSG or
    /// dataset needed to load it back).
    pub fn save_json(&self) -> String {
        // Built as a Content map by hand: the vendored serde derive cannot
        // handle a borrowing (generic) wrapper struct.
        let ckpt = serde::Content::Map(vec![
            (
                "format_version".to_string(),
                serde::Serialize::to_content(&FROZEN_FORMAT_VERSION),
            ),
            ("artifact".to_string(), serde::Serialize::to_content(self)),
        ]);
        serde_json::to_string(&ckpt).expect("frozen artifact serialization cannot fail")
    }

    /// Restore an artifact from [`FrozenOdNet::save_json`] output. The
    /// artifact is structurally validated before it is handed out: mutually
    /// inconsistent matrix dimensions or non-finite weights are rejected
    /// with a typed [`CheckpointError`] instead of panicking (or silently
    /// serving NaN scores) at request time.
    pub fn load_json(json: &str) -> Result<Self, CheckpointError> {
        let ckpt: FrozenCheckpoint = serde_json::from_str(json).map_err(CheckpointError::Parse)?;
        if ckpt.format_version != FROZEN_FORMAT_VERSION {
            return Err(CheckpointError::Version(ckpt.format_version));
        }
        ckpt.artifact.validate_artifact()?;
        Ok(ckpt.artifact)
    }

    /// Structural validation of a (possibly untrusted) artifact: every
    /// weight matrix must match the geometry the config declares, geometry
    /// must be mutually consistent across components, and no tensor may
    /// carry NaN/±∞. Runs automatically inside [`FrozenOdNet::load_json`]
    /// and [`FrozenOdNet::from_checkpoint_json`].
    pub fn validate_artifact(&self) -> Result<(), CheckpointError> {
        self.validate_impl(true)
    }

    /// Shallow validation for the zero-copy mmap load path: all geometry
    /// and the (small, resident) module weights are fully checked, but the
    /// big embedding tables are not scanned for non-finite values — a scan
    /// would fault in every page of a multi-GB artifact and defeat lazy
    /// loading. Trust in the payload bytes comes from [`FrozenOdNet::save_bin`]
    /// validating before writing plus the header/meta checksums; an
    /// end-to-end audit of a file is [`FrozenOdNet::load_bin`]'s job.
    pub(crate) fn validate_geometry(&self) -> Result<(), CheckpointError> {
        self.validate_impl(false)
    }

    fn validate_impl(&self, deep: bool) -> Result<(), CheckpointError> {
        let d = self.config.embed_dim;
        if self.num_users == 0 || self.num_cities == 0 {
            return Err(CheckpointError::Inconsistent(format!(
                "artifact declares {} users and {} cities",
                self.num_users, self.num_cities
            )));
        }
        for (name, branch) in [("origin", &self.origin), ("dest", &self.dest)] {
            branch
                .users
                .check(&format!("{name}.users"), self.num_users, d, deep)?;
            branch
                .cities
                .check(&format!("{name}.cities"), self.num_cities, d, deep)?;
            branch.pec.check(&format!("{name}.pec"), d)?;
            if branch.intent.is_some() != (self.config.intents > 0) {
                return Err(CheckpointError::Inconsistent(format!(
                    "{name}: intent module presence disagrees with config.intents = {}",
                    self.config.intents
                )));
            }
            if let Some(intent) = &branch.intent {
                intent.check(&format!("{name}.intent"), d)?;
            }
        }
        let q_dim = self.config.q_dim();
        match &self.head {
            FrozenHead::Joint(mmoe) => mmoe.check(
                "head",
                2 * q_dim,
                self.config.experts,
                self.config.expert_dim,
            )?,
            FrozenHead::Single(stl) => stl.check("head", q_dim)?,
        }
        if !self.theta.is_finite() {
            return Err(CheckpointError::NonFinite("theta".to_string()));
        }
        if !(0.0..=1.0).contains(&self.theta) {
            return Err(CheckpointError::Inconsistent(format!(
                "theta {} outside [0, 1] (it is a post-sigmoid weight)",
                self.theta
            )));
        }
        Ok(())
    }

    /// Admission-control validation of one scoring request against this
    /// artifact's universe: user and city ids must be in range and the
    /// history sequences must be mutually aligned and no longer than the
    /// lengths the model was trained with. A request that passes is
    /// guaranteed to score without panicking — the serving engine calls this
    /// at submit so malformed requests are rejected at the edge with a typed
    /// error instead of crashing a worker mid-batch.
    pub fn validate_group(&self, group: &GroupInput) -> Result<(), crate::InvalidInput> {
        crate::features::validate_group(
            group,
            self.num_users,
            self.num_cities,
            self.config.max_long_seq,
            self.config.max_short_seq,
        )
    }
}

/// Zero-copy view of a [`FrozenOdNet`]'s dense embedding tables, handed
/// to the retrieval tier. All tables are row-major `f32`; user tables are
/// `num_users×dim`, city tables `num_cities×dim`. `theta` is the frozen
/// Eq. 8 mixture weight, which the retrieval scorer folds into its
/// separable pair score `θ·⟨u_O,c_O⟩ + (1−θ)·⟨u_D,c_D⟩`.
#[derive(Clone, Copy, Debug)]
pub struct EmbeddingView<'a> {
    /// Origin-branch user table (`num_users×dim`).
    pub origin_users: &'a [f32],
    /// Origin-branch city table (`num_cities×dim`).
    pub origin_cities: &'a [f32],
    /// Destination-branch user table (`num_users×dim`).
    pub dest_users: &'a [f32],
    /// Destination-branch city table (`num_cities×dim`).
    pub dest_cities: &'a [f32],
    /// User universe size.
    pub num_users: usize,
    /// City universe size.
    pub num_cities: usize,
    /// Embedding width.
    pub dim: usize,
    /// Frozen loss weight θ (post-sigmoid, in `[0, 1]`).
    pub theta: f32,
}

impl EmbeddingView<'_> {
    /// Origin-branch embedding row of one user.
    pub fn origin_user_row(&self, user: usize) -> &[f32] {
        &self.origin_users[user * self.dim..(user + 1) * self.dim]
    }

    /// Destination-branch embedding row of one user.
    pub fn dest_user_row(&self, user: usize) -> &[f32] {
        &self.dest_users[user * self.dim..(user + 1) * self.dim]
    }
}

#[derive(Deserialize)]
struct FrozenCheckpoint {
    format_version: u32,
    artifact: FrozenOdNet,
}

/// Candidate-independent per-branch scratch results.
struct FrozenTrunk {
    v_l: Vec<f32>,
    intent: Option<Vec<f32>>,
}

impl FrozenTrunk {
    fn give_back(self, ws: &mut Workspace) {
        ws.give(self.v_l);
        if let Some(i) = self.intent {
            ws.give(i);
        }
    }
}

impl FrozenBranch {
    /// Gather a city sequence into a `t×d` workspace buffer.
    fn gather(&self, ws: &mut Workspace, ids: &[CityId]) -> Option<Vec<f32>> {
        if ids.is_empty() {
            return None;
        }
        let d = self.cities.cols();
        let mut buf = ws.take(ids.len() * d);
        for (i, c) in ids.iter().enumerate() {
            buf[i * d..(i + 1) * d].copy_from_slice(self.cities.row(c.index()));
        }
        Some(buf)
    }

    fn trunk(&self, ws: &mut Workspace, long: &[CityId], short: &[CityId]) -> FrozenTrunk {
        let e_long = self.gather(ws, long);
        let e_short = self.gather(ws, short);
        let v_l = self.pec.forward(
            ws,
            e_long.as_deref().map(|b| (b, long.len())),
            e_short.as_deref().map(|b| (b, short.len())),
        );
        let intent = self
            .intent
            .as_ref()
            .map(|m| m.forward(ws, e_short.as_deref().map(|b| (b, short.len()))));
        if let Some(b) = e_long {
            ws.give(b);
        }
        if let Some(b) = e_short {
            ws.give(b);
        }
        FrozenTrunk { v_l, intent }
    }
}

/// Copy one candidate's task representation into `row` (length `q_dim`):
/// `[v_L | e_user | e_lbs | e_cand | x_st (| intent)]` — the same part
/// order as the live forward's column concat.
fn fill_q(
    row: &mut [f32],
    v_l: &[f32],
    e_user: &[f32],
    e_lbs: &[f32],
    e_cand: &[f32],
    xst: &[f32; XST_DIM],
    intent: Option<&[f32]>,
) {
    let mut o = 0;
    for part in [v_l, e_user, e_lbs, e_cand, xst.as_slice()] {
        row[o..o + part.len()].copy_from_slice(part);
        o += part.len();
    }
    if let Some(it) = intent {
        row[o..o + it.len()].copy_from_slice(it);
    }
}

impl OdScorer for FrozenOdNet {
    fn score_group(&self, group: &GroupInput) -> Vec<(f32, f32)> {
        FrozenOdNet::score_group(self, group)
    }

    fn score_group_into(&self, group: &GroupInput, out: &mut Vec<(f32, f32)>) {
        WORKSPACE.with(|ws| FrozenOdNet::score_group_into(self, &mut ws.borrow_mut(), group, out))
    }

    fn serving_score(&self, p_o: f32, p_d: f32) -> f32 {
        FrozenOdNet::serving_score(self, p_o, p_d)
    }

    fn name(&self) -> String {
        format!("{} (frozen)", self.variant.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{OdNetModel, Variant};
    use od_hsg::HsgBuilder;

    fn tiny_frozen() -> FrozenOdNet {
        let ds = od_data::FliggyDataset::generate(od_data::FliggyConfig::tiny());
        let variant = Variant::Odnet;
        let hsg = variant.uses_graph().then(|| {
            let coords = ds.world.cities.iter().map(|c| c.coords).collect();
            let mut b = HsgBuilder::new(ds.world.num_users(), coords);
            for it in ds.hsg_interactions() {
                b.add_interaction(it);
            }
            b.build()
        });
        OdNetModel::new(
            variant,
            OdnetConfig::tiny(),
            ds.world.num_users(),
            ds.world.num_cities(),
            hsg,
        )
        .freeze()
    }

    #[test]
    fn fresh_artifact_validates_and_round_trips() {
        let frozen = tiny_frozen();
        frozen.validate_artifact().expect("fresh artifact is valid");
        let back = FrozenOdNet::load_json(&frozen.save_json()).expect("round trip");
        assert_eq!(back.num_users(), frozen.num_users());
    }

    #[test]
    fn nan_weight_is_rejected_as_non_finite() {
        let mut frozen = tiny_frozen();
        frozen.origin.users.as_mut_slice()[0] = f32::NAN;
        match frozen.validate_artifact() {
            Err(CheckpointError::NonFinite(what)) => assert!(what.contains("origin.users")),
            other => panic!("expected NonFinite, got {other:?}"),
        }
    }

    #[test]
    fn mismatched_table_dims_are_rejected_as_inconsistent() {
        let mut frozen = tiny_frozen();
        // The artifact claims one more user than its table holds.
        frozen.num_users += 1;
        match frozen.validate_artifact() {
            Err(CheckpointError::Inconsistent(what)) => assert!(what.contains("users")),
            other => panic!("expected Inconsistent, got {other:?}"),
        }
        // The same corruption arriving through the JSON path is caught by
        // load_json instead of panicking on a later row lookup.
        match FrozenOdNet::load_json(&frozen.save_json()) {
            Err(CheckpointError::Inconsistent(_)) => {}
            other => panic!("expected Inconsistent from load_json, got {other:?}"),
        }
    }

    #[test]
    fn json_injected_infinity_is_rejected() {
        // JSON cannot carry NaN, but an overflowing literal like 1e999
        // parses to ∞ — load_json must refuse to serve it.
        let mut frozen = tiny_frozen();
        frozen.origin.users.as_mut_slice()[0] = 12345.5;
        let json = frozen.save_json().replacen("12345.5", "1e999", 1);
        match FrozenOdNet::load_json(&json) {
            Err(CheckpointError::NonFinite(_)) => {}
            other => panic!("expected NonFinite, got {other:?}"),
        }
    }

    #[test]
    fn theta_outside_unit_interval_is_rejected() {
        let mut frozen = tiny_frozen();
        frozen.theta = 1.5;
        assert!(matches!(
            frozen.validate_artifact(),
            Err(CheckpointError::Inconsistent(_))
        ));
        frozen.theta = f32::NAN;
        assert!(matches!(
            frozen.validate_artifact(),
            Err(CheckpointError::NonFinite(_))
        ));
    }

    #[test]
    fn validate_group_guards_every_id_field() {
        let frozen = tiny_frozen();
        let valid = GroupInput {
            user: od_hsg::UserId(0),
            day: 10,
            current_city: CityId(0),
            lt_origins: vec![CityId(1)],
            lt_dests: vec![CityId(2)],
            lt_days: vec![3],
            st_origins: Vec::new(),
            st_dests: Vec::new(),
            st_days: Vec::new(),
            candidates: Vec::new(),
        };
        frozen.validate_group(&valid).expect("valid group passes");

        let mut g = valid.clone();
        g.user = od_hsg::UserId(frozen.num_users() as u32);
        assert!(matches!(
            frozen.validate_group(&g),
            Err(crate::InvalidInput::UserOutOfRange { .. })
        ));

        let mut g = valid.clone();
        g.lt_origins[0] = CityId(frozen.num_cities() as u32);
        assert!(matches!(
            frozen.validate_group(&g),
            Err(crate::InvalidInput::CityOutOfRange { .. })
        ));

        let mut g = valid.clone();
        g.lt_days.clear();
        assert!(matches!(
            frozen.validate_group(&g),
            Err(crate::InvalidInput::MisalignedSequence { .. })
        ));

        let mut g = valid;
        let too_long = frozen.config().max_long_seq + 1;
        g.lt_origins = vec![CityId(0); too_long];
        g.lt_dests = vec![CityId(0); too_long];
        g.lt_days = vec![0; too_long];
        assert!(matches!(
            frozen.validate_group(&g),
            Err(crate::InvalidInput::SequenceTooLong { .. })
        ));
    }
}
