//! A bounded multi-producer/multi-consumer queue built on `Mutex` +
//! `Condvar` — the admission-control front door of the serving engine.
//!
//! Two deliberate departures from a general-purpose channel:
//!
//! - **Sends never block.** A full queue means the engine is saturated;
//!   queueing more work unboundedly would only grow memory and tail
//!   latency, so [`Queue::try_push`] hands the item straight back and the
//!   caller surfaces explicit backpressure (`Submit::Rejected`).
//! - **Receives drain in batches.** [`Queue::pop_up_to`] moves up to
//!   `max` pending items into the consumer's buffer in one lock
//!   acquisition. The backlog that accumulates while a worker is busy is
//!   exactly the micro-batching opportunity: the worker scores it in one
//!   coalesced forward instead of paying per-item wakeups.
//!
//! Locking is poison-free ([`crate::sync`]): a worker that panics under
//! fault injection must not wedge the admission edge for everyone else.

use crate::sync;
use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

struct State<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// Bounded MPMC queue; see the module docs for the blocking contract.
pub(crate) struct Queue<T> {
    state: Mutex<State<T>>,
    not_empty: Condvar,
    capacity: usize,
}

impl<T> Queue<T> {
    pub(crate) fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "queue capacity must be at least 1");
        Queue {
            state: Mutex::new(State {
                items: VecDeque::with_capacity(capacity),
                closed: false,
            }),
            not_empty: Condvar::new(),
            capacity,
        }
    }

    /// Enqueue `item`, or hand it back without blocking when the queue is
    /// full (or closed) — the caller turns `Err` into backpressure.
    pub(crate) fn try_push(&self, item: T) -> Result<(), T> {
        let mut st = sync::lock(&self.state);
        if st.closed || st.items.len() >= self.capacity {
            return Err(item);
        }
        st.items.push_back(item);
        drop(st);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Block until items are available, then move up to `max` of them into
    /// `buf` (cleared first), preserving arrival order. Returns `false`
    /// only when the queue is closed *and* fully drained — pending items
    /// are always delivered before shutdown is observed.
    pub(crate) fn pop_up_to(&self, max: usize, buf: &mut Vec<T>) -> bool {
        buf.clear();
        let mut st = sync::lock(&self.state);
        loop {
            if !st.items.is_empty() {
                let take = st.items.len().min(max);
                buf.extend(st.items.drain(..take));
                if !st.items.is_empty() {
                    // Leftovers for a sibling worker.
                    self.not_empty.notify_one();
                }
                return true;
            }
            if st.closed {
                return false;
            }
            st = sync::wait(&self.not_empty, st);
        }
    }

    /// Close the queue: future pushes fail, consumers drain what is left
    /// and then observe shutdown.
    pub(crate) fn close(&self) {
        let mut st = sync::lock(&self.state);
        st.closed = true;
        drop(st);
        self.not_empty.notify_all();
    }

    /// Move everything still queued into `buf` (appended) without
    /// blocking — the force-drain arm of [`Engine::drain`]
    /// (crate::Engine::drain): after the grace window, whatever no worker
    /// claimed is pulled out here and resolved as rejected so no caller
    /// is left waiting on a queue nobody will ever service.
    pub(crate) fn drain_now(&self, buf: &mut Vec<T>) {
        let mut st = sync::lock(&self.state);
        buf.extend(st.items.drain(..));
    }

    /// Items currently queued (diagnostics).
    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        sync::lock(&self.state).items.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn push_pop_preserves_order() {
        let q = Queue::new(8);
        for i in 0..5 {
            q.try_push(i).unwrap();
        }
        let mut buf = Vec::new();
        assert!(q.pop_up_to(3, &mut buf));
        assert_eq!(buf, vec![0, 1, 2]);
        assert!(q.pop_up_to(10, &mut buf));
        assert_eq!(buf, vec![3, 4]);
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn full_queue_rejects_without_blocking() {
        let q = Queue::new(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.try_push(3), Err(3));
    }

    #[test]
    fn close_drains_then_signals_shutdown() {
        let q = Queue::new(4);
        q.try_push(7).unwrap();
        q.close();
        assert_eq!(q.try_push(8), Err(8), "closed queue must reject");
        let mut buf = Vec::new();
        assert!(q.pop_up_to(4, &mut buf), "pending items survive close");
        assert_eq!(buf, vec![7]);
        assert!(!q.pop_up_to(4, &mut buf), "drained+closed ends consumption");
    }

    #[test]
    fn poisoned_queue_keeps_serving() {
        use std::panic::{catch_unwind, AssertUnwindSafe};
        let q = Queue::new(4);
        let _ = catch_unwind(AssertUnwindSafe(|| {
            let _g = q.state.lock().unwrap();
            panic!("poison the queue lock");
        }));
        q.try_push(1).expect("push after poison");
        let mut buf = Vec::new();
        assert!(q.pop_up_to(4, &mut buf));
        assert_eq!(buf, vec![1]);
    }

    #[test]
    fn blocked_consumer_wakes_on_push() {
        let q = Arc::new(Queue::new(4));
        let q2 = Arc::clone(&q);
        let h = std::thread::spawn(move || {
            let mut buf = Vec::new();
            let alive = q2.pop_up_to(4, &mut buf);
            (alive, buf)
        });
        // Give the consumer a moment to block, then feed it.
        std::thread::sleep(std::time::Duration::from_millis(10));
        q.try_push(42).unwrap();
        let (alive, buf) = h.join().unwrap();
        assert!(alive);
        assert_eq!(buf, vec![42]);
    }
}
