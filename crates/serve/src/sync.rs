//! Poison-free locking, shared by the queue, the oneshot channel, and the
//! supervisor.
//!
//! The engine's failure model *expects* panics: fault injection (and real
//! bugs) can kill a worker at any point. `std`'s mutexes poison on
//! panic-while-held, and every `.lock().expect(..)` would then cascade one
//! worker's death into every thread that touches the same lock. None of
//! the engine's guarded state can be left logically inconsistent by a
//! panic (counters, a VecDeque of requests, a oneshot slot — each is
//! updated in a single assignment), so recovering the guard is always
//! sound here. These helpers centralize that policy.

use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};
use std::time::Duration;

/// Lock `m`, recovering the guard if a panicking thread poisoned it.
pub(crate) fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Condvar wait that survives poisoning.
pub(crate) fn wait<'a, T>(cv: &Condvar, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    cv.wait(guard).unwrap_or_else(PoisonError::into_inner)
}

/// Condvar wait with a timeout; returns the guard and whether it timed out.
pub(crate) fn wait_timeout<'a, T>(
    cv: &Condvar,
    guard: MutexGuard<'a, T>,
    dur: Duration,
) -> (MutexGuard<'a, T>, bool) {
    match cv.wait_timeout(guard, dur) {
        Ok((g, to)) => (g, to.timed_out()),
        Err(poisoned) => {
            let (g, to) = poisoned.into_inner();
            (g, to.timed_out())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::Mutex;

    #[test]
    fn lock_recovers_from_poison() {
        let m = Mutex::new(5);
        let _ = catch_unwind(AssertUnwindSafe(|| {
            let _g = m.lock().unwrap();
            panic!("poison it");
        }));
        assert!(m.is_poisoned());
        assert_eq!(*lock(&m), 5, "value is intact after recovery");
        *lock(&m) = 6;
        assert_eq!(*lock(&m), 6);
    }
}
