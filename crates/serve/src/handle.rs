//! The versioned, atomically swappable model slot at the engine's core.
//!
//! PR 3–6 pinned one `Arc<FrozenOdNet>` into the engine for its whole
//! lifetime; production retrains and redeploys under live traffic, so the
//! engine's central invariant becomes: **workers load the model once per
//! batch drain**. A [`ModelHandle`] holds the current [`VersionSlot`]
//! behind a short critical section (two refcount ops — ArcSwap-style
//! semantics on the dependency-free `sync.rs` primitives):
//!
//! - a drain that started before a publish finishes on the artifact it
//!   loaded (it holds its own strong reference),
//! - the next drain — and the next admission validation — observes the
//!   new epoch,
//! - the retired artifact is kept on a grace list and dropped only after
//!   [`grace`](ModelHandle::new) has elapsed, so the publisher never pays
//!   a multi-GB deallocation inside the swap and any reader that loaded
//!   just before the swap has long finished by the time memory goes away.
//!
//! Every slot carries an [`ArtifactVersion`] — a monotone publish epoch
//! plus the artifact's FNV checksum (the `.odz` header's meta checksum for
//! on-disk artifacts, [`FrozenOdNet::fingerprint`] for in-memory ones) —
//! and a pair of per-epoch od-obs counters, so CTR/AUC and request volume
//! can be attributed to the exact model that served each request.

use crate::error::PublishError;
use crate::sync;
use od_obs::Counter;
use odnet_core::FrozenOdNet;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Identity of one published model generation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, serde::Serialize)]
pub struct ArtifactVersion {
    /// Monotone publish sequence number: the construction-time model is
    /// epoch 0, each successful [`Engine::publish`](crate::Engine::publish)
    /// increments it by one.
    pub epoch: u64,
    /// FNV-1a content checksum of the artifact: the `.odz` header's meta
    /// checksum when loaded from disk, [`FrozenOdNet::fingerprint`] for
    /// in-memory artifacts. Two epochs with equal checksums served
    /// identical models.
    pub checksum: u32,
}

/// One published model generation: the artifact, its identity, and the
/// per-epoch attribution counters.
pub(crate) struct VersionSlot {
    pub version: ArtifactVersion,
    pub model: Arc<FrozenOdNet>,
    /// `od_engine_version_requests_total{epoch=…}`
    pub requests: Counter,
    /// `od_engine_version_scores_total{epoch=…}`
    pub scores: Counter,
}

impl VersionSlot {
    /// Build a slot and register its per-epoch series in the global
    /// registry (idempotent per label set — republishing an epoch label in
    /// another engine merges at snapshot like every other series).
    pub(crate) fn register(model: Arc<FrozenOdNet>, epoch: u64, checksum: u32) -> Arc<VersionSlot> {
        let reg = od_obs::global();
        let label = epoch.to_string();
        let labels: &[(&str, &str)] = &[("epoch", &label)];
        Arc::new(VersionSlot {
            version: ArtifactVersion { epoch, checksum },
            model,
            requests: reg.counter_with(
                "od_engine_version_requests_total",
                "Requests answered, by artifact publish epoch",
                labels,
            ),
            scores: reg.counter_with(
                "od_engine_version_scores_total",
                "Candidate scores produced, by artifact publish epoch",
                labels,
            ),
        })
    }
}

/// The swappable slot. See the module docs for the protocol.
pub(crate) struct ModelHandle {
    /// The live generation. The lock is held only to clone or replace the
    /// `Arc` — never across scoring.
    current: Mutex<Arc<VersionSlot>>,
    /// Generations swapped out but not yet reclaimed: `(retired_at, slot)`.
    retired: Mutex<Vec<(Instant, Arc<VersionSlot>)>>,
    /// Mirror of `retired.len()`, so the per-drain reap check is one
    /// relaxed load instead of a lock acquisition.
    retired_count: AtomicUsize,
    grace: Duration,
}

impl ModelHandle {
    pub(crate) fn new(initial: Arc<VersionSlot>, grace: Duration) -> ModelHandle {
        ModelHandle {
            current: Mutex::new(initial),
            retired: Mutex::new(Vec::new()),
            retired_count: AtomicUsize::new(0),
            grace,
        }
    }

    /// Clone out the live generation. Callers hold their own strong
    /// reference for as long as they score against it, so a concurrent
    /// publish never invalidates a batch in flight.
    pub(crate) fn load(&self) -> Arc<VersionSlot> {
        Arc::clone(&sync::lock(&self.current))
    }

    /// Snapshot the live version without cloning the slot.
    pub(crate) fn version(&self) -> ArtifactVersion {
        sync::lock(&self.current).version
    }

    /// Swap in a new generation. Serialized on the `current` lock, so
    /// concurrent publishers get distinct, monotone epochs. The outgoing
    /// generation moves to the grace list; the publisher pays no
    /// deallocation.
    pub(crate) fn publish(
        &self,
        model: Arc<FrozenOdNet>,
        checksum: u32,
    ) -> Result<ArtifactVersion, PublishError> {
        let mut cur = sync::lock(&self.current);
        check_compatible(&cur.model, &model)?;
        let slot = VersionSlot::register(model, cur.version.epoch + 1, checksum);
        let version = slot.version;
        let old = std::mem::replace(&mut *cur, slot);
        drop(cur);
        {
            let mut retired = sync::lock(&self.retired);
            retired.push((Instant::now(), old));
            self.retired_count.store(retired.len(), Ordering::Release);
        }
        self.reap();
        Ok(version)
    }

    /// Drop every retired generation whose grace period has elapsed.
    /// Called per batch drain (cheap: one relaxed load when nothing is
    /// retired) and per publish.
    pub(crate) fn reap(&self) {
        if self.retired_count.load(Ordering::Acquire) == 0 {
            return;
        }
        let now = Instant::now();
        let mut retired = sync::lock(&self.retired);
        retired.retain(|(at, _)| now.duration_since(*at) < self.grace);
        self.retired_count.store(retired.len(), Ordering::Release);
    }

    /// Retired generations still inside their grace period.
    pub(crate) fn retired_len(&self) -> usize {
        self.retired_count.load(Ordering::Acquire)
    }
}

/// A published artifact must be drop-in compatible with the live one:
/// requests are validated at admission against the generation live *then*,
/// but may be scored by any later generation, so the id universe and the
/// sequence-length contract must agree or a queued request could index out
/// of the new tables.
fn check_compatible(live: &FrozenOdNet, offered: &FrozenOdNet) -> Result<(), PublishError> {
    if live.num_users() != offered.num_users() || live.num_cities() != offered.num_cities() {
        return Err(PublishError::UniverseMismatch {
            live_users: live.num_users(),
            live_cities: live.num_cities(),
            offered_users: offered.num_users(),
            offered_cities: offered.num_cities(),
        });
    }
    let (lc, oc) = (live.config(), offered.config());
    if lc.max_long_seq != oc.max_long_seq || lc.max_short_seq != oc.max_short_seq {
        return Err(PublishError::SequenceContractMismatch {
            live_long: lc.max_long_seq,
            live_short: lc.max_short_seq,
            offered_long: oc.max_long_seq,
            offered_short: oc.max_short_seq,
        });
    }
    Ok(())
}
