//! # od-serve — the concurrent serving engine
//!
//! PR 2's [`FrozenOdNet`](odnet_core::FrozenOdNet) made a single request
//! fast (tape-free kernels, 2–3 allocations per request); this crate makes
//! many *concurrent* requests fast. An [`Engine`] owns a versioned,
//! swappable model slot and N worker threads behind a bounded MPMC queue:
//!
//! - **Backpressure, not buffering.** [`Engine::submit`] never blocks and
//!   never queues unboundedly: a full queue returns
//!   [`Submit::Rejected`] with the request handed back, so overload is
//!   explicit at the admission edge instead of surfacing as memory growth
//!   and tail-latency collapse.
//! - **Cross-request micro-batching.** Each worker wakeup drains up to
//!   `max_batch` pending requests and coalesces the ones sharing a context
//!   template (same user/day/history — retries, pagination, one session's
//!   parallel widgets) into a *single* batched frozen forward, then
//!   scatters the per-request score slices back through oneshot channels.
//!   The batched kernels from PR 1 get more efficient per candidate as the
//!   group grows, so coalescing recovers for 1-candidate requests the
//!   efficiency that previously required 64-candidate requests.
//! - **Bit-identical scores.** A coalesced forward produces exactly the
//!   scores of per-request forwards (the trunk is context-only and every
//!   kernel accumulates per output element independently of batch size),
//!   extending the live → batched → frozen oracle chain one more link:
//!   engine output equals direct [`FrozenOdNet::score_group`]
//!   (odnet_core) calls under any interleaving.
//! - **Fault tolerance.** Every accepted request resolves exactly once as
//!   `Result<scores, `[`ServeError`]`>`: invalid inputs are refused at
//!   admission, deadlines drop stale requests at drain time, and a worker
//!   panic mid-batch is caught, resolves its unanswered tickets with
//!   [`ServeError::WorkerPanicked`], and is healed by a supervisor thread
//!   that respawns the worker ([`Engine::health`] exposes the counters).
//!   A [`FailPoint`] hook injects panics/stalls at chosen batches for the
//!   chaos tests and `odnet serve-bench --inject-panics`. DESIGN.md §10
//!   documents the full failure model.
//! - **Hot-swappable model.** [`Engine::publish`] atomically installs a
//!   new [`FrozenOdNet`](odnet_core::FrozenOdNet) generation under live
//!   traffic: workers load the model once per batch drain, so in-flight
//!   batches finish on the artifact they started with while the next
//!   drain picks up the new epoch; retired generations are reclaimed
//!   after a grace period. Every response carries the
//!   [`ArtifactVersion`] (publish epoch + FNV checksum) that scored it
//!   ([`Ticket::wait_versioned`]), with per-epoch od-obs counters for
//!   CTR/volume attribution. DESIGN.md §13 documents the protocol; the
//!   `odnet online` CLI drives a full drift → retrain → freeze → publish
//!   loop against it.
//!
//! - **Full funnel.** A [`Funnel`] puts the `od-retrieval` candidate
//!   generator in front of the engine over the same artifact slot:
//!   retrieve the best `k` OD pairs out of the whole city universe from
//!   the frozen tables, featurize, rank with the full model. The
//!   retrieval index is rebuilt and re-keyed on every publish, and a
//!   [`Recommendation`] stamps both the retrieving and the ranking
//!   generation for mid-swap attribution. DESIGN.md §14 documents the
//!   retrieval tier.
//!
//! The [`loadgen`] module drives an engine closed-loop and reports
//! requests/sec, latency percentiles, and coalesced-batch histograms; the
//! `throughput_bench` in `od-bench` uses it to produce
//! `BENCH_throughput.json`, and `odnet serve-bench` exposes it on the CLI.

#![warn(missing_docs)]

mod engine;
mod error;
mod funnel;
mod handle;
mod oneshot;
mod queue;
mod sync;

pub mod artifact;
pub mod loadgen;
pub mod metrics;

pub use artifact::{load_frozen, load_frozen_auto, ArtifactMode, LoadedArtifact};
pub use engine::{
    Engine, EngineConfig, EngineHealth, EngineStats, FailPoint, FailSite, ScoredResponse, Submit,
    Ticket,
};
pub use error::{PublishError, ServeError};
pub use funnel::{Funnel, FunnelConfig, RankedPair, Recommendation};
pub use handle::ArtifactVersion;
pub use loadgen::{
    drive, drive_http, drive_swapping, http_request, read_http_response, score_all, HttpLoadReport,
    HttpResponse, LoadReport,
};
pub use metrics::{HistBucket, HistSummary};
