//! The full serving funnel: retrieve → rank.
//!
//! A [`Funnel`] pairs the micro-batching [`Engine`] (the ranker) with an
//! [`od_retrieval::Retriever`] (the candidate generator) over the *same*
//! artifact generation. A request names only a user and `k`; the funnel
//! retrieves the best `k` OD pairs out of the whole city universe from
//! the frozen embedding tables, hands them to the caller's featurizer to
//! build the ranking [`GroupInput`], scores them through the engine, and
//! returns pairs re-ranked by the full personalized model.
//!
//! # Hot swap: the index is versioned like the model
//!
//! The retrieval index is derived state — cluster assignments over one
//! artifact's destination table. [`Funnel::publish`] therefore rebuilds
//! the retriever as part of publishing a generation and re-keys it with
//! the [`ArtifactVersion`] the engine assigned. Mid-swap, a response can
//! legitimately be retrieved by one generation and ranked by the next
//! (workers pick up the new model at batch-drain granularity); a
//! [`Recommendation`] carries **both** stamps so callers can attribute
//! each stage exactly — the swap test in `tests/funnel.rs` pins this
//! down.
//!
//! # Observability
//!
//! The funnel owns the `od_retrieval_*` series (see
//! [`FunnelMetrics`](struct@FunnelMetrics)): per-stage timing histograms
//! (route/scan/select), a scanned-candidates counter, tier-labeled
//! request counters, and a sampled recall gauge — every
//! `recall_probe_every`-th pruned retrieval also runs the exact tier and
//! records recall@k against it, so a recall regression in production
//! shows up on the dashboard rather than in a quarterly eval.

use crate::engine::{Engine, EngineConfig, Submit};
use crate::error::ServeError;
use crate::handle::ArtifactVersion;
use crate::sync;
use od_hsg::{CityId, UserId};
use od_obs::trace::{self, TraceContext, NO_ATTRS};
use od_obs::{global, Counter, FloatGauge, LatencyHistogram};
use od_retrieval::{recall_against_exact, RetrievalConfig, RetrievalStats, Retriever, Tier};
use odnet_core::{FrozenOdNet, GroupInput};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Funnel tuning: the retrieval knobs plus funnel-level policy.
#[derive(Clone, Copy, Debug)]
pub struct FunnelConfig {
    /// Retrieval stage configuration (index sizing, SIMD level).
    pub retrieval: RetrievalConfig,
    /// Tier served by [`Funnel::recommend`].
    pub tier: Tier,
    /// Run the exact tier alongside every Nth pruned retrieval and
    /// record recall@k into the `od_retrieval_recall` gauge. `0`
    /// disables probing.
    pub recall_probe_every: u64,
}

impl Default for FunnelConfig {
    fn default() -> Self {
        FunnelConfig {
            retrieval: RetrievalConfig::default(),
            tier: Tier::Pruned,
            recall_probe_every: 64,
        }
    }
}

/// One funnel answer: pairs ranked by the full model, with per-stage
/// attribution.
#[derive(Clone, Debug)]
pub struct Recommendation {
    /// Pairs in final rank order (ranker score descending, pair index
    /// ascending on ties).
    pub pairs: Vec<RankedPair>,
    /// Cost accounting of the retrieval stage.
    pub retrieval: RetrievalStats,
    /// Generation whose tables produced the candidate set.
    pub retrieved_by: ArtifactVersion,
    /// Generation whose ranker scored it (can differ mid-swap).
    pub ranked_by: ArtifactVersion,
}

/// One OD pair after the full funnel.
#[derive(Clone, Copy, Debug)]
pub struct RankedPair {
    /// Origin city.
    pub origin: CityId,
    /// Destination city.
    pub dest: CityId,
    /// Separable retrieval-stage score (candidate-generation order).
    pub retrieval_score: f32,
    /// Ranker origin-task probability `p^O`.
    pub p_origin: f32,
    /// Ranker destination-task probability `p^D`.
    pub p_dest: f32,
    /// Final blended score `θ·p^O + (1−θ)·p^D` — the rank key.
    pub rank_score: f32,
}

/// A retriever pinned to the artifact generation it was built from.
struct VersionedRetriever {
    version: ArtifactVersion,
    retriever: Retriever,
}

/// The `od_retrieval_*` instrument set (one per funnel; same-name series
/// merge at snapshot time like the engine's).
struct FunnelMetrics {
    requests_exact: Counter,
    requests_pruned: Counter,
    scanned: Counter,
    route_ns: LatencyHistogram,
    scan_ns: LatencyHistogram,
    select_ns: LatencyHistogram,
    rebuilds: Counter,
    recall: FloatGauge,
}

impl FunnelMetrics {
    fn register() -> FunnelMetrics {
        let reg = global();
        let requests = |tier: &str| {
            reg.counter_with(
                "od_retrieval_requests_total",
                "Retrieval-stage queries served, by tier",
                &[("tier", tier)],
            )
        };
        FunnelMetrics {
            requests_exact: requests("exact"),
            requests_pruned: requests("pruned"),
            scanned: reg.counter(
                "od_retrieval_scanned_total",
                "OD pair candidates examined by the retrieval scan",
            ),
            route_ns: reg.histogram(
                "od_retrieval_route_ns",
                "IVF routing time (cap affinities + member gather)",
            ),
            scan_ns: reg.histogram(
                "od_retrieval_scan_ns",
                "Affinity GEMV time over the candidate tables",
            ),
            select_ns: reg.histogram(
                "od_retrieval_select_ns",
                "Pair sweep + top-k selection time",
            ),
            rebuilds: reg.counter(
                "od_retrieval_index_rebuilds_total",
                "Retrieval indexes built (artifact loads and publishes)",
            ),
            recall: reg.float_gauge(
                "od_retrieval_recall",
                "Sampled recall@k of the pruned tier against the exact tier",
            ),
        }
    }

    fn record(&self, tier: Tier, stats: &RetrievalStats) {
        match tier {
            Tier::Exact => self.requests_exact.inc(),
            Tier::Pruned => self.requests_pruned.inc(),
        }
        self.scanned.add(stats.scanned);
        if stats.route_ns > 0 {
            self.route_ns.record(stats.route_ns);
        }
        self.scan_ns.record(stats.scan_ns);
        self.select_ns.record(stats.select_ns);
    }
}

/// Retrieve → rank over one hot-swappable artifact slot.
pub struct Funnel {
    engine: Engine,
    slot: Mutex<Arc<VersionedRetriever>>,
    config: FunnelConfig,
    metrics: FunnelMetrics,
    served: AtomicU64,
}

impl Funnel {
    /// Build the full funnel around a first artifact generation: a
    /// versioned engine plus a retrieval index over the same tables.
    pub fn new(
        model: Arc<FrozenOdNet>,
        checksum: u32,
        engine_config: EngineConfig,
        config: FunnelConfig,
    ) -> Funnel {
        let engine = Engine::new_versioned(Arc::clone(&model), checksum, engine_config);
        let metrics = FunnelMetrics::register();
        let retriever = Retriever::build(model, config.retrieval);
        metrics.rebuilds.inc();
        Funnel {
            slot: Mutex::new(Arc::new(VersionedRetriever {
                version: engine.version(),
                retriever,
            })),
            engine,
            config,
            metrics,
            served: AtomicU64::new(0),
        }
    }

    /// The ranking engine (submit raw groups, read stats/health, …).
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// The funnel's configuration.
    pub fn config(&self) -> &FunnelConfig {
        &self.config
    }

    /// The generation the *retrieval* stage currently serves from.
    pub fn retrieval_version(&self) -> ArtifactVersion {
        sync::lock(&self.slot).version
    }

    /// Users in the artifact universe — the admission bound for
    /// [`recommend`](Self::recommend) callers (the HTTP tier validates
    /// ids against this before retrieval, which would panic on an
    /// out-of-universe user). Fixed across publishes: the publish
    /// contract refuses universe changes.
    pub fn num_users(&self) -> usize {
        sync::lock(&self.slot).retriever.model().num_users()
    }

    /// Publish a new artifact generation into both funnel stages: the
    /// engine swaps its model slot (in-flight batches finish on the old
    /// generation) and the retrieval index is rebuilt and re-keyed with
    /// the version the engine assigned. On a rejected publish the
    /// retrieval slot is left untouched.
    pub fn publish(
        &self,
        model: Arc<FrozenOdNet>,
        checksum: u32,
    ) -> Result<ArtifactVersion, crate::error::PublishError> {
        let version = self
            .engine
            .publish_versioned(Arc::clone(&model), checksum)?;
        let retriever = Retriever::build(model, self.config.retrieval);
        self.metrics.rebuilds.inc();
        *sync::lock(&self.slot) = Arc::new(VersionedRetriever { version, retriever });
        Ok(version)
    }

    /// Serve one full-funnel request: retrieve the best `k` OD pairs for
    /// `user`, featurize them through `make_group` (the caller owns
    /// history/context — candidates arrive in retrieval order and must
    /// be passed through in that order), rank with the engine, and
    /// return pairs in final rank order.
    pub fn recommend<F>(
        &self,
        user: UserId,
        k: usize,
        make_group: F,
    ) -> Result<Recommendation, ServeError>
    where
        F: FnOnce(&[od_retrieval::ScoredPair]) -> GroupInput,
    {
        self.recommend_with_deadline(user, k, None, make_group)
    }

    /// [`recommend`](Self::recommend) with a deadline: the ranking submit
    /// carries it into [`Engine::submit_with_deadline`] (still-queued
    /// work is dropped at drain past the deadline) and the ticket wait is
    /// bounded by it, so a caller — in particular an HTTP connection
    /// thread — is never parked past `deadline` even when the engine is
    /// stalled. `None` falls back to the unbounded wait.
    pub fn recommend_with_deadline<F>(
        &self,
        user: UserId,
        k: usize,
        deadline: Option<std::time::Instant>,
        make_group: F,
    ) -> Result<Recommendation, ServeError>
    where
        F: FnOnce(&[od_retrieval::ScoredPair]) -> GroupInput,
    {
        self.recommend_traced(user, k, deadline, TraceContext::NONE, make_group)
    }

    /// [`recommend_with_deadline`](Self::recommend_with_deadline)
    /// carrying a trace context: the retrieval stage records a
    /// `retrieval` span with `route`/`scan`/`select` children synthesized
    /// from [`RetrievalStats`], and the ranking submit threads the
    /// context into the engine so one trace shows the whole funnel.
    pub fn recommend_traced<F>(
        &self,
        user: UserId,
        k: usize,
        deadline: Option<std::time::Instant>,
        ctx: TraceContext,
        make_group: F,
    ) -> Result<Recommendation, ServeError>
    where
        F: FnOnce(&[od_retrieval::ScoredPair]) -> GroupInput,
    {
        let slot = Arc::clone(&sync::lock(&self.slot));
        let tier = self.config.tier;
        let ret_start = ctx.is_active().then(od_obs::clock::now);
        let retrieved = slot.retriever.top_k(user, k, tier);
        if let Some(t0) = ret_start {
            let t1 = od_obs::clock::now();
            let tracer = trace::global();
            let parent = tracer.record_full(
                ctx,
                "retrieval",
                t0,
                t1,
                0,
                false,
                [
                    ("scanned", retrieved.stats.scanned),
                    ("epoch", slot.version.epoch),
                ],
            );
            // The stage durations were measured inside top_k; lay them
            // out sequentially from the span's start, clamped into the
            // parent interval (the two clocks — Instant inside, TSC
            // outside — can disagree by calibration error).
            let sub = ctx.child(parent);
            let p0 = tracer.since_epoch_ns(t0);
            let p_dur = od_obs::clock::ns_between(t0, t1);
            let mut off = 0u64;
            for (name, dur) in retrieved.stats.stages() {
                if dur == 0 {
                    continue;
                }
                let start = off.min(p_dur);
                let len = dur.min(p_dur - start);
                tracer.record_ext(sub, name, p0 + start, len, 0, false, NO_ATTRS);
                off = start + len;
            }
        }
        self.metrics.record(tier, &retrieved.stats);

        // Sampled recall probe: every Nth pruned request also runs the
        // exact tier (off the request's critical path in cost terms —
        // one extra scan) and publishes recall@k.
        if tier == Tier::Pruned && self.config.recall_probe_every > 0 {
            let n = self.served.fetch_add(1, Ordering::Relaxed);
            if n.is_multiple_of(self.config.recall_probe_every) {
                let exact = slot.retriever.top_k(user, k, Tier::Exact);
                self.metrics
                    .recall
                    .set(recall_against_exact(&exact.pairs, &retrieved.pairs));
            }
        } else {
            self.served.fetch_add(1, Ordering::Relaxed);
        }

        if retrieved.pairs.is_empty() {
            return Ok(Recommendation {
                pairs: Vec::new(),
                retrieval: retrieved.stats,
                retrieved_by: slot.version,
                ranked_by: slot.version,
            });
        }

        let group = make_group(&retrieved.pairs);
        debug_assert_eq!(
            group.candidates.len(),
            retrieved.pairs.len(),
            "featurizer must keep the retrieved candidate order"
        );
        let ticket = match self.engine.submit_traced(group, deadline, ctx) {
            Submit::Accepted(t) => t,
            Submit::Rejected(_) => return Err(ServeError::Rejected),
            Submit::Invalid { error, .. } => return Err(ServeError::InvalidInput(error)),
        };
        let response = match deadline {
            Some(d) => ticket
                .wait_versioned_timeout(d.saturating_duration_since(std::time::Instant::now()))?,
            None => ticket.wait_versioned()?,
        };

        // Blend with the retrieval generation's θ (mid-swap the ranker
        // may be newer; both stamps are returned for attribution).
        let model = slot.retriever.model();
        let mut pairs: Vec<RankedPair> = retrieved
            .pairs
            .iter()
            .zip(&response.scores)
            .map(|(p, &(p_origin, p_dest))| RankedPair {
                origin: p.origin,
                dest: p.dest,
                retrieval_score: p.score,
                p_origin,
                p_dest,
                rank_score: model.serving_score(p_origin, p_dest),
            })
            .collect();
        pairs.sort_by(|x, y| {
            y.rank_score
                .total_cmp(&x.rank_score)
                .then_with(|| (x.origin.0, x.dest.0).cmp(&(y.origin.0, y.dest.0)))
        });

        Ok(Recommendation {
            pairs,
            retrieval: retrieved.stats,
            retrieved_by: slot.version,
            ranked_by: response.version,
        })
    }

    /// Shut the funnel down (drains the engine's workers).
    pub fn shutdown(&self) {
        self.engine.shutdown();
    }

    /// Bounded shutdown: delegate to [`Engine::drain`] so every ticket
    /// held by a caller resolves within `grace` (see the engine docs for
    /// the force-reject semantics). Returns whether the drain was clean.
    pub fn drain(&self, grace: std::time::Duration) -> bool {
        self.engine.drain(grace)
    }
}
