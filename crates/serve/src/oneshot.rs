//! A minimal one-shot rendezvous: the worker deposits one value, the
//! requesting thread blocks until it arrives. Built on `Mutex` + `Condvar`
//! (no vendored channel dependency); dropping the sender without sending
//! wakes the receiver with `None` instead of deadlocking it.

use std::sync::{Arc, Condvar, Mutex};

struct Slot<T> {
    value: Mutex<(Option<T>, bool)>,
    ready: Condvar,
}

/// Producing half — consumed by [`Sender::send`].
pub(crate) struct Sender<T> {
    slot: Arc<Slot<T>>,
}

/// Consuming half — consumed by [`Receiver::recv`].
pub(crate) struct Receiver<T> {
    slot: Arc<Slot<T>>,
}

/// Create a connected sender/receiver pair.
pub(crate) fn channel<T>() -> (Sender<T>, Receiver<T>) {
    let slot = Arc::new(Slot {
        value: Mutex::new((None, false)),
        ready: Condvar::new(),
    });
    (
        Sender {
            slot: Arc::clone(&slot),
        },
        Receiver { slot },
    )
}

impl<T> Sender<T> {
    /// Deposit the value and wake the receiver.
    pub(crate) fn send(self, value: T) {
        let mut guard = self.slot.value.lock().expect("oneshot lock poisoned");
        guard.0 = Some(value);
        guard.1 = true;
        drop(guard);
        self.slot.ready.notify_one();
        // Drop now runs too; its re-mark + notify are harmless after a
        // send, and skipping it (mem::forget) would leak the slot Arc.
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut guard = self.slot.value.lock().expect("oneshot lock poisoned");
        guard.1 = true;
        drop(guard);
        self.slot.ready.notify_one();
    }
}

impl<T> Receiver<T> {
    /// Block until the value arrives; `None` means the sender was dropped
    /// without sending (the request was abandoned).
    pub(crate) fn recv(self) -> Option<T> {
        let mut guard = self.slot.value.lock().expect("oneshot lock poisoned");
        while !guard.1 {
            guard = self.slot.ready.wait(guard).expect("oneshot lock poisoned");
        }
        guard.0.take()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivers_across_threads() {
        let (tx, rx) = channel();
        let h = std::thread::spawn(move || rx.recv());
        tx.send(99);
        assert_eq!(h.join().unwrap(), Some(99));
    }

    #[test]
    fn dropped_sender_unblocks_receiver() {
        let (tx, rx) = channel::<u32>();
        drop(tx);
        assert_eq!(rx.recv(), None);
    }

    #[test]
    fn send_does_not_leak_the_slot() {
        let (tx, rx) = channel::<u32>();
        let slot = Arc::downgrade(&tx.slot);
        tx.send(7);
        assert_eq!(rx.recv(), Some(7));
        assert!(
            slot.upgrade().is_none(),
            "slot still alive after both halves are gone"
        );
    }
}
